(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, then runs Bechamel micro-benchmarks of the substrate.

     dune exec bench/main.exe

   Environment knobs:
     STCG_BENCH_QUICK=1   smaller budgets / fewer seeds (smoke mode)
     STCG_BENCH_SEEDS=n   number of seeds for randomized tools
     STCG_BENCH_SMOKE=1   minimal artifact pass (tiny budget, CPUTask+AFC
                          only, fast micro quota) — used by the dune
                          runtest smoke alias
     STCG_BENCH_MICRO=1   skip paper artifacts, run micro-benchmarks only
     STCG_BENCH_JSON=path write micro-benchmark results (ns/run per test)
                          as JSON, for machine-readable perf tracking
                          across PRs; `--json [path]` does the same
                          (default BENCH_results.json) *)

let smoke = Sys.getenv_opt "STCG_BENCH_SMOKE" = Some "1"
let quick = smoke || Sys.getenv_opt "STCG_BENCH_QUICK" = Some "1"
let micro_only = Sys.getenv_opt "STCG_BENCH_MICRO" = Some "1"

let json_path =
  let from_env = Sys.getenv_opt "STCG_BENCH_JSON" in
  let rec from_argv = function
    | [] -> None
    | "--json" :: next :: _ when String.length next > 0 && next.[0] <> '-' ->
      Some next
    | "--json" :: _ -> Some "BENCH_results.json"
    | arg :: rest ->
      (match String.index_opt arg '=' with
       | Some i when String.sub arg 0 i = "--json" ->
         Some (String.sub arg (i + 1) (String.length arg - i - 1))
       | _ -> from_argv rest)
  in
  match from_argv (Array.to_list Sys.argv) with
  | Some p -> Some p
  | None -> from_env

let n_seeds =
  match Sys.getenv_opt "STCG_BENCH_SEEDS" with
  | Some s -> (try int_of_string s with _ -> if quick then 2 else 5)
  | None -> if smoke then 1 else if quick then 2 else 5

let budget = if smoke then 120.0 else if quick then 600.0 else 3600.0
let seeds = List.init n_seeds (fun i -> i + 1)

let section title =
  Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* --- paper artifacts --------------------------------------------------- *)

let paper_artifacts () =
  (* smoke mode exercises every artifact builder on a model subset *)
  let models = if smoke then Some [ "CPUTask"; "AFC" ] else None in
  section "Table II - benchmark models";
  print_string (Harness.Experiment.table2 ());
  Fmt.pr "@.";

  section "Table I - state-tree construction on CPUTask";
  print_string (Harness.Experiment.table1 ~budget ~seed:1 ());

  section "Figure 3 - CPUTask branch structure and state tree";
  print_string (Harness.Experiment.fig3 ());

  (* one pool for the whole artifact sweep: table3, fig4 and the
     ablations share the same warm worker domains instead of spawning a
     fresh pool each *)
  Harness.Pool.with_pool (fun pool ->
      section "Table III - coverage comparison";
      let _, table3 = Harness.Experiment.table3 ~budget ~seeds ?models ~pool () in
      print_string table3;
      Fmt.pr "@.";

      section "Figure 4 - decision coverage vs time";
      let panels, _csvs =
        Harness.Experiment.fig4 ~budget ~seed:1 ?models ~pool ()
      in
      print_string panels;

      section "Ablations - STCG design choices";
      print_string
        (Harness.Experiment.ablations ~budget
           ?models:(if smoke then Some [ "CPUTask" ] else None)
           ~seeds:(List.filteri (fun i _ -> i < 3) seeds)
           ~pool ()))

(* --- harness wall-clock: sequential vs domain-parallel ------------------ *)

(* End-to-end speedup of the experiment harness on its (tool, model,
   seed) job matrix — the dominant wall-clock cost of a full
   reproduction, and the number the BENCH json tracks across PRs
   alongside the per-step microseconds.  Always measured on the
   smoke-budget matrix so the entry is comparable between quick and
   full runs.  Also asserts the deterministic-merge contract: the
   parallel table must be byte-identical to the sequential one. *)
let harness_wallclock () =
  section "harness: table3 wall-clock (sequential vs domains)";
  let wc_budget = 120.0 in
  (* smoke keeps the matrix minimal so `dune runtest` stays fast; the
     full/quick runs use two seeds and a warm-up pass for a steadier
     number *)
  let wc_seeds = if smoke then [ 1 ] else [ 1; 2 ] in
  let wc_models = Some [ "CPUTask"; "AFC" ] in
  let time_table3 ?(oversubscribe = false) jobs =
    let t0 = Unix.gettimeofday () in
    let _, text =
      if oversubscribe then
        Harness.Pool.with_pool ~jobs ~oversubscribe:true (fun pool ->
            Harness.Experiment.table3 ~budget:wc_budget ~seeds:wc_seeds
              ?models:wc_models ~pool ())
      else
        Harness.Experiment.table3 ~budget:wc_budget ~seeds:wc_seeds
          ?models:wc_models ~jobs ()
    in
    (Unix.gettimeofday () -. t0, text)
  in
  if not smoke then
    ignore (time_table3 1) (* warm up model compilation and allocator *);
  let seq_s, seq_text = time_table3 1 in
  let par2_s, par2_text = time_table3 2 in
  let par4_s, par4_text = time_table3 4 in
  if not (String.equal seq_text par2_text && String.equal seq_text par4_text)
  then failwith "harness wall-clock: parallel table3 diverged from sequential";
  (* the same jobs=2 matrix with the core-count clamp bypassed: on a
     machine with >= 2 cores this matches the clamped number, on fewer
     cores it exposes the oversubscription tax the clamp avoids — and
     either way it populates the pool.* scheduling telemetry that the
     --json snapshot records for jobs > 1 *)
  let over2_s, over2_text = time_table3 ~oversubscribe:true 2 in
  if not (String.equal seq_text over2_text) then
    failwith "harness wall-clock: oversubscribed table3 diverged";
  (* sharded multi-process contract on the same matrix: two stripes,
     merged in the wrong order, must rebuild the sequential bytes *)
  let spec =
    Harness.Shard.spec ~budget:wc_budget ~seeds:wc_seeds ?models:wc_models
      Harness.Shard.Table3
  in
  let p0 = Harness.Shard.run_partial ~jobs:1 ~shard:(0, 2) spec in
  let p1 = Harness.Shard.run_partial ~jobs:1 ~shard:(1, 2) spec in
  (match Harness.Shard.merge_strings [ p1; p0 ] with
   | Harness.Shard.M_table3 (_, text) ->
     if not (String.equal text seq_text) then
       failwith "harness wall-clock: sharded merge diverged from sequential"
   | _ -> failwith "harness wall-clock: merge returned the wrong artifact");
  let eff2 = Harness.Pool.effective_jobs 2 in
  let speedup = seq_s /. par2_s in
  Fmt.pr
    "table3 smoke matrix: jobs=1 %.2fs, jobs=2 %.2fs (%d effective), jobs=4 \
     %.2fs, jobs=2 unclamped %.2fs  (%.2fx at jobs=2; merge and shards \
     deterministic)@."
    seq_s par2_s eff2 par4_s over2_s speedup;
  (* regression gate (runs under `dune runtest` via the smoke alias):
     requesting parallelism must never cost wall-clock versus serial —
     that is exactly the 0.4x anti-speedup this clamp exists to
     prevent.  1.25x covers scheduler noise on loaded CI machines. *)
  if par2_s > seq_s *. 1.25 then
    failwith
      (Fmt.str
         "parallel regression: jobs=2 wall-clock %.2fs exceeds serial %.2fs \
          beyond 1.25x tolerance"
         par2_s seq_s);
  [
    ("harness: table3 wall-clock (jobs=1)", seq_s *. 1e9);
    ("harness: table3 wall-clock (jobs=2)", par2_s *. 1e9);
    ("harness: table3 wall-clock (jobs=4)", par4_s *. 1e9);
    ("harness: table3 wall-clock (jobs=2, unclamped)", over2_s *. 1e9);
    ("harness: table3 parallel speedup (x)", speedup);
    ("harness: effective workers at jobs=2", float_of_int eff2);
  ]

(* --- static analysis ---------------------------------------------------- *)

(* Fixpoint wall-clock of the abstract interpreter on every registry
   model (interval and octagon domains), the Unknown objectives the
   snapshot-seeded refinement decides, plus the end-to-end effect on
   the engine: how many coverage objectives the analyzer lets the
   solving loop skip, and the verdict-priority on/off wall-clock.
   Tracked in the BENCH json so analyzer slowdowns (or lost
   dead-objective proofs) show up across PRs. *)
let analysis_bench () =
  section "analysis: abstract-interpretation fixpoint";
  let models =
    if smoke then [ "CPUTask"; "AFC" ] else Models.Registry.names
  in
  let oct = { Analysis.Analyzer.domain = `Octagon } in
  let entries = ref [] in
  let total_dead = ref 0 in
  List.iter
    (fun name ->
      let prog = (Option.get (Models.Registry.find name)).program () in
      ignore (Analysis.Analyzer.analyze prog) (* warm *);
      let t0 = Unix.gettimeofday () in
      let r = Analysis.Analyzer.analyze prog in
      let dt = Unix.gettimeofday () -. t0 in
      let t1 = Unix.gettimeofday () in
      let ro = Analysis.Analyzer.analyze ~config:oct prog in
      let dto = Unix.gettimeofday () -. t1 in
      let s = Analysis.Verdict.of_result r in
      let db, dc, dm = Analysis.Verdict.counts s Analysis.Verdict.Dead in
      let so = Analysis.Verdict.of_result ro in
      let ob, oc, om = Analysis.Verdict.counts so Analysis.Verdict.Dead in
      total_dead := !total_dead + db + dc + dm;
      Fmt.pr
        "%-12s iv %8.2f ms oct %8.2f ms  %3d sweeps %2d widened  dead \
         (%d,%d,%d) oct (%d,%d,%d)@."
        name (dt *. 1e3) (dto *. 1e3) r.Analysis.Analyzer.r_iterations
        r.Analysis.Analyzer.r_widenings db dc dm ob oc om;
      entries :=
        (Fmt.str "analysis: octagon fixpoint %s" name, dto *. 1e9)
        :: (Fmt.str "analysis: fixpoint %s" name, dt *. 1e9)
        :: !entries)
    models;
  (* snapshot-seeded refinement: how many Unknown objectives do 40
     concretely reached states decide, and at what cost *)
  section "analysis: snapshot-refined verdicts";
  let total_refined = ref 0 in
  let refine_ns = ref 0.0 in
  List.iter
    (fun name ->
      let prog = (Option.get (Models.Registry.find name)).program () in
      let s0 = Analysis.Verdict.of_program prog in
      let h = Slim.Exec.compile prog in
      let rng = Random.State.make [| 7 |] in
      let st = ref (Slim.Exec.initial_state h) in
      let seeds = ref [] in
      for _ = 1 to 40 do
        let inp = Slim.Exec.random_inputs rng h in
        let _, st' = Slim.Exec.run_step h !st inp in
        st := st';
        seeds := Array.copy st' :: !seeds
      done;
      let unknown s =
        let b, c, m = Analysis.Verdict.counts s Analysis.Verdict.Unknown in
        b + c + m
      in
      let t0 = Unix.gettimeofday () in
      let s1 = Analysis.Verdict.refine s0 ~seeds:!seeds in
      let dt = Unix.gettimeofday () -. t0 in
      refine_ns := !refine_ns +. (dt *. 1e9);
      let decided = unknown s0 - unknown s1 in
      total_refined := !total_refined + decided;
      Fmt.pr "%-12s %8.2f ms  unknown %3d -> %3d (%d decided)@." name
        (dt *. 1e3) (unknown s0) (unknown s1) decided)
    models;
  entries :=
    ("analysis: refine wall-clock (bench models)", !refine_ns)
    :: ( "analysis: refine objectives decided (bench models)",
         float_of_int !total_refined )
    :: !entries;
  (* drive the engine once with the analyzer on: the skipped-objective
     counter is the proof the dead verdicts reach the solving loop *)
  let tel_skipped = Telemetry.Counter.make "engine.objectives_skipped_dead" in
  let tel_on = Telemetry.enabled () in
  if not tel_on then Telemetry.enable ();
  let before = Telemetry.Counter.total tel_skipped in
  let afc = (Option.get (Models.Registry.find "AFC")).program () in
  let cfg =
    { Stcg.Engine.default_config with
      Stcg.Engine.budget = (if smoke then 30.0 else 120.0);
      seed = 1;
      analyze = true }
  in
  let _run = Stcg.Engine.run ~config:cfg afc in
  let skipped = Telemetry.Counter.total tel_skipped - before in
  Fmt.pr "engine on AFC with --analyze: %d objectives skipped as dead@."
    skipped;
  if skipped <= 0 then
    failwith "analysis bench: engine skipped no dead objectives on AFC";
  (* verdict-priority on/off: same model, same budget — the wall-clock
     pair tracks the overhead of the static-prune path and the
     reordered worklist against the plain solving loop *)
  let tel_pruned = Telemetry.Counter.make "engine.solves_pruned_static" in
  let vp_run priority =
    let t0 = Unix.gettimeofday () in
    let p0 = Telemetry.Counter.total tel_pruned in
    let _ =
      Stcg.Engine.run
        ~config:{ cfg with Stcg.Engine.verdict_priority = priority }
        afc
    in
    (Unix.gettimeofday () -. t0, Telemetry.Counter.total tel_pruned - p0)
  in
  let dt_off, _ = vp_run false in
  let dt_on, pruned = vp_run true in
  if not tel_on then Telemetry.disable ();
  Fmt.pr
    "engine on AFC: verdict-priority off %.2f s / on %.2f s (%d solves \
     pruned statically)@."
    dt_off dt_on pruned;
  ("analysis: dead objectives proved (bench models)", float_of_int !total_dead)
  :: ("analysis: engine objectives skipped (AFC)", float_of_int skipped)
  :: ("analysis: engine AFC verdict-priority off", dt_off *. 1e9)
  :: ("analysis: engine AFC verdict-priority on", dt_on *. 1e9)
  :: ("analysis: engine AFC solves pruned", float_of_int pruned)
  :: List.rev !entries

(* --- fuzz campaign ------------------------------------------------------ *)

(* Differential fuzzing as a regression gate in the bench run: a
   fixed-seed campaign over the whole execution stack (exec diff,
   coverage invariants, symexec soundness, solver soundness) must stay
   clean, and its wall-clock is tracked in the BENCH json alongside
   the other end-to-end numbers.  The case count is the same in smoke
   and full mode so the entry is comparable between runs. *)
let fuzz_campaign () =
  section "fuzz: differential campaign (seed 0)";
  let count = 100 in
  let t0 = Unix.gettimeofday () in
  let summary = Fuzzer.Campaign.run ~seed:0 ~count ~max_steps:8 () in
  let dt = Unix.gettimeofday () -. t0 in
  Fmt.pr "%a@." Fuzzer.Campaign.pp_summary summary;
  if Fuzzer.Campaign.failures summary > 0 then
    failwith "fuzz campaign: oracle violations (reproducers above)";
  Fmt.pr "campaign clean in %.2fs@." dt;
  [
    (Fmt.str "fuzz: campaign wall-clock (%d cases, jobs=1)" count, dt *. 1e9);
  ]

(* --- textual model format ----------------------------------------------- *)

(* Print/parse throughput of the .stcg textual format over a
   fuzz-generated corpus, with round-trip equality asserted as a gate —
   the bench doubles as a randomized regression test, and ns/model is
   tracked in the BENCH json.  The corpus is derived from the same
   case addressing the fuzzer uses, so every model replays exactly. *)
let text_bench () =
  section "text: .stcg print/parse throughput";
  let count = if smoke then 60 else 300 in
  let sources =
    List.init count (fun i ->
        let model, _, _ = Fuzzer.Campaign.case_gen ~seed:0 ~max_steps:8 i in
        Text.Source.of_spec model)
  in
  let t0 = Unix.gettimeofday () in
  let texts = List.map Text.Printer.print sources in
  let t_print = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  let parsed =
    List.map
      (fun text ->
        match Text.Parser.parse_string text with
        | Ok src -> src
        | Error e ->
          failwith ("text bench: " ^ Text.Syntax.error_to_string e))
      texts
  in
  let t_parse = Unix.gettimeofday () -. t1 in
  List.iter2
    (fun a b ->
      if not (Text.Source.equal a b) then
        failwith "text bench: round-trip inequality")
    sources parsed;
  let bytes = List.fold_left (fun acc t -> acc + String.length t) 0 texts in
  let per phase = phase /. float_of_int count in
  Fmt.pr
    "corpus: %d models, %d KiB | print %.0f models/s | parse %.0f models/s@."
    count (bytes / 1024)
    (float_of_int count /. t_print)
    (float_of_int count /. t_parse);
  [
    (Fmt.str "text: print ns/model (corpus %d)" count, per t_print *. 1e9);
    (Fmt.str "text: parse ns/model (corpus %d)" count, per t_parse *. 1e9);
  ]

(* --- falsification ------------------------------------------------------ *)

(* Monitoring cost of the sliding-window STL robustness monitor over a
   trace corpus generated by the falsification signal generator at a
   fixed seed, with the naive O(n*w) reference measured alongside so
   the BENCH json tracks the deque win as ns/step.  A fixed-seed
   campaign over the built-in requirement table doubles as a gate:
   every seeded-faulty requirement must come back FALSIFIED. *)
let falsify_bench () =
  section "falsify: STL robustness monitoring";
  let steps = if smoke then 64 else 256 in
  let per_req = if smoke then 4 else 16 in
  let reqs = Spec.Requirements.table in
  let corpus =
    List.concat_map
      (fun (r : Spec.Requirements.req) ->
        match Models.Registry.find r.Spec.Requirements.r_model with
        | None -> []
        | Some (e : Models.Registry.entry) ->
          let exec = Slim.Exec.handle (e.Models.Registry.program ()) in
          let plan =
            Spec.Signal.plan exec ~shape:Spec.Signal.Piecewise_constant ~steps
              ~segments:6
          in
          let rng = Spec.Prng.create 0xBE7C in
          List.init per_req (fun _ ->
              ( Spec.Search.witness_trace ~plan
                  (Spec.Signal.random_params plan rng),
                r.Spec.Requirements.r_formula )))
      reqs
  in
  let total_steps =
    List.fold_left (fun a (t, _) -> a + Spec.Monitor.length t) 0 corpus
  in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (t, f) -> ignore (Spec.Monitor.robustness_signal t f)) corpus;
  let t_fast = Unix.gettimeofday () -. t0 in
  let t1 = Unix.gettimeofday () in
  List.iter
    (fun (t, f) ->
      for at = 0 to Spec.Monitor.length t - 1 do
        ignore (Spec.Monitor.robustness_naive ~at t f)
      done)
    corpus;
  let t_naive = Unix.gettimeofday () -. t1 in
  let cfg = Spec.Falsify.default_config ~seed:1 in
  let rows = Spec.Falsify.campaign cfg reqs in
  List.iter
    (fun (r : Spec.Falsify.row) ->
      if r.Spec.Falsify.f_fault && not r.Spec.Falsify.f_falsified then
        failwith
          (Fmt.str "falsify bench: seeded fault %s/%s not falsified"
             r.Spec.Falsify.f_model r.Spec.Falsify.f_req))
    rows;
  let falsified =
    List.length (List.filter (fun r -> r.Spec.Falsify.f_falsified) rows)
  in
  let per_step dt = dt /. float_of_int total_steps *. 1e9 in
  Fmt.pr
    "corpus: %d traces, %d steps | monitor %.0f ns/step (deque) vs %.0f \
     ns/step (naive) | campaign %d/%d falsified@."
    (List.length corpus) total_steps (per_step t_fast) (per_step t_naive)
    falsified (List.length rows);
  [
    (Fmt.str "falsify: monitor ns/step (deque, %d-step traces)" steps,
     per_step t_fast);
    (Fmt.str "falsify: monitor ns/step (naive, %d-step traces)" steps,
     per_step t_naive);
  ]

(* --- micro-benchmarks --------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | c when Char.code c < 32 -> Buffer.add_string buf (Fmt.str "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json ?telemetry ?(derived = []) path (results : (string * float) list) =
  let oc = open_out path in
  output_string oc "{\n";
  output_string oc (Fmt.str "  \"quick\": %b,\n" quick);
  (* worker-domain count the harness artifacts ran with (STCG_JOBS or
     cores - 1) — wall-clock entries are only comparable at equal jobs —
     and what that request clamps to on this machine's core count *)
  output_string oc (Fmt.str "  \"jobs\": %d,\n" (Harness.Pool.default_jobs ()));
  output_string oc
    (Fmt.str "  \"jobs_effective\": %d,\n"
       (Harness.Pool.effective_jobs (Harness.Pool.default_jobs ())));
  output_string oc "  \"unit\": \"ns/run\",\n";
  (* headline efficiency ratios of the end-to-end phases, promoted to
     top-level fields so cross-PR tracking can diff them without digging
     into the telemetry object: solve-cache hit rate, term-DAG dedup
     ratio, HC4 memo intensity *)
  List.iter
    (fun (name, v) ->
      output_string oc (Fmt.str "  \"%s\": %.6f,\n" (json_escape name) v))
    derived;
  (* counter/histogram/span snapshot of the end-to-end phases (paper
     artifacts, wall-clock matrix, fuzz campaign); micro-benchmarks run
     after telemetry is reset and measure the disabled path *)
  (match telemetry with
   | Some obj -> output_string oc (Fmt.str "  \"telemetry\": %s,\n" obj)
   | None -> ());
  output_string oc "  \"results\": [\n";
  List.iteri
    (fun i (name, ns) ->
      output_string oc
        (Fmt.str "    { \"name\": \"%s\", \"ns_per_run\": %.1f }%s\n"
           (json_escape name) ns
           (if i = List.length results - 1 then "" else ",")))
    results;
  output_string oc "  ]\n}\n";
  close_out oc;
  Fmt.pr "@.wrote %d results to %s@." (List.length results) path

let micro_benchmarks () =
  section "Bechamel micro-benchmarks (substrate primitives)";
  let open Bechamel in
  let open Toolkit in
  let cputask = (Option.get (Models.Registry.find "CPUTask")).program () in
  let exec = Slim.Exec.handle cputask in
  let st0 = Slim.Interp.initial_state cputask in
  let rng = Random.State.make [| 11 |] in
  let inputs = Slim.Interp.random_inputs rng cputask in
  let est0 = Slim.Exec.state_of_smap exec st0 in
  let einputs = Slim.Exec.inputs_of_smap exec inputs in
  let branch =
    List.nth (Slim.Branch.sort_by_depth (Slim.Exec.branches exec)) 10
  in
  let tracker = Coverage.Tracker.create cputask in
  let test_interp =
    Test.make ~name:"interp: one CPUTask step"
      (Staged.stage (fun () ->
           ignore (Slim.Interp.run_step cputask st0 inputs)))
  in
  let test_interp_ref =
    (* the seed's map/Hashtbl interpreter, kept as the differential-test
       oracle: its ns/run is the baseline the slot-compiled core beats *)
    Test.make ~name:"interp(reference): one CPUTask step"
      (Staged.stage (fun () ->
           ignore (Slim.Interp.run_step_reference cputask st0 inputs)))
  in
  let test_exec =
    Test.make ~name:"exec: one CPUTask step (slots)"
      (Staged.stage (fun () -> ignore (Slim.Exec.run_step exec est0 einputs)))
  in
  let test_exec_hash =
    Test.make ~name:"exec: state hash + equal"
      (Staged.stage (fun () ->
           ignore (Slim.Exec.state_hash est0);
           ignore (Slim.Exec.state_equal est0 est0)))
  in
  let test_tracked =
    Test.make ~name:"interp: step + coverage tracking"
      (Staged.stage (fun () ->
           ignore
             (Slim.Exec.run_step
                ~on_event:(Coverage.Tracker.observe tracker)
                exec est0 einputs)))
  in
  let test_solve =
    Test.make ~name:"symexec: one-step branch solve"
      (Staged.stage (fun () ->
           ignore
             (Symexec.Explore.solve_branch cputask ~state:est0
                ~target:branch.Slim.Branch.key)))
  in
  let csp_problem =
    let open Solver in
    {
      Csp.p_vars =
        [
          ("x", Slim.Value.tint_range 0 10000);
          ("y", Slim.Value.tint_range 0 10000);
        ];
      p_constraint =
        Term.and_
          (Term.cmp Slim.Ir.Eq (Term.var "x")
             (Term.binop Slim.Ir.Add (Term.var "y") (Term.cint 137)))
          (Term.cmp Slim.Ir.Ge (Term.var "y") (Term.cint 420));
    }
  in
  let test_csp =
    Test.make ~name:"solver: linear int CSP"
      (Staged.stage (fun () -> ignore (Solver.Csp.solve csp_problem)))
  in
  let test_compile =
    Test.make ~name:"compile: AFC diagram -> IR"
      (Staged.stage (fun () ->
           ignore (Slim.Compile.to_program (Models.Afc.model ()))))
  in
  let test_slot_compile =
    Test.make ~name:"exec: compile CPUTask handle"
      (Staged.stage (fun () -> ignore (Slim.Exec.compile cputask)))
  in
  let tests =
    [
      test_interp;
      test_interp_ref;
      test_exec;
      test_exec_hash;
      test_tracked;
      test_solve;
      test_csp;
      test_compile;
      test_slot_compile;
    ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    if smoke then Benchmark.cfg ~limit:50 ~quota:(Time.second 0.05) ()
    else Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let collected = ref [] in
  let measure tests =
    List.iter
      (fun test ->
        let raw = Benchmark.all cfg instances test in
        let results = Analyze.all ols Instance.monotonic_clock raw in
        Hashtbl.iter
          (fun name result ->
            match Analyze.OLS.estimates result with
            | Some [ est ] ->
              collected := (name, est) :: !collected;
              Fmt.pr "%-40s %12.1f ns/run@." name est
            | Some _ | None -> Fmt.pr "%-40s (no estimate)@." name)
          results)
      tests
  in
  measure tests;
  (* same one-step workload with telemetry collection on, to keep the
     enabled-path cost visible next to the disabled-path number above *)
  let test_exec_tel =
    Test.make ~name:"exec: one CPUTask step (slots, telemetry)"
      (Staged.stage (fun () -> ignore (Slim.Exec.run_step exec est0 einputs)))
  in
  Telemetry.enable ();
  measure [ test_exec_tel ];
  Telemetry.disable ();
  Telemetry.reset ();
  List.rev !collected

let () =
  Fmt.pr "STCG reproduction benchmark harness%s@."
    (if smoke then " (smoke mode)" else if quick then " (quick mode)" else "");
  Fmt.pr "budget=%.0f virtual seconds, %d seeds, %d worker domains@." budget
    n_seeds
    (Harness.Pool.default_jobs ());
  (* micro-benchmarks run first, from a fresh process heap with
     telemetry disabled, so the ns/run figures measure the fast path and
     do not inherit GC state from the end-to-end phases; telemetry is
     then switched on for those phases and snapshotted into the json *)
  let micros = micro_benchmarks () in
  if not micro_only then begin
    Telemetry.enable ();
    (* the bench never exports a Chrome trace, so keep only per-name
       span aggregates: full record retention costs O(completed spans)
       shared-major-heap memory (tens of MB over a full artifact sweep),
       which is pure stop-the-world GC pressure under jobs > 1 *)
    Telemetry.set_span_retention `Aggregate
  end;
  if not micro_only then paper_artifacts ();
  let wallclock = if micro_only then [] else harness_wallclock () in
  let analysis = if micro_only then [] else analysis_bench () in
  let fuzz = if micro_only then [] else fuzz_campaign () in
  let text = if micro_only then [] else text_bench () in
  let falsify = if micro_only then [] else falsify_bench () in
  let telemetry =
    if micro_only then None else Some (Telemetry.json_summary ())
  in
  let derived = if micro_only then [] else Telemetry.derived_rates () in
  Telemetry.disable ();
  Telemetry.reset ();
  let results = micros @ wallclock @ analysis @ fuzz @ text @ falsify in
  (match json_path with
   | Some path -> write_json ?telemetry ~derived path results
   | None -> ());
  Fmt.pr "@.done.@."
