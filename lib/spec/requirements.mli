(** The built-in requirement table over the registry benchmark models —
    the falsification campaign's workload, analogous to an ARCH-COMP
    requirement set next to the paper's Table II models.

    Each model carries a mix of {e expected-to-hold} range invariants,
    {e search-dependent} requirements whose verdict depends on what the
    input search can reach, and {e seeded-faulty} requirements
    ([fault = true]) that are unsatisfiable by construction (they demand
    an output level outside the declared signal range), so a campaign
    must falsify them on the very first trace — the determinism anchor
    of the test suite. *)

type req = {
  r_model : string;  (** registry model name *)
  r_name : string;  (** requirement id, unique per model *)
  r_formula : Stl.formula;
  r_fault : bool;  (** seeded fault: falsifiable on every input trace *)
}

val table : req list
(** Registry order, then declaration order within a model.  Every
    formula validates against its model's output interface. *)

val for_model : string -> req list
val models : unit -> string list
(** Model names carrying at least one requirement, registry order. *)

val find : model:string -> name:string -> req option
