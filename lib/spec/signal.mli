(** Parameterized input-signal generators.

    A {!plan} fixes the search space for one compiled model: a trace
    length in steps, a number of segments, and a shape — {e
    piecewise-constant} (the value of segment [k] is held for its whole
    span; the SimCoTest baseline's seed shape) or {e piecewise-linear}
    (segment parameters are control points, interpolated between).

    Every scalar input variable contributes [segments] float parameters
    ranged over the variable's declared domain, flattened into one
    [float array] so the falsification search can treat a candidate as a
    point in a box.  {!render} turns a parameter vector into the
    concrete per-step input arrays fed to {!Slim.Exec.run_sequence}:
    bools threshold at 0.5, ints round to nearest, reals clamp to their
    declared bounds.  Vector-typed inputs are not searched and keep
    their default value. *)

type shape = Piecewise_constant | Piecewise_linear

val shape_name : shape -> string
(** ["pwc" | "pwl"]. *)

val shape_of_name : string -> shape option

type plan

val plan : Slim.Exec.t -> shape:shape -> steps:int -> segments:int -> plan
(** Raises [Invalid_argument] unless [steps >= 1] and
    [1 <= segments <= steps]. *)

val n_params : plan -> int
val steps : plan -> int
val exec : plan -> Slim.Exec.t

val domain : plan -> int -> float * float
(** Inclusive parameter box for coordinate [i]. *)

val random_params : plan -> Prng.t -> float array
(** Uniform point in the box; draws parameters in coordinate order
    (stable PRNG consumption). *)

val render : plan -> float array -> Slim.Exec.inputs list
(** Concrete inputs for each of the plan's steps.  Raises
    [Invalid_argument] on a parameter vector of the wrong length. *)
