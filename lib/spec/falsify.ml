type config = {
  steps : int;
  segments : int;
  shape : Signal.shape;
  samples : int;
  descent : int;
  seed : int;
}

let default_config ~seed =
  { steps = 48; segments = 6; shape = Signal.Piecewise_constant;
    samples = 32; descent = 64; seed }

type row = {
  f_model : string;
  f_req : string;
  f_fault : bool;
  f_rob : float;
  f_falsified : bool;
  f_at_trace : int option;
  f_traces : int;
}

(* A requirement's search seed depends only on the campaign seed and its
   table position — not on scheduling — so the campaign is replayable
   per row and byte-stable for any worker count. *)
let req_seed cfg index = Prng.mix_seed cfg.seed index

let exec_of_model name =
  match Models.Registry.find name with
  | Some (e : Models.Registry.entry) -> Slim.Exec.handle (e.program ())
  | None -> failwith (Printf.sprintf "falsify: unknown registry model %S" name)

let run_req_at cfg index (r : Requirements.req) =
  let exec = exec_of_model r.r_model in
  let plan =
    Signal.plan exec ~shape:cfg.shape ~steps:cfg.steps ~segments:cfg.segments
  in
  let res =
    Search.run ~samples:cfg.samples ~descent:cfg.descent ~plan
      ~seed:(req_seed cfg index) r.r_formula
  in
  {
    f_model = r.r_model;
    f_req = r.r_name;
    f_fault = r.r_fault;
    f_rob = res.Search.best_rob;
    f_falsified = res.Search.falsified;
    f_at_trace = res.Search.at_trace;
    f_traces = res.Search.traces;
  }

let run_req cfg r = run_req_at cfg 0 r

let campaign ?jobs ?oversubscribe cfg reqs =
  let indexed = List.mapi (fun i r -> (i, r)) reqs in
  Harness.Pool.parallel_map ?jobs ?oversubscribe
    ~cost:(fun (_, (r : Requirements.req)) ->
      (* searches that stop at trace 1 (seeded faults) are far cheaper
         than full sample+descent budgets; schedule the long ones first *)
      if r.r_fault then 1 else cfg.samples + cfg.descent)
    (fun (i, r) -> run_req_at cfg i r)
    indexed

let render cfg rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "falsify: seed=%d steps=%d segments=%d shape=%s samples=%d descent=%d\n"
       cfg.seed cfg.steps cfg.segments (Signal.shape_name cfg.shape)
       cfg.samples cfg.descent);
  let w_model =
    List.fold_left (fun w r -> max w (String.length r.f_model)) 5 rows
  in
  let w_req =
    List.fold_left (fun w r -> max w (String.length r.f_req)) 11 rows
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-*s  %-*s  %-6s  %-10s  %-9s  %s\n" w_model "model"
       w_req "requirement" "fault" "verdict" "at-trace" "min-robustness");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %-*s  %-*s  %-6s  %-10s  %-9s  %.6g\n" w_model
           r.f_model w_req r.f_req
           (if r.f_fault then "yes" else "no")
           (if r.f_falsified then "FALSIFIED" else "ok")
           (match r.f_at_trace with Some n -> string_of_int n | None -> "-")
           r.f_rob))
    rows;
  let falsified = List.length (List.filter (fun r -> r.f_falsified) rows) in
  let traces = List.fold_left (fun a r -> a + r.f_traces) 0 rows in
  Buffer.add_string buf
    (Printf.sprintf "  %d/%d falsified, %d traces executed\n" falsified
       (List.length rows) traces);
  Buffer.contents buf
