(** STL-style temporal requirements over model output traces.

    A requirement is a step-bounded temporal formula over the {e output
    signals} of a compiled model: atomic comparisons of arithmetic
    signal expressions, boolean connectives, and the discrete-time
    temporal operators [always\[a,b\]], [eventually\[a,b\]] and
    [until\[a,b\]] whose bounds count {!Slim.Exec} steps.

    The semantics is quantitative (Fainekos–Pappas robustness): every
    formula denotes a real number whose {e sign} decides boolean
    satisfaction — positive robustness implies the trace satisfies the
    formula, negative implies it violates it (zero is the boundary and
    decides neither).  Falsification searches for inputs that drive the
    robustness of a requirement below zero; the margin doubles as the
    search gradient.

    Finite traces use clamped-window semantics: at evaluation time [t]
    over a trace of [n] steps, a temporal window [\[a,b\]] denotes the
    step interval [\[min (t+a) (n-1), min (t+b) (n-1)\]] — never empty,
    matching the discrete conventions of Breach/S-TaLiRo.  A top-level
    evaluation at [t = 0] is horizon-complete when [n > horizon f]. *)

type sig_expr =
  | Sig of string  (** named scalar model output; booleans read as 0/1 *)
  | Const of float
  | Add of sig_expr * sig_expr
  | Sub of sig_expr * sig_expr
  | Mul of sig_expr * sig_expr
  | Neg of sig_expr
  | Abs of sig_expr
  | Min of sig_expr * sig_expr
  | Max of sig_expr * sig_expr

type cmp = Le | Lt | Ge | Gt | Eq

type formula =
  | Atom of cmp * sig_expr * sig_expr
      (** robustness: [Le]/[Lt] → rhs - lhs, [Ge]/[Gt] → lhs - rhs,
          [Eq] → -|lhs - rhs| (never positive) *)
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Always of int * int * formula  (** [always\[a,b\] f] *)
  | Eventually of int * int * formula
  | Until of int * int * formula * formula
      (** [until\[a,b\] f g]: some [τ] in the window satisfies [g] and
          [f] holds at every step of [\[t, τ\]] *)

(** {1 Structure} *)

val horizon : formula -> int
(** Steps of trace needed beyond the evaluation point: a top-level
    robustness at step 0 is window-complete iff the trace has at least
    [horizon f + 1] steps. *)

val signals : formula -> string list
(** Output-signal names read by the formula, sorted, without
    duplicates. *)

val validate :
  outputs:(string * Slim.Value.ty) list -> formula -> (unit, string) result
(** Check the formula against a model's output interface: every
    temporal bound must satisfy [0 <= a <= b], and every {!Sig} must
    name a declared {b scalar} output (bool, int or real — vector
    outputs are not addressable).  The error message names the first
    offending bound or signal. *)

val bounds_ok : int -> int -> bool
(** [0 <= a && a <= b] — the well-formedness the parser enforces. *)

(** {1 Canonical text}

    The one-line s-expression syntax of the [.stcg] [spec] block; see
    {!Text.Parser} for the reader.  [to_string] output reparses to a
    structurally equal formula, with floats printed [%.17g]. *)

val sig_to_string : sig_expr -> string
val to_string : formula -> string
val pp : formula Fmt.t
