type shape = Piecewise_constant | Piecewise_linear

let shape_name = function Piecewise_constant -> "pwc" | Piecewise_linear -> "pwl"

let shape_of_name = function
  | "pwc" -> Some Piecewise_constant
  | "pwl" -> Some Piecewise_linear
  | _ -> None

(* One searched coordinate: which input slot it feeds and the float box
   the search may move it in.  Bool inputs search [0,1] and threshold at
   render time; int inputs search the declared range and round. *)
type param = { slot : int; ty : Slim.Value.ty; lo : float; hi : float }

type plan = {
  exec : Slim.Exec.t;
  shape : shape;
  steps : int;
  segments : int;
  params : param array;  (** var-major: [segments] consecutive entries per input *)
}

let plan exec ~shape ~steps ~segments =
  if steps < 1 then invalid_arg "Signal.plan: steps < 1";
  if segments < 1 || segments > steps then
    invalid_arg "Signal.plan: need 1 <= segments <= steps";
  let params = ref [] in
  Array.iteri
    (fun slot (v : Slim.Ir.var) ->
      let box =
        match v.ty with
        | Slim.Value.Tbool -> Some (0.0, 1.0)
        | Slim.Value.Tint { lo; hi } -> Some (float_of_int lo, float_of_int hi)
        | Slim.Value.Treal { lo; hi } -> Some (lo, hi)
        | Slim.Value.Tvec _ -> None
      in
      match box with
      | None -> ()
      | Some (lo, hi) ->
        for _ = 1 to segments do
          params := { slot; ty = v.ty; lo; hi } :: !params
        done)
    (Slim.Exec.input_vars exec);
  { exec; shape; steps; segments; params = Array.of_list (List.rev !params) }

let n_params p = Array.length p.params
let steps p = p.steps
let exec p = p.exec

let domain p i =
  let q = p.params.(i) in
  (q.lo, q.hi)

let random_params p rng =
  Array.map (fun q -> Prng.float_in rng q.lo q.hi) p.params

let clamp lo hi v = if v < lo then lo else if v > hi then hi else v

(* Raw float level of one input variable at step [t], from its [segments]
   consecutive parameters starting at [base]. *)
let level p vec base t =
  match p.shape with
  | Piecewise_constant ->
    (* segment k spans steps [k*steps/segments, (k+1)*steps/segments) *)
    let k = t * p.segments / p.steps in
    let k = if k > p.segments - 1 then p.segments - 1 else k in
    vec.(base + k)
  | Piecewise_linear ->
    if p.segments = 1 then vec.(base)
    else begin
      (* control point k sits at step k*(steps-1)/(segments-1) *)
      let pos = float_of_int t *. float_of_int (p.segments - 1)
                /. float_of_int (p.steps - 1) in
      let k = int_of_float (Float.floor pos) in
      let k = if k > p.segments - 2 then p.segments - 2 else k in
      let frac = pos -. float_of_int k in
      let a = vec.(base + k) and b = vec.(base + k + 1) in
      a +. ((b -. a) *. frac)
    end

let value_of_level (q : param) v : Slim.Value.t =
  match q.ty with
  | Slim.Value.Tbool -> Bool (v >= 0.5)
  | Slim.Value.Tint { lo; hi } ->
    Int (clamp lo hi (int_of_float (Float.round v)))
  | Slim.Value.Treal { lo; hi } -> Real (clamp lo hi v)
  | Slim.Value.Tvec _ -> assert false

let render p vec =
  if Array.length vec <> Array.length p.params then
    invalid_arg "Signal.render: wrong parameter count";
  let base = Slim.Exec.default_inputs p.exec in
  List.init p.steps (fun t ->
      let row = Array.map Slim.Value.copy base in
      let i = ref 0 in
      while !i < Array.length p.params do
        let q = p.params.(!i) in
        row.(q.slot) <- value_of_level q (level p vec !i t);
        i := !i + p.segments
      done;
      row)
