(** Robustness-guided falsification over one requirement.

    The search draws seeded random parameter vectors from a
    {!Signal.plan}, executes each rendered input trace, monitors the
    requirement's robustness at step 0, and keeps the
    minimum-robustness trace as the candidate witness; if random
    sampling does not cross zero, coordinate-wise local descent
    perturbs the best candidate with a shrinking step.  The whole run
    is a pure function of [(plan, formula, seed, budgets)] — replayable
    and byte-stable under any parallel schedule. *)

type result = {
  best_rob : float;  (** minimum robustness observed at step 0 *)
  falsified : bool;  (** [best_rob < 0.0] *)
  at_trace : int option;
      (** 1-based index of the first falsifying trace, counting every
          executed trace (random samples then descent proposals) *)
  traces : int;  (** traces executed in total *)
  best_params : float array;  (** parameters of the minimum-robustness trace *)
}

val run :
  ?samples:int ->
  ?descent:int ->
  plan:Signal.plan ->
  seed:int ->
  Stl.formula ->
  result
(** [samples] random traces (default 32), then up to [descent]
    local-descent proposals (default 64), stopping at the first
    robustness below zero.  Instrumented under the [spec.search] span;
    counts [spec.traces_evaluated] and [spec.falsifications]. *)

val witness_trace : plan:Signal.plan -> float array -> Monitor.trace
(** Re-execute a parameter vector (e.g. [best_params]) and return the
    monitored output trace. *)
