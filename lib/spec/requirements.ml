type req = {
  r_model : string;
  r_name : string;
  r_formula : Stl.formula;
  r_fault : bool;
}

(* Formula shorthands — the table below reads close to the STL it
   denotes. *)
let s n = Stl.Sig n
let c x = Stl.Const x
let ( <=. ) l r = Stl.Atom (Stl.Le, l, r)
let ( >=. ) l r = Stl.Atom (Stl.Ge, l, r)
let always a b f = Stl.Always (a, b, f)
let eventually a b f = Stl.Eventually (a, b, f)
let until a b f g = Stl.Until (a, b, f, g)
let implies f g = Stl.Implies (f, g)

(* An output level no declared signal range can reach: seeded-faulty
   [eventually] requirements demand it, so every trace falsifies them
   at monitoring time — the deterministic falsification anchor. *)
let unreachable = 1e9

let req ?(fault = false) model name formula =
  { r_model = model; r_name = name; r_formula = formula; r_fault = fault }

let table =
  [
    (* CPUTask: scheduler status stays in its enum; a queue of [slots]
       entries can never hold a billion tasks (seeded fault). *)
    req "CPUTask" "status-in-range" (always 0 40 (s "status" <=. c 5.0));
    req "CPUTask" "queue-overflow" ~fault:true
      (eventually 0 40 (s "queue_count" >=. c unreachable));
    (* TWC: throttle/brake are percentages; demanding motor torque of
       250% is the seeded fault; the 95% headroom invariant is
       search-dependent — falsified iff the search can saturate the
       motor. *)
    req "TWC" "motor-in-range" (always 0 40 (s "motor" <=. c 100.0));
    req "TWC" "motor-hits-250" ~fault:true
      (eventually 0 40 (s "motor" >=. c 250.0));
    req "TWC" "motor-headroom" (always 0 40 (s "motor" <=. c 95.0));
    (* LEDLC: the controller sheds load above its 50-unit budget; the
       overload flag must only rise under real load. *)
    req "LEDLC" "current-budget" (always 0 40 (s "total_current" <=. c 50.0));
    req "LEDLC" "current-runaway" ~fault:true
      (eventually 0 40 (s "total_current" >=. c unreachable));
    req "LEDLC" "overload-implies-load"
      (always 0 40
         (implies (s "overload" >=. c 0.5) (s "total_current" >=. c 1.0)));
    (* NICProtocol: the drop counter saturates at 100 by type; a drop
       storm past that is the seeded fault. *)
    req "NICProtocol" "dropped-bounded" (always 0 40 (s "dropped" <=. c 100.0));
    req "NICProtocol" "dropped-storm" ~fault:true
      (eventually 0 40 (s "dropped" >=. c unreachable));
    (* TCP: counters are range-bounded; "no data before the handshake
       completes" exercises [until] — search-dependent. *)
    req "TCP" "resets-bounded" (always 0 40 (s "resets" <=. c 100.0));
    req "TCP" "comes-up" (eventually 0 40 (s "established" >=. c 1.0));
    req "TCP" "data-after-handshake"
      (until 0 40 (s "data_ok" <=. c 0.0) (s "established" >=. c 1.0));
  ]

let for_model m = List.filter (fun r -> r.r_model = m) table

let models () =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (e : Models.Registry.entry) ->
      if (not (Hashtbl.mem seen e.name)) && for_model e.name <> [] then begin
        Hashtbl.add seen e.name ();
        Some e.name
      end
      else None)
    Models.Registry.entries

let find ~model ~name =
  List.find_opt (fun r -> r.r_model = model && r.r_name = name) table
