(* Private SplitMix64 for the falsification search (same algorithm as
   the fuzzer's {!Fuzzer.Splitmix}, re-rolled here because the spec
   library sits *below* the fuzzer in the dependency graph: the sixth
   fuzz oracle differentials this library, so depending on the fuzzer
   would be a cycle).  Deterministic across platforms and OCaml
   versions, which is what makes `stcg falsify --seed N` replayable. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* mix two seeds into one: job [i] of campaign seed [s] draws from an
   independent stream for any job count *)
let mix_seed a b = Int64.to_int (mix64 (Int64.add (mix64 (Int64.of_int a)) (Int64.of_int b)))

let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound <= 0";
  let max = (1 lsl 62) - 1 in
  let limit = max - (((max mod bound) + 1) mod bound) in
  let rec go () =
    let v = bits62 t in
    if v <= limit then v mod bound else go ()
  in
  go ()

let float t x =
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. x

let float_in t lo hi = if hi <= lo then lo else lo +. float t (hi -. lo)
