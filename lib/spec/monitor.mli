(** Robustness monitoring over finite step traces.

    A trace is a set of equal-length named float columns, one per scalar
    model output, indexed by step.  {!robustness} is the production
    monitor: it computes the robustness signal of every temporal
    subformula in one pass using monotone deques, so a window of any
    width costs O(n) per [always]/[eventually] (and O(n·w) for
    [until]).  {!robustness_naive} recomputes each point from the
    definition; the two are kept {b bit-for-bit} identical — same float
    fold order, same tie conventions — and differenced by the fuzz
    oracle and the test suite.

    Both monitors use the clamped-window finite-trace semantics
    documented in {!Stl}. *)

type trace

val of_columns : (string * float array) list -> trace
(** Build a trace from named columns.  Raises [Invalid_argument] if the
    list is empty, a column is empty, or lengths disagree. *)

val length : trace -> int
val columns : trace -> (string * float array) list

val column : trace -> string -> float array
(** Raises [Invalid_argument] on unknown names — {!Stl.validate} against
    the model interface up front to get a diagnosable error instead. *)

val of_run : Slim.Exec.t -> Slim.Exec.outputs list -> trace
(** Columns for every {b scalar} output of the compiled model (booleans
    read as 0/1, vectors skipped), one row per step.  Raises
    [Invalid_argument] on an empty run. *)

(** {1 Monitors} *)

val robustness : ?at:int -> trace -> Stl.formula -> float
(** Quantitative robustness at step [at] (default 0), computed with the
    sliding-window monitor.  Instrumented under the [spec.monitor]
    span. *)

val robustness_signal : trace -> Stl.formula -> float array
(** The full per-step robustness signal ([robustness ~at:t] for every
    [t]) at the cost of one monitor pass. *)

val robustness_naive : ?at:int -> trace -> Stl.formula -> float
(** Reference monitor: direct recursion over the definition at one
    evaluation point, O(n·w) per temporal operator per point.  Equal to
    {!robustness} bit-for-bit on traces of finite floats. *)

val sat : ?at:int -> trace -> Stl.formula -> bool
(** Qualitative (boolean) semantics, evaluated independently of the
    robustness computations.  When [robustness] is nonzero its sign
    agrees with [sat]; at exactly zero the boolean verdict is free. *)
