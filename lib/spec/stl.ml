(* STL-style requirement AST with quantitative (robustness) semantics.
   The numeric evaluation lives in {!Monitor}; this module is the pure
   syntax: structure, validation against a model's output interface,
   and the canonical one-line text the .stcg [spec] block stores. *)

type sig_expr =
  | Sig of string
  | Const of float
  | Add of sig_expr * sig_expr
  | Sub of sig_expr * sig_expr
  | Mul of sig_expr * sig_expr
  | Neg of sig_expr
  | Abs of sig_expr
  | Min of sig_expr * sig_expr
  | Max of sig_expr * sig_expr

type cmp = Le | Lt | Ge | Gt | Eq

type formula =
  | Atom of cmp * sig_expr * sig_expr
  | Not of formula
  | And of formula * formula
  | Or of formula * formula
  | Implies of formula * formula
  | Always of int * int * formula
  | Eventually of int * int * formula
  | Until of int * int * formula * formula

(* --- structure ---------------------------------------------------------- *)

let rec horizon = function
  | Atom _ -> 0
  | Not f -> horizon f
  | And (f, g) | Or (f, g) | Implies (f, g) -> max (horizon f) (horizon g)
  | Always (_, b, f) | Eventually (_, b, f) -> b + horizon f
  | Until (_, b, f, g) -> b + max (horizon f) (horizon g)

let rec sig_signals acc = function
  | Sig n -> n :: acc
  | Const _ -> acc
  | Neg e | Abs e -> sig_signals acc e
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Min (a, b) | Max (a, b) ->
    sig_signals (sig_signals acc a) b

let rec collect_signals acc = function
  | Atom (_, l, r) -> sig_signals (sig_signals acc l) r
  | Not f -> collect_signals acc f
  | And (f, g) | Or (f, g) | Implies (f, g) | Until (_, _, f, g) ->
    collect_signals (collect_signals acc f) g
  | Always (_, _, f) | Eventually (_, _, f) -> collect_signals acc f

let signals f = List.sort_uniq compare (collect_signals [] f)

let bounds_ok a b = 0 <= a && a <= b

let scalar_ty = function
  | Slim.Value.Tbool | Slim.Value.Tint _ | Slim.Value.Treal _ -> true
  | Slim.Value.Tvec _ -> false

let validate ~outputs f =
  let exception Bad of string in
  let check_bounds op a b =
    if not (bounds_ok a b) then
      raise (Bad (Printf.sprintf "%s[%d,%d]: malformed bounds (need 0 <= a <= b)" op a b))
  in
  let rec go = function
    | Atom (_, l, r) -> go_sig l; go_sig r
    | Not f -> go f
    | And (f, g) | Or (f, g) | Implies (f, g) -> go f; go g
    | Always (a, b, f) -> check_bounds "always" a b; go f
    | Eventually (a, b, f) -> check_bounds "eventually" a b; go f
    | Until (a, b, f, g) -> check_bounds "until" a b; go f; go g
  and go_sig = function
    | Sig n -> (
      match List.assoc_opt n outputs with
      | None -> raise (Bad (Printf.sprintf "unknown output signal %S" n))
      | Some ty when not (scalar_ty ty) ->
        raise (Bad (Printf.sprintf "output signal %S is a vector (not addressable)" n))
      | Some _ -> ())
    | Const _ -> ()
    | Neg e | Abs e -> go_sig e
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Min (a, b) | Max (a, b) ->
      go_sig a; go_sig b
  in
  match go f with () -> Ok () | exception Bad m -> Error m

(* --- canonical text ------------------------------------------------------ *)

let fstr f = Printf.sprintf "%.17g" f

let rec sig_to_string = function
  | Sig n -> Printf.sprintf "(sig \"%s\")" n
  | Const f -> Printf.sprintf "(c %s)" (fstr f)
  | Add (a, b) -> Printf.sprintf "(+ %s %s)" (sig_to_string a) (sig_to_string b)
  | Sub (a, b) -> Printf.sprintf "(- %s %s)" (sig_to_string a) (sig_to_string b)
  | Mul (a, b) -> Printf.sprintf "(* %s %s)" (sig_to_string a) (sig_to_string b)
  | Neg e -> Printf.sprintf "(neg %s)" (sig_to_string e)
  | Abs e -> Printf.sprintf "(abs %s)" (sig_to_string e)
  | Min (a, b) -> Printf.sprintf "(min %s %s)" (sig_to_string a) (sig_to_string b)
  | Max (a, b) -> Printf.sprintf "(max %s %s)" (sig_to_string a) (sig_to_string b)

let cmp_str = function
  | Le -> "<="
  | Lt -> "<"
  | Ge -> ">="
  | Gt -> ">"
  | Eq -> "="

let rec to_string = function
  | Atom (op, l, r) ->
    Printf.sprintf "(%s %s %s)" (cmp_str op) (sig_to_string l) (sig_to_string r)
  | Not f -> Printf.sprintf "(not %s)" (to_string f)
  | And (f, g) -> Printf.sprintf "(and %s %s)" (to_string f) (to_string g)
  | Or (f, g) -> Printf.sprintf "(or %s %s)" (to_string f) (to_string g)
  | Implies (f, g) -> Printf.sprintf "(implies %s %s)" (to_string f) (to_string g)
  | Always (a, b, f) -> Printf.sprintf "(always %d %d %s)" a b (to_string f)
  | Eventually (a, b, f) -> Printf.sprintf "(eventually %d %d %s)" a b (to_string f)
  | Until (a, b, f, g) ->
    Printf.sprintf "(until %d %d %s %s)" a b (to_string f) (to_string g)

let pp ppf f = Fmt.string ppf (to_string f)
