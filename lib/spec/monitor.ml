(* Two robustness monitors over the same clamped-window semantics:

   - the production monitor computes per-subformula robustness *arrays*
     bottom-up, with a monotone deque giving O(n) windowed min/max;
   - the reference monitor recomputes a single evaluation point straight
     from the definition, O(n·w) per temporal level.

   They must agree bit-for-bit (the fuzz oracle checks exactly that), so
   every float reduction below uses the same two combinators with the
   same argument order and the same tie convention (keep the earlier
   operand; note -0.0 and 0.0 compare equal, so ties keep bits stable in
   both directions).  The deque pops on *strict* comparison, which makes
   its front the earliest minimal element — the same element a
   fold-left over the window would keep. *)

let c_rob_evals = Telemetry.Counter.make "spec.robustness_evals"
let sp_monitor = Telemetry.Span.make "spec.monitor"

type trace = { n : int; cols : (string * float array) list }

let of_columns cols =
  match cols with
  | [] -> invalid_arg "Monitor.of_columns: no columns"
  | (_, c0) :: rest ->
    let n = Array.length c0 in
    if n = 0 then invalid_arg "Monitor.of_columns: empty columns";
    List.iter
      (fun (name, c) ->
        if Array.length c <> n then
          invalid_arg
            (Printf.sprintf "Monitor.of_columns: column %S has length %d, expected %d"
               name (Array.length c) n))
      rest;
    { n; cols }

let length t = t.n
let columns t = t.cols

let column t name =
  match List.assoc_opt name t.cols with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Monitor.column: unknown signal %S" name)

let of_run exec outs =
  let n = List.length outs in
  if n = 0 then invalid_arg "Monitor.of_run: empty run";
  let vars = Slim.Exec.output_vars exec in
  let cols = ref [] in
  Array.iteri
    (fun slot (v : Slim.Ir.var) ->
      match v.ty with
      | Slim.Value.Tvec _ -> ()
      | _ ->
        let col = Array.make n 0.0 in
        List.iteri (fun t row -> col.(t) <- Slim.Value.to_real row.(slot)) outs;
        cols := (v.name, col) :: !cols)
    vars;
  of_columns (List.rev !cols)

(* --- shared float conventions ------------------------------------------- *)

let min2 a b = if b < a then b else a
let max2 a b = if b > a then b else a
let clamp_hi n i = if i > n - 1 then n - 1 else i

let atom_rob op l r =
  match (op : Stl.cmp) with
  | Le | Lt -> r -. l
  | Ge | Gt -> l -. r
  | Eq -> -.Float.abs (l -. r)

(* --- signal expressions -------------------------------------------------- *)

let rec eval_sig t step (e : Stl.sig_expr) =
  match e with
  | Sig name -> (column t name).(step)
  | Const f -> f
  | Add (a, b) -> eval_sig t step a +. eval_sig t step b
  | Sub (a, b) -> eval_sig t step a -. eval_sig t step b
  | Mul (a, b) -> eval_sig t step a *. eval_sig t step b
  | Neg e -> -.eval_sig t step e
  | Abs e -> Float.abs (eval_sig t step e)
  | Min (a, b) -> min2 (eval_sig t step a) (eval_sig t step b)
  | Max (a, b) -> max2 (eval_sig t step a) (eval_sig t step b)

(* --- production monitor: bottom-up robustness arrays --------------------- *)

(* Windowed fold over clamped windows [min(t+a,n-1), min(t+b,n-1)] with a
   monotone deque of indices.  Both window ends are nondecreasing in t, so
   each index enters and leaves the deque once: O(n) total.  [worse] is the
   strict pop test ((>) for min, (<) for max). *)
let window_fold arr a b ~worse =
  let n = Array.length arr in
  let out = Array.make n 0.0 in
  let dq = Array.make n 0 in
  let front = ref 0 and back = ref 0 in
  let filled = ref 0 in
  for t = 0 to n - 1 do
    let lo = clamp_hi n (t + a) and hi = clamp_hi n (t + b) in
    while !filled <= hi do
      let v = arr.(!filled) in
      while !back > !front && worse arr.(dq.(!back - 1)) v do decr back done;
      dq.(!back) <- !filled;
      incr back;
      incr filled
    done;
    while dq.(!front) < lo do incr front done;
    out.(t) <- arr.(dq.(!front))
  done;
  out

let window_min arr a b = window_fold arr a b ~worse:(fun x v -> x > v)
let window_max arr a b = window_fold arr a b ~worse:(fun x v -> x < v)

let rec rob_signal t (f : Stl.formula) =
  let n = t.n in
  match f with
  | Atom (op, l, r) ->
    Array.init n (fun step -> atom_rob op (eval_sig t step l) (eval_sig t step r))
  | Not f -> Array.map (fun x -> -.x) (rob_signal t f)
  | And (f, g) -> Array.map2 min2 (rob_signal t f) (rob_signal t g)
  | Or (f, g) -> Array.map2 max2 (rob_signal t f) (rob_signal t g)
  | Implies (f, g) ->
    Array.map2 max2 (Array.map (fun x -> -.x) (rob_signal t f)) (rob_signal t g)
  | Always (a, b, f) -> window_min (rob_signal t f) a b
  | Eventually (a, b, f) -> window_max (rob_signal t f) a b
  | Until (a, b, f, g) ->
    let fa = rob_signal t f and ga = rob_signal t g in
    let out = Array.make n 0.0 in
    for step = 0 to n - 1 do
      let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
      let runmin = ref infinity in
      for s = step to lo - 1 do
        runmin := min2 !runmin fa.(s)
      done;
      let acc = ref neg_infinity in
      for tau = lo to hi do
        runmin := min2 !runmin fa.(tau);
        acc := max2 !acc (min2 !runmin ga.(tau))
      done;
      out.(step) <- !acc
    done;
    out

let robustness_signal t f =
  Telemetry.Span.with_ sp_monitor (fun () ->
      Telemetry.Counter.incr c_rob_evals;
      rob_signal t f)

let robustness ?(at = 0) t f =
  if at < 0 || at >= t.n then invalid_arg "Monitor.robustness: step out of range";
  (robustness_signal t f).(at)

(* --- reference monitor: pointwise recursion ------------------------------ *)

let rec naive t step (f : Stl.formula) =
  let n = t.n in
  match f with
  | Atom (op, l, r) -> atom_rob op (eval_sig t step l) (eval_sig t step r)
  | Not f -> -.naive t step f
  | And (f, g) -> min2 (naive t step f) (naive t step g)
  | Or (f, g) -> max2 (naive t step f) (naive t step g)
  | Implies (f, g) -> max2 (-.naive t step f) (naive t step g)
  | Always (a, b, f) ->
    let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
    let acc = ref infinity in
    for tau = lo to hi do
      acc := min2 !acc (naive t tau f)
    done;
    !acc
  | Eventually (a, b, f) ->
    let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
    let acc = ref neg_infinity in
    for tau = lo to hi do
      acc := max2 !acc (naive t tau f)
    done;
    !acc
  | Until (a, b, f, g) ->
    let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
    let acc = ref neg_infinity in
    for tau = lo to hi do
      let m = ref infinity in
      for s = step to tau do
        m := min2 !m (naive t s f)
      done;
      acc := max2 !acc (min2 !m (naive t tau g))
    done;
    !acc

let robustness_naive ?(at = 0) t f =
  if at < 0 || at >= t.n then invalid_arg "Monitor.robustness_naive: step out of range";
  naive t at f

(* --- qualitative semantics ----------------------------------------------- *)

let atom_sat op l r =
  match (op : Stl.cmp) with
  | Le -> l <= r
  | Lt -> l < r
  | Ge -> l >= r
  | Gt -> l > r
  | Eq -> l = r

let rec bool_at t step (f : Stl.formula) =
  let n = t.n in
  match f with
  | Atom (op, l, r) -> atom_sat op (eval_sig t step l) (eval_sig t step r)
  | Not f -> not (bool_at t step f)
  | And (f, g) -> bool_at t step f && bool_at t step g
  | Or (f, g) -> bool_at t step f || bool_at t step g
  | Implies (f, g) -> (not (bool_at t step f)) || bool_at t step g
  | Always (a, b, f) ->
    let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
    let ok = ref true in
    for tau = lo to hi do
      if not (bool_at t tau f) then ok := false
    done;
    !ok
  | Eventually (a, b, f) ->
    let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
    let ok = ref false in
    for tau = lo to hi do
      if bool_at t tau f then ok := true
    done;
    !ok
  | Until (a, b, f, g) ->
    let lo = clamp_hi n (step + a) and hi = clamp_hi n (step + b) in
    let ok = ref false in
    for tau = lo to hi do
      if (not !ok) && bool_at t tau g then begin
        let all = ref true in
        for s = step to tau do
          if not (bool_at t s f) then all := false
        done;
        if !all then ok := true
      end
    done;
    !ok

let sat ?(at = 0) t f =
  if at < 0 || at >= t.n then invalid_arg "Monitor.sat: step out of range";
  bool_at t at f
