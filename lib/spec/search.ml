let c_traces = Telemetry.Counter.make "spec.traces_evaluated"
let c_falsified = Telemetry.Counter.make "spec.falsifications"
let sp_search = Telemetry.Span.make "spec.search"

type result = {
  best_rob : float;
  falsified : bool;
  at_trace : int option;
  traces : int;
  best_params : float array;
}

let run_params plan vec =
  let exec = Signal.exec plan in
  let outs, _ =
    Slim.Exec.run_sequence exec (Slim.Exec.initial_state exec)
      (Signal.render plan vec)
  in
  Monitor.of_run exec outs

let witness_trace ~plan vec = run_params plan vec

let run ?(samples = 32) ?(descent = 64) ~plan ~seed formula =
  Telemetry.Span.with_ sp_search (fun () ->
      let rng = Prng.create seed in
      let n = Signal.n_params plan in
      let traces = ref 0 in
      let best_rob = ref infinity in
      let best_params = ref (Array.make n 0.0) in
      let at_trace = ref None in
      let try_vec vec =
        incr traces;
        Telemetry.Counter.incr c_traces;
        let rob = Monitor.robustness (run_params plan vec) formula in
        if rob < !best_rob then begin
          best_rob := rob;
          best_params := vec
        end;
        if rob < 0.0 && !at_trace = None then begin
          at_trace := Some !traces;
          Telemetry.Counter.incr c_falsified
        end;
        rob
      in
      (* phase 1: seeded random sampling *)
      let i = ref 0 in
      while !i < samples && !at_trace = None do
        ignore (try_vec (Signal.random_params plan rng));
        incr i
      done;
      (* phase 2: coordinate descent from the best sample, shrinking the
         step on rejected proposals *)
      if !at_trace = None && n > 0 then begin
        let scale = ref 0.25 in
        let j = ref 0 in
        while !j < descent && !at_trace = None do
          let coord = Prng.int rng n in
          let lo, hi = Signal.domain plan coord in
          let span = hi -. lo in
          let cand = Array.copy !best_params in
          let delta = Prng.float_in rng (-. !scale *. span) (!scale *. span) in
          let v = cand.(coord) +. delta in
          cand.(coord) <- (if v < lo then lo else if v > hi then hi else v);
          let before = !best_rob in
          let rob = try_vec cand in
          if rob >= before then scale := Float.max 0.01 (!scale *. 0.9);
          incr j
        done
      end;
      {
        best_rob = !best_rob;
        falsified = !best_rob < 0.0;
        at_trace = !at_trace;
        traces = !traces;
        best_params = !best_params;
      })
