(** Falsification campaigns: a requirement table run over the registry
    models, one {!Search.run} per requirement, scheduled on
    {!Harness.Pool}.

    Determinism contract: each requirement's search seed is mixed from
    the campaign seed and the requirement's position in the table
    ({!Prng.mix_seed}), every search is a pure function of its seed and
    budgets, and results merge in table order — so {!render} output is
    byte-identical for any [jobs] value. *)

type config = {
  steps : int;  (** trace length fed to every search *)
  segments : int;  (** signal-generator segments *)
  shape : Signal.shape;
  samples : int;  (** random samples per requirement *)
  descent : int;  (** local-descent proposals per requirement *)
  seed : int;  (** campaign seed *)
}

val default_config : seed:int -> config
(** 48 steps (the table's horizons are 40), 6 segments,
    piecewise-constant, 32 samples + 64 descent proposals. *)

type row = {
  f_model : string;
  f_req : string;
  f_fault : bool;
  f_rob : float;  (** minimum robustness over the search *)
  f_falsified : bool;
  f_at_trace : int option;
  f_traces : int;
}

val run_req : config -> Requirements.req -> row
(** Raises [Failure] if the requirement names a model absent from the
    registry. *)

val campaign :
  ?jobs:int -> ?oversubscribe:bool -> config -> Requirements.req list -> row list
(** Rows in input order for any worker count. *)

val render : config -> row list -> string
(** The campaign summary table (trailing newline included) — the byte
    output the determinism gate compares across [--jobs] values. *)
