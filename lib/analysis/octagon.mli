(** Octagon abstract domain: conjunctions of [+/-x +/-y <= c].

    A difference-bound matrix (DBM) over [2n] encoded indices for [n]
    abstract variables: index [2k] stands for [+v_k] and [2k+1] for
    [-v_k]; entry [(i, j)] bounds [x_j - x_i].  A unary bound
    [v_k <= c] is the edge [x_2k - x_2k+1 <= 2c].  Strong closure is
    Floyd-Warshall shortest paths plus the octagon strengthening step
    [m(i,j) <- min m(i,j) ((m(i,i') + m(j',j)) / 2)]; variables marked
    integer additionally tighten their unary edges to even values.

    The matrix is kept {e strongly closed} by construction: constraint
    adds run an [O(n^2)] incremental closure, [forget]/[assign]/[shift]
    preserve closure, and join (pointwise max) of two strongly closed
    octagons is strongly closed.  Only {!widen} leaves the matrix open —
    as required for termination — and the caller re-closes via {!close}.

    All bounds are floats; [infinity] means "no constraint".  Callers
    are responsible for only adding constraints that are {e exact} for
    the concrete semantics they abstract (see the [SOUND:] notes in
    {!Analyzer}): integer-valued variables must stay inside the
    float-exact window, and real-valued constraints must come from
    rounding-free facts (copies, comparisons). *)

type t

val create : ints:bool array -> t
(** Top octagon over [Array.length ints] variables; [ints.(k)] marks
    [v_k] integer-valued (enables integral tightening). *)

val dim : t -> int
val copy : t -> t
val equal : t -> t -> bool

val is_bottom : t -> bool
(** The octagon has been proven empty (a negative cycle appeared during
    some closure).  Empty octagons absorb further constraint adds. *)

(** {1 Constraints}

    Each add runs incremental strong closure and records emptiness when
    a negative cycle appears; they never raise. Constants with
    magnitude beyond the float-exact integer window are ignored (kept
    as "no constraint") rather than trusted. *)

val add_upper : t -> int -> float -> unit
(** [add_upper t k c]: [v_k <= c]. *)

val add_lower : t -> int -> float -> unit
(** [add_lower t k c]: [v_k >= c]. *)

val add_diff : t -> int -> int -> float -> unit
(** [add_diff t a b c]: [v_a - v_b <= c] ([a <> b]). *)

val add_sum : t -> int -> int -> float -> unit
(** [add_sum t a b c]: [v_a + v_b <= c] ([a <> b]). *)

val add_nsum : t -> int -> int -> float -> unit
(** [add_nsum t a b c]: [- v_a - v_b <= c] ([a <> b]). *)

(** {1 Transfer} *)

val forget : t -> int -> unit
(** Drop every constraint mentioning [v_k] (projection).  The matrix
    stays closed, so facts derived through [v_k] survive. *)

val shift : t -> int -> float -> unit
(** [shift t k c]: the exact assignment [v_k := v_k + c]. *)

val assign_copy : t -> dst:int -> src:int -> offset:float -> unit
(** The exact assignment [v_dst := v_src + offset] ([dst <> src]):
    forgets [dst], then pins [v_dst - v_src = offset]. *)

(** {1 Queries (on closed octagons)} *)

val bounds : t -> int -> float * float
(** [(lo, hi)] for [v_k]; infinite when unconstrained.  On an empty
    octagon the result may have [lo > hi]. *)

val diff_bounds : t -> int -> int -> float * float
(** Bounds of [v_a - v_b]. *)

val sum_bounds : t -> int -> int -> float * float
(** Bounds of [v_a + v_b]. *)

(** {1 Lattice} *)

val join : t -> t -> t
(** Pointwise max (both arguments closed => result strongly closed).
    If either side is bottom, returns a copy of the other. *)

val widen : t -> t -> t
(** [widen old next]: entries that grew go to [infinity].  The result
    is {e not} closed; call {!close} before querying it. *)

val close : t -> unit
(** Full strong closure (Floyd-Warshall + strengthening + integral
    tightening).  Needed only after {!widen}; all other operations
    maintain closure incrementally. *)

val meet_interval : t -> int -> lo:float -> hi:float -> unit
(** Constrain [v_k] to [\[lo, hi\]] (infinite bounds allowed). *)

val constrain_raw : t -> int -> lo:float -> hi:float -> unit
(** Like {!meet_interval} but without re-closing: bulk seeding calls
    this per variable and then runs a single {!close}. *)

val pp : Format.formatter -> t -> unit
(** Debug rendering of the finite constraints. *)
