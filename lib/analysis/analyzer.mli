(** Flow-sensitive abstract interpretation of a SLIM step program.

    The analyzer runs the step body over abstract values ({!Absval}):
    inputs are the tops of their declared domains, locals and outputs
    start from their per-step defaults, and the persistent state is
    iterated to a fixpoint — join for the first rounds, then interval
    widening ({!Absval.widen}) so delays, data stores and chart state
    variables converge.  A final pass over the stabilized state records,
    for every decision, how reachable it is and what its guard (and each
    atomic condition) can evaluate to; the same pass collects the
    {!Diag} diagnostics consumed by the linter.

    {b Soundness contract}: the abstract state of every program point
    over-approximates every concrete execution whose input values lie
    inside their declared domains — the contract all drivers (the
    solver, random generation, the fuzzer, the test-case replayers for
    suites produced by this stack) already maintain.  Consequently
    [Never]-reachability is a proof of concrete unreachability; [Must]
    and [May] are best-effort.  The fuzz campaign cross-checks this
    claim dynamically (the "analysis" oracle). *)

type domain =
  [ `Interval  (** non-relational intervals only (the default) *)
  | `Octagon
    (** additionally track difference-bound relations [±x ± y <= c]
        over a bounded universe of numeric cells ({!Octagon}), reduced
        with the interval slots.  Strictly more precise, and every
        soundness discipline (int-overflow collapse, float rounding
        monotonicity, nan points, weak vector updates) is preserved:
        relational facts are only recorded when exact. *) ]

type config = { domain : domain }

val default_config : config
(** [{ domain = `Interval }] *)

type reach =
  | Never  (** proven unreachable: no conforming execution reaches it *)
  | May  (** the analysis cannot tell *)
  | Must  (** reached on every step of every conforming execution *)

type guard_fact = {
  g_reach : reach;  (** reachability of the decision itself *)
  g_val : Solver.Interval.bool3;  (** what the whole guard can evaluate to *)
  g_atoms : Solver.Interval.bool3 array;
      (** per-atom values, in {!Slim.Ir.atoms_of_condition} order *)
}

type result = {
  r_prog : Slim.Ir.program;
  r_iterations : int;  (** state-fixpoint sweeps (including the final one) *)
  r_widenings : int;  (** sweeps that applied widening *)
  r_branch_reach : (Slim.Branch.key * reach) list;  (** program order *)
  r_guards : (int * guard_fact) list;
      (** [If] decisions in program order ([Switch] decisions have no
          guard fact; their branch entries carry the verdicts) *)
  r_diags : Diag.t list;  (** deterministic order (see {!Diag.sort}) *)
  r_state : (string * Absval.t) list;
      (** the stabilized abstract state, one entry per state variable *)
  r_out : (string * Absval.t) list;
      (** output bounds from the final recording pass, one entry per
          output variable (every path through one step joined) *)
}

val analyze :
  ?config:config -> ?seeds:Slim.Value.t array list -> Slim.Ir.program -> result
(** Fixpoint analysis of the step program.  [seeds] are concretely
    reached state snapshots (in state-slot order, see
    {!Slim.Exec.state_vars}) joined into the initial abstract state:
    the fixpoint then over-approximates reachability from
    [init ∪ seeds], which preserves the meaning of every verdict while
    typically tightening it — widening from a grown region discards
    fewer bounds than widening from the initial point. *)

val record_at :
  ?config:config -> Slim.Ir.program -> state:Slim.Value.t array -> result
(** One recording pass from an exact reached snapshot (no fixpoint).
    [Must] facts hold for the single step taken from [state], so when
    the snapshot is concretely reachable they witness reachability;
    [Never] facts are step-local and must not be treated as global
    deadness. *)

val branch_reach : result -> Slim.Branch.key -> reach
(** Defaults to [May] for unknown keys. *)

val guard_fact : result -> int -> guard_fact option

val pp_reach : reach Fmt.t
