(** Flow-sensitive abstract interpretation of a SLIM step program.

    The analyzer runs the step body over abstract values ({!Absval}):
    inputs are the tops of their declared domains, locals and outputs
    start from their per-step defaults, and the persistent state is
    iterated to a fixpoint — join for the first rounds, then interval
    widening ({!Absval.widen}) so delays, data stores and chart state
    variables converge.  A final pass over the stabilized state records,
    for every decision, how reachable it is and what its guard (and each
    atomic condition) can evaluate to; the same pass collects the
    {!Diag} diagnostics consumed by the linter.

    {b Soundness contract}: the abstract state of every program point
    over-approximates every concrete execution whose input values lie
    inside their declared domains — the contract all drivers (the
    solver, random generation, the fuzzer, the test-case replayers for
    suites produced by this stack) already maintain.  Consequently
    [Never]-reachability is a proof of concrete unreachability; [Must]
    and [May] are best-effort.  The fuzz campaign cross-checks this
    claim dynamically (the "analysis" oracle). *)

type reach =
  | Never  (** proven unreachable: no conforming execution reaches it *)
  | May  (** the analysis cannot tell *)
  | Must  (** reached on every step of every conforming execution *)

type guard_fact = {
  g_reach : reach;  (** reachability of the decision itself *)
  g_val : Solver.Interval.bool3;  (** what the whole guard can evaluate to *)
  g_atoms : Solver.Interval.bool3 array;
      (** per-atom values, in {!Slim.Ir.atoms_of_condition} order *)
}

type result = {
  r_prog : Slim.Ir.program;
  r_iterations : int;  (** state-fixpoint sweeps (including the final one) *)
  r_widenings : int;  (** sweeps that applied widening *)
  r_branch_reach : (Slim.Branch.key * reach) list;  (** program order *)
  r_guards : (int * guard_fact) list;
      (** [If] decisions in program order ([Switch] decisions have no
          guard fact; their branch entries carry the verdicts) *)
  r_diags : Diag.t list;  (** deterministic order (see {!Diag.sort}) *)
  r_state : (string * Absval.t) list;
      (** the stabilized abstract state, one entry per state variable *)
}

val analyze : Slim.Ir.program -> result

val branch_reach : result -> Slim.Branch.key -> reach
(** Defaults to [May] for unknown keys. *)

val guard_fact : result -> int -> guard_fact option

val pp_reach : reach Fmt.t
