(** Static verdicts for coverage objectives.

    Classifies every objective of the three criteria from an
    {!Analyzer.result}:

    - a {b branch} is [Dead] when its reach is [Never], [Reachable] when
      [Must];
    - a {b condition} objective (decision, atom, value) is [Dead] when
      the decision is unreachable or the atom's abstract value excludes
      [value]; [Reachable] when the decision is [Must]-reached and the
      atom is constantly [value];
    - an {b MCDC} objective (decision, atom) is [Dead] when the decision
      is unreachable, the atom is constant, or the whole guard is
      constant (no pair of vectors can differ in outcome).

    [Dead] inherits the analyzer's soundness contract: no execution
    whose inputs conform to their declared domains can ever cover a
    [Dead] objective, so the engine may skip it and coverage reporting
    may justify it (excluded from denominators), mirroring dead-logic
    justification in SLDV-style flows. *)

type t = Reachable | Dead | Unknown

type summary = {
  v_result : Analyzer.result;
  v_branches : (Slim.Branch.key * t) list;  (** syntactic order *)
  v_conditions : ((int * int * bool) * t) list;
      (** ((decision, atom, value), verdict), [If] decisions only *)
  v_mcdc : ((int * int) * t) list;  (** ((decision, atom), verdict) *)
}

val of_result : Analyzer.result -> summary
val of_program : ?config:Analyzer.config -> Slim.Ir.program -> summary

val refine :
  ?config:Analyzer.config ->
  summary ->
  seeds:Slim.Value.t array list ->
  summary
(** Snapshot-refined verdicts: monotonically decide [Unknown]
    objectives from concretely reached state snapshots (state-slot
    order).  Two sound sources are merged in: a fixpoint re-seeded from
    [init ∪ seeds] (both its [Dead] and [Reachable] verdicts hold), and
    a single recording pass per snapshot whose [Must] facts are
    witnessed by one concrete step (only [Reachable] transfers).
    Decided verdicts never change. *)

val branch : summary -> Slim.Branch.key -> t
(** Defaults to [Unknown] for unknown keys. *)

val condition : summary -> int -> int -> bool -> t
val mcdc : summary -> int -> int -> t

val dead_branches : summary -> Slim.Branch.key list
val dead_conditions : summary -> (int * int * bool) list
val dead_mcdc : summary -> (int * int) list

val counts : summary -> t -> int * int * int
(** [(branches, conditions, mcdc)] objectives with the given verdict. *)

val pp : t Fmt.t
