module Value = Slim.Value
module Dom = Solver.Dom

type t =
  | Scalar of Dom.t
  | Vector of t array

let int_top = Dom.Dint { lo = min_int; hi = max_int }
let real_top = Dom.Dreal { lo = neg_infinity; hi = infinity }

let rec of_value = function
  | Value.Bool b -> Scalar (Dom.booln b)
  | Value.Int i -> Scalar (Dom.Dint { lo = i; hi = i })
  | Value.Real r -> Scalar (Dom.Dreal { lo = r; hi = r })
  | Value.Vec a -> Vector (Array.map of_value a)

let rec top_of_ty = function
  | Value.Tbool -> Scalar Dom.top_bool
  | Value.Tint { lo; hi } -> Scalar (Dom.Dint { lo; hi })
  | Value.Treal { lo; hi } -> Scalar (Dom.Dreal { lo; hi })
  | Value.Tvec (ty, n) -> Vector (Array.init n (fun _ -> top_of_ty ty))

let scalar_top = function
  | Dom.Dbool _ -> Dom.top_bool
  | Dom.Dint _ -> int_top
  | Dom.Dreal _ -> real_top

let rec top_like = function
  | Scalar d -> Scalar (scalar_top d)
  | Vector a -> Vector (Array.map top_like a)

let rec join a b =
  match a, b with
  | Scalar x, Scalar y -> Scalar (Dom.hull x y)
  | Vector x, Vector y when Array.length x = Array.length y ->
    Vector (Array.map2 join x y)
  | (Scalar _ | Vector _), (Scalar _ | Vector _) ->
    Value.type_error "Absval.join: shape mismatch"

(* Bounds that moved since [old] jump straight to the value top: the
   chain Scalar -> widened Scalar has length <= 2 per bound, so the
   state fixpoint terminates after a bounded number of sweeps. *)
let widen_scalar old next =
  match old, next with
  | Dom.Dbool _, Dom.Dbool _ -> next
  | Dom.Dint o, Dom.Dint n ->
    Dom.Dint
      {
        lo = (if n.lo < o.lo then min_int else n.lo);
        hi = (if n.hi > o.hi then max_int else n.hi);
      }
  | Dom.Dreal o, Dom.Dreal n ->
    Dom.Dreal
      {
        lo = (if n.lo < o.lo then neg_infinity else n.lo);
        hi = (if n.hi > o.hi then infinity else n.hi);
      }
  | (Dom.Dbool _ | Dom.Dint _ | Dom.Dreal _), _ ->
    (* kind changed across iterations (int/real promotion): give up on
       the slot entirely — sound and terminal *)
    scalar_top next

let rec widen old next =
  match old, next with
  | Scalar o, Scalar n -> Scalar (widen_scalar o n)
  | Vector o, Vector n when Array.length o = Array.length n ->
    Vector (Array.map2 widen o n)
  | (Scalar _ | Vector _), (Scalar _ | Vector _) ->
    Value.type_error "Absval.widen: shape mismatch"

let rec equal a b =
  match a, b with
  | Scalar x, Scalar y -> Dom.equal x y
  | Vector x, Vector y ->
    Array.length x = Array.length y && Array.for_all2 equal x y
  | (Scalar _ | Vector _), (Scalar _ | Vector _) -> false

let rec member a v =
  match a, v with
  | Scalar d, (Value.Bool _ | Value.Int _ | Value.Real _) -> Dom.member d v
  | Vector arr, Value.Vec vs ->
    Array.length arr = Array.length vs
    && Array.for_all2 member arr vs
  | (Scalar _ | Vector _), _ -> false

let rec pp ppf = function
  | Scalar d -> Dom.pp ppf d
  | Vector a -> Fmt.pf ppf "[|%a|]" Fmt.(array ~sep:(any ";") pp) a
