module Branch = Slim.Branch
module I = Solver.Interval

let tel_dead = Telemetry.Counter.make "analysis.verdict.dead"
let tel_reachable = Telemetry.Counter.make "analysis.verdict.reachable"
let tel_unknown = Telemetry.Counter.make "analysis.verdict.unknown"

type t = Reachable | Dead | Unknown

let pp ppf v =
  Fmt.string ppf
    (match v with
    | Reachable -> "reachable"
    | Dead -> "dead"
    | Unknown -> "unknown")

type summary = {
  v_result : Analyzer.result;
  v_branches : (Branch.key * t) list;
  v_conditions : ((int * int * bool) * t) list;
  v_mcdc : ((int * int) * t) list;
}

let b3_constant (b : I.bool3) = not (b.bt && b.bf)
let b3_excludes (b : I.bool3) value = if value then not b.bt else not b.bf
let b3_forced (b : I.bool3) value = if value then not b.bf else not b.bt

let of_result (r : Analyzer.result) : summary =
  let crit = Coverage.Criteria.of_program r.r_prog in
  let v_branches =
    List.map
      (fun (b : Branch.t) ->
        let v =
          match Analyzer.branch_reach r b.key with
          | Analyzer.Never -> Dead
          | Analyzer.Must -> Reachable
          | Analyzer.May -> Unknown
        in
        (b.key, v))
      crit.branches
  in
  let v_conditions, v_mcdc =
    List.fold_left
      (fun (conds, mcdc) (d : Coverage.Criteria.decision_info) ->
        if d.d_atom_count = 0 then (conds, mcdc)
        else
          match Analyzer.guard_fact r d.d_id with
          | None -> (conds, mcdc)
          | Some gf ->
            let dead_decision = gf.g_reach = Analyzer.Never in
            let conds = ref conds and mcdc = ref mcdc in
            for i = 0 to d.d_atom_count - 1 do
              let atom = gf.g_atoms.(i) in
              List.iter
                (fun value ->
                  let v =
                    if dead_decision || b3_excludes atom value then Dead
                    else if gf.g_reach = Analyzer.Must && b3_forced atom value
                    then Reachable
                    else Unknown
                  in
                  conds := ((d.d_id, i, value), v) :: !conds)
                [ true; false ];
              let mv =
                if dead_decision || b3_constant atom || b3_constant gf.g_val
                then Dead
                else Unknown
              in
              mcdc := ((d.d_id, i), mv) :: !mcdc
            done;
            (!conds, !mcdc))
      ([], []) crit.decisions
  in
  let s =
    {
      v_result = r;
      v_branches;
      v_conditions = List.rev v_conditions;
      v_mcdc = List.rev v_mcdc;
    }
  in
  let bump = function
    | Dead -> Telemetry.Counter.incr tel_dead
    | Reachable -> Telemetry.Counter.incr tel_reachable
    | Unknown -> Telemetry.Counter.incr tel_unknown
  in
  List.iter (fun (_, v) -> bump v) s.v_branches;
  List.iter (fun (_, v) -> bump v) s.v_conditions;
  List.iter (fun (_, v) -> bump v) s.v_mcdc;
  s

let of_program ?config prog = of_result (Analyzer.analyze ?config prog)

let branch s key =
  match
    List.find_opt (fun (k, _) -> Branch.equal_key k key) s.v_branches
  with
  | Some (_, v) -> v
  | None -> Unknown

let condition s d i value =
  match List.assoc_opt (d, i, value) s.v_conditions with
  | Some v -> v
  | None -> Unknown

let mcdc s d i =
  match List.assoc_opt (d, i) s.v_mcdc with Some v -> v | None -> Unknown

let tel_refined_dead = Telemetry.Counter.make "analysis.verdict.refined_dead"

let tel_refined_reachable =
  Telemetry.Counter.make "analysis.verdict.refined_reachable"

(* Monotone merge: a sound refinement only decides Unknowns.  Two sound
   analyses cannot disagree on decided verdicts; keep the original
   defensively if they ever would. *)
let merge_v old v = match old with Unknown -> v | Dead | Reachable -> old

let refine ?config (s : summary) ~(seeds : Slim.Value.t array list) : summary =
  if seeds = [] then s
  else begin
    let prog = s.v_result.Analyzer.r_prog in
    (* a seeded fixpoint still over-approximates every reachable state
       (the seeds are reachable and the fixpoint is closed under the
       step relation), so both its Dead and Reachable verdicts hold *)
    let seeded = of_result (Analyzer.analyze ?config ~seeds prog) in
    (* a recording pass from an exact snapshot: Must facts there are
       witnessed by one concrete step, so only Reachable transfers *)
    let witnesses =
      List.map
        (fun st -> of_result (Analyzer.record_at ?config prog ~state:st))
        seeds
    in
    let keep_reachable v = if v = Reachable then Reachable else Unknown in
    let merged lookup old_list =
      List.map
        (fun (k, old) ->
          let v = List.fold_left merge_v old (lookup k) in
          (match (old, v) with
           | Unknown, Dead -> Telemetry.Counter.incr tel_refined_dead
           | Unknown, Reachable -> Telemetry.Counter.incr tel_refined_reachable
           | _ -> ());
          (k, v))
        old_list
    in
    let v_branches =
      merged
        (fun k ->
          branch seeded k
          :: List.map (fun w -> keep_reachable (branch w k)) witnesses)
        s.v_branches
    in
    let v_conditions =
      merged
        (fun (d, i, value) ->
          condition seeded d i value
          :: List.map
               (fun w -> keep_reachable (condition w d i value))
               witnesses)
        s.v_conditions
    in
    let v_mcdc =
      merged
        (fun (d, i) ->
          mcdc seeded d i
          :: List.map (fun w -> keep_reachable (mcdc w d i)) witnesses)
        s.v_mcdc
    in
    { s with v_branches; v_conditions; v_mcdc }
  end

let keep verdict l = List.filter_map (fun (k, v) -> if v = verdict then Some k else None) l
let dead_branches s = keep Dead s.v_branches
let dead_conditions s = keep Dead s.v_conditions
let dead_mcdc s = keep Dead s.v_mcdc

let counts s v =
  let c l = List.length (keep v l) in
  (c s.v_branches, c s.v_conditions, c s.v_mcdc)
