let run prog =
  let r = Analyzer.analyze prog in
  r.Analyzer.r_diags

let to_lines ~model diags =
  match diags with
  | [] -> [ Fmt.str "%s: clean" model ]
  | _ -> List.map (fun d -> Fmt.str "%s: %a" model Diag.pp d) diags
