(** Linter diagnostics with stable codes.

    Every diagnostic carries a stable code (the table below — also
    documented in ANALYSIS.md), a source location (a structural path
    into the step program plus the decision id when one is involved)
    and a human-readable message.  Output ordering is deterministic:
    {!sort} orders by location, then code, then message.

    {v
    A101  constant-true guard (else branch unreachable)
    A102  constant-false guard (then branch unreachable)
    A103  unreachable switch case
    A104  unreachable switch default
    A201  read of a never-written local (uninitialized data-store read)
    A202  write-after-write: value overwritten before any read
    A301  vector index may be out of range
    A302  vector index always out of range
    A401  unreachable chart state (dead case of a state dispatch)
    A402  unreachable chart transition (constant-false guard inside a
          state dispatch)
    v} *)

type code =
  | Const_true_guard
  | Const_false_guard
  | Dead_case
  | Dead_default
  | Uninit_local_read
  | Dead_store
  | Index_may_oob
  | Index_oob
  | Dead_chart_state
  | Dead_chart_transition

val code_id : code -> string
(** The stable "Annn" identifier. *)

type t = {
  d_code : code;
  d_loc : string;  (** structural path, e.g. ["body[2].then[0]"] *)
  d_msg : string;
}

val make : code -> loc:string -> string -> t

val sort : t list -> t list
(** Deterministic order with duplicates removed. *)

val pp : t Fmt.t
(** Renders ["A102 body[2]: ..."]. *)
