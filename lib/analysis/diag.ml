type code =
  | Const_true_guard
  | Const_false_guard
  | Dead_case
  | Dead_default
  | Uninit_local_read
  | Dead_store
  | Index_may_oob
  | Index_oob
  | Dead_chart_state
  | Dead_chart_transition

let code_id = function
  | Const_true_guard -> "A101"
  | Const_false_guard -> "A102"
  | Dead_case -> "A103"
  | Dead_default -> "A104"
  | Uninit_local_read -> "A201"
  | Dead_store -> "A202"
  | Index_may_oob -> "A301"
  | Index_oob -> "A302"
  | Dead_chart_state -> "A401"
  | Dead_chart_transition -> "A402"

type t = {
  d_code : code;
  d_loc : string;
  d_msg : string;
}

let make d_code ~loc d_msg = { d_code; d_loc = loc; d_msg }

let compare_t a b =
  let c = String.compare a.d_loc b.d_loc in
  if c <> 0 then c
  else
    let c = String.compare (code_id a.d_code) (code_id b.d_code) in
    if c <> 0 then c else String.compare a.d_msg b.d_msg

let sort l = List.sort_uniq compare_t l

let pp ppf d = Fmt.pf ppf "%s %s: %s" (code_id d.d_code) d.d_loc d.d_msg
