(* Octagon domain as a coherent difference-bound matrix.

   Encoding (Mine): variable [v_k] becomes two indices, [2k] for [+v_k]
   and [2k+1] for [-v_k]; [bar i = i lxor 1].  [m.(i * nn + j)] is an
   upper bound on [x_j - x_i] where [x_2k = v_k, x_2k+1 = -v_k], so

     v_k <= c         is  m(2k+1, 2k)  <= 2c
     v_k >= c         is  m(2k, 2k+1)  <= -2c
     v_a - v_b <= c   is  m(2b, 2a)    <= c
     v_a + v_b <= c   is  m(2b+1, 2a)  <= c
     -v_a - v_b <= c  is  m(2b, 2a+1)  <= c

   Coherence [m(i, j) = m(bar j, bar i)] is maintained by writing both
   mirror entries on every store.

   Soundness note: every entry is an upper bound derived from sound
   constraints by min-updates, so an under-closed matrix is still a
   sound (merely less precise) octagon, and emptiness that escapes
   detection only costs precision.  This is what makes the cheap
   incremental closure below safe: full Floyd-Warshall is only needed
   for precision after {!widen}. *)

type t = {
  n : int;  (* variables *)
  nn : int;  (* matrix side = 2n *)
  m : float array;  (* nn * nn, row-major *)
  ints : bool array;
  mutable bot : bool;
}

let big = 1e15  (* float-exact integer window; see Analyzer [legal_num] *)
let bar i = i lxor 1

(* Directed upward rounding.  Matrix entries are upper bounds, but
   round-to-nearest addition can land {e below} the exact sum (error up
   to half an ulp), and Floyd-Warshall min-updates then propagate the
   deficit -- on consistent real-valued pins (e.g. a state variable held
   at 12.6) closure manufactures a ~1e-15 negative cycle and a spurious
   bottom.  Bumping every inexact sum one ulp up restores the invariant:
   [succ (round (a + b)) >= a + b] always.  Doubling and halving are
   exact in binary floats, so only sums need the bump.  The 2Sum check
   below keeps exact sums exact (its correction terms vanish iff the
   rounded sum equals the real one), so integer-valued edges -- where
   every relational fact this analyzer records lives -- never drift. *)
let add_up a b =
  let s = a +. b in
  if a -. (s -. b) = 0.0 && b -. (s -. a) = 0.0 then s else Float.succ s

let create ~ints =
  let n = Array.length ints in
  let nn = 2 * n in
  let m = Array.make (max 1 (nn * nn)) infinity in
  for i = 0 to nn - 1 do
    m.(i * nn + i) <- 0.0
  done;
  { n; nn; m; ints; bot = false }

let dim t = t.n
let copy t = { t with m = Array.copy t.m }

let equal a b =
  a.n = b.n && a.bot = b.bot && (a.bot || Array.for_all2 ( = ) a.m b.m)

let is_bottom t = t.bot

(* ------------------------------------------------------------------ *)
(* Closure                                                             *)

let check_diag t =
  let nn = t.nn in
  (try
     for i = 0 to nn - 1 do
       if t.m.((i * nn) + i) < 0.0 then raise Exit
     done
   with Exit -> t.bot <- true);
  ()

(* one strengthening pass: m(i,j) <- min m(i,j) ((m(i,i') + m(j',j)) / 2) *)
let strengthen t =
  let nn = t.nn and m = t.m in
  for i = 0 to nn - 1 do
    let di = m.((i * nn) + bar i) in
    if di < infinity then
      for j = 0 to nn - 1 do
        let dj = m.((bar j * nn) + j) in
        if dj < infinity then begin
          let v = add_up di dj /. 2.0 in
          if v < m.((i * nn) + j) then m.((i * nn) + j) <- v
        end
      done
  done

(* integral tightening of the unary edges of int variables *)
let tighten_ints t =
  let nn = t.nn and m = t.m in
  for k = 0 to t.n - 1 do
    if t.ints.(k) then begin
      let hi = ((2 * k) + 1) * nn + (2 * k) in
      let lo = (2 * k * nn) + (2 * k) + 1 in
      if m.(hi) < infinity then m.(hi) <- 2.0 *. Float.floor (m.(hi) /. 2.0);
      if m.(lo) < infinity then m.(lo) <- 2.0 *. Float.floor (m.(lo) /. 2.0)
    end
  done

let fw_pivot t k =
  let nn = t.nn and m = t.m in
  for i = 0 to nn - 1 do
    let ik = m.((i * nn) + k) in
    if ik < infinity then
      for j = 0 to nn - 1 do
        let kj = m.((k * nn) + j) in
        if kj < infinity then begin
          let v = add_up ik kj in
          if v < m.((i * nn) + j) then m.((i * nn) + j) <- v
        end
      done
  done

let close t =
  if not t.bot then begin
    for k = 0 to t.nn - 1 do
      fw_pivot t k
    done;
    strengthen t;
    tighten_ints t;
    strengthen t;
    check_diag t
  end

(* ------------------------------------------------------------------ *)
(* Constraint adds (incremental closure over the touched pivots)       *)

let legal c = Float.is_nan c = false && Float.abs c <= 2.0 *. big

(* store edge (i, j) <= c and its mirror, then re-close around the
   touched indices *)
let add_edge t i j c =
  if (not t.bot) && legal c then begin
    let nn = t.nn and m = t.m in
    if c < m.((i * nn) + j) then begin
      m.((i * nn) + j) <- c;
      m.((bar j * nn) + bar i) <- c;
      fw_pivot t i;
      fw_pivot t j;
      if i <> bar j then begin
        fw_pivot t (bar i);
        fw_pivot t (bar j)
      end;
      strengthen t;
      tighten_ints t;
      check_diag t
    end
  end

let add_upper t k c = add_edge t ((2 * k) + 1) (2 * k) (2.0 *. c)
let add_lower t k c = add_edge t (2 * k) ((2 * k) + 1) (-2.0 *. c)
let add_diff t a b c = if a <> b then add_edge t (2 * b) (2 * a) c
let add_sum t a b c = if a <> b then add_edge t ((2 * b) + 1) (2 * a) c
let add_nsum t a b c = if a <> b then add_edge t (2 * b) ((2 * a) + 1) c

let meet_interval t k ~lo ~hi =
  if hi < infinity then add_upper t k hi;
  if lo > neg_infinity then add_lower t k lo

(* raw min-store of unary bounds, no re-closure: bulk seeding calls
   this per variable and then runs one [close] *)
let constrain_raw t k ~lo ~hi =
  let nn = t.nn and m = t.m in
  if hi < infinity && legal (2.0 *. hi) then begin
    let e = (((2 * k) + 1) * nn) + (2 * k) in
    if 2.0 *. hi < m.(e) then m.(e) <- 2.0 *. hi
  end;
  if lo > neg_infinity && legal (2.0 *. lo) then begin
    let e = (2 * k * nn) + (2 * k) + 1 in
    if -2.0 *. lo < m.(e) then m.(e) <- -2.0 *. lo
  end

(* ------------------------------------------------------------------ *)
(* Transfer                                                            *)

let forget t k =
  let nn = t.nn and m = t.m in
  let a = 2 * k and b = (2 * k) + 1 in
  for j = 0 to nn - 1 do
    m.((a * nn) + j) <- infinity;
    m.((j * nn) + a) <- infinity;
    m.((b * nn) + j) <- infinity;
    m.((j * nn) + b) <- infinity
  done;
  m.((a * nn) + a) <- 0.0;
  m.((b * nn) + b) <- 0.0

let shift t k c =
  if (not t.bot) && legal c && c <> 0.0 then begin
    let nn = t.nn and m = t.m in
    let a = 2 * k and b = (2 * k) + 1 in
    for j = 0 to nn - 1 do
      m.((a * nn) + j) <- add_up m.((a * nn) + j) (-.c);
      m.((j * nn) + a) <- add_up m.((j * nn) + a) c;
      m.((b * nn) + j) <- add_up m.((b * nn) + j) c;
      m.((j * nn) + b) <- add_up m.((j * nn) + b) (-.c)
    done;
    (* infinities survive the +-c arithmetic; the diagonal cancels *)
    m.((a * nn) + a) <- 0.0;
    m.((b * nn) + b) <- 0.0
  end

let assign_copy t ~dst ~src ~offset =
  if dst <> src then begin
    forget t dst;
    add_diff t dst src offset;
    add_diff t src dst (-.offset)
  end

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)

let bounds t k =
  let nn = t.nn in
  let hi = t.m.((((2 * k) + 1) * nn) + (2 * k)) /. 2.0 in
  let lo = -.(t.m.((2 * k * nn) + (2 * k) + 1) /. 2.0) in
  (lo, hi)

let diff_bounds t a b =
  let nn = t.nn in
  let hi = t.m.((2 * b * nn) + (2 * a)) in
  let lo = -.t.m.((2 * a * nn) + (2 * b)) in
  (lo, hi)

let sum_bounds t a b =
  let nn = t.nn in
  let hi = t.m.((((2 * b) + 1) * nn) + (2 * a)) in
  let lo = -.t.m.((2 * a * nn) + (2 * b) + 1) in
  (lo, hi)

(* ------------------------------------------------------------------ *)
(* Lattice                                                             *)

let join a b =
  if a.bot then copy b
  else if b.bot then copy a
  else begin
    let r = copy a in
    for i = 0 to (a.nn * a.nn) - 1 do
      if b.m.(i) > r.m.(i) then r.m.(i) <- b.m.(i)
    done;
    r
  end

let widen old next =
  if old.bot then copy next
  else if next.bot then copy old
  else begin
    let r = copy old in
    for i = 0 to (old.nn * old.nn) - 1 do
      if next.m.(i) > old.m.(i) then r.m.(i) <- infinity
    done;
    r
  end

(* ------------------------------------------------------------------ *)

let pp ppf t =
  if t.bot then Format.fprintf ppf "bottom"
  else begin
    let first = ref true in
    let sep () =
      if !first then first := false else Format.fprintf ppf ",@ "
    in
    Format.fprintf ppf "@[<hov 1>{";
    for k = 0 to t.n - 1 do
      let lo, hi = bounds t k in
      if lo > neg_infinity || hi < infinity then begin
        sep ();
        Format.fprintf ppf "v%d in [%g, %g]" k lo hi
      end
    done;
    for a = 0 to t.n - 1 do
      for b = 0 to t.n - 1 do
        if a <> b then begin
          let _, hi = diff_bounds t a b in
          if hi < infinity then begin
            sep ();
            Format.fprintf ppf "v%d - v%d <= %g" a b hi
          end
        end
      done
    done;
    Format.fprintf ppf "}@]"
  end
