(* Flow-sensitive abstract interpreter over the SLIM step program.

   Soundness before precision: the verdict client promotes [Never] to a
   "dead objective" that the engine skips *without* any dynamic
   confirmation, so every transfer function here must over-approximate
   the concrete step semantics in [Slim.Exec].  The places where that
   is subtle are flagged with [SOUND:] comments:

   SOUND/int-overflow: OCaml native ints wrap silently.  Interval
   arithmetic over ints is only exact while every bound stays inside
   the float-exact window, so any result with a bound beyond [big]
   (1e15) collapses the whole interval to [Absval.int_top].
   (Collapsing a single bound is NOT enough: wrapping can send a large
   positive concrete value to a negative one.)

   SOUND/float-rounding: concrete real arithmetic is double
   round-to-nearest; the interval bounds are computed with the *same*
   operations, which are monotone in each argument, so corner bounds
   over-approximate.  [Float.rem] is exact.

   SOUND/nan: runtime reals can overflow to [inf] and combine to [nan]
   ([inf - inf], [0 * inf], [inf / inf], [Float.rem inf _]); [nan]
   compares below every float under [Value.compare_num].  No interval
   contains [nan], so every operation that may produce it returns the
   full real line ([Absval.real_top]), and a value abstracted as the
   full real line is treated as possibly-[nan]: comparisons on it stay
   unknown and guard refinement never narrows through it.

   SOUND/aliasing: [Exec] stores vector values without copying, so a
   whole-vector assignment aliases two slots and a later element write
   mutates both (element writes through an [Lindex] whose root is an
   input mutate the input array, too — only a direct whole-value store
   to an input raises).  A static union-find over whole-vector data
   flow yields may-alias classes; element writes weakly update the
   whole class unless it is a singleton. *)

module Ir = Slim.Ir
module Value = Slim.Value
module Branch = Slim.Branch
module Dom = Solver.Dom
module I = Solver.Interval

let tel_runs = Telemetry.Counter.make "analysis.runs"
let tel_iterations = Telemetry.Counter.make "analysis.fixpoint_iterations"
let tel_widenings = Telemetry.Counter.make "analysis.widenings"
let tel_span = Telemetry.Span.make "analysis.analyze"

type reach = Never | May | Must

let pp_reach ppf r =
  Fmt.string ppf (match r with Never -> "never" | May -> "may" | Must -> "must")

type guard_fact = {
  g_reach : reach;
  g_val : I.bool3;
  g_atoms : I.bool3 array;
}

type result = {
  r_prog : Ir.program;
  r_iterations : int;
  r_widenings : int;
  r_branch_reach : (Branch.key * reach) list;
  r_guards : (int * guard_fact) list;
  r_diags : Diag.t list;
  r_state : (string * Absval.t) list;
  r_out : (string * Absval.t) list;
}

(* ------------------------------------------------------------------ *)
(* Static program info                                                 *)

type scope_info = {
  si_vars : Ir.var array;
  si_index : (string, int) Hashtbl.t;
}

let scope_info vars =
  let si_vars = Array.of_list vars in
  let si_index = Hashtbl.create (max 8 (Array.length si_vars)) in
  Array.iteri (fun i (v : Ir.var) -> Hashtbl.replace si_index v.name i) si_vars;
  { si_vars; si_index }

type info = {
  i_prog : Ir.program;
  i_in : scope_info;
  i_out : scope_info;
  i_st : scope_info;
  i_lo : scope_info;
  i_state_init : Absval.t array;
  i_input_top : Absval.t array;
  i_output_init : Absval.t array;
  i_local_init : Absval.t array;
  i_alias : (Ir.scope * string, (Ir.scope * string) list) Hashtbl.t;
      (* may-alias class of each element-written vector root; absent
         for roots whose class is a singleton (strong updates allowed) *)
  i_consts_mutable : bool;
      (* some vector literal may be mutated in place through an alias *)
}

(* May-alias classes: union the target of every whole-value assignment
   with the variables (and vector literals) its right-hand side could
   alias.  Only classes that are actually element-written matter. *)
module Alias = struct
  type key = V of Ir.scope * string | Const_vec

  let roots e =
    let rec go acc = function
      | Ir.Var (s, n) -> V (s, n) :: acc
      | Ir.Ite (_, a, b) -> go (go acc a) b
      | Ir.Index (v, _) -> go acc v
      | Ir.Const (Value.Vec _) -> Const_vec :: acc
      | Ir.Const _ | Ir.Unop _ | Ir.Binop _ | Ir.Cmp _ | Ir.And _ | Ir.Or _ ->
        acc
    in
    go [] e

  let rec lv_root = function
    | Ir.Lvar (s, n) -> V (s, n)
    | Ir.Lindex (inner, _) -> lv_root inner

  (* representative lookup with path compression *)
  let rec find parent k =
    match Hashtbl.find_opt parent k with
    | None -> k
    | Some p ->
      let r = find parent p in
      if r <> p then Hashtbl.replace parent k r;
      r

  let compute (prog : Ir.program) =
    let parent : (key, key) Hashtbl.t = Hashtbl.create 16 in
    let keys : (key, unit) Hashtbl.t = Hashtbl.create 16 in
    let touch k = Hashtbl.replace keys k () in
    let union a b =
      touch a;
      touch b;
      let ra = find parent a and rb = find parent b in
      if ra <> rb then Hashtbl.replace parent ra rb
    in
    let mutated_roots : key list ref = ref [] in
    let rec stmts ss = List.iter stmt ss
    and stmt = function
      | Ir.Assign (lhs, e) ->
        let lroot = lv_root lhs in
        (match lhs with
         | Ir.Lindex _ ->
           touch lroot;
           mutated_roots := lroot :: !mutated_roots
         | Ir.Lvar _ -> ());
        List.iter (fun r -> union lroot r) (roots e)
      | Ir.If { then_; else_; _ } ->
        stmts then_;
        stmts else_
      | Ir.Switch { cases; default; _ } ->
        List.iter (fun (_, ss) -> stmts ss) cases;
        stmts default
    in
    stmts prog.Ir.body;
    let classes : (key, key list) Hashtbl.t = Hashtbl.create 16 in
    Hashtbl.iter
      (fun k () ->
        let r = find parent k in
        let cur = Option.value ~default:[] (Hashtbl.find_opt classes r) in
        Hashtbl.replace classes r (k :: cur))
      keys;
    let mutated_reps : (key, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun k -> Hashtbl.replace mutated_reps (find parent k) ())
      !mutated_roots;
    let alias = Hashtbl.create 8 in
    let consts_mutable = ref false in
    Hashtbl.iter
      (fun rep members ->
        if Hashtbl.mem mutated_reps rep then begin
          let vars =
            List.filter_map
              (function V (s, n) -> Some (s, n) | Const_vec -> None)
              members
          in
          if List.exists (function Const_vec -> true | V _ -> false) members
          then consts_mutable := true;
          if List.length vars > 1 then
            List.iter (fun v -> Hashtbl.replace alias v vars) vars
        end)
      classes;
    (alias, !consts_mutable)
end

let build_info (prog : Ir.program) =
  let alias, consts_mutable = Alias.compute prog in
  {
    i_prog = prog;
    i_in = scope_info prog.inputs;
    i_out = scope_info prog.outputs;
    i_st = scope_info (List.map fst prog.states);
    i_lo = scope_info prog.locals;
    i_state_init =
      Array.of_list (List.map (fun (_, v) -> Absval.of_value v) prog.states);
    i_input_top =
      Array.of_list
        (List.map (fun (v : Ir.var) -> Absval.top_of_ty v.ty) prog.inputs);
    i_output_init =
      Array.of_list
        (List.map
           (fun (v : Ir.var) -> Absval.of_value (Value.default_of_ty v.ty))
           prog.outputs);
    i_local_init =
      Array.of_list
        (List.map
           (fun (v : Ir.var) -> Absval.of_value (Value.default_of_ty v.ty))
           prog.locals);
    i_alias = alias;
    i_consts_mutable = consts_mutable;
  }

(* ------------------------------------------------------------------ *)
(* Analyzer configuration and octagon variable universe                *)

type domain = [ `Interval | `Octagon ]
type config = { domain : domain }

let default_config = { domain = `Interval }

(* The relational domain tracks a bounded universe of numeric cells:
   every int/real scalar (inputs, states, locals), then the elements of
   State-scope vectors outside any may-alias class (their element
   writes are strong, so exact relations survive).  [-1] as the element
   index marks a scalar cell. *)
module Octvars = struct
  type t = {
    ov_keys : (Ir.scope * string * int) array;
    ov_ints : bool array;
    ov_index : (Ir.scope * string * int, int) Hashtbl.t;
  }

  let max_vars = 48

  let build (info : info) =
    let keys = ref [] in
    let count = ref 0 in
    let push key is_int =
      if !count < max_vars then begin
        keys := (key, is_int) :: !keys;
        incr count
      end
    in
    let scalar scope (v : Ir.var) =
      match v.ty with
      | Value.Tint _ -> push (scope, v.name, -1) true
      | Value.Treal _ -> push (scope, v.name, -1) false
      | Value.Tbool | Value.Tvec _ -> ()
    in
    List.iter (scalar Ir.Input) info.i_prog.Ir.inputs;
    List.iter (fun ((v : Ir.var), _) -> scalar Ir.State v) info.i_prog.Ir.states;
    List.iter (scalar Ir.Local) info.i_prog.Ir.locals;
    List.iter
      (fun ((v : Ir.var), _) ->
        match v.ty with
        | Value.Tvec (elt, len)
          when not (Hashtbl.mem info.i_alias (Ir.State, v.name)) -> (
          match elt with
          | Value.Tint _ ->
            for k = 0 to len - 1 do
              push (Ir.State, v.name, k) true
            done
          | Value.Treal _ ->
            for k = 0 to len - 1 do
              push (Ir.State, v.name, k) false
            done
          | Value.Tbool | Value.Tvec _ -> ())
        | Value.Tbool | Value.Tint _ | Value.Treal _ | Value.Tvec _ -> ())
      info.i_prog.Ir.states;
    let l = List.rev !keys in
    let ov_keys = Array.of_list (List.map fst l) in
    let ov_ints = Array.of_list (List.map snd l) in
    let ov_index = Hashtbl.create (max 8 (Array.length ov_keys)) in
    Array.iteri (fun i k -> Hashtbl.replace ov_index k i) ov_keys;
    { ov_keys; ov_ints; ov_index }

  let find t key = Hashtbl.find_opt t.ov_index key
end

(* ------------------------------------------------------------------ *)
(* Abstract environments                                               *)

type env = {
  e_in : Absval.t array;
  e_out : Absval.t array;
  e_st : Absval.t array;
  e_lo : Absval.t array;
  e_lw : int array;  (* local write status: 0 never, 1 maybe, 2 definitely *)
  e_pout : string option array;  (* unread pending write, per output slot *)
  e_pst : string option array;
  e_plo : string option array;
  mutable e_err : bool;  (* a step-aborting Eval_error may have occurred *)
  mutable e_oct : Octagon.t option;  (* relational companion (octagon) *)
}

let env_make info state =
  {
    e_in = Array.copy info.i_input_top;
    e_out = Array.copy info.i_output_init;
    e_st = Array.copy state;
    e_lo = Array.copy info.i_local_init;
    e_lw = Array.make (Array.length info.i_local_init) 0;
    e_pout = Array.make (Array.length info.i_output_init) None;
    e_pst = Array.make (Array.length state) None;
    e_plo = Array.make (Array.length info.i_local_init) None;
    e_err = false;
    e_oct = None;
  }

let env_copy e =
  {
    e_in = Array.copy e.e_in;
    e_out = Array.copy e.e_out;
    e_st = Array.copy e.e_st;
    e_lo = Array.copy e.e_lo;
    e_lw = Array.copy e.e_lw;
    e_pout = Array.copy e.e_pout;
    e_pst = Array.copy e.e_pst;
    e_plo = Array.copy e.e_plo;
    e_err = e.e_err;
    e_oct = Option.map Octagon.copy e.e_oct;
  }

let env_blit ~src ~dst =
  let b a b = Array.blit a 0 b 0 (Array.length a) in
  b src.e_in dst.e_in;
  b src.e_out dst.e_out;
  b src.e_st dst.e_st;
  b src.e_lo dst.e_lo;
  b src.e_lw dst.e_lw;
  b src.e_pout dst.e_pout;
  b src.e_pst dst.e_pst;
  b src.e_plo dst.e_plo;
  dst.e_err <- src.e_err;
  dst.e_oct <- src.e_oct

(* join [src] into [dst] pointwise *)
let env_join_into ~src ~dst =
  let j a b = Array.iteri (fun i v -> b.(i) <- Absval.join v b.(i)) a in
  j src.e_in dst.e_in;
  j src.e_out dst.e_out;
  j src.e_st dst.e_st;
  j src.e_lo dst.e_lo;
  Array.iteri (fun i v -> if v <> dst.e_lw.(i) then dst.e_lw.(i) <- 1) src.e_lw;
  let jp a b = Array.iteri (fun i v -> if v <> b.(i) then b.(i) <- None) a in
  jp src.e_pout dst.e_pout;
  jp src.e_pst dst.e_pst;
  jp src.e_plo dst.e_plo;
  dst.e_err <- src.e_err || dst.e_err;
  dst.e_oct <-
    (match (src.e_oct, dst.e_oct) with
     | Some a, Some b -> Some (Octagon.join a b)
     | (Some _ | None), _ -> None)

(* ------------------------------------------------------------------ *)
(* Recording context                                                   *)

type ctx = {
  ci : info;
  c_oct : Octvars.t option;  (* octagon universe; [None] = interval domain *)
  mutable c_final : bool;  (* recording pass over the stabilized state *)
  mutable c_live : bool;  (* current statement's reach <> Never *)
  mutable c_loc : string;  (* current statement path, for eval-site diags *)
  mutable c_inchart : bool;  (* inside a chart state-dispatch arm *)
  mutable c_diags : Diag.t list;
  mutable c_branch : (Branch.key * reach) list;  (* reversed *)
  mutable c_guards : (int * guard_fact) list;  (* reversed *)
}

let diag ctx code msg =
  if ctx.c_final && ctx.c_live then
    ctx.c_diags <- Diag.make code ~loc:ctx.c_loc msg :: ctx.c_diags

(* ------------------------------------------------------------------ *)
(* Scalar transfer functions                                           *)

let big = 1e15

(* SOUND/int-overflow, SOUND/nan: the single funnel every numeric
   result passes through. *)
let legal_num (n : I.num) : Dom.t =
  if Float.is_nan n.nlo || Float.is_nan n.nhi then
    if n.nint then Absval.int_top else Absval.real_top
  else if n.nint then begin
    if n.nlo < -.big || n.nhi > big then Absval.int_top
    else
      let lo = int_of_float (Float.ceil n.nlo)
      and hi = int_of_float (Float.floor n.nhi) in
      if lo > hi then Absval.int_top else Dom.Dint { lo; hi }
  end
  else Dom.Dreal { lo = n.nlo; hi = n.nhi }

let nan_possible (n : I.num) =
  (not n.nint) && n.nlo = neg_infinity && n.nhi = infinity

let has_inf (n : I.num) = n.nlo = neg_infinity || n.nhi = infinity
let has_zero (n : I.num) = n.nlo <= 0.0 && n.nhi >= 0.0

let to_dom = function
  | Absval.Scalar d -> d
  | Absval.Vector _ -> Value.type_error "analysis: vector in scalar position"

let b3_of_abs a = I.b3_of_dom (to_dom a)
let num_of_abs a = I.num_of_dom (to_dom a)
let sc d = Absval.Scalar d

let binop_abs env op (na : I.num) (nb : I.num) : Absval.t =
  let real_result = not (na.nint && nb.nint) in
  match op with
  | Ir.Add -> sc (legal_num (I.nadd na nb))
  | Ir.Sub -> sc (legal_num (I.nsub na nb))
  | Ir.Mul ->
    (* SOUND/nan: 0 * inf with the zero strictly inside one operand
       escapes the corner scan *)
    if
      real_result
      && ((has_inf na && has_zero nb) || (has_inf nb && has_zero na))
    then sc Absval.real_top
    else sc (legal_num (I.nmul na nb))
  | Ir.Div ->
    if has_zero nb then begin
      env.e_err <- true;
      sc (if real_result then Absval.real_top else Absval.int_top)
    end
    else sc (legal_num (I.ndiv na nb))
  | Ir.Mod ->
    if has_zero nb then env.e_err <- true;
    if real_result && has_inf na then sc Absval.real_top
    else sc (legal_num (I.nmod na nb))
  | Ir.Min ->
    if real_result && (nan_possible na || nan_possible nb) then
      sc Absval.real_top
    else sc (legal_num (I.nmin na nb))
  | Ir.Max ->
    if real_result && (nan_possible na || nan_possible nb) then
      sc Absval.real_top
    else sc (legal_num (I.nmax na nb))

let cmp_b3 op (da : Dom.t) (db : Dom.t) : I.bool3 =
  (* [Value.compare_num] coerces booleans to 0/1 and compares floats,
     so a single numeric path is faithful for every scalar kind. *)
  let na = I.num_of_dom da and nb = I.num_of_dom db in
  if nan_possible na || nan_possible nb then I.b3_top
  else
    match op with
    | Ir.Lt ->
      if na.nhi < nb.nlo then I.b3_true
      else if na.nlo >= nb.nhi then I.b3_false
      else I.b3_top
    | Ir.Le ->
      if na.nhi <= nb.nlo then I.b3_true
      else if na.nlo > nb.nhi then I.b3_false
      else I.b3_top
    | Ir.Gt ->
      if na.nlo > nb.nhi then I.b3_true
      else if na.nhi <= nb.nlo then I.b3_false
      else I.b3_top
    | Ir.Ge ->
      if na.nlo >= nb.nhi then I.b3_true
      else if na.nhi < nb.nlo then I.b3_false
      else I.b3_top
    | Ir.Eq ->
      if na.nlo = na.nhi && nb.nlo = nb.nhi && na.nlo = nb.nlo then I.b3_true
      else if na.nhi < nb.nlo || nb.nhi < na.nlo then I.b3_false
      else I.b3_top
    | Ir.Ne ->
      if na.nhi < nb.nlo || nb.nhi < na.nlo then I.b3_true
      else if na.nlo = na.nhi && nb.nlo = nb.nhi && na.nlo = nb.nlo then
        I.b3_false
      else I.b3_top

(* ------------------------------------------------------------------ *)
(* Octagon hooks (relational domain)                                   *)

(* SOUND/int-overflow: relational facts are only exact while the
   abstract values involved stayed inside the float-exact window (a
   collapsed interval means the concrete value may have wrapped). *)
let within_big (n : I.num) = n.I.nlo >= -.big && n.I.nhi <= big

(* A side the octagon can track: a cell (variable, or constant-indexed
   element of a tracked vector) plus a constant offset.  Offsets only
   attach to int cells: float [v + c] rounds, while int [v + c] is
   exact whenever the enclosing interval did not collapse (which the
   callers check via [within_big] on the evaluated side). *)
let oct_term (ov : Octvars.t) (e : Ir.expr) : (int * float) option =
  let cell = function
    | Ir.Var (s, n) -> Octvars.find ov (s, n, -1)
    | Ir.Index (Ir.Var (s, n), Ir.Const (Value.Int k)) ->
      Octvars.find ov (s, n, k)
    | _ -> None
  in
  let int_cell v c =
    match cell v with
    | Some i when ov.Octvars.ov_ints.(i) -> Some (i, c)
    | Some _ | None -> None
  in
  match e with
  | Ir.Binop (Ir.Add, v, Ir.Const (Value.Int k)) -> int_cell v (float_of_int k)
  | Ir.Binop (Ir.Add, Ir.Const (Value.Int k), v) -> int_cell v (float_of_int k)
  | Ir.Binop (Ir.Sub, v, Ir.Const (Value.Int k)) ->
    int_cell v (-.float_of_int k)
  | _ -> ( match cell e with Some i -> Some (i, 0.0) | None -> None)

(* Decide [x op k] from [x in [lo, hi]]: both sides concretely evaluate
   to finite doubles inside the exact window (the callers check), so
   the mathematical comparison the bounds support is the runtime one. *)
let oct_decide op lo hi k : I.bool3 option =
  let t = Some I.b3_true and f = Some I.b3_false in
  match op with
  | Ir.Lt -> if hi < k then t else if lo >= k then f else None
  | Ir.Le -> if hi <= k then t else if lo > k then f else None
  | Ir.Gt -> if lo > k then t else if hi <= k then f else None
  | Ir.Ge -> if lo >= k then t else if hi < k then f else None
  | Ir.Eq ->
    if lo = k && hi = k then t else if hi < k || lo > k then f else None
  | Ir.Ne ->
    if hi < k || lo > k then t else if lo = k && hi = k then f else None

(* Try to decide a comparison the interval domain left open. *)
let oct_cmp ctx env op a b (na : I.num) (nb : I.num) : I.bool3 option =
  match (ctx.c_oct, env.e_oct) with
  | Some ov, Some o when not (Octagon.is_bottom o) ->
    if
      nan_possible na || nan_possible nb
      || not (within_big na && within_big nb)
    then None
    else begin
      match (oct_term ov a, oct_term ov b) with
      | Some (ia, ca), Some (ib, cb) ->
        if ia = ib then
          (* lhs - rhs is the constant [ca - cb] *)
          oct_decide op (ca -. cb) (ca -. cb) 0.0
        else begin
          (* (v_a + ca) op (v_b + cb)  <=>  (v_a - v_b) op (cb - ca) *)
          let lo, hi = Octagon.diff_bounds o ia ib in
          if lo > hi then None else oct_decide op lo hi (cb -. ca)
        end
      | (Some _ | None), _ -> None
    end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let slot_of ctx env scope name =
  let si, arr =
    match scope with
    | Ir.Input -> (ctx.ci.i_in, env.e_in)
    | Ir.Output -> (ctx.ci.i_out, env.e_out)
    | Ir.State -> (ctx.ci.i_st, env.e_st)
    | Ir.Local -> (ctx.ci.i_lo, env.e_lo)
  in
  match Hashtbl.find_opt si.si_index name with
  | Some i -> (arr, i)
  | None ->
    Value.type_error "analysis: unbound %s variable %s" (Ir.scope_name scope)
      name

let read_var ctx env scope name =
  let arr, i = slot_of ctx env scope name in
  (match scope with
   | Ir.Input -> ()
   | Ir.Output -> env.e_pout.(i) <- None
   | Ir.State -> env.e_pst.(i) <- None
   | Ir.Local ->
     env.e_plo.(i) <- None;
     if env.e_lw.(i) = 0 then
       diag ctx Diag.Uninit_local_read
         (Fmt.str "local %s read before any write (default value)" name));
  arr.(i)

let rec eval ctx env (e : Ir.expr) : Absval.t =
  match e with
  | Ir.Const (Value.Vec _ as v) when ctx.ci.i_consts_mutable ->
    (* SOUND/aliasing: a vector literal stored into a slot and then
       element-written is mutated in place, so later evaluations of the
       literal may see arbitrary contents *)
    Absval.top_like (Absval.of_value v)
  | Ir.Const v -> Absval.of_value v
  | Ir.Var (scope, name) -> read_var ctx env scope name
  | Ir.Unop (op, e1) -> eval_unop ctx env op (eval ctx env e1)
  | Ir.Binop (op, a, b) ->
    let va = eval ctx env a in
    let vb = eval ctx env b in
    binop_abs env op (num_of_abs va) (num_of_abs vb)
  | Ir.Cmp (op, a, b) ->
    let va = eval ctx env a in
    let vb = eval ctx env b in
    let bv = cmp_b3 op (to_dom va) (to_dom vb) in
    let bv =
      if bv.I.bt && bv.I.bf then
        match oct_cmp ctx env op a b (num_of_abs va) (num_of_abs vb) with
        | Some r -> r
        | None -> bv
      else bv
    in
    sc (I.dom_of_b3 bv)
  | Ir.And (a, b) ->
    (* no short-circuit: Exec evaluates both operands *)
    let ba = b3_of_abs (eval ctx env a) in
    let bb = b3_of_abs (eval ctx env b) in
    sc (I.dom_of_b3 (I.b3_and ba bb))
  | Ir.Or (a, b) ->
    let ba = b3_of_abs (eval ctx env a) in
    let bb = b3_of_abs (eval ctx env b) in
    sc (I.dom_of_b3 (I.b3_or ba bb))
  | Ir.Ite (c, t, e1) ->
    let bc = b3_of_abs (eval ctx env c) in
    if not bc.I.bf then eval ctx env t
    else if not bc.I.bt then eval ctx env e1
    else Absval.join (eval ctx env t) (eval ctx env e1)
  | Ir.Index (v, ix) ->
    let av = eval ctx env v in
    let ai = eval ctx env ix in
    (match av with
     | Absval.Vector arr ->
       let n = Array.length arr in
       let lo, hi = index_range ai n in
       if hi < 0 || lo >= n then begin
         diag ctx Diag.Index_oob
           (Fmt.str "index in [%d,%d] always outside [0,%d)" lo hi n);
         env.e_err <- true;
         (* the access always raises; any value is a sound stand-in *)
         if n > 0 then Absval.top_like arr.(0) else sc Absval.int_top
       end
       else begin
         if lo < 0 || hi >= n then begin
           diag ctx Diag.Index_may_oob
             (Fmt.str "index in [%d,%d] may leave [0,%d)" lo hi n);
           env.e_err <- true
         end;
         let lo = max 0 lo and hi = min (n - 1) hi in
         let acc = ref arr.(lo) in
         for k = lo + 1 to hi do
           acc := Absval.join !acc arr.(k)
         done;
         !acc
       end
     | Absval.Scalar _ -> Value.type_error "analysis: Index on scalar")

and eval_unop ctx env op a =
  ignore ctx;
  ignore env;
  match op with
  | Ir.Not -> sc (I.dom_of_b3 (I.b3_not (b3_of_abs a)))
  | Ir.Neg -> sc (legal_num (I.nneg (num_of_abs a)))
  | Ir.Abs_op ->
    let n = num_of_abs a in
    (* SOUND/nan: abs of a possibly-nan value is nan, but nabs would
       report [0, inf] *)
    if nan_possible n then sc Absval.real_top else sc (legal_num (I.nabs n))
  | Ir.To_real ->
    let n = num_of_abs a in
    sc (Dom.Dreal { lo = n.nlo; hi = n.nhi })
  | Ir.To_int -> sc (legal_num (I.ntrunc (num_of_abs a)))
  | Ir.Floor -> sc (legal_num (I.nfloor (num_of_abs a)))
  | Ir.Ceil -> sc (legal_num (I.nceil (num_of_abs a)))

(* int range of an index expression under [Value.to_int] truncation *)
and index_range ai n =
  match legal_num (I.ntrunc (num_of_abs ai)) with
  | Dom.Dint { lo; hi } -> (lo, hi)
  | Dom.Dbool _ | Dom.Dreal _ -> (0, n - 1)

(* ------------------------------------------------------------------ *)
(* Guard refinement (backward narrowing on variable leaves)            *)

let narrow_var ctx env scope name (f : Dom.t -> Dom.t) =
  let arr, i = slot_of ctx env scope name in
  match arr.(i) with
  | Absval.Scalar d ->
    (* SOUND/nan: a possibly-nan value satisfies guards its interval
       image contradicts; never narrow through it *)
    if not (nan_possible (I.num_of_dom d)) then
      arr.(i) <- Absval.Scalar (f d) (* Dom.Empty propagates: infeasible *)
  | Absval.Vector _ -> ()

(* Meet [orig] with the float interval [n], keeping any bound the float
   image cannot express exactly (SOUND/int-overflow: the solver's
   saturating conversion would shave past-[big] values). *)
let meet_num (orig : Dom.t) (n : I.num) : Dom.t =
  if Float.is_nan n.nlo || Float.is_nan n.nhi then orig
  else
    match orig with
    | Dom.Dbool _ ->
      let bt = n.nlo <= 1.0 && 1.0 <= n.nhi in
      let bf = n.nlo <= 0.0 && 0.0 <= n.nhi in
      I.(dom_of_b3 (b3_meet (b3_of_dom orig) { bt; bf }))
    | Dom.Dint { lo; hi } ->
      let lo' =
        if n.nlo < -.big then lo else max lo (int_of_float (Float.ceil n.nlo))
      in
      let hi' =
        if n.nhi > big then hi else min hi (int_of_float (Float.floor n.nhi))
      in
      if lo' > hi' then raise Dom.Empty;
      Dom.Dint { lo = lo'; hi = hi' }
    | Dom.Dreal { lo; hi } ->
      let lo' = Float.max lo n.nlo and hi' = Float.min hi n.nhi in
      if lo' > hi' then raise Dom.Empty;
      Dom.Dreal { lo = lo'; hi = hi' }

let negate_cmp = function
  | Ir.Eq -> Ir.Ne
  | Ir.Ne -> Ir.Eq
  | Ir.Lt -> Ir.Ge
  | Ir.Le -> Ir.Gt
  | Ir.Gt -> Ir.Le
  | Ir.Ge -> Ir.Lt

(* Write the octagon's (possibly tightened) unary bounds for a cell
   back into its interval slot: the reduction half of the reduced
   product.  [Dom.Empty] propagates to the caller (infeasible arm). *)
let oct_writeback ctx env idx =
  match (ctx.c_oct, env.e_oct) with
  | Some ov, Some o ->
    let lo, hi = Octagon.bounds o idx in
    if lo > neg_infinity || hi < infinity then begin
      let scope, name, elem = ov.Octvars.ov_keys.(idx) in
      let n' = { I.nlo = lo; nhi = hi; nint = ov.Octvars.ov_ints.(idx) } in
      if elem < 0 then narrow_var ctx env scope name (fun d -> meet_num d n')
      else begin
        let arr, i = slot_of ctx env scope name in
        match arr.(i) with
        | Absval.Vector els when elem < Array.length els -> (
          match els.(elem) with
          | Absval.Scalar d when not (nan_possible (I.num_of_dom d)) ->
            let els' = Array.copy els in
            els'.(elem) <- Absval.Scalar (meet_num d n');
            arr.(i) <- Absval.Vector els'
          | Absval.Scalar _ | Absval.Vector _ -> ())
        | Absval.Vector _ | Absval.Scalar _ -> ()
      end
    end
  | _ -> ()

(* Record a guard comparison as an octagon constraint.  SOUND: strict
   comparisons tighten by 1 only when both cells are int; mixed or real
   comparisons keep the non-strict (weaker but sound) bound.  The
   callers guarantee neither side is possibly-nan. *)
let oct_refine_cmp ctx env op a b (na : I.num) (nb : I.num) =
  match (ctx.c_oct, env.e_oct) with
  | Some ov, Some o when within_big na && within_big nb -> (
    match (oct_term ov a, oct_term ov b) with
    | Some (ia, ca), Some (ib, cb) when ia <> ib ->
      let both_int = ov.Octvars.ov_ints.(ia) && ov.Octvars.ov_ints.(ib) in
      (* (v_a + ca) op (v_b + cb)  <=>  (v_a - v_b) op k, k = cb - ca *)
      let k = cb -. ca in
      let le () = Octagon.add_diff o ia ib k in
      let lt () = Octagon.add_diff o ia ib (if both_int then k -. 1.0 else k) in
      let ge () = Octagon.add_diff o ib ia (-.k) in
      let gt () =
        Octagon.add_diff o ib ia (if both_int then -.k -. 1.0 else -.k)
      in
      (match op with
       | Ir.Le -> le ()
       | Ir.Lt -> lt ()
       | Ir.Ge -> ge ()
       | Ir.Gt -> gt ()
       | Ir.Eq ->
         le ();
         ge ()
       | Ir.Ne -> ());
      if Octagon.is_bottom o then raise Dom.Empty;
      oct_writeback ctx env ia;
      oct_writeback ctx env ib
    | ((Some _ | None), _) -> ())
  | _ -> ()

let rec refine ctx env (e : Ir.expr) (want : bool) : unit =
  match e with
  | Ir.Const v -> if Value.to_bool v <> want then raise Dom.Empty
  | Ir.Var (scope, name) ->
    narrow_var ctx env scope name (fun d ->
        match d with
        | Dom.Dbool _ ->
          I.(
            dom_of_b3
              (b3_meet (b3_of_dom d) (if want then b3_true else b3_false)))
        | Dom.Dint { lo; hi } ->
          if want then
            (* (<> 0): prune a zero endpoint *)
            if lo = 0 && hi = 0 then raise Dom.Empty
            else if lo = 0 then Dom.Dint { lo = 1; hi }
            else if hi = 0 then Dom.Dint { lo; hi = -1 }
            else d
          else meet_num d { I.nlo = 0.0; nhi = 0.0; nint = true }
        | Dom.Dreal { lo; hi } ->
          if want then
            if lo = 0.0 && hi = 0.0 then raise Dom.Empty else d
          else meet_num d { I.nlo = 0.0; nhi = 0.0; nint = false })
  | Ir.Unop (Ir.Not, e1) -> refine ctx env e1 (not want)
  | Ir.And (a, b) ->
    if want then begin
      refine ctx env a true;
      refine ctx env b true
    end
    else begin
      let ba = b3_of_abs (eval ctx env a) in
      let bb = b3_of_abs (eval ctx env b) in
      if not ba.I.bf then refine ctx env b false
      else if not bb.I.bf then refine ctx env a false
    end
  | Ir.Or (a, b) ->
    if not want then begin
      refine ctx env a false;
      refine ctx env b false
    end
    else begin
      let ba = b3_of_abs (eval ctx env a) in
      let bb = b3_of_abs (eval ctx env b) in
      if not ba.I.bt then refine ctx env b true
      else if not bb.I.bt then refine ctx env a true
    end
  | Ir.Cmp (op, a, b) ->
    refine_cmp ctx env (if want then op else negate_cmp op) a b
  | Ir.Ite (c, t, e1) ->
    let bc = b3_of_abs (eval ctx env c) in
    if not bc.I.bf then refine ctx env t want
    else if not bc.I.bt then refine ctx env e1 want
  | Ir.Unop _ | Ir.Binop _ | Ir.Index _ -> ()

and refine_cmp ctx env op a b =
  let da = to_dom (eval ctx env a) and db = to_dom (eval ctx env b) in
  let na = I.num_of_dom da and nb = I.num_of_dom db in
  (* SOUND/nan: nan compares below everything, so a possibly-nan side
     makes both operands unconstrainable *)
  if nan_possible na || nan_possible nb then ()
  else begin
    let upd side n' =
      match side with
      | Ir.Var (s, nm) -> narrow_var ctx env s nm (fun d -> meet_num d n')
      | Ir.Const _ | Ir.Unop _ | Ir.Binop _ | Ir.Cmp _ | Ir.And _ | Ir.Or _
      | Ir.Ite _ | Ir.Index _ ->
        ()
    in
    let eps_lt hi = if na.I.nint && nb.I.nint then hi -. 1.0 else hi in
    let eps_gt lo = if na.I.nint && nb.I.nint then lo +. 1.0 else lo in
    oct_refine_cmp ctx env op a b na nb;
    match op with
    | Ir.Le ->
      upd a { na with I.nhi = Float.min na.I.nhi nb.I.nhi };
      upd b { nb with I.nlo = Float.max nb.I.nlo na.I.nlo }
    | Ir.Lt ->
      upd a { na with I.nhi = Float.min na.I.nhi (eps_lt nb.I.nhi) };
      upd b { nb with I.nlo = Float.max nb.I.nlo (eps_gt na.I.nlo) }
    | Ir.Ge ->
      upd a { na with I.nlo = Float.max na.I.nlo nb.I.nlo };
      upd b { nb with I.nhi = Float.min nb.I.nhi na.I.nhi }
    | Ir.Gt ->
      upd a { na with I.nlo = Float.max na.I.nlo (eps_gt nb.I.nlo) };
      upd b { nb with I.nhi = Float.min nb.I.nhi (eps_lt na.I.nhi) }
    | Ir.Eq ->
      let m = I.nmeet na nb in
      upd a { m with I.nint = na.I.nint };
      upd b { m with I.nint = nb.I.nint }
    | Ir.Ne ->
      let prune this other =
        if other.I.nlo = other.I.nhi && this.I.nint && other.I.nint then begin
          let k = other.I.nlo in
          if this.I.nlo = k && this.I.nhi = k then raise Dom.Empty
          else if this.I.nlo = k then Some { this with I.nlo = k +. 1.0 }
          else if this.I.nhi = k then Some { this with I.nhi = k -. 1.0 }
          else None
        end
        else None
      in
      (match prune na nb with Some na' -> upd a na' | None -> ());
      (match prune nb na with Some nb' -> upd b nb' | None -> ())
  end

(* ------------------------------------------------------------------ *)
(* Statement transfer                                                  *)

let eff_reach reach env = if reach = Must && env.e_err then May else reach

let is_chart_dispatch = function
  | Ir.Var (Ir.State, n) ->
    n = "loc" || (String.length n > 4 && String.sub n 0 4 = "loc.")
  | _ -> false

let record_branch ctx key r =
  if ctx.c_final then ctx.c_branch <- (key, r) :: ctx.c_branch

let record_guard ctx id gf =
  if ctx.c_final then ctx.c_guards <- (id, gf) :: ctx.c_guards

let rec lv_root = function
  | Ir.Lvar (s, n) -> (s, n)
  | Ir.Lindex (inner, _) -> lv_root inner

let rec rebase_lv lv new_root =
  match lv with
  | Ir.Lvar _ -> new_root
  | Ir.Lindex (inner, ix) -> Ir.Lindex (rebase_lv inner new_root, ix)

(* Rebuild the lvalue path rooted at a variable, applying [f] at the
   innermost position: a strong update when every index on the way is a
   valid singleton, a weak (join) update otherwise. *)
let rec update_lv ctx env (lv : Ir.lvalue) (f : Absval.t -> Absval.t) : unit =
  match lv with
  | Ir.Lvar (scope, name) ->
    let arr, i = slot_of ctx env scope name in
    arr.(i) <- f arr.(i)
  | Ir.Lindex (inner, ix) ->
    let ai = eval ctx env ix in
    update_lv ctx env inner (fun cur ->
        match cur with
        | Absval.Vector arr ->
          let n = Array.length arr in
          let lo, hi = index_range ai n in
          if hi < 0 || lo >= n then begin
            diag ctx Diag.Index_oob
              (Fmt.str "write index in [%d,%d] always outside [0,%d)" lo hi n);
            env.e_err <- true;
            cur (* the write always raises; nothing is stored *)
          end
          else begin
            if lo < 0 || hi >= n then begin
              diag ctx Diag.Index_may_oob
                (Fmt.str "write index in [%d,%d] may leave [0,%d)" lo hi n);
              env.e_err <- true
            end;
            let lo = max 0 lo and hi = min (n - 1) hi in
            let arr' = Array.copy arr in
            if lo = hi then arr'.(lo) <- f arr'.(lo)
            else
              for k = lo to hi do
                arr'.(k) <- Absval.join arr'.(k) (f arr'.(k))
              done;
            Absval.Vector arr'
          end
        | Absval.Scalar _ -> Value.type_error "analysis: Lindex on scalar")

let assign_stmt ctx env reach loc (lhs : Ir.lvalue) (v : Absval.t) =
  match lhs with
  | Ir.Lvar (Ir.Input, _) ->
    (* a direct whole-value store to an input raises at runtime *)
    env.e_err <- true
  | Ir.Lvar (((Ir.Output | Ir.State | Ir.Local) as scope), name) ->
    let _, i = slot_of ctx env scope name in
    let pend =
      match scope with
      | Ir.Output -> env.e_pout
      | Ir.State -> env.e_pst
      | Ir.Local -> env.e_plo
      | Ir.Input -> assert false
    in
    (match pend.(i) with
     | Some first when reach <> Never && ctx.c_final && ctx.c_live ->
       ctx.c_diags <-
         Diag.make Diag.Dead_store ~loc:first
           (Fmt.str "%s %s may be overwritten before any read"
              (Ir.scope_name scope) name)
         :: ctx.c_diags
     | Some _ | None -> ());
    pend.(i) <- Some loc;
    if scope = Ir.Local then env.e_lw.(i) <- 2;
    update_lv ctx env lhs (fun _ -> v)
  | Ir.Lindex _ ->
    (* a partial write both reads and writes the root: clear pending
       state, then strong/weak-update the element(s).  Note an Lindex
       whose root is an input does NOT raise — it mutates the input
       array in place. *)
    let scope, name = lv_root lhs in
    let _, i = slot_of ctx env scope name in
    (match scope with
     | Ir.Input -> ()
     | Ir.Output -> env.e_pout.(i) <- None
     | Ir.State -> env.e_pst.(i) <- None
     | Ir.Local ->
       env.e_plo.(i) <- None;
       if env.e_lw.(i) = 0 then env.e_lw.(i) <- 1);
    (match Hashtbl.find_opt ctx.ci.i_alias (scope, name) with
     | None -> update_lv ctx env lhs (fun _ -> v)
     | Some cls ->
       (* SOUND/aliasing: the slot may share its array with every
          member of its class — weak-update all of them *)
       List.iter
         (fun (s, n) ->
           let arr, j = slot_of ctx env s n in
           match arr.(j) with
           | Absval.Vector _ ->
             update_lv ctx env
               (rebase_lv lhs (Ir.Lvar (s, n)))
               (fun old -> Absval.join old v)
           | Absval.Scalar _ -> ())
         cls)

(* Octagon transfer for an assignment (runs after the interval store):
   an exact copy/shift when the rhs is a tracked cell plus an int
   constant and the interval result did not collapse; otherwise forget
   the destination cell and reseed its unary bounds from the interval
   result.  Destinations that may overlap tracked vector cells without
   naming one (whole-vector stores, weak or non-constant element
   writes) forget every cell of the root. *)
let oct_assign ctx env (lhs : Ir.lvalue) (rhs : Ir.expr) (v : Absval.t) =
  match (ctx.c_oct, env.e_oct) with
  | Some ov, Some o ->
    let seed idx av =
      match av with
      | Absval.Scalar d ->
        let n = I.num_of_dom d in
        if not (nan_possible n) then
          Octagon.meet_interval o idx ~lo:n.I.nlo ~hi:n.I.nhi
      | Absval.Vector _ -> ()
    in
    (* tracked cells of a vector form a contiguous prefix 0..j-1 *)
    let forget_elems s name av =
      let rec loop k =
        match Octvars.find ov (s, name, k) with
        | Some idx ->
          Octagon.forget o idx;
          (match av with
           | Some (Absval.Vector els) when k < Array.length els ->
             seed idx els.(k)
           | Some _ | None -> ());
          loop (k + 1)
        | None -> ()
      in
      loop 0
    in
    let exact =
      (* SOUND/int-overflow, SOUND/nan: a collapsed (or possibly-nan)
         stored interval means the concrete arithmetic may have wrapped
         or produced nan, so no exact relation may be recorded *)
      match v with
      | Absval.Scalar d ->
        let n = I.num_of_dom d in
        (not (nan_possible n)) && within_big n
      | Absval.Vector _ -> false
    in
    let dst =
      match lhs with
      | Ir.Lvar (Ir.Input, _) -> None
      | Ir.Lvar (s, name) -> Octvars.find ov (s, name, -1)
      | Ir.Lindex (Ir.Lvar (s, name), Ir.Const (Value.Int k)) ->
        Octvars.find ov (s, name, k)
      | Ir.Lindex _ -> None
    in
    (match (dst, lhs) with
     | Some d, _ ->
       (match oct_term ov rhs with
        | Some (src, off) when exact ->
          if src = d then Octagon.shift o d off
          else Octagon.assign_copy o ~dst:d ~src ~offset:off
        | Some _ | None -> Octagon.forget o d);
       seed d v
     | None, Ir.Lvar (Ir.Input, _) -> ()  (* the store raises *)
     | None, Ir.Lvar (s, name) -> forget_elems s name (Some v)
     | None, Ir.Lindex _ ->
       let s, name = lv_root lhs in
       forget_elems s name None)
  | _ -> ()

let rec exec_stmts ctx env reach prefix stmts =
  List.iteri
    (fun i s -> exec_stmt ctx env reach (Fmt.str "%s[%d]" prefix i) s)
    stmts

and exec_stmt ctx env reach loc (s : Ir.stmt) =
  ctx.c_loc <- loc;
  ctx.c_live <- ctx.c_final && reach <> Never;
  match s with
  | Ir.Assign (lhs, e) ->
    let v = eval ctx env e in
    assign_stmt ctx env reach loc lhs v;
    oct_assign ctx env lhs e v
  | Ir.If { id; cond; then_; else_ } ->
    let atoms = Ir.atoms_of_condition cond in
    let g_atoms =
      Array.of_list (List.map (fun a -> b3_of_abs (eval ctx env a)) atoms)
    in
    let gv = b3_of_abs (eval ctx env cond) in
    let dec_reach = eff_reach reach env in
    record_guard ctx id { g_reach = dec_reach; g_val = gv; g_atoms };
    if reach <> Never then
      if not gv.I.bf then
        diag ctx
          (if ctx.c_inchart then Diag.Dead_chart_transition
           else Diag.Const_true_guard)
          (Fmt.str "decision %d guard is always true" id)
      else if not gv.I.bt then
        diag ctx
          (if ctx.c_inchart then Diag.Dead_chart_transition
           else Diag.Const_false_guard)
          (Fmt.str "decision %d guard is always false" id);
    let branch want possible forced =
      if reach = Never || not possible then (Never, env_copy env)
      else begin
        let e' = env_copy env in
        match refine ctx e' cond want with
        | () -> ((if dec_reach = Must && forced then Must else May), e')
        | exception Dom.Empty -> (Never, e')
      end
    in
    let r_then, env_t = branch true gv.I.bt (not gv.I.bf) in
    let r_else, env_e = branch false gv.I.bf (not gv.I.bt) in
    record_branch ctx (id, Branch.Then) r_then;
    record_branch ctx (id, Branch.Else) r_else;
    exec_stmts ctx env_t r_then (loc ^ ".then") then_;
    exec_stmts ctx env_e r_else (loc ^ ".else") else_;
    ctx.c_loc <- loc;
    ctx.c_live <- ctx.c_final && reach <> Never;
    (match (r_then <> Never, r_else <> Never) with
     | true, true ->
       env_blit ~src:env_t ~dst:env;
       env_join_into ~src:env_e ~dst:env
     | true, false -> env_blit ~src:env_t ~dst:env
     | false, true -> env_blit ~src:env_e ~dst:env
     | false, false ->
       (* both sides infeasible: the decision cannot complete; keep the
          pre-state (a superset of nothing) *)
       ())
  | Ir.Switch { id; scrut; cases; default } ->
    let chart = is_chart_dispatch scrut in
    let ds = eval ctx env scrut in
    let slo, shi =
      match legal_num (I.ntrunc (num_of_abs ds)) with
      | Dom.Dint { lo; hi } -> (lo, hi)
      | Dom.Dbool _ | Dom.Dreal _ -> (min_int, max_int)
    in
    let dec_reach = eff_reach reach env in
    let labels = List.map fst cases in
    let in_scrut k = slo <= k && k <= shi in
    let default_possible =
      (* a value outside the label set must exist in [slo, shi]; only
         scan small ranges (the subtraction guards against overflow) *)
      let small = shi >= slo && shi - slo >= 0 && shi - slo < 4096 in
      if not small then true
      else begin
        let possible = ref false in
        for k = slo to shi do
          if not (List.mem k labels) then possible := true
        done;
        !possible
      end
    in
    let default_forced = not (List.exists in_scrut labels) in
    let refine_case k e' =
      (match scrut with
       | Ir.Var (s, n) ->
         narrow_var ctx e' s n (fun d ->
             meet_num d
               { I.nlo = float_of_int k; nhi = float_of_int k; nint = true })
       | _ -> ());
      match (ctx.c_oct, e'.e_oct) with
      | Some ov, Some o -> (
        (* [Exec] dispatches on [Value.to_int scrut]; for an int cell
           that truncation is the identity, so the case pins it *)
        match oct_term ov scrut with
        | Some (i, c) when ov.Octvars.ov_ints.(i) ->
          let v = float_of_int k -. c in
          Octagon.meet_interval o i ~lo:v ~hi:v;
          if Octagon.is_bottom o then raise Dom.Empty;
          oct_writeback ctx e' i
        | Some _ | None -> ())
      | _ -> ()
    in
    let refine_default e' =
      match scrut with
      | Ir.Var (s, n) ->
        narrow_var ctx e' s n (fun d ->
            match d with
            | Dom.Dint { lo; hi } ->
              let lo = ref lo and hi = ref hi in
              let continue_ = ref true in
              while !continue_ do
                continue_ := false;
                if !lo <= !hi && List.mem !lo labels then begin
                  incr lo;
                  continue_ := true
                end;
                if !lo <= !hi && List.mem !hi labels then begin
                  decr hi;
                  continue_ := true
                end
              done;
              if !lo > !hi then raise Dom.Empty;
              Dom.Dint { lo = !lo; hi = !hi }
            | Dom.Dbool _ | Dom.Dreal _ -> d)
      | _ -> ()
    in
    let arm prefix possible forced refine_arm body =
      let e' = env_copy env in
      let r =
        if reach = Never || not possible then Never
        else
          match refine_arm e' with
          | () -> if dec_reach = Must && forced then Must else May
          | exception Dom.Empty -> Never
      in
      exec_stmts ctx e' r prefix body;
      (r, e')
    in
    let saved_chart = ctx.c_inchart in
    if chart then ctx.c_inchart <- true;
    let results =
      List.map
        (fun (k, body) ->
          let r, e' =
            arm
              (Fmt.str "%s.case%d" loc k)
              (in_scrut k)
              (slo = k && shi = k)
              (refine_case k) body
          in
          ctx.c_loc <- loc;
          ctx.c_live <- ctx.c_final && reach <> Never;
          record_branch ctx (id, Branch.Case k) r;
          if r = Never && reach <> Never then
            diag ctx
              (if chart then Diag.Dead_chart_state else Diag.Dead_case)
              (Fmt.str "decision %d case %d is unreachable" id k);
          (r, e'))
        cases
    in
    let r_def, env_def =
      arm (loc ^ ".default") default_possible default_forced refine_default
        default
    in
    ctx.c_loc <- loc;
    ctx.c_live <- ctx.c_final && reach <> Never;
    record_branch ctx (id, Branch.Default) r_def;
    if r_def = Never && reach <> Never then
      diag ctx Diag.Dead_default
        (Fmt.str "decision %d default is unreachable" id);
    ctx.c_inchart <- saved_chart;
    (match
       List.filter (fun (r, _) -> r <> Never) (results @ [ (r_def, env_def) ])
     with
     | [] -> () (* every arm infeasible: keep the pre-state *)
     | (_, first) :: rest ->
       env_blit ~src:first ~dst:env;
       List.iter (fun (_, e') -> env_join_into ~src:e' ~dst:env) rest)

(* ------------------------------------------------------------------ *)
(* Fixpoint driver                                                     *)

let join_iters = 24

let rec count_scalars = function
  | Absval.Scalar _ -> 1
  | Absval.Vector a ->
    Array.fold_left (fun acc v -> acc + count_scalars v) 0 a

let fresh_ctx info octvars final =
  {
    ci = info;
    c_oct = octvars;
    c_final = final;
    c_live = false;
    c_loc = "";
    c_inchart = false;
    c_diags = [];
    c_branch = [];
    c_guards = [];
  }

(* the abstract value currently held by a tracked cell, if scalar *)
let cell_absval (si : scope_info) (arr : Absval.t array) name elem =
  match Hashtbl.find_opt si.si_index name with
  | None -> None
  | Some i ->
    if elem < 0 then Some arr.(i)
    else (
      match arr.(i) with
      | Absval.Vector els when elem < Array.length els -> Some els.(elem)
      | Absval.Vector _ | Absval.Scalar _ -> None)

(* refresh the unary bounds of every tracked cell from an interval
   lookup (raw stores), then close once *)
let oct_seed (ov : Octvars.t) o lookup =
  Array.iteri
    (fun idx key ->
      match lookup key with
      | Some (Absval.Scalar d) ->
        let n = I.num_of_dom d in
        if not (nan_possible n) then
          Octagon.constrain_raw o idx ~lo:n.I.nlo ~hi:n.I.nhi
      | Some (Absval.Vector _) | None -> ())
    ov.Octvars.ov_keys;
  Octagon.close o

let env_lookup info env ((scope, name, elem) : Ir.scope * string * int) =
  let si, arr =
    match scope with
    | Ir.Input -> (info.i_in, env.e_in)
    | Ir.Output -> (info.i_out, env.e_out)
    | Ir.State -> (info.i_st, env.e_st)
    | Ir.Local -> (info.i_lo, env.e_lo)
  in
  cell_absval si arr name elem

let result_of ctx (state : Absval.t array) env ~iterations ~widenings =
  let prog = ctx.ci.i_prog in
  {
    r_prog = prog;
    r_iterations = iterations;
    r_widenings = widenings;
    r_branch_reach = List.rev ctx.c_branch;
    r_guards = List.rev ctx.c_guards;
    r_diags = Diag.sort ctx.c_diags;
    r_state =
      List.mapi (fun i ((v : Ir.var), _) -> (v.name, state.(i))) prog.Ir.states;
    r_out =
      List.mapi (fun i (v : Ir.var) -> (v.name, env.e_out.(i))) prog.Ir.outputs;
  }

let analyze ?(config = default_config) ?(seeds = []) (prog : Ir.program) :
    result =
  Telemetry.Counter.incr tel_runs;
  Telemetry.Span.with_ ~note:(fun () -> prog.Ir.name) tel_span @@ fun () ->
  let info = build_info prog in
  let octvars =
    match config.domain with
    | `Octagon -> Some (Octvars.build info)
    | `Interval -> None
  in
  let ctx = fresh_ctx info octvars false in
  let n_state = Array.length info.i_state_init in
  let n_bounds =
    2 * Array.fold_left (fun acc v -> acc + count_scalars v) 0 info.i_state_init
  in
  (* widening moves each bound at most once to its top (plus one kind
     collapse per slot), so this cap is never reached in practice; the
     octagon term covers its own matrix-entry promotions to infinity *)
  let hard_cap =
    join_iters + n_bounds + n_state + 8
    + (match octvars with
       | Some ov -> 8 * Array.length ov.Octvars.ov_keys
       | None -> 0)
  in
  let state = Array.copy info.i_state_init in
  (* seeding: joining reached snapshots into the initial abstract state
     analyzes reachability from [init ∪ seeds]; since the snapshots are
     themselves reachable, the fixpoint still over-approximates every
     reachable state and all Never/Must facts keep their meaning *)
  List.iter
    (fun snap ->
      if Array.length snap = n_state then
        Array.iteri
          (fun i v -> state.(i) <- Absval.join state.(i) (Absval.of_value v))
          snap)
    seeds;
  let oct_state =
    ref
      (Option.map
         (fun ov ->
           let o = Octagon.create ~ints:ov.Octvars.ov_ints in
           oct_seed ov o (fun (scope, name, elem) ->
               if scope = Ir.State then
                 cell_absval info.i_st state name elem
               else None);
           o)
         octvars)
  in
  let fresh_env () =
    let env = env_make info state in
    (match (octvars, !oct_state) with
     | Some ov, Some os ->
       let o = Octagon.copy os in
       (* meet in the current interval image of every cell; this also
          re-closes the matrix (open after widening) *)
       oct_seed ov o (env_lookup info env);
       env.e_oct <- Some o
     | _ -> ());
    env
  in
  let iterations = ref 0 in
  let widenings = ref 0 in
  let stable = ref false in
  while (not !stable) && !iterations < hard_cap do
    incr iterations;
    let env = fresh_env () in
    exec_stmts ctx env Must "body" prog.Ir.body;
    let next = Array.map2 Absval.join state env.e_st in
    let next =
      if !iterations > join_iters then begin
        incr widenings;
        Array.map2 Absval.widen state next
      end
      else next
    in
    let oct_stable =
      match (!oct_state, env.e_oct) with
      | Some os, Some o ->
        (* project the post-step octagon onto the persistent state
           cells, then join/widen entrywise.  Entries only ever grow,
           and widening sends a grown entry straight to infinity, so
           this terminates alongside the interval iteration. *)
        Array.iteri
          (fun idx ((scope, _, _) : Ir.scope * string * int) ->
            if scope <> Ir.State then Octagon.forget o idx)
          (Option.get octvars).Octvars.ov_keys;
        let nxt =
          if !iterations > join_iters then Octagon.widen os o
          else Octagon.join os o
        in
        let same = Octagon.equal os nxt in
        oct_state := Some nxt;
        same
      | _ -> true
    in
    if Array.for_all2 Absval.equal state next && oct_stable then stable := true
    else Array.blit next 0 state 0 n_state
  done;
  if not !stable then begin
    (* safety net: widening makes this unreachable, but collapse to the
       value tops rather than report unsound facts if it ever fires *)
    Array.iteri (fun i v -> state.(i) <- Absval.top_like v) state;
    oct_state :=
      Option.map
        (fun ov -> Octagon.create ~ints:ov.Octvars.ov_ints)
        octvars
  end;
  (* final recording pass over the stabilized state *)
  ctx.c_final <- true;
  let env = fresh_env () in
  exec_stmts ctx env Must "body" prog.Ir.body;
  incr iterations;
  Telemetry.Counter.add tel_iterations !iterations;
  Telemetry.Counter.add tel_widenings !widenings;
  result_of ctx state env ~iterations:!iterations ~widenings:!widenings

(* One recording pass from an exact reached snapshot.  The [Must] facts
   it reports hold for the single step taken from [state]; because the
   snapshot is concretely reachable, such facts witness reachability.
   Its [Never] facts are only step-local and must NOT be promoted to
   global deadness — {!Verdict.refine} uses the former and ignores the
   latter. *)
let record_at ?(config = default_config) (prog : Ir.program)
    ~(state : Value.t array) : result =
  Telemetry.Counter.incr tel_runs;
  let info = build_info prog in
  let octvars =
    match config.domain with
    | `Octagon -> Some (Octvars.build info)
    | `Interval -> None
  in
  let st =
    if Array.length state = Array.length info.i_state_init then
      Array.map Absval.of_value state
    else Array.copy info.i_state_init
  in
  let ctx = fresh_ctx info octvars true in
  let env = env_make info st in
  (match octvars with
   | Some ov ->
     let o = Octagon.create ~ints:ov.Octvars.ov_ints in
     oct_seed ov o (env_lookup info env);
     env.e_oct <- Some o
   | None -> ());
  exec_stmts ctx env Must "body" prog.Ir.body;
  result_of ctx st env ~iterations:1 ~widenings:0

let branch_reach r key =
  match List.assoc_opt key r.r_branch_reach with Some x -> x | None -> May

let guard_fact r id = List.assoc_opt id r.r_guards
