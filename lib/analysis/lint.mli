(** Model linter: a thin client of {!Analyzer}.

    Runs the abstract interpreter on a step program and returns its
    diagnostics (stable codes, deterministic order — see {!Diag}).
    [to_lines] renders them in the exact format the [stcg lint]
    subcommand prints and the committed expectation file records. *)

val run : Slim.Ir.program -> Diag.t list

val to_lines : model:string -> Diag.t list -> string list
(** ["<model>: A102 body[2]: ..."] per diagnostic; a single
    ["<model>: clean"] line when there are none. *)
