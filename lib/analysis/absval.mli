(** Abstract values of the static analyzer.

    A scalar abstracts to a {!Solver.Dom.t} (interval / boolean
    constancy); a vector abstracts elementwise.  Unlike the solver —
    whose answers are confirmed by concrete evaluation — the analyzer's
    [Dead] verdicts are never re-checked, so every operation here must
    be a true over-approximation of the runtime:

    - integer results whose bounds leave the "no native-int overflow
      possible" window collapse to the full native range
      [[min_int, max_int]] (OCaml ints wrap, so a saturated-but-finite
      bound like the solver's ±1e18 would under-approximate);
    - real tops are infinite, never the solver's ±1e18 (runtime floats
      are unbounded), and any NaN appearing in a bound collapses the
      result to the full real line. *)

type t =
  | Scalar of Solver.Dom.t
  | Vector of t array

val of_value : Slim.Value.t -> t
(** Exact (point) abstraction. *)

val top_of_ty : Slim.Value.ty -> t
(** Everything the declared type admits.  Used for model {e inputs},
    which every driver (solver, random generation, fuzzer) draws inside
    their declared domains; state variables instead widen to the
    value tops below, because the runtime never clamps them. *)

val int_top : Solver.Dom.t
(** [[min_int, max_int]] — covers every native int, wrapped or not. *)

val real_top : Solver.Dom.t
(** [[-inf, +inf]]. *)

val top_like : t -> t
(** Value top of the same shape and scalar kind. *)

val join : t -> t -> t
(** Least upper bound (interval hull, elementwise on vectors). *)

val widen : t -> t -> t
(** [widen old next]: bounds of [next] that moved past [old] jump to
    the value top of their kind, guaranteeing a finite ascending chain.
    [next] must be [join old post] so bounds only move outward. *)

val equal : t -> t -> bool

val member : t -> Slim.Value.t -> bool
(** Concretization membership (used by tests and the fuzz oracle). *)

val pp : t Fmt.t
