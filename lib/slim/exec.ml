(* Slot-compiled execution core.

   [compile] runs once per program: every variable reference is resolved to
   an integer slot into one of four flat [Value.t array]s (inputs / outputs /
   states / locals), the statement body is lowered to closures over those
   slots, Switch dispatch becomes a precomputed table, and the branch table,
   requirement chains and per-decision condition metadata are all computed up
   front.  [run_step] then executes one model iteration with zero string
   hashing and zero per-step environment construction.

   Slot [i] of a state/input/output array always corresponds to the [i]-th
   entry of [prog.states] / [prog.inputs] / [prog.outputs]; that positional
   contract is shared with Symexec.Sym_value and Stcg.Testcase. *)

module Smap = Map.Make (String)

type state = Value.t array
type inputs = Value.t array
type outputs = Value.t array

type event =
  | Branch_hit of Branch.key
  | Cond_vector of { id : int; vector : bool array; outcome : bool }

exception Eval_error of string

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

(* Telemetry (no-ops unless enabled at program start).  [exec.compiles]
   is nondeterministic: the handle memo is shared across domains, so
   eviction order — and with it the recompile count — can depend on
   scheduling. *)
let tel_steps = Telemetry.Counter.make "exec.steps"
let tel_compiles = Telemetry.Counter.make ~nondet:true "exec.compiles"
let tel_compile_span = Telemetry.Span.make "exec.compile"

(* Mutable per-step register file.  A fresh frame is built for every step, so
   a handle is freely shareable across engines and (later) worker shards. *)
type frame = {
  f_inp : Value.t array;
  f_out : Value.t array;
  f_st : Value.t array;
  f_loc : Value.t array;
  f_emit : event -> unit;
}

type decision_shape = [ `If of Ir.expr | `Switch of Ir.expr * int list ]

type t = {
  prog : Ir.program;
  input_vars : Ir.var array;
  output_vars : Ir.var array;
  state_vars : Ir.var array;
  state_init : Value.t array;
  input_defaults : Value.t array;
  output_defaults : Value.t array;
  local_defaults : Value.t array;
  input_index : (string, int) Hashtbl.t;
  output_index : (string, int) Hashtbl.t;
  state_index : (string, int) Hashtbl.t;
  body : frame -> unit;
  branches : Branch.t list;
  branch_by_key : Branch.t Branch.Key_map.t;
  req_chains : (int * Branch.outcome) list Branch.Key_map.t;
  decisions : (int * decision_shape) list;
  decision_index : (int, decision_shape) Hashtbl.t;
}

(* --- compilation ------------------------------------------------------- *)

type cctx = {
  c_inp : (string, int) Hashtbl.t;
  c_out : (string, int) Hashtbl.t;
  c_st : (string, int) Hashtbl.t;
  c_loc : (string, int) Hashtbl.t;
}

let index_of_vars (vars : Ir.var list) =
  let tbl = Hashtbl.create (List.length vars * 2) in
  (* [replace]: on duplicate names the last declaration wins, matching the
     reference interpreter's bind order. *)
  List.iteri (fun i (v : Ir.var) -> Hashtbl.replace tbl v.name i) vars;
  tbl

let compile_read ctx scope name : frame -> Value.t =
  let tbl =
    match (scope : Ir.scope) with
    | Ir.Input -> ctx.c_inp
    | Ir.Output -> ctx.c_out
    | Ir.State -> ctx.c_st
    | Ir.Local -> ctx.c_loc
  in
  match Hashtbl.find_opt tbl name with
  | Some i ->
    (match scope with
     | Ir.Input -> fun fr -> fr.f_inp.(i)
     | Ir.Output -> fun fr -> fr.f_out.(i)
     | Ir.State -> fun fr -> fr.f_st.(i)
     | Ir.Local -> fun fr -> fr.f_loc.(i))
  | None ->
    (* The error is raised at execution time, like the reference path. *)
    fun _ -> eval_error "unbound %s variable %s" (Ir.scope_name scope) name

let rec compile_expr ctx (e : Ir.expr) : frame -> Value.t =
  match e with
  | Const v -> fun _ -> v
  | Var (scope, name) -> compile_read ctx scope name
  | Unop (op, e) ->
    let f = compile_expr ctx e in
    (match op with
     | Neg -> fun fr -> Value.neg (f fr)
     | Not -> fun fr -> Value.Bool (not (Value.to_bool (f fr)))
     | Abs_op -> fun fr -> Value.abs_v (f fr)
     | To_real -> fun fr -> Value.Real (Value.to_real (f fr))
     | To_int -> fun fr -> Value.Int (Value.to_int (f fr))
     | Floor -> fun fr -> Value.floor_v (f fr)
     | Ceil -> fun fr -> Value.ceil_v (f fr))
  | Binop (op, a, b) ->
    let fa = compile_expr ctx a in
    let fb = compile_expr ctx b in
    let g =
      match op with
      | Ir.Add -> Value.add
      | Ir.Sub -> Value.sub
      | Ir.Mul -> Value.mul
      | Ir.Div -> Value.div
      | Ir.Mod -> Value.modulo
      | Ir.Min -> Value.min_v
      | Ir.Max -> Value.max_v
    in
    fun fr ->
      let va = fa fr in
      let vb = fb fr in
      g va vb
  | Cmp (op, a, b) ->
    let fa = compile_expr ctx a in
    let fb = compile_expr ctx b in
    (match op with
     | Ir.Eq ->
       fun fr ->
         let va = fa fr in
         let vb = fb fr in
         Value.Bool (Value.equal va vb)
     | Ir.Ne ->
       fun fr ->
         let va = fa fr in
         let vb = fb fr in
         Value.Bool (not (Value.equal va vb))
     | Ir.Lt ->
       fun fr ->
         let va = fa fr in
         let vb = fb fr in
         Value.Bool (Value.compare_num va vb < 0)
     | Ir.Le ->
       fun fr ->
         let va = fa fr in
         let vb = fb fr in
         Value.Bool (Value.compare_num va vb <= 0)
     | Ir.Gt ->
       fun fr ->
         let va = fa fr in
         let vb = fb fr in
         Value.Bool (Value.compare_num va vb > 0)
     | Ir.Ge ->
       fun fr ->
         let va = fa fr in
         let vb = fb fr in
         Value.Bool (Value.compare_num va vb >= 0))
  | And (a, b) ->
    (* Full (non-short-circuit) evaluation, like Simulink logic blocks. *)
    let fa = compile_expr ctx a in
    let fb = compile_expr ctx b in
    fun fr ->
      let va = Value.to_bool (fa fr) in
      let vb = Value.to_bool (fb fr) in
      Value.Bool (va && vb)
  | Or (a, b) ->
    let fa = compile_expr ctx a in
    let fb = compile_expr ctx b in
    fun fr ->
      let va = Value.to_bool (fa fr) in
      let vb = Value.to_bool (fb fr) in
      Value.Bool (va || vb)
  | Ite (c, t, e) ->
    let fc = compile_expr ctx c in
    let ft = compile_expr ctx t in
    let fe = compile_expr ctx e in
    fun fr -> if Value.to_bool (fc fr) then ft fr else fe fr
  | Index (v, i) ->
    let fv = compile_expr ctx v in
    let fi = compile_expr ctx i in
    fun fr ->
      let a = Value.to_vec (fv fr) in
      let k = Value.to_int (fi fr) in
      if k < 0 || k >= Array.length a then
        eval_error "index %d out of bounds [0,%d)" k (Array.length a)
      else a.(k)

let rec compile_lvalue_resolve ctx (l : Ir.lvalue) : frame -> Value.t =
  match l with
  | Lvar (scope, name) -> compile_read ctx scope name
  | Lindex (inner, idx) ->
    let fl = compile_lvalue_resolve ctx inner in
    let fi = compile_expr ctx idx in
    fun fr ->
      let a = Value.to_vec (fl fr) in
      let k = Value.to_int (fi fr) in
      if k < 0 || k >= Array.length a then
        eval_error "lvalue index %d out of bounds" k
      else a.(k)

let compile_write ctx (lhs : Ir.lvalue) : frame -> Value.t -> unit =
  match lhs with
  | Lvar (scope, name) ->
    (match scope with
     | Ir.Input -> fun _ _ -> eval_error "assignment to input %s" name
     | Ir.Output | Ir.State | Ir.Local ->
       let tbl =
         match scope with
         | Ir.Output -> ctx.c_out
         | Ir.State -> ctx.c_st
         | Ir.Local -> ctx.c_loc
         | Ir.Input -> assert false
       in
       (match Hashtbl.find_opt tbl name with
        | Some i ->
          (match scope with
           | Ir.Output -> fun fr v -> fr.f_out.(i) <- v
           | Ir.State -> fun fr v -> fr.f_st.(i) <- v
           | Ir.Local -> fun fr v -> fr.f_loc.(i) <- v
           | Ir.Input -> assert false)
        | None ->
          fun _ _ ->
            eval_error "unbound %s variable %s" (Ir.scope_name scope) name))
  | Lindex (inner, idx) ->
    let fl = compile_lvalue_resolve ctx inner in
    let fi = compile_expr ctx idx in
    fun fr v ->
      let a = Value.to_vec (fl fr) in
      let k = Value.to_int (fi fr) in
      if k < 0 || k >= Array.length a then
        eval_error "lvalue index %d out of bounds [0,%d)" k (Array.length a)
      else a.(k) <- v

(* Guard of an [If]: atoms are evaluated left to right into a fresh vector
   (every atom value is observable for condition/MCDC coverage), then the
   whole condition, then one Cond_vector event is emitted. *)
let compile_guard ctx id cond : frame -> bool =
  let atom_fns =
    Array.of_list (List.map (compile_expr ctx) (Ir.atoms_of_condition cond))
  in
  let n = Array.length atom_fns in
  let cond_fn = compile_expr ctx cond in
  fun fr ->
    let vector = Array.make n false in
    for i = 0 to n - 1 do
      vector.(i) <- Value.to_bool (atom_fns.(i) fr)
    done;
    let outcome = Value.to_bool (cond_fn fr) in
    fr.f_emit (Cond_vector { id; vector; outcome });
    outcome

(* Switch label -> arm index.  Dense labels get a direct table; sparse ones
   fall back to a Hashtbl.  Either way dispatch is O(1), replacing the
   reference interpreter's List.assoc_opt scan. *)
let compile_dispatch (labels : int list) : int -> int =
  match labels with
  | [] -> fun _ -> -1
  | l0 :: rest ->
    let lo = List.fold_left min l0 rest in
    let hi = List.fold_left max l0 rest in
    let span = hi - lo + 1 in
    if span <= (4 * (List.length labels + 4)) then begin
      let table = Array.make span (-1) in
      List.iteri (fun i k -> table.(k - lo) <- i) labels;
      fun k -> if k < lo || k > hi then -1 else table.(k - lo)
    end
    else begin
      let tbl = Hashtbl.create (2 * List.length labels) in
      List.iteri (fun i k -> Hashtbl.replace tbl k i) labels;
      fun k -> (match Hashtbl.find_opt tbl k with Some i -> i | None -> -1)
    end

let rec compile_stmts ctx (ss : Ir.stmt list) : frame -> unit =
  match List.map (compile_stmt ctx) ss with
  | [] -> fun _ -> ()
  | [ f ] -> f
  | fs ->
    let arr = Array.of_list fs in
    fun fr -> Array.iter (fun f -> f fr) arr

and compile_stmt ctx : Ir.stmt -> frame -> unit = function
  | Ir.Assign (lhs, e) ->
    let fe = compile_expr ctx e in
    let fw = compile_write ctx lhs in
    fun fr ->
      let v = fe fr in
      fw fr v
  | Ir.If { id; cond; then_; else_ } ->
    let guard = compile_guard ctx id cond in
    let ft = compile_stmts ctx then_ in
    let fe = compile_stmts ctx else_ in
    let hit_then = Branch_hit (id, Branch.Then) in
    let hit_else = Branch_hit (id, Branch.Else) in
    fun fr ->
      if guard fr then begin
        fr.f_emit hit_then;
        ft fr
      end
      else begin
        fr.f_emit hit_else;
        fe fr
      end
  | Ir.Switch { id; scrut; cases; default } ->
    let fs = compile_expr ctx scrut in
    let arms =
      Array.of_list
        (List.map
           (fun (k, ss) -> (Branch_hit (id, Branch.Case k), compile_stmts ctx ss))
           cases)
    in
    let fdef = compile_stmts ctx default in
    let hit_default = Branch_hit (id, Branch.Default) in
    let dispatch = compile_dispatch (List.map fst cases) in
    fun fr ->
      let k = Value.to_int (fs fr) in
      (match dispatch k with
       | -1 ->
         fr.f_emit hit_default;
         fdef fr
       | i ->
         let hit, body = arms.(i) in
         fr.f_emit hit;
         body fr)

let compile (prog : Ir.program) : t =
  Telemetry.Counter.incr tel_compiles;
  Telemetry.Span.with_ tel_compile_span @@ fun () ->
  let input_vars = Array.of_list prog.inputs in
  let output_vars = Array.of_list prog.outputs in
  let state_vars = Array.of_list (List.map fst prog.states) in
  let state_init = Array.of_list (List.map snd prog.states) in
  let defaults vars =
    Array.map (fun (v : Ir.var) -> Value.default_of_ty v.ty) vars
  in
  let local_vars = Array.of_list prog.locals in
  let ctx =
    {
      c_inp = index_of_vars prog.inputs;
      c_out = index_of_vars prog.outputs;
      c_st = index_of_vars (List.map fst prog.states);
      c_loc = index_of_vars prog.locals;
    }
  in
  let body = compile_stmts ctx prog.body in
  let branches = Branch.of_program prog in
  let branch_by_key =
    List.fold_left
      (fun m (b : Branch.t) -> Branch.Key_map.add b.key b m)
      Branch.Key_map.empty branches
  in
  let req_chains =
    (* Requirement chain of a branch: decisions that must take a specific
       outcome for control to reach it, root-first, including itself. *)
    List.fold_left
      (fun m (b : Branch.t) ->
        let rec chain acc (b : Branch.t) =
          let acc = (b.Branch.decision, b.Branch.outcome) :: acc in
          match b.Branch.parent with
          | None -> acc
          | Some p -> chain acc (Branch.Key_map.find p branch_by_key)
        in
        Branch.Key_map.add b.Branch.key (chain [] b) m)
      Branch.Key_map.empty branches
  in
  let decisions = (Ir.decisions_of_program prog :> (int * decision_shape) list) in
  let decision_index = Hashtbl.create (2 * List.length decisions + 1) in
  List.iter (fun (id, shape) -> Hashtbl.replace decision_index id shape) decisions;
  {
    prog;
    input_vars;
    output_vars;
    state_vars;
    state_init;
    input_defaults = defaults input_vars;
    output_defaults = defaults output_vars;
    local_defaults = defaults local_vars;
    input_index = ctx.c_inp;
    output_index = ctx.c_out;
    state_index = ctx.c_st;
    body;
    branches;
    branch_by_key;
    req_chains;
    decisions;
    decision_index;
  }

(* --- per-program handle memo ------------------------------------------- *)

(* Keyed by physical equality: programs are built once (model constructors,
   registry entries) and then reused, so [==] is both correct and free.

   The memo is an immutable snapshot array behind an [Atomic.t], so the
   hit path — taken on every compile-handle resolution, including from
   every worker domain of a parallel job matrix — is a lock-free bounded
   scan with no mutation at all: no move-to-front, no [List.length]
   walk, no critical section to contend on.  Misses take the lock,
   re-check the latest snapshot (two domains racing on the same program
   compile it once), compile, and publish a new snapshot with the fresh
   entry in front, evicting the oldest entry beyond [memo_capacity]
   (O(capacity) copy on the cold path only).  The returned handle itself
   is immutable after construction (its index Hashtbls are never written
   past [compile]) and freely shareable across domains. *)
let memo_capacity = 32
let memo : (Ir.program * t) array Atomic.t = Atomic.make [||]
let memo_lock = Mutex.create ()

let memo_find (snap : (Ir.program * t) array) (prog : Ir.program) =
  let n = Array.length snap in
  let rec go i =
    if i >= n then None
    else begin
      let p, h = Array.unsafe_get snap i in
      if p == prog then Some h else go (i + 1)
    end
  in
  go 0

let handle (prog : Ir.program) : t =
  match memo_find (Atomic.get memo) prog with
  | Some h -> h
  | None ->
    Mutex.lock memo_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock memo_lock)
      (fun () ->
        let snap = Atomic.get memo in
        match memo_find snap prog with
        | Some h -> h
        | None ->
          let h = compile prog in
          let keep = min (Array.length snap) (memo_capacity - 1) in
          let snap' = Array.make (keep + 1) (prog, h) in
          Array.blit snap 0 snap' 1 keep;
          Atomic.set memo snap';
          h)

(* --- accessors --------------------------------------------------------- *)

let program t = t.prog
let input_vars t = t.input_vars
let output_vars t = t.output_vars
let state_vars t = t.state_vars
let n_inputs t = Array.length t.input_vars
let n_states t = Array.length t.state_vars
let input_slot t name = Hashtbl.find_opt t.input_index name
let output_slot t name = Hashtbl.find_opt t.output_index name
let state_slot t name = Hashtbl.find_opt t.state_index name

let find_in index arr kind name =
  match Hashtbl.find_opt index name with
  | Some i -> arr.(i)
  | None -> eval_error "unknown %s variable %s" kind name

let find_input t (a : inputs) name = find_in t.input_index a "input" name
let find_output t (a : outputs) name = find_in t.output_index a "output" name
let find_state t (a : state) name = find_in t.state_index a "state" name

(* --- branch / decision metadata (memoized, satellite of the refactor) -- *)

let branches t = t.branches
let find_branch t key = Branch.Key_map.find_opt key t.branch_by_key

let branch_chain t key =
  match Branch.Key_map.find_opt key t.req_chains with
  | Some c -> c
  | None -> Value.type_error "solve_target: unknown branch %a" Branch.pp_key key

let decision_chain t decision =
  (* Ancestor requirements of the decision itself: the parent chain of its
     Then branch (both outcomes share the same enclosing context). *)
  match Branch.Key_map.find_opt (decision, Branch.Then) t.branch_by_key with
  | None ->
    Value.type_error "solve_target: unknown branch %a" Branch.pp_key
      (decision, Branch.Then)
  | Some b ->
    (match b.Branch.parent with
     | Some p -> branch_chain t p
     | None -> [])

let decisions t = t.decisions
let find_decision t id = Hashtbl.find_opt t.decision_index id

(* --- state / input construction ---------------------------------------- *)

let initial_state t : state = Array.map Value.copy t.state_init
let default_inputs t : inputs = Array.map Value.copy t.input_defaults

let random_inputs rng t : inputs =
  let n = Array.length t.input_vars in
  let a = Array.make n (Value.Bool false) in
  (* Explicit ascending loop: RNG draws must follow declaration order so
     random sequences are reproducible against the reference path. *)
  for i = 0 to n - 1 do
    a.(i) <- Value.random rng t.input_vars.(i).Ir.ty
  done;
  a

let of_list index defaults l =
  let a = Array.map Value.copy defaults in
  List.iter
    (fun (name, v) ->
      match Hashtbl.find_opt index name with
      | Some i -> a.(i) <- v
      | None -> ())
    l;
  a

let inputs_of_list t l : inputs = of_list t.input_index t.input_defaults l
let state_of_list t l : state = of_list t.state_index t.state_init l

(* --- Smap bridge (legacy Interp API, test-case text format) ------------ *)

let state_of_smap t (m : Value.t Smap.t) : state =
  Array.mapi
    (fun i (v : Ir.var) ->
      match Smap.find_opt v.name m with
      | Some x -> x
      | None -> t.state_init.(i))
    t.state_vars

let inputs_of_smap t (m : Value.t Smap.t) : inputs =
  Array.mapi
    (fun i (v : Ir.var) ->
      match Smap.find_opt v.name m with
      | Some x -> x
      | None -> t.input_defaults.(i))
    t.input_vars

let smap_of_arr vars (a : Value.t array) =
  let m = ref Smap.empty in
  Array.iteri (fun i (v : Ir.var) -> m := Smap.add v.name a.(i) !m) vars;
  !m

let smap_of_state t a = smap_of_arr t.state_vars a
let smap_of_inputs t a = smap_of_arr t.input_vars a
let smap_of_outputs t a = smap_of_arr t.output_vars a

(* --- equality / hashing for state dedup -------------------------------- *)

let values_equal (a : Value.t array) (b : Value.t array) =
  a == b
  || (Array.length a = Array.length b
      &&
      let rec go i = i < 0 || (Value.equal a.(i) b.(i) && go (i - 1)) in
      go (Array.length a - 1))

(* Structural hash consistent with [Value.equal]: [equal] identifies
   [Int n] with [Real (float n)] (and [-0.] with [0.]), so both hash via
   the IEEE bits of the normalized float.  NaN payloads other than the
   canonical quiet NaN would collide-or-split, but no Value operation
   produces them. *)
let float_hash_bits r =
  let b = Int64.bits_of_float (r +. 0.0) in
  Int64.to_int (Int64.logxor b (Int64.shift_right_logical b 32))

let mix h k = (((h lsl 5) + h) lxor k) land max_int

let rec hash_value h (v : Value.t) =
  match v with
  | Value.Bool false -> mix h 0x2e5b
  | Value.Bool true -> mix h 0x9d37
  | Value.Int n -> mix h (float_hash_bits (float_of_int n))
  | Value.Real r -> mix h (float_hash_bits r)
  | Value.Vec a ->
    Array.fold_left hash_value (mix h (0x56ec + Array.length a)) a

let values_hash (a : Value.t array) = Array.fold_left hash_value 0x811c9dc5 a
let state_equal = values_equal
let state_hash = values_hash

(* --- execution --------------------------------------------------------- *)

let run_step ?(on_event = fun (_ : event) -> ()) t (st : state) (inp : inputs)
    : outputs * state =
  if Array.length st <> Array.length t.state_init then
    invalid_arg "Exec.run_step: state array length mismatch";
  if Array.length inp <> Array.length t.input_defaults then
    invalid_arg "Exec.run_step: inputs array length mismatch";
  Telemetry.Counter.incr tel_steps;
  let fr =
    {
      f_inp = Array.map Value.copy inp;
      f_out = Array.map Value.copy t.output_defaults;
      f_st = Array.map Value.copy st;
      f_loc = Array.map Value.copy t.local_defaults;
      f_emit = on_event;
    }
  in
  t.body fr;
  (* Copy-out, like the reference path: returned arrays never alias program
     constants or the caller's arrays, so snapshots are immutable-in-fact. *)
  (Array.map Value.copy fr.f_out, Array.map Value.copy fr.f_st)

let run_sequence ?on_event t st inputs_list =
  let outs, final =
    List.fold_left
      (fun (acc, st) inp ->
        let out, st' = run_step ?on_event t st inp in
        (out :: acc, st'))
      ([], st) inputs_list
  in
  (List.rev outs, final)

(* --- printing ----------------------------------------------------------- *)

let pp_binding ppf (name, v) = Fmt.pf ppf "%s=%a" name Value.pp v

let pp_with_vars (vars : Ir.var array) ppf (a : Value.t array) =
  let items =
    Array.to_list (Array.mapi (fun i (v : Ir.var) -> (v.Ir.name, a.(i))) vars)
  in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_binding) items

let pp_state t = pp_with_vars t.state_vars
let pp_inputs t = pp_with_vars t.input_vars
let pp_outputs t = pp_with_vars t.output_vars
