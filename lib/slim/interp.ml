(* Name-keyed facade over the slot-compiled execution core (Exec).

   [run_step] compiles the program once (memoized per program value) and
   executes through Exec's flat-array path, converting at the boundary.
   The original map/Hashtbl interpreter is kept verbatim below as
   [run_step_reference]: it is the oracle for the differential test
   (test/test_exec.ml) and deliberately still uses List.assoc_opt Switch
   dispatch so the two paths stay independent. *)

module Smap = Exec.Smap

type snapshot = Value.t Smap.t
type inputs = Value.t Smap.t
type outputs = Value.t Smap.t

type event = Exec.event =
  | Branch_hit of Branch.key
  | Cond_vector of { id : int; vector : bool array; outcome : bool }

exception Eval_error = Exec.Eval_error

let eval_error fmt = Format.kasprintf (fun s -> raise (Eval_error s)) fmt

let initial_state (prog : Ir.program) =
  List.fold_left
    (fun acc ((v : Ir.var), init) -> Smap.add v.name (Value.copy init) acc)
    Smap.empty prog.states

(* --- reference interpreter (differential-test oracle) ------------------- *)

type env = {
  e_inputs : (string, Value.t) Hashtbl.t;
  e_states : (string, Value.t) Hashtbl.t;
  e_locals : (string, Value.t) Hashtbl.t;
  e_outputs : (string, Value.t) Hashtbl.t;
  on_event : event -> unit;
}

let table_of env scope =
  match (scope : Ir.scope) with
  | Ir.Input -> env.e_inputs
  | Ir.Output -> env.e_outputs
  | Ir.State -> env.e_states
  | Ir.Local -> env.e_locals

let read env scope name =
  match Hashtbl.find_opt (table_of env scope) name with
  | Some v -> v
  | None -> eval_error "unbound %s variable %s" (Ir.scope_name scope) name

let write env scope name v = Hashtbl.replace (table_of env scope) name v

(* Guards are evaluated fully (no short circuit), matching Simulink logic
   blocks, so every atom value is observable for condition/MCDC coverage. *)
let rec eval env (e : Ir.expr) : Value.t =
  match e with
  | Const v -> v
  | Var (scope, name) -> read env scope name
  | Unop (op, e) ->
    let v = eval env e in
    (match op with
     | Neg -> Value.neg v
     | Not -> Value.Bool (not (Value.to_bool v))
     | Abs_op -> Value.abs_v v
     | To_real -> Value.Real (Value.to_real v)
     | To_int -> Value.Int (Value.to_int v)
     | Floor -> Value.floor_v v
     | Ceil -> Value.ceil_v v)
  | Binop (op, a, b) ->
    let va = eval env a in
    let vb = eval env b in
    (match op with
     | Add -> Value.add va vb
     | Sub -> Value.sub va vb
     | Mul -> Value.mul va vb
     | Div -> Value.div va vb
     | Mod -> Value.modulo va vb
     | Min -> Value.min_v va vb
     | Max -> Value.max_v va vb)
  | Cmp (op, a, b) ->
    let va = eval env a in
    let vb = eval env b in
    let c () = Value.compare_num va vb in
    let r =
      match op with
      | Eq -> Value.equal va vb
      | Ne -> not (Value.equal va vb)
      | Lt -> c () < 0
      | Le -> c () <= 0
      | Gt -> c () > 0
      | Ge -> c () >= 0
    in
    Value.Bool r
  | And (a, b) ->
    let va = Value.to_bool (eval env a) in
    let vb = Value.to_bool (eval env b) in
    Value.Bool (va && vb)
  | Or (a, b) ->
    let va = Value.to_bool (eval env a) in
    let vb = Value.to_bool (eval env b) in
    Value.Bool (va || vb)
  | Ite (c, t, e) ->
    if Value.to_bool (eval env c) then eval env t else eval env e
  | Index (v, i) ->
    let a = Value.to_vec (eval env v) in
    let k = Value.to_int (eval env i) in
    if k < 0 || k >= Array.length a then
      eval_error "index %d out of bounds [0,%d)" k (Array.length a)
    else a.(k)

let eval_lvalue_write env (lhs : Ir.lvalue) v =
  match lhs with
  | Lvar (scope, name) ->
    (match scope with
     | Ir.Input -> eval_error "assignment to input %s" name
     | Ir.Output | Ir.State | Ir.Local -> write env scope name v)
  | Lindex (inner, idx) ->
    let container =
      let rec resolve = function
        | Ir.Lvar (scope, name) -> read env scope name
        | Ir.Lindex (l, i) ->
          let a = Value.to_vec (resolve l) in
          let k = Value.to_int (eval env i) in
          if k < 0 || k >= Array.length a then
            eval_error "lvalue index %d out of bounds" k
          else a.(k)
      in
      resolve inner
    in
    let a = Value.to_vec container in
    let k = Value.to_int (eval env idx) in
    if k < 0 || k >= Array.length a then
      eval_error "lvalue index %d out of bounds [0,%d)" k (Array.length a)
    else a.(k) <- v

let eval_guard env id cond =
  let atoms = Ir.atoms_of_condition cond in
  let vector =
    Array.of_list (List.map (fun a -> Value.to_bool (eval env a)) atoms)
  in
  let outcome = Value.to_bool (eval env cond) in
  env.on_event (Cond_vector { id; vector; outcome });
  outcome

let rec exec_stmts env ss = List.iter (exec_stmt env) ss

and exec_stmt env = function
  | Ir.Assign (lhs, e) ->
    let v = eval env e in
    eval_lvalue_write env lhs v
  | Ir.If { id; cond; then_; else_ } ->
    if eval_guard env id cond then begin
      env.on_event (Branch_hit (id, Branch.Then));
      exec_stmts env then_
    end
    else begin
      env.on_event (Branch_hit (id, Branch.Else));
      exec_stmts env else_
    end
  | Ir.Switch { id; scrut; cases; default } ->
    let k = Value.to_int (eval env scrut) in
    (match List.assoc_opt k cases with
     | Some ss ->
       env.on_event (Branch_hit (id, Branch.Case k));
       exec_stmts env ss
     | None ->
       env.on_event (Branch_hit (id, Branch.Default));
       exec_stmts env default)

let tel_ref_steps = Telemetry.Counter.make "interp.steps"

let run_step_reference ?(on_event = fun _ -> ()) (prog : Ir.program) snapshot
    inputs =
  Telemetry.Counter.incr tel_ref_steps;
  let env =
    {
      e_inputs = Hashtbl.create 16;
      e_states = Hashtbl.create 32;
      e_locals = Hashtbl.create 64;
      e_outputs = Hashtbl.create 16;
      on_event;
    }
  in
  let bind_input (v : Ir.var) =
    let value =
      match Smap.find_opt v.name inputs with
      | Some x -> Value.copy x
      | None -> Value.default_of_ty v.ty
    in
    Hashtbl.replace env.e_inputs v.name value
  in
  List.iter bind_input prog.inputs;
  let bind_state ((v : Ir.var), init) =
    let value =
      match Smap.find_opt v.name snapshot with
      | Some x -> Value.copy x
      | None -> Value.copy init
    in
    Hashtbl.replace env.e_states v.name value
  in
  List.iter bind_state prog.states;
  List.iter
    (fun (v : Ir.var) ->
      Hashtbl.replace env.e_locals v.name (Value.default_of_ty v.ty))
    prog.locals;
  List.iter
    (fun (v : Ir.var) ->
      Hashtbl.replace env.e_outputs v.name (Value.default_of_ty v.ty))
    prog.outputs;
  exec_stmts env prog.body;
  let outputs =
    List.fold_left
      (fun acc (v : Ir.var) ->
        Smap.add v.name (Value.copy (Hashtbl.find env.e_outputs v.name)) acc)
      Smap.empty prog.outputs
  in
  let snapshot' =
    List.fold_left
      (fun acc ((v : Ir.var), _) ->
        Smap.add v.name (Value.copy (Hashtbl.find env.e_states v.name)) acc)
      Smap.empty prog.states
  in
  (outputs, snapshot')

(* --- production path: slot-compiled ------------------------------------- *)

let run_step ?on_event (prog : Ir.program) snapshot inputs =
  let ex = Exec.handle prog in
  let out, st' =
    Exec.run_step ?on_event ex
      (Exec.state_of_smap ex snapshot)
      (Exec.inputs_of_smap ex inputs)
  in
  (Exec.smap_of_outputs ex out, Exec.smap_of_state ex st')

let run_sequence ?on_event prog snapshot inputs_list =
  let outs, final =
    List.fold_left
      (fun (acc, st) inputs ->
        let out, st' = run_step ?on_event prog st inputs in
        (out :: acc, st'))
      ([], snapshot) inputs_list
  in
  (List.rev outs, final)

let inputs_of_list l =
  List.fold_left (fun acc (k, v) -> Smap.add k v acc) Smap.empty l

let default_inputs (prog : Ir.program) =
  List.fold_left
    (fun acc (v : Ir.var) -> Smap.add v.name (Value.default_of_ty v.ty) acc)
    Smap.empty prog.inputs

let random_inputs rng (prog : Ir.program) =
  List.fold_left
    (fun acc (v : Ir.var) -> Smap.add v.name (Value.random rng v.ty) acc)
    Smap.empty prog.inputs

let snapshot_equal a b = Smap.equal Value.equal a b

let pp_binding ppf (k, v) = Fmt.pf ppf "%s=%a" k Value.pp v

let pp_snapshot ppf s =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ", ") pp_binding) (Smap.bindings s)

let pp_inputs = pp_snapshot
