(** Slot-compiled execution core.

    [compile] (or the memoizing [handle]) performs a one-time pass over an
    {!Ir.program}: every variable reference is resolved to an integer slot,
    the body is lowered to slot-addressed closures with O(1) [Switch]
    dispatch, and the branch table / requirement chains / per-decision
    condition metadata are precomputed.  Steps then execute against flat
    [Value.t array]s — no string hashing, no per-step environment — which is
    what lets the engine spend its virtual-clock budget on exploration
    instead of interpretation overhead.

    Positional contract: slot [i] of a state / input / output array is the
    [i]-th entry of [prog.states] / [prog.inputs] / [prog.outputs].  The
    external test-case format stays name-based; use the slot<->name bridges
    below at the boundary. *)

module Smap : Map.S with type key = string

type state = Value.t array
(** One model state (Definition 2): slot [i] holds the [i]-th declared state
    variable.  Returned arrays are fresh copies and never aliased. *)

type inputs = Value.t array
type outputs = Value.t array

type event =
  | Branch_hit of Branch.key  (** a decision outcome was executed *)
  | Cond_vector of { id : int; vector : bool array; outcome : bool }
      (** an [If] guard was evaluated: per-atom truth values (in
          {!Ir.atoms_of_condition} order) and the guard's value *)

exception Eval_error of string

type t
(** A compiled program handle.  Immutable once built; freely shareable. *)

val compile : Ir.program -> t

val handle : Ir.program -> t
(** Memoizing [compile], keyed on physical equality of the program value
    (bounded move-to-front cache).  Callers that hold one program value and
    call repeatedly — the normal pattern — pay compilation once.

    Domain-safe: the memo is mutex-protected, and the returned handle is
    immutable after construction, so one handle may be shared read-only
    across worker domains (the parallel harness compiles each model once
    up front and lets every run reuse it). *)

(** {1 Accessors} *)

val program : t -> Ir.program
val input_vars : t -> Ir.var array
val output_vars : t -> Ir.var array
val state_vars : t -> Ir.var array
val n_inputs : t -> int
val n_states : t -> int
val input_slot : t -> string -> int option
val output_slot : t -> string -> int option
val state_slot : t -> string -> int option

val find_input : t -> inputs -> string -> Value.t
(** Name-based lookup; raises {!Eval_error} on unknown names.  For tests and
    boundary code — hot paths index by slot. *)

val find_output : t -> outputs -> string -> Value.t
val find_state : t -> state -> string -> Value.t

(** {1 Branch and decision metadata (precomputed)} *)

val branches : t -> Branch.t list
val find_branch : t -> Branch.key -> Branch.t option

val branch_chain : t -> Branch.key -> (int * Branch.outcome) list
(** Decisions (with required outcomes) that must hold for control to reach
    the branch, root-first, including the branch itself.  Raises
    [Value.Type_error] on an unknown key, like the symbolic explorer. *)

val decision_chain : t -> int -> (int * Branch.outcome) list
(** Ancestor requirements of a decision (excluding the decision itself). *)

val decisions : t -> (int * [ `If of Ir.expr | `Switch of Ir.expr * int list ]) list
val find_decision : t -> int -> [ `If of Ir.expr | `Switch of Ir.expr * int list ] option

(** {1 State and input construction} *)

val initial_state : t -> state
val default_inputs : t -> inputs

val random_inputs : Random.State.t -> t -> inputs
(** Draws per-variable random values in declaration order (stable RNG
    consumption). *)

val inputs_of_list : t -> (string * Value.t) list -> inputs
(** Defaults plus the given bindings; unknown names are ignored, matching
    the reference interpreter's treatment of extraneous map entries. *)

val state_of_list : t -> (string * Value.t) list -> state
(** Initial state plus the given bindings; unknown names are ignored. *)

(** {1 Name-keyed map bridge} *)

val state_of_smap : t -> Value.t Smap.t -> state
val inputs_of_smap : t -> Value.t Smap.t -> inputs
val smap_of_state : t -> state -> Value.t Smap.t
val smap_of_inputs : t -> inputs -> Value.t Smap.t
val smap_of_outputs : t -> outputs -> Value.t Smap.t

(** {1 Equality and hashing for state dedup} *)

val values_equal : Value.t array -> Value.t array -> bool
val values_hash : Value.t array -> int
(** Structural hash consistent with [values_equal] (which lifts
    {!Value.equal}, so [Int n] and [Real (float n)] hash alike, as do
    [0.] and [-0.]). *)

val state_equal : state -> state -> bool
val state_hash : state -> int

(** {1 Execution} *)

val run_step : ?on_event:(event -> unit) -> t -> state -> inputs -> outputs * state
(** Execute one iteration.  The given state and inputs are copied on entry
    and never mutated; returned arrays are fresh.  Event order and error
    messages are bit-identical to the reference interpreter
    ({!Interp.run_step_reference}). *)

val run_sequence :
  ?on_event:(event -> unit) -> t -> state -> inputs list -> outputs list * state

(** {1 Printing} *)

val pp_state : t -> state Fmt.t
val pp_inputs : t -> inputs Fmt.t
val pp_outputs : t -> outputs Fmt.t
