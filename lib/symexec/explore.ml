module Value = Slim.Value
module Ir = Slim.Ir
module Exec = Slim.Exec
module Branch = Slim.Branch
module Term = Solver.Term
module Csp = Solver.Csp
module SV = Sym_value

type cost = {
  mutable paths_explored : int;
  mutable solver_nodes : int;
  mutable solver_calls : int;
  mutable term_nodes : int;
}

let zero_cost () =
  { paths_explored = 0; solver_nodes = 0; solver_calls = 0; term_nodes = 0 }

let add_cost acc c =
  acc.paths_explored <- acc.paths_explored + c.paths_explored;
  acc.solver_nodes <- acc.solver_nodes + c.solver_nodes;
  acc.solver_calls <- acc.solver_calls + c.solver_calls;
  acc.term_nodes <- acc.term_nodes + c.term_nodes

type outcome =
  | Sat of Exec.inputs list
  | Unsat
  | Unknown

type config = {
  max_paths : int;
  node_budget : int;
  rng_seed : int;
  hc4_memo : bool;
}

let default_config =
  { max_paths = 192; node_budget = 60_000; rng_seed = 1; hc4_memo = true }

(* A coverage objective the solver can aim at.  Branch targets are the
   paper's Algorithm 1; condition and vector targets extend the same
   machinery to condition and MCDC requirements ("until all the
   coverage requirements are satisfied", Section III). *)
type target =
  | Branch_target of Branch.key
  | Condition_target of { decision : int; atom : int; value : bool }
  | Vector_target of { decision : int; vector : bool array }

let target_decision_of = function
  | Branch_target (d, _) -> d
  | Condition_target { decision; _ } -> decision
  | Vector_target { decision; _ } -> decision

let pp_target ppf = function
  | Branch_target key -> Fmt.pf ppf "branch:%a" Branch.pp_key key
  | Condition_target { decision; atom; value } ->
    Fmt.pf ppf "cond:%d/%d=%b" decision atom value
  | Vector_target { decision; vector } ->
    Fmt.pf ppf "vec:%d/%s" decision
      (String.init (Array.length vector) (fun i ->
           if vector.(i) then 'T' else 'F'))

(* Ancestor requirements: decision id -> outcome that must be taken to
   stay on the path to the target.  For a branch target the chain
   includes the target decision's own outcome; for condition / vector
   targets it stops at the decision's parent (any outcome of the target
   decision satisfies the objective once its guard is evaluated).
   The chains come precomputed from the compiled handle, so repeated
   solves against the same program no longer rebuild the branch table. *)
let requirements ex (target : target) =
  match target with
  | Branch_target key -> Exec.branch_chain ex key
  | Condition_target { decision; _ } | Vector_target { decision; _ } ->
    Exec.decision_chain ex decision

exception Found of Value.t Csp.Smap.t
exception Path_budget

let tel_solves = Telemetry.Counter.make "symexec.solves"
let tel_sat = Telemetry.Counter.make "symexec.sat"
let tel_unsat = Telemetry.Counter.make "symexec.unsat"
let tel_unknown = Telemetry.Counter.make "symexec.unknown"
let tel_paths = Telemetry.Counter.make "symexec.paths"
let tel_prunes = Telemetry.Counter.make "symexec.prunes"
let tel_solver_nodes = Telemetry.Counter.make "symexec.solver_nodes"
let tel_h_paths = Telemetry.Histogram.make "symexec.paths_per_solve"

let tel_finish ((outcome, cost) as r) =
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr tel_solves;
    Telemetry.Counter.add tel_paths cost.paths_explored;
    Telemetry.Counter.add tel_solver_nodes cost.solver_nodes;
    Telemetry.Histogram.observe tel_h_paths cost.paths_explored;
    Telemetry.Counter.incr
      (match outcome with
       | Sat _ -> tel_sat
       | Unsat -> tel_unsat
       | Unknown -> tel_unknown)
  end;
  r

(* Constraint for taking [outcome] of a decision whose guard/scrutinee
   symbolically evaluates to [t]. *)
let outcome_constraint (outcome : Branch.outcome) (t : Term.t) ~case_labels =
  let term =
    match outcome with
    | Branch.Then -> t
    | Branch.Else -> Term.not_ t
    | Branch.Case k -> Term.cmp Ir.Eq (Term.unop Ir.To_int t) (Term.cint k)
    | Branch.Default ->
      Term.conj
        (List.map
           (fun k ->
             Term.not_ (Term.cmp Ir.Eq (Term.unop Ir.To_int t) (Term.cint k)))
           case_labels)
  in
  match Term.is_const term with
  | Some (Value.Bool true) -> `Taken
  | Some _ -> `Not_taken
  | None -> `Constraint term

(* Shared feasibility prefix for the sibling arms of one fork: the path
   condition is propagated once per decision; each arm then only checks
   its own branch constraint against a copy of the resulting box. *)
type prefix =
  | Pf_unsat  (** the path condition itself is contradictory *)
  | Pf_any  (** empty or oversize prefix: no pruning information *)
  | Pf_box of Solver.Hc4.store  (** propagated box for the prefix window *)

type ctx = {
  cost : cost;
  vars : (string * Value.ty) list ref;
  required : (int * Branch.outcome) list;
      (** empty in multi-step mode: every decision forks *)
  preferred : (int * Branch.outcome) list;
      (** soft guidance for multi-step search: the target's ancestor
          chain, explored first at each fork *)
  target : target;
  target_decision : int;
  rng : Random.State.t;
  hc4_memo : bool;
  mutable prefix_cache :
    (Term.t list * (string * Value.ty) list * prefix) option;
      (** last propagated prefix, keyed by physical identity of the
          path-condition list and of the variable list — consecutive
          decisions that add no constraint (and no unrolled-step
          variables) share one propagation *)
  mutable remaining_nodes : int;
  mutable paths_left : int;
  mutable saw_unknown : bool;
}

let required_outcome ctx id = List.assoc_opt id ctx.required

(* Constraints bigger than this would time out in any real solver; the
   size check itself is capped so oversize (exponentially-deep) terms
   from multi-step state threading are rejected in bounded time. *)
let max_term_size = 60_000

let try_solve ctx pc =
  let constraint_ = Term.conj (List.rev pc) in
  ctx.cost.solver_calls <- ctx.cost.solver_calls + 1;
  let size = Term.size_capped max_term_size constraint_ in
  ctx.cost.term_nodes <- ctx.cost.term_nodes + size;
  if size >= max_term_size then begin
    ctx.saw_unknown <- true;
    None
  end
  else if ctx.remaining_nodes <= 0 then begin
    ctx.saw_unknown <- true;
    None
  end
  else begin
    (* every search node re-evaluates the constraint, so scale the node
       budget down for big constraints to bound the work per query *)
    let node_budget =
      min ctx.remaining_nodes (max 50 (4_000_000 / max 1 size))
    in
    let result, stats =
      Csp.solve ~node_budget ~hc4_memo:ctx.hc4_memo ~rng:ctx.rng
        { Csp.p_vars = !(ctx.vars); p_constraint = constraint_ }
    in
    ctx.remaining_nodes <- ctx.remaining_nodes - stats.Csp.nodes;
    ctx.cost.solver_nodes <- ctx.cost.solver_nodes + stats.Csp.nodes;
    match result with
    | Csp.Sat a -> Some a
    | Csp.Unsat -> None
    | Csp.Unknown ->
      ctx.saw_unknown <- true;
      None
  end

let hit_target ctx pc =
  match try_solve ctx pc with
  | Some a -> raise (Found a)
  | None -> ()

let spend_path ctx =
  if ctx.paths_left <= 0 then begin
    ctx.saw_unknown <- true;
    raise Path_budget
  end;
  ctx.paths_left <- ctx.paths_left - 1;
  ctx.cost.paths_explored <- ctx.cost.paths_explored + 1

let infeasible pc =
  List.exists (fun t -> Term.is_const t = Some (Value.Bool false)) pc

(* Cheap interval-propagation feasibility for fork arms: prunes arms
   whose path condition is already contradictory (e.g. [bank = 0] from
   an earlier decision against [bank = 2] here), which keeps walks over
   ladders of decisions on the same inputs linear instead of
   exponential.  The propagation is bounded to the most recent
   constraints: refuting a subset refutes the whole, and ladder
   contradictions live between nearby conjuncts, so a small window
   keeps the per-fork cost constant on deep (multi-step) paths.

   The window over the shared path condition is propagated once per
   decision ([fork_prefix], cached across consecutive constraint-free
   decisions via [prefix_cache]); every sibling arm then propagates
   only its own branch constraint on a copy of the prefix box
   ([arm_feasible]) instead of redoing the prefix from scratch. *)
let prefix_window = 9

let fork_prefix ctx pc =
  match ctx.prefix_cache with
  | Some (cached_pc, cached_vars, p)
    when cached_pc == pc && cached_vars == !(ctx.vars) ->
    p
  | _ ->
    let p =
      match pc with
      | [] -> Pf_any
      | _ when infeasible pc -> Pf_unsat
      | _ ->
        let window =
          let rec take k = function
            | t :: rest when k > 0 -> t :: take (k - 1) rest
            | _ -> []
          in
          take prefix_window pc
        in
        (* deep multi-step terms make even propagation expensive: treat
           oversize prefixes as unconstraining rather than walk them *)
        if List.exists (fun t -> Term.size_capped 2_000 t >= 2_000) window
        then Pf_any
        else begin
          let store =
            Solver.Hc4.create_store ~memo:ctx.hc4_memo
              (List.map (fun (x, ty) -> (x, Solver.Dom.of_ty ty)) !(ctx.vars))
          in
          match Solver.Hc4.propagate ~max_rounds:3 store (Term.conj window) with
          | `Ok -> Pf_box store
          | `Unsat -> Pf_unsat
        end
    in
    ctx.prefix_cache <- Some (pc, !(ctx.vars), p);
    p

(* [c_opt] is the arm's own branch constraint, [None] for arms taken
   concretely (which add nothing to the path condition). *)
let arm_feasible _ctx prefix c_opt =
  let feasible =
    match prefix, c_opt with
    | Pf_unsat, _ -> false
    | (Pf_any | Pf_box _), None -> true
    | Pf_any, Some _ -> true
    | Pf_box box, Some c ->
      if Term.size_capped 2_000 c >= 2_000 then true
      else begin
        let store = Solver.Hc4.copy_store box in
        match Solver.Hc4.propagate ~max_rounds:3 store c with
        | `Ok -> true
        | `Unsat -> false
      end
  in
  if not feasible then Telemetry.Counter.incr tel_prunes;
  feasible

(* Walk a statement list in CPS.  [k] receives (env, pc) at the end of
   the list.  Entering the target branch solves the accumulated path
   condition immediately; success raises [Found]. *)
let rec walk ctx (stmts : Ir.stmt list) env pc k =
  match stmts with
  | [] -> k env pc
  | stmt :: rest -> (
    let continue_ env pc = walk ctx rest env pc k in
    match stmt with
    | Ir.Assign (lhs, e) ->
      let v = SV.eval env e in
      continue_ (SV.write_lvalue env lhs v) pc
    | Ir.If { id; cond; then_; else_ } -> (
      (* condition / vector objectives fire as soon as the guard of the
         target decision is about to be evaluated *)
      let atoms_spec =
        if id = ctx.target_decision then
          match ctx.target with
          | Condition_target { atom; value; _ } -> Some (`Cond (atom, value))
          | Vector_target { vector; _ } -> Some (`Vec vector)
          | Branch_target _ -> None
        else None
      in
      match atoms_spec with
      | Some spec -> (
        let atoms = Ir.atoms_of_condition cond in
        let terms = List.map (fun a -> SV.scalar (SV.eval env a)) atoms in
        let c =
          match spec with
          | `Cond (i, v) -> (
            match List.nth_opt terms i with
            | Some t -> if v then t else Term.not_ t
            | None -> Term.cbool false)
          | `Vec vec ->
            if List.length terms <> Array.length vec then Term.cbool false
            else
              Term.conj
                (List.mapi
                   (fun i t -> if vec.(i) then t else Term.not_ t)
                   terms)
        in
        match Term.is_const c with
        | Some (Value.Bool true) -> hit_target ctx pc
        | Some _ -> ()
        | None -> hit_target ctx (c :: pc))
      | None -> (
        let t = SV.scalar (SV.eval env cond) in
        let arm outcome =
          let body = if outcome = Branch.Then then then_ else else_ in
          match outcome_constraint outcome t ~case_labels:[] with
          | `Taken -> Some (body, pc, None)
          | `Not_taken -> None
          | `Constraint c -> Some (body, c :: pc, Some c)
        in
        let enter outcome body pc =
          if ctx.target = Branch_target (id, outcome) then hit_target ctx pc
          else walk ctx body env pc continue_
        in
        match required_outcome ctx id with
        | Some req -> (
          match arm req with
          | Some (body, pc', c_opt) ->
            if arm_feasible ctx (fork_prefix ctx pc) c_opt then
              enter req body pc'
          | None -> ())
        | None ->
          (* explore the target-relevant arm first when at the target
             decision, then the other arm *)
          let order =
            match ctx.target with
            | Branch_target (d, o) when d = id ->
              [ o; (if o = Branch.Then then Branch.Else else Branch.Then) ]
            | Branch_target _ | Condition_target _ | Vector_target _ -> (
              match List.assoc_opt id ctx.preferred with
              | Some Branch.Then -> [ Branch.Then; Branch.Else ]
              | Some Branch.Else -> [ Branch.Else; Branch.Then ]
              | Some (Branch.Case _ | Branch.Default) | None ->
                [ Branch.Then; Branch.Else ])
          in
          let prefix = fork_prefix ctx pc in
          List.iter
            (fun outcome ->
              match arm outcome with
              | None -> ()
              | Some (body, pc', c_opt) ->
                if arm_feasible ctx prefix c_opt then begin
                  spend_path ctx;
                  enter outcome body pc'
                end)
            order))
    | Ir.Switch { id; scrut; cases; default } -> (
      let t = SV.scalar (SV.eval env scrut) in
      let labels = List.map fst cases in
      let arm outcome =
        let body =
          match outcome with
          | Branch.Case c ->
            (match List.assoc_opt c cases with
             | Some b -> b
             | None -> default)
          | Branch.Default -> default
          | Branch.Then | Branch.Else -> default
        in
        match outcome_constraint outcome t ~case_labels:labels with
        | `Taken -> Some (body, pc, None)
        | `Not_taken -> None
        | `Constraint c -> Some (body, c :: pc, Some c)
      in
      let enter outcome body pc =
        if ctx.target = Branch_target (id, outcome) then hit_target ctx pc
        else walk ctx body env pc continue_
      in
      match required_outcome ctx id with
      | Some req -> (
        match arm req with
        | Some (body, pc', c_opt) ->
          if arm_feasible ctx (fork_prefix ctx pc) c_opt then
            enter req body pc'
        | None -> ())
      | None ->
        let all = List.map (fun l -> Branch.Case l) labels @ [ Branch.Default ] in
        let order =
          match ctx.target with
          | Branch_target (d, o) when d = id ->
            o :: List.filter (fun x -> x <> o) all
          | Branch_target _ | Condition_target _ | Vector_target _ -> (
            match List.assoc_opt id ctx.preferred with
            | Some o when List.mem o all -> o :: List.filter (fun x -> x <> o) all
            | Some _ | None -> all)
        in
        let prefix = fork_prefix ctx pc in
        List.iter
          (fun outcome ->
            match arm outcome with
            | None -> ()
            | Some (body, pc', c_opt) ->
              if arm_feasible ctx prefix c_opt then begin
                spend_path ctx;
                enter outcome body pc'
              end)
          order))

let make_ctx cfg ex target ~vars ~multi =
  let reqs = requirements ex target in
  {
    cost = zero_cost ();
    vars;
    required = (if multi then [] else reqs);
    preferred = reqs;
    target;
    target_decision = target_decision_of target;
    rng = Random.State.make [| cfg.rng_seed; target_decision_of target |];
    hc4_memo = cfg.hc4_memo;
    prefix_cache = None;
    remaining_nodes = cfg.node_budget;
    paths_left = cfg.max_paths;
    saw_unknown = false;
  }

(* Does the expression read only inputs and state (no locals/outputs)?
   Such guards have the same value on every path, so the target's
   outcome constraint can seed the path condition and prune every
   incompatible fork from the start — goal-directed search. *)
let rec input_state_only (e : Ir.expr) =
  match e with
  | Ir.Const _ -> true
  | Ir.Var ((Ir.Input | Ir.State), _) -> true
  | Ir.Var ((Ir.Local | Ir.Output), _) -> false
  | Ir.Unop (_, a) -> input_state_only a
  | Ir.Binop (_, a, b) | Ir.Cmp (_, a, b) | Ir.And (a, b) | Ir.Or (a, b) ->
    input_state_only a && input_state_only b
  | Ir.Ite (c, a, b) ->
    input_state_only c && input_state_only a && input_state_only b
  | Ir.Index (a, i) -> input_state_only a && input_state_only i

let seed_constraint ex env (target : target) =
  match Exec.find_decision ex (target_decision_of target) with
  | None -> None
  | Some d -> (
    match target, d with
    | Branch_target (_, outcome), `If cond when input_state_only cond -> (
      let t = SV.scalar (SV.eval env cond) in
      match outcome_constraint outcome t ~case_labels:[] with
      | `Constraint c -> Some c
      | `Taken | `Not_taken -> None)
    | Branch_target (_, outcome), `Switch (scrut, labels)
      when input_state_only scrut -> (
      let t = SV.scalar (SV.eval env scrut) in
      match outcome_constraint outcome t ~case_labels:labels with
      | `Constraint c -> Some c
      | `Taken | `Not_taken -> None)
    | Condition_target { atom; value; _ }, `If cond
      when input_state_only cond -> (
      let atoms = Ir.atoms_of_condition cond in
      match List.nth_opt atoms atom with
      | Some a ->
        let t = SV.scalar (SV.eval env a) in
        let c = if value then t else Term.not_ t in
        (match Term.is_const c with Some _ -> None | None -> Some c)
      | None -> None)
    | _, _ -> None)

let solve_target ?(config = default_config) ?(symbolic_state = false) prog
    ~state ~target =
  let ex = Exec.handle prog in
  let env, vars =
    SV.env_of_program ~symbolic_state prog ~state
      ~input_var:(fun name _ty -> Term.var name)
  in
  let ctx = make_ctx config ex target ~vars:(ref vars) ~multi:false in
  ctx.cost.paths_explored <- ctx.cost.paths_explored + 1;
  let pc0 =
    match seed_constraint ex env target with
    | Some c -> [ c ]
    | None -> []
    | exception SV.Sym_error _ -> []
  in
  tel_finish
    (match walk ctx prog.Ir.body env pc0 (fun _ _ -> ()) with
     | () -> ((if ctx.saw_unknown then Unknown else Unsat), ctx.cost)
     | exception Found a -> (Sat [ SV.inputs_of_assignment prog a ], ctx.cost)
     | exception Path_budget -> (Unknown, ctx.cost)
     | exception SV.Sym_error _ -> (Unknown, ctx.cost))

let solve_branch ?config ?symbolic_state prog ~state ~target =
  solve_target ?config ?symbolic_state prog ~state
    ~target:(Branch_target target)

(* Multi-step (SLDV-like): thread state symbolically across [horizon]
   unrolled steps; the target may be reached in any step; every decision
   forks, which is exactly the whole-trace path explosion the paper's
   state-aware method avoids. *)
let solve_branch_multi ?(config = default_config) prog ~horizon ~target =
  let ex = Exec.handle prog in
  let initial = Exec.initial_state ex in
  let env0, vars0 =
    SV.env_of_program ~prefix:"s0$" prog ~state:initial
      ~input_var:(fun name _ty -> Term.var name)
  in
  let vars = ref vars0 in
  let ctx =
    make_ctx config ex (Branch_target target) ~vars ~multi:true
  in
  let depth_of_found = ref None in
  let rebind_step env step =
    let prefix = Fmt.str "s%d$" step in
    let env = ref env in
    List.iter
      (fun (v : Ir.var) ->
        let sv, vs =
          SV.flatten_input (prefix ^ v.Ir.name) v.Ir.ty
            ~input_var:(fun name _ty -> Term.var name)
        in
        env := SV.bind !env Ir.Input v.Ir.name sv;
        List.iter
          (fun binding ->
            if not (List.mem binding !vars) then vars := binding :: !vars)
          vs)
      prog.Ir.inputs;
    List.iter
      (fun (v : Ir.var) ->
        env :=
          SV.bind !env Ir.Local v.Ir.name
            (SV.sval_of_value (Value.default_of_ty v.Ir.ty)))
      prog.Ir.locals;
    List.iter
      (fun (v : Ir.var) ->
        env :=
          SV.bind !env Ir.Output v.Ir.name
            (SV.sval_of_value (Value.default_of_ty v.Ir.ty)))
      prog.Ir.outputs;
    !env
  in
  let rec run_step step env pc =
    if step < horizon then begin
      try
        walk ctx prog.Ir.body env pc (fun env' pc' ->
            run_step (step + 1) (rebind_step env' (step + 1)) pc')
      with Found a ->
        (* the innermost handler fires first and pins the hit step *)
        if !depth_of_found = None then depth_of_found := Some step;
        raise (Found a)
    end
  in
  tel_finish
    (match run_step 0 env0 [] with
     | () -> ((if ctx.saw_unknown then Unknown else Unsat), ctx.cost)
     | exception Found a ->
       let steps = Option.value ~default:0 !depth_of_found + 1 in
       let inputs =
         List.init steps (fun k ->
             SV.inputs_of_assignment ~prefix:(Fmt.str "s%d$" k) prog a)
       in
       (Sat inputs, ctx.cost)
     | exception Path_budget -> (Unknown, ctx.cost)
     | exception SV.Sym_error _ -> (Unknown, ctx.cost))

(* --- state relevance -------------------------------------------------- *)

module VSet = Set.Make (struct
  type t = Ir.scope * string

  let compare = compare
end)

let rec expr_vars acc (e : Ir.expr) =
  match e with
  | Ir.Const _ -> acc
  | Ir.Var (s, n) -> VSet.add (s, n) acc
  | Ir.Unop (_, a) -> expr_vars acc a
  | Ir.Binop (_, a, b) | Ir.Cmp (_, a, b) | Ir.And (a, b) | Ir.Or (a, b) ->
    expr_vars (expr_vars acc a) b
  | Ir.Ite (c, a, b) -> expr_vars (expr_vars (expr_vars acc c) a) b
  | Ir.Index (a, i) -> expr_vars (expr_vars acc a) i

(* Variables read by index positions anywhere under [e]: their values
   pick array elements and decide concrete out-of-bounds aborts, so
   they influence solve outcomes even when the surrounding expression
   never reaches a guard. *)
let rec index_vars acc (e : Ir.expr) =
  match e with
  | Ir.Const _ | Ir.Var _ -> acc
  | Ir.Unop (_, a) -> index_vars acc a
  | Ir.Binop (_, a, b) | Ir.Cmp (_, a, b) | Ir.And (a, b) | Ir.Or (a, b) ->
    index_vars (index_vars acc a) b
  | Ir.Ite (c, a, b) -> index_vars (index_vars (index_vars acc c) a) b
  | Ir.Index (a, i) -> index_vars (expr_vars acc i) a

let rec lvalue_base = function
  | Ir.Lvar (s, n) -> (s, n)
  | Ir.Lindex (l, _) -> lvalue_base l

let rec lvalue_index_vars acc = function
  | Ir.Lvar _ -> acc
  | Ir.Lindex (l, i) ->
    lvalue_index_vars (index_vars (expr_vars acc i) i) l

let relevant_state_slots (prog : Ir.program) : bool array =
  (* seeds: everything a guard or scrutinee reads, plus every variable
     read in index position anywhere *)
  let assigns = ref [] in
  let rec scan acc (s : Ir.stmt) =
    match s with
    | Ir.Assign (lhs, e) ->
      let deps = lvalue_index_vars (expr_vars VSet.empty e) lhs in
      assigns := (lvalue_base lhs, deps) :: !assigns;
      lvalue_index_vars (index_vars acc e) lhs
    | Ir.If { cond; then_; else_; _ } ->
      let acc = expr_vars acc cond in
      List.fold_left scan (List.fold_left scan acc then_) else_
    | Ir.Switch { scrut; cases; default; _ } ->
      let acc = expr_vars acc scrut in
      let acc =
        List.fold_left
          (fun acc (_, body) -> List.fold_left scan acc body)
          acc cases
      in
      List.fold_left scan acc default
  in
  let seeds = List.fold_left scan VSet.empty prog.Ir.body in
  (* flow-insensitive closure: an assignment to a relevant variable
     makes everything its right-hand side (and lvalue indices) reads
     relevant too.  Control dependences need no extra step — every
     guard variable is already a seed. *)
  let relevant = ref seeds in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (base, deps) ->
        if VSet.mem base !relevant && not (VSet.subset deps !relevant) then begin
          relevant := VSet.union deps !relevant;
          changed := true
        end)
      !assigns
  done;
  Array.of_list
    (List.map
       (fun ((v : Ir.var), _init) -> VSet.mem (Ir.State, v.Ir.name) !relevant)
       prog.Ir.states)
