(** Path exploration for branch-targeted symbolic execution.

    {!solve_branch} is the paper's state-aware solving primitive
    (Algorithm 1, line 10): one iteration of the model, state fixed to
    a snapshot's constants, inputs symbolic.  Because the IR is
    loop-free, the target branch's ancestor chain is statically known;
    only decisions off that chain fork paths.

    {!solve_branch_multi} is the SLDV-style counterpart: [horizon]
    steps are unrolled with the state threaded symbolically, so path
    count and term size grow with depth — the cost structure that
    motivates STCG. *)

type cost = {
  mutable paths_explored : int;
  mutable solver_nodes : int;
  mutable solver_calls : int;
  mutable term_nodes : int;  (** total constraint size submitted *)
}

val zero_cost : unit -> cost
val add_cost : cost -> cost -> unit

type outcome =
  | Sat of Slim.Exec.inputs list
      (** slot-addressed input vector per step ({!Slim.Exec} positional
          contract); singleton for one-step solving *)
  | Unsat
  | Unknown

type config = {
  max_paths : int;  (** fork budget per query *)
  node_budget : int;  (** total solver node budget per query *)
  rng_seed : int;
  hc4_memo : bool;
      (** enable the HC4 projection memo (default [true]); results are
          bit-identical either way — test escape hatch only *)
}

val default_config : config

(** Coverage objectives the one-step solver can aim at. *)
type target =
  | Branch_target of Slim.Branch.key
      (** reach this branch (decision coverage) *)
  | Condition_target of { decision : int; atom : int; value : bool }
      (** evaluate the decision's guard with atom [atom] = [value] *)
  | Vector_target of { decision : int; vector : bool array }
      (** evaluate the guard with this exact condition vector (used to
          complete MCDC independence pairs) *)

val pp_target : target Fmt.t

val solve_target :
  ?config:config ->
  ?symbolic_state:bool ->
  Slim.Ir.program ->
  state:Slim.Exec.state ->
  target:target ->
  outcome * cost
(** One-step state-aware solving of any coverage objective.  The branch
    table and requirement chains come from the program's compiled handle
    ({!Slim.Exec.handle}), so repeated solves pay no per-call setup. *)

val solve_branch :
  ?config:config ->
  ?symbolic_state:bool ->
  Slim.Ir.program ->
  state:Slim.Exec.state ->
  target:Slim.Branch.key ->
  outcome * cost
(** One-step, state-aware.  [Sat [inputs]] drives the model from
    [state] into the target branch.  With [symbolic_state:true] the
    state is treated as a solver unknown instead of constants — the
    ablation of the paper's key idea: answers may then be unrealizable
    from the actual state. *)

val solve_branch_multi :
  ?config:config ->
  Slim.Ir.program ->
  horizon:int ->
  target:Slim.Branch.key ->
  outcome * cost
(** Multi-step from the initial model state.  [Unsat] means "not
    coverable within [horizon] steps". *)

val relevant_state_slots : Slim.Ir.program -> bool array
(** One flag per declared state variable (positional, the
    {!Slim.Exec.state} slot order): [false] means the slot provably
    cannot influence any {!solve_target} outcome — it never flows into
    a guard, scrutinee or index position.  Conservative (flow-
    insensitive backward slice), so [true] is always safe.  The engine
    uses this to key its solve cache on the projection of the state
    snapshot onto relevant slots. *)
