(** Symbolic values and environments for one-step symbolic execution.

    A symbolic value is a scalar solver term or a (possibly nested)
    array of symbolic values.  Model state enters as constants — the
    essence of the paper's state-aware solving — while inputs enter as
    solver variables.  Array reads at symbolic indices expand to
    [Tite] chains over the (statically known) element count; array
    writes at symbolic indices blend every element with a guarded
    [Tite].  Because state arrays are constants, those chains fold to
    small terms. *)

type sval =
  | Scalar of Solver.Term.t
  | Arr of sval array

type env
(** Persistent (functional) environment: forking a path is O(1).
    Keys are [(scope, name)] pairs interned to per-domain integer ids,
    so lookups compare ints rather than hashing strings. *)

exception Sym_error of string

val sval_of_value : Slim.Value.t -> sval
(** Constant injection (deep). *)

val value_of_sval : sval -> Slim.Value.t option
(** [Some v] when the symbolic value is fully constant. *)

val scalar : sval -> Solver.Term.t
(** Raises {!Sym_error} on arrays. *)

val empty_env : env

val bind : env -> Slim.Ir.scope -> string -> sval -> env
val find : env -> Slim.Ir.scope -> string -> sval
(** Raises {!Sym_error} when unbound. *)

val eval : env -> Slim.Ir.expr -> sval
(** Symbolic evaluation; array reads/writes expand as described above.
    Raises {!Sym_error} on unbound variables and {!Slim.Value.Type_error}
    on type confusion. *)

val write_lvalue : env -> Slim.Ir.lvalue -> sval -> env
(** Assignment, copy-on-write through arrays.  A write at a symbolic
    index turns every element [e_k] into [ite (idx = k) v e_k]. *)

val flatten_input :
  string ->
  Slim.Value.ty ->
  input_var:(string -> Slim.Value.ty -> Solver.Term.t) ->
  sval * (string * Slim.Value.ty) list
(** Expand one (possibly vector) input into scalar solver variables. *)

val env_of_program :
  ?prefix:string ->
  ?symbolic_state:bool ->
  Slim.Ir.program ->
  state:Slim.Exec.state ->
  input_var:(string -> Slim.Value.ty -> Solver.Term.t) ->
  env * (string * Slim.Value.ty) list
(** Build the starting environment for one step: state variables bound
    to snapshot constants (slot [i] of [state] is the [i]-th declared
    state variable, the {!Slim.Exec} positional contract; short arrays
    fall back to declared initial values), locals and outputs to type
    defaults, and each (flattened, scalar) input bound through
    [input_var].  Returns the environment and the list of solver
    variables created for the inputs (vector inports flatten to
    [name.k] scalars; [prefix] distinguishes unrolled steps in
    multi-step solving). *)

val inputs_of_assignment :
  ?prefix:string -> Slim.Ir.program -> Slim.Value.t Solver.Csp.Smap.t ->
  Slim.Exec.inputs
(** Reassemble slot-addressed inputs from a solver assignment over
    flattened input variables; unassigned inputs take type defaults. *)

val pp_sval : sval Fmt.t
