module Value = Slim.Value
module Ir = Slim.Ir
module Term = Solver.Term

type sval =
  | Scalar of Term.t
  | Arr of sval array

exception Sym_error of string

let sym_error fmt = Format.kasprintf (fun s -> raise (Sym_error s)) fmt

let rec sval_of_value = function
  | (Value.Bool _ | Value.Int _ | Value.Real _) as v -> Scalar (Term.cst v)
  | Value.Vec a -> Arr (Array.map sval_of_value a)

let rec value_of_sval = function
  | Scalar t -> Term.is_const t
  | Arr a ->
    let vals = Array.map value_of_sval a in
    if Array.for_all Option.is_some vals then
      Some (Value.Vec (Array.map Option.get vals))
    else None

let scalar = function
  | Scalar t -> t
  | Arr _ -> sym_error "expected scalar symbolic value, got array"

(* Environments are keyed by interned integer ids for [(scope, name)]
   pairs rather than the pairs themselves: [bind]/[find] sit on the
   symbolic-execution hot path and polymorphic compare over a
   constructor + string pair is measurably slower than [Int.compare].
   The intern table is per-domain (same idiom as the term hashcons and
   the cursor/target interning in [lib/core]): ids are only meaningful
   within a domain, and environments never cross domains. *)
type intern = {
  keys : (Ir.scope * string, int) Hashtbl.t;
  mutable next : int;
}

let intern_key : intern Domain.DLS.key =
  Domain.DLS.new_key (fun () -> { keys = Hashtbl.create 64; next = 0 })

let intern scope name =
  let it = Domain.DLS.get intern_key in
  match Hashtbl.find_opt it.keys (scope, name) with
  | Some id -> id
  | None ->
    let id = it.next in
    it.next <- id + 1;
    Hashtbl.replace it.keys (scope, name) id;
    id

module Env_map = Map.Make (Int)

type env = sval Env_map.t

let empty_env = Env_map.empty

let bind env scope name v = Env_map.add (intern scope name) v env

let find env scope name =
  match Env_map.find_opt (intern scope name) env with
  | Some v -> v
  | None -> sym_error "unbound %s variable %s" (Ir.scope_name scope) name

(* Read [arr] at a possibly-symbolic index: Ite chain over element
   positions.  Out-of-range concrete indices raise, matching the
   interpreter. *)
let read_index arr idx =
  match arr with
  | Scalar _ -> sym_error "indexing a scalar"
  | Arr a ->
    let n = Array.length a in
    (match Term.is_const idx with
     | Some v ->
       let k = Value.to_int v in
       if k < 0 || k >= n then sym_error "index %d out of bounds [0,%d)" k n
       else a.(k)
     | None ->
       if n = 0 then sym_error "indexing an empty array"
       else begin
         (* all elements must be scalars for the Ite chain *)
         let elems = Array.map scalar a in
         let rec chain k =
           if k = n - 1 then elems.(k)
           else
             Term.ite
               (Term.cmp Ir.Eq idx (Term.cint k))
               elems.(k) (chain (k + 1))
         in
         Scalar (chain 0)
       end)

let write_index arr idx v =
  match arr with
  | Scalar _ -> sym_error "indexing a scalar"
  | Arr a ->
    let n = Array.length a in
    (match Term.is_const idx with
     | Some c ->
       let k = Value.to_int c in
       if k < 0 || k >= n then sym_error "index %d out of bounds [0,%d)" k n
       else begin
         let a' = Array.copy a in
         a'.(k) <- v;
         Arr a'
       end
     | None ->
       let sv = scalar v in
       let a' =
         Array.mapi
           (fun k e ->
             Scalar
               (Term.ite (Term.cmp Ir.Eq idx (Term.cint k)) sv (scalar e)))
           a
       in
       Arr a')

let rec eval env (e : Ir.expr) : sval =
  match e with
  | Ir.Const v -> sval_of_value v
  | Ir.Var (scope, name) -> find env scope name
  | Ir.Unop (op, e) -> Scalar (Term.unop op (scalar (eval env e)))
  | Ir.Binop (op, a, b) ->
    Scalar (Term.binop op (scalar (eval env a)) (scalar (eval env b)))
  | Ir.Cmp (op, a, b) ->
    Scalar (Term.cmp op (scalar (eval env a)) (scalar (eval env b)))
  | Ir.And (a, b) ->
    Scalar (Term.and_ (scalar (eval env a)) (scalar (eval env b)))
  | Ir.Or (a, b) ->
    Scalar (Term.or_ (scalar (eval env a)) (scalar (eval env b)))
  | Ir.Ite (c, t, f) ->
    let sc = scalar (eval env c) in
    (match Term.is_const sc with
     | Some v -> if Value.to_bool v then eval env t else eval env f
     | None -> Scalar (Term.ite sc (scalar (eval env t)) (scalar (eval env f))))
  | Ir.Index (v, i) -> read_index (eval env v) (scalar (eval env i))

let rec write_lvalue env (lhs : Ir.lvalue) v =
  match lhs with
  | Ir.Lvar (scope, name) ->
    (match scope with
     | Ir.Input -> sym_error "assignment to input %s" name
     | Ir.Output | Ir.State | Ir.Local -> bind env scope name v)
  | Ir.Lindex (inner, idx_expr) ->
    let container =
      let rec resolve = function
        | Ir.Lvar (scope, name) -> find env scope name
        | Ir.Lindex (l, i) -> read_index (resolve l) (scalar (eval env i))
      in
      resolve inner
    in
    let idx = scalar (eval env idx_expr) in
    let container' = write_index container idx v in
    write_lvalue env inner container'

(* Flatten a (possibly vector) input into scalar solver variables. *)
let rec flatten_input name ty ~input_var =
  match (ty : Value.ty) with
  | Value.Tbool | Value.Tint _ | Value.Treal _ ->
    (Scalar (input_var name ty), [ (name, ty) ])
  | Value.Tvec (ety, n) ->
    let parts =
      List.init n (fun k ->
          flatten_input (Fmt.str "%s.%d" name k) ety ~input_var)
    in
    ( Arr (Array.of_list (List.map fst parts)),
      List.concat_map snd parts )

let env_of_program ?(prefix = "") ?(symbolic_state = false)
    (prog : Ir.program) ~state ~input_var =
  let env = ref empty_env in
  let vars = ref [] in
  List.iter
    (fun (v : Ir.var) ->
      let sv, vs =
        flatten_input (prefix ^ v.name) v.ty ~input_var
      in
      env := bind !env Ir.Input v.name sv;
      vars := !vars @ vs)
    prog.inputs;
  List.iteri
    (fun i ((v : Ir.var), init) ->
      if symbolic_state then begin
        (* ablation mode: the state is a solver unknown, as a whole-trace
           solver without dynamic state feedback would treat it *)
        let sv, vs = flatten_input ("st$" ^ v.name) v.ty ~input_var in
        env := bind !env Ir.State v.name sv;
        vars := !vars @ vs
      end
      else begin
        (* positional slot contract with Slim.Exec: state slot [i] is the
           [i]-th declared state variable *)
        let value = if i < Array.length state then state.(i) else init in
        env := bind !env Ir.State v.name (sval_of_value value)
      end)
    prog.states;
  List.iter
    (fun (v : Ir.var) ->
      env := bind !env Ir.Local v.name (sval_of_value (Value.default_of_ty v.ty)))
    prog.locals;
  List.iter
    (fun (v : Ir.var) ->
      env := bind !env Ir.Output v.name (sval_of_value (Value.default_of_ty v.ty)))
    prog.outputs;
  (!env, !vars)

(* Rebuild slot-addressed interpreter inputs from flattened assignments. *)
let inputs_of_assignment ?(prefix = "") (prog : Ir.program) assignment =
  let module Csmap = Solver.Csp.Smap in
  let rec rebuild name ty =
    match (ty : Value.ty) with
    | Value.Tbool | Value.Tint _ | Value.Treal _ ->
      (match Csmap.find_opt name assignment with
       | Some v -> v
       | None -> Value.default_of_ty ty)
    | Value.Tvec (ety, n) ->
      Value.Vec (Array.init n (fun k -> rebuild (Fmt.str "%s.%d" name k) ety))
  in
  let n = List.length prog.inputs in
  let arr = Array.make n (Value.Bool false) in
  List.iteri
    (fun i (v : Ir.var) -> arr.(i) <- rebuild (prefix ^ v.name) v.ty)
    prog.inputs;
  arr

let rec pp_sval ppf = function
  | Scalar t -> Term.pp ppf t
  | Arr a -> Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") pp_sval) a
