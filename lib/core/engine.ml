module Exec = Slim.Exec
module Branch = Slim.Branch
module Ir = Slim.Ir
module Tracker = Coverage.Tracker
module Explore = Symexec.Explore
module Analyzer = Analysis.Analyzer
module Verdict = Analysis.Verdict

type config = {
  seed : int;
  budget : float;
  random_seq_len : int;
  solver : Explore.config;
  sort_branches : bool;
  state_aware : bool;
  random_fallback : bool;
  random_first : bool;
  random_first_rounds : int;
  max_tree_nodes : int;
  analyze : bool;
  verdict_priority : bool;
  reanalyze_every : int;
  analysis_config : Analyzer.config;
}

let default_config =
  {
    seed = 1;
    budget = 3600.0;
    random_seq_len = 12;
    solver =
      { Explore.default_config with Explore.max_paths = 32; node_budget = 20_000 };
    sort_branches = true;
    state_aware = true;
    random_fallback = true;
    random_first = false;
    random_first_rounds = 20;
    max_tree_nodes = 30_000;
    analyze = false;
    verdict_priority = false;
    reanalyze_every = 0;
    analysis_config = Analyzer.default_config;
  }

let tel_runs = Telemetry.Counter.make "engine.runs"
let tel_steps = Telemetry.Counter.make "engine.steps"
let tel_solve_attempts = Telemetry.Counter.make "engine.solve_attempts"
let tel_solve_sat = Telemetry.Counter.make "engine.solve_sat"
let tel_solve_unsat = Telemetry.Counter.make "engine.solve_unsat"
let tel_solve_unknown = Telemetry.Counter.make "engine.solve_unknown"
let tel_cache_hits = Telemetry.Counter.make "engine.solve_cache_hits"
let tel_stride_skips = Telemetry.Counter.make "engine.stride_skips"
let tel_random_execs = Telemetry.Counter.make "engine.random_execs"
let tel_testcases = Telemetry.Counter.make "engine.testcases"
let tel_tree_nodes = Telemetry.Counter.make "engine.tree_nodes"
let tel_skipped_dead = Telemetry.Counter.make "engine.objectives_skipped_dead"
let tel_pruned_static = Telemetry.Counter.make "engine.solves_pruned_static"
let tel_reanalyses = Telemetry.Counter.make "engine.reanalyses"
let tel_h_solve_nodes = Telemetry.Histogram.make "engine.solve_nodes"
let tel_sp_run = Telemetry.Span.make "engine.run"
let tel_sp_solve = Telemetry.Span.make "engine.solve"
let tel_sp_random = Telemetry.Span.make "engine.random_exec"

type solve_result = [ `Sat | `Unsat | `Unknown ]

type event =
  | Ev_testcase of Testcase.t
  | Ev_solve of {
      time : float;
      target : Explore.target;
      node : int;
      result : solve_result;
    }
  | Ev_random_exec of { time : float; node : int; len : int }
  | Ev_coverage of { time : float; decision_covered : int }

type stop_reason = Full_coverage | Budget_exhausted

type run = {
  r_config : config;
  r_testcases : Testcase.t list;
  r_tracker : Tracker.t;
  r_tree : State_tree.t;
  r_events : event list;
  r_clock : Vclock.t;
  r_stop : stop_reason;
}

(* A coverage objective with a stable key for the per-node solved set
   and a depth used for shallow-first ordering.  Keys are dense integers
   interned per run from the structural target (see [intern_target]):
   the solving loop hashes them on every cursor/miss/cache probe, so a
   boxed [Fmt.str]-rendered string there would cost an allocation and a
   string hash per probe. *)
type objective = {
  obj_target : Explore.target;
  obj_key : int;
  obj_depth : int;
}

type state = {
  cfg : config;
  prog : Ir.program;
  exec : Exec.t;  (** compiled handle: slot-addressed execution *)
  tracker : Tracker.t;
  tree : State_tree.t;
  clock : Vclock.t;
  rng : Random.State.t;
  mutable objectives : objective list;
      (** traversal order of Algorithm 1; re-sorted after a mid-run
          re-analysis when [verdict_priority] is on *)
  mutable summary : Verdict.summary option;
      (** current static verdicts (present iff [cfg.analyze]); replaced
          by the monotone refinement of the periodic re-analysis *)
  never_cache : (int, Analyzer.result) Hashtbl.t;
      (** state uid -> one recording pass from that snapshot.  Its
          step-local [Never] facts prove one-step solver queries Unsat
          (the static prune of [verdict_priority]); nodes sharing a
          snapshot share the verdicts *)
  dead_objs : (int, unit) Hashtbl.t;
      (** objective ids proven dead after the worklists were built
          (periodic re-analysis); checked alongside coverage before
          each solve sweep *)
  target_ids : (Explore.target, int) Hashtbl.t;
      (** structural target -> dense id; ids are assigned in
          first-encounter order, so a regenerated MCDC objective for
          the same vector reuses its id (retries stay idempotent) *)
  mutable next_target_id : int;
  cursors : (int, int) Hashtbl.t;
      (** per-objective index of the next unattempted tree node; nodes
          are append-only, so attempted pairs are never rescanned *)
  misses : (int, int) Hashtbl.t;
      (** consecutive failed attempts per objective: objectives that
          keep failing are probed on progressively fewer states (the
          back-off the paper's Discussion calls for to stop "multiple
          solving for this type of branch" from eating the budget) *)
  solve_cache : (int * int, unit) Hashtbl.t;
      (** (objective id, state signature) pairs that already failed to
          solve: two nodes whose snapshots agree on every solver-relevant
          state slot give identical one-step answers, so re-solving is
          skipped (the "duplicate solving" waste the paper's Discussion
          flags).  Signatures are hashcons ids of constant terms over
          the relevant-slot projection (see [solve_signature]), so
          distinct tree nodes with equal residual state hit the cache
          even when irrelevant slots differ. *)
  relevant_slots : bool array;
      (** per declared state slot: can it influence a solve outcome?
          ({!Explore.relevant_state_slots}) *)
  sig_terms : (int, Solver.Term.t) Hashtbl.t;
      (** state uid -> signature term.  The term itself is kept (not
          just its id) so the weak hashcons table cannot reclaim it and
          later hand its id to a different term mid-run. *)
  mutable mcdc_stamp : int;  (** tracker progress at last MCDC refresh *)
  mutable mcdc_cache : objective list;
  library : Exec.inputs Dynarr.t;  (** all solved inputs, oldest first *)
  mutable events : event list;
  mutable testcases : Testcase.t list;
  mutable next_tc : int;
}

let intern_target st target =
  match Hashtbl.find_opt st.target_ids target with
  | Some id -> id
  | None ->
    let id = st.next_target_id in
    st.next_target_id <- id + 1;
    Hashtbl.replace st.target_ids target id;
    id

(* Project a snapshot onto the solver-relevant state slots.  Short
   snapshot arrays fall back to the declared initial value — the same
   contract as [Sym_value.env_of_program], so env-equal states project
   equal. *)
let relevant_projection st snapshot =
  let vals = ref [] in
  List.iteri
    (fun i ((_ : Ir.var), init) ->
      if st.relevant_slots.(i) then begin
        let value =
          if i < Array.length snapshot then snapshot.(i) else init
        in
        vals := value :: !vals
      end)
    st.prog.Ir.states;
  Array.of_list (List.rev !vals)

(* Semantic solve-cache key for a tree node: the hashcons id of a
   constant [Vec] term over the node's relevant-slot projection.  The
   solve outcome for a given objective is a deterministic function of
   that projection (the per-call solver RNG is seeded from the config
   seed and the target decision only), so equal signatures guarantee
   equal answers.  Memoized per state uid. *)
let solve_signature st (node : State_tree.node) =
  let uid = node.State_tree.state_uid in
  match Hashtbl.find_opt st.sig_terms uid with
  | Some t -> Solver.Term.id t
  | None ->
    let t =
      if not st.cfg.state_aware then
        (* state-blind ablation: the solver never reads the snapshot,
           so every node shares one signature *)
        Solver.Term.cbool false
      else
        Solver.Term.cst
          (Slim.Value.Vec (relevant_projection st node.State_tree.state))
    in
    Hashtbl.replace st.sig_terms uid t;
    Solver.Term.id t

let objective_covered st obj =
  match obj.obj_target with
  | Explore.Branch_target key -> Tracker.is_branch_covered st.tracker key
  | Explore.Condition_target { decision; atom; value } ->
    Tracker.is_condition_covered st.tracker decision atom value
  | Explore.Vector_target { decision; vector } ->
    List.exists
      (fun (v, _) -> v = vector)
      (Tracker.observed_vectors st.tracker decision)

let emit st ev = st.events <- ev :: st.events

let emit_coverage st =
  emit st
    (Ev_coverage
       {
         time = Vclock.now st.clock;
         decision_covered = (Tracker.decision st.tracker).Tracker.covered;
       })

(* Execute one input from [snapshot]; update the tracker and clock;
   return the new snapshot and the freshly covered branches. *)
let execute_raw st snapshot input =
  let before = Tracker.covered_branches st.tracker in
  let _, state' =
    Exec.run_step ~on_event:(Tracker.observe st.tracker) st.exec snapshot
      input
  in
  Vclock.charge_steps st.clock 1;
  Telemetry.Counter.incr tel_steps;
  let after = Tracker.covered_branches st.tracker in
  let fresh = Branch.Key_set.diff after before in
  if not (Branch.Key_set.is_empty fresh) then emit_coverage st;
  (state', fresh)

(* Record the transition in the state tree unless the node cap is
   reached — the cap bounds memory, never the run itself. *)
let maybe_record st (parent : State_tree.node option) input state' =
  match parent with
  | Some parent when State_tree.size st.tree < st.cfg.max_tree_nodes ->
    let child, is_new = State_tree.add_child st.tree ~parent ~input state' in
    if is_new then Telemetry.Counter.incr tel_tree_nodes;
    Some child
  | Some _ | None -> None

let execute_step st (node : State_tree.node) input =
  let state', fresh = execute_raw st node.State_tree.state input in
  let child = maybe_record st (Some node) input state' in
  (child, state', fresh)

(* [steps] is the actual executed sequence: the (replayable) tree path
   of the start node followed by the inputs executed in this episode.
   Using the executed inputs — not the final node's tree path — matters
   because node deduplication may have recorded a different input that
   reaches the same state but covers different branches. *)
let synthesize_testcase st ~steps origin fresh =
  let tc =
    {
      Testcase.tc_id = st.next_tc;
      steps;
      origin;
      found_at = Vclock.now st.clock;
      new_branches = Branch.Key_set.elements fresh;
    }
  in
  st.next_tc <- st.next_tc + 1;
  st.testcases <- tc :: st.testcases;
  Telemetry.Counter.incr tel_testcases;
  emit st (Ev_testcase tc);
  tc

(* Dynamic MCDC objectives: for each condition whose independent effect
   is still unshown, propose the unique-cause flip of already observed
   vectors (capped per sweep; keys make retries idempotent per node). *)
let mcdc_objectives st =
  let flips_per_condition = 4 in
  List.concat_map
    (fun (decision, atom) ->
      let observed = Tracker.observed_vectors st.tracker decision in
      let rec take k = function
        | [] -> []
        | _ when k = 0 -> []
        | (v, _) :: rest ->
          let flipped = Array.copy v in
          flipped.(atom) <- not flipped.(atom);
          if List.exists (fun (w, _) -> w = flipped) observed then
            take k rest
          else
            Explore.Vector_target { decision; vector = flipped }
            :: take (k - 1) rest
      in
      List.map
        (fun target ->
          { obj_target = target; obj_key = intern_target st target; obj_depth = 0 })
        (take flips_per_condition observed))
    (Tracker.uncovered_mcdc st.tracker)

(* One recording pass of the abstract analyzer from the node's exact
   snapshot, memoized per state uid.  [record_at]'s [Never] facts mean
   no conforming single step from that state reaches the program point
   — precisely the question [Explore.solve_target] answers — so they
   justify skipping the solve. *)
let record_for st (node : State_tree.node) =
  let uid = node.State_tree.state_uid in
  match Hashtbl.find_opt st.never_cache uid with
  | Some r -> r
  | None ->
    let r =
      Analyzer.record_at ~config:st.cfg.analysis_config st.prog
        ~state:node.State_tree.state
    in
    Hashtbl.replace st.never_cache uid r;
    r

let b3_excludes (b : Solver.Interval.bool3) value =
  if value then not b.Solver.Interval.bt else not b.Solver.Interval.bf

(* Is the one-step query for [obj] from [node]'s snapshot provably
   Unsat?  Branches need [Never] reach; condition and vector targets
   are also dead when an involved atom can never take the requested
   value on the paths that reach the decision. *)
let statically_unsat st node obj =
  let r = record_for st node in
  match obj.obj_target with
  | Explore.Branch_target key -> Analyzer.branch_reach r key = Analyzer.Never
  | Explore.Condition_target { decision; atom; value } -> (
    match Analyzer.guard_fact r decision with
    | Some g ->
      g.Analyzer.g_reach = Analyzer.Never
      || (atom < Array.length g.Analyzer.g_atoms
          && b3_excludes g.Analyzer.g_atoms.(atom) value)
    | None -> false)
  | Explore.Vector_target { decision; vector } -> (
    match Analyzer.guard_fact r decision with
    | Some g ->
      g.Analyzer.g_reach = Analyzer.Never
      || (Array.length vector = Array.length g.Analyzer.g_atoms
          && Array.exists2 b3_excludes g.Analyzer.g_atoms vector)
    | None -> false)

(* Algorithm 1: state-aware solving.  Returns the first (node,
   objective, input) that solves, or None when no (open objective,
   state) pair yields a solution.  A per-objective cursor into the
   append-only node list makes re-sweeps cost only the new work. *)
let state_aware_solving st =
  let solver_cfg = { st.cfg.solver with Explore.rng_seed = st.cfg.seed } in
  if Tracker.progress st.tracker <> st.mcdc_stamp then begin
    st.mcdc_stamp <- Tracker.progress st.tracker;
    st.mcdc_cache <- mcdc_objectives st
  end;
  let rec try_objectives = function
    | [] -> None
    | obj :: rest ->
      if objective_covered st obj || Hashtbl.mem st.dead_objs obj.obj_key
      then try_objectives rest
      else begin
        let size = State_tree.size st.tree in
        let stride () =
          let m = Option.value ~default:0 (Hashtbl.find_opt st.misses obj.obj_key) in
          1 lsl min 5 (m / 40)
        in
        let rec try_nodes id =
          if id >= size then begin
            Hashtbl.replace st.cursors obj.obj_key id;
            try_objectives rest
          end
          else if Vclock.expired st.clock then begin
            Hashtbl.replace st.cursors obj.obj_key id;
            None
          end
          else if id mod stride () <> 0 then begin
            (* back-off: this objective failed many times in a row;
               probe only a thinning subset of new states *)
            Telemetry.Counter.incr tel_stride_skips;
            try_nodes (id + 1)
          end
          else begin
            let node = State_tree.node st.tree id in
            let cache_key = (obj.obj_key, solve_signature st node) in
            if State_tree.is_solved node obj.obj_key then try_nodes (id + 1)
            else if Hashtbl.mem st.solve_cache cache_key then begin
              Telemetry.Counter.incr tel_cache_hits;
              try_nodes (id + 1)
            end
            else if st.cfg.verdict_priority && statically_unsat st node obj
            then begin
              (* provably Unsat from this snapshot: replay the solver's
                 Unsat bookkeeping exactly (solved mark, cache entry,
                 miss count) so cursor, stride and cache behaviour — and
                 therefore the emitted test cases — match a run without
                 pruning, but charge no solver time *)
              Telemetry.Counter.incr tel_pruned_static;
              State_tree.mark_solved node obj.obj_key;
              Hashtbl.replace st.solve_cache cache_key ();
              Hashtbl.replace st.misses obj.obj_key
                (1 + Option.value ~default:0
                       (Hashtbl.find_opt st.misses obj.obj_key));
              try_nodes (id + 1)
            end
            else begin
              State_tree.mark_solved node obj.obj_key;
              Telemetry.Counter.incr tel_solve_attempts;
              let outcome, cost =
                Telemetry.Span.with_ tel_sp_solve
                  ~note:(fun () -> Fmt.str "%a" Explore.pp_target obj.obj_target)
                  (fun () ->
                    Explore.solve_target ~config:solver_cfg
                      ~symbolic_state:(not st.cfg.state_aware) st.prog
                      ~state:node.state ~target:obj.obj_target)
              in
              Telemetry.Histogram.observe tel_h_solve_nodes
                cost.Explore.solver_nodes;
              (match outcome with
               | Explore.Sat _ -> ()
               | Explore.Unsat | Explore.Unknown ->
                 Hashtbl.replace st.solve_cache cache_key ());
              Vclock.charge_solve st.clock cost;
              let result : solve_result =
                match outcome with
                | Explore.Sat _ -> `Sat
                | Explore.Unsat -> `Unsat
                | Explore.Unknown -> `Unknown
              in
              Telemetry.Counter.incr
                (match result with
                 | `Sat -> tel_solve_sat
                 | `Unsat -> tel_solve_unsat
                 | `Unknown -> tel_solve_unknown);
              emit st
                (Ev_solve
                   {
                     time = Vclock.now st.clock;
                     target = obj.obj_target;
                     node = node.id;
                     result;
                   });
              match outcome with
              | Explore.Sat (input :: _) ->
                Dynarr.push st.library input;
                Hashtbl.replace st.cursors obj.obj_key id;
                Hashtbl.replace st.misses obj.obj_key 0;
                Some (node, obj, input)
              | Explore.Sat [] | Explore.Unsat | Explore.Unknown ->
                Hashtbl.replace st.misses obj.obj_key
                  (1 + Option.value ~default:0
                         (Hashtbl.find_opt st.misses obj.obj_key));
                try_nodes (id + 1)
            end
          end
        in
        let start =
          Option.value ~default:0 (Hashtbl.find_opt st.cursors obj.obj_key)
        in
        try_nodes start
      end
  in
  try_objectives (st.objectives @ st.mcdc_cache)

(* Algorithm 2, random mode: a random sequence of previously solved
   inputs executed from a random tree node.  Sequences are bursty —
   each step repeats the previous input with probability 1/2 — because
   reaching saturation-style states needs sustained stimuli (the
   paper's own example: "the constructed sequence contains enough
   operations of adding CPU tasks").  Node selection mixes uniform
   choice with a bias toward recently added (deep) nodes so progress
   into large state spaces compounds across rounds. *)
let random_execution st =
  Telemetry.Counter.incr tel_random_execs;
  Telemetry.Span.with_ tel_sp_random @@ fun () ->
  let node =
    if Random.State.bool st.rng then State_tree.random_node st.tree st.rng
    else begin
      (* among the most recent quarter of the tree *)
      let size = State_tree.size st.tree in
      let lo = size - 1 - (size / 4) in
      State_tree.node st.tree (lo + Random.State.int st.rng (size - lo))
    end
  in
  let len = st.cfg.random_seq_len in
  emit st
    (Ev_random_exec { time = Vclock.now st.clock; node = node.id; len });
  let fresh_input () =
    let n = Dynarr.length st.library in
    if n = 0 then Exec.random_inputs st.rng st.exec
    else begin
      (* bias toward recently solved inputs: they target the deep
         objectives currently being chased.  Index [i] counts back from
         the newest (the list this replaced was newest-first), so the
         RNG draws and the sampled distribution are unchanged. *)
      let bound = if Random.State.bool st.rng then min 8 n else n in
      Dynarr.get st.library (n - 1 - Random.State.int st.rng bound)
    end
  in
  let previous = ref None in
  let pick_input () =
    match !previous with
    | Some input when Random.State.bool st.rng -> input
    | Some _ | None ->
      let input = fresh_input () in
      previous := Some input;
      input
  in
  let rec steps snapshot node_opt executed fresh_acc k =
    if k = 0 || Vclock.expired st.clock then (executed, fresh_acc)
    else begin
      let input = pick_input () in
      let state', fresh = execute_raw st snapshot input in
      let node_opt' =
        match node_opt with
        | Some parent -> maybe_record st (Some parent) input state'
        | None -> None
      in
      steps state' node_opt' (input :: executed)
        (Branch.Key_set.union fresh_acc fresh)
        (k - 1)
    end
  in
  let executed, fresh =
    steps node.State_tree.state (Some node) [] Branch.Key_set.empty len
  in
  if not (Branch.Key_set.is_empty fresh) then begin
    let steps = State_tree.path_inputs st.tree node @ List.rev executed in
    ignore (synthesize_testcase st ~steps Testcase.Random_exec fresh)
  end

(* Optional hybrid prelude (paper Discussion): cheap random exploration
   before any solving. *)
let random_first_phase st =
  let rounds = st.cfg.random_first_rounds in
  for _ = 1 to rounds do
    if not (Vclock.expired st.clock) && not (Tracker.fully_covered st.tracker)
    then begin
      let node = State_tree.random_node st.tree st.rng in
      let rec steps snapshot node_opt executed fresh_acc k =
        if k = 0 then (executed, fresh_acc)
        else begin
          let input = Exec.random_inputs st.rng st.exec in
          let state', fresh = execute_raw st snapshot input in
          let node_opt' =
            match node_opt with
            | Some parent -> maybe_record st (Some parent) input state'
            | None -> None
          in
          steps state' node_opt' (input :: executed)
            (Branch.Key_set.union fresh_acc fresh)
            (k - 1)
        end
      in
      let executed, fresh =
        steps node.State_tree.state (Some node) [] Branch.Key_set.empty
          st.cfg.random_seq_len
      in
      if not (Branch.Key_set.is_empty fresh) then begin
        let steps = State_tree.path_inputs st.tree node @ List.rev executed in
        ignore (synthesize_testcase st ~steps Testcase.Random_exec fresh)
      end
    end
  done

(* Verdict-priority worklist order: statically [Reachable] objectives
   first — the solver is guaranteed progress on them, so they seed the
   tree and the input library before the open-ended [Unknown] chase.
   The partition is stable, so the depth-sorted (cost-ascending) order
   the pool's cost scheduling relies on is preserved within each
   class. *)
let order_by_verdict summary objs =
  match summary with
  | None -> objs
  | Some s ->
    let hot obj =
      match obj.obj_target with
      | Explore.Branch_target key ->
        Verdict.branch s key = Verdict.Reachable
      | Explore.Condition_target { decision; atom; value } ->
        Verdict.condition s decision atom value = Verdict.Reachable
      | Explore.Vector_target _ -> false
    in
    let first, rest = List.partition hot objs in
    first @ rest

(* Mid-run re-analysis: refine the verdicts from the most recently
   reached distinct snapshots, justify any newly proven-dead objective
   and drop it from the worklist.  [Verdict.refine] is monotone, so
   feeding the previous summary back keeps the justification lists
   cumulative even though [Tracker.set_justified] replaces. *)
let reanalyze st =
  match st.summary with
  | None -> ()
  | Some s ->
    Telemetry.Counter.incr tel_reanalyses;
    let max_seeds = 64 in
    let seen = Hashtbl.create 128 in
    let seeds = ref [] in
    let count = ref 0 in
    let id = ref (State_tree.size st.tree - 1) in
    while !count < max_seeds && !id >= 0 do
      let node = State_tree.node st.tree !id in
      let uid = node.State_tree.state_uid in
      if not (Hashtbl.mem seen uid) then begin
        Hashtbl.replace seen uid ();
        seeds := node.State_tree.state :: !seeds;
        incr count
      end;
      decr id
    done;
    let s' = Verdict.refine ~config:st.cfg.analysis_config s ~seeds:!seeds in
    st.summary <- Some s';
    let db = Verdict.dead_branches s' in
    let dc = Verdict.dead_conditions s' in
    let dm = Verdict.dead_mcdc s' in
    Tracker.set_justified st.tracker ~branches:db ~conditions:dc ~mcdc:dm;
    let kill target =
      match Hashtbl.find_opt st.target_ids target with
      | Some id -> Hashtbl.replace st.dead_objs id ()
      | None -> ()
    in
    List.iter (fun key -> kill (Explore.Branch_target key)) db;
    List.iter
      (fun (decision, atom, value) ->
        kill (Explore.Condition_target { decision; atom; value }))
      dc;
    (* justified MCDC pairs drop out of [uncovered_mcdc]; invalidate
       the stamp so the dynamic sweep rebuilds from it *)
    st.mcdc_stamp <- -1;
    if st.cfg.verdict_priority then
      st.objectives <- order_by_verdict st.summary st.objectives

(* Every coverage requirement satisfied: decision, condition and MCDC. *)
let all_requirements_met tracker =
  let full (r : Tracker.ratio) = r.Tracker.covered = r.Tracker.total in
  Tracker.fully_covered tracker
  && full (Tracker.condition tracker)
  && full (Tracker.mcdc tracker)

let run ?(config = default_config) prog =
  Telemetry.Counter.incr tel_runs;
  Telemetry.Span.with_ tel_sp_run @@ fun () ->
  let exec = Exec.handle prog in
  let tracker = Tracker.create prog in
  (* Static dead-objective detection: proven-dead objectives are
     justified in the tracker (removed from every denominator) and
     filtered from the worklists below, so the solver never burns
     budget on them — SLDV-style dead-logic justification. *)
  let summary0 =
    if not config.analyze then None
    else Some (Verdict.of_program ~config:config.analysis_config prog)
  in
  let dead_branch, dead_cond =
    match summary0 with
    | None -> ((fun _ -> false), fun _ -> false)
    | Some s ->
      let db = Verdict.dead_branches s in
      let dc = Verdict.dead_conditions s in
      let dm = Verdict.dead_mcdc s in
      Tracker.set_justified tracker ~branches:db ~conditions:dc ~mcdc:dm;
      Telemetry.Counter.add tel_skipped_dead
        (List.length db + List.length dc + List.length dm);
      ( (fun key -> List.exists (Branch.equal_key key) db),
        fun c -> List.mem c dc )
  in
  let tree = State_tree.create prog in
  let clock = Vclock.create ~budget:config.budget in
  (* target intern table: shared with the run state so the dynamic MCDC
     sweep keeps assigning consistent ids *)
  let target_ids : (Explore.target, int) Hashtbl.t = Hashtbl.create 256 in
  let next_target_id = ref 0 in
  let intern target =
    match Hashtbl.find_opt target_ids target with
    | Some id -> id
    | None ->
      let id = !next_target_id in
      incr next_target_id;
      Hashtbl.replace target_ids target id;
      id
  in
  let branch_objectives =
    (* branch table comes precomputed from the handle *)
    let bs = Exec.branches exec in
    let bs = if config.sort_branches then Branch.sort_by_depth bs else bs in
    let bs = List.filter (fun (b : Branch.t) -> not (dead_branch b.key)) bs in
    List.map
      (fun (b : Branch.t) ->
        {
          obj_target = Explore.Branch_target b.key;
          obj_key = intern (Explore.Branch_target b.key);
          obj_depth = b.depth;
        })
      bs
  in
  (* Condition objectives, shallow decisions first, after the branch
     objectives (branches usually cover most condition outcomes along
     the way). *)
  let condition_objectives =
    let depth_of_decision =
      let tbl = Hashtbl.create 64 in
      List.iter
        (fun (b : Branch.t) ->
          if not (Hashtbl.mem tbl b.decision) then
            Hashtbl.replace tbl b.decision b.depth)
        (Exec.branches exec);
      fun d -> Option.value ~default:0 (Hashtbl.find_opt tbl d)
    in
    let criteria = Tracker.criteria tracker in
    List.concat_map
      (fun (d : Coverage.Criteria.decision_info) ->
        List.concat_map
          (fun atom ->
            List.filter_map
              (fun value ->
                if dead_cond (d.Coverage.Criteria.d_id, atom, value) then None
                else
                  let target =
                    Explore.Condition_target
                      { decision = d.Coverage.Criteria.d_id; atom; value }
                  in
                  Some
                    {
                      obj_target = target;
                      obj_key = intern target;
                      obj_depth = depth_of_decision d.Coverage.Criteria.d_id;
                    })
              [ true; false ])
          (List.init d.Coverage.Criteria.d_atom_count Fun.id))
      criteria.Coverage.Criteria.decisions
    |> List.stable_sort (fun a b -> Int.compare a.obj_depth b.obj_depth)
  in
  let st =
    {
      cfg = config;
      prog;
      exec;
      tracker;
      tree;
      clock;
      rng = Random.State.make [| config.seed; 0xC7C6 |];
      objectives =
        (let objs = branch_objectives @ condition_objectives in
         if config.verdict_priority then order_by_verdict summary0 objs
         else objs);
      summary = summary0;
      never_cache = Hashtbl.create 256;
      dead_objs = Hashtbl.create 64;
      target_ids;
      next_target_id = !next_target_id;
      cursors = Hashtbl.create 256;
      solve_cache = Hashtbl.create 4096;
      relevant_slots = Explore.relevant_state_slots prog;
      sig_terms = Hashtbl.create 1024;
      misses = Hashtbl.create 256;
      mcdc_stamp = -1;
      mcdc_cache = [];
      library = Dynarr.create ();
      events = [];
      testcases = [];
      next_tc = 0;
    }
  in
  if config.random_first then random_first_phase st;
  (* MCDC is quadratic in observed vectors; memoize the termination
     check on the tracker's progress stamp (per run). *)
  let met_cache = ref (-1, false) in
  let requirements_met () =
    let stamp = Tracker.progress st.tracker in
    let cached_stamp, cached = !met_cache in
    if stamp = cached_stamp then cached
    else begin
      let result = all_requirements_met st.tracker in
      met_cache := (stamp, result);
      result
    end
  in
  let stop = ref None in
  let iters = ref 0 in
  while !stop = None do
    if requirements_met () then stop := Some Full_coverage
    else if Vclock.expired st.clock then stop := Some Budget_exhausted
    else begin
      incr iters;
      if config.reanalyze_every > 0 && !iters mod config.reanalyze_every = 0
      then begin
        reanalyze st;
        (* justification shrinks denominators without bumping the
           progress stamp; force the next termination check *)
        met_cache := (-1, false)
      end;
      match state_aware_solving st with
      | Some (node, branch, input) ->
        let _child, _state', fresh = execute_step st node input in
        (* the solved branch may cover siblings too; any new coverage
           yields a test case (Algorithm 2, lines 21-25) *)
        if not (Branch.Key_set.is_empty fresh) then begin
          let steps = State_tree.path_inputs st.tree node @ [ input ] in
          ignore (synthesize_testcase st ~steps Testcase.Solved fresh)
        end
        else ignore branch
      | None ->
        if Vclock.expired st.clock then stop := Some Budget_exhausted
        else if st.cfg.random_fallback then random_execution st
        else
          (* no random fallback (ablation): burn a beat of the clock so
             the loop revisits solving as new states appear — or stalls
             out the budget, which the ablation measures *)
          Vclock.charge st.clock 1.0
    end
  done;
  let r_stop = match !stop with Some s -> s | None -> assert false in
  {
    r_config = config;
    r_testcases = List.rev st.testcases;
    r_tracker = st.tracker;
    r_tree = st.tree;
    r_events = List.rev st.events;
    r_clock = st.clock;
    r_stop;
  }

let coverage_timeline run =
  let total = (Tracker.decision run.r_tracker).Tracker.total in
  let pct c = if total = 0 then 100.0 else 100.0 *. float c /. float total in
  List.filter_map
    (function
      | Ev_coverage { time; decision_covered } ->
        Some (time, pct decision_covered)
      | Ev_testcase _ | Ev_solve _ | Ev_random_exec _ -> None)
    run.r_events
