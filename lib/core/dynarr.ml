type 'a t = {
  mutable data : 'a array;  (* physical storage, length >= len *)
  mutable len : int;
}

let create () = { data = [||]; len = 0 }
let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let cap' = if cap = 0 then 8 else 2 * cap in
    (* [x] seeds the fresh slots; they are overwritten before any read
       because [get] bounds-checks against [len] *)
    let data' = Array.make cap' x in
    Array.blit t.data 0 data' 0 t.len;
    t.data <- data'
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Dynarr.get";
  t.data.(i)

let to_list t = List.init t.len (fun i -> t.data.(i))
