module Exec = Slim.Exec
module Iset = Set.Make (Int)

type node = {
  id : int;
  parent : int option;
  state : Exec.state;
  state_uid : int;
  input : Exec.inputs option;
  depth : int;
  mutable solved : Iset.t;
}

type t = {
  exec : Exec.t;
  mutable nodes_rev : node list;
  mutable count : int;
  children : (int, int list ref) Hashtbl.t;
  by_id : (int, node) Hashtbl.t;
  intern : (int, (Exec.state * int) list ref) Hashtbl.t;
      (* structural hash -> (state, uid) bucket; two states get the same
         uid iff they are [Exec.state_equal] *)
  mutable distinct : int;
}

(* Map a snapshot to a small integer uid, unique per distinct state.  Uids
   make dedup (here) and solver caching (Engine) O(1) comparisons instead
   of structural equality walks or serialized-string keys. *)
let intern_state t state =
  let h = Exec.state_hash state in
  match Hashtbl.find_opt t.intern h with
  | None ->
    let uid = t.distinct in
    t.distinct <- uid + 1;
    Hashtbl.replace t.intern h (ref [ (state, uid) ]);
    uid
  | Some bucket ->
    (match List.find_opt (fun (s, _) -> Exec.state_equal s state) !bucket with
     | Some (_, uid) -> uid
     | None ->
       let uid = t.distinct in
       t.distinct <- uid + 1;
       bucket := (state, uid) :: !bucket;
       uid)

let create prog =
  let exec = Exec.handle prog in
  let t =
    {
      exec;
      nodes_rev = [];
      count = 0;
      children = Hashtbl.create 64;
      by_id = Hashtbl.create 64;
      intern = Hashtbl.create 256;
      distinct = 0;
    }
  in
  let state = Exec.initial_state exec in
  let root =
    {
      id = 0;
      parent = None;
      state;
      state_uid = intern_state t state;
      input = None;
      depth = 0;
      solved = Iset.empty;
    }
  in
  t.nodes_rev <- [ root ];
  t.count <- 1;
  Hashtbl.replace t.by_id 0 root;
  t

let exec t = t.exec
let root t = Hashtbl.find t.by_id 0
let node t id = Hashtbl.find t.by_id id
let size t = t.count
let nodes t = List.rev t.nodes_rev

let children_of t id =
  match Hashtbl.find_opt t.children id with
  | Some l -> !l
  | None -> []

let add_child t ~parent ~input state =
  let uid = intern_state t state in
  if uid = parent.state_uid then (parent, false)
  else
    let existing =
      List.find_opt
        (fun cid -> (node t cid).state_uid = uid)
        (children_of t parent.id)
    in
    match existing with
    | Some cid -> (node t cid, false)
    | None ->
      let n =
        {
          id = t.count;
          parent = Some parent.id;
          state;
          state_uid = uid;
          input = Some input;
          depth = parent.depth + 1;
          solved = Iset.empty;
        }
      in
      t.count <- t.count + 1;
      t.nodes_rev <- n :: t.nodes_rev;
      Hashtbl.replace t.by_id n.id n;
      (match Hashtbl.find_opt t.children parent.id with
       | Some l -> l := n.id :: !l
       | None -> Hashtbl.replace t.children parent.id (ref [ n.id ]));
      (n, true)

let path_inputs t n =
  let rec go acc n =
    match n.parent, n.input with
    | None, _ -> acc
    | Some pid, Some input -> go (input :: acc) (node t pid)
    | Some pid, None -> go acc (node t pid)
  in
  go [] n

let random_node t rng =
  let k = Random.State.int rng t.count in
  node t k

let mark_solved n key = n.solved <- Iset.add key n.solved
let is_solved n key = Iset.mem key n.solved

let distinct_states t = t.distinct

let pp ppf t =
  let rec render indent id =
    let n = node t id in
    Fmt.pf ppf "%sS%d" indent n.id;
    (match n.input with
     | Some input -> Fmt.pf ppf "  <- %a" (Exec.pp_inputs t.exec) input
     | None -> Fmt.pf ppf "  (initial state)");
    Fmt.pf ppf "@,";
    List.iter (render (indent ^ "  ")) (List.rev (children_of t id))
  in
  Fmt.pf ppf "@[<v>";
  render "" 0;
  Fmt.pf ppf "@]"
