(** The state tree (paper Definitions 3 and 4).

    Each node is one explored model state: the snapshot itself (a
    slot-addressed {!Slim.Exec.state}), the one-step input that produced
    it from its parent, the set of branches already attempted by the
    solver on this state ([solved]), and the branches confirmed covered
    when executing into this state.  The root holds the model's default
    state.

    Snapshots are interned: every distinct state (under
    {!Slim.Exec.state_equal}) gets a small integer uid, so dedup here and
    solver-result caching in the engine are integer comparisons instead
    of structural equality walks or serialized-string keys.

    Nodes are deduplicated against their parent: executing an input
    that leaves the state unchanged does not grow the tree. *)

type node = {
  id : int;
  parent : int option;
  state : Slim.Exec.state;
  state_uid : int;
      (** intern uid: [state_uid a = state_uid b] iff the snapshots are
          structurally equal (within one tree) *)
  input : Slim.Exec.inputs option;  (** [None] only for the root *)
  depth : int;
  mutable solved : Set.Make(Int).t;
      (** interned objective ids already attempted on this state
          (Algorithm 1 line 11); the engine assigns each distinct
          coverage target a dense integer id *)
}

type t

val create : Slim.Ir.program -> t
(** Compiles (or reuses) the program's {!Slim.Exec.handle}. *)

val exec : t -> Slim.Exec.t
(** The compiled handle the tree's snapshots are addressed against. *)

val root : t -> node
val node : t -> int -> node
val size : t -> int
val nodes : t -> node list
(** In insertion (BFS-ish) order — the traversal order of Algorithm 1. *)

val add_child :
  t -> parent:node -> input:Slim.Exec.inputs -> Slim.Exec.state -> node * bool
(** [add_child t ~parent ~input state] returns the node for [state]
    reached from [parent] and whether it is new.  If [state] equals
    [parent.state] or an existing child of [parent] reached the same
    state, that node is reused. *)

val path_inputs : t -> node -> Slim.Exec.inputs list
(** Inputs along root -> node, in execution order (Algorithm 2,
    lines 21-25). *)

val random_node : t -> Random.State.t -> node

val mark_solved : node -> int -> unit
val is_solved : node -> int -> bool

val distinct_states : t -> int
(** Number of distinct snapshots in the tree (O(1): maintained by the
    intern table). *)

val pp : t Fmt.t
(** Compact tree rendering (used for the paper's Figure 3(b)). *)
