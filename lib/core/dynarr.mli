(** A minimal growable array (amortized O(1) append, O(1) indexing).

    OCaml 5.1's stdlib has no [Dynarray] yet (it lands in 5.2); the
    engine needs one so the solved-input library can be sampled by
    index instead of [List.nth] — which made every random step O(n²)
    in the number of solved inputs. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append at index [length t] (doubling growth). *)

val get : 'a t -> int -> 'a
(** O(1); raises [Invalid_argument] out of bounds. *)

val to_list : 'a t -> 'a list
(** Elements in push order. *)
