(** The STCG engine: the paper's Figure 2 loop.

    Two parts alternate until every branch is covered or the virtual
    budget runs out:

    - {b State-aware solving} (Algorithm 1): walk uncovered branches
      (shallow first) and state-tree nodes; solve one model iteration
      with the node's state fixed as constants.
    - {b Dynamic execution} (Algorithm 2): run the solved input from the
      chosen state (or, when nothing solves, a random sequence of
      previously solved inputs from a random node); record new states as
      tree children; synthesize a test case whenever new coverage
      appears. *)

type config = {
  seed : int;
  budget : float;  (** virtual seconds (paper: 3600) *)
  random_seq_len : int;  (** N of Algorithm 2 (random sequence length) *)
  solver : Symexec.Explore.config;
  sort_branches : bool;  (** depth sort of Section III-A; off = ablation *)
  state_aware : bool;  (** off = solve with symbolic state (ablation) *)
  random_fallback : bool;  (** off = skip Algorithm 2's random mode (ablation) *)
  random_first : bool;
      (** hybrid from the paper's Discussion: a random exploration phase
          before solving starts *)
  random_first_rounds : int;
  max_tree_nodes : int;
  analyze : bool;
      (** run the static analyzer first: proven-dead objectives are
          justified in the tracker ({!Coverage.Tracker.set_justified})
          and skipped by the solving loop *)
  verdict_priority : bool;
      (** verdict-priority worklist: statically [Reachable] objectives
          are solved first (original depth order within each class), and
          one-step queries a recording pass from the node's snapshot
          proves Unsat are pruned without calling the solver.  The prune
          replays the solver's Unsat bookkeeping exactly, so the test
          cases of a [Full_coverage] run are identical with the flag on
          or off (up to [found_at] timestamps — pruned solves charge no
          virtual time) *)
  reanalyze_every : int;
      (** when positive (and [analyze] is set), every N solving-loop
          iterations the verdict fixpoint is re-run seeded from reached
          state-tree snapshots ({!Analysis.Verdict.refine}), monotonically
          tightening [Unknown] verdicts; newly proven-dead objectives are
          justified mid-run and dropped from the worklist.  [0] disables *)
  analysis_config : Analysis.Analyzer.config;
      (** abstract domain for every engine-side analysis (the startup
          verdicts of [analyze], the static prune of [verdict_priority],
          the periodic re-analysis of [reanalyze_every]) *)
}

val default_config : config

type solve_result = [ `Sat | `Unsat | `Unknown ]

type event =
  | Ev_testcase of Testcase.t
  | Ev_solve of {
      time : float;
      target : Symexec.Explore.target;
      node : int;
      result : solve_result;
    }
  | Ev_random_exec of { time : float; node : int; len : int }
  | Ev_coverage of { time : float; decision_covered : int }
      (** emitted whenever the covered-branch count increases *)

type stop_reason = Full_coverage | Budget_exhausted

type run = {
  r_config : config;
  r_testcases : Testcase.t list;  (** in discovery order *)
  r_tracker : Coverage.Tracker.t;
  r_tree : State_tree.t;
  r_events : event list;  (** in chronological order *)
  r_clock : Vclock.t;
  r_stop : stop_reason;
}

val run : ?config:config -> Slim.Ir.program -> run

val coverage_timeline : run -> (float * float) list
(** (virtual time, decision coverage percentage) points, increasing —
    one Figure 4 series. *)
