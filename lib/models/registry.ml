(* The benchmark-model registry: one entry per Table II row, with the
   paper's reported metrics attached for side-by-side reporting. *)

(* Paper Table III row: (decision, condition, mcdc) percentages. *)
type paper_row = { p_sldv : float * float * float;
                   p_simcotest : float * float * float;
                   p_stcg : float * float * float }

(* The shape a model was authored in, before compilation to the step
   program — what the textual .stcg format serializes.  Thunked like
   [program]: sources are built on demand. *)
type source =
  | Src_diagram of (unit -> Slim.Model.t)
  | Src_chart of (unit -> Stateflow.Chart.t)
  | Src_program of (unit -> Slim.Ir.program)

type entry = {
  name : string;
  description : string;
  program : unit -> Slim.Ir.program;
  source : source;  (** the model as authored (diagram/chart/raw IR) *)
  paper_branches : int;  (** Table II "#Branch" *)
  paper_blocks : int;  (** Table II "#Block" *)
  paper : paper_row;  (** Table III *)
}

let entries =
  [
    {
      name = "CPUTask";
      description = Cputask.description;
      program = Cputask.program;
      source = Src_program Cputask.program_uncached;
      paper_branches = 107;
      paper_blocks = 275;
      paper =
        {
          p_sldv = (89., 72., 42.);
          p_simcotest = (72., 56., 21.);
          p_stcg = (100., 100., 100.);
        };
    };
    {
      name = "AFC";
      description = Afc.description;
      program = Afc.program;
      source = Src_diagram Afc.model;
      paper_branches = 35;
      paper_blocks = 125;
      paper =
        {
          p_sldv = (67., 64., 11.);
          p_simcotest = (72., 68., 11.);
          p_stcg = (83., 79., 22.);
        };
    };
    {
      name = "TWC";
      description = Twc.description;
      program = Twc.program;
      source = Src_chart Twc.chart;
      paper_branches = 80;
      paper_blocks = 214;
      paper =
        {
          p_sldv = (46., 68., 40.);
          p_simcotest = (15., 57., 20.);
          p_stcg = (92., 97., 100.);
        };
    };
    {
      name = "NICProtocol";
      description = Nicprotocol.description;
      program = Nicprotocol.program;
      source = Src_chart Nicprotocol.chart;
      paper_branches = 46;
      paper_blocks = 294;
      paper =
        {
          p_sldv = (75., 83., 10.);
          p_simcotest = (30., 43., 20.);
          p_stcg = (95., 98., 100.);
        };
    };
    {
      name = "UTPC";
      description = Utpc.description;
      program = Utpc.program;
      source = Src_diagram Utpc.model;
      paper_branches = 92;
      paper_blocks = 214;
      paper =
        {
          p_sldv = (44., 59., 44.);
          p_simcotest = (40., 58., 44.);
          p_stcg = (100., 100., 100.);
        };
    };
    {
      name = "LANSwitch";
      description = Lanswitch.description;
      program = Lanswitch.program;
      source = Src_program Lanswitch.program_uncached;
      paper_branches = 131;
      paper_blocks = 570;
      paper =
        {
          p_sldv = (72., 76., 15.);
          p_simcotest = (78., 81., 15.);
          p_stcg = (100., 98., 55.);
        };
    };
    {
      name = "LEDLC";
      description = Ledlc.description;
      program = Ledlc.program;
      source = Src_program Ledlc.program_uncached;
      paper_branches = 94;
      paper_blocks = 270;
      paper =
        {
          p_sldv = (55., 41., 43.);
          p_simcotest = (55., 41., 43.);
          p_stcg = (98., 100., 100.);
        };
    };
    {
      name = "TCP";
      description = Tcp.description;
      program = Tcp.program;
      source = Src_program Tcp.program_uncached;
      paper_branches = 146;
      paper_blocks = 330;
      paper =
        {
          p_sldv = (63., 64., 33.);
          p_simcotest = (82., 74., 17.);
          p_stcg = (99., 100., 67.);
        };
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.lowercase_ascii e.name = String.lowercase_ascii name)
    entries

let names = List.map (fun e -> e.name) entries
