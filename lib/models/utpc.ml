(* Underwater thruster power control (paper Table II: UTPC).

   Four thrusters share a battery.  A power-mode chart (Off / Standby /
   Run / Derate / Fault) gates everything; per-thruster replicated
   subsystems (each with private duty-cycle and cutout state held in
   subsystem-scoped data stores) slew their duty toward the command,
   detect stall and latch overcurrent cutouts.  Battery voltage and
   controller temperature are integrator states whose thresholds drive
   Derate / Fault — states only reachable through sustained load, i.e.
   multi-step trajectories. *)

module V = Slim.Value
module Ir = Slim.Ir
module B = Slim.Builder
module C = Stateflow.Chart

let thrusters = 4

let mode_chart () =
  let open Ir in
  C.chart ~name:"utpc_mode"
    ~inputs:
      [
        input "power_on" V.Tbool;
        input "arm" V.Tbool;
        input "arm_code" (V.tint_range 0 4095);
        input "vbat_low" V.Tbool;
        input "vbat_crit" V.Tbool;
        input "hot" V.Tbool;
        input "overheat" V.Tbool;
        input "clear" V.Tbool;
      ]
    ~outputs:[ output "mode" (V.tint_range 0 4) ]
    ~data:
      [
        state "run_ticks" (V.tint_range 0 50) (V.Int 0);
        state "pending_code" (V.tint_range 0 4095) (V.Int 0);
        state "pending_chk" (V.tint_range 0 4095) (V.Int 0);
        state "armed_code" (V.tint_range 0 4095) (V.Int 0);
      ]
    (C.region ~initial:"Off"
       ~transitions:
         [
           C.trans ~guard:(iv "power_on") "Off" "Standby";
           C.trans ~guard:(not_ (iv "power_on")) "Standby" "Off";
           (* safety interlock: arming needs an incrementing rolling
              code on two consecutive steps (stored, then code+1) -
              constant or random buses practically never satisfy it *)
           C.trans
             ~guard:
               (iv "arm" &&: not_ (iv "vbat_low")
               &&: (iv "arm_code" =: sv "pending_code" +: ci 1)
               &&: (sv "pending_code" >: ci 0)
               &&: (sv "pending_code" <: ci 4000))
             "Standby" "Run"
             ~action:[ assign_state "armed_code" (iv "arm_code") ];
           (* defensive trip: the rolling code is stored redundantly and
              a divergence of the two copies faults the controller.  The
              copies are written together from the same bus value, so
              the trip is dead by construction - provable only with a
              relational domain (the interval analyzer sees two
              independent [0, 4095] stores). *)
           C.trans
             ~guard:(sv "pending_code" <>: sv "pending_chk")
             "Standby" "Fault";
           C.trans ~guard:(iv "overheat" ||: iv "vbat_crit") "Run" "Fault";
           C.trans ~guard:(iv "hot" ||: iv "vbat_low") "Run" "Derate";
           C.trans ~guard:(iv "overheat" ||: iv "vbat_crit") "Derate" "Fault";
           C.trans
             ~guard:(not_ (iv "hot") &&: not_ (iv "vbat_low"))
             "Derate" "Run";
           C.trans ~guard:(not_ (iv "arm")) "Run" "Standby";
           (* faults latch; recovery needs power off AND an explicit clear *)
           C.trans
             ~guard:
               (iv "clear" &&: not_ (iv "power_on")
               &&: (iv "arm_code" =: sv "armed_code"))
             "Fault" "Off";
         ]
       [
         C.state "Off" ~entry:[ assign_out "mode" (ci 0) ];
         C.state "Standby"
           ~entry:[ assign_out "mode" (ci 1); assign_state "run_ticks" (ci 0) ]
           ~during:
             [
               assign_state "pending_code" (iv "arm_code");
               assign_state "pending_chk" (iv "arm_code");
             ];
         C.state "Run"
           ~entry:[ assign_out "mode" (ci 2) ]
           ~during:
             [
               assign_state "run_ticks"
                 (Binop (Min, ci 50, sv "run_ticks" +: ci 1));
             ];
         C.state "Derate" ~entry:[ assign_out "mode" (ci 3) ];
         C.state "Fault" ~entry:[ assign_out "mode" (ci 4) ];
       ])

(* One thruster channel.  Private state: [duty] (slew-limited duty
   cycle) and [cut] (overcurrent cutout latch) in data stores scoped to
   this subsystem instance; a unit delay implements two-step stall
   confirmation. *)
let thruster_sub () =
  let b = B.create "thruster" in
  B.data_store b "duty" (V.treal_range 0.0 100.0) (V.Real 0.0);
  B.data_store b "cut" (V.tint_range 0 1) (V.Int 0);
  let cmd = B.inport b "cmd" (V.treal_range 0.0 100.0) in
  let rpm_fb = B.inport b "rpm_fb" (V.treal_range 0.0 3000.0) in
  let run = B.inport b "run" V.Tbool in
  let derated = B.inport b "derated" V.Tbool in
  let reset = B.inport b "reset" V.Tbool in
  let duty = B.ds_read b "duty" in
  let cut = B.ds_read b "cut" in
  (* derate halves the command; a disarmed controller commands zero *)
  let cmd_half = B.gain b 0.5 cmd in
  let cmd_lim = B.switch b ~data1:cmd_half ~control:derated ~data2:cmd () in
  let cmd_eff =
    B.switch b ~data1:cmd_lim ~control:run ~data2:(B.const_r b 0.0) ()
  in
  (* slew limit: at most 15 duty points per step toward the command *)
  let err = B.diff b cmd_eff duty in
  let step = B.saturation b ~lower:(-15.0) ~upper:15.0 err in
  let next = B.saturation b ~lower:0.0 ~upper:100.0 (B.sum b [ duty; step ]) in
  (* electrical model: current rises with duty, spikes when stalled *)
  let stall_now =
    B.and_ b
      [
        B.compare_const b Ir.Gt 60.0 cmd_eff;
        B.compare_const b Ir.Lt 200.0 rpm_fb;
      ]
  in
  let stall_prev = B.unit_delay b (V.Bool false) stall_now in
  let stalled = B.and_ b [ stall_now; stall_prev ] in
  let spike =
    B.switch b ~data1:(B.const_r b 12.0) ~control:stalled
      ~data2:(B.const_r b 0.0) ()
  in
  let current = B.sum b [ B.gain b 0.35 next; spike ] in
  (* overcurrent latches the cutout; a reset (disarm) clears it *)
  let over = B.compare_const b Ir.Gt 32.0 current in
  let cut_raw =
    B.switch b ~data1:(B.const_i b 1) ~control:over ~data2:cut ()
  in
  let cut_next =
    B.switch b ~data1:(B.const_i b 0) ~control:reset ~data2:cut_raw ()
  in
  B.ds_write b "cut" cut_next;
  let is_cut = B.compare_const b Ir.Eq 1.0 cut in
  let duty_out =
    B.switch b ~data1:(B.const_r b 0.0) ~control:is_cut ~data2:next ()
  in
  B.ds_write b "duty" duty_out;
  B.outport b "duty" duty_out;
  B.outport b "current" current;
  B.outport b "stalled" stalled;
  B.outport b "cutout" is_cut;
  B.finish b

let model () =
  let b = B.create "utpc" in
  let power_on = B.inport b "power_on" V.Tbool in
  let arm = B.inport b "arm" V.Tbool in
  let arm_code = B.inport b "arm_code" (V.tint_range 0 4095) in
  let clear = B.inport b "clear" V.Tbool in
  let cmds =
    List.init thrusters (fun k ->
        B.inport b (Fmt.str "cmd%d" k) (V.treal_range 0.0 100.0))
  in
  let rpms =
    List.init thrusters (fun k ->
        B.inport b (Fmt.str "rpm%d" k) (V.treal_range 0.0 3000.0))
  in
  (* battery: discharges with total load, trickle-charges when idle *)
  let vbat_fb = B.ds_read b "vbat_fb" in
  let temp_fb = B.ds_read b "temp_fb" in
  B.data_store b "vbat_fb" (V.treal_range 9.0 13.0) (V.Real 12.6);
  B.data_store b "temp_fb" (V.treal_range 0.0 120.0) (V.Real 20.0);
  let vbat_low = B.compare_const b Ir.Lt 10.5 vbat_fb in
  let vbat_crit = B.compare_const b Ir.Lt 9.6 vbat_fb in
  let hot = B.compare_const b Ir.Gt 70.0 temp_fb in
  let overheat = B.compare_const b Ir.Gt 95.0 temp_fb in
  let frag = Stateflow.Sf_compile.compile (mode_chart ()) in
  let mode =
    match
      B.chart b frag
        [ power_on; arm; arm_code; vbat_low; vbat_crit; hot; overheat; clear ]
    with
    | [ m ] -> m
    | _ -> invalid_arg "utpc: chart output arity"
  in
  B.outport b "mode" mode;
  (* thruster subsystems run whenever powered (standby included) so
     that cutout latches can be reset while disarmed *)
  let running =
    B.or_ b
      [ B.compare_const b Ir.Eq 2.0 mode; B.compare_const b Ir.Eq 3.0 mode ]
  in
  let enabled = B.or_ b [ running; B.compare_const b Ir.Eq 1.0 mode ] in
  let derated = B.compare_const b Ir.Eq 3.0 mode in
  let disarmed = B.not_ b running in
  (* four replicated thruster subsystems; disabled => outputs reset,
     inner state frozen *)
  let outs =
    List.map2
      (fun cmd rpm ->
        match
          B.enabled b ~held:false (thruster_sub ()) ~enable:enabled
            [ cmd; rpm; running; derated; disarmed ]
        with
        | [ duty; current; stalled; cutout ] -> (duty, current, stalled, cutout)
        | _ -> invalid_arg "utpc: thruster output arity")
      cmds rpms
  in
  let duties = List.map (fun (d, _, _, _) -> d) outs in
  let currents = List.map (fun (_, c, _, _) -> c) outs in
  let total_load = B.sum b currents in
  B.outport b "total_load" total_load;
  List.iteri
    (fun k (d, _, s, c) ->
      B.outport b (Fmt.str "duty%d" k) d;
      B.outport b (Fmt.str "stall%d" k) s;
      B.outport b (Fmt.str "cut%d" k) c)
    outs;
  ignore duties;
  (* battery dynamics: discharge with load, trickle-charge when idle *)
  let charge =
    B.switch b ~data1:(B.const_r b 0.0) ~control:running
      ~data2:(B.const_r b 0.08) ()
  in
  let vbat_delta = B.sum_signed b
      [ (Slim.Model.Plus, charge); (Slim.Model.Minus, B.gain b 0.015 total_load) ]
  in
  let vbat_next =
    B.saturation b ~lower:9.0 ~upper:13.0 (B.sum b [ vbat_fb; vbat_delta ])
  in
  B.ds_write b "vbat_fb" vbat_next;
  B.outport b "vbat" vbat_next;
  (* thermal dynamics: heats with load, cools toward ambient *)
  let cooling = B.gain b 0.05 (B.diff b temp_fb (B.const_r b 20.0)) in
  let temp_delta =
    B.sum_signed b
      [ (Slim.Model.Plus, B.gain b 0.25 total_load); (Slim.Model.Minus, cooling) ]
  in
  let temp_next =
    B.saturation b ~lower:0.0 ~upper:120.0 (B.sum b [ temp_fb; temp_delta ])
  in
  B.ds_write b "temp_fb" temp_next;
  B.outport b "temp" temp_next;
  B.finish b

let cached = lazy (Slim.Compile.to_program (model ()))
let program () = Lazy.force cached
let description = "Underwater thruster power control"
