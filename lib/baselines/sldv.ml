module Exec = Slim.Exec
module Branch = Slim.Branch
module Tracker = Coverage.Tracker
module Explore = Symexec.Explore
module Vclock = Stcg.Vclock
module Testcase = Stcg.Testcase

type config = {
  budget : float;
  horizons : int list;
  solver : Explore.config;
}

let default_config =
  {
    budget = 3600.0;
    horizons = [ 1; 2; 4; 8 ];
    solver =
      { Explore.default_config with Explore.max_paths = 1200; node_budget = 4_000 };
  }

let run ?(config = default_config) ~model (prog : Slim.Ir.program) =
  let ex = Exec.handle prog in
  let tracker = Tracker.create prog in
  let clock = Vclock.create ~budget:config.budget in
  let branches = Branch.sort_by_depth (Exec.branches ex) in
  let testcases = ref [] in
  let timeline = ref [] in
  let next_tc = ref 0 in
  let decision_total = (Tracker.decision tracker).Tracker.total in
  let record_timeline () =
    let covered = (Tracker.decision tracker).Tracker.covered in
    let pct =
      if decision_total = 0 then 100.0
      else 100.0 *. float covered /. float decision_total
    in
    timeline := (Vclock.now clock, pct) :: !timeline
  in
  let execute_testcase inputs fresh_target =
    let before = Tracker.covered_branches tracker in
    let _, _ =
      Exec.run_sequence ~on_event:(Tracker.observe tracker) ex
        (Exec.initial_state ex) inputs
    in
    Vclock.charge_steps clock (List.length inputs);
    let after = Tracker.covered_branches tracker in
    let fresh = Branch.Key_set.diff after before in
    if not (Branch.Key_set.is_empty fresh) then begin
      let tc =
        {
          Testcase.tc_id = !next_tc;
          steps = inputs;
          origin = Testcase.Solved;
          found_at = Vclock.now clock;
          new_branches = Branch.Key_set.elements fresh;
        }
      in
      incr next_tc;
      testcases := tc :: !testcases;
      record_timeline ()
    end;
    ignore fresh_target
  in
  (* Iterative deepening over unroll horizons: each pass attacks every
     still-uncovered branch with a whole-trace query. *)
  let attempted = Hashtbl.create 256 in
  List.iter
    (fun horizon ->
      List.iter
        (fun (b : Branch.t) ->
          if
            (not (Vclock.expired clock))
            && (not (Tracker.is_branch_covered tracker b.key))
            && not (Hashtbl.mem attempted (horizon, b.key))
          then begin
            Hashtbl.replace attempted (horizon, b.key) ();
            let outcome, cost =
              Explore.solve_branch_multi ~config:config.solver prog ~horizon
                ~target:b.key
            in
            Vclock.charge_solve clock cost;
            (* whole-trace queries pay per unrolled step: constraint
               construction and solving grow with the horizon *)
            Vclock.charge clock
              (Vclock.cost_solve_episode *. float_of_int (horizon - 1));
            match outcome with
            | Explore.Sat inputs -> execute_testcase inputs b.key
            | Explore.Unsat | Explore.Unknown -> ()
          end)
        branches)
    config.horizons;
  {
    Stcg.Run_result.tool = "SLDV";
    model;
    tracker;
    testcases = List.rev !testcases;
    timeline = List.rev !timeline;
    markers =
      List.rev_map
        (fun (tc : Testcase.t) -> (tc.Testcase.found_at, tc.Testcase.origin))
        !testcases;
    final_time = Vclock.now clock;
  }
