(** Resumable corpus campaigns over directories of [.stcg] files.

    {!run} discovers every [*.stcg] model in a directory, runs the
    selected tool on each (parallel on a {!Harness.Pool}), and writes
    one self-describing JSON result file per model into a results
    directory.  On re-invocation, models whose stored result matches
    the campaign configuration (tool, budget, seed) are loaded instead
    of re-run — an interrupted campaign resumes with only the missing
    models, and half-written or stale result files simply fall back to
    re-running.  Stored floats use [%.17g] (exact round-trip), and the
    summary is a pure function of the per-model outcomes, so a resumed
    campaign's summary is byte-identical to an uninterrupted run's. *)

type result = {
  kind : string;  (** ["diagram" | "chart" | "program"] *)
  branches : int;
  decision : float;
  condition : float;
  mcdc : float;
  tests : int;
}

type outcome = {
  o_model : string;  (** file basename without [.stcg] *)
  o_file : string;
  o_cached : bool;  (** loaded from the result store, not executed *)
  o_result : (result, Syntax.error) Stdlib.result;
      (** [Error] on parse failure (or an unexpected run failure,
          reported as T900); failures are never cached. *)
}

type t = {
  outcomes : outcome list;  (** one per [.stcg] file, sorted by model name *)
  summary : string;
  executed : int;
  cached : int;
  failed : int;
}

val discover : string -> (string * string) list
(** [(model, path)] for every [*.stcg] in the directory, sorted. *)

val run :
  ?tool:Harness.Experiment.tool ->
  ?budget:float ->
  ?seed:int ->
  ?jobs:int ->
  ?results_dir:string ->
  ?log:(string -> unit) ->
  string ->
  t
(** [run dir] executes the campaign.  Defaults: tool [STCG], budget
    600 (virtual seconds), seed 1, jobs {!Harness.Pool.default_jobs},
    results dir [dir/results], no progress logging.  [log] receives
    human-oriented progress lines (cached/executed counts) that are
    {e not} part of the summary. *)
