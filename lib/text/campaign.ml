(* Corpus campaigns over directories of .stcg files.

   [run] discovers every model in a directory, runs the selected tool
   on each (in parallel on a {!Harness.Pool}), and persists one
   self-describing JSON result file per model.  On re-invocation,
   models whose result file matches the campaign configuration (tool,
   budget, seed) are loaded instead of re-run, so an interrupted
   campaign resumes where it stopped.  The summary is a pure function
   of the per-model outcomes — floats are stored with %.17g and
   round-trip exactly — so a resumed campaign renders byte-identical
   output to an uninterrupted one. *)

module E = Harness.Experiment

type result = {
  kind : string;
  branches : int;
  decision : float;
  condition : float;
  mcdc : float;
  tests : int;
}

type outcome = {
  o_model : string;
  o_file : string;
  o_cached : bool;
  o_result : (result, Syntax.error) Stdlib.result;
}

type t = {
  outcomes : outcome list;  (** one per [.stcg] file, sorted by model name *)
  summary : string;
  executed : int;
  cached : int;
  failed : int;
}

let discover dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".stcg")
  |> List.sort compare
  |> List.map (fun f ->
         (Filename.chop_suffix f ".stcg", Filename.concat dir f))

(* --- the per-model result store ----------------------------------------- *)

let fstr f = Printf.sprintf "%.17g" f

let json_str s =
  let b = Buffer.create (String.length s + 2) in
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' | '\\' -> Buffer.add_char b '\\'; Buffer.add_char b c
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"';
  Buffer.contents b

let result_line ~tool ~budget ~seed model r =
  Printf.sprintf
    "{\"stcg-campaign-result\":1,\"model\":%s,\"tool\":%s,\"budget\":%s,\"seed\":%d,\"kind\":%s,\"branches\":%d,\"decision\":%s,\"condition\":%s,\"mcdc\":%s,\"tests\":%d}\n"
    (json_str model) (json_str (E.tool_name tool)) (fstr budget) seed
    (json_str r.kind) r.branches (fstr r.decision) (fstr r.condition)
    (fstr r.mcdc) r.tests

(* Strict scanner for the flat one-line object [result_line] writes:
   string or number values only.  Returns the key/value list with
   strings unescaped and numbers as their raw text, or [None] on any
   deviation — a truncated or hand-edited file just falls back to
   re-running the model. *)
let scan_line line =
  let exception Bad in
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then line.[!pos] else raise Bad in
  let adv () = incr pos in
  let expect c = if peek () <> c then raise Bad else adv () in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> adv (); Buffer.contents b
      | '\\' ->
        adv ();
        (match peek () with
         | ('"' | '\\' | '/') as c -> Buffer.add_char b c
         | 'n' -> Buffer.add_char b '\n'
         | 't' -> Buffer.add_char b '\t'
         | 'u' ->
           adv (); adv (); adv ();
           (* \u00XX: only control chars are ever encoded *)
           let hex c = int_of_string ("0x" ^ String.make 1 c) in
           Buffer.add_char b (Char.chr ((hex (peek ()) * 16) + hex (line.[!pos + 1])));
           adv ()
         | _ -> raise Bad);
        adv ();
        go ()
      | c -> Buffer.add_char b c; adv (); go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let is_num = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' | 'i' | 'n' | 'f' | 'a' -> true
      | _ -> false
    in
    while !pos < n && is_num line.[!pos] do incr pos done;
    if !pos = start then raise Bad;
    String.sub line start (!pos - start)
  in
  match
    expect '{';
    let fields = ref [] in
    let rec go () =
      let key = string_lit () in
      expect ':';
      let v = if peek () = '"' then string_lit () else number () in
      fields := (key, v) :: !fields;
      match peek () with
      | ',' -> adv (); go ()
      | '}' ->
        adv ();
        while !pos < n do
          if line.[!pos] <> '\n' && line.[!pos] <> ' ' then raise Bad;
          adv ()
        done;
        List.rev !fields
      | _ -> raise Bad
    in
    go ()
  with
  | fields -> Some fields
  | exception _ -> None

let result_path results_dir model = Filename.concat results_dir (model ^ ".json")

let load_result ~tool ~budget ~seed path model =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error _ -> None
  | line -> (
    match scan_line line with
    | None -> None
    | Some fields -> (
      let get k = List.assoc_opt k fields in
      match
        ( get "stcg-campaign-result", get "model", get "tool", get "budget",
          get "seed", get "kind", get "branches", get "decision",
          get "condition", get "mcdc", get "tests" )
      with
      | ( Some "1", Some m, Some t, Some b, Some s, Some kind, Some branches,
          Some decision, Some condition, Some mcdc, Some tests )
        when m = model && t = E.tool_name tool
             && float_of_string_opt b = Some budget
             && int_of_string_opt s = Some seed -> (
        match
          ( int_of_string_opt branches, float_of_string_opt decision,
            float_of_string_opt condition, float_of_string_opt mcdc,
            int_of_string_opt tests )
        with
        | Some branches, Some decision, Some condition, Some mcdc, Some tests
          -> Some { kind; branches; decision; condition; mcdc; tests }
        | _ -> None)
      | _ -> None))

let rec mkdir_p d =
  if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdir_p (Filename.dirname d);
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

(* Atomic store: write to a sibling temp file, then rename — a killed
   campaign leaves either a complete result or a leftover temp that the
   loader ignores, never a half-written result that parses. *)
let write_result ~tool ~budget ~seed path model r =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  output_string oc (result_line ~tool ~budget ~seed model r);
  close_out oc;
  Sys.rename tmp path

(* --- running ------------------------------------------------------------- *)

(* A synthetic registry entry: [Experiment.run_tool] only reads [name]
   and [program], the paper columns are irrelevant for corpus models. *)
let entry_of ~model prog : Models.Registry.entry =
  let zero = (0., 0., 0.) in
  {
    name = model;
    description = "corpus model";
    program = (fun () -> prog);
    source = Models.Registry.Src_program (fun () -> prog);
    paper_branches = 0;
    paper_blocks = 0;
    paper = { p_sldv = zero; p_simcotest = zero; p_stcg = zero };
  }

let execute ~tool ~budget ~seed ~store (model, file) =
  (* documents may carry a (spec ...) section; the coverage campaign
     only runs the source *)
  match Parser.parse_document_file file with
  | Error e -> Error e
  | Ok { Document.source = src; _ } -> (
    match
      let prog = Slim.Ir.renumber_decisions (Source.program_of src) in
      let rr = E.run_tool ~budget ~seed tool (entry_of ~model prog) in
      {
        kind = Source.kind_name src;
        branches = Slim.Branch.count prog;
        decision = Stcg.Run_result.decision_pct rr;
        condition = Stcg.Run_result.condition_pct rr;
        mcdc = Stcg.Run_result.mcdc_pct rr;
        tests = List.length rr.Stcg.Run_result.testcases;
      }
    with
    | r -> store model r; Ok r
    | exception exn ->
      Error
        {
          Syntax.code = "T900";
          pos = { line = 1; col = 1 };
          msg = Printf.sprintf "running %s failed: %s" model
                  (Printexc.to_string exn);
        })

let render ~tool ~budget ~seed outcomes =
  let b = Buffer.create 1024 in
  let ok = List.filter (fun o -> Result.is_ok o.o_result) outcomes in
  let failed = List.length outcomes - List.length ok in
  Buffer.add_string b
    (Printf.sprintf "campaign: %d models (%d ok, %d failed) | tool %s | budget %g | seed %d\n"
       (List.length outcomes) (List.length ok) failed (E.tool_name tool)
       budget seed);
  let name_w =
    List.fold_left (fun w o -> max w (String.length o.o_model)) 5 ok
  in
  if ok <> [] then begin
    Buffer.add_string b
      (Printf.sprintf "%-*s  %-8s %8s %9s %10s %6s %6s\n" name_w "model"
         "kind" "branch" "decision" "condition" "mcdc" "tests");
    List.iter
      (fun o ->
        match o.o_result with
        | Error _ -> ()
        | Ok r ->
          Buffer.add_string b
            (Printf.sprintf "%-*s  %-8s %8d %8.1f%% %9.1f%% %5.1f%% %6d\n"
               name_w o.o_model r.kind r.branches r.decision r.condition
               r.mcdc r.tests))
      ok
  end;
  if failed > 0 then begin
    Buffer.add_string b "parse/run failures:\n";
    List.iter
      (fun o ->
        match o.o_result with
        | Ok _ -> ()
        | Error e ->
          Buffer.add_string b
            (Printf.sprintf "  %s\n"
               (Syntax.error_to_string ~file:o.o_file e)))
      outcomes
  end;
  Buffer.contents b

let run ?(tool = E.STCG) ?(budget = 600.0) ?(seed = 1) ?jobs ?results_dir
    ?(log = fun _ -> ()) dir =
  let models = discover dir in
  let results_dir =
    match results_dir with
    | Some d -> d
    | None -> Filename.concat dir "results"
  in
  mkdir_p results_dir;
  let plan =
    List.map
      (fun (model, file) ->
        match
          load_result ~tool ~budget ~seed (result_path results_dir model) model
        with
        | Some r -> (model, file, Some r)
        | None -> (model, file, None))
      models
  in
  let to_run =
    List.filter_map
      (fun (m, f, c) -> if c = None then Some (m, f) else None)
      plan
  in
  let cached = List.length plan - List.length to_run in
  log
    (Printf.sprintf "campaign: %d models in %s (%d cached, %d to run)"
       (List.length plan) dir cached (List.length to_run));
  let store model r =
    write_result ~tool ~budget ~seed (result_path results_dir model) model r
  in
  let fresh =
    match to_run with
    | [] -> []
    | _ ->
      Harness.Pool.parallel_map ?jobs
        (execute ~tool ~budget ~seed ~store)
        to_run
  in
  let fresh = ref fresh in
  let outcomes =
    List.map
      (fun (model, file, c) ->
        match c with
        | Some r ->
          { o_model = model; o_file = file; o_cached = true; o_result = Ok r }
        | None ->
          let r = List.hd !fresh in
          fresh := List.tl !fresh;
          { o_model = model; o_file = file; o_cached = false; o_result = r })
      plan
  in
  let failed =
    List.length (List.filter (fun o -> Result.is_error o.o_result) outcomes)
  in
  {
    outcomes;
    summary = render ~tool ~budget ~seed outcomes;
    executed = List.length to_run;
    cached;
    failed;
  }
