(** Canonical printer of the [.stcg] textual model format.

    The layout is a pure function of the AST (fixed two-space
    indentation, one structural child per line, leaf forms inline), so
    [print] is byte-deterministic and [print (parse s)] is byte-stable
    for canonical [s].  Floats print with [%.17g] and round-trip every
    IEEE double exactly. *)

exception Print_error of string
(** Raised on sources the format cannot express faithfully (a variable
    whose recorded scope contradicts its declaration section). *)

val print : Source.t -> string
(** Render a source as canonical [.stcg] text ({!Parser.parse_string}
    inverts it structurally). *)

val print_document : Document.t -> string
(** {!print} of the source, then — when the requirement list is
    non-empty — a [(spec ...)] section of one [(req "name" FORMULA)]
    line per requirement ({!Parser.parse_document_string} inverts it).
    A document without requirements prints exactly like its source. *)

(** {1 Leaf-form printers} (single-line, shared with diagnostics) *)

val value_str : Slim.Value.t -> string
val ty_str : Slim.Value.ty -> string
val expr_str : Slim.Ir.expr -> string
