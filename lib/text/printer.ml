(* Canonical printer of the .stcg textual model format.

   The layout is fixed — leaf forms (values, types, expressions, wire
   sources, variable declarations) print on one line; structural forms
   (sections, blocks, statements, states, transitions, nested
   subsystems) open a new indented line per child — so the printed
   bytes are a function of the AST alone: [print (parse s)] is
   byte-stable for any canonical [s], and goldens diff cleanly.

   Floats print with %.17g, which round-trips every IEEE double
   exactly (including inf/-inf/nan and -0), matching the convention of
   {!Harness.Shard}. *)

module M = Slim.Model
module Ir = Slim.Ir
module V = Slim.Value
module C = Stateflow.Chart

exception Print_error of string

let perr fmt = Format.kasprintf (fun s -> raise (Print_error s)) fmt

let fstr f = Printf.sprintf "%.17g" f
let qstr s = "\"" ^ Syntax.escape_string s ^ "\""

(* --- leaf forms (single line, returned as strings) ---------------------- *)

let rec value_str = function
  | V.Bool b -> Printf.sprintf "(b %b)" b
  | V.Int n -> Printf.sprintf "(i %d)" n
  | V.Real f -> Printf.sprintf "(r %s)" (fstr f)
  | V.Vec a ->
    "(v"
    ^ Array.fold_left (fun acc v -> acc ^ " " ^ value_str v) "" a
    ^ ")"

let rec ty_str = function
  | V.Tbool -> "bool"
  | V.Tint { lo; hi } -> Printf.sprintf "(int %d %d)" lo hi
  | V.Treal { lo; hi } -> Printf.sprintf "(real %s %s)" (fstr lo) (fstr hi)
  | V.Tvec (ty, n) -> Printf.sprintf "(vec %s %d)" (ty_str ty) n

let cmpop_str = function
  | Ir.Eq -> "="
  | Ir.Ne -> "<>"
  | Ir.Lt -> "<"
  | Ir.Le -> "<="
  | Ir.Gt -> ">"
  | Ir.Ge -> ">="

let unop_str = function
  | Ir.Neg -> "neg"
  | Ir.Not -> "not"
  | Ir.Abs_op -> "abs"
  | Ir.To_real -> "to-real"
  | Ir.To_int -> "to-int"
  | Ir.Floor -> "floor"
  | Ir.Ceil -> "ceil"

let binop_str = function
  | Ir.Add -> "+"
  | Ir.Sub -> "-"
  | Ir.Mul -> "*"
  | Ir.Div -> "/"
  | Ir.Mod -> "mod"
  | Ir.Min -> "min"
  | Ir.Max -> "max"

let scope_str = function
  | Ir.Input -> "in"
  | Ir.Output -> "out"
  | Ir.State -> "st"
  | Ir.Local -> "lo"

let rec expr_str = function
  | Ir.Const v -> Printf.sprintf "(c %s)" (value_str v)
  | Ir.Var (sc, n) -> Printf.sprintf "(%s %s)" (scope_str sc) (qstr n)
  | Ir.Unop (op, e) -> Printf.sprintf "(%s %s)" (unop_str op) (expr_str e)
  | Ir.Binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (binop_str op) (expr_str a) (expr_str b)
  | Ir.Cmp (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (cmpop_str op) (expr_str a) (expr_str b)
  | Ir.And (a, b) -> Printf.sprintf "(and %s %s)" (expr_str a) (expr_str b)
  | Ir.Or (a, b) -> Printf.sprintf "(or %s %s)" (expr_str a) (expr_str b)
  | Ir.Ite (c, t, e) ->
    Printf.sprintf "(ite %s %s %s)" (expr_str c) (expr_str t) (expr_str e)
  | Ir.Index (v, i) -> Printf.sprintf "(idx %s %s)" (expr_str v) (expr_str i)

let rec lvalue_str = function
  | Ir.Lvar (sc, n) -> Printf.sprintf "(%s %s)" (scope_str sc) (qstr n)
  | Ir.Lindex (lv, e) -> Printf.sprintf "(idx %s %s)" (lvalue_str lv) (expr_str e)

(* A variable declaration inside a section whose keyword implies the
   scope: the scope recorded in the var must match, or the file could
   not parse back to the same AST. *)
let var_str ~section expected (v : Ir.var) =
  if v.Ir.scope <> expected then
    perr "%s section: variable %s has scope %s" section v.Ir.name
      (Ir.scope_name v.Ir.scope);
  Printf.sprintf "(%s %s)" (qstr v.Ir.name) (ty_str v.Ir.ty)

let state_str ~section (v, init) =
  if v.Ir.scope <> Ir.State then
    perr "%s section: variable %s has scope %s" section v.Ir.name
      (Ir.scope_name v.Ir.scope);
  Printf.sprintf "(%s %s %s)" (qstr v.Ir.name) (ty_str v.Ir.ty)
    (value_str init)

(* --- structural forms (buffer + indent) --------------------------------- *)

let ind buf n = Buffer.add_string buf (String.make (2 * n) ' ')

let line buf n s =
  ind buf n;
  Buffer.add_string buf s;
  Buffer.add_char buf '\n'

(* A section of single-line items: "(inputs)" when empty, else one
   item per line. *)
(* Close the most recently opened structural form: the closing paren
   attaches to the previous line. *)
let close buf =
  let len = Buffer.length buf in
  if len > 0 && Buffer.nth buf (len - 1) = '\n' then Buffer.truncate buf (len - 1);
  Buffer.add_string buf ")\n"

let section buf n head items =
  if items = [] then line buf n (Printf.sprintf "(%s)" head)
  else begin
    line buf n (Printf.sprintf "(%s" head);
    List.iter (fun it -> line buf (n + 1) it) items;
    close buf
  end

let rec stmt buf n = function
  | Ir.Assign (lv, e) ->
    line buf n (Printf.sprintf "(set %s %s)" (lvalue_str lv) (expr_str e))
  | Ir.If { id; cond; then_; else_ } ->
    line buf n (Printf.sprintf "(if %d %s" id (expr_str cond));
    line buf (n + 1) "(then";
    List.iter (stmt buf (n + 2)) then_;
    close buf;
    if else_ <> [] then begin
      line buf (n + 1) "(else";
      List.iter (stmt buf (n + 2)) else_;
      close buf
    end;
    close buf
  | Ir.Switch { id; scrut; cases; default } ->
    line buf n (Printf.sprintf "(case %d %s" id (expr_str scrut));
    List.iter
      (fun (lbl, body) ->
        line buf (n + 1) (Printf.sprintf "(of %d" lbl);
        List.iter (stmt buf (n + 2)) body;
        close buf)
      cases;
    line buf (n + 1) "(default";
    List.iter (stmt buf (n + 2)) default;
    close buf;
    close buf

let stmts_section buf n head body =
  if body = [] then line buf n (Printf.sprintf "(%s)" head)
  else begin
    line buf n (Printf.sprintf "(%s" head);
    List.iter (stmt buf (n + 1)) body;
    close buf
  end

(* The five sections shared by (program ...) and (fragment ...). *)
let program_sections buf n ~inputs ~outputs ~states ~locals ~body =
  section buf n "inputs" (List.map (var_str ~section:"inputs" Ir.Input) inputs);
  section buf n "outputs"
    (List.map (var_str ~section:"outputs" Ir.Output) outputs);
  section buf n "states" (List.map (state_str ~section:"states") states);
  section buf n "locals" (List.map (var_str ~section:"locals" Ir.Local) locals);
  stmts_section buf n "body" body

let program buf n (p : Ir.program) =
  line buf n (Printf.sprintf "(program %s" (qstr p.Ir.name));
  program_sections buf (n + 1) ~inputs:p.Ir.inputs ~outputs:p.Ir.outputs
    ~states:p.Ir.states ~locals:p.Ir.locals ~body:p.Ir.body;
  close buf

let fragment buf n (f : Ir.fragment) =
  line buf n (Printf.sprintf "(fragment %s" (qstr f.Ir.f_name));
  program_sections buf (n + 1) ~inputs:f.Ir.f_inputs ~outputs:f.Ir.f_outputs
    ~states:f.Ir.f_states ~locals:f.Ir.f_locals ~body:f.Ir.f_body;
  close buf

(* --- diagrams ----------------------------------------------------------- *)

let src_str = function
  | None -> "_"
  | Some { M.s_block; s_port } -> Printf.sprintf "(%d %d)" s_block s_port

let wires_str srcs =
  "(wires"
  ^ Array.fold_left (fun acc s -> acc ^ " " ^ src_str s) "" srcs
  ^ ")"

(* Simple kinds print inline; container kinds (charts, conditional
   subsystems) open an indented sub-form. *)
let simple_kind_str = function
  | M.Inport (n, ty) -> Some (Printf.sprintf "(inport %s %s)" (qstr n) (ty_str ty))
  | M.Outport n -> Some (Printf.sprintf "(outport %s)" (qstr n))
  | M.Constant v -> Some (Printf.sprintf "(const %s)" (value_str v))
  | M.Gain g -> Some (Printf.sprintf "(gain %s)" (fstr g))
  | M.Sum signs ->
    Some
      ("(sum"
       ^ List.fold_left
           (fun acc s -> acc ^ (match s with M.Plus -> " +" | M.Minus -> " -"))
           "" signs
       ^ ")")
  | M.Product factors ->
    Some
      ("(product"
       ^ List.fold_left
           (fun acc f -> acc ^ (match f with M.Mul -> " *" | M.Div -> " /"))
           "" factors
       ^ ")")
  | M.Min_max (`Min, n) -> Some (Printf.sprintf "(min %d)" n)
  | M.Min_max (`Max, n) -> Some (Printf.sprintf "(max %d)" n)
  | M.Abs -> Some "(abs)"
  | M.Not -> Some "(not)"
  | M.Saturation { lower; upper } ->
    Some (Printf.sprintf "(sat %s %s)" (fstr lower) (fstr upper))
  | M.Relational op -> Some (Printf.sprintf "(rel %s)" (cmpop_str op))
  | M.Logical (op, n) ->
    let ops =
      match op with
      | M.L_and -> "and"
      | M.L_or -> "or"
      | M.L_xor -> "xor"
      | M.L_nand -> "nand"
      | M.L_nor -> "nor"
    in
    Some (Printf.sprintf "(logic %s %d)" ops n)
  | M.Compare_to_const (op, f) ->
    Some (Printf.sprintf "(cmpc %s %s)" (cmpop_str op) (fstr f))
  | M.Switch { cmp; threshold } ->
    Some (Printf.sprintf "(switch %s %s)" (cmpop_str cmp) (fstr threshold))
  | M.Multiport_switch { labels } ->
    Some
      ("(mswitch"
       ^ List.fold_left (fun acc l -> acc ^ Printf.sprintf " %d" l) "" labels
       ^ ")")
  | M.Unit_delay v -> Some (Printf.sprintf "(unit-delay %s)" (value_str v))
  | M.Delay { initial; length } ->
    Some (Printf.sprintf "(delay %s %d)" (value_str initial) length)
  | M.Discrete_integrator { initial; gain; lower; upper } ->
    Some
      (Printf.sprintf "(integ %s %s %s %s)" (fstr initial) (fstr gain)
         (fstr lower) (fstr upper))
  | M.Counter { initial; modulo } ->
    Some (Printf.sprintf "(counter %d %d)" initial modulo)
  | M.Data_store_read n -> Some (Printf.sprintf "(ds-read %s)" (qstr n))
  | M.Data_store_write n -> Some (Printf.sprintf "(ds-write %s)" (qstr n))
  | M.Data_store_write_element n ->
    Some (Printf.sprintf "(ds-write-elem %s)" (qstr n))
  | M.Selector -> Some "(selector)"
  | M.Chart _ | M.Enabled _ | M.If_else _ | M.Case_switch _ -> None

let rec block buf n (b : M.block) =
  match simple_kind_str b.M.kind with
  | Some k ->
    line buf n
      (Printf.sprintf "(block %d %s %s %s)" b.M.id (qstr b.M.bname) k
         (wires_str b.M.srcs))
  | None ->
    line buf n (Printf.sprintf "(block %d %s" b.M.id (qstr b.M.bname));
    (match b.M.kind with
     | M.Chart frag ->
       line buf (n + 1) "(chart-block";
       fragment buf (n + 2) frag;
       close buf
     | M.Enabled { sub; held } ->
       line buf (n + 1)
         (Printf.sprintf "(enabled %s" (if held then "held" else "reset"));
       diagram buf (n + 2) sub;
       close buf
     | M.If_else { then_sys; else_sys } ->
       line buf (n + 1) "(if-else";
       diagram buf (n + 2) then_sys;
       diagram buf (n + 2) else_sys;
       close buf
     | M.Case_switch { cases; default } ->
       line buf (n + 1) "(case-switch";
       List.iter
         (fun (lbl, sub) ->
           line buf (n + 2) (Printf.sprintf "(of %d" lbl);
           diagram buf (n + 3) sub;
           close buf)
         cases;
       (match default with
        | Some sub ->
          line buf (n + 2) "(default";
          diagram buf (n + 3) sub;
          close buf
        | None -> ());
       close buf
     | _ -> assert false);
    line buf (n + 1) (wires_str b.M.srcs);
    close buf

and diagram buf n (m : M.t) =
  line buf n (Printf.sprintf "(diagram %s" (qstr m.M.m_name));
  section buf (n + 1) "stores"
    (List.map
       (fun (name, ty, init) ->
         Printf.sprintf "(%s %s %s)" (qstr name) (ty_str ty) (value_str init))
       m.M.stores);
  line buf (n + 1) "(blocks";
  Array.iter (block buf (n + 2)) m.M.blocks;
  close buf;
  close buf

(* --- charts ------------------------------------------------------------- *)

let rec region buf n (r : C.region) =
  line buf n (Printf.sprintf "(region %s" (qstr r.C.initial));
  List.iter (state buf (n + 1)) r.C.states;
  List.iter (transition buf (n + 1)) r.C.transitions;
  close buf

and state buf n (s : C.state) =
  if s.C.entry = [] && s.C.during = [] && s.C.exit = [] && s.C.children = None
  then line buf n (Printf.sprintf "(state %s)" (qstr s.C.st_name))
  else begin
    line buf n (Printf.sprintf "(state %s" (qstr s.C.st_name));
    if s.C.entry <> [] then stmts_section buf (n + 1) "entry" s.C.entry;
    if s.C.during <> [] then stmts_section buf (n + 1) "during" s.C.during;
    if s.C.exit <> [] then stmts_section buf (n + 1) "exit" s.C.exit;
    (match s.C.children with
     | Some r ->
       line buf (n + 1) "(children";
       region buf (n + 2) r;
       close buf
     | None -> ());
    close buf
  end

and transition buf n (t : C.transition) =
  if t.C.t_action = [] then
    line buf n
      (Printf.sprintf "(trans %s %s (guard %s))" (qstr t.C.src) (qstr t.C.dst)
         (expr_str t.C.guard))
  else begin
    line buf n
      (Printf.sprintf "(trans %s %s (guard %s)" (qstr t.C.src) (qstr t.C.dst)
         (expr_str t.C.guard));
    stmts_section buf (n + 1) "action" t.C.t_action;
    close buf
  end

let chart buf n (c : C.t) =
  line buf n (Printf.sprintf "(chart %s" (qstr c.C.ch_name));
  section buf (n + 1) "inputs"
    (List.map (var_str ~section:"inputs" Ir.Input) c.C.inputs);
  section buf (n + 1) "outputs"
    (List.map (var_str ~section:"outputs" Ir.Output) c.C.outputs);
  section buf (n + 1) "data" (List.map (state_str ~section:"data") c.C.data);
  region buf (n + 1) c.C.top;
  close buf

(* --- entry point -------------------------------------------------------- *)

let print (src : Source.t) =
  let buf = Buffer.create 4096 in
  (match src with
   | Source.Diagram m -> diagram buf 0 m
   | Source.Chart c -> chart buf 0 c
   | Source.Program p -> program buf 0 p);
  Buffer.contents buf

let print_document (d : Document.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (print d.Document.source);
  if d.Document.spec <> [] then
    section buf 0 "spec"
      (List.map
         (fun (name, f) ->
           Printf.sprintf "(req %s %s)" (qstr name) (Spec.Stl.to_string f))
         d.Document.spec);
  Buffer.contents buf
