(** Spec-aware lint over [.stcg] documents: a thin client of the
    abstract analyzer ({!Analysis.Analyzer}), checking each [(req ...)]
    of the [spec] section against the model's statically derived output
    bounds.

    Codes are stable API, like the parser's T-codes and the model
    linter's A-codes:

    {v
    S101  requirement is statically decided: its formula is true (can
          never be falsified) or false (violated by every trace) for
          every output valuation inside the analyzer's bounds
    S102  temporal window exceeds the falsification trace horizon — a
          top-level robustness at step 0 can never be window-complete
    S103  requirement reads a statically constant output signal
    v}

    Findings carry the source position of their [(req ...)] form, so
    {!to_lines} renders them [file:line:col: [Snnn] message] — the same
    shape as {!Syntax.error_to_string}.  Like the A-codes, the findings
    are expectation-gated: the committed golden expectations pin the
    exact output over [test/goldens/*.stcg]. *)

type code =
  | Vacuous_requirement  (** S101 *)
  | Window_exceeds_horizon  (** S102 *)
  | Constant_signal  (** S103 *)

val code_id : code -> string
(** The stable "Snnn" identifier. *)

type finding = {
  s_code : code;
  s_pos : Syntax.pos;  (** position of the [(req ...)] form *)
  s_req : string;  (** requirement name *)
  s_msg : string;
}

val default_horizon : int
(** 48 — the trace length of {!Spec.Falsify.default_config}. *)

val run : ?horizon:int -> ?text:string -> Document.t -> finding list
(** Lint the document's requirements.  [text] is the raw file contents,
    used only to recover the position of each [(req ...)] form (without
    it every finding reports 1:1).  Deterministic order: position, then
    code, then message. *)

val to_lines : file:string -> finding list -> string list
(** ["file:line:col: [Snnn] message"] per finding — no line when the
    list is empty (the A-lint's per-model "clean" line covers that). *)
