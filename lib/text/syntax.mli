(** Lexical layer of the [.stcg] textual model format.

    A restricted s-expression surface: lists, bare atoms and quoted
    strings, with [;] line comments.  Every node carries the 1-based
    line/column of its first character.

    Diagnostic codes are stable API (the parser's contract, like the
    linter's A-codes):

    - [T001] illegal character, [T002] unterminated string, [T003] bad
      escape;
    - [T101] unexpected token, [T102] unexpected end of input (unclosed
      form), [T103] expected atom/string, [T104] bad integer, [T105]
      bad number, [T106] malformed top level;
    - [T201] unknown form or keyword, [T202] wrong form shape or arity,
      [T203] duplicate block id;
    - [T301] invalid model, [T302] invalid chart, [T303] ill-typed
      program;
    - [T401] malformed temporal bounds in a spec formula, [T402]
      unknown (or non-scalar) output signal in a spec formula;
    - [T900] internal error (an unexpected exception, reported, never
      re-raised). *)

type pos = { line : int; col : int }

type error = { code : string; pos : pos; msg : string }

exception Error of error

val err : code:string -> pos:pos -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise {!Error} with a formatted message. *)

val error_to_string : ?file:string -> error -> string
(** ["file:line:col: [CODE] message"]. *)

type sexp =
  | Atom of pos * string
  | Str of pos * string
  | List of pos * sexp list

val pos_of : sexp -> pos

val escape_string : string -> string
(** Escape a name for printing between double quotes; any byte sequence
    survives print → read. *)

val read_one : string -> sexp
(** Read exactly one toplevel form; trailing non-blank input is a
    [T106].  Raises {!Error}. *)

val read_many : string -> sexp list
(** Read every toplevel form to end of input (at least one; empty input
    is a [T106]).  Raises {!Error}. *)

(** {1 Typed accessors} (raise {!Error} with the node's position) *)

val as_list : sexp -> pos * sexp list
val as_atom : sexp -> pos * string
val as_str : sexp -> pos * string
val as_int : sexp -> int
val as_float : sexp -> float
