(* Structural parser of the .stcg textual model format: the inverse of
   {!Printer} over {!Syntax.sexp} trees.

   Every function takes the sexp node it consumes and raises
   {!Syntax.Error} with that node's position on mismatch, so
   diagnostics land on the offending form, not at end of input.  After
   the AST is rebuilt the source is validated with the model layer's
   own checkers (Model.validate / Chart.validate / Ir.type_check);
   their failures are reported as T301/T302/T303 at the top-level
   form's position.  [parse_string] never raises: every exception is
   converted to an [Error _] result. *)

module M = Slim.Model
module Ir = Slim.Ir
module V = Slim.Value
module C = Stateflow.Chart
open Syntax

let err = Syntax.err

(* (head arg...) — return the head atom and the argument list. *)
let headed x =
  match as_list x with
  | pos, Atom (_, head) :: args -> (pos, head, args)
  | pos, _ -> err ~code:"T101" ~pos "expected a (keyword ...) form"

let shape_err pos head = err ~code:"T202" ~pos "malformed (%s ...) form" head

(* --- values and types --------------------------------------------------- *)

let rec value x =
  let pos, head, args = headed x in
  match (head, args) with
  | "b", [ Atom (bpos, b) ] -> (
    match bool_of_string_opt b with
    | Some b -> V.Bool b
    | None -> err ~code:"T202" ~pos:bpos "expected true or false, got %S" b)
  | "i", [ n ] -> V.Int (as_int n)
  | "r", [ f ] -> V.Real (as_float f)
  | "v", elems -> V.Vec (Array.of_list (List.map value elems))
  | ("b" | "i" | "r"), _ -> shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown value form (%s ...)" head

let rec ty x =
  match x with
  | Atom (_, "bool") -> V.Tbool
  | Atom (pos, a) -> err ~code:"T201" ~pos "unknown type %S" a
  | Str (pos, _) -> err ~code:"T101" ~pos "expected a type"
  | List _ -> (
    let pos, head, args = headed x in
    match (head, args) with
    | "int", [ lo; hi ] -> V.Tint { lo = as_int lo; hi = as_int hi }
    | "real", [ lo; hi ] -> V.Treal { lo = as_float lo; hi = as_float hi }
    | "vec", [ elt; n ] -> V.Tvec (ty elt, as_int n)
    | ("int" | "real" | "vec"), _ -> shape_err pos head
    | _ -> err ~code:"T201" ~pos "unknown type form (%s ...)" head)

let cmpop_of = function
  | "=" -> Some Ir.Eq
  | "<>" -> Some Ir.Ne
  | "<" -> Some Ir.Lt
  | "<=" -> Some Ir.Le
  | ">" -> Some Ir.Gt
  | ">=" -> Some Ir.Ge
  | _ -> None

let cmpop x =
  let pos, a = as_atom x in
  match cmpop_of a with
  | Some op -> op
  | None -> err ~code:"T201" ~pos "unknown comparison operator %S" a

let unop_of = function
  | "neg" -> Some Ir.Neg
  | "not" -> Some Ir.Not
  | "abs" -> Some Ir.Abs_op
  | "to-real" -> Some Ir.To_real
  | "to-int" -> Some Ir.To_int
  | "floor" -> Some Ir.Floor
  | "ceil" -> Some Ir.Ceil
  | _ -> None

let binop_of = function
  | "+" -> Some Ir.Add
  | "-" -> Some Ir.Sub
  | "*" -> Some Ir.Mul
  | "/" -> Some Ir.Div
  | "mod" -> Some Ir.Mod
  | "min" -> Some Ir.Min
  | "max" -> Some Ir.Max
  | _ -> None

let scope_of = function
  | "in" -> Some Ir.Input
  | "out" -> Some Ir.Output
  | "st" -> Some Ir.State
  | "lo" -> Some Ir.Local
  | _ -> None

(* --- expressions, lvalues, statements ----------------------------------- *)

let rec expr x =
  let pos, head, args = headed x in
  match (head, args, scope_of head, unop_of head, binop_of head, cmpop_of head)
  with
  | "c", [ v ], _, _, _, _ -> Ir.Const (value v)
  | _, [ n ], Some sc, _, _, _ -> Ir.Var (sc, snd (as_str n))
  | _, [ e ], _, Some op, _, _ -> Ir.Unop (op, expr e)
  | _, [ a; b ], _, _, Some op, _ -> Ir.Binop (op, expr a, expr b)
  | _, [ a; b ], _, _, _, Some op -> Ir.Cmp (op, expr a, expr b)
  | "and", [ a; b ], _, _, _, _ -> Ir.And (expr a, expr b)
  | "or", [ a; b ], _, _, _, _ -> Ir.Or (expr a, expr b)
  | "ite", [ c; t; e ], _, _, _, _ -> Ir.Ite (expr c, expr t, expr e)
  | "idx", [ v; i ], _, _, _, _ -> Ir.Index (expr v, expr i)
  | _, _, Some _, _, _, _ | _, _, _, Some _, _, _
  | _, _, _, _, Some _, _ | _, _, _, _, _, Some _ ->
    shape_err pos head
  | ("c" | "and" | "or" | "ite" | "idx"), _, _, _, _, _ -> shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown expression form (%s ...)" head

let rec lvalue x =
  let pos, head, args = headed x in
  match (head, args, scope_of head) with
  | _, [ n ], Some sc -> Ir.Lvar (sc, snd (as_str n))
  | "idx", [ lv; i ], _ -> Ir.Lindex (lvalue lv, expr i)
  | ("idx" | "in" | "out" | "st" | "lo"), _, _ -> shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown lvalue form (%s ...)" head

let rec stmt x =
  let pos, head, args = headed x in
  match (head, args) with
  | "set", [ lv; e ] -> Ir.Assign (lvalue lv, expr e)
  | "if", id :: cond :: rest ->
    let id = as_int id in
    let cond = expr cond in
    let branch kw = function
      | List (_, Atom (_, k) :: body) when k = kw -> Some (List.map stmt body)
      | _ -> None
    in
    (match rest with
     | [ t ] -> (
       match branch "then" t with
       | Some then_ -> Ir.If { id; cond; then_; else_ = [] }
       | None -> shape_err pos head)
     | [ t; e ] -> (
       match (branch "then" t, branch "else" e) with
       | Some then_, Some else_ -> Ir.If { id; cond; then_; else_ }
       | _ -> shape_err pos head)
     | _ -> shape_err pos head)
  | "case", id :: scrut :: rest ->
    let id = as_int id in
    let scrut = expr scrut in
    let rec arms acc = function
      | [ List (_, Atom (_, "default") :: body) ] ->
        Ir.Switch
          { id; scrut; cases = List.rev acc; default = List.map stmt body }
      | List (_, Atom (_, "of") :: lbl :: body) :: rest ->
        arms ((as_int lbl, List.map stmt body) :: acc) rest
      | _ -> shape_err pos head
    in
    arms [] rest
  | ("set" | "if" | "case"), _ -> shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown statement form (%s ...)" head

(* --- sections ----------------------------------------------------------- *)

(* (head item...) where the section keyword is fixed. *)
let named_section kw x =
  let pos, head, args = headed x in
  if head <> kw then
    err ~code:"T202" ~pos "expected (%s ...) section, got (%s ...)" kw head;
  args

let var_decl scope x =
  match as_list x with
  | _, [ n; t ] -> Ir.var scope (snd (as_str n)) (ty t)
  | pos, _ -> err ~code:"T202" ~pos "expected (\"name\" TYPE)"

let state_decl x =
  match as_list x with
  | _, [ n; t; init ] ->
    (Ir.var Ir.State (snd (as_str n)) (ty t), value init)
  | pos, _ -> err ~code:"T202" ~pos "expected (\"name\" TYPE VALUE)"

(* The five sections shared by (program ...) and (fragment ...). *)
let program_sections pos = function
  | [ ins; outs; states; locals; body ] ->
    ( List.map (var_decl Ir.Input) (named_section "inputs" ins),
      List.map (var_decl Ir.Output) (named_section "outputs" outs),
      List.map state_decl (named_section "states" states),
      List.map (var_decl Ir.Local) (named_section "locals" locals),
      List.map stmt (named_section "body" body) )
  | _ ->
    err ~code:"T202" ~pos
      "expected (inputs ...) (outputs ...) (states ...) (locals ...) (body ...)"

let program_of_args pos name args : Ir.program =
  let inputs, outputs, states, locals, body = program_sections pos args in
  { Ir.name; inputs; outputs; states; locals; body }

let fragment x : Ir.fragment =
  let pos, head, args = headed x in
  match (head, args) with
  | "fragment", name :: rest ->
    let f_name = snd (as_str name) in
    let f_inputs, f_outputs, f_states, f_locals, f_body =
      program_sections pos rest
    in
    { Ir.f_name; f_inputs; f_outputs; f_states; f_locals; f_body }
  | _ -> err ~code:"T202" ~pos "expected a (fragment ...) form"

(* --- diagrams ----------------------------------------------------------- *)

let wire_src x =
  match x with
  | Atom (_, "_") -> None
  | List (_, [ b; p ]) -> Some { M.s_block = as_int b; s_port = as_int p }
  | _ ->
    err ~code:"T202" ~pos:(pos_of x) "expected a (BLOCK PORT) wire source or _"

let store_decl x =
  match as_list x with
  | _, [ n; t; init ] -> (snd (as_str n), ty t, value init)
  | pos, _ -> err ~code:"T202" ~pos "expected (\"name\" TYPE VALUE)"

let rec kind x : M.kind =
  let pos, head, args = headed x in
  match (head, args) with
  | "inport", [ n; t ] -> M.Inport (snd (as_str n), ty t)
  | "outport", [ n ] -> M.Outport (snd (as_str n))
  | "const", [ v ] -> M.Constant (value v)
  | "gain", [ g ] -> M.Gain (as_float g)
  | "sum", signs ->
    M.Sum
      (List.map
         (fun s ->
           match as_atom s with
           | _, "+" -> M.Plus
           | _, "-" -> M.Minus
           | p, a -> err ~code:"T202" ~pos:p "expected + or -, got %S" a)
         signs)
  | "product", factors ->
    M.Product
      (List.map
         (fun f ->
           match as_atom f with
           | _, "*" -> M.Mul
           | _, "/" -> M.Div
           | p, a -> err ~code:"T202" ~pos:p "expected * or /, got %S" a)
         factors)
  | "min", [ n ] -> M.Min_max (`Min, as_int n)
  | "max", [ n ] -> M.Min_max (`Max, as_int n)
  | "abs", [] -> M.Abs
  | "not", [] -> M.Not
  | "sat", [ lo; hi ] -> M.Saturation { lower = as_float lo; upper = as_float hi }
  | "rel", [ op ] -> M.Relational (cmpop op)
  | "logic", [ op; n ] ->
    let lop =
      match as_atom op with
      | _, "and" -> M.L_and
      | _, "or" -> M.L_or
      | _, "xor" -> M.L_xor
      | _, "nand" -> M.L_nand
      | _, "nor" -> M.L_nor
      | p, a -> err ~code:"T201" ~pos:p "unknown logic operator %S" a
    in
    M.Logical (lop, as_int n)
  | "cmpc", [ op; f ] -> M.Compare_to_const (cmpop op, as_float f)
  | "switch", [ op; th ] -> M.Switch { cmp = cmpop op; threshold = as_float th }
  | "mswitch", labels -> M.Multiport_switch { labels = List.map as_int labels }
  | "unit-delay", [ v ] -> M.Unit_delay (value v)
  | "delay", [ v; n ] -> M.Delay { initial = value v; length = as_int n }
  | "integ", [ i; g; lo; hi ] ->
    M.Discrete_integrator
      { initial = as_float i; gain = as_float g; lower = as_float lo;
        upper = as_float hi }
  | "counter", [ i; m ] -> M.Counter { initial = as_int i; modulo = as_int m }
  | "ds-read", [ n ] -> M.Data_store_read (snd (as_str n))
  | "ds-write", [ n ] -> M.Data_store_write (snd (as_str n))
  | "ds-write-elem", [ n ] -> M.Data_store_write_element (snd (as_str n))
  | "selector", [] -> M.Selector
  | "chart-block", [ frag ] -> M.Chart (fragment frag)
  | "enabled", [ h; sub ] ->
    let held =
      match as_atom h with
      | _, "held" -> true
      | _, "reset" -> false
      | p, a -> err ~code:"T202" ~pos:p "expected held or reset, got %S" a
    in
    M.Enabled { sub = diagram sub; held }
  | "if-else", [ t; e ] -> M.If_else { then_sys = diagram t; else_sys = diagram e }
  | "case-switch", arms ->
    let rec cases acc = function
      | [] -> M.Case_switch { cases = List.rev acc; default = None }
      | [ List (_, Atom (_, "default") :: [ sub ]) ] ->
        M.Case_switch { cases = List.rev acc; default = Some (diagram sub) }
      | List (_, [ Atom (_, "of"); lbl; sub ]) :: rest ->
        cases ((as_int lbl, diagram sub) :: acc) rest
      | x :: _ ->
        err ~code:"T202" ~pos:(pos_of x)
          "expected (of LABEL DIAGRAM) or (default DIAGRAM)"
    in
    cases [] arms
  | ( ( "inport" | "outport" | "const" | "gain" | "min" | "max" | "abs" | "not"
      | "sat" | "rel" | "logic" | "cmpc" | "switch" | "unit-delay" | "delay"
      | "integ" | "counter" | "ds-read" | "ds-write" | "ds-write-elem"
      | "selector" | "chart-block" | "enabled" | "if-else" ),
      _ ) ->
    shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown block kind (%s ...)" head

and block x =
  let pos, head, args = headed x in
  if head <> "block" then err ~code:"T202" ~pos "expected a (block ...) form";
  match args with
  | id :: name :: k :: [ wires ] ->
    let id = as_int id in
    let bname = snd (as_str name) in
    let kind = kind k in
    let srcs =
      Array.of_list (List.map wire_src (named_section "wires" wires))
    in
    let want = M.in_arity kind in
    if Array.length srcs <> want then
      err ~code:"T202" ~pos
        "block %d (%s): %d wire sources for %d input ports" id
        (M.kind_name kind) (Array.length srcs) want;
    (pos, { M.id; bname; kind; srcs })
  | _ -> err ~code:"T202" ~pos "expected (block ID \"name\" KIND (wires ...))"

and diagram x : M.t =
  let pos, head, args = headed x in
  match (head, args) with
  | "diagram", [ name; stores; blocks ] ->
    let m_name = snd (as_str name) in
    let stores = List.map store_decl (named_section "stores" stores) in
    let blocks_raw = List.map block (named_section "blocks" blocks) in
    let n = List.length blocks_raw in
    let arr = Array.make n None in
    List.iter
      (fun (bpos, (b : M.block)) ->
        if b.M.id < 0 || b.M.id >= n then
          err ~code:"T202" ~pos:bpos
            "block id %d out of range (%d blocks, ids must be 0..%d)" b.M.id n
            (n - 1);
        match arr.(b.M.id) with
        | Some _ -> err ~code:"T203" ~pos:bpos "duplicate block id %d" b.M.id
        | None -> arr.(b.M.id) <- Some b)
      blocks_raw;
    let blocks = Array.map Option.get arr in
    { M.m_name; blocks; stores }
  | "diagram", _ ->
    err ~code:"T202" ~pos "expected (diagram \"name\" (stores ...) (blocks ...))"
  | _ -> err ~code:"T202" ~pos "expected a (diagram ...) form"

(* --- charts ------------------------------------------------------------- *)

let rec region x : C.region =
  let pos, head, args = headed x in
  match (head, args) with
  | "region", initial :: rest ->
    let initial = snd (as_str initial) in
    let states, transitions =
      List.fold_left
        (fun (sts, trs) item ->
          match headed item with
          | _, "state", _ -> (chart_state item :: sts, trs)
          | _, "trans", _ -> (sts, chart_trans item :: trs)
          | p, h, _ ->
            err ~code:"T201" ~pos:p "expected (state ...) or (trans ...), got (%s ...)" h)
        ([], []) rest
    in
    { C.states = List.rev states; initial; transitions = List.rev transitions }
  | _ -> err ~code:"T202" ~pos "expected a (region \"Initial\" ...) form"

and chart_state x : C.state =
  let pos, _, args = headed x in
  match args with
  | name :: sections ->
    let st_name = snd (as_str name) in
    let entry = ref [] and during = ref [] and exit = ref [] in
    let children = ref None in
    List.iter
      (fun s ->
        match headed s with
        | _, "entry", body -> entry := List.map stmt body
        | _, "during", body -> during := List.map stmt body
        | _, "exit", body -> exit := List.map stmt body
        | _, "children", [ r ] -> children := Some (region r)
        | p, "children", _ -> shape_err p "children"
        | p, h, _ -> err ~code:"T201" ~pos:p "unknown state section (%s ...)" h)
      sections;
    { C.st_name; entry = !entry; during = !during; exit = !exit;
      children = !children }
  | [] -> err ~code:"T202" ~pos "expected (state \"Name\" ...)"

and chart_trans x : C.transition =
  let pos, _, args = headed x in
  match args with
  | src :: dst :: List (_, [ Atom (_, "guard"); g ]) :: rest ->
    let t_action =
      match rest with
      | [] -> []
      | [ act ] -> List.map stmt (named_section "action" act)
      | _ -> err ~code:"T202" ~pos "malformed (trans ...) form"
    in
    { C.src = snd (as_str src); dst = snd (as_str dst); guard = expr g;
      t_action }
  | _ ->
    err ~code:"T202" ~pos
      "expected (trans \"Src\" \"Dst\" (guard EXPR) [(action ...)])"

let chart_of x : C.t =
  let pos, head, args = headed x in
  match (head, args) with
  | "chart", [ name; ins; outs; data; top ] ->
    {
      C.ch_name = snd (as_str name);
      inputs = List.map (var_decl Ir.Input) (named_section "inputs" ins);
      outputs = List.map (var_decl Ir.Output) (named_section "outputs" outs);
      data = List.map state_decl (named_section "data" data);
      top = region top;
    }
  | _ ->
    err ~code:"T202" ~pos
      "expected (chart \"name\" (inputs ...) (outputs ...) (data ...) (region ...))"

(* --- spec section -------------------------------------------------------- *)

(* The requirement grammar of the optional (spec ...) section — the
   reader of {!Spec.Stl.to_string}.  Signal references are resolved
   against the model's output interface while parsing, so T402 lands on
   the exact (sig ...) form; temporal bounds are checked on the operator
   form (T401). *)

let scalar_output ~outputs pos name =
  match List.assoc_opt name outputs with
  | None -> err ~code:"T402" ~pos "unknown output signal %S" name
  | Some (V.Tvec _) ->
    err ~code:"T402" ~pos "output signal %S is a vector (not addressable)" name
  | Some _ -> ()

let rec spec_sig ~outputs x : Spec.Stl.sig_expr =
  let pos, head, args = headed x in
  match (head, args) with
  | "sig", [ n ] ->
    let npos, name = as_str n in
    scalar_output ~outputs npos name;
    Spec.Stl.Sig name
  | "c", [ f ] -> Spec.Stl.Const (as_float f)
  | "+", [ a; b ] -> Spec.Stl.Add (spec_sig ~outputs a, spec_sig ~outputs b)
  | "-", [ a; b ] -> Spec.Stl.Sub (spec_sig ~outputs a, spec_sig ~outputs b)
  | "*", [ a; b ] -> Spec.Stl.Mul (spec_sig ~outputs a, spec_sig ~outputs b)
  | "neg", [ e ] -> Spec.Stl.Neg (spec_sig ~outputs e)
  | "abs", [ e ] -> Spec.Stl.Abs (spec_sig ~outputs e)
  | "min", [ a; b ] -> Spec.Stl.Min (spec_sig ~outputs a, spec_sig ~outputs b)
  | "max", [ a; b ] -> Spec.Stl.Max (spec_sig ~outputs a, spec_sig ~outputs b)
  | ("sig" | "c" | "+" | "-" | "*" | "neg" | "abs" | "min" | "max"), _ ->
    shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown signal expression form (%s ...)" head

let spec_cmp_of = function
  | "<=" -> Some Spec.Stl.Le
  | "<" -> Some Spec.Stl.Lt
  | ">=" -> Some Spec.Stl.Ge
  | ">" -> Some Spec.Stl.Gt
  | "=" -> Some Spec.Stl.Eq
  | _ -> None

let spec_bounds pos op a b =
  let a = as_int a and b = as_int b in
  if not (Spec.Stl.bounds_ok a b) then
    err ~code:"T401" ~pos "%s[%d,%d]: malformed temporal bounds (need 0 <= a <= b)"
      op a b;
  (a, b)

let rec spec_formula ~outputs x : Spec.Stl.formula =
  let pos, head, args = headed x in
  match (head, args, spec_cmp_of head) with
  | _, [ l; r ], Some op ->
    Spec.Stl.Atom (op, spec_sig ~outputs l, spec_sig ~outputs r)
  | "not", [ f ], _ -> Spec.Stl.Not (spec_formula ~outputs f)
  | "and", [ f; g ], _ ->
    Spec.Stl.And (spec_formula ~outputs f, spec_formula ~outputs g)
  | "or", [ f; g ], _ ->
    Spec.Stl.Or (spec_formula ~outputs f, spec_formula ~outputs g)
  | "implies", [ f; g ], _ ->
    Spec.Stl.Implies (spec_formula ~outputs f, spec_formula ~outputs g)
  | "always", [ a; b; f ], _ ->
    let a, b = spec_bounds pos head a b in
    Spec.Stl.Always (a, b, spec_formula ~outputs f)
  | "eventually", [ a; b; f ], _ ->
    let a, b = spec_bounds pos head a b in
    Spec.Stl.Eventually (a, b, spec_formula ~outputs f)
  | "until", [ a; b; f; g ], _ ->
    let a, b = spec_bounds pos head a b in
    Spec.Stl.Until (a, b, spec_formula ~outputs f, spec_formula ~outputs g)
  | _, _, Some _ -> shape_err pos head
  | ("not" | "and" | "or" | "implies" | "always" | "eventually" | "until"), _, _
    ->
    shape_err pos head
  | _ -> err ~code:"T201" ~pos "unknown formula form (%s ...)" head

let spec_req ~outputs x =
  let pos, head, args = headed x in
  match (head, args) with
  | "req", [ name; f ] ->
    (pos, snd (as_str name), spec_formula ~outputs f)
  | "req", _ -> shape_err pos head
  | _ -> err ~code:"T201" ~pos "expected a (req ...) form, got (%s ...)" head

let spec_block ~outputs x =
  let reqs = List.map (spec_req ~outputs) (named_section "spec" x) in
  let seen = Hashtbl.create 8 in
  List.map
    (fun (pos, name, f) ->
      if Hashtbl.mem seen name then
        err ~code:"T203" ~pos "duplicate requirement name %S" name;
      Hashtbl.add seen name ();
      (name, f))
    reqs

(* --- top level ---------------------------------------------------------- *)

let validated pos src =
  (match src with
   | Source.Diagram m -> (
     try M.validate m
     with M.Invalid_model msg -> err ~code:"T301" ~pos "invalid model: %s" msg)
   | Source.Chart c -> (
     try C.validate c
     with C.Invalid_chart msg -> err ~code:"T302" ~pos "invalid chart: %s" msg)
   | Source.Program p -> (
     try Ir.type_check p
     with Ir.Ill_typed msg -> err ~code:"T303" ~pos "ill-typed program: %s" msg));
  src

let source_of_sexp x =
  let pos, head, args = headed x in
  match head with
  | "diagram" -> validated pos (Source.Diagram (diagram x))
  | "chart" -> validated pos (Source.Chart (chart_of x))
  | "program" -> (
    match args with
    | name :: rest ->
      validated pos
        (Source.Program (program_of_args pos (snd (as_str name)) rest))
    | [] -> err ~code:"T202" ~pos "expected (program \"name\" ...)")
  | _ ->
    err ~code:"T201" ~pos
      "expected a top-level (diagram|chart|program ...), got (%s ...)" head

let parse_string s =
  match source_of_sexp (Syntax.read_one s) with
  | src -> Ok src
  | exception Syntax.Error e -> Error e
  | exception exn ->
    (* the no-uncaught-exception contract: anything unexpected is
       reported as a diagnostic, never re-raised *)
    Error
      {
        code = "T900";
        pos = { line = 1; col = 1 };
        msg = "internal error: " ^ Printexc.to_string exn;
      }

(* A document is one source form optionally followed by one (spec ...)
   section.  The source is parsed and validated first so the spec's
   signal references can be resolved against the compiled program's
   output interface. *)
let document_of_forms = function
  | [] -> assert false (* read_many errors on empty input *)
  | src :: rest ->
    let source = source_of_sexp src in
    let spec =
      match rest with
      | [] -> []
      | [ sp ] ->
        let prog = Source.program_of source in
        let outputs =
          List.map (fun (v : Ir.var) -> (v.Ir.name, v.Ir.ty)) prog.Ir.outputs
        in
        spec_block ~outputs sp
      | _ :: extra :: _ ->
        err ~code:"T106" ~pos:(pos_of extra)
          "trailing input after (spec ...) section"
    in
    { Document.source; spec }

let parse_document_string s =
  match document_of_forms (Syntax.read_many s) with
  | doc -> Ok doc
  | exception Syntax.Error e -> Error e
  | exception exn ->
    Error
      {
        code = "T900";
        pos = { line = 1; col = 1 };
        msg = "internal error: " ^ Printexc.to_string exn;
      }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_file path =
  match read_file path with
  | s -> parse_string s
  | exception Sys_error msg ->
    Error { code = "T101"; pos = { line = 1; col = 1 }; msg }

let parse_document_file path =
  match read_file path with
  | s -> parse_document_string s
  | exception Sys_error msg ->
    Error { code = "T101"; pos = { line = 1; col = 1 }; msg }
