type t = {
  source : Source.t;
  spec : (string * Spec.Stl.formula) list;
}

let of_source source = { source; spec = [] }

let equal a b =
  Source.equal a.source b.source && Stdlib.compare a.spec b.spec = 0
