(* A model as authored: the three source shapes the registry and the
   fuzz generator produce, and exactly what a .stcg file stores. *)

type t =
  | Diagram of Slim.Model.t
  | Chart of Stateflow.Chart.t
  | Program of Slim.Ir.program

let name = function
  | Diagram m -> m.Slim.Model.m_name
  | Chart c -> c.Stateflow.Chart.ch_name
  | Program p -> p.Slim.Ir.name

let kind_name = function
  | Diagram _ -> "diagram"
  | Chart _ -> "chart"
  | Program _ -> "program"

let program_of = function
  | Diagram m -> Slim.Compile.to_program m
  | Chart c -> Stateflow.Sf_compile.to_program c
  | Program p -> p

(* Structural equality via polymorphic compare: sources are pure data
   (no closures), and [compare] treats nan = nan, which is what a
   round-trip check needs. *)
let equal a b = Stdlib.compare a b = 0

let of_registry (src : Models.Registry.source) =
  match src with
  | Models.Registry.Src_diagram f -> Diagram (f ())
  | Models.Registry.Src_chart f -> Chart (f ())
  | Models.Registry.Src_program f -> Program (f ())

let of_spec = function
  | Fuzzer.Gen.M_diagram s -> Diagram (Fuzzer.Gen.to_model s)
  | Fuzzer.Gen.M_chart c -> Chart (Fuzzer.Gen.chart_of_spec c)
