(* Lexical layer of the .stcg textual model format: a position-tracking
   s-expression reader with stable diagnostic codes.

   The surface syntax is a restricted s-expression language: lists,
   bare atoms (keywords, numbers, operators) and double-quoted strings
   (names).  Comments run from ';' to end of line.  Every node carries
   the 1-based line/column of its first character, so the structural
   parser ({!Parser}) can point diagnostics at the offending form. *)

type pos = { line : int; col : int }

type error = { code : string; pos : pos; msg : string }

exception Error of error

(* Diagnostic codes are stable API, like the linter's A-codes:
     T0xx  lexical      T001 illegal character, T002 unterminated
                        string, T003 bad escape
     T1xx  syntactic    T101 unexpected token, T102 unexpected end of
                        input (unclosed form), T103 expected atom or
                        string, T104 bad integer, T105 bad number,
                        T106 malformed top level
     T2xx  structural   T201 unknown form or keyword, T202 wrong form
                        shape or arity, T203 duplicate block id
     T3xx  semantic     T301 invalid model, T302 invalid chart,
                        T303 ill-typed program
     T4xx  spec         T401 malformed temporal bounds, T402 unknown
                        or non-scalar output signal
     T900  internal     unexpected exception, reported not raised *)

let err ~code ~pos fmt =
  Format.kasprintf (fun msg -> raise (Error { code; pos; msg })) fmt

let error_to_string ?file e =
  let prefix = match file with Some f -> f ^ ":" | None -> "" in
  Printf.sprintf "%s%d:%d: [%s] %s" prefix e.pos.line e.pos.col e.code e.msg

type sexp =
  | Atom of pos * string
  | Str of pos * string
  | List of pos * sexp list

let pos_of = function Atom (p, _) | Str (p, _) | List (p, _) -> p

(* --- string escaping ---------------------------------------------------- *)

(* Printable ASCII minus '"' and '\\' passes through; everything else
   uses the OCaml-style escapes the reader understands, so any byte
   sequence survives a round trip. *)
let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 32 || Char.code c > 126 ->
        Buffer.add_string buf (Printf.sprintf "\\%03d" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* --- reader ------------------------------------------------------------- *)

type reader = {
  src : string;
  mutable idx : int;
  mutable line : int;
  mutable col : int;
}

let reader src = { src; idx = 0; line = 1; col = 1 }
let at_end r = r.idx >= String.length r.src
let peek r = r.src.[r.idx]
let rpos r = { line = r.line; col = r.col }

let advance r =
  (if r.src.[r.idx] = '\n' then begin
     r.line <- r.line + 1;
     r.col <- 1
   end
   else r.col <- r.col + 1);
  r.idx <- r.idx + 1

let is_atom_char = function
  | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' -> false
  | _ -> true

let rec skip_blanks r =
  if at_end r then ()
  else
    match peek r with
    | ' ' | '\t' | '\n' | '\r' ->
      advance r;
      skip_blanks r
    | ';' ->
      while (not (at_end r)) && peek r <> '\n' do
        advance r
      done;
      skip_blanks r
    | _ -> ()

let read_string_body r =
  let start = rpos r in
  advance r (* opening quote *);
  let buf = Buffer.create 16 in
  let rec loop () =
    if at_end r then err ~code:"T002" ~pos:start "unterminated string"
    else
      match peek r with
      | '"' ->
        advance r;
        Buffer.contents buf
      | '\\' ->
        let epos = rpos r in
        advance r;
        if at_end r then err ~code:"T003" ~pos:epos "truncated escape"
        else begin
          (match peek r with
           | '"' -> Buffer.add_char buf '"'; advance r
           | '\\' -> Buffer.add_char buf '\\'; advance r
           | 'n' -> Buffer.add_char buf '\n'; advance r
           | 't' -> Buffer.add_char buf '\t'; advance r
           | 'r' -> Buffer.add_char buf '\r'; advance r
           | '0' .. '9' ->
             let digit () =
               if at_end r then err ~code:"T003" ~pos:epos "truncated escape"
               else
                 match peek r with
                 | '0' .. '9' as c ->
                   advance r;
                   Char.code c - Char.code '0'
                 | c -> err ~code:"T003" ~pos:epos "bad escape digit %C" c
             in
             let n = (100 * digit ()) + (10 * digit ()) + digit () in
             if n > 255 then err ~code:"T003" ~pos:epos "escape \\%d out of range" n;
             Buffer.add_char buf (Char.chr n)
           | c -> err ~code:"T003" ~pos:epos "unknown escape \\%c" c);
          loop ()
        end
      | '\n' -> err ~code:"T002" ~pos:start "unterminated string"
      | c ->
        Buffer.add_char buf c;
        advance r;
        loop ()
  in
  loop ()

let rec read_sexp r =
  skip_blanks r;
  if at_end r then err ~code:"T102" ~pos:(rpos r) "unexpected end of input"
  else
    let pos = rpos r in
    match peek r with
    | '(' ->
      advance r;
      let items = ref [] in
      let rec items_loop () =
        skip_blanks r;
        if at_end r then
          err ~code:"T102" ~pos "unclosed '(' (unexpected end of input)"
        else if peek r = ')' then advance r
        else begin
          items := read_sexp r :: !items;
          items_loop ()
        end
      in
      items_loop ();
      List (pos, List.rev !items)
    | ')' -> err ~code:"T101" ~pos "unexpected ')'"
    | '"' -> Str (pos, read_string_body r)
    | c when is_atom_char c ->
      let start = r.idx in
      while (not (at_end r)) && is_atom_char (peek r) do
        advance r
      done;
      Atom (pos, String.sub r.src start (r.idx - start))
    | c -> err ~code:"T001" ~pos "illegal character %C" c

(* [read_one s] reads exactly one toplevel form (plus trailing blanks /
   comments); anything after it is a T106. *)
let read_one s =
  let r = reader s in
  skip_blanks r;
  if at_end r then err ~code:"T106" ~pos:(rpos r) "empty input";
  let x = read_sexp r in
  skip_blanks r;
  if not (at_end r) then
    err ~code:"T106" ~pos:(rpos r) "trailing input after top-level form";
  x

(* [read_many s] reads toplevel forms to end of input — the document
   reader's entry point (a source form optionally followed by a spec
   section). *)
let read_many s =
  let r = reader s in
  skip_blanks r;
  if at_end r then err ~code:"T106" ~pos:(rpos r) "empty input";
  let rec loop acc =
    skip_blanks r;
    if at_end r then List.rev acc else loop (read_sexp r :: acc)
  in
  loop []

(* --- typed accessors used by the structural parser ---------------------- *)

let as_list = function
  | List (p, items) -> (p, items)
  | x -> err ~code:"T101" ~pos:(pos_of x) "expected a parenthesized form"

let as_atom = function
  | Atom (p, a) -> (p, a)
  | x -> err ~code:"T103" ~pos:(pos_of x) "expected a keyword atom"

let as_str = function
  | Str (p, s) -> (p, s)
  | x -> err ~code:"T103" ~pos:(pos_of x) "expected a quoted name"

let as_int x =
  let p, a = as_atom x in
  match int_of_string_opt a with
  | Some n -> n
  | None -> err ~code:"T104" ~pos:p "bad integer literal %S" a

(* Floats accept everything %.17g can print, including inf and nan. *)
let as_float x =
  let p, a = as_atom x in
  match float_of_string_opt a with
  | Some f -> f
  | None -> err ~code:"T105" ~pos:p "bad number literal %S" a
