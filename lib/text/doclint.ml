module Stl = Spec.Stl
module Analyzer = Analysis.Analyzer
module Absval = Analysis.Absval
module Dom = Solver.Dom

type code = Vacuous_requirement | Window_exceeds_horizon | Constant_signal

let code_id = function
  | Vacuous_requirement -> "S101"
  | Window_exceeds_horizon -> "S102"
  | Constant_signal -> "S103"

type finding = {
  s_code : code;
  s_pos : Syntax.pos;
  s_req : string;
  s_msg : string;
}

let default_horizon = 48

(* --- interval evaluation of signal expressions ------------------------ *)

(* Output bounds come from the analyzer's final recording pass: every
   path through one step joined, so they hold at {e every} step of every
   conforming trace — which is what makes the temporal collapse below
   sound. *)

type iv = { lo : float; hi : float }

let top = { lo = neg_infinity; hi = infinity }

(* inf - inf (and friends) surface as nan; widen the offending bound *)
let lo_of v = if Float.is_nan v then neg_infinity else v
let hi_of v = if Float.is_nan v then infinity else v

let of_absval = function
  | Absval.Scalar (Dom.Dint { lo; hi }) ->
    { lo = float_of_int lo; hi = float_of_int hi }
  | Absval.Scalar (Dom.Dreal { lo; hi }) -> { lo; hi }
  | Absval.Scalar (Dom.Dbool { can_true; can_false }) -> (
    match (can_true, can_false) with
    | true, false -> { lo = 1.0; hi = 1.0 }
    | false, true -> { lo = 0.0; hi = 0.0 }
    | _ -> { lo = 0.0; hi = 1.0 })
  | Absval.Vector _ -> top

let rec eval out = function
  | Stl.Sig n -> (
    match List.assoc_opt n out with
    | Some a -> of_absval a
    | None -> top)
  | Stl.Const c -> { lo = c; hi = c }
  | Stl.Add (a, b) ->
    let x = eval out a and y = eval out b in
    { lo = lo_of (x.lo +. y.lo); hi = hi_of (x.hi +. y.hi) }
  | Stl.Sub (a, b) ->
    let x = eval out a and y = eval out b in
    { lo = lo_of (x.lo -. y.hi); hi = hi_of (x.hi -. y.lo) }
  | Stl.Mul (a, b) ->
    let x = eval out a and y = eval out b in
    let p1 = x.lo *. y.lo
    and p2 = x.lo *. y.hi
    and p3 = x.hi *. y.lo
    and p4 = x.hi *. y.hi in
    if
      Float.is_nan p1 || Float.is_nan p2 || Float.is_nan p3 || Float.is_nan p4
    then top
    else
      { lo = Float.min (Float.min p1 p2) (Float.min p3 p4);
        hi = Float.max (Float.max p1 p2) (Float.max p3 p4) }
  | Stl.Neg a ->
    let x = eval out a in
    { lo = -.x.hi; hi = -.x.lo }
  | Stl.Abs a ->
    let x = eval out a in
    if x.lo >= 0.0 then x
    else if x.hi <= 0.0 then { lo = -.x.hi; hi = -.x.lo }
    else { lo = 0.0; hi = Float.max (-.x.lo) x.hi }
  | Stl.Min (a, b) ->
    let x = eval out a and y = eval out b in
    { lo = Float.min x.lo y.lo; hi = Float.min x.hi y.hi }
  | Stl.Max (a, b) ->
    let x = eval out a and y = eval out b in
    { lo = Float.max x.lo y.lo; hi = Float.max x.hi y.hi }

(* --- three-valued formula evaluation ---------------------------------- *)

type b3 = T | F | U

let bnot = function T -> F | F -> T | U -> U

let band a b =
  match (a, b) with F, _ | _, F -> F | T, T -> T | _ -> U

let bor a b = bnot (band (bnot a) (bnot b))

(* Atoms are only decided when every bound involved is finite: the
   analyzer collapses a possibly-nan real to the full line, so finite
   bounds prove the concrete value is an ordinary number and the
   classical comparison below is total. *)
let finite v = Float.is_finite v.lo && Float.is_finite v.hi

let atom cmp l r =
  if not (finite l && finite r) then U
  else
    match cmp with
    | Stl.Le -> if l.hi <= r.lo then T else if l.lo > r.hi then F else U
    | Stl.Lt -> if l.hi < r.lo then T else if l.lo >= r.hi then F else U
    | Stl.Ge -> if l.lo >= r.hi then T else if l.hi < r.lo then F else U
    | Stl.Gt -> if l.lo > r.hi then T else if l.hi <= r.lo then F else U
    | Stl.Eq ->
      if l.lo = l.hi && r.lo = r.hi && l.lo = r.lo then T
      else if l.hi < r.lo || r.hi < l.lo then F else U

(* The bounds are step-invariant, so a subformula decided here holds
   with that same value at every step — and clamped windows are never
   empty — which collapses the temporal operators: [always]/[eventually]
   of a constant is that constant, and [until f g] needs [f] at the
   evaluation point itself plus [g] at some witness, i.e. their
   conjunction. *)
let rec formula out = function
  | Stl.Atom (cmp, l, r) -> atom cmp (eval out l) (eval out r)
  | Stl.Not f -> bnot (formula out f)
  | Stl.And (f, g) -> band (formula out f) (formula out g)
  | Stl.Or (f, g) -> bor (formula out f) (formula out g)
  | Stl.Implies (f, g) -> bor (bnot (formula out f)) (formula out g)
  | Stl.Always (_, _, f) | Stl.Eventually (_, _, f) -> formula out f
  | Stl.Until (_, _, f, g) -> band (formula out f) (formula out g)

(* --- findings --------------------------------------------------------- *)

let constant_of = function
  | Absval.Scalar (Dom.Dint { lo; hi }) when lo = hi ->
    Some (string_of_int lo)
  | Absval.Scalar (Dom.Dreal { lo; hi }) when lo = hi && Float.is_finite lo ->
    Some (Fmt.str "%g" lo)
  | Absval.Scalar (Dom.Dbool { can_true = true; can_false = false }) ->
    Some "true"
  | Absval.Scalar (Dom.Dbool { can_true = false; can_false = true }) ->
    Some "false"
  | _ -> None

(* Recover the source position of each [(req "name" ...)] form.  The
   parser validated [text] already, so a re-read cannot fail — but a
   caller may lint a document built programmatically, hence the
   fallbacks. *)
let req_positions text =
  match Syntax.read_many text with
  | exception Syntax.Error _ -> []
  | forms ->
    List.concat_map
      (function
        | Syntax.List (_, Syntax.Atom (_, "spec") :: reqs) ->
          List.filter_map
            (function
              | Syntax.List (pos, Syntax.Atom (_, "req") :: name :: _) -> (
                match name with
                | Syntax.Str (_, n) | Syntax.Atom (_, n) -> Some (n, pos)
                | Syntax.List _ -> None)
              | _ -> None)
            reqs
        | _ -> [])
      forms

let compare_finding a b =
  match compare (a.s_pos.Syntax.line, a.s_pos.Syntax.col)
          (b.s_pos.Syntax.line, b.s_pos.Syntax.col)
  with
  | 0 -> (
    match compare (code_id a.s_code) (code_id b.s_code) with
    | 0 -> compare a.s_msg b.s_msg
    | c -> c)
  | c -> c

let run ?(horizon = default_horizon) ?(text = "") (doc : Document.t) =
  if doc.Document.spec = [] then []
  else begin
    let prog = Source.program_of doc.Document.source in
    let r = Analyzer.analyze prog in
    let out = r.Analyzer.r_out in
    let positions = req_positions text in
    let pos_of name =
      Option.value ~default:{ Syntax.line = 1; col = 1 }
        (List.assoc_opt name positions)
    in
    let findings = ref [] in
    let add code name msg =
      findings := { s_code = code; s_pos = pos_of name; s_req = name;
                    s_msg = msg } :: !findings
    in
    List.iter
      (fun (name, f) ->
        let h = Stl.horizon f in
        if h >= horizon then
          add Window_exceeds_horizon name
            (Fmt.str
               "requirement %S needs %d trace steps but the falsification \
                horizon is %d" name (h + 1) horizon);
        List.iter
          (fun s ->
            match List.assoc_opt s out with
            | Some a -> (
              match constant_of a with
              | Some v ->
                add Constant_signal name
                  (Fmt.str
                     "requirement %S reads output %S, statically constant \
                      at %s" name s v)
              | None -> ())
            | None -> ())
          (Stl.signals f);
        match formula out f with
        | T ->
          add Vacuous_requirement name
            (Fmt.str
               "requirement %S is statically true (analyzer output bounds \
                decide every atom); it can never be falsified" name)
        | F ->
          add Vacuous_requirement name
            (Fmt.str
               "requirement %S is statically false (analyzer output bounds \
                decide every atom); every trace violates it" name)
        | U -> ())
      doc.Document.spec;
    List.sort_uniq compare_finding !findings
  end

let to_lines ~file findings =
  List.map
    (fun f ->
      Fmt.str "%s:%d:%d: [%s] %s" file f.s_pos.Syntax.line f.s_pos.Syntax.col
        (code_id f.s_code) f.s_msg)
    findings
