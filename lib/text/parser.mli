(** Parser of the [.stcg] textual model format.

    Structural inverse of {!Printer}: for any source [m],
    [parse_string (Printer.print m) = Ok m'] with [m'] semantically
    identical to [m], and parsing canonical text is byte-idempotent
    under re-printing.

    Diagnostics carry a stable code ({!Syntax.error}, [T001]–[T900]),
    a 1-based line/column position, and a message.  [parse_string]
    never raises: lexer/reader/shape errors and the final semantic
    validation (T301 invalid diagram, T302 invalid chart, T303
    ill-typed program) are all returned as [Error _]; any unexpected
    exception is reported as [T900]. *)

val parse_string : string -> (Source.t, Syntax.error) result

val parse_file : string -> (Source.t, Syntax.error) result
(** Read a file and parse it.  Unreadable files report [T101] at 1:1. *)
