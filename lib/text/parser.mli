(** Parser of the [.stcg] textual model format.

    Structural inverse of {!Printer}: for any source [m],
    [parse_string (Printer.print m) = Ok m'] with [m'] semantically
    identical to [m], and parsing canonical text is byte-idempotent
    under re-printing.

    Diagnostics carry a stable code ({!Syntax.error}, [T001]–[T900]),
    a 1-based line/column position, and a message.  [parse_string]
    never raises: lexer/reader/shape errors and the final semantic
    validation (T301 invalid diagram, T302 invalid chart, T303
    ill-typed program) are all returned as [Error _]; any unexpected
    exception is reported as [T900]. *)

val parse_string : string -> (Source.t, Syntax.error) result
(** Exactly one source form; a trailing [(spec ...)] section is a
    [T106] here — use {!parse_document_string} for full files. *)

val parse_file : string -> (Source.t, Syntax.error) result
(** Read a file and parse it.  Unreadable files report [T101] at 1:1. *)

val parse_document_string : string -> (Document.t, Syntax.error) result
(** A full [.stcg] document: one source form, optionally followed by a
    [(spec (req "name" FORMULA) ...)] section.  Spec diagnostics:
    [T401] malformed temporal bounds ([always]/[eventually]/[until]
    windows need [0 <= a <= b]), [T402] unknown or vector-typed output
    signal in a [(sig ...)] reference, [T203] duplicate requirement
    name.  The source must validate before the spec is checked. *)

val parse_document_file : string -> (Document.t, Syntax.error) result
