(** A complete [.stcg] file: one model source, optionally followed by a
    [spec] section of named STL requirements over the model's outputs.

    The textual form is

    {v
    (diagram|chart|program ...)
    (spec
      (req "name" FORMULA)
      ...)
    v}

    where [FORMULA] is the one-line s-expression syntax of
    {!Spec.Stl.to_string}.  A file without a [spec] section is a
    document with an empty requirement list — the two print
    byte-identically, so plain sources stay untouched. *)

type t = {
  source : Source.t;
  spec : (string * Spec.Stl.formula) list;
      (** requirement name → formula, file order; names are unique *)
}

val of_source : Source.t -> t
(** A document with no requirements. *)

val equal : t -> t -> bool
(** {!Source.equal} on the source plus structural (nan-tolerant)
    equality of the requirement list. *)
