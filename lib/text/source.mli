(** A model as authored — the three source shapes a [.stcg] file can
    hold: a SLIM block diagram, a standalone Stateflow-like chart, or a
    raw step program. *)

type t =
  | Diagram of Slim.Model.t
  | Chart of Stateflow.Chart.t
  | Program of Slim.Ir.program

val name : t -> string
val kind_name : t -> string
(** ["diagram" | "chart" | "program"]. *)

val program_of : t -> Slim.Ir.program
(** Compile to the executable step program ({!Slim.Compile} /
    {!Stateflow.Sf_compile}; raw programs pass through).  May raise
    {!Slim.Model.Invalid_model}, {!Stateflow.Chart.Invalid_chart} or
    {!Slim.Ir.Ill_typed} on sources built outside {!Parser}. *)

val equal : t -> t -> bool
(** Structural equality (nan-tolerant: [compare] based). *)

val of_registry : Models.Registry.source -> t
(** Build the source of a registry benchmark model. *)

val of_spec : Fuzzer.Gen.model_spec -> t
(** View a fuzz-generated model spec as a printable source. *)
