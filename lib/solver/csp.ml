module Value = Slim.Value
module Smap = Map.Make (String)

type problem = {
  p_vars : (string * Value.ty) list;
  p_constraint : Term.t;
}

type result =
  | Sat of Value.t Smap.t
  | Unsat
  | Unknown

type stats = {
  mutable nodes : int;
  mutable propagation_rounds : int;
  mutable samples_tried : int;
  mutable term_size : int;
}

exception Out_of_budget

(* internal search outcome *)
type outcome =
  | Found of Value.t Smap.t
  | Exhausted  (** subtree fully refuted *)
  | Gave_up  (** real-valued leaf could not be decided *)

let assignment_of_store (store : Hc4.store) vars pick =
  List.fold_left
    (fun acc (x, _) ->
      let d = Hc4.get store x in
      Smap.add x (pick d) acc)
    Smap.empty vars

let pick_mid = function
  | Dom.Dbool { can_true; _ } -> Value.Bool can_true
  | Dom.Dint { lo; hi } -> Value.Int (lo + ((hi - lo) / 2))
  | Dom.Dreal { lo; hi } -> Value.Real (lo +. ((hi -. lo) /. 2.0))

let pick_lo = function
  | Dom.Dbool { can_false; _ } -> Value.Bool (not can_false)
  | Dom.Dint { lo; _ } -> Value.Int lo
  | Dom.Dreal { lo; _ } -> Value.Real lo

let pick_hi = function
  | Dom.Dbool { can_true; _ } -> Value.Bool can_true
  | Dom.Dint { hi; _ } -> Value.Int hi
  | Dom.Dreal { hi; _ } -> Value.Real hi

let pick_zero d =
  let z =
    match d with
    | Dom.Dbool _ -> Value.Bool false
    | Dom.Dint _ -> Value.Int 0
    | Dom.Dreal _ -> Value.Real 0.0
  in
  if Dom.member d z then z else pick_mid d

let pick_random rng = function
  | Dom.Dbool { can_true; can_false } ->
    if can_true && can_false then Value.Bool (Random.State.bool rng)
    else Value.Bool can_true
  | Dom.Dint { lo; hi } -> Value.Int (lo + Random.State.int rng (hi - lo + 1))
  | Dom.Dreal { lo; hi } ->
    Value.Real (if hi > lo then lo +. Random.State.float rng (hi -. lo) else lo)

let satisfied constraint_ assignment =
  match Term.eval (fun x -> Smap.find x assignment) constraint_ with
  | Value.Bool b -> b
  | _ -> false
  | exception (Value.Type_error _ | Not_found) -> false

let default_budget = 20_000

let tel_calls = Telemetry.Counter.make "solver.solve_calls"
let tel_sat = Telemetry.Counter.make "solver.sat"
let tel_unsat = Telemetry.Counter.make "solver.unsat"
let tel_unknown = Telemetry.Counter.make "solver.unknown"
let tel_nodes = Telemetry.Counter.make "solver.nodes"
let tel_splits = Telemetry.Counter.make "solver.splits"
let tel_h_nodes = Telemetry.Histogram.make "solver.nodes_per_call"
let tel_h_term = Telemetry.Histogram.make "solver.term_size"

let tel_result (res, (stats : stats)) =
  if Telemetry.enabled () then begin
    Telemetry.Counter.incr tel_calls;
    Telemetry.Counter.incr
      (match res with
       | Sat _ -> tel_sat
       | Unsat -> tel_unsat
       | Unknown -> tel_unknown);
    Telemetry.Counter.add tel_nodes stats.nodes;
    Telemetry.Histogram.observe tel_h_nodes stats.nodes;
    Telemetry.Histogram.observe tel_h_term stats.term_size
  end;
  (res, stats)

let solve ?(node_budget = default_budget) ?(hc4_memo = true) ?rng problem =
  let rng =
    match rng with Some r -> r | None -> Random.State.make [| 0x57C6 |]
  in
  let stats =
    { nodes = 0; propagation_rounds = 0; samples_tried = 0;
      term_size = Term.size problem.p_constraint }
  in
  let vars = problem.p_vars in
  let constraint_ = problem.p_constraint in
  (* trivial cases *)
  match Term.is_const constraint_ with
  | Some (Value.Bool false) -> tel_result (Unsat, stats)
  | Some (Value.Bool true) ->
    let assignment =
      List.fold_left
        (fun acc (x, ty) -> Smap.add x (Value.default_of_ty ty) acc)
        Smap.empty vars
    in
    tel_result (Sat assignment, stats)
  | Some _ -> tel_result (Unsat, stats)
  | None ->
    let try_samples store =
      let attempts =
        [ pick_mid; pick_lo; pick_hi; pick_zero ]
        @ List.init 4 (fun _ -> pick_random rng)
      in
      let rec go = function
        | [] -> None
        | pick :: rest ->
          stats.samples_tried <- stats.samples_tried + 1;
          let a = assignment_of_store store vars pick in
          if satisfied constraint_ a then Some a else go rest
      in
      go attempts
    in
    let choose_split store =
      (* widest unresolved domain first; booleans count as width 1 *)
      let best = ref None in
      List.iter
        (fun (x, _) ->
          let d = Hc4.get store x in
          let w = Dom.width d in
          if w > 0.0 then
            match !best with
            | Some (_, _, bw) when bw >= w -> ()
            | _ -> (
              match Dom.split d with
              | Some (l, r) -> best := Some (x, (l, r), w)
              | None -> ()))
        vars;
      !best
    in
    let rec dfs store =
      stats.nodes <- stats.nodes + 1;
      if stats.nodes > node_budget then raise Out_of_budget;
      match Hc4.propagate store constraint_ with
      | `Unsat -> Exhausted
      | `Ok -> (
        stats.propagation_rounds <- stats.propagation_rounds + 1;
        match try_samples store with
        | Some a -> Found a
        | None -> (
          match choose_split store with
          | None ->
            (* all domains are points (or below the real width floor)
               and sampling failed: cannot decide this leaf *)
            let all_exact =
              List.for_all
                (fun (x, _) ->
                  match Hc4.get store x with
                  | Dom.Dreal _ -> false
                  | _ -> true)
                vars
            in
            if all_exact then Exhausted else Gave_up
          | Some (x, (l, r), _) -> (
            Telemetry.Counter.incr tel_splits;
            let sl = Hc4.copy_store store in
            Hc4.set_dom sl x l;
            match dfs sl with
            | Found a -> Found a
            | left_out -> (
              let sr = Hc4.copy_store store in
              Hc4.set_dom sr x r;
              match dfs sr with
              | Found a -> Found a
              | Exhausted ->
                if left_out = Gave_up then Gave_up else Exhausted
              | Gave_up -> Gave_up))))
    in
    let store =
      Hc4.create_store ~memo:hc4_memo
        (List.map (fun (x, ty) -> (x, Dom.of_ty ty)) vars)
    in
    tel_result
      (match dfs store with
       | Found a -> (Sat a, stats)
       | Exhausted -> (Unsat, stats)
       | Gave_up -> (Unknown, stats)
       | exception Out_of_budget -> (Unknown, stats)
       | exception Dom.Empty -> (Unsat, stats))

let pp_result ppf = function
  | Sat a ->
    Fmt.pf ppf "sat {%a}"
      Fmt.(
        list ~sep:comma (fun ppf (k, v) -> Fmt.pf ppf "%s=%a" k Value.pp v))
      (Smap.bindings a)
  | Unsat -> Fmt.string ppf "unsat"
  | Unknown -> Fmt.string ppf "unknown"
