(** Shared interval arithmetic over the {!Dom} lattice.

    A [num] is a closed float interval uniform over int and real
    operands ([nint] records that every member is integral, which lets
    bounds tighten to the contained integers).  The operations are the
    conservative (over-approximating) transfer functions used both by
    the HC4 propagator ({!Hc4}) and by the abstract interpreter in
    [lib/analysis]: for any values [x] in [a] and [y] in [b], the
    concrete result of the operation on [x] and [y] lies in the
    returned interval.

    Degenerate (point) intervals are handled exactly where the concrete
    operation is a function of its operands: [nmod] on two singletons
    returns the singleton of {!Slim.Value.modulo}'s MATLAB-style
    result, and [nabs]/[nneg] are exact on points by construction.

    Constructors raise {!Dom.Empty} when the interval would be empty
    ([nlo > nhi]). *)

type num = { nlo : float; nhi : float; nint : bool }

val ntop : num
(** A huge two-sided interval ([±1e18], non-integer) used where no
    better bound is available.  Note this is a solver-internal top:
    clients that must over-approximate arbitrary runtime floats (the
    static analyzer) widen to infinities instead. *)

val nmk : bool -> float -> float -> num
(** [nmk nint lo hi]; raises {!Dom.Empty} if [lo > hi]. *)

val nadd : num -> num -> num
val nsub : num -> num -> num
val nmul : num -> num -> num

val ndiv : num -> num -> num
(** Division; returns {!ntop} when the divisor interval contains zero
    (concrete division by exactly zero raises, other small divisors are
    a solver concern only — see the module comment on {!ntop}). *)

val nmod : num -> num -> num
(** MATLAB-style modulo: the result's sign follows the divisor.  Exact
    on point operands (matching {!Slim.Value.modulo}); otherwise
    one-sided when the divisor's sign is known. *)

val nneg : num -> num
val nabs : num -> num
val nmin : num -> num -> num
val nmax : num -> num -> num
val nfloor : num -> num
val nceil : num -> num

val ntrunc : num -> num
(** Truncation toward zero (the [To_int] coercion). *)

val nmeet : num -> num -> num
(** Intersection; raises {!Dom.Empty} when disjoint. *)

val num_of_dom : Dom.t -> num
(** Booleans coerce to the 0/1 interval. *)

val dom_of_num : num -> Dom.t
(** Integer bounds tighten inward to the contained integers and
    saturate at [±1e18] (see {!Dom.int_of_float_up}). *)

val num_of_value : Slim.Value.t -> num
(** Point interval of a scalar value. *)

(** {1 Three-valued booleans} *)

type bool3 = { bt : bool; bf : bool }
(** [bt]: the expression may be true; [bf]: it may be false. *)

val b3_top : bool3
val b3_true : bool3
val b3_false : bool3

val b3_of_dom : Dom.t -> bool3
(** Ints and reals coerce as [(<> 0)]. *)

val dom_of_b3 : bool3 -> Dom.t
(** Raises {!Dom.Empty} on the (unsatisfiable) neither-value case. *)

val b3_and : bool3 -> bool3 -> bool3
val b3_or : bool3 -> bool3 -> bool3
val b3_not : bool3 -> bool3

val b3_meet : bool3 -> bool3 -> bool3
(** Raises {!Dom.Empty} when the intersection is empty. *)

val b3_join : bool3 -> bool3 -> bool3
