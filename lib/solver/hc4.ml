(* HC4-style constraint propagation: forward interval evaluation and
   backward projection over solver terms.  All rules are conservative
   (over-approximating), so propagation never loses solutions; final
   answers are confirmed by concrete evaluation in [Csp].

   Terms are hash-consed DAGs, so the same subterm reaches [fwd]/[bwd]
   many times per round through different parents.  Both directions are
   memoized per store, keyed on the term id and stamped with the store's
   generation — a counter bumped on every domain narrowing, i.e. a
   cheap identity for the current box.  A forward memo hit returns
   exactly what recomputation against the unchanged box would; a
   backward entry is recorded only when the call completed without
   narrowing anything, so skipping it on the same box is a no-op by
   construction.  Memoized and unmemoized propagation are therefore
   bit-identical, which [create_store ~memo:false] exposes for tests. *)

module Value = Slim.Value
module Ir = Slim.Ir

type store = {
  doms : (string, Dom.t) Hashtbl.t;
  mutable changed : bool;
  memo : bool;
  mutable generation : int;  (* bumped on every narrowing *)
  fwd_memo : (int, int * Dom.t) Hashtbl.t;  (* term id -> generation, dom *)
  bwd_memo : (int * Dom.t, int) Hashtbl.t;
      (* (term id, requirement) -> generation at which the call was a no-op *)
}

let create_store ?(memo = true) bindings =
  let doms = Hashtbl.create 16 in
  List.iter (fun (x, d) -> Hashtbl.replace doms x d) bindings;
  {
    doms;
    changed = false;
    memo;
    generation = 0;
    fwd_memo = Hashtbl.create (if memo then 64 else 1);
    bwd_memo = Hashtbl.create (if memo then 64 else 1);
  }

(* Memo entries are only valid for the exact box they were computed
   against, so a copy may keep them — but the copy gets fresh tables:
   the branches diverge, and sharing mutable tables across stores whose
   generations advance independently would let one branch's entries
   shadow the other's.  Callers that mutate [doms] directly after
   copying (the DFS split) must go through [set_dom] so the generation
   advances past every cached stamp. *)
let copy_store store =
  {
    store with
    doms = Hashtbl.copy store.doms;
    fwd_memo = Hashtbl.copy store.fwd_memo;
    bwd_memo = Hashtbl.copy store.bwd_memo;
  }

let get store x =
  match Hashtbl.find_opt store.doms x with
  | Some d -> d
  | None -> Value.type_error "unknown solver variable %s" x

(* Unconditional domain replacement (search splits): invalidates memos. *)
let set_dom store x d =
  Hashtbl.replace store.doms x d;
  store.generation <- store.generation + 1

let narrow store x d =
  let old = get store x in
  let d' = Dom.meet old d in
  if not (Dom.equal d' old) then begin
    Hashtbl.replace store.doms x d';
    store.changed <- true;
    store.generation <- store.generation + 1
  end

(* Numeric intervals and three-valued booleans come from the shared
   {!Interval} module (also used by the abstract interpreter in
   [lib/analysis]); the [num]/[bool3] record fields are used unqualified
   throughout this file. *)
open Interval

let tel_memo_hits = Telemetry.Counter.make "solver.hc4_memo_hits"

(* --- forward evaluation ---------------------------------------------- *)

(* Every term evaluates to a Dom. *)
let rec fwd store (t : Term.t) : Dom.t =
  match t.Term.node with
  | Term.Cst _ | Term.Tvar _ -> fwd_node store t
  | _ ->
    if not store.memo then fwd_node store t
    else begin
      match Hashtbl.find_opt store.fwd_memo t.Term.id with
      | Some (g, d) when g = store.generation ->
        Telemetry.Counter.incr tel_memo_hits;
        d
      | _ ->
        (* raising computations are not cached: they re-raise on the
           next visit exactly as recomputation would *)
        let d = fwd_node store t in
        Hashtbl.replace store.fwd_memo t.Term.id (store.generation, d);
        d
    end

and fwd_node store (t : Term.t) : Dom.t =
  match t.Term.node with
  | Term.Cst (Value.Bool b) -> Dom.booln b
  | Term.Cst (Value.Int i) -> Dom.intn i i
  | Term.Cst (Value.Real r) -> Dom.realn r r
  | Term.Cst (Value.Vec _) ->
    Value.type_error "solver: vector constant in scalar position"
  | Term.Tvar x -> get store x
  | Term.Tunop (op, e) ->
    let d = fwd store e in
    (match op with
     | Ir.Not -> dom_of_b3 (b3_not (b3_of_dom d))
     | Ir.Neg -> dom_of_num (nneg (num_of_dom d))
     | Ir.Abs_op -> dom_of_num (nabs (num_of_dom d))
     | Ir.To_real ->
       let n = num_of_dom d in
       Dom.realn n.nlo n.nhi
     | Ir.To_int -> dom_of_num (ntrunc (num_of_dom d))
     | Ir.Floor -> dom_of_num (nfloor (num_of_dom d))
     | Ir.Ceil -> dom_of_num (nceil (num_of_dom d)))
  | Term.Tbinop (op, a, b) ->
    let na = num_of_dom (fwd store a) in
    let nb = num_of_dom (fwd store b) in
    let r =
      match op with
      | Ir.Add -> nadd na nb
      | Ir.Sub -> nsub na nb
      | Ir.Mul -> nmul na nb
      | Ir.Div -> ndiv na nb
      | Ir.Mod -> nmod na nb
      | Ir.Min -> nmin na nb
      | Ir.Max -> nmax na nb
    in
    dom_of_num r
  | Term.Tcmp (op, a, b) ->
    let da = fwd store a and db = fwd store b in
    (match da, db with
     | Dom.Dbool x, Dom.Dbool y ->
       (* boolean equality/inequality *)
       let both_sing = Dom.is_singleton da && Dom.is_singleton db in
       let eq_forced = both_sing && x.can_true = y.can_true in
       let b3 =
         match op with
         | Ir.Eq ->
           if both_sing then if eq_forced then b3_true else b3_false
           else b3_top
         | Ir.Ne ->
           if both_sing then if eq_forced then b3_false else b3_true
           else b3_top
         | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge ->
           Value.type_error "solver: ordering on booleans"
       in
       dom_of_b3 b3
     | _, _ ->
       let na = num_of_dom da and nb = num_of_dom db in
       let b3 =
         match op with
         | Ir.Lt ->
           if na.nhi < nb.nlo then b3_true
           else if na.nlo >= nb.nhi then b3_false
           else b3_top
         | Ir.Le ->
           if na.nhi <= nb.nlo then b3_true
           else if na.nlo > nb.nhi then b3_false
           else b3_top
         | Ir.Gt ->
           if na.nlo > nb.nhi then b3_true
           else if na.nhi <= nb.nlo then b3_false
           else b3_top
         | Ir.Ge ->
           if na.nlo >= nb.nhi then b3_true
           else if na.nhi < nb.nlo then b3_false
           else b3_top
         | Ir.Eq ->
           if na.nlo = na.nhi && nb.nlo = nb.nhi && na.nlo = nb.nlo then
             b3_true
           else if na.nhi < nb.nlo || nb.nhi < na.nlo then b3_false
           else b3_top
         | Ir.Ne ->
           if na.nhi < nb.nlo || nb.nhi < na.nlo then b3_true
           else if na.nlo = na.nhi && nb.nlo = nb.nhi && na.nlo = nb.nlo then
             b3_false
           else b3_top
       in
       dom_of_b3 b3)
  | Term.Tand (a, b) ->
    dom_of_b3 (b3_and (b3_of_dom (fwd store a)) (b3_of_dom (fwd store b)))
  | Term.Tor (a, b) ->
    dom_of_b3 (b3_or (b3_of_dom (fwd store a)) (b3_of_dom (fwd store b)))
  | Term.Tnot e -> dom_of_b3 (b3_not (b3_of_dom (fwd store e)))
  | Term.Tite (c, a, b) ->
    let bc = b3_of_dom (fwd store c) in
    if not bc.bf then fwd store a
    else if not bc.bt then fwd store b
    else Dom.hull (fwd store a) (fwd store b)

let can_meet a b =
  match Dom.meet a b with _ -> true | exception Dom.Empty -> false

(* --- backward projection ---------------------------------------------- *)

let negate_cmp = function
  | Ir.Eq -> Ir.Ne
  | Ir.Ne -> Ir.Eq
  | Ir.Lt -> Ir.Ge
  | Ir.Le -> Ir.Gt
  | Ir.Gt -> Ir.Le
  | Ir.Ge -> Ir.Lt

(* Narrow the variables under [t] so that its value may lie in [req]. *)
let rec bwd store (t : Term.t) (req : Dom.t) : unit =
  match t.Term.node with
  | Term.Cst _ | Term.Tvar _ -> bwd_node store t req
  | _ ->
    if not store.memo then bwd_node store t req
    else begin
      let key = (t.Term.id, req) in
      match Hashtbl.find_opt store.bwd_memo key with
      | Some g when g = store.generation -> Telemetry.Counter.incr tel_memo_hits
      | _ ->
        let g0 = store.generation in
        bwd_node store t req;
        (* record only completed no-op calls; a raising call never gets
           here, a narrowing call fails the generation check *)
        if store.generation = g0 then Hashtbl.replace store.bwd_memo key g0
    end

and bwd_node store (t : Term.t) (req : Dom.t) : unit =
  match t.Term.node with
  | Term.Cst v -> if not (can_meet req (fwd store t)) then raise Dom.Empty else ignore v
  | Term.Tvar x -> narrow store x req
  | Term.Tnot e -> bwd store e (dom_of_b3 (b3_not (b3_of_dom req)))
  | Term.Tand (a, b) ->
    let r = b3_of_dom req in
    if not r.bf then begin
      (* must be true: both conjuncts true *)
      bwd store a (Dom.booln true);
      bwd store b (Dom.booln true)
    end
    else if not r.bt then begin
      (* must be false: if one side is forced true, the other is false *)
      let ba = b3_of_dom (fwd store a) in
      let bb = b3_of_dom (fwd store b) in
      if not ba.bf then bwd store b (Dom.booln false)
      else if not bb.bf then bwd store a (Dom.booln false)
    end
  | Term.Tor (a, b) ->
    let r = b3_of_dom req in
    if not r.bt then begin
      bwd store a (Dom.booln false);
      bwd store b (Dom.booln false)
    end
    else if not r.bf then begin
      let ba = b3_of_dom (fwd store a) in
      let bb = b3_of_dom (fwd store b) in
      if not ba.bt then bwd store b (Dom.booln true)
      else if not bb.bt then bwd store a (Dom.booln true)
    end
  | Term.Tcmp (op, a, b) ->
    let r = b3_of_dom req in
    if not r.bf then bwd_cmp store op a b
    else if not r.bt then bwd_cmp store (negate_cmp op) a b
  | Term.Tite (c, a, b) ->
    let bc = b3_of_dom (fwd store c) in
    if not bc.bf then bwd store a req
    else if not bc.bt then bwd store b req
    else begin
      let fa = fwd store a and fb = fwd store b in
      let a_ok = can_meet fa req and b_ok = can_meet fb req in
      match a_ok, b_ok with
      | false, false -> raise Dom.Empty
      | false, true ->
        bwd store c (Dom.booln false);
        bwd store b req
      | true, false ->
        bwd store c (Dom.booln true);
        bwd store a req
      | true, true -> ()
    end
  | Term.Tunop (op, e) ->
    (match op with
     | Ir.Not -> bwd store e (dom_of_b3 (b3_not (b3_of_dom req)))
     | Ir.Neg -> bwd_num store e (nneg (num_of_dom req))
     | Ir.Abs_op ->
       (* |e| in [r.lo, r.hi] means e in -[r.lo,r.hi] union [r.lo,r.hi];
          e's current sign picks the branch (or the hull if unknown).
          r.hi < 0 empties via [nmk]: an absolute value is never
          negative. *)
       let r = num_of_dom req in
       let rlo = Float.max 0.0 r.nlo in
       let e_now = num_of_dom (fwd store e) in
       let lo, hi =
         if e_now.nlo >= 0.0 then (rlo, r.nhi)
         else if e_now.nhi <= 0.0 then (-.r.nhi, -.rlo)
         else (-.r.nhi, r.nhi)
       in
       bwd_num store e (nmk r.nint lo hi)
     | Ir.To_real ->
       (match fwd store e with
        | Dom.Dbool _ ->
          let r = num_of_dom req in
          let bt = r.nhi >= 1.0 && 1.0 >= r.nlo in
          let bf = r.nlo <= 0.0 && 0.0 <= r.nhi in
          bwd store e (dom_of_b3 (b3_meet (b3_of_dom (fwd store e)) { bt; bf }))
        | _ ->
          let r = num_of_dom req in
          bwd_num store e { r with nint = false })
     | Ir.To_int ->
       (match fwd store e with
        | Dom.Dbool _ ->
          let r = num_of_dom req in
          let bt = r.nhi >= 1.0 && 1.0 >= r.nlo in
          let bf = r.nlo <= 0.0 && 0.0 <= r.nhi in
          bwd store e (dom_of_b3 (b3_meet (b3_of_dom (fwd store e)) { bt; bf }))
        | _ ->
          let r = num_of_dom req in
          (* e truncates into [lo,hi]: e in (lo-1, hi+1) *)
          bwd_num store e (nmk false (r.nlo -. 1.0) (r.nhi +. 1.0)))
     | Ir.Floor ->
       let r = num_of_dom req in
       bwd_num store e (nmk false r.nlo (r.nhi +. 1.0))
     | Ir.Ceil ->
       let r = num_of_dom req in
       bwd_num store e (nmk false (r.nlo -. 1.0) r.nhi))
  | Term.Tbinop (op, a, b) ->
    let r = num_of_dom req in
    let na = num_of_dom (fwd store a) in
    let nb = num_of_dom (fwd store b) in
    (match op with
     | Ir.Add ->
       bwd_num store a (nsub r nb);
       bwd_num store b (nsub r na)
     | Ir.Sub ->
       bwd_num store a (nadd r nb);
       bwd_num store b (nsub na r)
     | Ir.Mul ->
       if not (nb.nlo <= 0.0 && 0.0 <= nb.nhi) then
         bwd_num store a (ndiv r nb);
       if not (na.nlo <= 0.0 && 0.0 <= na.nhi) then
         bwd_num store b (ndiv r na)
     | Ir.Div ->
       (* a / b = r  =>  a in r*b (real case; skip for ints: truncation) *)
       if not (na.nint && nb.nint) then bwd_num store a (nmul r nb)
     | Ir.Mod ->
       (* No useful projection onto the dividend (mod wraps), but the
          result's sign follows the divisor: a result bounded away from
          zero pins the divisor's sign, and |result| < |divisor| bounds
          its magnitude from below. *)
       let one = if r.nint && nb.nint then 1.0 else 0.0 in
       if r.nlo > 0.0 then
         bwd_num store b { nb with nlo = Float.max nb.nlo (r.nlo +. one) }
       else if r.nhi < 0.0 then
         bwd_num store b { nb with nhi = Float.min nb.nhi (r.nhi -. one) }
     | Ir.Min ->
       (* min(a,b) >= lo(r): both >= lo(r); if one side's lo exceeds
          hi(r), the other must be <= hi(r) *)
       bwd_num store a { ntop with nlo = r.nlo; nint = na.nint };
       bwd_num store b { ntop with nlo = r.nlo; nint = nb.nint };
       if na.nlo > r.nhi then bwd_num store b { nb with nhi = Float.min nb.nhi r.nhi };
       if nb.nlo > r.nhi then bwd_num store a { na with nhi = Float.min na.nhi r.nhi }
     | Ir.Max ->
       bwd_num store a { ntop with nhi = r.nhi; nint = na.nint };
       bwd_num store b { ntop with nhi = r.nhi; nint = nb.nint };
       if na.nhi < r.nlo then bwd_num store b { nb with nlo = Float.max nb.nlo r.nlo };
       if nb.nhi < r.nlo then bwd_num store a { na with nlo = Float.max na.nlo r.nlo })

and bwd_num store t n =
  (* only push numeric requirements when they actually constrain *)
  let d =
    if n.nint then
      Dom.Dint
        {
          lo = int_of_float (Float.max (-1e9) (Float.ceil n.nlo));
          hi = int_of_float (Float.min 1e9 (Float.floor n.nhi));
        }
    else Dom.Dreal { lo = n.nlo; hi = n.nhi }
  in
  (match fwd store t with
   | Dom.Dbool _ ->
     (* a boolean in numeric position: constrain via 0/1 coercion *)
     let bt = n.nhi >= 1.0 && 1.0 >= n.nlo in
     let bf = n.nlo <= 0.0 && 0.0 <= n.nhi in
     bwd store t (dom_of_b3 { bt; bf })
   | _ -> bwd store t d)

and bwd_cmp store op a b =
  let da = fwd store a and db = fwd store b in
  match da, db with
  | Dom.Dbool x, Dom.Dbool y ->
    (match op with
     | Ir.Eq ->
       if Dom.is_singleton da then bwd store b da;
       if Dom.is_singleton db then bwd store a db
     | Ir.Ne ->
       if Dom.is_singleton da then
         bwd store b (dom_of_b3 (b3_not { bt = x.can_true; bf = x.can_false }));
       if Dom.is_singleton db then
         bwd store a (dom_of_b3 (b3_not { bt = y.can_true; bf = y.can_false }))
     | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge ->
       Value.type_error "solver: ordering on booleans")
  | _, _ ->
    let na = num_of_dom da and nb = num_of_dom db in
    let eps_lt hi = if na.nint && nb.nint then hi -. 1.0 else hi in
    let eps_gt lo = if na.nint && nb.nint then lo +. 1.0 else lo in
    (match op with
     | Ir.Le ->
       bwd_num store a { na with nhi = Float.min na.nhi nb.nhi };
       bwd_num store b { nb with nlo = Float.max nb.nlo na.nlo }
     | Ir.Lt ->
       bwd_num store a { na with nhi = Float.min na.nhi (eps_lt nb.nhi) };
       bwd_num store b { nb with nlo = Float.max nb.nlo (eps_gt na.nlo) }
     | Ir.Ge ->
       bwd_num store a { na with nlo = Float.max na.nlo nb.nlo };
       bwd_num store b { nb with nhi = Float.min nb.nhi na.nhi }
     | Ir.Gt ->
       bwd_num store a { na with nlo = Float.max na.nlo (eps_gt nb.nlo) };
       bwd_num store b { nb with nhi = Float.min nb.nhi (eps_lt na.nhi) }
     | Ir.Eq ->
       let m = nmeet na nb in
       bwd_num store a { m with nint = na.nint };
       bwd_num store b { m with nint = nb.nint }
     | Ir.Ne ->
       (* only prune when one side is an integer singleton at a boundary *)
       let prune this other =
         if other.nlo = other.nhi && this.nint && other.nint then begin
           let k = other.nlo in
           if this.nlo = k then Some { this with nlo = k +. 1.0 }
           else if this.nhi = k then Some { this with nhi = k -. 1.0 }
           else None
         end
         else None
       in
       (match prune na nb with
        | Some na' -> bwd_num store a na'
        | None -> ());
       (match prune nb na with
        | Some nb' -> bwd_num store b nb'
        | None -> ()))

(* --- fixpoint ---------------------------------------------------------- *)

let default_max_rounds = 30

let tel_rounds = Telemetry.Counter.make "solver.hc4_rounds"

(* Propagate [t] = true.  Returns [`Unsat] if the store becomes empty. *)
let propagate ?(max_rounds = default_max_rounds) store (t : Term.t) =
  let rounds = ref 0 in
  let finish r =
    Telemetry.Counter.add tel_rounds !rounds;
    r
  in
  try
    let continue_ = ref true in
    while !continue_ && !rounds < max_rounds do
      store.changed <- false;
      bwd store t (Dom.booln true);
      (match fwd store t with
       | d ->
         let b = b3_of_dom d in
         if not b.bt then raise Dom.Empty
       | exception Dom.Empty -> raise Dom.Empty);
      continue_ := store.changed;
      incr rounds
    done;
    finish `Ok
  with Dom.Empty -> finish `Unsat
