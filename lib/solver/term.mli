(** Solver terms: scalar constraints over named decision variables,
    hash-consed into a DAG.

    Terms mirror the SLIM IR expression language minus [Index]: the
    symbolic executor eliminates array reads before constraints reach
    the solver (constant arrays fold; symbolic indices over constant
    arrays expand to [Tite] chains).  Smart constructors fold constants
    aggressively — this folding is what makes state-aware solving cheap,
    because state variables arrive as constants.

    Every term is interned in a per-domain hashcons table, so
    structurally equal terms (after normalization) are physically equal:
    {!equal} is [==], {!hash}/{!size} are O(1) stored fields, and {!id}
    is a never-reused per-domain identifier suitable as a memo key.
    Construction additionally normalizes commutative operands ([+],
    [*], [&&], [||], [=], [<>]) into a canonical order decided by the
    deterministic structural hash ({!hash}) with {!compare_structural}
    as tie-break — never by ids, so term shapes are identical across
    runs, domains and worker counts.  Terms never cross domains (no
    result type carries one), which is what makes the domain-local
    table safe. *)

type t = private {
  id : int;  (** unique per domain; never reused *)
  node : node;
  hkey : int;  (** deterministic structural hash, {!hash} *)
  tsize : int;  (** saturating tree size, {!size} *)
}

and node =
  | Cst of Slim.Value.t
  | Tvar of string
  | Tunop of Slim.Ir.unop * t
  | Tbinop of Slim.Ir.binop * t * t
  | Tcmp of Slim.Ir.cmpop * t * t
  | Tand of t * t
  | Tor of t * t
  | Tnot of t
  | Tite of t * t * t

val view : t -> node

val cst : Slim.Value.t -> t
val cbool : bool -> t
val cint : int -> t
val creal : float -> t
val var : string -> t

(** Folding constructors: constant subterms are evaluated away. *)

val unop : Slim.Ir.unop -> t -> t
val binop : Slim.Ir.binop -> t -> t -> t
val cmp : Slim.Ir.cmpop -> t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val ite : t -> t -> t -> t

val is_const : t -> Slim.Value.t option
val conj : t list -> t

val vars : t -> string list
(** Free variables, sorted, without duplicates; DAG traversal (each
    shared node visited once). *)

val size : t -> int
(** Tree node count (saturating far above every caller's cap) — used
    for virtual-time cost accounting.  O(1). *)

val size_capped : int -> t -> int
(** [min cap (size t)], exactly what the pre-DAG streaming counter
    returned.  O(1). *)

val eval : (string -> Slim.Value.t) -> t -> Slim.Value.t
(** Concrete evaluation under a full assignment.  Raises
    {!Slim.Value.Type_error} on ill-typed terms.  Large shared terms
    evaluate once per unique node; the environment must be a pure
    function of the variable name. *)

val pp : t Fmt.t

val equal : t -> t -> bool
(** Physical equality — equivalent to structural equality (modulo
    normalization) for terms built on the same domain. *)

val compare : t -> t -> int
(** Total order by {!id}: fast, but allocation-order dependent.  Use
    {!compare_structural} when the order must be deterministic. *)

val compare_structural : t -> t -> int
(** Deterministic structural total order (never consults ids); the
    tie-break of the canonical commutative-operand order. *)

val hash : t -> int
(** Stored deterministic structural hash; the primary key of the
    canonical commutative-operand order. *)

val id : t -> int
(** The hashcons id: equal terms have equal ids (per domain), and ids
    are never reused, so [(… , id t)] pairs are sound memo keys. *)
