module Value = Slim.Value
module Ir = Slim.Ir

(* Hash-consed DAG terms.  Every [t] is allocated through [make], which
   consults a per-domain weak hashcons table: structurally equal terms
   (after normalization) are the *same* node, so [equal] is physical
   equality, [hash]/[size] are stored fields, and every consumer that
   memoizes per-term can key on [id].

   Domain safety: the table, like {!Sym_value}'s variable interner, is
   domain-local ([Domain.DLS]) rather than a single mutex-guarded
   global.  Term construction is the hottest allocation site in the
   symbolic executor, and no term ever crosses a domain boundary (each
   engine run / solver call / fuzz case is confined to one worker
   domain; results carry [Value.t]s, never terms), so per-domain tables
   give the same uniqueness guarantee without hot-path locking.
   Consequence: ids are unique *per domain*; [equal]/[compare]/[id] are
   only meaningful between terms built on the same domain — which is
   every comparison the codebase performs.

   Normalization at construction:
   - constant folding, exactly as the tree constructors always did;
   - commutative-operand ordering for [+], [*], [&&], [||], [=], [<>]:
     operands are ordered by the deterministic structural hash, ties
     broken by a full structural compare.  Crucially the order does
     *not* depend on hashcons ids (which vary with allocation history),
     so the same source guards normalize to the same shape in every
     run, domain and process — the determinism gate for pooled runs.

   The weak table lets the GC reclaim dead terms while uniqueness holds
   for all live ones; ids are never reused either way (the counter only
   grows), so an id-keyed cache can at worst miss, never alias. *)

type t = {
  id : int;  (* unique per domain, dense-ish, never reused *)
  node : node;
  hkey : int;  (* deterministic structural hash *)
  tsize : int;  (* tree size, saturating at [size_sat_cap] *)
}

and node =
  | Cst of Value.t
  | Tvar of string
  | Tunop of Ir.unop * t
  | Tbinop of Ir.binop * t * t
  | Tcmp of Ir.cmpop * t * t
  | Tand of t * t
  | Tor of t * t
  | Tnot of t
  | Tite of t * t * t

let view t = t.node
let id t = t.id
let hash t = t.hkey
let equal a b = a == b
let compare a b = Int.compare a.id b.id

(* --- structural hash and size ----------------------------------------- *)

(* [Hashtbl.hash] is the non-seeded polymorphic hash: deterministic
   across runs and processes, which the commutative ordering relies on.
   Its bounded traversal of big [Value.Vec] constants only costs extra
   collisions — the weak-set lookup compares structurally. *)
let mix h d = ((h * 0x01000193) lxor d) land max_int

let hash_node = function
  | Cst v -> mix 0x11 (Hashtbl.hash v)
  | Tvar x -> mix 0x22 (Hashtbl.hash x)
  | Tunop (op, e) -> mix (mix 0x33 (Hashtbl.hash op)) e.hkey
  | Tbinop (op, a, b) -> mix (mix (mix 0x44 (Hashtbl.hash op)) a.hkey) b.hkey
  | Tcmp (op, a, b) -> mix (mix (mix 0x55 (Hashtbl.hash op)) a.hkey) b.hkey
  | Tand (a, b) -> mix (mix 0x66 a.hkey) b.hkey
  | Tor (a, b) -> mix (mix 0x77 a.hkey) b.hkey
  | Tnot e -> mix 0x88 e.hkey
  | Tite (c, a, b) -> mix (mix (mix 0x99 c.hkey) a.hkey) b.hkey

(* Tree sizes of shared DAGs grow exponentially; saturate far above
   every cap used by callers (all <= 60_000) so [size_capped cap t =
   min cap (tree size)] exactly as the old streaming counter computed. *)
let size_sat_cap = 1 lsl 30

let sat a b =
  let s = a + b in
  if s >= size_sat_cap then size_sat_cap else s

let size_node = function
  | Cst _ | Tvar _ -> 1
  | Tunop (_, e) | Tnot e -> sat 1 e.tsize
  | Tbinop (_, a, b) | Tcmp (_, a, b) | Tand (a, b) | Tor (a, b) ->
    sat 1 (sat a.tsize b.tsize)
  | Tite (c, a, b) -> sat 1 (sat c.tsize (sat a.tsize b.tsize))

(* --- the hashcons table ------------------------------------------------ *)

module H = struct
  type nonrec t = t

  let hash t = t.hkey

  (* Shallow structural equality: children are unique already, so
     physical comparison suffices below the top node.  Constants use
     [compare] so [nan] payloads stay well-behaved. *)
  let equal a b =
    match a.node, b.node with
    | Cst u, Cst v -> Stdlib.compare u v = 0
    | Tvar x, Tvar y -> String.equal x y
    | Tunop (o1, e1), Tunop (o2, e2) -> o1 = o2 && e1 == e2
    | Tbinop (o1, a1, b1), Tbinop (o2, a2, b2) ->
      o1 = o2 && a1 == a2 && b1 == b2
    | Tcmp (o1, a1, b1), Tcmp (o2, a2, b2) -> o1 = o2 && a1 == a2 && b1 == b2
    | Tand (a1, b1), Tand (a2, b2) | Tor (a1, b1), Tor (a2, b2) ->
      a1 == a2 && b1 == b2
    | Tnot e1, Tnot e2 -> e1 == e2
    | Tite (c1, a1, b1), Tite (c2, a2, b2) ->
      c1 == c2 && a1 == a2 && b1 == b2
    | _, _ -> false
end

module W = Weak.Make (H)

type hstate = { tbl : W.t; mutable next_id : int }

let hstate_key =
  Domain.DLS.new_key (fun () -> { tbl = W.create 4096; next_id = 0 })

(* Hit/node counts depend on GC timing (weak table) and on which runs
   landed on this domain, so they are nondeterministic across worker
   counts: excluded from the deterministic snapshot. *)
let tel_nodes = Telemetry.Counter.make ~nondet:true "term.hashcons_nodes"
let tel_hits = Telemetry.Counter.make ~nondet:true "term.hashcons_hits"

let make node =
  let hs = Domain.DLS.get hstate_key in
  let cand =
    { id = hs.next_id; node; hkey = hash_node node; tsize = size_node node }
  in
  let r = W.merge hs.tbl cand in
  if r == cand then begin
    hs.next_id <- hs.next_id + 1;
    Telemetry.Counter.incr tel_nodes
  end
  else Telemetry.Counter.incr tel_hits;
  r

(* --- canonical commutative order --------------------------------------- *)

let tag_rank = function
  | Cst _ -> 0
  | Tvar _ -> 1
  | Tunop _ -> 2
  | Tbinop _ -> 3
  | Tcmp _ -> 4
  | Tand _ -> 5
  | Tor _ -> 6
  | Tnot _ -> 7
  | Tite _ -> 8

(* Deterministic total order on term structure (never on ids). *)
let rec compare_structural a b =
  if a == b then 0
  else
    match a.node, b.node with
    | Cst u, Cst v -> Stdlib.compare u v
    | Tvar x, Tvar y -> String.compare x y
    | Tunop (o1, e1), Tunop (o2, e2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c else compare_structural e1 e2
    | Tbinop (o1, a1, b1), Tbinop (o2, a2, b2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c else compare_structural2 a1 b1 a2 b2
    | Tcmp (o1, a1, b1), Tcmp (o2, a2, b2) ->
      let c = Stdlib.compare o1 o2 in
      if c <> 0 then c else compare_structural2 a1 b1 a2 b2
    | Tand (a1, b1), Tand (a2, b2) | Tor (a1, b1), Tor (a2, b2) ->
      compare_structural2 a1 b1 a2 b2
    | Tnot e1, Tnot e2 -> compare_structural e1 e2
    | Tite (c1, a1, b1), Tite (c2, a2, b2) ->
      let c = compare_structural c1 c2 in
      if c <> 0 then c else compare_structural2 a1 b1 a2 b2
    | n1, n2 -> Int.compare (tag_rank n1) (tag_rank n2)

and compare_structural2 a1 b1 a2 b2 =
  let c = compare_structural a1 a2 in
  if c <> 0 then c else compare_structural b1 b2

let canon a b =
  if a == b then (a, b)
  else if a.hkey < b.hkey then (a, b)
  else if a.hkey > b.hkey then (b, a)
  else if compare_structural a b <= 0 then (a, b)
  else (b, a)

(* --- smart constructors ------------------------------------------------ *)

let cst v = make (Cst v)
let cbool b = cst (Value.Bool b)
let cint i = cst (Value.Int i)
let creal r = cst (Value.Real r)
let var name = make (Tvar name)

let is_const t = match t.node with Cst v -> Some v | _ -> None

let eval_unop (op : Ir.unop) v =
  match op with
  | Ir.Neg -> Value.neg v
  | Ir.Not -> Value.Bool (not (Value.to_bool v))
  | Ir.Abs_op -> Value.abs_v v
  | Ir.To_real -> Value.Real (Value.to_real v)
  | Ir.To_int -> Value.Int (Value.to_int v)
  | Ir.Floor -> Value.floor_v v
  | Ir.Ceil -> Value.ceil_v v

let eval_binop (op : Ir.binop) a b =
  match op with
  | Ir.Add -> Value.add a b
  | Ir.Sub -> Value.sub a b
  | Ir.Mul -> Value.mul a b
  | Ir.Div -> Value.div a b
  | Ir.Mod -> Value.modulo a b
  | Ir.Min -> Value.min_v a b
  | Ir.Max -> Value.max_v a b

let eval_cmp (op : Ir.cmpop) a b =
  let c () = Value.compare_num a b in
  match op with
  | Ir.Eq -> Value.equal a b
  | Ir.Ne -> not (Value.equal a b)
  | Ir.Lt -> c () < 0
  | Ir.Le -> c () <= 0
  | Ir.Gt -> c () > 0
  | Ir.Ge -> c () >= 0

let mk_unop op e = make (Tunop (op, e))

(* [+] and [*] commute over every value combination the evaluator
   accepts, and the HC4 projections for them are symmetric, so the
   canonical operand order is semantically invisible. *)
let mk_binop op a b =
  match op with
  | Ir.Add | Ir.Mul ->
    let a, b = canon a b in
    make (Tbinop (op, a, b))
  | Ir.Sub | Ir.Div | Ir.Mod | Ir.Min | Ir.Max -> make (Tbinop (op, a, b))

let mk_cmp op a b =
  match op with
  | Ir.Eq | Ir.Ne ->
    let a, b = canon a b in
    make (Tcmp (op, a, b))
  | Ir.Lt | Ir.Le | Ir.Gt | Ir.Ge -> make (Tcmp (op, a, b))

let unop op e =
  match e.node with
  | Cst v -> (try cst (eval_unop op v) with Value.Type_error _ -> mk_unop op e)
  | _ -> mk_unop op e

let binop op a b =
  match a.node, b.node with
  | Cst va, Cst vb ->
    (try cst (eval_binop op va vb) with Value.Type_error _ -> mk_binop op a b)
  | _ -> mk_binop op a b

let cmp op a b =
  match a.node, b.node with
  | Cst va, Cst vb ->
    (try cst (Value.Bool (eval_cmp op va vb))
     with Value.Type_error _ -> mk_cmp op a b)
  | _ -> mk_cmp op a b

let and_ a b =
  match a.node, b.node with
  | Cst (Value.Bool true), _ -> b
  | _, Cst (Value.Bool true) -> a
  | Cst (Value.Bool false), _ | _, Cst (Value.Bool false) -> cbool false
  | _ ->
    let a, b = canon a b in
    make (Tand (a, b))

let or_ a b =
  match a.node, b.node with
  | Cst (Value.Bool false), _ -> b
  | _, Cst (Value.Bool false) -> a
  | Cst (Value.Bool true), _ | _, Cst (Value.Bool true) -> cbool true
  | _ ->
    let a, b = canon a b in
    make (Tor (a, b))

let not_ e =
  match e.node with
  | Cst (Value.Bool b) -> cbool (not b)
  | Tnot inner -> inner
  | _ -> make (Tnot e)

let ite c t e =
  match c.node with
  | Cst (Value.Bool true) -> t
  | Cst (Value.Bool false) -> e
  | _ -> if t == e then t else make (Tite (c, t, e))

let conj = function
  | [] -> cbool true
  | t :: ts -> List.fold_left and_ t ts

(* --- queries ------------------------------------------------------------ *)

let vars t =
  let module S = Set.Make (String) in
  let seen = Hashtbl.create 64 in
  let rec go acc t =
    if Hashtbl.mem seen t.id then acc
    else begin
      Hashtbl.add seen t.id ();
      match t.node with
      | Cst _ -> acc
      | Tvar x -> S.add x acc
      | Tunop (_, e) | Tnot e -> go acc e
      | Tbinop (_, a, b) | Tcmp (_, a, b) | Tand (a, b) | Tor (a, b) ->
        go (go acc a) b
      | Tite (c, a, b) -> go (go (go acc c) a) b
    end
  in
  S.elements (go S.empty t)

let size t = t.tsize
let size_capped cap t = if t.tsize < cap then t.tsize else cap

let eval_node recur env = function
  | Cst v -> v
  | Tvar x -> env x
  | Tunop (op, e) -> eval_unop op (recur e)
  | Tbinop (op, a, b) -> eval_binop op (recur a) (recur b)
  | Tcmp (op, a, b) -> Value.Bool (eval_cmp op (recur a) (recur b))
  | Tand (a, b) ->
    Value.Bool (Value.to_bool (recur a) && Value.to_bool (recur b))
  | Tor (a, b) ->
    Value.Bool (Value.to_bool (recur a) || Value.to_bool (recur b))
  | Tnot e -> Value.Bool (not (Value.to_bool (recur e)))
  | Tite (c, a, b) -> if Value.to_bool (recur c) then recur a else recur b

(* Small terms evaluate by plain recursion; large (shared) ones memoize
   per node so DAG evaluation is linear in unique nodes.  [env] must be
   a pure function of its argument (every caller passes a map lookup);
   failed evaluations are not cached, so a raising node raises again on
   the next visit exactly as tree walking did. *)
let eval env t =
  if t.tsize <= 256 then
    let rec go t = eval_node go env t.node in
    go t
  else begin
    let tbl = Hashtbl.create 1024 in
    let rec go t =
      match t.node with
      | Cst v -> v
      | Tvar x -> env x
      | _ -> (
        match Hashtbl.find_opt tbl t.id with
        | Some v -> v
        | None ->
          let v = eval_node go env t.node in
          Hashtbl.add tbl t.id v;
          v)
    in
    go t
  end

let rec pp ppf t =
  match t.node with
  | Cst v -> Value.pp ppf v
  | Tvar x -> Fmt.string ppf x
  | Tunop (op, e) -> Fmt.pf ppf "%a(%a)" Ir.pp_unop op pp e
  | Tbinop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ir.pp_binop op pp b
  | Tcmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ir.pp_cmpop op pp b
  | Tand (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Tor (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Tnot e -> Fmt.pf ppf "!(%a)" pp e
  | Tite (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp c pp a pp b
