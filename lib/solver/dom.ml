module Value = Slim.Value

type t =
  | Dbool of { can_true : bool; can_false : bool }
  | Dint of { lo : int; hi : int }
  | Dreal of { lo : float; hi : float }

exception Empty

let of_ty = function
  | Value.Tbool -> Dbool { can_true = true; can_false = true }
  | Value.Tint { lo; hi } -> Dint { lo; hi }
  | Value.Treal { lo; hi } -> Dreal { lo; hi }
  | Value.Tvec _ -> Value.type_error "Dom.of_ty: vector type"

let top_bool = Dbool { can_true = true; can_false = true }
let booln b = Dbool { can_true = b; can_false = not b }

let intn lo hi =
  if lo > hi then raise Empty;
  Dint { lo; hi }

(* float -> int bound conversions must saturate: [int_of_float] is
   unspecified past [max_int] and in practice wraps (8e18 becomes a
   large NEGATIVE int), which can turn a huge over-approximated bound
   into an inverted — empty — interval and produce an unsound Unsat.
   1e18 is exactly representable and far above any model constant. *)
let int_bound_max = 1_000_000_000_000_000_000

let int_of_float_up f =
  if f >= 1e18 then int_bound_max
  else if f <= -1e18 then -int_bound_max
  else int_of_float (Float.ceil f)

let int_of_float_down f =
  if f >= 1e18 then int_bound_max
  else if f <= -1e18 then -int_bound_max
  else int_of_float (Float.floor f)

let realn lo hi =
  if lo > hi then raise Empty;
  Dreal { lo; hi }

let is_singleton = function
  | Dbool { can_true; can_false } -> can_true <> can_false
  | Dint { lo; hi } -> lo = hi
  | Dreal { lo; hi } -> lo = hi

let singleton_value = function
  | Dbool { can_true = true; can_false = false } -> Some (Value.Bool true)
  | Dbool { can_true = false; can_false = true } -> Some (Value.Bool false)
  | Dint { lo; hi } when lo = hi -> Some (Value.Int lo)
  | Dreal { lo; hi } when lo = hi -> Some (Value.Real lo)
  | Dbool _ | Dint _ | Dreal _ -> None

let member d v =
  match d, v with
  | Dbool { can_true; can_false }, Value.Bool b ->
    if b then can_true else can_false
  | Dint { lo; hi }, Value.Int i -> lo <= i && i <= hi
  | Dreal { lo; hi }, Value.Real r -> lo <= r && r <= hi
  | Dreal { lo; hi }, Value.Int i ->
    lo <= float_of_int i && float_of_int i <= hi
  | Dint { lo; hi }, Value.Real r ->
    Float.is_integer r && float_of_int lo <= r && r <= float_of_int hi
  | (Dbool _ | Dint _ | Dreal _), _ -> false

let meet a b =
  match a, b with
  | Dbool x, Dbool y ->
    let can_true = x.can_true && y.can_true in
    let can_false = x.can_false && y.can_false in
    if not (can_true || can_false) then raise Empty;
    Dbool { can_true; can_false }
  | Dint x, Dint y -> intn (max x.lo y.lo) (min x.hi y.hi)
  | Dreal x, Dreal y -> realn (Float.max x.lo y.lo) (Float.min x.hi y.hi)
  | Dint x, Dreal y | Dreal y, Dint x ->
    intn
      (max x.lo (int_of_float_up y.lo))
      (min x.hi (int_of_float_down y.hi))
  | (Dbool _ | Dint _ | Dreal _), (Dbool _ | Dint _ | Dreal _) ->
    Value.type_error "Dom.meet: incompatible domains"

let hull a b =
  match a, b with
  | Dbool x, Dbool y ->
    Dbool
      { can_true = x.can_true || y.can_true;
        can_false = x.can_false || y.can_false }
  | Dint x, Dint y -> Dint { lo = min x.lo y.lo; hi = max x.hi y.hi }
  | Dreal x, Dreal y ->
    Dreal { lo = Float.min x.lo y.lo; hi = Float.max x.hi y.hi }
  | Dint x, Dreal y | Dreal y, Dint x ->
    Dreal
      { lo = Float.min (float_of_int x.lo) y.lo;
        hi = Float.max (float_of_int x.hi) y.hi }
  | (Dbool _ | Dint _ | Dreal _), (Dbool _ | Dint _ | Dreal _) ->
    Value.type_error "Dom.hull: incompatible domains"

let width = function
  | Dbool { can_true; can_false } -> if can_true && can_false then 1.0 else 0.0
  | Dint { lo; hi } -> float_of_int (hi - lo)
  | Dreal { lo; hi } -> hi -. lo

let real_width_floor = 1e-6

let split = function
  | Dbool { can_true = true; can_false = true } ->
    Some (booln true, booln false)
  | Dbool _ -> None
  | Dint { lo; hi } when lo < hi ->
    let mid = lo + ((hi - lo) / 2) in
    Some (Dint { lo; hi = mid }, Dint { lo = mid + 1; hi })
  | Dint _ -> None
  | Dreal { lo; hi } when hi -. lo > real_width_floor ->
    let mid = lo +. ((hi -. lo) /. 2.0) in
    Some (Dreal { lo; hi = mid }, Dreal { lo = mid; hi })
  | Dreal _ -> None

let sample = function
  | Dbool { can_true; can_false } ->
    (if can_true then [ Value.Bool true ] else [])
    @ (if can_false then [ Value.Bool false ] else [])
  | Dint { lo; hi } ->
    let mid = lo + ((hi - lo) / 2) in
    let candidates =
      [ Value.Int lo; Value.Int hi; Value.Int mid ]
      @ (if lo <= 0 && 0 <= hi then [ Value.Int 0 ] else [])
      @ (if lo <= 1 && 1 <= hi then [ Value.Int 1 ] else [])
    in
    List.sort_uniq compare candidates
  | Dreal { lo; hi } ->
    let mid = lo +. ((hi -. lo) /. 2.0) in
    let candidates =
      [ Value.Real lo; Value.Real hi; Value.Real mid ]
      @ (if lo <= 0.0 && 0.0 <= hi then [ Value.Real 0.0 ] else [])
      @ (if lo <= 1.0 && 1.0 <= hi then [ Value.Real 1.0 ] else [])
    in
    List.sort_uniq compare candidates

let pp ppf = function
  | Dbool { can_true; can_false } ->
    Fmt.pf ppf "bool{%s%s}"
      (if can_true then "T" else "")
      (if can_false then "F" else "")
  | Dint { lo; hi } -> Fmt.pf ppf "[%d,%d]" lo hi
  | Dreal { lo; hi } -> Fmt.pf ppf "[%g,%g]" lo hi

let equal = ( = )
