(** Abstract domains for solver variables: boolean three-valued domains
    and closed numeric intervals. *)

type t =
  | Dbool of { can_true : bool; can_false : bool }
  | Dint of { lo : int; hi : int }  (** inclusive, [lo <= hi] *)
  | Dreal of { lo : float; hi : float }  (** inclusive, [lo <= hi] *)

exception Empty
(** Raised by narrowing operations when a domain becomes empty. *)

val of_ty : Slim.Value.ty -> t
(** Scalar types only; raises {!Slim.Value.Type_error} on vectors. *)

val top_bool : t
val booln : bool -> t
val intn : int -> int -> t
val realn : float -> float -> t

val int_of_float_up : float -> int
val int_of_float_down : float -> int
(** [ceil] / [floor] to int, saturating at +-1e18: plain
    [int_of_float] wraps past [max_int], which can invert an interval
    and make a satisfiable box look empty. *)

val is_singleton : t -> bool
val singleton_value : t -> Slim.Value.t option
val member : t -> Slim.Value.t -> bool

val meet : t -> t -> t
(** Intersection; raises {!Empty}. *)

val hull : t -> t -> t
(** Convex union. *)

val width : t -> float
(** 0 for singletons; used to pick split variables. *)

val split : t -> (t * t) option
(** Bisect a non-singleton domain; [None] for singletons.  Integer
    domains split on the midpoint; boolean domains into the two
    constants; real domains bisect (down to a width floor). *)

val sample : t -> Slim.Value.t list
(** Candidate concrete values to try, most promising first (bounds,
    midpoint, zero when contained). *)

val pp : t Fmt.t
val equal : t -> t -> bool
