(** The solving front-end: propagation + branch-and-prune search with
    concrete verification of every reported solution.

    The solver is budgeted: it reports [Unknown] when the node budget
    runs out, mirroring SLDV-style solver timeouts in the paper.  A
    [Sat] answer always carries an assignment that has been checked by
    concrete evaluation of the constraint, so false positives are
    impossible; [Unsat] is sound because propagation and splitting only
    discard values that cannot satisfy the constraint (real-valued
    leaves that cannot be decided degrade the answer to [Unknown]). *)

module Smap : Map.S with type key = string

type problem = {
  p_vars : (string * Slim.Value.ty) list;  (** decision variables *)
  p_constraint : Term.t;  (** must evaluate to true *)
}

type result =
  | Sat of Slim.Value.t Smap.t
  | Unsat
  | Unknown  (** budget exhausted or real-valued indecision *)

type stats = {
  mutable nodes : int;  (** search nodes visited *)
  mutable propagation_rounds : int;
  mutable samples_tried : int;
  mutable term_size : int;
}

val solve :
  ?node_budget:int ->
  ?hc4_memo:bool ->
  ?rng:Random.State.t ->
  problem ->
  result * stats
(** Default budget: 20_000 nodes.  The RNG only drives sampling
    heuristics; pass a seeded state for reproducible runs.
    [hc4_memo] (default [true]) enables the HC4 projection memo; results
    are bit-identical either way (the memo only skips provable no-ops),
    so the flag exists purely as a test escape hatch. *)

val pp_result : result Fmt.t
