(* Interval arithmetic shared by the HC4 propagator and the abstract
   interpreter.  All rules are conservative (over-approximating); see
   the .mli for the exactness guarantees on point intervals. *)

module Value = Slim.Value

type num = { nlo : float; nhi : float; nint : bool }

let num_of_dom = function
  | Dom.Dint { lo; hi } ->
    { nlo = float_of_int lo; nhi = float_of_int hi; nint = true }
  | Dom.Dreal { lo; hi } -> { nlo = lo; nhi = hi; nint = false }
  | Dom.Dbool { can_true; can_false } ->
    (* booleans coerce to 0/1 under To_real / To_int *)
    {
      nlo = (if can_false then 0.0 else 1.0);
      nhi = (if can_true then 1.0 else 0.0);
      nint = true;
    }

let dom_of_num { nlo; nhi; nint } =
  if nint then Dom.intn (Dom.int_of_float_up nlo) (Dom.int_of_float_down nhi)
  else Dom.realn nlo nhi

let ntop = { nlo = -1e18; nhi = 1e18; nint = false }

let nmk nint nlo nhi =
  if nlo > nhi then raise Dom.Empty;
  { nlo; nhi; nint }

let nadd a b = nmk (a.nint && b.nint) (a.nlo +. b.nlo) (a.nhi +. b.nhi)
let nsub a b = nmk (a.nint && b.nint) (a.nlo -. b.nhi) (a.nhi -. b.nlo)

let nmul a b =
  let c = [ a.nlo *. b.nlo; a.nlo *. b.nhi; a.nhi *. b.nlo; a.nhi *. b.nhi ] in
  nmk (a.nint && b.nint)
    (List.fold_left Float.min infinity c)
    (List.fold_left Float.max neg_infinity c)

let ndiv a b =
  if b.nlo <= 0.0 && b.nhi >= 0.0 then ntop
  else begin
    let c =
      [ a.nlo /. b.nlo; a.nlo /. b.nhi; a.nhi /. b.nlo; a.nhi /. b.nhi ]
    in
    let lo = List.fold_left Float.min infinity c in
    let hi = List.fold_left Float.max neg_infinity c in
    (* integer division truncates: widen by one to stay conservative *)
    if a.nint && b.nint then nmk true (Float.floor lo -. 1.0) (Float.ceil hi +. 1.0)
    else nmk false lo hi
  end

let nmod a b =
  (* result magnitude is below |divisor|; sign follows the divisor
     (MATLAB-style, see [Value.modulo]).  When the divisor's sign is
     known the result interval is one-sided: int mod with b in [1,k]
     lands in [0, k-1], real mod in [0, k); symmetrically for b < 0.
     Only a zero-crossing divisor needs the two-sided fallback. *)
  let nint = a.nint && b.nint in
  if a.nlo = a.nhi && b.nlo = b.nhi && b.nlo <> 0.0 then begin
    (* point operands: the result is a function of the operands, so the
       interval is the exact singleton.  [Float.rem] is exact for both
       the integral and the real case; the sign adjustment mirrors
       [Value.modulo]. *)
    let y = b.nlo in
    let r = Float.rem a.nlo y in
    let r = if (r < 0.0 && y > 0.0) || (r > 0.0 && y < 0.0) then r +. y else r in
    nmk nint r r
  end
  else begin
    let shrink m = if nint then m -. 1.0 else m in
    if b.nlo > 0.0 then nmk nint 0.0 (Float.max 0.0 (shrink b.nhi))
    else if b.nhi < 0.0 then nmk nint (Float.min 0.0 (-.shrink (-.b.nlo))) 0.0
    else
      let m = Float.max (Float.abs b.nlo) (Float.abs b.nhi) in
      nmk nint (-.m) m
  end

let nneg a = nmk a.nint (-.a.nhi) (-.a.nlo)

let nabs a =
  if a.nlo >= 0.0 then a
  else if a.nhi <= 0.0 then nneg a
  else nmk a.nint 0.0 (Float.max (-.a.nlo) a.nhi)

let nmin a b = nmk (a.nint && b.nint) (Float.min a.nlo b.nlo) (Float.min a.nhi b.nhi)
let nmax a b = nmk (a.nint && b.nint) (Float.max a.nlo b.nlo) (Float.max a.nhi b.nhi)
let nfloor a = nmk a.nint (Float.floor a.nlo) (Float.floor a.nhi)
let nceil a = nmk a.nint (Float.ceil a.nlo) (Float.ceil a.nhi)

(* truncation toward zero *)
let ntrunc a = nmk true (Float.trunc a.nlo) (Float.trunc a.nhi)

let nmeet a b =
  nmk (a.nint || b.nint) (Float.max a.nlo b.nlo) (Float.min a.nhi b.nhi)

let num_of_value v =
  let r = Value.to_real v in
  let nint = match v with Value.Int _ | Value.Bool _ -> true | _ -> false in
  { nlo = r; nhi = r; nint }

(* --- boolean three-valued helpers ------------------------------------ *)

type bool3 = { bt : bool; bf : bool }  (* can be true / can be false *)

let b3_top = { bt = true; bf = true }
let b3_true = { bt = true; bf = false }
let b3_false = { bt = false; bf = true }

let b3_of_dom = function
  | Dom.Dbool { can_true; can_false } -> { bt = can_true; bf = can_false }
  | Dom.Dint { lo; hi } ->
    (* ints coerce to bool as (<> 0) *)
    { bt = not (lo = 0 && hi = 0); bf = lo <= 0 && 0 <= hi }
  | Dom.Dreal { lo; hi } ->
    { bt = not (lo = 0.0 && hi = 0.0); bf = lo <= 0.0 && 0.0 <= hi }

let dom_of_b3 { bt; bf } =
  if not (bt || bf) then raise Dom.Empty;
  Dom.Dbool { can_true = bt; can_false = bf }

let b3_and a b = { bt = a.bt && b.bt; bf = a.bf || b.bf }
let b3_or a b = { bt = a.bt || b.bt; bf = a.bf && b.bf }
let b3_not a = { bt = a.bf; bf = a.bt }

let b3_meet a b =
  let r = { bt = a.bt && b.bt; bf = a.bf && b.bf } in
  if not (r.bt || r.bf) then raise Dom.Empty;
  r

let b3_join a b = { bt = a.bt || b.bt; bf = a.bf || b.bf }
