(** Typed random model generation.

    The generator does not build {!Slim.Model.t} values directly: it
    first draws a small, fully-concrete {b spec} AST (below), and the
    spec compiles deterministically to a model ({!to_model} /
    {!program_of}).  Everything downstream leans on that split:

    - the shrinker edits the spec (drop blocks, shrink constants) and
      recompiles, never having to surgery a wired diagram;
    - the reproducer printer renders the spec as a runnable OCaml
      snippet over [Slim.Builder] / [Stateflow.Chart];
    - determinism is trivial to test: same seed, same spec, same
      printed program.

    Two top-level shapes are generated: block diagrams (delays, data
    stores, switch / multiport-switch, conditional subsystems, charts
    as blocks, int/real/bool arithmetic with structurally-guarded
    division) and standalone Stateflow-like charts compiled through
    {!Stateflow.Sf_compile}.  Generated models never raise
    {!Slim.Exec.Eval_error}: division denominators are wrapped in
    [max(abs d, 1)] and chart [Mod] divisors are non-zero constants,
    so every case is a total one-step function — any runtime error is
    itself an oracle violation. *)

(** {1 Spec AST} *)

type sty = S_bool | S_int | S_real  (** scalar type classes *)

type arith = A_add | A_sub | A_mul | A_min | A_max

type node = { n_sty : sty; n_kind : kind }

and kind =
  | In of string  (** inport; the name survives shrinking, so recorded
                      input sequences keep matching *)
  | Const of Slim.Value.t
  | Copy of int  (** identity (gain 1 / 1-input or); shrinker material *)
  | Gain of float * int
  | Abs of int
  | Saturate of float * float * int
  | Arith of arith * int * int
  | Guard_div of int * int  (** num / max(abs den, 1) — never divides by 0 *)
  | Cmp of Slim.Ir.cmpop * int * int
  | Cmp_const of Slim.Ir.cmpop * float * int
  | Not of int
  | Logic of [ `And | `Or | `Xor ] * int list
  | Switch of {
      cmp : Slim.Ir.cmpop;
      threshold : float;
      data1 : int;
      control : int;
      data2 : int;
    }
  | Multiport of { selector : int; cases : (int * int) list; default : int }
  | Unit_delay of Slim.Value.t * int
  | Delay of Slim.Value.t * int * int  (** initial, length, src *)
  | Integrator of { initial : float; igain : float; src : int }
  | Counter of { initial : int; modulo : int }
  | Ds_read of int  (** store index *)
  | Chart of chartspec * int list  (** embedded chart and its input nodes *)
  | Sub_if of { cond : int; ins : int list; then_ : subspec; else_ : subspec }
  | Sub_enabled of { enable : int; held : bool; ins : int list; sub : subspec }

and subspec = {
  sb_name : string;
  sb_nodes : node array;  (** leading nodes are the formal [In]s *)
  sb_out : int;
  sb_writes : (int * int) list;  (** writes to {e outer} stores *)
}

and chartspec = {
  ch_name : string;
  ch_ins : sty list;  (** formal inputs [x0], [x1], … *)
  ch_out : sty;  (** single output [y] *)
  ch_data : (sty * Slim.Value.t) list;  (** persistent data [d0], … *)
  ch_init : int;
  ch_states : cstate array;  (** states [S0], … *)
  ch_trans : ctrans list;  (** tried in priority (list) order *)
}

and cstate = { cs_entry : caction list; cs_during : caction list }

and ctrans = { ct_src : int; ct_dst : int; ct_guard : cexpr; ct_acts : caction list }

and cexpr =
  | CE_true
  | CE_in of int  (** boolean chart input *)
  | CE_data of int  (** boolean chart datum *)
  | CE_cmp of Slim.Ir.cmpop * carith * carith
  | CE_and of cexpr * cexpr
  | CE_or of cexpr * cexpr
  | CE_not of cexpr

and carith =
  | CA_in of int  (** numeric chart input *)
  | CA_data of int  (** numeric chart datum *)
  | CA_const of Slim.Value.t
  | CA_add of carith * carith
  | CA_sub of carith * carith
  | CA_mod of carith * int  (** guarded: the divisor constant is >= 2 *)

and caction =
  | CSet_num of ctarget * carith
  | CSet_bool of ctarget * cexpr

and ctarget = T_data of int | T_out

type spec = {
  sp_name : string;
  sp_stores : (sty * Slim.Value.t) list;  (** data stores [ds0], … *)
  sp_nodes : node array;
  sp_outs : int list;  (** nodes exposed as outports [o0], … *)
  sp_writes : (int * int) list;  (** (store, node) data-store writes *)
}

type model_spec = M_diagram of spec | M_chart of chartspec

(** {1 Generation} *)

val gen_model : Splitmix.t -> size:int -> model_spec
(** Draw a random model spec; [size] bounds the node count of diagrams
    (charts scale state/transition counts from it).  All randomness
    comes from the given generator: equal states generate equal specs. *)

val gen_value : Splitmix.t -> Slim.Value.ty -> Slim.Value.t
(** One biased in-domain draw (used by {!gen_inputs} and by the
    oracles' concrete refutation search). *)

val gen_inputs :
  Splitmix.t -> Slim.Ir.program -> steps:int -> (string * Slim.Value.t) list list
(** One input valuation per step, drawn from the declared input types
    with boundary values (bounds, zero, integer-valued reals) mixed in
    so thresholds actually trip. *)

(** {1 Compilation} *)

val sty_ty : sty -> Slim.Value.ty
val to_model : spec -> Slim.Model.t
val chart_of_spec : chartspec -> Stateflow.Chart.t

val program_of : model_spec -> Slim.Ir.program
(** Diagrams via {!Slim.Compile.to_program}, charts via
    {!Stateflow.Sf_compile.to_program}. *)

(** {1 Structure} *)

val node_deps : kind -> int list
(** Nodes referenced by a kind (not counting subsystem internals). *)

val map_deps : (int -> int) -> kind -> kind
(** Rewrite the node references of a kind in place (not descending
    into subsystem or chart internals); used by the shrinker to hoist
    subsystem-internal nodes to the enclosing scope. *)

val live : spec -> bool array
(** Per-node liveness from outports and data-store writes. *)

val compact : spec -> spec
(** Drop dead nodes and remap references; inport names are preserved,
    so recorded input sequences still apply. *)

val size_of : model_spec -> int
(** Block count of the compiled diagram ({!Slim.Model.block_count}) or
    state + transition count of a chart — the reproducer size metric. *)

(** {1 Reproducer printing} *)

val pp_repro :
  Format.formatter ->
  model_spec * (string * Slim.Value.t) list list ->
  unit
(** Render the case as a runnable OCaml snippet: builds the model with
    [Slim.Builder] / [Stateflow.Chart], binds the input sequence, and
    ends with [prog] and [steps] in scope. *)
