(** The differential oracles.

    Each oracle takes a compiled-from-spec {!Slim.Ir.program} plus a
    name-keyed input sequence and returns a verdict.  They are pure
    functions of their arguments (plus an explicit [seed] where target
    selection is randomized), so a failing case replays exactly from
    its seed — the contract the shrinker and the regression corpus
    rely on.

    - [exec_diff] — lockstep {!Slim.Exec} vs
      {!Slim.Interp.run_step_reference}: outputs, states, event
      streams, error messages, and the smap/slot state bridges must
      agree at every step.
    - [coverage] — {!Coverage.Tracker} invariants under execution and
      replay: monotone progress, ratio bounds, covered branches ⊆
      program branches, idempotent re-observation, replay and copy
      independence.
    - [symexec] — path-predicate soundness of one-step state-aware
      solving: a [Sat] answer must concretely replay into the claimed
      branch (or condition-vector atom), an [Unsat] answer must
      survive a random concrete refutation search.
    - [solver] — {!Solver.Csp} verified-solution soundness on random
      constraint problems over the program's input variables ([Sat]
      assignments must evaluate true, [Unsat] must survive random
      witness search) — the harness that exercises the {!Solver.Hc4}
      projections (abs/mod at zero-crossing and negative-divisor
      domains) far harder than directed tests.
    - [analysis] — soundness of {!Analysis.Verdict} under both abstract
      domains: the interval and octagon analyses must never contradict
      each other on a decided objective, and no objective either domain
      classifies as [Dead] may ever be covered by a concrete execution
      whose inputs conform to their declared domains.  A dynamic hit on
      a dead objective is an analyzer bug and is minimized like any
      other failure.
    - [spec_mon] — {!Spec.Monitor} differential: over the executed
      output trace and random STL formulas, the sliding-window monitor
      must agree with the naive reference monitor {b bit-for-bit} at
      every step, and nonzero robustness signs must agree with the
      independent boolean semantics.  Traces with non-finite samples
      are skipped (NaN is incomparable, which breaks the deque/fold
      equivalence by design). *)

type verdict = Pass | Fail of string

val all : string list
(** Oracle names, in canonical order: ["exec"; "coverage"; "symexec";
    "solver"; "analysis"; "spec"]. *)

val exec_diff :
  Slim.Ir.program -> (string * Slim.Value.t) list list -> verdict

val coverage :
  Slim.Ir.program -> (string * Slim.Value.t) list list -> verdict

val symexec :
  seed:int ->
  ?max_targets:int ->
  Slim.Ir.program ->
  (string * Slim.Value.t) list list ->
  verdict

val solver :
  seed:int ->
  ?max_problems:int ->
  Slim.Ir.program ->
  (string * Slim.Value.t) list list ->
  verdict

val analysis :
  Slim.Ir.program -> (string * Slim.Value.t) list list -> verdict

val spec_mon :
  seed:int -> Slim.Ir.program -> (string * Slim.Value.t) list list -> verdict

val run :
  which:string list ->
  seed:int ->
  Slim.Ir.program ->
  (string * Slim.Value.t) list list ->
  (string * verdict) list
(** Run the named oracles (unknown names are ignored) in canonical
    order.  Any exception escaping an oracle is converted to [Fail]. *)
