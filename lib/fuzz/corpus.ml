type entry = {
  e_seed : int;
  e_index : int;
  e_oracle : string;
  e_max_steps : int;
  e_message : string;
}

let schema_version = 1

let to_line e =
  Printf.sprintf
    "{\"schema_version\": %d, \"seed\": %d, \"index\": %d, \"oracle\": \
     \"%s\", \"max_steps\": %d, \"message\": \"%s\"}"
    schema_version e.e_seed e.e_index
    (Campaign.json_escape e.e_oracle)
    e.e_max_steps
    (Campaign.json_escape e.e_message)

(* Strict scanner for the flat one-line object [to_line] emits (plus
   arbitrary key order and whitespace).  Not a general JSON parser on
   purpose: the corpus format is ours, and a malformed line should be a
   loud error, not a guess. *)
exception Bad of string

let of_line line =
  let n = String.length line in
  let pos = ref 0 in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do
      incr pos
    done
  in
  let expect c =
    skip_ws ();
    if !pos < n && line.[!pos] = c then incr pos
    else raise (Bad (Printf.sprintf "expected %C at offset %d" c !pos))
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 32 in
    let rec go () =
      if !pos >= n then raise (Bad "unterminated string")
      else
        match line.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          incr pos;
          if !pos >= n then raise (Bad "dangling escape");
          (match line.[!pos] with
           | '"' -> Buffer.add_char b '"'
           | '\\' -> Buffer.add_char b '\\'
           | 'n' -> Buffer.add_char b '\n'
           | 'r' -> Buffer.add_char b '\r'
           | 't' -> Buffer.add_char b '\t'
           | 'u' ->
             if !pos + 4 >= n then raise (Bad "short \\u escape");
             let hex = String.sub line (!pos + 1) 4 in
             (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 256 -> Buffer.add_char b (Char.chr code)
              | Some _ | None -> raise (Bad ("bad \\u escape " ^ hex)));
             pos := !pos + 4
           | c -> raise (Bad (Printf.sprintf "unknown escape \\%c" c)));
          incr pos;
          go ()
        | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    if !pos < n && line.[!pos] = '-' then incr pos;
    while !pos < n && line.[!pos] >= '0' && line.[!pos] <= '9' do
      incr pos
    done;
    match int_of_string_opt (String.sub line start (!pos - start)) with
    | Some i -> i
    | None -> raise (Bad (Printf.sprintf "expected integer at offset %d" start))
  in
  match
    let fields = Hashtbl.create 8 in
    expect '{';
    skip_ws ();
    (if peek () <> Some '}' then
       let rec members () =
         skip_ws ();
         let key = parse_string () in
         expect ':';
         skip_ws ();
         (match peek () with
          | Some '"' -> Hashtbl.replace fields key (`S (parse_string ()))
          | _ -> Hashtbl.replace fields key (`I (parse_int ())));
         skip_ws ();
         match peek () with
         | Some ',' ->
           incr pos;
           members ()
         | _ -> ()
       in
       members ());
    expect '}';
    skip_ws ();
    if !pos <> n then raise (Bad "trailing characters");
    let int_field k =
      match Hashtbl.find_opt fields k with
      | Some (`I i) -> i
      | Some (`S _) -> raise (Bad (k ^ " must be an integer"))
      | None -> raise (Bad ("missing field " ^ k))
    in
    let str_field k =
      match Hashtbl.find_opt fields k with
      | Some (`S s) -> s
      | Some (`I _) -> raise (Bad (k ^ " must be a string"))
      | None -> raise (Bad ("missing field " ^ k))
    in
    let version = int_field "schema_version" in
    if version <> schema_version then
      raise (Bad (Printf.sprintf "unsupported schema_version %d" version));
    {
      e_seed = int_field "seed";
      e_index = int_field "index";
      e_oracle = str_field "oracle";
      e_max_steps = int_field "max_steps";
      e_message = str_field "message";
    }
  with
  | entry -> Ok entry
  | exception Bad m -> Error m

let load path =
  match open_in path with
  | exception Sys_error m -> Error m
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let rec go lineno acc =
      match input_line ic with
      | exception End_of_file -> Ok (List.rev acc)
      | line ->
        let trimmed = String.trim line in
        if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1) acc
        else (
          match of_line trimmed with
          | Ok e -> go (lineno + 1) (e :: acc)
          | Error m -> Error (Printf.sprintf "%s:%d: %s" path lineno m))
    in
    go 1 []

let append ~path entries =
  if entries <> [] then begin
    let oc =
      open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
    in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) @@ fun () ->
    List.iter
      (fun e ->
        output_string oc (to_line e);
        output_char oc '\n')
      entries
  end

let of_failures ~seed ~max_steps failures =
  List.map
    (fun (f : Campaign.failure) ->
      {
        e_seed = seed;
        e_index = f.Campaign.f_case;
        e_oracle = f.Campaign.f_oracle;
        e_max_steps = max_steps;
        e_message = f.Campaign.f_message;
      })
    failures

let replay e =
  if e.e_oracle <> "build" && not (List.mem e.e_oracle Oracle.all) then
    Oracle.Fail ("unknown oracle " ^ e.e_oracle)
  else begin
    let _case, failure =
      Campaign.run_case ~oracles:[ e.e_oracle ] ~seed:e.e_seed
        ~max_steps:e.e_max_steps e.e_index
    in
    match failure with
    | None -> Oracle.Pass
    | Some f ->
      Oracle.Fail
        (Printf.sprintf "case %d still fails %s: %s" e.e_index
           f.Campaign.f_oracle f.Campaign.f_message)
  end
