open Slim

type outcome = {
  r_model : Gen.model_spec;
  r_inputs : (string * Value.t) list list;
  r_rounds : int;
  r_checks : int;
}

let const_default = function
  | Gen.S_bool -> Value.Bool false
  | Gen.S_int -> Value.Int 0
  | Gen.S_real -> Value.Real 0.

let shrink_value = function
  | Value.Bool true -> [ Value.Bool false ]
  | Value.Int n when n <> 0 ->
    if n / 2 <> n && n / 2 <> 0 then [ Value.Int 0; Value.Int (n / 2) ]
    else [ Value.Int 0 ]
  | Value.Real r when r <> 0. && Float.is_finite r ->
    if r /. 2. <> r && r /. 2. <> 0. then [ Value.Real 0.; Value.Real (r /. 2.) ]
    else [ Value.Real 0. ]
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Input-sequence candidates                                           *)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let rec drop n = function _ :: rest when n > 0 -> drop (n - 1) rest | l -> l

let remove_at i l = List.filteri (fun j _ -> j <> i) l

let input_candidates steps =
  let n = List.length steps in
  if n = 0 then []
  else
    let halves = if n > 1 then [ take (n / 2) steps; drop (n / 2) steps ] else [] in
    let singles =
      if n <= 12 then List.init n (fun i -> remove_at (n - 1 - i) steps)
      else [ take (n - 1) steps ]
    in
    halves @ singles

(* ------------------------------------------------------------------ *)
(* Chart candidates                                                    *)

let chart_candidates (c : Gen.chartspec) : Gen.chartspec list =
  let open Gen in
  let drop_trans =
    List.init (List.length c.ch_trans) (fun i ->
        { c with ch_trans = remove_at i c.ch_trans })
  in
  let simplify_trans =
    List.concat
      (List.mapi
         (fun i t ->
           let upd t' =
             { c with ch_trans = List.mapi (fun j u -> if j = i then t' else u) c.ch_trans }
           in
           (if t.ct_acts <> [] then [ upd { t with ct_acts = [] } ] else [])
           @
           if t.ct_guard <> CE_true then [ upd { t with ct_guard = CE_true } ]
           else [])
         c.ch_trans)
  in
  let clear_states =
    List.concat
      (List.mapi
         (fun i st ->
           let upd st' =
             {
               c with
               ch_states =
                 Array.mapi (fun j u -> if j = i then st' else u) c.ch_states;
             }
           in
           (if st.cs_entry <> [] then [ upd { st with cs_entry = [] } ] else [])
           @ if st.cs_during <> [] then [ upd { st with cs_during = [] } ] else [])
         (Array.to_list c.ch_states))
  in
  let shrink_data =
    List.concat
      (List.mapi
         (fun i (sty, init) ->
           List.map
             (fun v ->
               {
                 c with
                 ch_data =
                   List.mapi (fun j d -> if j = i then (sty, v) else d) c.ch_data;
               })
             (shrink_value init))
         c.ch_data)
  in
  drop_trans @ simplify_trans @ clear_states @ shrink_data

(* ------------------------------------------------------------------ *)
(* Diagram candidates                                                  *)

(* Leading [In] nodes of a subspec are its formals. *)
let formal_count (sb : Gen.subspec) =
  let n = Array.length sb.sb_nodes in
  let rec go i =
    if i < n then
      match sb.sb_nodes.(i).Gen.n_kind with Gen.In _ -> go (i + 1) | _ -> i
    else n
  in
  go 0

(* Tweaks are whole-node replacements: hoisting a subsystem-internal
   node into the enclosing scope may change the slot's type too. *)
let rec node_tweaks (node : Gen.node) : Gen.node list =
  let open Gen in
  let k k' = [ { node with n_kind = k' } ] in
  let ks l = List.map (fun k' -> { node with n_kind = k' }) l in
  match node.n_kind with
  | Const v -> ks (List.map (fun v' -> Const v') (shrink_value v))
  | Gain (g, j) when g <> 1.0 && node.n_sty <> S_real -> k (Copy j)
  | Unit_delay (v, j) ->
    ks (List.map (fun v' -> Unit_delay (v', j)) (shrink_value v))
  | Delay (v, len, j) ->
    ks
      ((if len > 1 then [ Delay (v, 1, j) ] else [])
      @ List.map (fun v' -> Delay (v', len, j)) (shrink_value v))
  | Counter { initial; modulo } ->
    ks
      ((if initial > 0 then [ Counter { initial = 0; modulo } ] else [])
      @
      if modulo > 2 then [ Counter { initial = min initial 1; modulo = 2 } ]
      else [])
  | Cmp_const (op, t, j) when t <> 0. -> k (Cmp_const (op, 0., j))
  | Switch s when s.threshold <> 0. -> k (Switch { s with threshold = 0. })
  | Multiport m when m.cases <> [] ->
    k (Multiport { m with cases = take (List.length m.cases - 1) m.cases })
  | Logic (op, js) when List.length js > 2 -> k (Logic (op, take 2 js))
  | Integrator i ->
    ks
      ((if i.initial <> 0. then [ Integrator { i with initial = 0. } ] else [])
      @ if i.igain <> 1.0 then [ Integrator { i with igain = 1.0 } ] else [])
  | Chart (c, ins) ->
    ks (List.map (fun c' -> Chart (c', ins)) (chart_candidates c))
  | Sub_if s ->
    hoists node s.ins [ s.then_; s.else_ ]
    @ ks
        (List.map (fun t -> Sub_if { s with then_ = t })
           (subspec_candidates s.then_)
        @ List.map (fun e -> Sub_if { s with else_ = e })
            (subspec_candidates s.else_))
  | Sub_enabled s ->
    hoists node s.ins [ s.sub ]
    @ ks
        (List.map (fun sub -> Sub_enabled { s with sub })
           (subspec_candidates s.sub))
  | _ -> []

(* Replace a subsystem node by one of its internal nodes whose inputs
   are all formals — rewiring formal [k] to the actual argument
   [ins.(k)].  This is the move that pulls the culprit out of a
   conditional subsystem so the subsystem itself can then be dropped. *)
and hoists (node : Gen.node) (ins : int list) (subs : Gen.subspec list) :
    Gen.node list =
  let actuals = Array.of_list ins in
  List.concat_map
    (fun (sb : Gen.subspec) ->
      let formals = formal_count sb in
      let hoistable (n : Gen.node) =
        (match n.Gen.n_kind with Gen.In _ | Gen.Ds_read _ -> false | _ -> true)
        && List.for_all
             (fun d -> d < formals && d < Array.length actuals)
             (Gen.node_deps n.Gen.n_kind)
      in
      List.filter_map
        (fun (n : Gen.node) ->
          if hoistable n then
            Some
              {
                Gen.n_sty = n.Gen.n_sty;
                n_kind = Gen.map_deps (fun d -> actuals.(d)) n.Gen.n_kind;
              }
          else None)
        (Array.to_list sb.Gen.sb_nodes))
    subs
  |> List.filter (fun n' -> n' <> node)

and subspec_candidates (sb : Gen.subspec) : Gen.subspec list =
  let open Gen in
  let n = Array.length sb.sb_nodes in
  let formals = formal_count sb in
  let with_node i node' =
    let nodes = Array.copy sb.sb_nodes in
    nodes.(i) <- node';
    { sb with sb_nodes = nodes }
  in
  let replace_const =
    List.concat
      (List.init (n - formals) (fun d ->
           let i = n - 1 - d in
           let node = sb.sb_nodes.(i) in
           match node.n_kind with
           | Const v when v = const_default node.n_sty -> []
           | _ ->
             [
               with_node i
                 { node with n_kind = Const (const_default node.n_sty) };
             ]))
  in
  let tweaks =
    List.concat
      (List.init (n - formals) (fun d ->
           let i = n - 1 - d in
           (* inner tweaks must not change a slot's type: subsystem
              internals are not re-typed by [Gen.compact] *)
           List.filter_map
             (fun node' ->
               if node'.n_sty = sb.sb_nodes.(i).n_sty then
                 Some (with_node i node')
               else None)
             (node_tweaks sb.sb_nodes.(i))))
  in
  let drop_writes =
    List.init (List.length sb.sb_writes) (fun i ->
        { sb with sb_writes = remove_at i sb.sb_writes })
  in
  replace_const @ tweaks @ drop_writes

let spec_candidates (s : Gen.spec) : Gen.spec list =
  let open Gen in
  let n = Array.length s.sp_nodes in
  let with_node_full i node' =
    let nodes = Array.copy s.sp_nodes in
    nodes.(i) <- node';
    { s with sp_nodes = nodes }
  in
  let with_node i k =
    with_node_full i { (s.sp_nodes.(i)) with n_kind = k }
  in
  let replace_const =
    (* last nodes first: they carry the most structure *)
    List.concat
      (List.init n (fun d ->
           let i = n - 1 - d in
           let node = s.sp_nodes.(i) in
           match node.n_kind with
           | Const v when v = const_default node.n_sty -> []
           | _ -> [ with_node i (Const (const_default node.n_sty)) ]))
  in
  let tweaks =
    List.concat
      (List.init n (fun d ->
           let i = n - 1 - d in
           List.map (with_node_full i) (node_tweaks s.sp_nodes.(i))))
  in
  let drop_outs =
    if List.length s.sp_outs > 1 then
      [ { s with sp_outs = take (List.length s.sp_outs - 1) s.sp_outs } ]
    else []
  in
  let drop_writes =
    List.init (List.length s.sp_writes) (fun i ->
        { s with sp_writes = remove_at i s.sp_writes })
  in
  replace_const @ tweaks @ drop_outs @ drop_writes

let candidates m ins =
  let input_cands = List.map (fun ins' -> (m, ins')) (input_candidates ins) in
  let model_cands =
    match m with
    | Gen.M_diagram s ->
      List.map
        (fun s' -> (Gen.M_diagram (Gen.compact s'), ins))
        (spec_candidates s)
    | Gen.M_chart c ->
      List.map (fun c' -> (Gen.M_chart c', ins)) (chart_candidates c)
  in
  input_cands @ model_cands

(* ------------------------------------------------------------------ *)

let minimize ?(max_checks = 400) ~still_fails m ins =
  let checks = ref 0 in
  let try_ (m', ins') =
    if !checks >= max_checks then false
    else begin
      incr checks;
      still_fails m' ins'
    end
  in
  let rec fix m ins rounds =
    if !checks >= max_checks then (m, ins, rounds)
    else
      match List.find_opt try_ (candidates m ins) with
      | Some (m', ins') -> fix m' ins' (rounds + 1)
      | None -> (m, ins, rounds + 1)
  in
  let m, ins, rounds = fix m ins 0 in
  { r_model = m; r_inputs = ins; r_rounds = rounds; r_checks = !checks }
