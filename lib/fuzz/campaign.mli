(** Fuzzing campaigns: generate N cases, run the oracles, shrink
    failures, summarize.

    Every case is addressed by [(campaign seed, index)] alone:
    {!case_seed} derives an independent per-case RNG, so case [i]
    replays identically whether the campaign runs sequentially, on a
    pool, or as a single [--count 1] re-run of that index.  Campaign
    results are therefore byte-identical for any [jobs]/[chunk]
    setting (the pool merges in index order). *)

type failure = {
  f_case : int;  (** index of the failing case within the campaign *)
  f_oracle : string;  (** ["build"] or an {!Oracle.all} name *)
  f_message : string;  (** verdict message of the {e original} case *)
  f_orig_size : int;  (** {!Gen.size_of} before shrinking *)
  f_size : int;  (** {!Gen.size_of} of the minimized case *)
  f_steps : int;  (** input rows of the minimized case *)
  f_rounds : int;
  f_checks : int;
  f_repro : string;  (** runnable OCaml snippet ({!Gen.pp_repro}) *)
}

type case = {
  c_index : int;
  c_chart : bool;  (** standalone chart (vs block diagram) *)
  c_blocks : int;  (** {!Gen.size_of} of the generated model *)
  c_steps : int;
  c_decisions : int;  (** decisions in the compiled program *)
  c_verdicts : (string * Oracle.verdict) list;
}

type summary = {
  s_seed : int;
  s_count : int;
  s_max_steps : int;
  s_oracles : string list;
  s_cases : case list;  (** in index order *)
  s_charts : int;
  s_diagrams : int;
  s_steps_total : int;
  s_blocks_total : int;
  s_decisions_total : int;
  s_oracle_runs : (string * int) list;  (** per oracle, cases checked *)
  s_failures : failure list;  (** in index order *)
}

val case_seed : seed:int -> int -> int
(** Per-case seed for case [i]: a SplitMix-style mix of the campaign
    seed and the index, so neighbouring indices share no structure. *)

val case_gen :
  seed:int ->
  max_steps:int ->
  int ->
  Gen.model_spec * int * (Slim.Ir.program -> (string * Slim.Value.t) list list)
(** [case_gen ~seed ~max_steps i] draws case [i]'s model, step count
    and input generator — exactly the random draws {!run_case} makes
    before judging, exposed so corpus tooling (the [.stcg] exporter,
    the text round-trip suite, the bench harness) can materialize the
    same cases without running any oracle.  The returned input thunk
    is pure: it replays the same input rows however often it is
    called. *)

val run_case :
  ?oracles:string list ->
  ?shrink_checks:int ->
  seed:int ->
  max_steps:int ->
  int ->
  case * failure option
(** Generate, execute and judge case [i].  [oracles] defaults to
    {!Oracle.all}; on the first failing oracle the case is shrunk
    ([shrink_checks] bounds the {!Shrink.minimize} budget, default
    400) and reported.  A model that fails to compile — a generator
    invariant violation — is reported as oracle ["build"]. *)

val run :
  ?oracles:string list ->
  ?jobs:int ->
  ?chunk:int ->
  ?shrink_checks:int ->
  seed:int ->
  count:int ->
  max_steps:int ->
  unit ->
  summary
(** Run the whole campaign.  [jobs] defaults to 1 (sequential);
    [jobs > 1] fans cases out over {!Harness.Pool.map_chunked} with
    chunk size [chunk] (default 8) and merges in index order, so the
    summary does not depend on parallelism. *)

val failures : summary -> int
(** Number of failing cases (0 = campaign clean). *)

val pp_summary : summary Fmt.t
(** Human-readable report: totals, per-oracle table, then each failure
    with its minimized reproducer. *)

val json_escape : string -> string
(** JSON string-body escaping shared with {!Corpus}. *)

val to_json : ?telemetry:string -> summary -> string
(** The same data as a single-line-friendly JSON object (reproducers
    included as escaped strings), consumed by the bench harness.
    [telemetry] is a pre-rendered JSON object spliced in under the
    ["telemetry"] key (see {!Telemetry.json_summary}). *)
