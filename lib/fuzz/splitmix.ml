(* SplitMix64: a 64-bit Weyl sequence hashed through a MurmurHash3-style
   finalizer.  [split] seeds the child from the parent's next output
   mixed with a second finalizer so the two streams are uncorrelated. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* variant finalizer (mix13 constants) used only by [split] *)
let mix64_variant z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33))
      0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64_variant (bits64 t) }

let copy t = { state = t.state }

(* top 62 bits as a non-negative OCaml int *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound <= 0";
  (* rejection sampling to keep the draw exactly uniform *)
  let max = (1 lsl 62) - 1 in
  let limit = max - (((max mod bound) + 1) mod bound) in
  let rec go () =
    let v = bits62 t in
    if v <= limit then v mod bound else go ()
  in
  go ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Splitmix.int_in: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t x =
  (* 53 random mantissa bits, like the stdlib *)
  let v = Int64.to_int (Int64.shift_right_logical (bits64 t) 11) in
  float_of_int v /. 9007199254740992.0 *. x

let float_in t lo hi = if hi <= lo then lo else lo +. float t (hi -. lo)

let choose t = function
  | [] -> invalid_arg "Splitmix.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let weighted t weights =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 weights in
  if total <= 0 then invalid_arg "Splitmix.weighted: non-positive total";
  let k = int t total in
  let rec go k = function
    | [] -> invalid_arg "Splitmix.weighted: impossible"
    | (w, x) :: rest -> if k < max 0 w then x else go (k - max 0 w) rest
  in
  go k weights
