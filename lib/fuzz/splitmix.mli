(** A hand-rolled splittable PRNG (SplitMix64, Steele–Lea–Flood 2014).

    The fuzzer needs reproducibility properties the stdlib [Random]
    does not give cheaply:

    - {b determinism}: the same integer seed yields the same stream on
      every platform and OCaml version (the stdlib reserves the right
      to change its algorithm);
    - {b splittability}: [split] derives an independent child stream,
      so "the model of case [i]" and "the inputs of case [i]" each get
      their own generator and shrinking one consumer never perturbs
      the draws of another.

    Generators are mutable; [copy] snapshots one.  All operations are
    allocation-free except [split]/[copy]. *)

type t

val create : int -> t
(** Seed a generator.  Distinct seeds give (with overwhelming
    probability) disjoint streams. *)

val split : t -> t
(** Advance [t] once and return a fresh generator whose stream is
    independent of [t]'s subsequent draws. *)

val copy : t -> t
(** Duplicate the current state without advancing it. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] — uniform in [\[0, bound)]; [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] — uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val float : t -> float -> float
(** [float t x] — uniform in [\[0, x)]. *)

val float_in : t -> float -> float -> float
(** Uniform in [\[lo, hi\]]. *)

val choose : t -> 'a list -> 'a
(** Uniform pick; raises [Invalid_argument] on the empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick with the given relative integer weights (all >= 0, sum > 0). *)
