open Slim

type failure = {
  f_case : int;
  f_oracle : string;
  f_message : string;
  f_orig_size : int;
  f_size : int;
  f_steps : int;
  f_rounds : int;
  f_checks : int;
  f_repro : string;
}

type case = {
  c_index : int;
  c_chart : bool;
  c_blocks : int;
  c_steps : int;
  c_decisions : int;
  c_verdicts : (string * Oracle.verdict) list;
}

type summary = {
  s_seed : int;
  s_count : int;
  s_max_steps : int;
  s_oracles : string list;
  s_cases : case list;
  s_charts : int;
  s_diagrams : int;
  s_steps_total : int;
  s_blocks_total : int;
  s_decisions_total : int;
  s_oracle_runs : (string * int) list;
  s_failures : failure list;
}

let case_seed ~seed i =
  (* one create + one draw = two rounds of the SplitMix finalizer over
     an injective (seed, i) combination — independent per-case streams *)
  let g = Splitmix.create (seed lxor (i * 0x9E3779B1)) in
  Int64.to_int (Int64.shift_right_logical (Splitmix.bits64 g) 2)

let is_chart = function Gen.M_chart _ -> true | Gen.M_diagram _ -> false

(* [Gen.size_of] compiles diagrams; on a build-failure case fall back
   to the raw node count so reporting itself cannot raise. *)
let safe_size m =
  match Gen.size_of m with
  | n -> n
  | exception _ -> (
    match m with
    | Gen.M_diagram s -> Array.length s.Gen.sp_nodes
    | Gen.M_chart c -> Array.length c.Gen.ch_states + List.length c.Gen.ch_trans)

let shrunk_failure ~shrink_checks ~still_fails ~index ~oracle ~message model
    inputs =
  let o = Shrink.minimize ~max_checks:shrink_checks ~still_fails model inputs in
  {
    f_case = index;
    f_oracle = oracle;
    f_message = message;
    f_orig_size = safe_size model;
    f_size = safe_size o.Shrink.r_model;
    f_steps = List.length o.Shrink.r_inputs;
    f_rounds = o.Shrink.r_rounds;
    f_checks = o.Shrink.r_checks;
    f_repro = Fmt.str "%a" Gen.pp_repro (o.Shrink.r_model, o.Shrink.r_inputs);
  }

let case_gen ~seed ~max_steps i =
  let cs = case_seed ~seed i in
  let rng = Splitmix.create cs in
  let model_rng = Splitmix.split rng in
  let input_rng = Splitmix.split rng in
  let size = 8 + Splitmix.int rng 16 in
  let steps = 1 + Splitmix.int rng (max 1 max_steps) in
  let model = Gen.gen_model model_rng ~size in
  (* copy the input stream so the thunk replays identically however
     often it is called (corpus export re-derives the same inputs) *)
  ( model,
    steps,
    fun prog -> Gen.gen_inputs (Splitmix.copy input_rng) prog ~steps )

let tel_cases = Telemetry.Counter.make "fuzz.cases"
let tel_failures = Telemetry.Counter.make "fuzz.failures"
let tel_sp_case = Telemetry.Span.make "fuzz.case"

let run_case ?(oracles = Oracle.all) ?(shrink_checks = 400) ~seed ~max_steps i =
  Telemetry.Counter.incr tel_cases;
  Telemetry.Span.with_ tel_sp_case ~note:(fun () -> string_of_int i)
  @@ fun () ->
  let cs = case_seed ~seed i in
  let model, steps, gen_inputs = case_gen ~seed ~max_steps i in
  match Gen.program_of model with
  | exception exn ->
    (* the generator promises well-typed models: a compile failure is a
       fuzzer-caught bug in its own right *)
    let message = Printexc.to_string exn in
    let still_fails m _ =
      match Gen.program_of m with exception _ -> true | _ -> false
    in
    let case =
      {
        c_index = i;
        c_chart = is_chart model;
        c_blocks = safe_size model;
        c_steps = 0;
        c_decisions = 0;
        c_verdicts = [ ("build", Oracle.Fail message) ];
      }
    in
    ( case,
      Some
        (shrunk_failure ~shrink_checks ~still_fails ~index:i ~oracle:"build"
           ~message model []) )
  | prog ->
    let inputs = gen_inputs prog in
    let verdicts = Oracle.run ~which:oracles ~seed:cs prog inputs in
    let ex = Exec.handle prog in
    let case =
      {
        c_index = i;
        c_chart = is_chart model;
        c_blocks = safe_size model;
        c_steps = steps;
        c_decisions = List.length (Exec.decisions ex);
        c_verdicts = verdicts;
      }
    in
    (match
       List.find_opt (fun (_, v) -> v <> Oracle.Pass) verdicts
     with
    | None -> (case, None)
    | Some (oname, v) ->
      let message = match v with Oracle.Fail m -> m | Oracle.Pass -> "" in
      let still_fails m ins =
        match Gen.program_of m with
        | exception _ -> true
        | prog' -> (
          match Oracle.run ~which:[ oname ] ~seed:cs prog' ins with
          | [ (_, Oracle.Fail _) ] -> true
          | _ -> false)
      in
      ( case,
        Some
          (shrunk_failure ~shrink_checks ~still_fails ~index:i ~oracle:oname
             ~message model inputs) ))

let run ?(oracles = Oracle.all) ?(jobs = 1) ?(chunk = 8) ?shrink_checks ~seed
    ~count ~max_steps () =
  let which = List.filter (fun o -> List.mem o oracles) Oracle.all in
  let idxs = List.init (max 0 count) Fun.id in
  let f i = run_case ~oracles:which ?shrink_checks ~seed ~max_steps i in
  let results =
    if jobs <= 1 then List.map f idxs
    else
      Harness.Pool.with_pool ~jobs (fun p ->
          Harness.Pool.map_chunked p ~chunk f idxs)
  in
  let cases = List.map fst results in
  let fails = List.filter_map snd results in
  Telemetry.Counter.add tel_failures (List.length fails);
  let count_if p = List.length (List.filter p cases) in
  let sum f = List.fold_left (fun acc c -> acc + f c) 0 cases in
  {
    s_seed = seed;
    s_count = count;
    s_max_steps = max_steps;
    s_oracles = which;
    s_cases = cases;
    s_charts = count_if (fun c -> c.c_chart);
    s_diagrams = count_if (fun c -> not c.c_chart);
    s_steps_total = sum (fun c -> c.c_steps);
    s_blocks_total = sum (fun c -> c.c_blocks);
    s_decisions_total = sum (fun c -> c.c_decisions);
    s_oracle_runs =
      List.map
        (fun o -> (o, count_if (fun c -> List.mem_assoc o c.c_verdicts)))
        which;
    s_failures = fails;
  }

let failures s = List.length s.s_failures

(* ------------------------------------------------------------------ *)
(* Reporting                                                           *)

let oracle_failures s o =
  List.length (List.filter (fun f -> f.f_oracle = o) s.s_failures)

let pp_failure ppf f =
  Fmt.pf ppf
    "@[<v>case %d [%s]: %s@,\
     shrunk %d -> %d blocks, %d steps (%d rounds, %d checks)@,\
     reproducer:@,%s@]"
    f.f_case f.f_oracle f.f_message f.f_orig_size f.f_size f.f_steps f.f_rounds
    f.f_checks f.f_repro

let pp_summary ppf s =
  Fmt.pf ppf
    "@[<v>fuzz campaign: seed=%d count=%d max-steps=%d oracles=%s@,\
     cases: %d diagrams, %d charts | %d blocks, %d steps, %d decisions@,"
    s.s_seed s.s_count s.s_max_steps
    (String.concat "," s.s_oracles)
    s.s_diagrams s.s_charts s.s_blocks_total s.s_steps_total
    s.s_decisions_total;
  List.iter
    (fun (o, runs) ->
      Fmt.pf ppf "  %-9s %4d cases  %d failures@," o runs
        (oracle_failures s o))
    s.s_oracle_runs;
  let builds = oracle_failures s "build" in
  if builds > 0 then Fmt.pf ppf "  %-9s %4d failures@," "build" builds;
  if s.s_failures = [] then Fmt.pf ppf "result: PASS@]"
  else
    Fmt.pf ppf "result: FAIL (%d failing cases)@,%a@]"
      (List.length s.s_failures)
      (Fmt.list ~sep:Fmt.cut pp_failure)
      s.s_failures

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?telemetry s =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\"seed\": %d, \"count\": %d, \"max_steps\": %d" s.s_seed s.s_count
    s.s_max_steps;
  pf ", \"oracles\": [%s]"
    (String.concat ", "
       (List.map (fun o -> Printf.sprintf "\"%s\"" (json_escape o)) s.s_oracles));
  pf ", \"diagrams\": %d, \"charts\": %d" s.s_diagrams s.s_charts;
  pf ", \"blocks\": %d, \"steps\": %d, \"decisions\": %d" s.s_blocks_total
    s.s_steps_total s.s_decisions_total;
  pf ", \"oracle_runs\": {%s}"
    (String.concat ", "
       (List.map
          (fun (o, runs) ->
            Printf.sprintf "\"%s\": {\"cases\": %d, \"failures\": %d}"
              (json_escape o) runs (oracle_failures s o))
          s.s_oracle_runs));
  pf ", \"failures\": [";
  List.iteri
    (fun i f ->
      if i > 0 then pf ", ";
      pf
        "{\"case\": %d, \"oracle\": \"%s\", \"message\": \"%s\", \
         \"orig_size\": %d, \"size\": %d, \"steps\": %d, \"rounds\": %d, \
         \"checks\": %d, \"repro\": \"%s\"}"
        f.f_case (json_escape f.f_oracle) (json_escape f.f_message)
        f.f_orig_size f.f_size f.f_steps f.f_rounds f.f_checks
        (json_escape f.f_repro))
    s.s_failures;
  pf "]";
  (match telemetry with
   | Some obj -> pf ", \"telemetry\": %s" obj
   | None -> ());
  pf ", \"pass\": %b}" (s.s_failures = []);
  Buffer.contents b
