open Slim
module C = Stateflow.Chart

type sty = S_bool | S_int | S_real

type arith = A_add | A_sub | A_mul | A_min | A_max

type node = { n_sty : sty; n_kind : kind }

and kind =
  | In of string
  | Const of Value.t
  | Copy of int
  | Gain of float * int
  | Abs of int
  | Saturate of float * float * int
  | Arith of arith * int * int
  | Guard_div of int * int
  | Cmp of Ir.cmpop * int * int
  | Cmp_const of Ir.cmpop * float * int
  | Not of int
  | Logic of [ `And | `Or | `Xor ] * int list
  | Switch of {
      cmp : Ir.cmpop;
      threshold : float;
      data1 : int;
      control : int;
      data2 : int;
    }
  | Multiport of { selector : int; cases : (int * int) list; default : int }
  | Unit_delay of Value.t * int
  | Delay of Value.t * int * int
  | Integrator of { initial : float; igain : float; src : int }
  | Counter of { initial : int; modulo : int }
  | Ds_read of int
  | Chart of chartspec * int list
  | Sub_if of { cond : int; ins : int list; then_ : subspec; else_ : subspec }
  | Sub_enabled of { enable : int; held : bool; ins : int list; sub : subspec }

and subspec = {
  sb_name : string;
  sb_nodes : node array;
  sb_out : int;
  sb_writes : (int * int) list;
}

and chartspec = {
  ch_name : string;
  ch_ins : sty list;
  ch_out : sty;
  ch_data : (sty * Value.t) list;
  ch_init : int;
  ch_states : cstate array;
  ch_trans : ctrans list;
}

and cstate = { cs_entry : caction list; cs_during : caction list }

and ctrans = { ct_src : int; ct_dst : int; ct_guard : cexpr; ct_acts : caction list }

and cexpr =
  | CE_true
  | CE_in of int
  | CE_data of int
  | CE_cmp of Ir.cmpop * carith * carith
  | CE_and of cexpr * cexpr
  | CE_or of cexpr * cexpr
  | CE_not of cexpr

and carith =
  | CA_in of int
  | CA_data of int
  | CA_const of Value.t
  | CA_add of carith * carith
  | CA_sub of carith * carith
  | CA_mod of carith * int

and caction =
  | CSet_num of ctarget * carith
  | CSet_bool of ctarget * cexpr

and ctarget = T_data of int | T_out

type spec = {
  sp_name : string;
  sp_stores : (sty * Value.t) list;
  sp_nodes : node array;
  sp_outs : int list;
  sp_writes : (int * int) list;
}

type model_spec = M_diagram of spec | M_chart of chartspec

(* ------------------------------------------------------------------ *)
(* Naming and types                                                    *)

let store_name k = "ds" ^ string_of_int k
let chart_in_name k = "x" ^ string_of_int k
let chart_data_name k = "d" ^ string_of_int k
let chart_state_name k = "S" ^ string_of_int k

let sty_ty = function
  | S_bool -> Value.Tbool
  | S_int -> Value.tint_range (-6) 6
  | S_real -> Value.treal_range (-4.) 4.

let is_num = function S_int | S_real -> true | S_bool -> false

(* ------------------------------------------------------------------ *)
(* Structure                                                           *)

let node_deps = function
  | In _ | Const _ | Counter _ | Ds_read _ -> []
  | Copy j
  | Gain (_, j)
  | Abs j
  | Saturate (_, _, j)
  | Cmp_const (_, _, j)
  | Not j
  | Unit_delay (_, j)
  | Delay (_, _, j)
  | Integrator { src = j; _ } -> [ j ]
  | Arith (_, a, b) | Guard_div (a, b) | Cmp (_, a, b) -> [ a; b ]
  | Logic (_, js) -> js
  | Switch s -> [ s.data1; s.control; s.data2 ]
  | Multiport m -> (m.selector :: List.map snd m.cases) @ [ m.default ]
  | Chart (_, ins) -> ins
  | Sub_if { cond; ins; _ } -> cond :: ins
  | Sub_enabled { enable; ins; _ } -> enable :: ins

let map_deps f = function
  | (In _ | Const _ | Counter _ | Ds_read _) as k -> k
  | Copy j -> Copy (f j)
  | Gain (g, j) -> Gain (g, f j)
  | Abs j -> Abs (f j)
  | Saturate (lo, hi, j) -> Saturate (lo, hi, f j)
  | Cmp_const (op, t, j) -> Cmp_const (op, t, f j)
  | Not j -> Not (f j)
  | Unit_delay (v, j) -> Unit_delay (v, f j)
  | Delay (v, len, j) -> Delay (v, len, f j)
  | Integrator i -> Integrator { i with src = f i.src }
  | Arith (op, a, b) -> Arith (op, f a, f b)
  | Guard_div (a, b) -> Guard_div (f a, f b)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | Logic (op, js) -> Logic (op, List.map f js)
  | Switch s ->
    Switch { s with data1 = f s.data1; control = f s.control; data2 = f s.data2 }
  | Multiport m ->
    Multiport
      {
        selector = f m.selector;
        cases = List.map (fun (k, j) -> (k, f j)) m.cases;
        default = f m.default;
      }
  | Chart (c, ins) -> Chart (c, List.map f ins)
  | Sub_if s -> Sub_if { s with cond = f s.cond; ins = List.map f s.ins }
  | Sub_enabled s ->
    Sub_enabled { s with enable = f s.enable; ins = List.map f s.ins }

let live (s : spec) =
  let alive = Array.make (Array.length s.sp_nodes) false in
  let rec mark i =
    if not alive.(i) then begin
      alive.(i) <- true;
      List.iter mark (node_deps s.sp_nodes.(i).n_kind)
    end
  in
  List.iter mark s.sp_outs;
  List.iter (fun (_, i) -> mark i) s.sp_writes;
  alive

let map_kind f = function
  | (In _ | Const _ | Counter _ | Ds_read _) as k -> k
  | Copy j -> Copy (f j)
  | Gain (g, j) -> Gain (g, f j)
  | Abs j -> Abs (f j)
  | Saturate (lo, hi, j) -> Saturate (lo, hi, f j)
  | Arith (op, a, b) -> Arith (op, f a, f b)
  | Guard_div (a, b) -> Guard_div (f a, f b)
  | Cmp (op, a, b) -> Cmp (op, f a, f b)
  | Cmp_const (op, t, j) -> Cmp_const (op, t, f j)
  | Not j -> Not (f j)
  | Logic (op, js) -> Logic (op, List.map f js)
  | Switch s ->
    Switch { s with data1 = f s.data1; control = f s.control; data2 = f s.data2 }
  | Multiport m ->
    Multiport
      {
        selector = f m.selector;
        cases = List.map (fun (l, j) -> (l, f j)) m.cases;
        default = f m.default;
      }
  | Unit_delay (v, j) -> Unit_delay (v, f j)
  | Delay (v, n, j) -> Delay (v, n, f j)
  | Integrator i -> Integrator { i with src = f i.src }
  | Chart (c, ins) -> Chart (c, List.map f ins)
  | Sub_if s -> Sub_if { s with cond = f s.cond; ins = List.map f s.ins }
  | Sub_enabled s ->
    Sub_enabled { s with enable = f s.enable; ins = List.map f s.ins }

let compact (s : spec) =
  let alive = live s in
  let n = Array.length s.sp_nodes in
  let remap = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if alive.(i) then begin
      remap.(i) <- !next;
      incr next
    end
  done;
  let kept = ref [] in
  for i = n - 1 downto 0 do
    if alive.(i) then
      kept :=
        { (s.sp_nodes.(i)) with
          n_kind = map_kind (fun j -> remap.(j)) s.sp_nodes.(i).n_kind }
        :: !kept
  done;
  {
    s with
    sp_nodes = Array.of_list !kept;
    sp_outs = List.map (fun i -> remap.(i)) s.sp_outs;
    sp_writes = List.map (fun (k, i) -> (k, remap.(i))) s.sp_writes;
  }

(* ------------------------------------------------------------------ *)
(* Chart spec -> Stateflow chart                                       *)

let rec ir_of_carith = function
  | CA_in k -> Ir.iv (chart_in_name k)
  | CA_data k -> Ir.sv (chart_data_name k)
  | CA_const v -> Ir.Const v
  | CA_add (a, b) -> Ir.Binop (Ir.Add, ir_of_carith a, ir_of_carith b)
  | CA_sub (a, b) -> Ir.Binop (Ir.Sub, ir_of_carith a, ir_of_carith b)
  | CA_mod (a, k) -> Ir.Binop (Ir.Mod, ir_of_carith a, Ir.ci k)

let rec ir_of_cexpr = function
  | CE_true -> Ir.cb true
  | CE_in k -> Ir.iv (chart_in_name k)
  | CE_data k -> Ir.sv (chart_data_name k)
  | CE_cmp (op, a, b) -> Ir.Cmp (op, ir_of_carith a, ir_of_carith b)
  | CE_and (a, b) -> Ir.And (ir_of_cexpr a, ir_of_cexpr b)
  | CE_or (a, b) -> Ir.Or (ir_of_cexpr a, ir_of_cexpr b)
  | CE_not a -> Ir.not_ (ir_of_cexpr a)

let stmt_of_caction = function
  | CSet_num (T_data k, e) -> Ir.assign_state (chart_data_name k) (ir_of_carith e)
  | CSet_num (T_out, e) -> Ir.assign_out "y" (ir_of_carith e)
  | CSet_bool (T_data k, e) -> Ir.assign_state (chart_data_name k) (ir_of_cexpr e)
  | CSet_bool (T_out, e) -> Ir.assign_out "y" (ir_of_cexpr e)

let chart_of_spec (c : chartspec) : C.t =
  let states =
    Array.to_list
      (Array.mapi
         (fun i st ->
           C.state
             ~entry:(List.map stmt_of_caction st.cs_entry)
             ~during:(List.map stmt_of_caction st.cs_during)
             (chart_state_name i))
         c.ch_states)
  in
  let transitions =
    List.map
      (fun t ->
        C.trans
          ~guard:(ir_of_cexpr t.ct_guard)
          ~action:(List.map stmt_of_caction t.ct_acts)
          (chart_state_name t.ct_src) (chart_state_name t.ct_dst))
      c.ch_trans
  in
  C.chart ~name:c.ch_name
    ~inputs:(List.mapi (fun k s -> Ir.input (chart_in_name k) (sty_ty s)) c.ch_ins)
    ~outputs:[ Ir.output "y" (sty_ty c.ch_out) ]
    ~data:
      (List.mapi
         (fun k (s, init) -> Ir.state (chart_data_name k) (sty_ty s) init)
         c.ch_data)
    (C.region ~initial:(chart_state_name c.ch_init) ~transitions states)

(* ------------------------------------------------------------------ *)
(* Spec -> Model                                                       *)

let singleton_wire = function
  | [ w ] -> w
  | ws -> Fmt.invalid_arg "fuzz: expected 1 subsystem output, got %d" (List.length ws)

let rec build_nodes b (nodes : node array) : Builder.wire array =
  let wires = Array.make (Array.length nodes) None in
  let wire i =
    match wires.(i) with
    | Some w -> w
    | None -> Fmt.invalid_arg "fuzz: forward reference to node %d" i
  in
  Array.iteri
    (fun i node ->
      let w =
        match node.n_kind with
        | In name -> Builder.inport b name (sty_ty node.n_sty)
        | Const v -> Builder.const b v
        | Copy j -> (
          match node.n_sty with
          | S_bool -> Builder.or_ b [ wire j ]
          | S_int | S_real -> Builder.gain b 1.0 (wire j))
        | Gain (g, j) -> Builder.gain b g (wire j)
        | Abs j -> Builder.abs_ b (wire j)
        | Saturate (lo, hi, j) -> Builder.saturation b ~lower:lo ~upper:hi (wire j)
        | Arith (op, x, y) -> (
          let x = wire x and y = wire y in
          match op with
          | A_add -> Builder.sum b [ x; y ]
          | A_sub -> Builder.diff b x y
          | A_mul -> Builder.prod b [ x; y ]
          | A_min -> Builder.min_ b [ x; y ]
          | A_max -> Builder.max_ b [ x; y ])
        | Guard_div (x, y) ->
          let one =
            match nodes.(y).n_sty with
            | S_int -> Builder.const_i b 1
            | _ -> Builder.const_r b 1.0
          in
          let den = Builder.max_ b [ Builder.abs_ b (wire y); one ] in
          Builder.divide b (wire x) den
        | Cmp (op, x, y) -> Builder.relational b op (wire x) (wire y)
        | Cmp_const (op, t, j) -> Builder.compare_const b op t (wire j)
        | Not j -> Builder.not_ b (wire j)
        | Logic (op, js) -> (
          let ws = List.map wire js in
          match op with
          | `And -> Builder.and_ b ws
          | `Or -> Builder.or_ b ws
          | `Xor -> Builder.xor_ b ws)
        | Switch s ->
          Builder.switch b ~cmp:s.cmp ~threshold:s.threshold ~data1:(wire s.data1)
            ~control:(wire s.control) ~data2:(wire s.data2) ()
        | Multiport m ->
          Builder.multiport b ~selector:(wire m.selector)
            (List.map (fun (l, j) -> (l, wire j)) m.cases)
            ~default:(wire m.default)
        | Unit_delay (init, j) -> Builder.unit_delay b init (wire j)
        | Delay (init, length, j) -> Builder.delay b ~initial:init ~length (wire j)
        | Integrator { initial; igain; src } ->
          Builder.integrator b ~gain:igain ~lower:(-100.) ~upper:100. ~initial
            (wire src)
        | Counter { initial; modulo } -> Builder.counter b ~initial ~modulo ()
        | Ds_read k -> Builder.ds_read b (store_name k)
        | Chart (c, ins) ->
          singleton_wire
            (Builder.chart b
               (Stateflow.Sf_compile.compile (chart_of_spec c))
               (List.map wire ins))
        | Sub_if { cond; ins; then_; else_ } ->
          singleton_wire
            (Builder.if_else b ~then_sys:(sub_model then_) ~else_sys:(sub_model else_)
               ~cond:(wire cond) (List.map wire ins))
        | Sub_enabled { enable; held; ins; sub } ->
          singleton_wire
            (Builder.enabled b ~held (sub_model sub) ~enable:(wire enable)
               (List.map wire ins))
      in
      wires.(i) <- Some w)
    nodes;
  Array.map Option.get wires

(* Subsystems may reference the enclosing model's data stores, so they
   must skip standalone validation; the outer [finish] re-validates them
   with the full store environment in scope. *)
and sub_model (ss : subspec) : Model.t =
  let b = Builder.create ss.sb_name in
  let wires = build_nodes b ss.sb_nodes in
  Builder.outport b "o" wires.(ss.sb_out);
  List.iter (fun (k, i) -> Builder.ds_write b (store_name k) wires.(i)) ss.sb_writes;
  Builder.finish_unvalidated b

let to_model (s : spec) : Model.t =
  let b = Builder.create s.sp_name in
  List.iteri
    (fun k (sty, init) -> Builder.data_store b (store_name k) (sty_ty sty) init)
    s.sp_stores;
  let wires = build_nodes b s.sp_nodes in
  List.iteri
    (fun k i -> Builder.outport b ("o" ^ string_of_int k) wires.(i))
    s.sp_outs;
  List.iter (fun (k, i) -> Builder.ds_write b (store_name k) wires.(i)) s.sp_writes;
  Builder.finish b

let program_of = function
  | M_diagram s -> Compile.to_program (to_model s)
  | M_chart c -> Stateflow.Sf_compile.to_program (chart_of_spec c)

let size_of = function
  | M_diagram s -> Model.block_count (to_model s)
  | M_chart c -> Array.length c.ch_states + List.length c.ch_trans

(* ------------------------------------------------------------------ *)
(* Random generation                                                   *)

let gen_sty rng = Splitmix.weighted rng [ (3, S_bool); (4, S_int); (3, S_real) ]

let gen_const rng = function
  | S_bool -> Value.Bool (Splitmix.bool rng)
  | S_int -> Value.Int (Splitmix.int_in rng (-5) 5)
  | S_real -> (
    match Splitmix.int rng 4 with
    | 0 -> Value.Real (float_of_int (Splitmix.int_in rng (-4) 4))
    | 1 -> Value.Real 0.5
    | _ -> Value.Real (Splitmix.float_in rng (-4.) 4.))

let gen_cmpop rng = Splitmix.choose rng [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ]

(* thresholds land on small integers (and the occasional half) so that
   comparisons against the bounded input domains actually flip *)
let gen_threshold rng =
  if Splitmix.int rng 4 = 0 then 0.5
  else float_of_int (Splitmix.int_in rng (-3) 3)

(* ---- charts ---- *)

let gen_chart rng ~name ~ins ~out ~size : chartspec =
  let ndata = Splitmix.int rng 3 in
  let data =
    List.init ndata (fun _ ->
        let s = Splitmix.weighted rng [ (2, S_bool); (4, S_int); (2, S_real) ] in
        (s, gen_const rng s))
  in
  let idxs p l = List.filteri (fun _ x -> p x) (List.mapi (fun i _ -> i) l) in
  let num_ins = idxs (fun i -> is_num (List.nth ins i)) ins in
  let bool_ins = idxs (fun i -> List.nth ins i = S_bool) ins in
  let num_data = idxs (fun i -> is_num (fst (List.nth data i))) data in
  let bool_data = idxs (fun i -> fst (List.nth data i) = S_bool) data in
  let rec arith depth =
    let tag =
      Splitmix.weighted rng
        [
          ((if num_ins <> [] then 3 else 0), `In);
          ((if num_data <> [] then 3 else 0), `Data);
          (2, `Const);
          ((if depth > 0 then 3 else 0), `Add);
          ((if depth > 0 then 2 else 0), `Sub);
          ((if depth > 0 then 2 else 0), `Mod);
        ]
    in
    match tag with
    | `In -> CA_in (Splitmix.choose rng num_ins)
    | `Data -> CA_data (Splitmix.choose rng num_data)
    | `Const ->
      CA_const (gen_const rng (Splitmix.choose rng [ S_int; S_int; S_real ]))
    | `Add -> CA_add (arith (depth - 1), arith (depth - 1))
    | `Sub -> CA_sub (arith (depth - 1), arith (depth - 1))
    | `Mod -> CA_mod (arith (depth - 1), Splitmix.int_in rng 2 5)
  in
  let rec cexpr depth =
    let tag =
      Splitmix.weighted rng
        [
          (5, `Cmp);
          ((if bool_ins <> [] then 2 else 0), `In);
          ((if bool_data <> [] then 2 else 0), `Data);
          ((if depth > 0 then 2 else 0), `And);
          ((if depth > 0 then 2 else 0), `Or);
          ((if depth > 0 then 2 else 0), `Not);
          (1, `True);
        ]
    in
    match tag with
    | `Cmp -> CE_cmp (gen_cmpop rng, arith 1, arith 1)
    | `In -> CE_in (Splitmix.choose rng bool_ins)
    | `Data -> CE_data (Splitmix.choose rng bool_data)
    | `And -> CE_and (cexpr (depth - 1), cexpr (depth - 1))
    | `Or -> CE_or (cexpr (depth - 1), cexpr (depth - 1))
    | `Not -> CE_not (cexpr (depth - 1))
    | `True -> CE_true
  in
  let targets =
    (T_out, out) :: List.mapi (fun k (s, _) -> (T_data k, s)) data
  in
  let action () =
    let t, s = Splitmix.choose rng targets in
    if s = S_bool then CSet_bool (t, cexpr 1) else CSet_num (t, arith 2)
  in
  let actions n = List.init (Splitmix.int rng (n + 1)) (fun _ -> action ()) in
  let nstates = Splitmix.int_in rng 2 (2 + min 2 (size / 8)) in
  let states =
    Array.init nstates (fun _ -> { cs_entry = actions 2; cs_during = actions 2 })
  in
  let ntrans = Splitmix.int_in rng (nstates - 1) (2 * nstates) in
  let trans =
    List.init ntrans (fun _ ->
        {
          ct_src = Splitmix.int rng nstates;
          ct_dst = Splitmix.int rng nstates;
          ct_guard = cexpr 2;
          ct_acts = actions 1;
        })
  in
  {
    ch_name = name;
    ch_ins = ins;
    ch_out = out;
    ch_data = data;
    ch_init = Splitmix.int rng nstates;
    ch_states = states;
    ch_trans = trans;
  }

(* ---- diagrams ---- *)

type gctx = {
  rng : Splitmix.t;
  mutable acc : node list;  (* newest first *)
  mutable count : int;
  stores : (sty * Value.t) list;
}

let add ctx n =
  let i = ctx.count in
  ctx.acc <- n :: ctx.acc;
  ctx.count <- i + 1;
  i

let candidates ctx p =
  let rec go i acc = function
    | [] -> acc
    | n :: rest -> go (i - 1) (if p n then i :: acc else acc) rest
  in
  go (ctx.count - 1) [] ctx.acc

let store_idxs ctx p =
  let rec go i = function
    | [] -> []
    | (s, _) :: rest -> if p s then i :: go (i + 1) rest else go (i + 1) rest
  in
  go 0 ctx.stores

let gen_gain_int rng = float_of_int (Splitmix.choose rng [ -2; -1; 2; 3 ])
let gen_gain_real rng = Splitmix.choose rng [ 0.5; 1.5; -0.5; -1.25 ]

(* [gen_node ctx ~depth ~allow_in s] draws one node of class [s] whose
   operands all come from already-generated nodes.  [depth] = 0 at the
   top level, where charts and conditional subsystems are allowed. *)
let rec gen_node ctx ~depth ~allow_in s : node =
  let rng = ctx.rng in
  let bools = candidates ctx (fun n -> n.n_sty = S_bool) in
  let ints = candidates ctx (fun n -> n.n_sty = S_int) in
  let reals = candidates ctx (fun n -> n.n_sty = S_real) in
  let nums = ints @ reals in
  let stores_of p = store_idxs ctx p in
  let top = depth = 0 in
  let w c w tag = ((if c then w else 0), tag) in
  let pick l = Splitmix.choose rng l in
  let kind =
    match s with
    | S_bool -> (
      let tag =
        Splitmix.weighted rng
          [
            w allow_in 3 `In;
            w true 1 `Const;
            w (nums <> []) 4 `Cmp;
            w (nums <> []) 3 `Cmp_const;
            w (bools <> []) 2 `Not;
            w (bools <> []) 3 `Logic;
            w (bools <> []) 2 `Delay1;
            w (bools <> [] && nums <> []) 2 `Switch;
            w (bools <> [] && ints <> []) 1 `Multiport;
            w (stores_of (fun s -> s = S_bool) <> []) 2 `Ds_read;
            w (top && nums @ bools <> []) 2 `Chart;
            w (top && bools <> []) 1 `Sub_if;
          ]
      in
      match tag with
      | `In -> In ("i" ^ string_of_int ctx.count)
      | `Const -> Const (gen_const rng S_bool)
      | `Cmp -> Cmp (gen_cmpop rng, pick nums, pick nums)
      | `Cmp_const -> Cmp_const (gen_cmpop rng, gen_threshold rng, pick nums)
      | `Not -> Not (pick bools)
      | `Logic ->
        let op = Splitmix.choose rng [ `And; `Or; `Xor ] in
        let arity = Splitmix.int_in rng 2 3 in
        Logic (op, List.init arity (fun _ -> pick bools))
      | `Delay1 -> Unit_delay (gen_const rng S_bool, pick bools)
      | `Switch ->
        Switch
          {
            cmp = gen_cmpop rng;
            threshold = gen_threshold rng;
            data1 = pick bools;
            control = pick nums;
            data2 = pick bools;
          }
      | `Multiport -> gen_multiport ctx ~pool:bools ~ints
      | `Ds_read -> Ds_read (pick (stores_of (fun s -> s = S_bool)))
      | `Chart -> gen_chart_node ctx ~out:S_bool
      | `Sub_if -> gen_sub_if ctx ~out:S_bool ~bools)
    | S_int -> (
      let tag =
        Splitmix.weighted rng
          [
            w allow_in 3 `In;
            w true 2 `Const;
            w true 2 `Counter;
            w (ints <> []) 4 `Arith;
            w (ints <> []) 2 `Div;
            w (ints <> []) 1 `Abs;
            w (ints <> []) 2 `Gain;
            w (ints <> []) 2 `Delay1;
            w (ints <> []) 2 `DelayN;
            w (ints <> [] && nums <> []) 3 `Switch;
            w (ints <> []) 2 `Multiport;
            w (stores_of (fun s -> s = S_int) <> []) 2 `Ds_read;
            w (top && nums @ bools <> []) 1 `Chart;
            w (top && bools <> []) 1 `Sub_if;
            w (top && bools <> []) 1 `Sub_en;
          ]
      in
      match tag with
      | `In -> In ("i" ^ string_of_int ctx.count)
      | `Const -> Const (gen_const rng S_int)
      | `Counter ->
        let modulo = Splitmix.int_in rng 2 6 in
        Counter { initial = Splitmix.int rng modulo; modulo }
      | `Arith ->
        let op =
          Splitmix.weighted rng
            [ (3, A_add); (3, A_sub); (1, A_mul); (2, A_min); (2, A_max) ]
        in
        Arith (op, pick ints, pick ints)
      | `Div -> Guard_div (pick ints, pick ints)
      | `Abs -> Abs (pick ints)
      | `Gain -> Gain (gen_gain_int rng, pick ints)
      | `Delay1 -> Unit_delay (gen_const rng S_int, pick ints)
      | `DelayN ->
        Delay (gen_const rng S_int, Splitmix.int_in rng 1 4, pick ints)
      | `Switch ->
        Switch
          {
            cmp = gen_cmpop rng;
            threshold = gen_threshold rng;
            data1 = pick ints;
            control = pick nums;
            data2 = pick ints;
          }
      | `Multiport -> gen_multiport ctx ~pool:ints ~ints
      | `Ds_read -> Ds_read (pick (stores_of (fun s -> s = S_int)))
      | `Chart -> gen_chart_node ctx ~out:S_int
      | `Sub_if -> gen_sub_if ctx ~out:S_int ~bools
      | `Sub_en -> gen_sub_enabled ctx ~out:S_int ~bools)
    | S_real -> (
      let tag =
        Splitmix.weighted rng
          [
            w allow_in 3 `In;
            w true 2 `Const;
            w (reals <> []) 4 `Arith;
            w (reals <> []) 2 `Div;
            w (nums <> []) 2 `Gain;
            w (reals <> []) 2 `Sat;
            w (nums <> []) 2 `Integr;
            w (reals <> []) 2 `Delay1;
            w (reals <> []) 1 `DelayN;
            w (reals <> [] && nums <> []) 2 `Switch;
            w (stores_of (fun s -> s = S_real) <> []) 2 `Ds_read;
            w (top && nums @ bools <> []) 1 `Chart;
            w (top && bools <> []) 1 `Sub_en;
          ]
      in
      match tag with
      | `In -> In ("i" ^ string_of_int ctx.count)
      | `Const -> Const (gen_const rng S_real)
      | `Arith ->
        let op =
          Splitmix.weighted rng
            [ (3, A_add); (3, A_sub); (1, A_mul); (2, A_min); (2, A_max) ]
        in
        Arith (op, pick reals, pick nums)
      | `Div ->
        (* at least one real operand so the quotient is real *)
        let x = pick nums in
        let y = if List.mem x reals then pick nums else pick reals in
        Guard_div (x, y)
      | `Gain -> Gain (gen_gain_real rng, pick nums)
      | `Sat ->
        let lo = float_of_int (Splitmix.int_in rng (-3) 0) in
        let hi = lo +. float_of_int (Splitmix.int_in rng 1 4) in
        Saturate (lo, hi, pick reals)
      | `Integr ->
        Integrator
          {
            initial = float_of_int (Splitmix.int_in rng (-2) 2);
            igain = Splitmix.choose rng [ 1.0; 0.5; 2.0; -1.0 ];
            src = pick nums;
          }
      | `Delay1 -> Unit_delay (gen_const rng S_real, pick reals)
      | `DelayN ->
        Delay (gen_const rng S_real, Splitmix.int_in rng 1 4, pick reals)
      | `Switch ->
        Switch
          {
            cmp = gen_cmpop rng;
            threshold = gen_threshold rng;
            data1 = pick reals;
            control = pick nums;
            data2 = pick reals;
          }
      | `Ds_read -> Ds_read (pick (stores_of (fun s -> s = S_real)))
      | `Chart -> gen_chart_node ctx ~out:S_real
      | `Sub_en -> gen_sub_enabled ctx ~out:S_real ~bools)
  in
  { n_sty = s; n_kind = kind }

and gen_multiport ctx ~pool ~ints =
  let rng = ctx.rng in
  let ncases = Splitmix.int_in rng 1 3 in
  Multiport
    {
      selector = Splitmix.choose rng ints;
      cases = List.init ncases (fun l -> (l, Splitmix.choose rng pool));
      default = Splitmix.choose rng pool;
    }

and gen_chart_node ctx ~out =
  let rng = ctx.rng in
  let all = candidates ctx (fun _ -> true) in
  let ndeps = Splitmix.int_in rng 1 2 in
  let deps = List.init ndeps (fun _ -> Splitmix.choose rng all) in
  let nodes = Array.of_list (List.rev ctx.acc) in
  let ins = List.map (fun i -> nodes.(i).n_sty) deps in
  let c =
    gen_chart rng
      ~name:("c" ^ string_of_int ctx.count)
      ~ins ~out ~size:(8 + Splitmix.int rng 8)
  in
  Chart (c, deps)

and gen_sub_if ctx ~out ~bools =
  let rng = ctx.rng in
  let cond = Splitmix.choose rng bools in
  let formals, ins = gen_sub_formals ctx in
  let base = "sub" ^ string_of_int ctx.count in
  let then_ = gen_sub ctx ~formals ~out ~name:(base ^ "t") in
  let else_ = gen_sub ctx ~formals ~out ~name:(base ^ "e") in
  Sub_if { cond; ins; then_; else_ }

and gen_sub_enabled ctx ~out ~bools =
  let rng = ctx.rng in
  let enable = Splitmix.choose rng bools in
  let formals, ins = gen_sub_formals ctx in
  let sub = gen_sub ctx ~formals ~out ~name:("sub" ^ string_of_int ctx.count) in
  Sub_enabled { enable; held = Splitmix.bool rng; ins; sub }

and gen_sub_formals ctx =
  let rng = ctx.rng in
  let all = candidates ctx (fun _ -> true) in
  let ndeps = Splitmix.int rng 3 in
  let deps = List.init ndeps (fun _ -> Splitmix.choose rng all) in
  let nodes = Array.of_list (List.rev ctx.acc) in
  (List.map (fun i -> nodes.(i).n_sty) deps, deps)

(* A subsystem body: formal inports first, then a small node soup, then
   (if needed) a coercion node guaranteeing something of the requested
   output class exists. *)
and gen_sub ctx ~formals ~out ~name : subspec =
  let rng = ctx.rng in
  let sctx = { rng; acc = []; count = 0; stores = ctx.stores } in
  List.iteri
    (fun k s ->
      ignore (add sctx { n_sty = s; n_kind = In ("i" ^ string_of_int k) }))
    formals;
  let budget = Splitmix.int_in rng 3 6 in
  for _ = 1 to budget do
    let s = gen_sty rng in
    ignore (add sctx (gen_node sctx ~depth:1 ~allow_in:false s))
  done;
  let of_out = candidates sctx (fun n -> n.n_sty = out) in
  let out_idx =
    match of_out with
    | _ :: _ -> Splitmix.choose rng of_out
    | [] ->
      let nums = candidates sctx (fun n -> is_num n.n_sty) in
      let coercion =
        match (out, nums) with
        | S_bool, j :: _ -> { n_sty = S_bool; n_kind = Cmp_const (Ir.Gt, 0.0, j) }
        | S_real, j :: _ -> { n_sty = S_real; n_kind = Gain (0.5, j) }
        | S_int, j :: _ when (Array.of_list (List.rev sctx.acc)).(j).n_sty = S_int
          -> { n_sty = S_int; n_kind = Copy j }
        | s, _ -> { n_sty = s; n_kind = Const (gen_const rng s) }
      in
      add sctx coercion
  in
  let writes =
    let numeric_stores = store_idxs sctx is_num in
    let bool_stores = store_idxs sctx (fun s -> s = S_bool) in
    if Splitmix.bool rng then []
    else
      let num_nodes = candidates sctx (fun n -> is_num n.n_sty) in
      let bool_nodes = candidates sctx (fun n -> n.n_sty = S_bool) in
      match
        Splitmix.weighted rng
          [
            ((if numeric_stores <> [] && num_nodes <> [] then 2 else 0), `Num);
            ((if bool_stores <> [] && bool_nodes <> [] then 1 else 0), `Bool);
            (1, `None);
          ]
      with
      | `Num ->
        [ (Splitmix.choose rng numeric_stores, Splitmix.choose rng num_nodes) ]
      | `Bool ->
        [ (Splitmix.choose rng bool_stores, Splitmix.choose rng bool_nodes) ]
      | `None -> []
  in
  {
    sb_name = name;
    sb_nodes = Array.of_list (List.rev sctx.acc);
    sb_out = out_idx;
    sb_writes = writes;
  }

let gen_spec rng ~size ~name : spec =
  let nstores =
    Splitmix.weighted rng [ (3, 0); (3, 1); (2, 2); (1, 3) ]
  in
  let stores =
    List.init nstores (fun _ ->
        let s = gen_sty rng in
        (s, gen_const rng s))
  in
  let ctx = { rng; acc = []; count = 0; stores } in
  let nseed = Splitmix.int_in rng 2 4 in
  for _ = 1 to nseed do
    let s = gen_sty rng in
    ignore (add ctx { n_sty = s; n_kind = In ("i" ^ string_of_int ctx.count) })
  done;
  let budget = max 1 (size - nseed) in
  for _ = 1 to budget do
    let s = gen_sty rng in
    ignore (add ctx (gen_node ctx ~depth:0 ~allow_in:true s))
  done;
  let n = ctx.count in
  let nouts = Splitmix.int_in rng 1 3 in
  let outs =
    List.sort_uniq compare (List.init nouts (fun _ -> Splitmix.int rng n))
  in
  let nodes = Array.of_list (List.rev ctx.acc) in
  let nwrites = Splitmix.weighted rng [ (4, 0); (3, 1); (1, 2) ] in
  let writes = ref [] in
  for _ = 1 to nwrites do
    if stores <> [] then begin
      let k = Splitmix.int rng (List.length stores) in
      if not (List.mem_assoc k !writes) then begin
        let ssty = fst (List.nth stores k) in
        let ok n = if ssty = S_bool then n.n_sty = S_bool else is_num n.n_sty in
        match candidates ctx ok with
        | [] -> ()
        | l -> writes := (k, Splitmix.choose rng l) :: !writes
      end
    end
  done;
  {
    sp_name = name;
    sp_stores = stores;
    sp_nodes = nodes;
    sp_outs = outs;
    sp_writes = List.rev !writes;
  }

let gen_model rng ~size =
  if Splitmix.int rng 5 = 0 then
    let nins = Splitmix.int_in rng 1 3 in
    let ins = List.init nins (fun _ -> gen_sty rng) in
    let out = gen_sty rng in
    M_chart (gen_chart rng ~name:"fuzz_chart" ~ins ~out ~size)
  else M_diagram (gen_spec rng ~size ~name:"fuzz")

(* ---- inputs ---- *)

let rec gen_value rng (ty : Value.ty) =
  match ty with
  | Value.Tbool -> Value.Bool (Splitmix.bool rng)
  | Value.Tint { lo; hi } -> (
    match
      Splitmix.weighted rng [ (5, `U); (1, `Lo); (1, `Hi); (2, `Zero) ]
    with
    | `U -> Value.Int (Splitmix.int_in rng lo hi)
    | `Lo -> Value.Int lo
    | `Hi -> Value.Int hi
    | `Zero -> Value.Int (if lo <= 0 && 0 <= hi then 0 else lo))
  | Value.Treal { lo; hi } -> (
    match
      Splitmix.weighted rng
        [ (4, `U); (2, `Intv); (1, `Lo); (1, `Hi); (2, `Zero) ]
    with
    | `U -> Value.Real (Splitmix.float_in rng lo hi)
    | `Intv ->
      let ilo = int_of_float (Float.ceil lo)
      and ihi = int_of_float (Float.floor hi) in
      if ilo > ihi then Value.Real (Splitmix.float_in rng lo hi)
      else Value.Real (float_of_int (Splitmix.int_in rng ilo ihi))
    | `Lo -> Value.Real lo
    | `Hi -> Value.Real hi
    | `Zero -> Value.Real (if lo <= 0. && 0. <= hi then 0. else lo))
  | Value.Tvec (ety, n) -> Value.Vec (Array.init n (fun _ -> gen_value rng ety))

let gen_inputs rng (prog : Ir.program) ~steps =
  List.init steps (fun _ ->
      List.map (fun (v : Ir.var) -> (v.Ir.name, gen_value rng v.Ir.ty)) prog.Ir.inputs)

(* ------------------------------------------------------------------ *)
(* Reproducer printing                                                 *)

let float_lit r =
  if Float.is_nan r then "Float.nan"
  else if r = Float.infinity then "Float.infinity"
  else if r = Float.neg_infinity then "Float.neg_infinity"
  else if Float.is_integer r && Float.abs r < 1e16 then Fmt.str "(%.1f)" r
  else Fmt.str "(%.17g)" r

let rec pp_value ppf (v : Value.t) =
  match v with
  | Value.Bool b -> Fmt.pf ppf "(Value.Bool %b)" b
  | Value.Int i -> Fmt.pf ppf "(Value.Int (%d))" i
  | Value.Real r -> Fmt.pf ppf "(Value.Real %s)" (float_lit r)
  | Value.Vec vs ->
    Fmt.pf ppf "(Value.Vec [| %a |])"
      Fmt.(array ~sep:(any "; ") pp_value)
      vs

let rec pp_ty ppf (ty : Value.ty) =
  match ty with
  | Value.Tbool -> Fmt.string ppf "Value.Tbool"
  | Value.Tint { lo; hi } -> Fmt.pf ppf "(Value.tint_range (%d) (%d))" lo hi
  | Value.Treal { lo; hi } ->
    Fmt.pf ppf "(Value.treal_range %s %s)" (float_lit lo) (float_lit hi)
  | Value.Tvec (ety, n) -> Fmt.pf ppf "(Value.Tvec (%a, %d))" pp_ty ety n

let cmp_lit = function
  | Ir.Eq -> "Ir.Eq"
  | Ir.Ne -> "Ir.Ne"
  | Ir.Lt -> "Ir.Lt"
  | Ir.Le -> "Ir.Le"
  | Ir.Gt -> "Ir.Gt"
  | Ir.Ge -> "Ir.Ge"

let binop_lit = function
  | Ir.Add -> "Ir.Add"
  | Ir.Sub -> "Ir.Sub"
  | Ir.Mul -> "Ir.Mul"
  | Ir.Div -> "Ir.Div"
  | Ir.Mod -> "Ir.Mod"
  | Ir.Min -> "Ir.Min"
  | Ir.Max -> "Ir.Max"

(* the subset of IR that chart guards/actions use, as OCaml constructors *)
let rec pp_ir_expr ppf (e : Ir.expr) =
  match e with
  | Ir.Const v -> Fmt.pf ppf "(Ir.Const %a)" pp_value v
  | Ir.Var (Ir.Input, n) -> Fmt.pf ppf "(Ir.iv %S)" n
  | Ir.Var (Ir.State, n) -> Fmt.pf ppf "(Ir.sv %S)" n
  | Ir.Var (Ir.Local, n) -> Fmt.pf ppf "(Ir.lv %S)" n
  | Ir.Var (Ir.Output, n) -> Fmt.pf ppf "(Ir.Var (Ir.Output, %S))" n
  | Ir.Binop (op, a, b) ->
    Fmt.pf ppf "(Ir.Binop (%s, %a, %a))" (binop_lit op) pp_ir_expr a pp_ir_expr b
  | Ir.Cmp (op, a, b) ->
    Fmt.pf ppf "(Ir.Cmp (%s, %a, %a))" (cmp_lit op) pp_ir_expr a pp_ir_expr b
  | Ir.And (a, b) -> Fmt.pf ppf "(Ir.And (%a, %a))" pp_ir_expr a pp_ir_expr b
  | Ir.Or (a, b) -> Fmt.pf ppf "(Ir.Or (%a, %a))" pp_ir_expr a pp_ir_expr b
  | Ir.Unop (Ir.Not, a) -> Fmt.pf ppf "(Ir.not_ %a)" pp_ir_expr a
  | Ir.Unop _ | Ir.Ite _ | Ir.Index _ ->
    Fmt.pf ppf "(* unsupported expr %a *)" Ir.pp_expr e

let pp_ir_stmt ppf (s : Ir.stmt) =
  match s with
  | Ir.Assign (Ir.Lvar (Ir.State, n), e) ->
    Fmt.pf ppf "Ir.assign_state %S %a" n pp_ir_expr e
  | Ir.Assign (Ir.Lvar (Ir.Output, n), e) ->
    Fmt.pf ppf "Ir.assign_out %S %a" n pp_ir_expr e
  | _ -> Fmt.pf ppf "(* unsupported stmt %a *)" Ir.pp_stmt s

let pp_chart_expr ppf (c : chartspec) =
  let pp_actions ppf acts =
    Fmt.pf ppf "[ %a ]" Fmt.(list ~sep:(any "; ") pp_ir_stmt)
      (List.map stmt_of_caction acts)
  in
  Fmt.pf ppf "@[<v 2>Stateflow.Chart.chart ~name:%S@," c.ch_name;
  Fmt.pf ppf "~inputs:[ %a ]@,"
    Fmt.(
      list ~sep:(any "; ") (fun ppf (k, s) ->
          Fmt.pf ppf "Ir.input %S %a" (chart_in_name k) pp_ty (sty_ty s)))
    (List.mapi (fun k s -> (k, s)) c.ch_ins);
  Fmt.pf ppf "~outputs:[ Ir.output \"y\" %a ]@," pp_ty (sty_ty c.ch_out);
  Fmt.pf ppf "~data:[ %a ]@,"
    Fmt.(
      list ~sep:(any "; ") (fun ppf (k, (s, init)) ->
          Fmt.pf ppf "Ir.state %S %a %a" (chart_data_name k) pp_ty (sty_ty s)
            pp_value init))
    (List.mapi (fun k d -> (k, d)) c.ch_data);
  Fmt.pf ppf "@[<v 2>(Stateflow.Chart.region ~initial:%S@,"
    (chart_state_name c.ch_init);
  Fmt.pf ppf "~transitions:@[<v 2>[ %a ]@]@,"
    Fmt.(
      list ~sep:(any ";@,") (fun ppf t ->
          Fmt.pf ppf "Stateflow.Chart.trans ~guard:%a ~action:%a %S %S" pp_ir_expr
            (ir_of_cexpr t.ct_guard) pp_actions t.ct_acts
            (chart_state_name t.ct_src) (chart_state_name t.ct_dst)))
    c.ch_trans;
  Fmt.pf ppf "@[<v 2>[ %a ])@]@]@]"
    Fmt.(
      list ~sep:(any ";@,") (fun ppf (k, st) ->
          Fmt.pf ppf "Stateflow.Chart.state ~entry:%a ~during:%a %S" pp_actions
            st.cs_entry pp_actions st.cs_during (chart_state_name k)))
    (Array.to_list (Array.mapi (fun k st -> (k, st)) c.ch_states))

let rec pp_node_build ~b ~var ppf ((nodes : node array), (node : node)) =
  let n j = var j in
  match node.n_kind with
  | In name -> Fmt.pf ppf "Builder.inport %s %S %a" b name pp_ty (sty_ty node.n_sty)
  | Const v -> Fmt.pf ppf "Builder.const %s %a" b pp_value v
  | Copy j -> (
    match node.n_sty with
    | S_bool -> Fmt.pf ppf "Builder.or_ %s [ %s ]" b (n j)
    | _ -> Fmt.pf ppf "Builder.gain %s 1.0 %s" b (n j))
  | Gain (g, j) -> Fmt.pf ppf "Builder.gain %s %s %s" b (float_lit g) (n j)
  | Abs j -> Fmt.pf ppf "Builder.abs_ %s %s" b (n j)
  | Saturate (lo, hi, j) ->
    Fmt.pf ppf "Builder.saturation %s ~lower:%s ~upper:%s %s" b (float_lit lo)
      (float_lit hi) (n j)
  | Arith (op, x, y) -> (
    match op with
    | A_add -> Fmt.pf ppf "Builder.sum %s [ %s; %s ]" b (n x) (n y)
    | A_sub -> Fmt.pf ppf "Builder.diff %s %s %s" b (n x) (n y)
    | A_mul -> Fmt.pf ppf "Builder.prod %s [ %s; %s ]" b (n x) (n y)
    | A_min -> Fmt.pf ppf "Builder.min_ %s [ %s; %s ]" b (n x) (n y)
    | A_max -> Fmt.pf ppf "Builder.max_ %s [ %s; %s ]" b (n x) (n y))
  | Guard_div (x, y) ->
    let one =
      match nodes.(y).n_sty with
      | S_int -> Fmt.str "Builder.const_i %s 1" b
      | _ -> Fmt.str "Builder.const_r %s 1.0" b
    in
    Fmt.pf ppf "Builder.divide %s %s (Builder.max_ %s [ Builder.abs_ %s %s; %s ])"
      b (n x) b b (n y) one
  | Cmp (op, x, y) ->
    Fmt.pf ppf "Builder.relational %s %s %s %s" b (cmp_lit op) (n x) (n y)
  | Cmp_const (op, t, j) ->
    Fmt.pf ppf "Builder.compare_const %s %s %s %s" b (cmp_lit op) (float_lit t) (n j)
  | Not j -> Fmt.pf ppf "Builder.not_ %s %s" b (n j)
  | Logic (op, js) ->
    let f = match op with `And -> "and_" | `Or -> "or_" | `Xor -> "xor_" in
    Fmt.pf ppf "Builder.%s %s [ %s ]" f b (String.concat "; " (List.map n js))
  | Switch s ->
    Fmt.pf ppf
      "Builder.switch %s ~cmp:%s ~threshold:%s ~data1:%s ~control:%s ~data2:%s ()"
      b (cmp_lit s.cmp) (float_lit s.threshold) (n s.data1) (n s.control)
      (n s.data2)
  | Multiport m ->
    Fmt.pf ppf "Builder.multiport %s ~selector:%s [ %s ] ~default:%s" b
      (n m.selector)
      (String.concat "; "
         (List.map (fun (l, j) -> Fmt.str "(%d, %s)" l (n j)) m.cases))
      (n m.default)
  | Unit_delay (init, j) ->
    Fmt.pf ppf "Builder.unit_delay %s %a %s" b pp_value init (n j)
  | Delay (init, len, j) ->
    Fmt.pf ppf "Builder.delay %s ~initial:%a ~length:%d %s" b pp_value init len (n j)
  | Integrator { initial; igain; src } ->
    Fmt.pf ppf
      "Builder.integrator %s ~gain:%s ~lower:(-100.0) ~upper:100.0 ~initial:%s %s"
      b (float_lit igain) (float_lit initial) (n src)
  | Counter { initial; modulo } ->
    Fmt.pf ppf "Builder.counter %s ~initial:%d ~modulo:%d ()" b initial modulo
  | Ds_read k -> Fmt.pf ppf "Builder.ds_read %s %S" b (store_name k)
  | Chart (c, ins) ->
    Fmt.pf ppf
      "(match Builder.chart %s (Stateflow.Sf_compile.compile@ (%a))@ [ %s ] with@ \
       | [ w ] -> w | _ -> assert false)"
      b pp_chart_expr c
      (String.concat "; " (List.map n ins))
  | Sub_if { cond; ins; then_; else_ } ->
    Fmt.pf ppf
      "(match Builder.if_else %s ~then_sys:%a ~else_sys:%a ~cond:%s [ %s ] with@ \
       | [ w ] -> w | _ -> assert false)"
      b pp_sub_expr then_ pp_sub_expr else_ (n cond)
      (String.concat "; " (List.map n ins))
  | Sub_enabled { enable; held; ins; sub } ->
    Fmt.pf ppf
      "(match Builder.enabled %s ~held:%b %a ~enable:%s [ %s ] with@ | [ w ] -> w \
       | _ -> assert false)"
      b held pp_sub_expr sub (n enable)
      (String.concat "; " (List.map n ins))

and pp_sub_expr ppf (ss : subspec) =
  let b = "sb" in
  let var j = "m" ^ string_of_int j in
  Fmt.pf ppf "@[<v 2>(let %s = Builder.create %S in@," b ss.sb_name;
  Array.iteri
    (fun i node ->
      Fmt.pf ppf "let %s = %a in@," (var i) (pp_node_build ~b ~var)
        (ss.sb_nodes, node))
    ss.sb_nodes;
  Fmt.pf ppf "Builder.outport %s \"o\" %s;@," b (var ss.sb_out);
  List.iter
    (fun (k, i) ->
      Fmt.pf ppf "Builder.ds_write %s %S %s;@," b (store_name k) (var i))
    ss.sb_writes;
  Fmt.pf ppf "Builder.finish_unvalidated %s)@]" b

let pp_steps ppf steps =
  Fmt.pf ppf "@[<v 2>let steps =@,[@,";
  List.iter
    (fun row ->
      Fmt.pf ppf "  [ %a ];@,"
        Fmt.(
          list ~sep:(any "; ") (fun ppf (name, v) ->
              Fmt.pf ppf "(%S, %a)" name pp_value v))
        row)
    steps;
  Fmt.pf ppf "]@]@,in@,"

let pp_repro ppf ((m : model_spec), steps) =
  Fmt.pf ppf "@[<v>(* minimal fuzz reproducer; paste into a test *)@,";
  Fmt.pf ppf "let open Slim in@,";
  (match m with
  | M_diagram s ->
    Fmt.pf ppf "let b = Builder.create %S in@," s.sp_name;
    List.iteri
      (fun k (sty, init) ->
        Fmt.pf ppf "Builder.data_store b %S %a %a;@," (store_name k) pp_ty
          (sty_ty sty) pp_value init)
      s.sp_stores;
    let var j = "n" ^ string_of_int j in
    Array.iteri
      (fun i node ->
        Fmt.pf ppf "let %s = %a in@," (var i)
          (pp_node_build ~b:"b" ~var)
          (s.sp_nodes, node))
      s.sp_nodes;
    List.iteri
      (fun k i -> Fmt.pf ppf "Builder.outport b \"o%d\" %s;@," k (var i))
      s.sp_outs;
    List.iter
      (fun (k, i) ->
        Fmt.pf ppf "Builder.ds_write b %S %s;@," (store_name k) (var i))
      s.sp_writes;
    Fmt.pf ppf "let prog = Compile.to_program (Builder.finish b) in@,"
  | M_chart c ->
    Fmt.pf ppf "let prog = Stateflow.Sf_compile.to_program@ (%a)@,in@,"
      pp_chart_expr c);
  pp_steps ppf steps;
  Fmt.pf ppf "ignore (prog, steps)@]"
