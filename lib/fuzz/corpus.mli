(** On-disk regression corpus of shrunk fuzz failures.

    The corpus is a JSONL file: one flat JSON object per line with the
    fields [schema_version] (currently 1), [seed], [index], [oracle],
    [max_steps] and [message].  A case is addressed purely by
    [(seed, index, max_steps)] — {!Campaign.run_case} regenerates it
    deterministically — so replaying an entry re-runs the oracle that
    once failed and expects it to pass now (the corpus records {e
    fixed} bugs; a replay failure means a regression).

    [fuzz --corpus DIR] appends every campaign failure to
    [DIR/corpus.jsonl]; [fuzz --replay-corpus FILE] replays a file and
    exits non-zero when any entry fails again.  The committed
    [test/corpus/corpus.jsonl] is replayed on every [dune runtest]. *)

type entry = {
  e_seed : int;  (** campaign seed *)
  e_index : int;  (** case index within the campaign *)
  e_oracle : string;  (** oracle that failed ("build" or {!Oracle.all}) *)
  e_max_steps : int;  (** campaign [--max-steps] (case addressing) *)
  e_message : string;  (** original failure message, for the record *)
}

val schema_version : int

val to_line : entry -> string
(** One JSONL line, no trailing newline. *)

val of_line : string -> (entry, string) result
(** Strict parse of {!to_line}'s format; [Error] explains the defect.
    Blank lines and [#] comments yield [Error] — filter first. *)

val load : string -> (entry list, string) result
(** Read a corpus file, skipping blank and [#]-comment lines. *)

val append : path:string -> entry list -> unit
(** Append entries to [path], creating the file (and parents' right to
    exist is the caller's concern — only the file is created). *)

val of_failures :
  seed:int -> max_steps:int -> Campaign.failure list -> entry list

val replay : entry -> Oracle.verdict
(** Regenerate the entry's case and run its oracle ([Pass] = the bug
    stayed fixed).  Unknown oracle names fail. *)
