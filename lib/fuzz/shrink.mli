(** Greedy test-case shrinking.

    Given a failing (model, input sequence) pair and a [still_fails]
    predicate, {!minimize} repeatedly tries size-reducing edits —
    shorten the input sequence, replace nodes by default constants
    (dead nodes are then dropped by {!Gen.compact}), shrink constants,
    delay lengths, switch thresholds, multiport cases, chart
    transitions and actions, conditional-subsystem internals (and
    hoist a formal-fed internal node out of its subsystem entirely) —
    accepting any edit that keeps the case
    failing, until a full pass accepts nothing or the check budget is
    spent.  Every candidate is no larger than the current case (by
    construction), so the result never grows. *)

type outcome = {
  r_model : Gen.model_spec;
  r_inputs : (string * Slim.Value.t) list list;
  r_rounds : int;  (** candidate-scan passes, including the final no-op one *)
  r_checks : int;  (** [still_fails] invocations *)
}

val minimize :
  ?max_checks:int ->
  still_fails:(Gen.model_spec -> (string * Slim.Value.t) list list -> bool) ->
  Gen.model_spec ->
  (string * Slim.Value.t) list list ->
  outcome
(** [still_fails] must return [true] when the candidate still exhibits
    the original failure; it should catch its own exceptions (treating
    an oracle crash as a failure reproduction is the usual choice).
    Default [max_checks] is 400. *)
