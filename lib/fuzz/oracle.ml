open Slim

type verdict = Pass | Fail of string

let all = [ "exec"; "coverage"; "symexec"; "solver"; "analysis"; "spec" ]

let fail fmt = Fmt.kstr (fun m -> Fail m) fmt

let event_equal (a : Exec.event) (b : Exec.event) =
  match (a, b) with
  | Exec.Branch_hit k1, Exec.Branch_hit k2 -> Branch.equal_key k1 k2
  | Exec.Cond_vector c1, Exec.Cond_vector c2 ->
    c1.id = c2.id && c1.outcome = c2.outcome && c1.vector = c2.vector
  | _ -> false

let collect events e = events := e :: !events

(* ------------------------------------------------------------------ *)
(* Oracle 1: slot-compiled Exec vs the reference interpreter           *)

let exec_diff prog steps =
  let ex = Exec.handle prog in
  let smap_equal = Exec.Smap.equal Value.equal in
  let rec go k slot_state map_state = function
    | [] -> Pass
    | row :: rest -> (
      let ev_fast = ref [] and ev_ref = ref [] in
      let fast =
        try
          Ok
            (Exec.run_step ~on_event:(collect ev_fast) ex slot_state
               (Exec.inputs_of_list ex row))
        with Exec.Eval_error m -> Error m
      in
      let reference =
        try
          Ok
            (Interp.run_step_reference ~on_event:(collect ev_ref) prog map_state
               (Interp.inputs_of_list row))
        with Exec.Eval_error m -> Error m
      in
      match (fast, reference) with
      | Error m1, Error m2 ->
        (* both paths must stop with the same error *)
        if m1 = m2 then Pass
        else fail "step %d: error messages differ: %S vs %S" k m1 m2
      | Error m, Ok _ -> fail "step %d: exec raised %S, reference succeeded" k m
      | Ok _, Error m -> fail "step %d: reference raised %S, exec succeeded" k m
      | Ok (out_fast, st_fast), Ok (out_ref, st_ref) ->
        if not (smap_equal (Exec.smap_of_outputs ex out_fast) out_ref) then
          fail "step %d: outputs differ: %a vs %a" k (Exec.pp_outputs ex)
            out_fast Interp.pp_snapshot out_ref
        else if not (smap_equal (Exec.smap_of_state ex st_fast) st_ref) then
          fail "step %d: states differ: %a vs %a" k (Exec.pp_state ex) st_fast
            Interp.pp_snapshot st_ref
        else if
          not (List.equal event_equal (List.rev !ev_fast) (List.rev !ev_ref))
        then fail "step %d: event streams differ" k
        else if
          (* slot <-> smap state bridge must round-trip *)
          not
            (Exec.state_equal st_fast
               (Exec.state_of_smap ex (Exec.smap_of_state ex st_fast)))
        then fail "step %d: state smap round-trip not identity" k
        else if Exec.state_hash st_fast <> Exec.state_hash (Array.map Value.copy st_fast)
        then fail "step %d: state hash not structural" k
        else go (k + 1) st_fast st_ref rest)
  in
  go 0 (Exec.initial_state ex) (Interp.initial_state prog) steps

(* ------------------------------------------------------------------ *)
(* Oracle 2: coverage-tracker invariants                               *)

let coverage prog steps =
  let ex = Exec.handle prog in
  let open Coverage in
  let tr = Tracker.create prog in
  let branch_keys =
    List.fold_left
      (fun s (b : Branch.t) -> Branch.Key_set.add b.Branch.key s)
      Branch.Key_set.empty (Exec.branches ex)
  in
  let total_branches = Branch.Key_set.cardinal branch_keys in
  let recorded = ref [] in
  let check_ratio name (r : Tracker.ratio) =
    if r.covered < 0 || r.covered > r.total then
      Some (Fmt.str "%s ratio out of bounds: %d/%d" name r.covered r.total)
    else None
  in
  let invariants prev_progress =
    let covered = Tracker.covered_branches tr in
    if not (Branch.Key_set.subset covered branch_keys) then
      Some "covered branches outside the program's branch set"
    else if Tracker.progress tr < prev_progress then Some "progress decreased"
    else if (Tracker.decision tr).covered <> Branch.Key_set.cardinal covered
    then Some "decision.covered <> |covered_branches|"
    else if (Tracker.decision tr).total <> total_branches then
      Some "decision.total <> |branches|"
    else
      match
        List.find_map (fun (n, r) -> check_ratio n r)
          [
            ("decision", Tracker.decision tr);
            ("condition", Tracker.condition tr);
            ("mcdc", Tracker.mcdc tr);
          ]
      with
      | Some m -> Some m
      | None ->
        if
          Branch.Key_set.exists
            (fun k -> not (Tracker.is_branch_covered tr k))
            covered
        then Some "is_branch_covered disagrees with covered_branches"
        else None
  in
  let rec go k st = function
    | [] -> None
    | row :: rest -> (
      let prev_progress = Tracker.progress tr in
      let step_events = ref [] in
      let observe e =
        collect step_events e;
        Tracker.observe tr e
      in
      match Exec.run_step ~on_event:observe ex st (Exec.inputs_of_list ex row) with
      | exception Exec.Eval_error _ -> None
      | _, st' -> (
        recorded := List.rev_append !step_events !recorded;
        match invariants prev_progress with
        | Some m -> Some (Fmt.str "step %d: %s" k m)
        | None ->
          (* re-observing the same events must add nothing *)
          let p = Tracker.progress tr in
          List.iter (Tracker.observe tr) (List.rev !step_events);
          if Tracker.progress tr <> p then
            Some (Fmt.str "step %d: re-observation bumped progress" k)
          else go (k + 1) st' rest))
  in
  match go 0 (Exec.initial_state ex) steps with
  | Some m -> Fail m
  | None -> (
    let events = List.rev !recorded in
    (* a fresh tracker replaying the recorded stream must agree *)
    let tr2 = Tracker.create prog in
    List.iter (Tracker.observe tr2) events;
    let same_ratio (a : Tracker.ratio) (b : Tracker.ratio) =
      a.covered = b.covered && a.total = b.total
    in
    if
      not
        (Branch.Key_set.equal
           (Tracker.covered_branches tr)
           (Tracker.covered_branches tr2))
    then Fail "replayed tracker covers a different branch set"
    else if not (same_ratio (Tracker.decision tr) (Tracker.decision tr2)) then
      Fail "replayed tracker: decision ratio differs"
    else if not (same_ratio (Tracker.condition tr) (Tracker.condition tr2)) then
      Fail "replayed tracker: condition ratio differs"
    else if not (same_ratio (Tracker.mcdc tr) (Tracker.mcdc tr2)) then
      Fail "replayed tracker: MCDC ratio differs"
    else if Tracker.progress tr <> Tracker.progress tr2 then
      Fail "replayed tracker: progress stamp differs"
    else
      (* a copy must be independent of its original *)
      let snap = Tracker.progress tr in
      let cp = Tracker.copy tr in
      List.iter (Tracker.observe cp) events;
      if Tracker.progress tr <> snap then
        Fail "observing a copy mutated the original"
      else Pass)

(* ------------------------------------------------------------------ *)
(* Shared helpers for the solving oracles                              *)

let visited_states ex steps =
  let rec go st acc = function
    | [] -> st :: acc
    | row :: rest -> (
      match Exec.run_step ex st (Exec.inputs_of_list ex row) with
      | _, st' -> go st' (st :: acc) rest
      | exception Exec.Eval_error _ -> st :: acc)
  in
  Array.of_list (List.rev (go (Exec.initial_state ex) [] steps))

let random_row rng (prog : Ir.program) =
  List.map (fun (v : Ir.var) -> (v.Ir.name, Gen.gen_value rng v.Ir.ty)) prog.Ir.inputs

let replay_events ex state inputs =
  let evs = ref [] in
  (try ignore (Exec.run_step ~on_event:(collect evs) ex state inputs)
   with Exec.Eval_error _ -> ());
  List.rev !evs

let branch_hit events key =
  List.exists
    (function Exec.Branch_hit k -> Branch.equal_key k key | _ -> false)
    events

(* deterministically pick at most [n] elements *)
let pick_at_most rng n l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  if len <= n then l
  else
    List.init n (fun _ -> arr.(Splitmix.int rng len)) |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Oracle 3: symexec path-predicate soundness                          *)

let symexec ~seed ?(max_targets = 6) prog steps =
  let ex = Exec.handle prog in
  let rng = Splitmix.create (seed lxor 0x53594d) in
  let states = visited_states ex steps in
  let pick_state () = states.(Splitmix.int rng (Array.length states)) in
  let config =
    {
      Symexec.Explore.max_paths = 64;
      node_budget = 4000;
      rng_seed = seed;
      hc4_memo = true;
    }
  in
  let refute_budget = 20 in
  let check_branch key =
    let state = pick_state () in
    match
      Symexec.Explore.solve_target ~config prog ~state
        ~target:(Symexec.Explore.Branch_target key)
    with
    | (Symexec.Explore.Sat [ inputs ], _) ->
      let events = replay_events ex state inputs in
      let chain = Exec.branch_chain ex key in
      List.find_map
        (fun (d, oc) ->
          if branch_hit events (d, oc) then None
          else
            Some
              (Fmt.str
                 "branch %a: Sat inputs do not hit required (%d, %a) on replay"
                 Branch.pp_key key d Branch.pp_outcome oc))
        chain
    | (Symexec.Explore.Sat l, _) ->
      Some
        (Fmt.str "branch %a: one-step solve returned %d input steps"
           Branch.pp_key key (List.length l))
    | (Symexec.Explore.Unsat, _) ->
      (* soundness spot-check: no random input may reach the branch *)
      let rec try_refute i =
        if i >= refute_budget then None
        else
          let inputs = Exec.inputs_of_list ex (random_row rng prog) in
          if branch_hit (replay_events ex state inputs) key then
            Some
              (Fmt.str "branch %a: Unsat but a random input reaches it"
                 Branch.pp_key key)
          else try_refute (i + 1)
      in
      try_refute 0
    | (Symexec.Explore.Unknown, _) -> None
  in
  let check_condition (decision, natoms) =
    let atom = Splitmix.int rng natoms in
    let value = Splitmix.bool rng in
    let state = pick_state () in
    let vectors_of events =
      List.filter_map
        (function
          | Exec.Cond_vector { id; vector; _ } when id = decision -> Some vector
          | _ -> None)
        events
    in
    let observed_with vecs =
      List.exists
        (fun v -> atom < Array.length v && v.(atom) = value)
        vecs
    in
    match
      Symexec.Explore.solve_target ~config prog ~state
        ~target:(Symexec.Explore.Condition_target { decision; atom; value })
    with
    | (Symexec.Explore.Sat [ inputs ], _) ->
      let vecs = vectors_of (replay_events ex state inputs) in
      if observed_with vecs then None
      else
        Some
          (Fmt.str
             "condition (%d,%d)=%b: Sat inputs do not produce the vector on \
              replay"
             decision atom value)
    | (Symexec.Explore.Sat l, _) ->
      Some
        (Fmt.str "condition (%d,%d): one-step solve returned %d input steps"
           decision atom (List.length l))
    | (Symexec.Explore.Unsat, _) ->
      let rec try_refute i =
        if i >= refute_budget then None
        else
          let inputs = Exec.inputs_of_list ex (random_row rng prog) in
          if observed_with (vectors_of (replay_events ex state inputs)) then
            Some
              (Fmt.str "condition (%d,%d)=%b: Unsat but concretely observed"
                 decision atom value)
          else try_refute (i + 1)
      in
      try_refute 0
    | (Symexec.Explore.Unknown, _) -> None
  in
  let branch_targets =
    pick_at_most rng max_targets
      (List.map (fun (b : Branch.t) -> b.Branch.key) (Exec.branches ex))
  in
  let condition_targets =
    pick_at_most rng (max 1 (max_targets / 2))
      (List.filter_map
         (fun (id, d) ->
           match d with
           | `If cond -> (
             match List.length (Ir.atoms_of_condition cond) with
             | 0 -> None
             | n -> Some (id, n))
           | `Switch _ -> None)
         (Exec.decisions ex))
  in
  match
    List.find_map check_branch branch_targets
  with
  | Some m -> Fail m
  | None -> (
    match List.find_map check_condition condition_targets with
    | Some m -> Fail m
    | None -> Pass)

(* ------------------------------------------------------------------ *)
(* Oracle 4: CSP solver verified-solution soundness                    *)

(* Random constraint problems over the program's (scalar) input
   variables: heavy on Mod/Abs/Min/Max around zero so the HC4
   projections get exercised on their awkward domains. *)

let solver ~seed ?(max_problems = 5) prog steps =
  ignore steps;
  let module T = Solver.Term in
  let rng = Splitmix.create (seed lxor 0x501e3) in
  let scalar_vars =
    List.filter_map
      (fun (v : Ir.var) ->
        match v.Ir.ty with
        | Value.Tbool | Value.Tint _ | Value.Treal _ -> Some (v.Ir.name, v.Ir.ty)
        | Value.Tvec _ -> None)
      prog.Ir.inputs
  in
  if scalar_vars = [] then Pass
  else begin
    let num_vars =
      List.filter (fun (_, ty) -> ty <> Value.Tbool) scalar_vars
    in
    let bool_vars = List.filter (fun (_, ty) -> ty = Value.Tbool) scalar_vars in
    let rec gen_num depth =
      let tag =
        Splitmix.weighted rng
          [
            ((if num_vars <> [] then 4 else 0), `Var);
            (3, `Const);
            ((if depth > 0 then 3 else 0), `Add);
            ((if depth > 0 then 2 else 0), `Sub);
            ((if depth > 0 then 1 else 0), `Mul);
            ((if depth > 0 then 1 else 0), `Div);
            ((if depth > 0 then 3 else 0), `Mod);
            ((if depth > 0 then 2 else 0), `Min);
            ((if depth > 0 then 2 else 0), `Max);
            ((if depth > 0 then 2 else 0), `Abs);
            ((if depth > 0 then 1 else 0), `Neg);
          ]
      in
      match tag with
      | `Var -> T.var (fst (Splitmix.choose rng num_vars))
      | `Const ->
        if Splitmix.bool rng then T.cint (Splitmix.int_in rng (-8) 8)
        else T.creal (float_of_int (Splitmix.int_in rng (-4) 4) /. 2.)
      | `Add -> T.binop Ir.Add (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Sub -> T.binop Ir.Sub (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Mul -> T.binop Ir.Mul (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Div -> T.binop Ir.Div (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Mod -> T.binop Ir.Mod (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Min -> T.binop Ir.Min (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Max -> T.binop Ir.Max (gen_num (depth - 1)) (gen_num (depth - 1))
      | `Abs -> T.unop Ir.Abs_op (gen_num (depth - 1))
      | `Neg -> T.unop Ir.Neg (gen_num (depth - 1))
    in
    let rec gen_pred depth =
      let tag =
        Splitmix.weighted rng
          [
            (5, `Cmp);
            ((if bool_vars <> [] then 2 else 0), `Bvar);
            ((if depth > 0 then 2 else 0), `And);
            ((if depth > 0 then 2 else 0), `Or);
            ((if depth > 0 then 1 else 0), `Not);
          ]
      in
      match tag with
      | `Cmp ->
        let op =
          Splitmix.choose rng [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ]
        in
        T.cmp op (gen_num 2) (gen_num 2)
      | `Bvar -> T.var (fst (Splitmix.choose rng bool_vars))
      | `And -> T.and_ (gen_pred (depth - 1)) (gen_pred (depth - 1))
      | `Or -> T.or_ (gen_pred (depth - 1)) (gen_pred (depth - 1))
      | `Not -> T.not_ (gen_pred (depth - 1))
    in
    let eval_with lookup t =
      match T.eval lookup t with
      | Value.Bool b -> b
      | _ -> false
      | exception Value.Type_error _ -> false
    in
    let rec run_problem i =
      if i >= max_problems then Pass
      else begin
        let constraint_ = gen_pred 2 in
        let problem =
          { Solver.Csp.p_vars = scalar_vars; p_constraint = constraint_ }
        in
        let result, _ =
          Solver.Csp.solve ~node_budget:3000
            ~rng:(Random.State.make [| seed; i |])
            problem
        in
        match result with
        | Solver.Csp.Sat assignment ->
          let lookup name =
            match Solver.Csp.Smap.find_opt name assignment with
            | Some v -> v
            | None -> Value.default_of_ty (List.assoc name scalar_vars)
          in
          if eval_with lookup constraint_ then run_problem (i + 1)
          else
            fail "problem %d: Sat assignment %a does not satisfy %a" i
              Solver.Csp.pp_result result T.pp constraint_
        | Solver.Csp.Unsat ->
          (* witness search: 40 random in-domain assignments *)
          let rec refute j =
            if j >= 40 then run_problem (i + 1)
            else
              let assignment =
                List.map (fun (n, ty) -> (n, Gen.gen_value rng ty)) scalar_vars
              in
              if eval_with (fun n -> List.assoc n assignment) constraint_ then
                fail "problem %d: Unsat refuted by witness {%a} for %a" i
                  Fmt.(
                    list ~sep:comma (fun ppf (n, v) ->
                        Fmt.pf ppf "%s=%a" n Value.pp v))
                  assignment T.pp constraint_
              else refute (j + 1)
          in
          refute 0
        | Solver.Csp.Unknown -> run_problem (i + 1)
      end
    in
    run_problem 0
  end

(* ------------------------------------------------------------------ *)
(* Oracle 5: static-analysis soundness                                 *)

(* A [Dead] verdict claims no execution whose inputs conform to their
   declared domains can cover the objective; executing the case's input
   sequence and watching the tracker refutes that claim directly.  Any
   hit is an analyzer soundness bug and shrinks like every other
   failure. *)
let analysis prog steps =
  let summary = Analysis.Verdict.of_program prog in
  let oct_summary =
    Analysis.Verdict.of_program
      ~config:{ Analysis.Analyzer.domain = `Octagon } prog
  in
  (* the two domains are both sound, so wherever both decide an
     objective they must agree; a contradiction is an analyzer bug in
     one of them *)
  let contra = ref None in
  let check_pair what pp_key =
    List.iter2 (fun (k, vi) (_, vo) ->
        match (vi, vo) with
        | Analysis.Verdict.Unknown, _ | _, Analysis.Verdict.Unknown -> ()
        | _ ->
          if vi <> vo && !contra = None then
            contra := Some (Fmt.str "%s %s: interval %a vs octagon %a" what
                              (pp_key k) Analysis.Verdict.pp vi
                              Analysis.Verdict.pp vo))
  in
  check_pair "branch" (Fmt.str "%a" Branch.pp_key)
    summary.Analysis.Verdict.v_branches
    oct_summary.Analysis.Verdict.v_branches;
  check_pair "condition" (fun (d, i, v) -> Fmt.str "(%d,%d,%b)" d i v)
    summary.Analysis.Verdict.v_conditions
    oct_summary.Analysis.Verdict.v_conditions;
  check_pair "mcdc" (fun (d, i) -> Fmt.str "(%d,%d)" d i)
    summary.Analysis.Verdict.v_mcdc oct_summary.Analysis.Verdict.v_mcdc;
  match !contra with
  | Some msg -> fail "domain contradiction: %s" msg
  | None ->
  (* union of both domains' dead sets: each is a standalone soundness
     claim, so a dynamic cover of either is a failure *)
  let dead_b =
    Analysis.Verdict.dead_branches summary
    @ Analysis.Verdict.dead_branches oct_summary
  in
  let dead_c =
    Analysis.Verdict.dead_conditions summary
    @ Analysis.Verdict.dead_conditions oct_summary
  in
  let dead_m =
    Analysis.Verdict.dead_mcdc summary
    @ Analysis.Verdict.dead_mcdc oct_summary
  in
  if dead_b = [] && dead_c = [] && dead_m = [] then Pass
  else begin
    let ex = Exec.handle prog in
    let conforming row =
      List.for_all
        (fun (name, v) ->
          match
            List.find_opt (fun (var : Ir.var) -> var.name = name)
              prog.Ir.inputs
          with
          | Some var -> Value.member var.ty v
          | None -> true (* unknown names are dropped by inputs_of_list *))
        row
    in
    let tr = Coverage.Tracker.create prog in
    let rec go st = function
      | [] -> ()
      | row :: rest when conforming row -> (
        match
          Exec.run_step ~on_event:(Coverage.Tracker.observe tr) ex st
            (Exec.inputs_of_list ex row)
        with
        | _, st' -> go st' rest
        | exception Exec.Eval_error _ ->
          (* the step aborted; events emitted before the error are
             real executions and stay counted *)
          ())
      | _ -> ()
    in
    go (Exec.initial_state ex) steps;
    let hit_b =
      List.find_opt (fun k -> Coverage.Tracker.is_branch_covered tr k) dead_b
    in
    let hit_c =
      List.find_opt
        (fun (d, i, v) -> Coverage.Tracker.is_condition_covered tr d i v)
        dead_c
    in
    let uncovered_m = Coverage.Tracker.uncovered_mcdc tr in
    let hit_m =
      List.find_opt (fun p -> not (List.mem p uncovered_m)) dead_m
    in
    match (hit_b, hit_c, hit_m) with
    | Some key, _, _ ->
      fail "dead branch %a covered dynamically" Branch.pp_key key
    | None, Some (d, i, v), _ ->
      fail "dead condition (%d,%d,%b) covered dynamically" d i v
    | None, None, Some (d, i) ->
      fail "dead mcdc objective (%d,%d) demonstrated dynamically" d i
    | None, None, None -> Pass
  end

(* ------------------------------------------------------------------ *)
(* Oracle 6: spec-monitor differential                                 *)

(* Execute the case's input rows to get an output trace, generate
   random STL formulas over the program's scalar outputs, and require
   (a) the sliding-window monitor to agree with the naive reference
   monitor bit-for-bit at every evaluation step, and (b) the
   robustness sign to agree with the independent boolean semantics
   whenever nonzero.  Traces containing non-finite samples are skipped:
   NaN deliberately breaks the deque/fold equivalence (incomparable
   under <), so the bit-for-bit contract only covers finite traces. *)

let spec_mon ~seed prog steps =
  let ex = Exec.handle prog in
  let scalar_outs =
    Array.to_list (Exec.output_vars ex)
    |> List.filter_map (fun (v : Ir.var) ->
           match v.ty with
           | Value.Tvec _ -> None
           | _ -> Some v.name)
  in
  if scalar_outs = [] then Pass
  else begin
    (* keep the prefix before any runtime error: a partial trace is
       still a trace *)
    let rec exec_go st acc = function
      | [] -> List.rev acc
      | row :: rest -> (
        match Exec.run_step ex st (Exec.inputs_of_list ex row) with
        | out, st' -> exec_go st' (out :: acc) rest
        | exception Exec.Eval_error _ -> List.rev acc)
    in
    let outs = exec_go (Exec.initial_state ex) [] steps in
    if outs = [] then Pass
    else begin
      let trace = Spec.Monitor.of_run ex outs in
      let finite =
        List.for_all
          (fun (_, col) -> Array.for_all Float.is_finite col)
          (Spec.Monitor.columns trace)
      in
      if not finite then Pass
      else begin
        let n = Spec.Monitor.length trace in
        let rng = Splitmix.create (seed lxor 0x57EC) in
        let open Spec.Stl in
        let rec gen_sig depth =
          if depth = 0 || Splitmix.int rng 3 = 0 then
            if Splitmix.bool rng then Sig (Splitmix.choose rng scalar_outs)
            else Const (float_of_int (Splitmix.int_in rng (-50) 50))
          else
            let a = gen_sig (depth - 1) and b = gen_sig (depth - 1) in
            match Splitmix.int rng 7 with
            | 0 -> Add (a, b)
            | 1 -> Sub (a, b)
            | 2 -> Mul (a, b)
            | 3 -> Neg a
            | 4 -> Abs a
            | 5 -> Min (a, b)
            | _ -> Max (a, b)
        in
        let gen_cmp () =
          Splitmix.choose rng [ Le; Lt; Ge; Gt; Eq ]
        in
        let gen_bounds () =
          let a = Splitmix.int rng 7 in
          (a, a + Splitmix.int rng 9)
        in
        let rec gen_formula depth =
          if depth = 0 || Splitmix.int rng 4 = 0 then
            Atom (gen_cmp (), gen_sig 2, gen_sig 2)
          else
            let f = gen_formula (depth - 1) in
            match Splitmix.int rng 7 with
            | 0 -> Not f
            | 1 -> And (f, gen_formula (depth - 1))
            | 2 -> Or (f, gen_formula (depth - 1))
            | 3 -> Implies (f, gen_formula (depth - 1))
            | 4 ->
              let a, b = gen_bounds () in
              Always (a, b, f)
            | 5 ->
              let a, b = gen_bounds () in
              Eventually (a, b, f)
            | _ ->
              let a, b = gen_bounds () in
              Until (a, b, f, gen_formula (depth - 1))
        in
        let rec check_formula i =
          if i >= 5 then Pass
          else begin
            let f = gen_formula 3 in
            let fast = Spec.Monitor.robustness_signal trace f in
            let rec check_step t =
              if t >= n then check_formula (i + 1)
              else
                let naive = Spec.Monitor.robustness_naive ~at:t trace f in
                if
                  Int64.bits_of_float fast.(t) <> Int64.bits_of_float naive
                then
                  fail
                    "formula %s: step %d: deque monitor %h disagrees with reference %h"
                    (Spec.Stl.to_string f) t fast.(t) naive
                else if fast.(t) <> 0.0
                        && Float.is_finite fast.(t)
                        && Spec.Monitor.sat ~at:t trace f <> (fast.(t) > 0.0)
                then
                  fail
                    "formula %s: step %d: robustness %h sign disagrees with boolean semantics"
                    (Spec.Stl.to_string f) t fast.(t)
                else check_step (t + 1)
            in
            check_step 0
          end
        in
        check_formula 0
      end
    end
  end

(* ------------------------------------------------------------------ *)

let guard name f =
  match f () with
  | v -> v
  | exception e -> fail "%s oracle raised %s" name (Printexc.to_string e)

(* one span + run counter per oracle, so `fuzz --stats` attributes
   campaign time to the oracle that spent it *)
let tel_spans =
  List.map (fun n -> (n, Telemetry.Span.make ("fuzz.oracle." ^ n))) all

let tel_runs =
  List.map (fun n -> (n, Telemetry.Counter.make ("fuzz.oracle." ^ n ^ ".runs"))) all

let run ~which ~seed prog steps =
  List.filter_map
    (fun name ->
      if not (List.mem name which) then None
      else
        let timed f =
          Telemetry.Counter.incr (List.assoc name tel_runs);
          Telemetry.Span.with_ (List.assoc name tel_spans) (fun () ->
              guard name f)
        in
        let v =
          match name with
          | "exec" -> timed (fun () -> exec_diff prog steps)
          | "coverage" -> timed (fun () -> coverage prog steps)
          | "symexec" -> timed (fun () -> symexec ~seed prog steps)
          | "solver" -> timed (fun () -> solver ~seed prog steps)
          | "analysis" -> timed (fun () -> analysis prog steps)
          | "spec" -> timed (fun () -> spec_mon ~seed prog steps)
          | _ -> Fail ("unknown oracle " ^ name)
        in
        Some (name, v))
    all
