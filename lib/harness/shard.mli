(** Sharded campaign runs: partial-result files and their merge.

    A campaign (Table III, Figure 4 or the ablations) is a canonical
    job matrix ({!Experiment.table3_njobs} etc.).  {!run_partial}
    executes one deterministic stripe of that matrix — job [j] belongs
    to shard [j mod n] — and serializes the per-job outcome cells to a
    self-describing JSON string; {!merge_strings} validates that a set
    of partials covers the matrix exactly once and rebuilds the
    artifact through the same [*_of_cells] renderers the in-process
    path uses, so a sharded multi-process campaign is byte-identical
    to a single-process [jobs=1] run.

    The partial format records every campaign parameter (kind, budget,
    seeds, models, matrix size), so [merge] needs no flags and refuses
    to combine partials from different campaigns.  Floats are printed
    with ["%.17g"], which round-trips every IEEE double exactly — the
    merged averages are computed from bit-identical inputs.

    Processes are the escape hatch from OCaml 5's shared-heap ceiling:
    worker domains share one major heap and stop the world together at
    every minor collection, while shard processes share nothing.  The
    same stripe + merge contract extends to multi-machine runs. *)

type kind = Table3 | Fig4 | Ablations

val kind_name : kind -> string
(** ["table3" | "fig4" | "ablations"] — also the partial-file tag. *)

val kind_of_name : string -> kind option

type spec = {
  sp_kind : kind;
  sp_budget : float;
  sp_seeds : int list;  (** Table III / ablations seed list *)
  sp_seed : int;  (** Figure 4 single seed *)
  sp_models : string list option;
}
(** Everything that determines a campaign's job matrix and outcome. *)

val spec :
  ?budget:float -> ?seeds:int list -> ?seed:int -> ?models:string list ->
  kind -> spec
(** Defaults match the corresponding {!Experiment} entry points:
    budget 3600 s, seeds [[1..5]] (Table III) / [[1..3]] (ablations),
    seed 1, all registry models. *)

val njobs : spec -> int
(** Size of the campaign's canonical job matrix. *)

exception Malformed of string
(** Raised by the parsing/merging functions on syntactically invalid
    JSON, a partial from a different campaign, or a cell set that does
    not cover the job matrix exactly once. *)

val run_partial :
  ?pool:Pool.t -> ?jobs:int -> shard:int * int -> spec -> string
(** [run_partial ~shard:(i, n) spec] executes the jobs with index
    [j mod n = i] and returns the partial-results JSON (one line,
    trailing newline).  [shard:(0, 1)] is the whole matrix.  Raises
    [Invalid_argument] unless [0 <= i < n]. *)

type merged =
  | M_table3 of Experiment.averaged list * string
  | M_fig4 of string * (string * string) list
  | M_ablations of string
      (** The merged artifact, exactly as the unsharded entry point
          returns it. *)

val render : merged -> string
(** The text the normal CLI prints for the artifact (Figure 4 panels
    without the CSV dumps). *)

val merge_strings : string list -> merged
(** Merge partial-result JSON strings (any order, e.g. shard [1/2]
    before [0/2]).  Raises {!Malformed} if the partials disagree on
    any campaign parameter, overlap, or leave matrix jobs uncovered. *)

val merge_files : string list -> merged
(** {!merge_strings} over file contents. *)
