(** A shared-nothing, domain-based parallel run pool.

    The experiment harness averages randomized tools over many
    (tool, model, seed) runs; the runs are embarrassingly parallel
    (every run builds its own tracker, tree and RNG), so the harness
    enumerates its job matrix up front and executes it here.  The pool
    is a fixed set of worker {!Domain}s coordinated with stdlib
    [Mutex]/[Condition] only — no external dependency.  Each batch of
    jobs is split into per-worker deques; a worker pops from its own
    deque and, when empty, steals from the others, so stragglers
    (one slow model run) do not serialize the batch.

    Determinism contract: {!map} returns results in input order,
    regardless of how jobs were scheduled across domains.  Callers that
    merge in job-index order therefore produce byte-identical output
    for any worker count — when only one worker is effective, {!map}
    runs the exact sequential [List.map] path in the calling domain,
    spawning no domains at all.

    Oversubscription clamp: requested parallelism is clamped to
    [Domain.recommended_domain_count ()] ({!effective_jobs}).  OCaml 5
    minor collections are stop-the-world across every domain, so a
    domain beyond the core count turns each minor GC into an OS
    scheduling round-trip — on a 1-core container, jobs=2 measured
    2.3x {e slower} than jobs=1 before the clamp.  Pass
    [~oversubscribe:true] (or set STCG_OVERSUBSCRIBE=1) to force the
    requested count anyway, e.g. to exercise real cross-domain
    scheduling in tests on any machine.

    The submitting domain participates as a worker during {!map}, so a
    pool of [n] effective workers uses [n - 1] spawned domains plus the
    caller.

    Worker-count selection ({!default_jobs}): the [STCG_JOBS]
    environment variable if set to a positive integer, otherwise
    [Domain.recommended_domain_count () - 1] (at least 1). *)

exception Nested_pool
(** Raised by {!map}/{!run_all} when called from inside a pool job:
    nested data-parallelism would oversubscribe the machine and break
    the sequential-equivalence contract, so it is an error. *)

val default_jobs : unit -> int
(** [STCG_JOBS] if set and positive, else
    [max 1 (Domain.recommended_domain_count () - 1)]. *)

val effective_jobs : ?oversubscribe:bool -> int -> int
(** The worker count a pool created with [jobs = n] actually uses:
    [min n (Domain.recommended_domain_count ())], at least 1 — unless
    [oversubscribe] (or STCG_OVERSUBSCRIBE=1), which keeps [n]. *)

type t
(** A pool handle.  Workers idle on a condition variable between
    batches; {!shutdown} joins them.  One batch at a time: concurrent
    {!map} calls on the same pool are a programming error
    ([Invalid_argument]). *)

val create : ?jobs:int -> ?oversubscribe:bool -> ?minor_heap_mb:int -> unit -> t
(** [create ?jobs ()] spawns [effective_jobs jobs - 1] worker domains
    ([jobs] defaults to {!default_jobs}; values < 1 are clamped to 1).
    A single effective worker spawns nothing.

    [minor_heap_mb] (default: the [STCG_MINOR_HEAP_MB] environment
    variable, else the runtime default) resizes the minor heap of the
    caller and of every worker domain.  Larger minor heaps make minor
    collections — and with them OCaml 5's cross-domain stop-the-world
    handshakes — proportionally rarer, which is the main scaling tax of
    allocation-heavy jobs.  Best effort; ignored by runtimes that
    cannot resize. *)

val size : t -> int
(** The worker count [jobs] the pool was requested with (including the
    calling domain), before the oversubscription clamp. *)

val workers : t -> int
(** The effective worker count: [effective_jobs (size t)] as resolved
    at {!create} time.  [workers t = 1] means every {!map} runs the
    sequential path. *)

val shutdown : t -> unit
(** Signal and join all worker domains.  Idempotent.  Must not be
    called while a {!map} is in flight. *)

val with_pool :
  ?jobs:int -> ?oversubscribe:bool -> ?minor_heap_mb:int -> (t -> 'a) -> 'a
(** [with_pool ?jobs f] runs [f] on a fresh pool and guarantees
    {!shutdown}, also on exception. *)

val map : t -> ?cost:('a -> int) -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f items] applies [f] to every item, in parallel, and
    returns the results in input order.  If any [f] raises, remaining
    unstarted jobs are abandoned, in-flight jobs finish, the workers
    are quiesced, and the exception of the lowest-indexed failed job is
    re-raised in the caller (with its backtrace).

    [cost] is a deterministic relative-duration estimate used for
    scheduling only: jobs are dealt to the workers in cost-descending
    order (ties broken by job index) so each worker starts with its
    heaviest job and expected load is balanced — a wildly uneven batch
    no longer ends with one worker grinding through a heavyweight tail
    alone.  Results, their order, and the failure contract are
    unaffected; a bad estimate can only cost speed.  Ignored on the
    sequential path. *)

val run_all : t -> (unit -> 'a) list -> 'a list
(** [run_all pool thunks = map pool (fun f -> f ()) thunks]. *)

val map_chunked : t -> chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** Like {!map}, but schedules items in contiguous chunks of [chunk]
    (the last chunk may be shorter) so that jobs much smaller than the
    steal granularity — e.g. one fuzz case — amortize pool overhead.
    Results are still returned in input order for any worker count and
    [chunk]; [chunk <= 1] is exactly {!map}.  On failure the exception
    of the lowest-indexed failed chunk is re-raised (items within a
    chunk run left to right, stopping at the first raise). *)

val parallel_map :
  ?jobs:int -> ?oversubscribe:bool -> ?cost:('a -> int) -> ('a -> 'b) ->
  'a list -> 'b list
(** One-shot convenience: {!with_pool} around {!map}. *)

val parallel_run_all :
  ?jobs:int -> ?oversubscribe:bool -> (unit -> 'a) list -> 'a list
