module Registry = Models.Registry
module Run_result = Stcg.Run_result
module Engine = Stcg.Engine
module Tracker = Coverage.Tracker
module Testcase = Stcg.Testcase

type tool = STCG | STCG_hybrid | SLDV | SimCoTest

let tool_name = function
  | STCG -> "STCG"
  | STCG_hybrid -> "STCG-hybrid"
  | SLDV -> "SLDV"
  | SimCoTest -> "SimCoTest"

let run_tool ?(budget = 3600.0) ?(analyze = false)
    ?(domain = `Interval) ?(verdict_priority = false) ?(reanalyze_every = 0)
    ~seed tool (entry : Registry.entry) =
  let prog = entry.Registry.program () in
  let analysis_config = { Analysis.Analyzer.domain } in
  match tool with
  | STCG ->
    let config =
      { Engine.default_config with
        Engine.seed; budget; analyze; analysis_config; verdict_priority;
        reanalyze_every }
    in
    Run_result.of_engine_run ~model:entry.Registry.name
      (Engine.run ~config prog)
  | STCG_hybrid ->
    let config =
      { Engine.default_config with
        Engine.seed; budget; random_first = true; analyze; analysis_config;
        verdict_priority; reanalyze_every }
    in
    let result =
      Run_result.of_engine_run ~model:entry.Registry.name
        (Engine.run ~config prog)
    in
    { result with Run_result.tool = "STCG-hybrid" }
  | SLDV ->
    let config = { Baselines.Sldv.default_config with Baselines.Sldv.budget } in
    Baselines.Sldv.run ~config ~model:entry.Registry.name prog
  | SimCoTest ->
    let config =
      { Baselines.Simcotest.default_config with
        Baselines.Simcotest.budget; seed }
    in
    Baselines.Simcotest.run ~config ~model:entry.Registry.name prog

type averaged = {
  a_model : string;
  a_tool : tool;
  a_decision : float;
  a_condition : float;
  a_mcdc : float;
  a_tests : float;
  a_runs : int;
}

(* --- the parallel job matrix ------------------------------------------- *)

(* Every experiment below is an average of independent (tool, model,
   seed) runs; each run builds its own tracker, state tree and RNG, so
   the whole matrix is embarrassingly parallel.  Experiments enumerate
   their jobs up front, execute them on {!Pool}, and merge by job index
   — the result lists come back in enumeration order, so every derived
   table and CSV is byte-identical to the sequential run no matter how
   the scheduler interleaved the workers ([jobs = 1] literally runs the
   sequential [List.map] path). *)

(* SLDV is deterministic: one run regardless of the seed list. *)
let seeds_for tool seeds = match tool with SLDV -> [ 1 ] | _ -> seeds

(* Run on the caller's shared pool when given one; otherwise spin up a
   private pool for this experiment ([?jobs] workers).  Sharing one pool
   across a whole bench run keeps the worker domains warm instead of
   respawning them per artifact. *)
let pmap ?pool ?jobs ?cost f items =
  match pool with
  | Some p -> Pool.map p ?cost f items
  | None -> Pool.with_pool ?jobs (fun p -> Pool.map p ?cost f items)

(* Deterministic relative cost of one job, for the pool's
   longest-expected-first scheduling: branch count is the best static
   proxy for how much exploring/solving a run does, and the STCG
   variants do roughly an order of magnitude more solver work per
   branch than the random baselines.  Only scheduling reads these —
   results and merge order never depend on them. *)
let tool_cost_weight = function
  | STCG | STCG_hybrid -> 8
  | SimCoTest -> 3
  | SLDV -> 1

let entry_cost (e : Registry.entry) =
  1 + Slim.Branch.count (e.Registry.program ())

(* Deterministic shard stripe over an indexed job list: job [j] belongs
   to shard [j mod count].  Striping (rather than contiguous blocks)
   spreads every model's heavyweight cells across the shards. *)
let stripe_filter stripe indexed =
  match stripe with
  | None -> indexed
  | Some (index, count) ->
    if count < 1 || index < 0 || index >= count then
      invalid_arg "Experiment: shard stripe must satisfy 0 <= i < n";
    List.filter (fun (i, _) -> i mod count = index) indexed

(* Hoist the per-model lazy construction + slot compilation out of the
   workers: force each program and its compiled handle once on the
   submitting domain, so workers share the precomputed handles
   read-only instead of racing on the model lazies. *)
let precompile entries =
  List.iter
    (fun (e : Registry.entry) ->
      ignore (Slim.Exec.handle (e.Registry.program ())))
    entries

let average_of_runs ~tool (entry : Registry.entry) results =
  let n = float (List.length results) in
  let mean f = List.fold_left (fun acc r -> acc +. f r) 0.0 results /. n in
  {
    a_model = entry.Registry.name;
    a_tool = tool;
    a_decision = mean Run_result.decision_pct;
    a_condition = mean Run_result.condition_pct;
    a_mcdc = mean Run_result.mcdc_pct;
    a_tests =
      mean (fun r -> float (List.length r.Run_result.testcases));
    a_runs = List.length results;
  }

let average ?budget ?pool ?jobs ~seeds tool entry =
  precompile [ entry ];
  let results =
    pmap ?pool ?jobs
      (fun seed -> run_tool ?budget ~seed tool entry)
      (seeds_for tool seeds)
  in
  average_of_runs ~tool entry results

(* --- Table I ---------------------------------------------------------- *)

let table1 ?(budget = 3600.0) ?(seed = 1) () =
  let entry = Option.get (Registry.find "CPUTask") in
  let prog = entry.Registry.program () in
  let config = { Engine.default_config with Engine.seed; budget } in
  let run = Engine.run ~config prog in
  let total = (Tracker.decision run.Engine.r_tracker).Tracker.total in
  (* Rebuild the construction narrative from the event log: each solve
     event is one "step"; successful steps name the branch target, the
     state node and the branches achieved by the execution right after. *)
  let covered_so_far = ref 0 in
  let step = ref 0 in
  let rows = ref [] in
  let pending : (string * string) option ref = ref None in
  List.iter
    (fun ev ->
      match ev with
      | Engine.Ev_solve { target; node; result; _ } ->
        (match result with
         | `Sat ->
           incr step;
           pending :=
             Some (Fmt.str "%a" Symexec.Explore.pp_target target,
                   Fmt.str "S%d" node)
         | `Unsat | `Unknown -> ())
      | Engine.Ev_random_exec { node; len; _ } ->
        incr step;
        pending := Some (Fmt.str "random x%d" len, Fmt.str "S%d" node)
      | Engine.Ev_coverage { decision_covered; _ } ->
        (match !pending with
         | Some (target, state) when decision_covered > !covered_so_far ->
           let gained = decision_covered - !covered_so_far in
           covered_so_far := decision_covered;
           rows :=
             [
               string_of_int !step;
               target;
               state;
               Fmt.str "+%d" gained;
               Fmt.str "%d/%d" decision_covered total;
             ]
             :: !rows;
           pending := None
         | _ -> ())
      | Engine.Ev_testcase _ -> ())
    run.Engine.r_events;
  let table =
    Text_table.render
      ~header:
        [ "Step"; "Target"; "Target state"; "New branches"; "Total achieved" ]
      (List.rev !rows)
  in
  Fmt.str
    "Table I - state-tree construction on CPUTask (seed %d)\n%s\nstates explored: %d, test cases: %d, final: %a\n"
    seed table
    (Stcg.State_tree.size run.Engine.r_tree)
    (List.length run.Engine.r_testcases)
    Tracker.pp_summary run.Engine.r_tracker

(* --- Table II --------------------------------------------------------- *)

let table2 () =
  let rows =
    List.map
      (fun (e : Registry.entry) ->
        let prog = e.Registry.program () in
        [
          e.Registry.name;
          e.Registry.description;
          string_of_int (Slim.Branch.count prog);
          string_of_int e.Registry.paper_branches;
          string_of_int (Slim.Ir.stmt_count prog);
          string_of_int e.Registry.paper_blocks;
        ])
      Registry.entries
  in
  Fmt.str "Table II - benchmark models (ours vs paper)\n%s"
    (Text_table.render
       ~header:
         [
           "Model"; "Functionality"; "#Branch"; "paper"; "#Stmt"; "paper #Block";
         ]
       rows)

(* --- Table III -------------------------------------------------------- *)

let pct_str x = Fmt.str "%.0f%%" x

(* The canonical (model, tool, seed) job matrix and the per-job outcome
   record are first-class so that a sharded run can execute any stripe
   of the matrix and a later merge can rebuild the exact table: the
   renderer only ever sees [t3_cell]s in matrix order, whether they
   came from this process, another worker domain, or a partial-results
   file written by another machine. *)

let t3_tools = [ SLDV; SimCoTest; STCG ]
let t3_default_seeds = [ 1; 2; 3; 4; 5 ]

type t3_cell = {
  t3_decision : float;
  t3_condition : float;
  t3_mcdc : float;
  t3_tests : int;
}

let table3_matrix ?(seeds = t3_default_seeds) ?models () =
  let entries =
    match models with
    | None -> Registry.entries
    | Some names -> List.filter_map Registry.find names
  in
  (* the full (model, tool, seed) matrix, in canonical row order *)
  let matrix =
    List.concat_map
      (fun entry ->
        List.concat_map
          (fun tool ->
            List.map (fun seed -> (entry, tool, seed)) (seeds_for tool seeds))
          t3_tools)
      entries
  in
  (entries, matrix)

let table3_njobs ?seeds ?models () =
  List.length (snd (table3_matrix ?seeds ?models ()))

let t3_cell_of_run (r : Run_result.t) =
  {
    t3_decision = Run_result.decision_pct r;
    t3_condition = Run_result.condition_pct r;
    t3_mcdc = Run_result.mcdc_pct r;
    t3_tests = List.length r.Run_result.testcases;
  }

let table3_cells ?budget ?seeds ?models ?pool ?jobs ?stripe () =
  let entries, matrix = table3_matrix ?seeds ?models () in
  precompile entries;
  let indexed = stripe_filter stripe (List.mapi (fun i j -> (i, j)) matrix) in
  let cells =
    pmap ?pool ?jobs
      ~cost:(fun (_, ((e : Registry.entry), t, _)) ->
        tool_cost_weight t * entry_cost e)
      (fun (_, ((entry : Registry.entry), tool, seed)) ->
        t3_cell_of_run (run_tool ?budget ~seed tool entry))
      indexed
  in
  List.map2 (fun (i, _) c -> (i, c)) indexed cells

let average_of_cells ~tool (entry : Registry.entry) cells =
  let n = float (List.length cells) in
  let mean f = List.fold_left (fun acc c -> acc +. f c) 0.0 cells /. n in
  {
    a_model = entry.Registry.name;
    a_tool = tool;
    a_decision = mean (fun c -> c.t3_decision);
    a_condition = mean (fun c -> c.t3_condition);
    a_mcdc = mean (fun c -> c.t3_mcdc);
    a_tests = mean (fun c -> float c.t3_tests);
    a_runs = List.length cells;
  }

let table3_of_cells ?budget ?seeds ?models cells =
  let entries, matrix = table3_matrix ?seeds ?models () in
  if List.length cells <> List.length matrix then
    invalid_arg
      (Fmt.str "Experiment.table3_of_cells: %d cells for a %d-job matrix"
         (List.length cells) (List.length matrix));
  let tools = t3_tools in
  let seeds = Option.value seeds ~default:t3_default_seeds in
  (* deterministic merge: cells are in matrix order, so grouping by
     (model, tool) consumes each cell's seeds in seed order *)
  let tagged = List.combine matrix cells in
  let rows =
    List.concat_map
      (fun (entry : Registry.entry) ->
        List.map
          (fun tool ->
            let cell =
              List.filter_map
                (fun (((e : Registry.entry), t, _), r) ->
                  if e.Registry.name = entry.Registry.name && t = tool then
                    Some r
                  else None)
                tagged
            in
            average_of_cells ~tool entry cell)
          tools)
      entries
  in
  let paper_of tool (e : Registry.entry) =
    match tool with
    | SLDV -> e.Registry.paper.Registry.p_sldv
    | SimCoTest -> e.Registry.paper.Registry.p_simcotest
    | STCG | STCG_hybrid -> e.Registry.paper.Registry.p_stcg
  in
  let text_rows =
    List.concat_map
      (fun (e : Registry.entry) ->
        List.map
          (fun tool ->
            let a =
              List.find
                (fun r -> r.a_model = e.Registry.name && r.a_tool = tool)
                rows
            in
            let pd, pc, pm = paper_of tool e in
            [
              e.Registry.name;
              tool_name tool;
              pct_str a.a_decision;
              pct_str pd;
              pct_str a.a_condition;
              pct_str pc;
              pct_str a.a_mcdc;
              pct_str pm;
            ])
          tools)
      entries
  in
  (* average improvements of STCG over the baselines, paper-style *)
  let improvement base =
    let ratios metric =
      List.filter_map
        (fun (e : Registry.entry) ->
          let get tool =
            List.find
              (fun r -> r.a_model = e.Registry.name && r.a_tool = tool)
              rows
          in
          let b = metric (get base) and s = metric (get STCG) in
          if b > 0.0 then Some (100.0 *. (s -. b) /. b) else None)
        entries
    in
    let mean l =
      if l = [] then 0.0 else List.fold_left ( +. ) 0.0 l /. float (List.length l)
    in
    ( mean (ratios (fun r -> r.a_decision)),
      mean (ratios (fun r -> r.a_condition)),
      mean (ratios (fun r -> r.a_mcdc)) )
  in
  let d_sldv, c_sldv, m_sldv = improvement SLDV in
  let d_sct, c_sct, m_sct = improvement SimCoTest in
  let table =
    Text_table.render
      ~header:
        [
          "Model"; "Tool"; "Decision"; "paper"; "Condition"; "paper"; "MCDC";
          "paper";
        ]
      (text_rows
      @ [
          [
            "Average"; "STCG vs SLDV"; Fmt.str "+%.0f%%" d_sldv; "+58%";
            Fmt.str "+%.0f%%" c_sldv; "+52%"; Fmt.str "+%.0f%%" m_sldv; "+239%";
          ];
          [
            "improvement"; "STCG vs SimCoTest"; Fmt.str "+%.0f%%" d_sct;
            "+132%"; Fmt.str "+%.0f%%" c_sct; "+70%"; Fmt.str "+%.0f%%" m_sct;
            "+237%";
          ];
        ])
  in
  ( rows,
    Fmt.str
      "Table III - coverage comparison (avg over %d seeds, %s virtual budget)\n%s"
      (List.length seeds)
      (match budget with Some b -> Fmt.str "%.0fs" b | None -> "3600s")
      table )

let table3 ?budget ?seeds ?models ?pool ?jobs () =
  let cells = table3_cells ?budget ?seeds ?models ?pool ?jobs () in
  table3_of_cells ?budget ?seeds ?models (List.map snd cells)

(* --- Figure 3 --------------------------------------------------------- *)

let fig3 () =
  let entry = Option.get (Registry.find "CPUTask") in
  let prog = entry.Registry.program () in
  let branches = Slim.Branch.of_program prog in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    "Figure 3(a) - CPUTask branch structure (first two levels)\n";
  List.iter
    (fun (b : Slim.Branch.t) ->
      if b.depth <= 1 then
        Buffer.add_string buf
          (Fmt.str "%s%a\n"
             (String.make (2 * b.depth) ' ')
             Slim.Branch.pp b))
    branches;
  (* a small exploration to draw an actual state tree *)
  let config =
    { Engine.default_config with Engine.seed = 1; budget = 120.0 }
  in
  let run = Engine.run ~config prog in
  Buffer.add_string buf "\nFigure 3(b) - explored state tree (excerpt)\n";
  let tree_text = Fmt.str "%a" Stcg.State_tree.pp run.Engine.r_tree in
  let lines = String.split_on_char '\n' tree_text in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [ "  ..." ] else x :: take (k - 1) rest
  in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    (take 25 lines);
  Buffer.contents buf

(* --- Figure 4 --------------------------------------------------------- *)

(* Same shard-friendly split as Table III: one (model, tool) job per
   panel curve, a slim per-job outcome record, and a renderer that only
   consumes outcomes in matrix order. *)

let f4_tools = [ STCG; SLDV; SimCoTest ]

type f4_curve = {
  f4_tool : string;  (* the tool's self-reported name, for the CSV dump *)
  f4_timeline : (float * float) list;
  f4_markers : (float * Testcase.origin) list;
}

let fig4_matrix ?models () =
  let entries =
    match models with
    | None -> Registry.entries
    | Some names -> List.filter_map Registry.find names
  in
  let matrix =
    List.concat_map
      (fun entry -> List.map (fun tool -> (entry, tool)) f4_tools)
      entries
  in
  (entries, matrix)

let fig4_njobs ?models () = List.length (snd (fig4_matrix ?models ()))

let fig4_curves ?(budget = 3600.0) ?(seed = 1) ?models ?pool ?jobs ?stripe () =
  let entries, matrix = fig4_matrix ?models () in
  precompile entries;
  let indexed = stripe_filter stripe (List.mapi (fun i j -> (i, j)) matrix) in
  let curves =
    pmap ?pool ?jobs
      ~cost:(fun (_, ((e : Registry.entry), t)) ->
        tool_cost_weight t * entry_cost e)
      (fun (_, ((entry : Registry.entry), tool)) ->
        let r = run_tool ~budget ~seed tool entry in
        {
          f4_tool = r.Run_result.tool;
          f4_timeline = r.Run_result.timeline;
          f4_markers = r.Run_result.markers;
        })
      indexed
  in
  List.map2 (fun (i, _) c -> (i, c)) indexed curves

let csv_of_curve (c : f4_curve) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "tool,time_s,decision_pct\n";
  List.iter
    (fun (t, p) ->
      Buffer.add_string buf (Fmt.str "%s,%.1f,%.2f\n" c.f4_tool t p))
    c.f4_timeline;
  Buffer.contents buf

let fig4_of_curves ?(budget = 3600.0) ?models curves =
  let entries, matrix = fig4_matrix ?models () in
  if List.length curves <> List.length matrix then
    invalid_arg
      (Fmt.str "Experiment.fig4_of_curves: %d curves for a %d-job matrix"
         (List.length curves) (List.length matrix));
  let curve_of (entry : Registry.entry) tool =
    let rec find = function
      | [] -> assert false
      | (((e : Registry.entry), t), r) :: rest ->
        if e.Registry.name = entry.Registry.name && t = tool then r
        else find rest
    in
    find (List.combine matrix curves)
  in
  let panels = Buffer.create 4096 in
  let csvs = ref [] in
  List.iter
    (fun (entry : Registry.entry) ->
      let stcg = curve_of entry STCG in
      let sldv = curve_of entry SLDV in
      let sct = curve_of entry SimCoTest in
      let markers_of (c : f4_curve) =
        List.map
          (fun (t, origin) ->
            ( t,
              match origin with
              | Testcase.Solved -> '^'  (* paper's triangle *)
              | Testcase.Random_exec -> 'o' (* paper's diamond *) ))
          c.f4_markers
      in
      let series =
        [
          {
            Ascii_plot.s_label = "STCG (^ solved, o random)";
            s_glyph = '*';
            s_points = stcg.f4_timeline;
            s_markers = markers_of stcg;
          };
          {
            Ascii_plot.s_label = "SLDV";
            s_glyph = '#';
            s_points = sldv.f4_timeline;
            s_markers = [];
          };
          {
            Ascii_plot.s_label = "SimCoTest";
            s_glyph = '.';
            s_points = sct.f4_timeline;
            s_markers = [];
          };
        ]
      in
      Buffer.add_string panels
        (Fmt.str "\n--- %s : decision coverage vs time ---\n"
           entry.Registry.name);
      Buffer.add_string panels (Ascii_plot.render ~x_max:budget series);
      let csv = csv_of_curve stcg ^ csv_of_curve sldv ^ csv_of_curve sct in
      csvs := (entry.Registry.name, csv) :: !csvs)
    entries;
  (Buffer.contents panels, List.rev !csvs)

let fig4 ?budget ?seed ?models ?pool ?jobs () =
  let curves = fig4_curves ?budget ?seed ?models ?pool ?jobs () in
  fig4_of_curves ?budget ?models (List.map snd curves)

(* --- Ablations --------------------------------------------------------- *)

let ab_variants : (string * (Engine.config -> Engine.config)) list =
  [
    ("STCG (full)", fun c -> c);
    ("no depth sort", fun c -> { c with Engine.sort_branches = false });
    ( "state symbolic (not constant)",
      fun c -> { c with Engine.state_aware = false } );
    ( "no random fallback",
      fun c -> { c with Engine.random_fallback = false } );
    ("random-first hybrid", fun c -> { c with Engine.random_first = true });
  ]

let ab_default_seeds = [ 1; 2; 3 ]
let ab_default_models = [ "CPUTask"; "TCP" ]

type ab_cell = { ab_decision : float; ab_time : float }

let ablations_matrix ?(seeds = ab_default_seeds) ?models () =
  let models = match models with Some ms -> ms | None -> ab_default_models in
  let entries = List.filter_map Registry.find models in
  let matrix =
    List.concat_map
      (fun mname ->
        List.concat_map
          (fun (label, _tweak) ->
            List.map (fun seed -> (mname, label, seed)) seeds)
          ab_variants)
      models
  in
  (models, entries, matrix)

let ablations_njobs ?seeds ?models () =
  let _, _, matrix = ablations_matrix ?seeds ?models () in
  List.length matrix

(* one job per (model, variant, seed); both reported metrics come from
   the same run (runs are deterministic, so this also halves the work
   the old per-metric re-execution did) *)
let ablations_cells ?(budget = 3600.0) ?seeds ?models ?pool ?jobs ?stripe () =
  let _, entries, matrix = ablations_matrix ?seeds ?models () in
  precompile entries;
  let indexed = stripe_filter stripe (List.mapi (fun i j -> (i, j)) matrix) in
  let cells =
    pmap ?pool ?jobs
      ~cost:(fun (_, (mname, _, _)) ->
        match Registry.find mname with
        | Some e -> tool_cost_weight STCG * entry_cost e
        | None -> 1)
      (fun (_, (mname, label, seed)) ->
        let entry = Option.get (Registry.find mname) in
        let prog = entry.Registry.program () in
        let tweak = List.assoc label ab_variants in
        let config = tweak { Engine.default_config with Engine.seed; budget } in
        let run = Engine.run ~config prog in
        let decision = Tracker.pct (Tracker.decision run.Engine.r_tracker) in
        let time_to_full =
          match run.Engine.r_stop with
          | Engine.Full_coverage -> Stcg.Vclock.now run.Engine.r_clock
          | Engine.Budget_exhausted -> budget
        in
        { ab_decision = decision; ab_time = time_to_full })
      indexed
  in
  List.map2 (fun (i, _) c -> (i, c)) indexed cells

let ablations_of_cells ?(budget = 3600.0) ?(seeds = ab_default_seeds) ?models
    cells =
  let models, _, matrix = ablations_matrix ~seeds ?models () in
  if List.length cells <> List.length matrix then
    invalid_arg
      (Fmt.str "Experiment.ablations_of_cells: %d cells for a %d-job matrix"
         (List.length cells) (List.length matrix));
  let tagged = List.combine matrix cells in
  let rows =
    List.concat_map
      (fun mname ->
        List.map
          (fun (label, _tweak) ->
            let cell =
              List.filter_map
                (fun ((m, l, _), metric) ->
                  if m = mname && l = label then Some metric else None)
                tagged
            in
            let mean f =
              List.fold_left (fun acc metric -> acc +. f metric) 0.0 cell
              /. float (List.length cell)
            in
            [
              mname;
              label;
              Fmt.str "%.1f%%" (mean (fun c -> c.ab_decision));
              Fmt.str "%.0fs" (mean (fun c -> c.ab_time));
            ])
          ab_variants)
      models
  in
  Fmt.str "Ablations (avg over %d seeds; time = virtual time to full coverage, budget %.0fs)\n%s"
    (List.length seeds) budget
    (Text_table.render
       ~header:[ "Model"; "Variant"; "Decision"; "Time-to-done" ]
       rows)

let ablations ?budget ?seeds ?models ?pool ?jobs () =
  let cells = ablations_cells ?budget ?seeds ?models ?pool ?jobs () in
  ablations_of_cells ?budget ?seeds ?models (List.map snd cells)
