module Registry = Models.Registry

type kind = Table3 | Fig4 | Ablations

let kind_name = function
  | Table3 -> "table3"
  | Fig4 -> "fig4"
  | Ablations -> "ablations"

let kind_of_name = function
  | "table3" -> Some Table3
  | "fig4" -> Some Fig4
  | "ablations" -> Some Ablations
  | _ -> None

type spec = {
  sp_kind : kind;
  sp_budget : float;
  sp_seeds : int list;
  sp_seed : int;
  sp_models : string list option;
}

let spec ?(budget = 3600.0) ?seeds ?(seed = 1) ?models kind =
  let seeds =
    match (seeds, kind) with
    | Some s, _ -> s
    | None, Ablations -> Experiment.ab_default_seeds
    | None, (Table3 | Fig4) -> Experiment.t3_default_seeds
  in
  { sp_kind = kind; sp_budget = budget; sp_seeds = seeds; sp_seed = seed;
    sp_models = models }

let njobs spec =
  let models = spec.sp_models in
  match spec.sp_kind with
  | Table3 -> Experiment.table3_njobs ~seeds:spec.sp_seeds ?models ()
  | Fig4 -> Experiment.fig4_njobs ?models ()
  | Ablations -> Experiment.ablations_njobs ~seeds:spec.sp_seeds ?models ()

exception Malformed of string

let malformed fmt = Fmt.kstr (fun s -> raise (Malformed s)) fmt

(* --- a minimal JSON layer ---------------------------------------------- *)

(* The image has no JSON library and telemetry only *writes* JSON, so
   partial files get their own ~100-line reader.  Floats are the only
   subtlety: the writer prints "%.17g" (shortest-exact would also do,
   but 17 significant digits round-trips every IEEE double) and the
   reader hands the raw token to [float_of_string], so merged averages
   see bit-identical inputs. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = malformed "%s at byte %d" msg !pos in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Fmt.str "expected '%c'" c)
  in
  let lit word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Fmt.str "expected %s" word)
  in
  let digits () =
    while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
      incr pos
    done
  in
  let number () =
    let start = !pos in
    if peek () = Some '-' then incr pos;
    digits ();
    if peek () = Some '.' then (
      incr pos;
      digits ());
    (match peek () with
     | Some ('e' | 'E') ->
       incr pos;
       (match peek () with Some ('+' | '-') -> incr pos | _ -> ());
       digits ()
     | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let utf8_of_code buf c =
    (* partials only ever contain ASCII, but decode \uXXXX properly *)
    if c < 0x80 then Buffer.add_char buf (Char.chr c)
    else if c < 0x800 then (
      Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F))))
    else (
      Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F))))
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
        incr pos;
        (if !pos >= n then fail "unterminated escape";
         match s.[!pos] with
         | ('"' | '\\' | '/') as c ->
           Buffer.add_char buf c;
           incr pos
         | 'b' -> Buffer.add_char buf '\b'; incr pos
         | 'f' -> Buffer.add_char buf '\012'; incr pos
         | 'n' -> Buffer.add_char buf '\n'; incr pos
         | 'r' -> Buffer.add_char buf '\r'; incr pos
         | 't' -> Buffer.add_char buf '\t'; incr pos
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | Some c -> utf8_of_code buf c
            | None -> fail "bad \\u escape");
           pos := !pos + 5
         | _ -> fail "bad escape");
        loop ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' -> obj ()
    | Some '[' -> arr ()
    | Some '"' -> Str (string_lit ())
    | Some 't' -> lit "true" (Bool true)
    | Some 'f' -> lit "false" (Bool false)
    | Some 'n' -> lit "null" Null
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "unexpected character"
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      incr pos;
      Arr [])
    else begin
      let items = ref [] in
      let rec loop () =
        items := value () :: !items;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          loop ()
        | Some ']' -> incr pos
        | _ -> fail "expected ',' or ']'"
      in
      loop ();
      Arr (List.rev !items)
    end
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      incr pos;
      Obj [])
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws ();
        let key = string_lit () in
        skip_ws ();
        expect ':';
        fields := (key, value ()) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' ->
          incr pos;
          loop ()
        | Some '}' -> incr pos
        | _ -> fail "expected ',' or '}'"
      in
      loop ();
      Obj (List.rev !fields)
    end
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* typed accessors *)

let member key = function
  | Obj fields -> (
    match List.assoc_opt key fields with
    | Some v -> v
    | None -> malformed "missing field %S" key)
  | _ -> malformed "expected an object with field %S" key

let to_float key = function
  | Num f -> f
  | _ -> malformed "field %S: expected a number" key

let to_int key v =
  let f = to_float key v in
  let i = int_of_float f in
  if float_of_int i <> f then malformed "field %S: expected an integer" key;
  i

let to_string key = function
  | Str s -> s
  | _ -> malformed "field %S: expected a string" key

let to_list key = function
  | Arr l -> l
  | _ -> malformed "field %S: expected an array" key

(* writing *)

let add_float buf f =
  (* %.17g round-trips every finite IEEE double exactly *)
  Buffer.add_string buf (Fmt.str "%.17g" f)

let add_string buf s =
  Buffer.add_char buf '"';
  Buffer.add_string buf (Telemetry.json_escape s);
  Buffer.add_char buf '"'

let add_sep buf first = if !first then first := false else Buffer.add_char buf ','

(* --- the partial format ------------------------------------------------- *)

let format_tag = "stcg-shard/1"

let header_of_spec buf spec ~shard:(si, sn) =
  let total = njobs spec in
  Buffer.add_string buf "{\"format\":";
  add_string buf format_tag;
  Buffer.add_string buf ",\"kind\":";
  add_string buf (kind_name spec.sp_kind);
  Buffer.add_string buf ",\"budget\":";
  add_float buf spec.sp_budget;
  Buffer.add_string buf ",\"seeds\":[";
  let first = ref true in
  List.iter
    (fun s ->
      add_sep buf first;
      Buffer.add_string buf (string_of_int s))
    spec.sp_seeds;
  Buffer.add_string buf "],\"seed\":";
  Buffer.add_string buf (string_of_int spec.sp_seed);
  Buffer.add_string buf ",\"models\":";
  (match spec.sp_models with
   | None -> Buffer.add_string buf "null"
   | Some ms ->
     Buffer.add_char buf '[';
     let first = ref true in
     List.iter
       (fun m ->
         add_sep buf first;
         add_string buf m)
       ms;
     Buffer.add_char buf ']');
  Buffer.add_string buf ",\"njobs\":";
  Buffer.add_string buf (string_of_int total);
  Buffer.add_string buf (Fmt.str ",\"shard\":[%d,%d]" si sn)

let origin_name = function
  | Stcg.Testcase.Solved -> "solved"
  | Stcg.Testcase.Random_exec -> "random"

let origin_of_name key = function
  | "solved" -> Stcg.Testcase.Solved
  | "random" -> Stcg.Testcase.Random_exec
  | s -> malformed "field %S: unknown origin %S" key s

let add_t3_cell buf (i, (c : Experiment.t3_cell)) =
  Buffer.add_string buf (Fmt.str "{\"i\":%d,\"d\":" i);
  add_float buf c.Experiment.t3_decision;
  Buffer.add_string buf ",\"c\":";
  add_float buf c.Experiment.t3_condition;
  Buffer.add_string buf ",\"m\":";
  add_float buf c.Experiment.t3_mcdc;
  Buffer.add_string buf (Fmt.str ",\"t\":%d}" c.Experiment.t3_tests)

let add_f4_curve buf (i, (c : Experiment.f4_curve)) =
  Buffer.add_string buf (Fmt.str "{\"i\":%d,\"tool\":" i);
  add_string buf c.Experiment.f4_tool;
  Buffer.add_string buf ",\"timeline\":[";
  let first = ref true in
  List.iter
    (fun (t, p) ->
      add_sep buf first;
      Buffer.add_char buf '[';
      add_float buf t;
      Buffer.add_char buf ',';
      add_float buf p;
      Buffer.add_char buf ']')
    c.Experiment.f4_timeline;
  Buffer.add_string buf "],\"markers\":[";
  let first = ref true in
  List.iter
    (fun (t, origin) ->
      add_sep buf first;
      Buffer.add_char buf '[';
      add_float buf t;
      Buffer.add_char buf ',';
      add_string buf (origin_name origin);
      Buffer.add_char buf ']')
    c.Experiment.f4_markers;
  Buffer.add_string buf "]}"

let add_ab_cell buf (i, (c : Experiment.ab_cell)) =
  Buffer.add_string buf (Fmt.str "{\"i\":%d,\"d\":" i);
  add_float buf c.Experiment.ab_decision;
  Buffer.add_string buf ",\"tt\":";
  add_float buf c.Experiment.ab_time;
  Buffer.add_string buf "}"

type cells =
  | C_table3 of (int * Experiment.t3_cell) list
  | C_fig4 of (int * Experiment.f4_curve) list
  | C_ablations of (int * Experiment.ab_cell) list

let run_partial ?pool ?jobs ~shard spec =
  let si, sn = shard in
  if sn < 1 || si < 0 || si >= sn then
    invalid_arg "Shard.run_partial: shard must satisfy 0 <= i < n";
  let stripe = if sn = 1 then None else Some shard in
  let budget = spec.sp_budget in
  let models = spec.sp_models in
  let cells =
    match spec.sp_kind with
    | Table3 ->
      C_table3
        (Experiment.table3_cells ~budget ~seeds:spec.sp_seeds ?models ?pool
           ?jobs ?stripe ())
    | Fig4 ->
      C_fig4
        (Experiment.fig4_curves ~budget ~seed:spec.sp_seed ?models ?pool ?jobs
           ?stripe ())
    | Ablations ->
      C_ablations
        (Experiment.ablations_cells ~budget ~seeds:spec.sp_seeds ?models ?pool
           ?jobs ?stripe ())
  in
  let buf = Buffer.create 4096 in
  header_of_spec buf spec ~shard;
  Buffer.add_string buf ",\"cells\":[";
  let first = ref true in
  (match cells with
   | C_table3 cs ->
     List.iter
       (fun c ->
         add_sep buf first;
         add_t3_cell buf c)
       cs
   | C_fig4 cs ->
     List.iter
       (fun c ->
         add_sep buf first;
         add_f4_curve buf c)
       cs
   | C_ablations cs ->
     List.iter
       (fun c ->
         add_sep buf first;
         add_ab_cell buf c)
       cs);
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

(* --- merging ------------------------------------------------------------ *)

let spec_of_header json =
  let kind =
    let k = to_string "kind" (member "kind" json) in
    match kind_of_name k with
    | Some k -> k
    | None -> malformed "unknown kind %S" k
  in
  {
    sp_kind = kind;
    sp_budget = to_float "budget" (member "budget" json);
    sp_seeds = List.map (to_int "seeds") (to_list "seeds" (member "seeds" json));
    sp_seed = to_int "seed" (member "seed" json);
    sp_models =
      (match member "models" json with
       | Null -> None
       | v -> Some (List.map (to_string "models") (to_list "models" v)));
  }

let t3_cell_of_json json =
  ( to_int "i" (member "i" json),
    {
      Experiment.t3_decision = to_float "d" (member "d" json);
      t3_condition = to_float "c" (member "c" json);
      t3_mcdc = to_float "m" (member "m" json);
      t3_tests = to_int "t" (member "t" json);
    } )

let f4_curve_of_json json =
  let pair key = function
    | Arr [ a; b ] -> (to_float key a, b)
    | _ -> malformed "field %S: expected [time, value] pairs" key
  in
  ( to_int "i" (member "i" json),
    {
      Experiment.f4_tool = to_string "tool" (member "tool" json);
      f4_timeline =
        List.map
          (fun v ->
            let t, p = pair "timeline" v in
            (t, to_float "timeline" p))
          (to_list "timeline" (member "timeline" json));
      f4_markers =
        List.map
          (fun v ->
            let t, o = pair "markers" v in
            (t, origin_of_name "markers" (to_string "markers" o)))
          (to_list "markers" (member "markers" json));
    } )

let ab_cell_of_json json =
  ( to_int "i" (member "i" json),
    {
      Experiment.ab_decision = to_float "d" (member "d" json);
      ab_time = to_float "tt" (member "tt" json);
    } )

type merged =
  | M_table3 of Experiment.averaged list * string
  | M_fig4 of string * (string * string) list
  | M_ablations of string

let render = function
  | M_table3 (_, text) -> text
  | M_fig4 (panels, _) -> panels
  | M_ablations text -> text

(* Validate that the indexed cells cover [0, total) exactly once and
   strip the indices (cells arrive sorted by index). *)
let check_coverage ~total cells =
  let seen = Array.make total false in
  List.iter
    (fun (i, _) ->
      if i < 0 || i >= total then
        malformed "cell index %d outside the %d-job matrix" i total;
      if seen.(i) then malformed "cell index %d covered by two partials" i;
      seen.(i) <- true)
    cells;
  Array.iteri
    (fun i covered ->
      if not covered then malformed "cell index %d missing from the partials" i)
    seen;
  List.map snd cells

let merge_strings parts =
  if parts = [] then malformed "no partials to merge";
  let parsed = List.map parse parts in
  let headers = List.map spec_of_header parsed in
  let spec = List.hd headers in
  List.iteri
    (fun k h ->
      if h <> spec then
        malformed "partial %d is from a different campaign" (k + 1))
    headers;
  let total = njobs spec in
  List.iter
    (fun json ->
      let declared = to_int "njobs" (member "njobs" json) in
      if declared <> total then
        malformed
          "partial declares a %d-job matrix but this binary computes %d \
           (registry mismatch?)"
          declared total)
    parsed;
  let all_cells key of_json =
    List.concat_map
      (fun json -> List.map of_json (to_list key (member key json)))
      parsed
    |> List.sort (fun (i, _) (j, _) -> compare (i : int) j)
    |> check_coverage ~total
  in
  let budget = spec.sp_budget in
  let models = spec.sp_models in
  match spec.sp_kind with
  | Table3 ->
    let rows, text =
      Experiment.table3_of_cells ~budget ~seeds:spec.sp_seeds ?models
        (all_cells "cells" t3_cell_of_json)
    in
    M_table3 (rows, text)
  | Fig4 ->
    let panels, csvs =
      Experiment.fig4_of_curves ~budget ?models
        (all_cells "cells" f4_curve_of_json)
    in
    M_fig4 (panels, csvs)
  | Ablations ->
    M_ablations
      (Experiment.ablations_of_cells ~budget ~seeds:spec.sp_seeds ?models
         (all_cells "cells" ab_cell_of_json))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let merge_files paths = merge_strings (List.map read_file paths)
