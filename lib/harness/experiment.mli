(** The experiment harness: reproduces every table and figure of the
    paper's evaluation on the rebuilt benchmark suite.

    All experiments are deterministic given their seeds; randomized
    tools (STCG, SimCoTest) are averaged over [seeds] as the paper
    averages over 10 repetitions.

    The independent (tool, model, seed) runs behind each experiment are
    executed on a {!Pool} of worker domains ([?jobs], default
    {!Pool.default_jobs} — the [STCG_JOBS] environment variable or the
    machine's core count minus one).  Jobs are enumerated up front and
    results merged in job-index order, so every table, panel and CSV is
    byte-identical for any [jobs] value; [jobs = 1] runs the exact
    sequential path.

    Pass [?pool] to run several experiments on one shared pool (the
    bench harness does this for the whole artifact sweep); it takes
    precedence over [?jobs]. *)

type tool = STCG | STCG_hybrid | SLDV | SimCoTest

val tool_name : tool -> string

val run_tool :
  ?budget:float -> ?analyze:bool -> seed:int -> tool ->
  Models.Registry.entry -> Stcg.Run_result.t
(** [analyze] (default false, STCG variants only): run the static
    analyzer first so proven-dead objectives are justified and skipped
    (see {!Stcg.Engine.config}). *)

type averaged = {
  a_model : string;
  a_tool : tool;
  a_decision : float;
  a_condition : float;
  a_mcdc : float;
  a_tests : float;
  a_runs : int;
}

val average :
  ?budget:float -> ?pool:Pool.t -> ?jobs:int -> seeds:int list -> tool ->
  Models.Registry.entry -> averaged

(** {1 Paper artifacts} *)

val table1 : ?budget:float -> ?seed:int -> unit -> string
(** The state-tree construction trace on CPUTask (paper Table I). *)

val table2 : unit -> string
(** Benchmark description: our branch/block counts next to the paper's
    (paper Table II). *)

val table3 :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> unit -> averaged list * string
(** Coverage comparison of the three tools over all models with average
    improvements (paper Table III).  Returns the raw rows and the
    rendered table. *)

val fig3 : unit -> string
(** CPUTask branch structure and an example explored state tree
    (paper Figure 3). *)

val fig4 :
  ?budget:float -> ?seed:int -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> unit -> string * (string * string) list
(** Decision-coverage-versus-time panels for each model (paper
    Figure 4).  Returns the rendered panels and, per model, a CSV dump
    of the series ((model, csv) pairs). *)

val ablations :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> unit -> string
(** Ablation study over STCG's design choices: depth-sorted targets,
    state-aware (constant) solving, the random-sequence fallback, and
    the random-first hybrid from the paper's Discussion. *)
