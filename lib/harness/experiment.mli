(** The experiment harness: reproduces every table and figure of the
    paper's evaluation on the rebuilt benchmark suite.

    All experiments are deterministic given their seeds; randomized
    tools (STCG, SimCoTest) are averaged over [seeds] as the paper
    averages over 10 repetitions.

    The independent (tool, model, seed) runs behind each experiment are
    executed on a {!Pool} of worker domains ([?jobs], default
    {!Pool.default_jobs} — the [STCG_JOBS] environment variable or the
    machine's core count minus one).  Jobs are enumerated up front and
    results merged in job-index order, so every table, panel and CSV is
    byte-identical for any [jobs] value; [jobs = 1] runs the exact
    sequential path.

    Pass [?pool] to run several experiments on one shared pool (the
    bench harness does this for the whole artifact sweep); it takes
    precedence over [?jobs].

    Sharding: the parallel experiments additionally expose their
    canonical job matrix ([*_njobs]), a cell executor ([*_cells]) that
    can run any deterministic stripe of it ([?stripe:(i, n)] keeps jobs
    with index [j mod n = i]), and a pure renderer ([*_of_cells]) that
    rebuilds the exact artifact from the full cell list in matrix
    order.  {!Shard} serializes cells to partial-result files and
    merges them back through the same renderers, so a sharded
    multi-process campaign is byte-identical to a single-process run. *)

type tool = STCG | STCG_hybrid | SLDV | SimCoTest

val tool_name : tool -> string

val run_tool :
  ?budget:float ->
  ?analyze:bool ->
  ?domain:Analysis.Analyzer.domain ->
  ?verdict_priority:bool ->
  ?reanalyze_every:int ->
  seed:int ->
  tool ->
  Models.Registry.entry ->
  Stcg.Run_result.t
(** [analyze] (default false, STCG variants only): run the static
    analyzer first so proven-dead objectives are justified and skipped.
    [domain] (default [`Interval]) picks the abstract domain,
    [verdict_priority] (default false) enables verdict-ordered solving
    with static Unsat pruning, and [reanalyze_every] (default 0 =
    never) re-runs the analysis from reached snapshots every N solving
    iterations (see {!Stcg.Engine.config}). *)

type averaged = {
  a_model : string;
  a_tool : tool;
  a_decision : float;
  a_condition : float;
  a_mcdc : float;
  a_tests : float;
  a_runs : int;
}

val average :
  ?budget:float -> ?pool:Pool.t -> ?jobs:int -> seeds:int list -> tool ->
  Models.Registry.entry -> averaged

(** {1 Paper artifacts} *)

val table1 : ?budget:float -> ?seed:int -> unit -> string
(** The state-tree construction trace on CPUTask (paper Table I). *)

val table2 : unit -> string
(** Benchmark description: our branch/block counts next to the paper's
    (paper Table II). *)

val table3 :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> unit -> averaged list * string
(** Coverage comparison of the three tools over all models with average
    improvements (paper Table III).  Returns the raw rows and the
    rendered table. *)

val t3_default_seeds : int list
(** The seed list {!table3} averages over by default ([1..5]). *)

type t3_cell = {
  t3_decision : float;
  t3_condition : float;
  t3_mcdc : float;
  t3_tests : int;
}
(** Outcome of one (model, tool, seed) Table III run. *)

val table3_njobs : ?seeds:int list -> ?models:string list -> unit -> int
(** Size of the canonical Table III job matrix for these parameters. *)

val table3_cells :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> ?stripe:int * int -> unit -> (int * t3_cell) list
(** Execute (a stripe of) the Table III matrix; returns
    [(job_index, cell)] in index order.  [stripe = (i, n)] keeps jobs
    with [index mod n = i]; raises [Invalid_argument] unless
    [0 <= i < n]. *)

val table3_of_cells :
  ?budget:float -> ?seeds:int list -> ?models:string list -> t3_cell list ->
  averaged list * string
(** Rebuild {!table3}'s result from the full cell list in matrix order
    (raises [Invalid_argument] on a count mismatch).  [budget], [seeds]
    and [models] must match the values the cells were produced with. *)

val fig3 : unit -> string
(** CPUTask branch structure and an example explored state tree
    (paper Figure 3). *)

val fig4 :
  ?budget:float -> ?seed:int -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> unit -> string * (string * string) list
(** Decision-coverage-versus-time panels for each model (paper
    Figure 4).  Returns the rendered panels and, per model, a CSV dump
    of the series ((model, csv) pairs). *)

type f4_curve = {
  f4_tool : string;
    (** the tool's self-reported name, carried for the CSV dump *)
  f4_timeline : (float * float) list;
  f4_markers : (float * Stcg.Testcase.origin) list;
}
(** Outcome of one (model, tool) Figure 4 run. *)

val fig4_njobs : ?models:string list -> unit -> int

val fig4_curves :
  ?budget:float -> ?seed:int -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> ?stripe:int * int -> unit -> (int * f4_curve) list
(** Execute (a stripe of) the Figure 4 matrix; same contract as
    {!table3_cells}. *)

val fig4_of_curves :
  ?budget:float -> ?models:string list -> f4_curve list ->
  string * (string * string) list
(** Rebuild {!fig4}'s result from the full curve list in matrix order. *)

val ablations :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> unit -> string
(** Ablation study over STCG's design choices: depth-sorted targets,
    state-aware (constant) solving, the random-sequence fallback, and
    the random-first hybrid from the paper's Discussion. *)

val ab_default_seeds : int list
(** The seed list {!ablations} averages over by default ([1..3]). *)

type ab_cell = { ab_decision : float; ab_time : float }
(** Outcome of one (model, variant, seed) ablation run. *)

val ablations_njobs : ?seeds:int list -> ?models:string list -> unit -> int

val ablations_cells :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ?pool:Pool.t ->
  ?jobs:int -> ?stripe:int * int -> unit -> (int * ab_cell) list
(** Execute (a stripe of) the ablation matrix; same contract as
    {!table3_cells}. *)

val ablations_of_cells :
  ?budget:float -> ?seeds:int list -> ?models:string list -> ab_cell list ->
  string
(** Rebuild {!ablations}'s result from the full cell list in matrix
    order. *)
