exception Nested_pool

(* [pool.jobs]/[pool.batches] count the same work for any worker count,
   so they are deterministic; everything that depends on how the
   scheduler spread the work ([pool.steals], per-worker busy time,
   initial queue depths, the effective worker count) is [~nondet] and
   excluded from determinism checks.  The [pool.job] span gives per-
   domain busy time per job. *)
let tel_jobs = Telemetry.Counter.make "pool.jobs"
let tel_batches = Telemetry.Counter.make "pool.batches"
let tel_steals = Telemetry.Counter.make ~nondet:true "pool.steals"
let tel_sp_job = Telemetry.Span.make "pool.job"
let tel_busy = Telemetry.Histogram.make ~nondet:true "pool.worker_busy_ms"
let tel_qdepth = Telemetry.Histogram.make ~nondet:true "pool.queue_depth"
let tel_workers = Telemetry.Histogram.make ~nondet:true "pool.effective_workers"

(* Set while a domain (worker or the caller mid-[map]) is executing pool
   jobs; guards against nested parallelism. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () =
  match Sys.getenv_opt "STCG_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* More worker domains than cores is pure loss in OCaml 5: the runs are
   CPU-bound, and every minor collection is a stop-the-world handshake
   across *all* domains, so an oversubscribed domain turns each minor GC
   into an OS scheduling round-trip.  (Measured on a 1-core container:
   jobs=2 ran the table3 matrix 2.3x *slower* than jobs=1.)  Requested
   parallelism is therefore clamped to the hardware by default;
   [~oversubscribe:true] (or STCG_OVERSUBSCRIBE=1) keeps the requested
   count — tests use it to exercise real cross-domain scheduling on any
   machine. *)
let oversubscribe_env () = Sys.getenv_opt "STCG_OVERSUBSCRIBE" = Some "1"

let effective_jobs ?(oversubscribe = false) requested =
  let requested = max 1 requested in
  if oversubscribe || oversubscribe_env () then requested
  else min requested (max 1 (Domain.recommended_domain_count ()))

let default_minor_heap_mb () =
  match Sys.getenv_opt "STCG_MINOR_HEAP_MB" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> Some n
     | Some _ | None -> None)
  | None -> None

(* Larger per-domain minor heaps make minor collections — and with them
   the cross-domain stop-the-world handshakes — proportionally rarer.
   Best effort: a runtime that cannot resize simply keeps its current
   size. *)
let apply_minor_heap = function
  | None -> ()
  | Some mb ->
    let words = mb * (1024 * 1024 / (Sys.word_size / 8)) in
    (try Gc.set { (Gc.get ()) with Gc.minor_heap_size = words }
     with _ -> ())

(* One worker's slice of a batch: a deque of job indices.  The owner
   pops at [lo]; thieves pop at [hi - 1].  A plain mutex per deque is
   plenty — jobs here are whole engine runs (milliseconds to seconds),
   so deque traffic is negligible. *)
type deque = {
  d_lock : Mutex.t;
  d_idx : int array;
  mutable d_lo : int;
  mutable d_hi : int;
}

type batch = {
  b_deques : deque array;
  b_run : int -> unit;  (* executes job [i]; never raises *)
  b_aborted : bool ref;  (* set on first failure: skip unstarted jobs *)
  mutable b_remaining : int;  (* jobs not yet executed or skipped *)
}

type t = {
  requested : int;  (* the parallelism the caller asked for *)
  workers : int;  (* domains actually used, incl. the caller; clamped *)
  minor_heap_mb : int option;
  lock : Mutex.t;  (* protects every mutable field below *)
  work : Condition.t;  (* a batch was submitted, or shutdown *)
  finished : Condition.t;  (* b_remaining hit 0 *)
  mutable batch : batch option;
  mutable generation : int;  (* bumped per submitted batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.requested
let workers t = t.workers

let take_own d =
  Mutex.lock d.d_lock;
  let r =
    if d.d_lo < d.d_hi then begin
      let i = d.d_idx.(d.d_lo) in
      d.d_lo <- d.d_lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.d_lock;
  r

let steal d =
  Mutex.lock d.d_lock;
  let r =
    if d.d_lo < d.d_hi then begin
      let i = d.d_idx.(d.d_hi - 1) in
      d.d_hi <- d.d_hi - 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.d_lock;
  if r <> None then Telemetry.Counter.incr tel_steals;
  r

(* Next job for worker [w]: own deque first, then steal round-robin. *)
let next_job b w =
  let n = Array.length b.b_deques in
  match take_own b.b_deques.(w) with
  | Some i -> Some i
  | None ->
    let rec go k =
      if k = n then None
      else
        match steal b.b_deques.((w + k) mod n) with
        | Some i -> Some i
        | None -> go (k + 1)
    in
    go 1

(* Execute (or, after an abort, skip) jobs until none are reachable.
   Every drained job decrements [b_remaining]; the worker that hits 0
   wakes the submitter. *)
let drain t b w =
  let busy_t0 =
    if Telemetry.enabled () then Telemetry.Monotonic_clock.now_ns () else 0L
  in
  let rec loop () =
    match next_job b w with
    | None -> ()
    | Some i ->
      if not !(b.b_aborted) then b.b_run i;
      Mutex.lock t.lock;
      b.b_remaining <- b.b_remaining - 1;
      if b.b_remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      loop ()
  in
  loop ();
  if Telemetry.enabled () then
    Telemetry.Histogram.observe tel_busy
      (Int64.to_int
         (Int64.div
            (Telemetry.Monotonic_clock.elapsed_ns ~since:busy_t0)
            1_000_000L))

let worker t w () =
  Domain.DLS.set in_worker true;
  apply_minor_heap t.minor_heap_mb;
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = !last do
      Condition.wait t.work t.lock
    done;
    if t.generation <> !last then begin
      last := t.generation;
      let b = t.batch in
      Mutex.unlock t.lock;
      (* [batch] may already be back to [None] if the other workers
         finished it before this one woke up — nothing to do then. *)
      match b with None -> () | Some b -> drain t b w
    end
    else begin
      Mutex.unlock t.lock;
      running := false
    end
  done

let create ?jobs ?oversubscribe ?minor_heap_mb () =
  let requested = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let workers = effective_jobs ?oversubscribe requested in
  let minor_heap_mb =
    match minor_heap_mb with
    | Some _ as m -> m
    | None -> default_minor_heap_mb ()
  in
  let t =
    {
      requested;
      workers;
      minor_heap_mb;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
      domains = [];
    }
  in
  (* worker domains only matter when a parallel batch can run at all *)
  if workers > 1 then apply_minor_heap minor_heap_mb;
  (* the caller is worker 0; spawn the rest *)
  t.domains <- List.init (workers - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs ?oversubscribe ?minor_heap_mb f =
  let t = create ?jobs ?oversubscribe ?minor_heap_mb () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let mk_deque idx =
  { d_lock = Mutex.create (); d_idx = idx; d_lo = 0; d_hi = Array.length idx }

(* Split [0 .. njobs-1] into [n] contiguous blocks (front-loaded when
   it does not divide evenly): preserves submission locality when no
   cost model is given. *)
let partition njobs n =
  let q = njobs / n and r = njobs mod n in
  Array.init n (fun w ->
      let lo = (w * q) + min w r in
      let len = q + if w < r then 1 else 0 in
      mk_deque (Array.init len (fun k -> lo + k)))

(* Deal a cost-descending job order round-robin across the workers:
   every owner pops its heaviest job first and the expected load is
   balanced, so one heavyweight cell no longer serializes the tail of
   the batch.  Scheduling only — results are still merged by original
   job index, so output is unchanged. *)
let partition_by_cost items njobs n cost =
  let order = Array.init njobs (fun i -> i) in
  let costs = Array.map (fun it -> cost it) items in
  Array.sort
    (fun i j ->
      match compare costs.(j) costs.(i) with 0 -> compare i j | c -> c)
    order;
  Array.init n (fun w ->
      let len = (njobs - w + n - 1) / n in
      mk_deque (Array.init len (fun k -> order.(w + (k * n)))))

let map t ?cost f items_list =
  if Domain.DLS.get in_worker then raise Nested_pool;
  let items = Array.of_list items_list in
  let njobs = Array.length items in
  if njobs = 0 then []
  else if t.workers = 1 || njobs = 1 then begin
    (* the exact sequential path: same domain, same evaluation order,
       exceptions propagate untouched.  Jobs are still counted and
       spanned so telemetry totals match the parallel path, and
       [in_worker] is still set so nested parallelism is rejected on
       every machine, not only where the clamp leaves > 1 worker. *)
    Telemetry.Counter.incr tel_batches;
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () ->
        List.map
          (fun x ->
            Telemetry.Counter.incr tel_jobs;
            Telemetry.Span.with_ tel_sp_job (fun () -> f x))
          items_list)
  end
  else begin
    Telemetry.Counter.incr tel_batches;
    let results = Array.make njobs None in
    let failure = ref None in
    let aborted = ref false in
    let run i =
      try
        Telemetry.Counter.incr tel_jobs;
        results.(i) <- Some (Telemetry.Span.with_ tel_sp_job (fun () -> f items.(i)))
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.lock;
        (match !failure with
         | Some (j, _, _) when j <= i -> ()
         | Some _ | None -> failure := Some (i, exn, bt));
        aborted := true;
        Mutex.unlock t.lock
    in
    let deques =
      match cost with
      | None -> partition njobs t.workers
      | Some c -> partition_by_cost items njobs t.workers c
    in
    if Telemetry.enabled () then begin
      Telemetry.Histogram.observe tel_workers t.workers;
      Array.iter
        (fun d -> Telemetry.Histogram.observe tel_qdepth (d.d_hi - d.d_lo))
        deques
    end;
    let b =
      {
        b_deques = deques;
        b_run = run;
        b_aborted = aborted;
        b_remaining = njobs;
      }
    in
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: pool is shut down"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: a batch is already in flight on this pool"
    end;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* participate as worker 0, then wait out in-flight stolen jobs *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () -> drain t b 0);
    Mutex.lock t.lock;
    while b.b_remaining > 0 do
      Condition.wait t.finished t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    match !failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) results)
  end

let run_all t thunks = map t (fun f -> f ()) thunks

(* Group tiny jobs into chunks of [chunk] so that deque/steal traffic is
   paid once per chunk instead of once per item.  Chunks are formed in
   input order and results concatenated in chunk order, so the
   determinism contract of [map] carries over unchanged; the exception
   re-raised on failure is that of the lowest-indexed failed *chunk*
   (within a chunk, items run left to right). *)
let map_chunked t ~chunk f items =
  if chunk <= 1 then map t f items
  else begin
    let rec chunks acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
        if k = chunk then chunks (List.rev cur :: acc) [ x ] 1 rest
        else chunks acc (x :: cur) (k + 1) rest
    in
    List.concat (map t (List.map f) (chunks [] [] 0 items))
  end

let parallel_map ?jobs ?oversubscribe ?cost f items =
  with_pool ?jobs ?oversubscribe (fun t -> map t ?cost f items)

let parallel_run_all ?jobs ?oversubscribe thunks =
  with_pool ?jobs ?oversubscribe (fun t -> run_all t thunks)
