exception Nested_pool

(* [pool.jobs]/[pool.batches] count the same work for any worker count,
   so they are deterministic; [pool.steals] depends on scheduling and is
   excluded from determinism checks.  The [pool.job] span gives per-
   domain busy time. *)
let tel_jobs = Telemetry.Counter.make "pool.jobs"
let tel_batches = Telemetry.Counter.make "pool.batches"
let tel_steals = Telemetry.Counter.make ~nondet:true "pool.steals"
let tel_sp_job = Telemetry.Span.make "pool.job"

(* Set while a domain (worker or the caller mid-[map]) is executing pool
   jobs; guards against nested parallelism. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let default_jobs () =
  match Sys.getenv_opt "STCG_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
     | Some n when n >= 1 -> n
     | Some _ | None -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)

(* One worker's slice of a batch: a deque of job indices.  The owner
   pops at [lo]; thieves pop at [hi - 1].  A plain mutex per deque is
   plenty — jobs here are whole engine runs (milliseconds to seconds),
   so deque traffic is negligible. *)
type deque = {
  d_lock : Mutex.t;
  d_idx : int array;
  mutable d_lo : int;
  mutable d_hi : int;
}

type batch = {
  b_deques : deque array;
  b_run : int -> unit;  (* executes job [i]; never raises *)
  b_aborted : bool ref;  (* set on first failure: skip unstarted jobs *)
  mutable b_remaining : int;  (* jobs not yet executed or skipped *)
}

type t = {
  jobs : int;
  lock : Mutex.t;  (* protects every mutable field below *)
  work : Condition.t;  (* a batch was submitted, or shutdown *)
  finished : Condition.t;  (* b_remaining hit 0 *)
  mutable batch : batch option;
  mutable generation : int;  (* bumped per submitted batch *)
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let size t = t.jobs

let take_own d =
  Mutex.lock d.d_lock;
  let r =
    if d.d_lo < d.d_hi then begin
      let i = d.d_idx.(d.d_lo) in
      d.d_lo <- d.d_lo + 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.d_lock;
  r

let steal d =
  Mutex.lock d.d_lock;
  let r =
    if d.d_lo < d.d_hi then begin
      let i = d.d_idx.(d.d_hi - 1) in
      d.d_hi <- d.d_hi - 1;
      Some i
    end
    else None
  in
  Mutex.unlock d.d_lock;
  if r <> None then Telemetry.Counter.incr tel_steals;
  r

(* Next job for worker [w]: own deque first, then steal round-robin. *)
let next_job b w =
  let n = Array.length b.b_deques in
  match take_own b.b_deques.(w) with
  | Some i -> Some i
  | None ->
    let rec go k =
      if k = n then None
      else
        match steal b.b_deques.((w + k) mod n) with
        | Some i -> Some i
        | None -> go (k + 1)
    in
    go 1

(* Execute (or, after an abort, skip) jobs until none are reachable.
   Every drained job decrements [b_remaining]; the worker that hits 0
   wakes the submitter. *)
let drain t b w =
  let rec loop () =
    match next_job b w with
    | None -> ()
    | Some i ->
      if not !(b.b_aborted) then b.b_run i;
      Mutex.lock t.lock;
      b.b_remaining <- b.b_remaining - 1;
      if b.b_remaining = 0 then Condition.broadcast t.finished;
      Mutex.unlock t.lock;
      loop ()
  in
  loop ()

let worker t w () =
  Domain.DLS.set in_worker true;
  let last = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while (not t.stop) && t.generation = !last do
      Condition.wait t.work t.lock
    done;
    if t.generation <> !last then begin
      last := t.generation;
      let b = t.batch in
      Mutex.unlock t.lock;
      (* [batch] may already be back to [None] if the other workers
         finished it before this one woke up — nothing to do then. *)
      match b with None -> () | Some b -> drain t b w
    end
    else begin
      Mutex.unlock t.lock;
      running := false
    end
  done

let create ?jobs () =
  let jobs = max 1 (Option.value jobs ~default:(default_jobs ())) in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      finished = Condition.create ();
      batch = None;
      generation = 0;
      stop = false;
      domains = [];
    }
  in
  (* the caller is worker 0; spawn the rest *)
  t.domains <- List.init (jobs - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let shutdown t =
  Mutex.lock t.lock;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Split [0 .. njobs-1] into [n] contiguous blocks (front-loaded when
   it does not divide evenly). *)
let partition njobs n =
  let q = njobs / n and r = njobs mod n in
  Array.init n (fun w ->
      let lo = (w * q) + min w r in
      let len = q + if w < r then 1 else 0 in
      {
        d_lock = Mutex.create ();
        d_idx = Array.init len (fun k -> lo + k);
        d_lo = 0;
        d_hi = len;
      })

let map t f items_list =
  if Domain.DLS.get in_worker then raise Nested_pool;
  let items = Array.of_list items_list in
  let njobs = Array.length items in
  if njobs = 0 then []
  else if t.jobs = 1 || njobs = 1 then begin
    (* the exact sequential path: same domain, same evaluation order,
       exceptions propagate untouched.  Jobs are still counted and
       spanned so telemetry totals match the parallel path. *)
    Telemetry.Counter.incr tel_batches;
    List.map
      (fun x ->
        Telemetry.Counter.incr tel_jobs;
        Telemetry.Span.with_ tel_sp_job (fun () -> f x))
      items_list
  end
  else begin
    Telemetry.Counter.incr tel_batches;
    let results = Array.make njobs None in
    let failure = ref None in
    let aborted = ref false in
    let run i =
      try
        Telemetry.Counter.incr tel_jobs;
        results.(i) <- Some (Telemetry.Span.with_ tel_sp_job (fun () -> f items.(i)))
      with exn ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock t.lock;
        (match !failure with
         | Some (j, _, _) when j <= i -> ()
         | Some _ | None -> failure := Some (i, exn, bt));
        aborted := true;
        Mutex.unlock t.lock
    in
    let b =
      {
        b_deques = partition njobs t.jobs;
        b_run = run;
        b_aborted = aborted;
        b_remaining = njobs;
      }
    in
    Mutex.lock t.lock;
    if t.stop then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: pool is shut down"
    end;
    if t.batch <> None then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.map: a batch is already in flight on this pool"
    end;
    t.batch <- Some b;
    t.generation <- t.generation + 1;
    Condition.broadcast t.work;
    Mutex.unlock t.lock;
    (* participate as worker 0, then wait out in-flight stolen jobs *)
    Domain.DLS.set in_worker true;
    Fun.protect
      ~finally:(fun () -> Domain.DLS.set in_worker false)
      (fun () -> drain t b 0);
    Mutex.lock t.lock;
    while b.b_remaining > 0 do
      Condition.wait t.finished t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    match !failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None ->
      Array.to_list
        (Array.map (function Some v -> v | None -> assert false) results)
  end

let run_all t thunks = map t (fun f -> f ()) thunks

(* Group tiny jobs into chunks of [chunk] so that deque/steal traffic is
   paid once per chunk instead of once per item.  Chunks are formed in
   input order and results concatenated in chunk order, so the
   determinism contract of [map] carries over unchanged; the exception
   re-raised on failure is that of the lowest-indexed failed *chunk*
   (within a chunk, items run left to right). *)
let map_chunked t ~chunk f items =
  if chunk <= 1 then map t f items
  else begin
    let rec chunks acc cur k = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: rest ->
        if k = chunk then chunks (List.rev cur :: acc) [ x ] 1 rest
        else chunks acc (x :: cur) (k + 1) rest
    in
    List.concat (map t (List.map f) (chunks [] [] 0 items))
  end
let parallel_map ?jobs f items = with_pool ?jobs (fun t -> map t f items)
let parallel_run_all ?jobs thunks = with_pool ?jobs (fun t -> run_all t thunks)
