(* Re-export: the renderer moved to lib/telemetry (the telemetry summary
   tables use it and telemetry sits below harness in the dependency
   graph); [Harness.Text_table] keeps its historical name. *)
include Telemetry.Text_table
