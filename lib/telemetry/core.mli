(** Domain-safe counters, log-bucketed histograms and nested wall-clock
    spans.

    Telemetry is globally disabled by default; every instrument
    operation is a single flag check when off.  {!enable} is meant to be
    called once at program start (before worker domains are spawned).
    Instruments buffer into per-domain cells, so the hot path never
    synchronizes; aggregation sums the cells and is exact whenever no
    pool batch is in flight.

    Determinism: counter and histogram totals are order-independent
    sums, so output built from them is byte-identical for any worker
    count as long as the measured quantity is itself deterministic.
    Instruments that measure scheduler behaviour must be registered
    with [~nondet:true]; they are excluded from {!render_deterministic}
    and from [snapshot ~nondet:false].  Spans carry wall-clock time and
    never participate in determinism checks. *)

val enabled : unit -> bool
val enable : unit -> unit
val disable : unit -> unit

val reset : unit -> unit
(** Zero every cell and drop all span records.  Only call while no
    other domain is using the instruments (between pool batches). *)

val set_span_retention : [ `Records | `Aggregate ] -> unit
(** [`Records] (the default) keeps one record per completed span — the
    Chrome trace exporter needs them.  [`Aggregate] only maintains the
    per-name (count, total ns) cells behind {!span_totals}: a long run
    then retains O(span names) instead of O(spans) memory, which
    removes measurable shared-major-heap pressure under [jobs > 1].
    Callers that never export a trace (bench, [--stats] without
    [--trace]) should switch to [`Aggregate] right after {!enable}.
    Like {!enable}, meant to be set before worker domains spawn. *)

val span_retention : unit -> [ `Records | `Aggregate ]

module Counter : sig
  type t

  val make : ?nondet:bool -> string -> t
  (** Register (or look up — [make] is idempotent by name) a monotonic
      counter.  Meant for top-level [let]s in the instrumented module. *)

  val incr : t -> unit
  val add : t -> int -> unit
  val total : t -> int
end

module Histogram : sig
  type t

  val make : ?nondet:bool -> string -> t

  val observe : t -> int -> unit
  (** Record a non-negative value (sizes, node counts, lengths) into
      its log2 bucket.  Negative values clamp to 0. *)
end

module Span : sig
  type t

  val make : string -> t

  val with_ : ?note:(unit -> string) -> t -> (unit -> 'a) -> 'a
  (** Time [f] with {!Monotonic_clock} and record a completed span on
      the current domain's sink (also on exception).  [note] is only
      forced when telemetry is enabled.  Spans nest per domain; depth
      is recorded at open. *)
end

type hist_stats = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_p50 : int;  (** inclusive upper bound of the quantile's log2 bucket *)
  h_p90 : int;
  h_p99 : int;
}

type span_record = {
  sr_name : string;
  sr_note : string option;
  sr_domain : int;
  sr_start_ns : int64;
  sr_dur_ns : int64;
  sr_depth : int;
}

type snapshot = {
  sn_counters : (string * int) list;  (** name-sorted *)
  sn_histograms : (string * hist_stats) list;  (** name-sorted *)
}

val snapshot : ?nondet:bool -> unit -> snapshot
(** Aggregate counters and histograms.  [nondet] (default [false])
    includes the scheduler-dependent instruments. *)

val derived_rates : unit -> (string * float) list
(** Headline efficiency ratios computed from the full snapshot —
    solve-cache hit rate, term hashcons dedup ratio, HC4 memo hits per
    round.  A rate is omitted while its denominator is zero.  Surfaced
    by {!render_summary} and {!json_summary} (key ["derived"]). *)

val span_records : unit -> span_record list
(** All completed spans, ordered by (domain, start time). *)

val span_totals : unit -> (string * int * int64) list
(** Per span name: (name, count, total ns), name-sorted. *)

val render_deterministic : unit -> string
(** Text tables of the deterministic snapshot only — byte-identical for
    any [--jobs] value over the same work. *)

val render_summary : unit -> string
(** {!render_deterministic} plus scheduling counters, derived rates and
    wall-clock span totals, clearly sectioned. *)

val json_summary : ?spans:bool -> unit -> string
(** One JSON object: [{"counters": {...}, "histograms": {...},
    "derived": {...}, "spans": {...}}] — includes nondeterministic
    instruments. *)

val json_escape : string -> string
