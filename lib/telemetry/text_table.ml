(* Column-aligned plain-text tables for terminal reports. *)

let render ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let line fill =
    let parts = List.map (fun w -> String.make (w + 2) fill) widths in
    "+" ^ String.concat "+" parts ^ "+"
  in
  let render_row row =
    let cells =
      List.mapi
        (fun c w ->
          let cell = Option.value ~default:"" (List.nth_opt row c) in
          Printf.sprintf " %-*s " w cell)
        widths
    in
    "|" ^ String.concat "|" cells ^ "|"
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf
