(* A per-domain non-decreasing clock in integer nanoseconds.

   The OS wall clock can step backwards (NTP slew); span arithmetic and
   the Chrome trace exporter both assume [t1 >= t0] for consecutive
   reads on one domain, so each domain clamps its reads against the
   last value it returned.  Clamping is domain-local state — no
   cross-domain synchronization on the hot path. *)

let last : int64 ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0L)

let now_ns () =
  let t = Int64.of_float (Unix.gettimeofday () *. 1e9) in
  let cell = Domain.DLS.get last in
  let v = if Int64.compare t !cell > 0 then t else !cell in
  cell := v;
  v

let elapsed_ns ~since = Int64.sub (now_ns ()) since
