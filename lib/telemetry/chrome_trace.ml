(* Chrome trace_event exporter: spans as "X" (complete) events, one
   thread lane per domain, plus a global instant event carrying the
   final counter totals.  The output loads directly in chrome://tracing
   and https://ui.perfetto.dev.

   Timestamps are rebased to the earliest recorded span so the trace
   starts near t=0 regardless of the process epoch; ts/dur are in
   microseconds as the format requires. *)

let esc = Core.json_escape

let add_event buf ~first fmt =
  if not !first then Buffer.add_string buf ",\n";
  first := false;
  Buffer.add_string buf "    ";
  Printf.ksprintf (Buffer.add_string buf) fmt

let to_string () =
  let records = Core.span_records () in
  let t0 =
    List.fold_left
      (fun acc (r : Core.span_record) ->
        if Int64.compare r.Core.sr_start_ns acc < 0 then r.Core.sr_start_ns
        else acc)
      (match records with [] -> 0L | r :: _ -> r.Core.sr_start_ns)
      records
  in
  let us ns = Int64.to_float ns /. 1e3 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"traceEvents\": [\n";
  let first = ref true in
  add_event buf ~first
    "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": 0, \
     \"args\": {\"name\": \"stcg\"}}";
  let domains =
    List.sort_uniq Int.compare
      (List.map (fun (r : Core.span_record) -> r.Core.sr_domain) records)
  in
  List.iter
    (fun d ->
      add_event buf ~first
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 0, \"tid\": %d, \
         \"args\": {\"name\": \"domain %d\"}}"
        d d)
    domains;
  List.iter
    (fun (r : Core.span_record) ->
      let args =
        match r.Core.sr_note with
        | Some note ->
          Printf.sprintf ", \"args\": {\"note\": \"%s\"}" (esc note)
        | None -> ""
      in
      add_event buf ~first
        "{\"name\": \"%s\", \"cat\": \"stcg\", \"ph\": \"X\", \"pid\": 0, \
         \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f%s}"
        (esc r.Core.sr_name) r.Core.sr_domain
        (us (Int64.sub r.Core.sr_start_ns t0))
        (us r.Core.sr_dur_ns) args)
    records;
  let snap = Core.snapshot ~nondet:true () in
  let counter_args =
    String.concat ", "
      (List.map
         (fun (n, v) -> Printf.sprintf "\"%s\": %d" (esc n) v)
         snap.Core.sn_counters)
  in
  add_event buf ~first
    "{\"name\": \"counters\", \"ph\": \"i\", \"s\": \"g\", \"pid\": 0, \
     \"tid\": 0, \"ts\": 0, \"args\": {%s}}"
    counter_args;
  Buffer.add_string buf "\n  ],\n  \"displayTimeUnit\": \"ms\"\n}\n";
  Buffer.contents buf

let write ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ()))
