(** Export recorded spans (plus final counter totals) in Chrome
    [trace_event] JSON, loadable in chrome://tracing and Perfetto. *)

val to_string : unit -> string
(** The full trace document as a string. *)

val write : path:string -> unit
(** Write {!to_string} to [path] (truncating). *)
