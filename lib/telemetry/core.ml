(* Domain-safe observability: counters, log-bucketed histograms and
   nested wall-clock spans.

   Design constraints, in order:

   - Disabled must be near-free.  Every instrument operation starts with
     one load of a single static flag and returns immediately when off;
     no allocation, no DLS lookup, no clock read happens on the disabled
     path.  The flag is flipped once at program start (CLI --stats /
     --trace), before any worker domain exists.

   - Domain-safe without hot-path synchronization.  Each instrument
     buffers into a per-domain cell: the cell is created on a domain's
     first use of the instrument (registered into the instrument's cell
     list under a mutex, then cached in domain-local storage), after
     which updates are plain unsynchronized writes to domain-private
     memory.  Aggregation sums the cells; it is exact whenever no pool
     batch is in flight, which is when every caller snapshots.

   - Deterministic where it can be.  Counter and histogram totals are
     sums of per-domain contributions, so they are independent of how
     the pool scheduler spread the work — byte-identical output for
     --jobs 1 and --jobs N, provided the instrumented quantity itself is
     deterministic.  Instruments measuring scheduler behaviour (steals,
     recompiles) are registered with [~nondet:true] and excluded from
     the deterministic snapshot; wall-clock spans are exported (trace,
     summary) but never enter determinism checks. *)

let flag = ref false
let enabled () = !flag
let enable () = flag := true
let disable () = flag := false

let registry_lock = Mutex.create ()

(* --- counters ----------------------------------------------------------- *)

module Counter = struct
  type t = {
    name : string;
    nondet : bool;
    cells : int ref list ref;  (* all domains' cells; registry_lock *)
    key : int ref Domain.DLS.key;
  }

  let registered : t list ref = ref []

  let make ?(nondet = false) name =
    Mutex.lock registry_lock;
    let t =
      match List.find_opt (fun c -> c.name = name) !registered with
      | Some c -> c
      | None ->
        let cells = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let cell = ref 0 in
              Mutex.lock registry_lock;
              cells := cell :: !cells;
              Mutex.unlock registry_lock;
              cell)
        in
        let c = { name; nondet; cells; key } in
        registered := c :: !registered;
        c
    in
    Mutex.unlock registry_lock;
    t

  let add t n =
    if !flag then begin
      let cell = Domain.DLS.get t.key in
      cell := !cell + n
    end

  let incr t = add t 1

  let total t =
    Mutex.lock registry_lock;
    let v = List.fold_left (fun acc c -> acc + !c) 0 !(t.cells) in
    Mutex.unlock registry_lock;
    v
end

(* --- histograms --------------------------------------------------------- *)

(* Log2 buckets over non-negative ints: bucket 0 holds the value 0,
   bucket k (k >= 1) holds [2^(k-1), 2^k).  Bucket counts, count, sum
   and max are all additive/commutative across domains, so the merged
   statistics are scheduler-independent. *)

let n_buckets = 64

let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref v in
    while !v > 0 do
      incr b;
      v := !v lsr 1
    done;
    min !b (n_buckets - 1)
  end

(* inclusive upper bound of bucket [b]: the value reported for quantiles *)
let bucket_top b = if b = 0 then 0 else (1 lsl min b 61) - 1

module Histogram = struct
  type cell = {
    buckets : int array;
    mutable count : int;
    mutable sum : int;
    mutable max : int;
  }

  type t = {
    name : string;
    nondet : bool;
    cells : cell list ref;
    key : cell Domain.DLS.key;
  }

  let registered : t list ref = ref []

  let make ?(nondet = false) name =
    Mutex.lock registry_lock;
    let t =
      match List.find_opt (fun h -> h.name = name) !registered with
      | Some h -> h
      | None ->
        let cells = ref [] in
        let key =
          Domain.DLS.new_key (fun () ->
              let cell =
                { buckets = Array.make n_buckets 0; count = 0; sum = 0; max = 0 }
              in
              Mutex.lock registry_lock;
              cells := cell :: !cells;
              Mutex.unlock registry_lock;
              cell)
        in
        let h = { name; nondet; cells; key } in
        registered := h :: !registered;
        h
    in
    Mutex.unlock registry_lock;
    t

  let observe t v =
    if !flag then begin
      let v = max 0 v in
      let cell = Domain.DLS.get t.key in
      cell.buckets.(bucket_of v) <- cell.buckets.(bucket_of v) + 1;
      cell.count <- cell.count + 1;
      cell.sum <- cell.sum + v;
      if v > cell.max then cell.max <- v
    end
end

type hist_stats = {
  h_count : int;
  h_sum : int;
  h_max : int;
  h_p50 : int;  (** inclusive upper bound of the median's log2 bucket *)
  h_p90 : int;
  h_p99 : int;
}

let hist_stats_of (h : Histogram.t) =
  Mutex.lock registry_lock;
  let buckets = Array.make n_buckets 0 in
  let count = ref 0 and sum = ref 0 and mx = ref 0 in
  List.iter
    (fun (c : Histogram.cell) ->
      Array.iteri (fun i n -> buckets.(i) <- buckets.(i) + n) c.buckets;
      count := !count + c.count;
      sum := !sum + c.sum;
      if c.max > !mx then mx := c.max)
    !(h.cells);
  Mutex.unlock registry_lock;
  let quantile q =
    if !count = 0 then 0
    else begin
      let rank = max 1 (int_of_float (ceil (q *. float !count))) in
      let acc = ref 0 and b = ref 0 in
      (try
         for i = 0 to n_buckets - 1 do
           acc := !acc + buckets.(i);
           if !acc >= rank then begin
             b := i;
             raise Exit
           end
         done
       with Exit -> ());
      bucket_top !b
    end
  in
  {
    h_count = !count;
    h_sum = !sum;
    h_max = !mx;
    h_p50 = quantile 0.50;
    h_p90 = quantile 0.90;
    h_p99 = quantile 0.99;
  }

(* --- spans -------------------------------------------------------------- *)

type span_record = {
  sr_name : string;
  sr_note : string option;
  sr_domain : int;
  sr_start_ns : int64;
  sr_dur_ns : int64;
  sr_depth : int;  (** nesting depth at open: 0 = top-level on its domain *)
}

module Span = struct
  type agg = { mutable ag_count : int; mutable ag_total_ns : int64 }

  type sink = {
    sk_domain : int;
    mutable sk_depth : int;
    mutable sk_records : span_record list;  (* newest first; [`Records] only *)
    sk_aggs : (string, agg) Hashtbl.t;  (* per-name totals; always on *)
  }

  let sinks : sink list ref = ref []

  (* [`Records] keeps one heap record per completed span — needed by the
     Chrome trace exporter, but a long run accumulates millions of
     records whose promotion to the shared major heap is measurable GC
     pressure under jobs > 1.  [`Aggregate] only bumps the per-domain
     (count, total ns) cell, which is all {!span_totals} (and thus the
     --stats summary and the bench JSON) ever reads. *)
  let retention : [ `Records | `Aggregate ] ref = ref `Records

  let sink_key : sink Domain.DLS.key =
    Domain.DLS.new_key (fun () ->
        let sk =
          {
            sk_domain = (Domain.self () :> int);
            sk_depth = 0;
            sk_records = [];
            sk_aggs = Hashtbl.create 32;
          }
        in
        Mutex.lock registry_lock;
        sinks := sk :: !sinks;
        Mutex.unlock registry_lock;
        sk)

  type t = { name : string }

  let make name = { name }

  let with_ ?note t f =
    if not !flag then f ()
    else begin
      let sk = Domain.DLS.get sink_key in
      let depth = sk.sk_depth in
      sk.sk_depth <- depth + 1;
      let start = Monotonic_clock.now_ns () in
      Fun.protect
        ~finally:(fun () ->
          let dur = Monotonic_clock.elapsed_ns ~since:start in
          sk.sk_depth <- depth;
          (match Hashtbl.find_opt sk.sk_aggs t.name with
           | Some a ->
             a.ag_count <- a.ag_count + 1;
             a.ag_total_ns <- Int64.add a.ag_total_ns dur
           | None ->
             Hashtbl.replace sk.sk_aggs t.name
               { ag_count = 1; ag_total_ns = dur });
          if !retention = `Records then
            sk.sk_records <-
              {
                sr_name = t.name;
                sr_note = (match note with Some f -> Some (f ()) | None -> None);
                sr_domain = sk.sk_domain;
                sr_start_ns = start;
                sr_dur_ns = dur;
                sr_depth = depth;
              }
              :: sk.sk_records)
        f
    end
end

let set_span_retention mode = Span.retention := mode
let span_retention () = !Span.retention

let span_records () =
  Mutex.lock registry_lock;
  let all =
    List.concat_map (fun (sk : Span.sink) -> List.rev sk.sk_records) !Span.sinks
  in
  Mutex.unlock registry_lock;
  (* stable presentation order: domain, then start time *)
  List.stable_sort
    (fun a b ->
      match Int.compare a.sr_domain b.sr_domain with
      | 0 -> Int64.compare a.sr_start_ns b.sr_start_ns
      | c -> c)
    all

(* Totals come from the always-maintained per-domain aggregate cells, so
   they are identical whichever retention mode is active. *)
let span_totals () =
  let tbl : (string, int ref * int64 ref) Hashtbl.t = Hashtbl.create 32 in
  Mutex.lock registry_lock;
  List.iter
    (fun (sk : Span.sink) ->
      Hashtbl.iter
        (fun name (a : Span.agg) ->
          let count, total =
            match Hashtbl.find_opt tbl name with
            | Some cell -> cell
            | None ->
              let cell = (ref 0, ref 0L) in
              Hashtbl.replace tbl name cell;
              cell
          in
          count := !count + a.ag_count;
          total := Int64.add !total a.ag_total_ns)
        sk.Span.sk_aggs)
    !Span.sinks;
  Mutex.unlock registry_lock;
  Hashtbl.fold (fun name (c, t) acc -> (name, !c, !t) :: acc) tbl []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

(* --- reset (tests, repeated in-process runs) ---------------------------- *)

(* Only meaningful while no other domain is mutating its cells — i.e.
   between pool batches, which is when every caller resets. *)
let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun (c : Counter.t) -> List.iter (fun cell -> cell := 0) !(c.cells))
    !Counter.registered;
  List.iter
    (fun (h : Histogram.t) ->
      List.iter
        (fun (cell : Histogram.cell) ->
          Array.fill cell.buckets 0 n_buckets 0;
          cell.count <- 0;
          cell.sum <- 0;
          cell.max <- 0)
        !(h.cells))
    !Histogram.registered;
  List.iter
    (fun (sk : Span.sink) ->
      sk.sk_records <- [];
      sk.sk_depth <- 0;
      Hashtbl.reset sk.sk_aggs)
    !Span.sinks;
  Mutex.unlock registry_lock

(* --- snapshots ---------------------------------------------------------- *)

type snapshot = {
  sn_counters : (string * int) list;  (** name-sorted *)
  sn_histograms : (string * hist_stats) list;  (** name-sorted *)
}

let snapshot ?(nondet = false) () =
  let counters =
    Mutex.lock registry_lock;
    let cs = !Counter.registered in
    Mutex.unlock registry_lock;
    List.filter_map
      (fun (c : Counter.t) ->
        if c.nondet && not nondet then None else Some (c.name, Counter.total c))
      cs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let histograms =
    Mutex.lock registry_lock;
    let hs = !Histogram.registered in
    Mutex.unlock registry_lock;
    List.filter_map
      (fun (h : Histogram.t) ->
        if h.nondet && not nondet then None else Some (h.name, hist_stats_of h))
      hs
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  { sn_counters = counters; sn_histograms = histograms }

(* Headline efficiency ratios derived from the full (nondet-inclusive)
   snapshot — the numbers the bench tracks across PRs.  A rate is only
   reported when its denominator is positive.  [hits_per_attempt] keeps
   the historical hits/attempts definition (a hit is not an attempt, so
   it can exceed 1); [hit_rate] is the bounded hits/(hits+probes)
   form. *)
let derived_rates () =
  let full = snapshot ~nondet:true () in
  let get n = Option.value ~default:0 (List.assoc_opt n full.sn_counters) in
  let rate num den = if den <= 0 then None else Some (float num /. float den) in
  let cache_hits = get "engine.solve_cache_hits" in
  let attempts = get "engine.solve_attempts" in
  let hc_hits = get "term.hashcons_hits" in
  let hc_nodes = get "term.hashcons_nodes" in
  List.filter_map
    (fun (name, v) -> Option.map (fun v -> (name, v)) v)
    [
      ("engine.solve_cache_hit_rate", rate cache_hits (cache_hits + attempts));
      ("engine.solve_cache_hits_per_attempt", rate cache_hits attempts);
      ( "solver.hc4_memo_hits_per_round",
        rate (get "solver.hc4_memo_hits") (get "solver.hc4_rounds") );
      ("term.hashcons_dedup_ratio", rate hc_hits (hc_hits + hc_nodes));
    ]

(* The deterministic part only, rendered for byte-comparison across
   worker counts: counters and histograms, no wall-clock anywhere. *)
let render_deterministic () =
  let snap = snapshot ~nondet:false () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "counters (deterministic)\n";
  Buffer.add_string buf
    (Text_table.render ~header:[ "counter"; "total" ]
       (List.map
          (fun (n, v) -> [ n; string_of_int v ])
          snap.sn_counters));
  Buffer.add_char buf '\n';
  Buffer.add_string buf "histograms (deterministic, log2 buckets)\n";
  Buffer.add_string buf
    (Text_table.render
       ~header:[ "histogram"; "count"; "sum"; "max"; "p50"; "p90"; "p99" ]
       (List.map
          (fun (n, (s : hist_stats)) ->
            [
              n; string_of_int s.h_count; string_of_int s.h_sum;
              string_of_int s.h_max; string_of_int s.h_p50;
              string_of_int s.h_p90; string_of_int s.h_p99;
            ])
          snap.sn_histograms));
  Buffer.contents buf

let render_summary () =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (render_deterministic ());
  let full = snapshot ~nondet:true () in
  let det = snapshot ~nondet:false () in
  let sched =
    List.filter
      (fun (n, _) -> not (List.mem_assoc n det.sn_counters))
      full.sn_counters
  in
  if sched <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf "scheduling counters (nondeterministic)\n";
    Buffer.add_string buf
      (Text_table.render ~header:[ "counter"; "total" ]
         (List.map (fun (n, v) -> [ n; string_of_int v ]) sched))
  end;
  let rates = derived_rates () in
  if rates <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf "derived rates\n";
    Buffer.add_string buf
      (Text_table.render ~header:[ "rate"; "value" ]
         (List.map (fun (n, v) -> [ n; Fmt.str "%.4f" v ]) rates))
  end;
  let spans = span_totals () in
  if spans <> [] then begin
    Buffer.add_char buf '\n';
    Buffer.add_string buf "spans (wall clock)\n";
    Buffer.add_string buf
      (Text_table.render ~header:[ "span"; "count"; "total ms"; "mean us" ]
         (List.map
            (fun (n, count, total_ns) ->
              let total_ms = Int64.to_float total_ns /. 1e6 in
              let mean_us =
                if count = 0 then 0.0
                else Int64.to_float total_ns /. 1e3 /. float count
              in
              [
                n; string_of_int count; Fmt.str "%.2f" total_ms;
                Fmt.str "%.1f" mean_us;
              ])
            spans))
  end;
  Buffer.contents buf

(* --- JSON --------------------------------------------------------------- *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_summary ?(spans = true) () =
  let full = snapshot ~nondet:true () in
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "{\"counters\": {%s}"
    (String.concat ", "
       (List.map
          (fun (n, v) -> Printf.sprintf "\"%s\": %d" (json_escape n) v)
          full.sn_counters));
  pf ", \"histograms\": {%s}"
    (String.concat ", "
       (List.map
          (fun (n, (s : hist_stats)) ->
            Printf.sprintf
              "\"%s\": {\"count\": %d, \"sum\": %d, \"max\": %d, \"p50\": %d, \
               \"p90\": %d, \"p99\": %d}"
              (json_escape n) s.h_count s.h_sum s.h_max s.h_p50 s.h_p90 s.h_p99)
          full.sn_histograms));
  pf ", \"derived\": {%s}"
    (String.concat ", "
       (List.map
          (fun (n, v) -> Printf.sprintf "\"%s\": %.6f" (json_escape n) v)
          (derived_rates ())));
  if spans then
    pf ", \"spans\": {%s}"
      (String.concat ", "
         (List.map
            (fun (n, count, total_ns) ->
              Printf.sprintf "\"%s\": {\"count\": %d, \"total_ms\": %.3f}"
                (json_escape n) count
                (Int64.to_float total_ns /. 1e6))
            (span_totals ())));
  pf "}";
  Buffer.contents b
