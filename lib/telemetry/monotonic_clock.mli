(** Per-domain non-decreasing timestamps in nanoseconds.

    Backed by the wall clock but clamped so that two consecutive reads
    on the same domain never go backwards — the property span nesting
    and trace export rely on.  Timestamps from different domains share
    the same epoch but are only approximately comparable. *)

val now_ns : unit -> int64
(** Current time in nanoseconds, non-decreasing per domain. *)

val elapsed_ns : since:int64 -> int64
(** [elapsed_ns ~since] is [now_ns () - since] (>= 0 on one domain). *)
