(* Library facade: [Telemetry.Counter.incr], [Telemetry.Span.with_],
   [Telemetry.Chrome_trace.write], ... *)

include Core
module Monotonic_clock = Monotonic_clock
module Chrome_trace = Chrome_trace
module Text_table = Text_table
