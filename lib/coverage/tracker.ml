module Exec = Slim.Exec
module Branch = Slim.Branch

(* Observed condition vectors are interned per decision as strings of
   'T'/'F' so the set stays small and hashable. *)
let key_of_vector (v : bool array) =
  String.init (Array.length v) (fun i -> if v.(i) then 'T' else 'F')

let vector_of_key s =
  Array.init (String.length s) (fun i -> s.[i] = 'T')

type t = {
  criteria : Criteria.t;
  info : (int, Criteria.decision_info) Hashtbl.t;
  mutable branches : Branch.Key_set.t;
  cond_seen : (int * int * bool, unit) Hashtbl.t;
  vectors : (int, (string, bool) Hashtbl.t) Hashtbl.t;
      (* decision id -> vector key -> outcome *)
  mutable progress : int;
      (* bumped whenever genuinely new information arrives *)
  (* objectives justified by static analysis (proven dead): excluded
     from denominators and from the uncovered lists, mirroring
     SLDV-style dead-logic justification *)
  mutable j_branches : Branch.Key_set.t;
  mutable j_conds : (int * int * bool) list;
  mutable j_mcdc : (int * int) list;
}

let create prog =
  let criteria = Criteria.of_program prog in
  let info = Hashtbl.create 64 in
  List.iter
    (fun (d : Criteria.decision_info) -> Hashtbl.replace info d.d_id d)
    criteria.decisions;
  {
    criteria;
    info;
    branches = Branch.Key_set.empty;
    cond_seen = Hashtbl.create 256;
    vectors = Hashtbl.create 64;
    progress = 0;
    j_branches = Branch.Key_set.empty;
    j_conds = [];
    j_mcdc = [];
  }

let criteria t = t.criteria

let set_justified t ~branches ~conditions ~mcdc =
  t.j_branches <- Branch.Key_set.of_list branches;
  t.j_conds <- List.sort_uniq compare conditions;
  t.j_mcdc <- List.sort_uniq compare mcdc;
  t.progress <- t.progress + 1

let justified_counts t =
  (Branch.Key_set.cardinal t.j_branches, List.length t.j_conds,
   List.length t.j_mcdc)

let observe t = function
  | Exec.Branch_hit key ->
    if not (Branch.Key_set.mem key t.branches) then begin
      t.branches <- Branch.Key_set.add key t.branches;
      t.progress <- t.progress + 1
    end
  | Exec.Cond_vector { id; vector; outcome } ->
    Array.iteri
      (fun i b ->
        if not (Hashtbl.mem t.cond_seen (id, i, b)) then begin
          Hashtbl.replace t.cond_seen (id, i, b) ();
          t.progress <- t.progress + 1
        end)
      vector;
    let tbl =
      match Hashtbl.find_opt t.vectors id with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.vectors id tbl;
        tbl
    in
    let vk = key_of_vector vector in
    if not (Hashtbl.mem tbl vk) then begin
      Hashtbl.replace tbl vk outcome;
      t.progress <- t.progress + 1
    end

let progress t = t.progress

let covered_branches t = t.branches
let is_branch_covered t key = Branch.Key_set.mem key t.branches

type ratio = { covered : int; total : int }

let pct r = if r.total = 0 then 100.0 else 100.0 *. float r.covered /. float r.total

let decision t =
  { covered = Branch.Key_set.cardinal (Branch.Key_set.diff t.branches t.j_branches);
    total = t.criteria.decision_total - Branch.Key_set.cardinal t.j_branches }

let condition t =
  let covered =
    Hashtbl.fold
      (fun k () acc -> if List.mem k t.j_conds then acc else acc + 1)
      t.cond_seen 0
  in
  { covered; total = t.criteria.condition_total - List.length t.j_conds }

let mcdc t =
  let covered = ref 0 in
  List.iter
    (fun (d : Criteria.decision_info) ->
      if d.d_atom_count > 0 then begin
        let observed =
          match Hashtbl.find_opt t.vectors d.d_id with
          | None -> []
          | Some tbl ->
            Hashtbl.fold (fun k o acc -> (vector_of_key k, o) :: acc) tbl []
        in
        for i = 0 to d.d_atom_count - 1 do
          if not (List.mem (d.d_id, i) t.j_mcdc) then
            let ok =
              List.exists
                (fun p1 ->
                  List.exists
                    (fun p2 -> Criteria.mcdc_pair_ok d.d_fn i p1 p2)
                    observed)
                observed
            in
            if ok then incr covered
        done
      end)
    t.criteria.decisions;
  { covered = !covered; total = t.criteria.mcdc_total - List.length t.j_mcdc }

let is_condition_covered t decision atom value =
  Hashtbl.mem t.cond_seen (decision, atom, value)

let observed_vectors t decision =
  match Hashtbl.find_opt t.vectors decision with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun k o acc -> (vector_of_key k, o) :: acc) tbl []

let find_decision t id = Hashtbl.find_opt t.info id

let uncovered_mcdc t =
  List.concat_map
    (fun (d : Criteria.decision_info) ->
      if d.d_atom_count = 0 then []
      else begin
        let observed = observed_vectors t d.d_id in
        List.filter_map
          (fun i ->
            if List.mem (d.d_id, i) t.j_mcdc then None
            else
              let ok =
                List.exists
                  (fun p1 ->
                    List.exists
                      (fun p2 -> Criteria.mcdc_pair_ok d.d_fn i p1 p2)
                      observed)
                  observed
              in
              if ok then None else Some (d.d_id, i))
          (List.init d.d_atom_count Fun.id)
      end)
    t.criteria.decisions

let uncovered_branches t =
  List.filter
    (fun (b : Branch.t) ->
      (not (Branch.Key_set.mem b.key t.branches))
      && not (Branch.Key_set.mem b.key t.j_branches))
    t.criteria.branches

let fully_covered t =
  let d = decision t in
  d.covered = d.total

let copy t =
  {
    criteria = t.criteria;
    info = t.info;
    branches = t.branches;
    cond_seen = Hashtbl.copy t.cond_seen;
    vectors =
      (let v = Hashtbl.create (Hashtbl.length t.vectors) in
       Hashtbl.iter (fun k tbl -> Hashtbl.replace v k (Hashtbl.copy tbl)) t.vectors;
       v);
    progress = t.progress;
    j_branches = t.j_branches;
    j_conds = t.j_conds;
    j_mcdc = t.j_mcdc;
  }

let pp_summary ppf t =
  let d = decision t and c = condition t and m = mcdc t in
  Fmt.pf ppf "decision %d/%d (%.1f%%)  condition %d/%d (%.1f%%)  mcdc %d/%d (%.1f%%)"
    d.covered d.total (pct d) c.covered c.total (pct c) m.covered m.total
    (pct m);
  let jb, jc, jm = justified_counts t in
  if jb + jc + jm > 0 then
    Fmt.pf ppf "  justified (%d,%d,%d)" jb jc jm
