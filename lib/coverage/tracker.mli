(** Runtime coverage accumulation.

    A tracker consumes {!Slim.Exec.event}s (feed {!observe} as the
    [on_event] callback of {!Slim.Exec.run_step} or
    {!Slim.Interp.run_step}) and accumulates the three criteria of
    {!Criteria}. *)

type t

val create : Slim.Ir.program -> t
val criteria : t -> Criteria.t

val observe : t -> Slim.Exec.event -> unit

val set_justified :
  t ->
  branches:Slim.Branch.key list ->
  conditions:(int * int * bool) list ->
  mcdc:(int * int) list ->
  unit
(** Mark objectives as justified (proven dead by static analysis).
    Justified objectives are excluded from every denominator, from
    {!uncovered_branches} and {!uncovered_mcdc}, and from
    {!fully_covered} — the SLDV-style dead-logic justification the
    paper's coverage tables assume.  Replaces any previous
    justification. *)

val justified_counts : t -> int * int * int
(** [(branches, conditions, mcdc)] objectives currently justified. *)

val progress : t -> int
(** Monotone stamp, bumped only when an observation adds genuinely new
    information (new branch, condition outcome or condition vector) —
    lets clients cache derived structures. *)

val covered_branches : t -> Slim.Branch.Key_set.t
val is_branch_covered : t -> Slim.Branch.key -> bool

type ratio = { covered : int; total : int }

val pct : ratio -> float
(** Percentage; 100.0 when [total = 0]. *)

val decision : t -> ratio
val condition : t -> ratio
val mcdc : t -> ratio

val uncovered_branches : t -> Slim.Branch.t list

val is_condition_covered : t -> int -> int -> bool -> bool
(** [is_condition_covered t decision atom value] — has atom [atom] of
    decision [decision] been observed with the given truth value? *)

val observed_vectors : t -> int -> (bool array * bool) list
(** Condition vectors (with outcomes) observed for a decision. *)

val uncovered_mcdc : t -> (int * int) list
(** (decision, atom) pairs whose independent effect is not yet shown. *)

val find_decision : t -> int -> Criteria.decision_info option

val fully_covered : t -> bool
(** All branches covered (decision coverage complete). *)

val copy : t -> t
(** Independent clone (used for what-if executions). *)

val pp_summary : t Fmt.t
