module Ir = Slim.Ir
module Branch = Slim.Branch

type decision_info = {
  d_id : int;
  d_kind : [ `If | `Switch ];
  d_atom_count : int;
  d_fn : bool array -> bool;
}

type t = {
  branches : Branch.t list;
  decisions : decision_info list;
  decision_total : int;
  condition_total : int;
  mcdc_total : int;
}

(* Compile a guard into a function of its atom vector.  Atom positions
   follow [Ir.atoms_of_condition] (left-to-right). *)
let guard_fn (cond : Ir.expr) : bool array -> bool =
  let counter = ref 0 in
  let rec build e =
    match (e : Ir.expr) with
    | And (a, b) ->
      let fa = build a in
      let fb = build b in
      fun v ->
        (* evaluate both: SLIM logic is non-short-circuit *)
        let ra = fa v in
        let rb = fb v in
        ra && rb
    | Or (a, b) ->
      let fa = build a in
      let fb = build b in
      fun v ->
        let ra = fa v in
        let rb = fb v in
        ra || rb
    | Unop (Not, inner) ->
      let f = build inner in
      fun v -> not (f v)
    | Const _ | Var _ | Unop _ | Binop _ | Cmp _ | Ite _ | Index _ ->
      let i = !counter in
      incr counter;
      fun v -> v.(i)
  in
  build cond

let of_program prog =
  (* Branch table and decision metadata come precomputed from the compiled
     execution handle; no per-tracker IR traversal. *)
  let ex = Slim.Exec.handle prog in
  let branches = Slim.Exec.branches ex in
  let decisions =
    List.map
      (fun (id, d) ->
        match d with
        | `If cond ->
          {
            d_id = id;
            d_kind = `If;
            d_atom_count = List.length (Ir.atoms_of_condition cond);
            d_fn = guard_fn cond;
          }
        | `Switch (_, _) ->
          { d_id = id; d_kind = `Switch; d_atom_count = 0; d_fn = (fun _ -> false) })
      (Slim.Exec.decisions ex)
  in
  let atoms =
    List.fold_left (fun n d -> n + d.d_atom_count) 0 decisions
  in
  {
    branches;
    decisions;
    decision_total = List.length branches;
    condition_total = 2 * atoms;
    mcdc_total = atoms;
  }

let mcdc_pair_ok fn i (v1, o1) (v2, o2) =
  Array.length v1 = Array.length v2
  && o1 <> o2
  && v1.(i) <> v2.(i)
  &&
  let masked vec j =
    (* flipping j alone does not change the outcome on [vec] *)
    let flipped = Array.copy vec in
    flipped.(j) <- not flipped.(j);
    fn flipped = fn vec
  in
  let ok = ref true in
  Array.iteri
    (fun j x ->
      if j <> i && x <> v2.(j) then
        if not (masked v1 j && masked v2 j) then ok := false)
    v1;
  !ok
