(* Tests for the telemetry subsystem: instrument semantics, the
   determinism contract across worker counts, span nesting, and the
   Chrome trace exporter's JSON. *)

let check = Alcotest.check

let contains sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

(* every test starts from a clean, enabled state and leaves telemetry
   disabled for the next one *)
let with_telemetry f =
  Telemetry.reset ();
  Telemetry.enable ();
  Fun.protect
    ~finally:(fun () ->
      Telemetry.disable ();
      Telemetry.reset ())
    f

(* --- minimal JSON syntax checker (no json library in the image) ------- *)

exception Bad_json of int

let json_valid s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let advance () = incr i in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else raise (Bad_json !i)
  in
  let literal lit =
    let l = String.length lit in
    if !i + l <= n && String.sub s !i l = lit then i := !i + l
    else raise (Bad_json !i)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> raise (Bad_json !i)
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
           advance ();
           go ()
         | Some 'u' ->
           advance ();
           for _ = 1 to 4 do
             match peek () with
             | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
             | _ -> raise (Bad_json !i)
           done;
           go ()
         | _ -> raise (Bad_json !i))
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let parse_number () =
    let digits () =
      let any = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          any := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !any then raise (Bad_json !i)
    in
    if peek () = Some '-' then advance ();
    digits ();
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
     | Some ('e' | 'E') ->
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ())
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else begin
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> raise (Bad_json !i)
        in
        members ()
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else begin
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> raise (Bad_json !i)
        in
        elements ()
      end
    | Some '"' -> parse_string ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> raise (Bad_json !i)
  in
  match
    parse_value ();
    skip_ws ()
  with
  | () -> !i = n
  | exception Bad_json _ -> false

let test_json_checker_sanity () =
  check Alcotest.bool "object" true
    (json_valid {|{"a": [1, 2.5, -3e2], "b": "x\nA", "c": true}|});
  check Alcotest.bool "trailing junk" false (json_valid "{} x");
  check Alcotest.bool "unclosed" false (json_valid {|{"a": 1|});
  check Alcotest.bool "bare word" false (json_valid "undefined")

(* --- instruments -------------------------------------------------------- *)

let test_counter_basics () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Counter.make "test.counter" in
  check Alcotest.int "starts at zero" 0 (Telemetry.Counter.total c);
  Telemetry.Counter.incr c;
  Telemetry.Counter.add c 41;
  check Alcotest.int "accumulates" 42 (Telemetry.Counter.total c);
  let c' = Telemetry.Counter.make "test.counter" in
  Telemetry.Counter.incr c';
  check Alcotest.int "make is idempotent by name" 43
    (Telemetry.Counter.total c)

let test_disabled_is_noop () =
  Telemetry.reset ();
  Telemetry.disable ();
  let c = Telemetry.Counter.make "test.off" in
  let h = Telemetry.Histogram.make "test.off_hist" in
  let sp = Telemetry.Span.make "test.off_span" in
  Telemetry.Counter.incr c;
  Telemetry.Histogram.observe h 7;
  let note_forced = ref false in
  let r =
    Telemetry.Span.with_ sp
      ~note:(fun () ->
        note_forced := true;
        "n")
      (fun () -> 99)
  in
  check Alcotest.int "span passes result through" 99 r;
  check Alcotest.int "counter untouched" 0 (Telemetry.Counter.total c);
  check Alcotest.bool "note not forced when off" false !note_forced;
  check Alcotest.int "no span recorded" 0
    (List.length (Telemetry.span_records ()))

let test_histogram_stats () =
  with_telemetry @@ fun () ->
  let h = Telemetry.Histogram.make "test.hist" in
  List.iter (Telemetry.Histogram.observe h) [ 0; 1; 2; 3; 100 ];
  let snap = Telemetry.snapshot () in
  let stats = List.assoc "test.hist" snap.Telemetry.sn_histograms in
  check Alcotest.int "count" 5 stats.Telemetry.h_count;
  check Alcotest.int "sum" 106 stats.Telemetry.h_sum;
  check Alcotest.int "max" 100 stats.Telemetry.h_max;
  (* p50 of [0;1;2;3;100] lands in the [2,3] bucket (top 3) *)
  check Alcotest.int "p50 bucket top" 3 stats.Telemetry.h_p50;
  (* p99 lands in the bucket holding 100: [64,127] *)
  check Alcotest.int "p99 bucket top" 127 stats.Telemetry.h_p99

let test_nondet_excluded () =
  with_telemetry @@ fun () ->
  let det = Telemetry.Counter.make "test.det" in
  let nd = Telemetry.Counter.make ~nondet:true "test.nondet" in
  Telemetry.Counter.incr det;
  Telemetry.Counter.incr nd;
  let s = Telemetry.snapshot () in
  check Alcotest.bool "det included" true
    (List.mem_assoc "test.det" s.Telemetry.sn_counters);
  check Alcotest.bool "nondet excluded" false
    (List.mem_assoc "test.nondet" s.Telemetry.sn_counters);
  let s' = Telemetry.snapshot ~nondet:true () in
  check Alcotest.bool "nondet included on request" true
    (List.mem_assoc "test.nondet" s'.Telemetry.sn_counters);
  let r = Telemetry.render_deterministic () in
  check Alcotest.bool "render_deterministic excludes nondet" false
    (contains "test.nondet" r)

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting () =
  with_telemetry @@ fun () ->
  let outer = Telemetry.Span.make "test.outer" in
  let inner = Telemetry.Span.make "test.inner" in
  Telemetry.Span.with_ outer (fun () ->
      Telemetry.Span.with_ inner (fun () -> ());
      Telemetry.Span.with_ inner (fun () -> ()));
  (* a span body that raises must still be recorded, at the right depth *)
  (try
     Telemetry.Span.with_ outer (fun () ->
         Telemetry.Span.with_ inner (fun () -> failwith "boom"))
   with Failure _ -> ());
  let records = Telemetry.span_records () in
  check Alcotest.int "all spans recorded" 5 (List.length records);
  let of_name n =
    List.filter (fun (r : Telemetry.span_record) -> r.sr_name = n) records
  in
  List.iter
    (fun (r : Telemetry.span_record) ->
      check Alcotest.int ("depth of " ^ r.sr_name)
        (if r.sr_name = "test.outer" then 0 else 1)
        r.sr_depth;
      check Alcotest.bool "non-negative duration" true (r.sr_dur_ns >= 0L))
    records;
  (* inner spans lie within some outer span's window *)
  let within (o : Telemetry.span_record) (i : Telemetry.span_record) =
    i.sr_start_ns >= o.sr_start_ns
    && Int64.add i.sr_start_ns i.sr_dur_ns
       <= Int64.add o.sr_start_ns o.sr_dur_ns
  in
  List.iter
    (fun i ->
      check Alcotest.bool "inner nested in an outer" true
        (List.exists (fun o -> within o i) (of_name "test.outer")))
    (of_name "test.inner");
  let totals = Telemetry.span_totals () in
  let count n =
    let cnt, _ =
      List.fold_left
        (fun acc (name, c, t) -> if name = n then (c, t) else acc)
        (0, 0L) totals
    in
    cnt
  in
  check Alcotest.int "outer total count" 2 (count "test.outer");
  check Alcotest.int "inner total count" 3 (count "test.inner")

let test_span_retention_aggregate () =
  with_telemetry @@ fun () ->
  check Alcotest.bool "records is the default" true
    (Telemetry.span_retention () = `Records);
  Telemetry.set_span_retention `Aggregate;
  Fun.protect
    ~finally:(fun () -> Telemetry.set_span_retention `Records)
    (fun () ->
      let sp = Telemetry.Span.make "test.retained" in
      for _ = 1 to 10 do
        Telemetry.Span.with_ sp (fun () -> ())
      done;
      (* aggregate mode retains O(names), not O(spans): no records, but
         the same (count, total) the records would have produced *)
      check Alcotest.int "no records retained" 0
        (List.length (Telemetry.span_records ()));
      let count, total =
        List.fold_left
          (fun acc (name, c, t) ->
            if name = "test.retained" then (c, t) else acc)
          (0, 0L) (Telemetry.span_totals ())
      in
      check Alcotest.int "aggregate count" 10 count;
      check Alcotest.bool "aggregate total accumulates" true (total >= 0L))

(* --- determinism across worker counts ----------------------------------- *)

let table3_smoke ~jobs =
  Telemetry.reset ();
  Telemetry.enable ();
  let _, text =
    (* oversubscribed pool: jobs=4 must mean four real domains even
       where the core-count clamp would fold this back to sequential *)
    Harness.Pool.with_pool ~jobs ~oversubscribe:true (fun pool ->
        Harness.Experiment.table3 ~budget:20.0 ~seeds:[ 1; 2 ]
          ~models:[ "CPUTask" ] ~pool ())
  in
  let det = Telemetry.render_deterministic () in
  Telemetry.disable ();
  Telemetry.reset ();
  (text, det)

let test_determinism_across_jobs () =
  let text1, det1 = table3_smoke ~jobs:1 in
  let text4, det4 = table3_smoke ~jobs:4 in
  check Alcotest.string "table3 byte-identical" text1 text4;
  check Alcotest.string "deterministic telemetry byte-identical" det1 det4;
  check Alcotest.bool "engine counters present" true
    (contains "engine.solve_attempts" det1)

(* --- exporters ----------------------------------------------------------- *)

let test_chrome_trace_valid_json () =
  with_telemetry @@ fun () ->
  let sp = Telemetry.Span.make "test.traced" in
  let c = Telemetry.Counter.make "test.traced_counter" in
  Telemetry.Span.with_ sp
    ~note:(fun () -> "needs \"escaping\"\nand\ttabs")
    (fun () -> Telemetry.Counter.incr c);
  Telemetry.Span.with_ sp (fun () -> ());
  let doc = Telemetry.Chrome_trace.to_string () in
  check Alcotest.bool "trace parses as JSON" true (json_valid doc);
  check Alcotest.bool "has traceEvents" true (contains "\"traceEvents\"" doc);
  check Alcotest.bool "has complete events" true (contains "\"ph\": \"X\"" doc);
  check Alcotest.bool "has span name" true (contains "test.traced" doc);
  check Alcotest.bool "has counter args" true (contains "test.traced_counter" doc)

let test_json_summary_valid () =
  with_telemetry @@ fun () ->
  let c = Telemetry.Counter.make "test.sum_counter" in
  let h = Telemetry.Histogram.make "test.sum_hist" in
  let sp = Telemetry.Span.make "test.sum_span" in
  Telemetry.Counter.add c 5;
  Telemetry.Histogram.observe h 12;
  Telemetry.Span.with_ sp (fun () -> ());
  let doc = Telemetry.json_summary () in
  check Alcotest.bool "summary parses as JSON" true (json_valid doc);
  check Alcotest.bool "has counters key" true (contains "\"counters\"" doc);
  check Alcotest.bool "has histograms key" true (contains "\"histograms\"" doc);
  check Alcotest.bool "has spans key" true (contains "\"spans\"" doc)

let () =
  Alcotest.run "telemetry"
    [
      ( "json-checker",
        [ Alcotest.test_case "sanity" `Quick test_json_checker_sanity ] );
      ( "instruments",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "disabled no-op" `Quick test_disabled_is_noop;
          Alcotest.test_case "histogram stats" `Quick test_histogram_stats;
          Alcotest.test_case "nondet excluded" `Quick test_nondet_excluded;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "aggregate retention" `Quick
            test_span_retention_aggregate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table3 jobs=1 vs jobs=4" `Slow
            test_determinism_across_jobs;
        ] );
      ( "exporters",
        [
          Alcotest.test_case "chrome trace JSON" `Quick
            test_chrome_trace_valid_json;
          Alcotest.test_case "json summary" `Quick test_json_summary_valid;
        ] );
    ]
