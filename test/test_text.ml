(* Tests for the textual model format (lib/text): exact round-trips of
   every registry model and a large fuzz corpus, golden-stable parser
   diagnostics with positions, crash-freedom of the parser under
   mutation, and byte-identical resumable corpus campaigns.

   The round-trip oracle is two-sided: [parse (print m)] must be
   structurally equal to [m] AND differentially equal under lockstep
   execution (the compiled programs of original and reparsed source
   produce identical outputs and states on the same inputs), and
   re-printing the parsed source must reproduce the text byte for
   byte. *)

module Source = Text.Source
module Printer = Text.Printer
module Parser = Text.Parser
module Syntax = Text.Syntax
module Gen = Fuzzer.Gen
module Splitmix = Fuzzer.Splitmix
module Exec = Slim.Exec

let check = Alcotest.check

(* --- the round-trip oracle --------------------------------------------- *)

let reparse name text =
  match Parser.parse_string text with
  | Ok src -> src
  | Error e ->
    Alcotest.failf "%s: reparse failed: %s" name
      (Syntax.error_to_string ~file:name e)

(* Lockstep differential execution: same input rows through both
   programs, outputs and post-states must agree at every step. *)
let exec_equiv name p1 p2 rows =
  let h1 = Exec.handle p1 in
  let h2 = Exec.handle p2 in
  let s1 = ref (Exec.initial_state h1) in
  let s2 = ref (Exec.initial_state h2) in
  List.iteri
    (fun k row ->
      let o1, s1' = Exec.run_step h1 !s1 (Exec.inputs_of_list h1 row) in
      let o2, s2' = Exec.run_step h2 !s2 (Exec.inputs_of_list h2 row) in
      if not (Exec.values_equal o1 o2) then
        Alcotest.failf "%s: outputs diverge at step %d" name k;
      if not (Exec.values_equal s1' s2') then
        Alcotest.failf "%s: states diverge at step %d" name k;
      s1 := s1';
      s2 := s2')
    rows

let roundtrip ?(steps = 40) name src =
  let text = Printer.print src in
  let src' = reparse name text in
  check Alcotest.bool
    (Fmt.str "%s: parse (print m) structurally equal to m" name)
    true (Source.equal src src');
  check Alcotest.string
    (Fmt.str "%s: print (parse s) byte-identical to s" name)
    text (Printer.print src');
  let p1 = Source.program_of src in
  let p2 = Source.program_of src' in
  let rows = Gen.gen_inputs (Splitmix.create 7) p1 ~steps in
  exec_equiv name p1 p2 rows

(* --- registry models ---------------------------------------------------- *)

let test_registry_roundtrip () =
  List.iter
    (fun (e : Models.Registry.entry) ->
      roundtrip e.Models.Registry.name
        (Source.of_registry e.Models.Registry.source))
    Models.Registry.entries

(* --- fuzz corpus --------------------------------------------------------- *)

let fuzz_corpus_count = 500

let test_fuzz_roundtrip () =
  for i = 0 to fuzz_corpus_count - 1 do
    let name = Fmt.str "case %d" i in
    let model, _steps, gen_inputs =
      Fuzzer.Campaign.case_gen ~seed:0 ~max_steps:8 i
    in
    let src = Source.of_spec model in
    let text = Printer.print src in
    let src' = reparse name text in
    if not (Source.equal src src') then
      Alcotest.failf "%s: parse (print m) <> m" name;
    check Alcotest.string
      (Fmt.str "%s: byte idempotence" name)
      text (Printer.print src');
    (* differential execution on the case's own input sequence *)
    match Gen.program_of model with
    | exception _ -> ()  (* compile failures are the fuzzer's own finding *)
    | p1 -> exec_equiv name p1 (Source.program_of src') (gen_inputs p1)
  done

(* --- parser diagnostics -------------------------------------------------- *)

let expect_error name text ~code ~line ~col =
  match Parser.parse_string text with
  | Ok _ -> Alcotest.failf "%s: expected %s, parse succeeded" name code
  | Error e ->
    check Alcotest.string (Fmt.str "%s: error code" name) code e.Syntax.code;
    check Alcotest.(pair int int)
      (Fmt.str "%s: position" name)
      (line, col)
      (e.Syntax.pos.Syntax.line, e.Syntax.pos.Syntax.col)

(* the reader blames the innermost unclosed '(' — far more actionable
   than pointing at end of input *)
let test_error_unclosed () =
  expect_error "unclosed subsystem"
    "(diagram \"d\"\n  (stores)\n  (blocks\n    (block 0 \"b\"\n"
    ~code:"T102" ~line:4 ~col:5

let test_error_unknown_block () =
  expect_error "unknown block kind"
    "(diagram \"d\"\n\
    \  (stores)\n\
    \  (blocks\n\
    \    (block 0 \"b\" (frobnicate) (wires))))\n"
    ~code:"T201" ~line:4 ~col:18

let test_error_type_mismatch () =
  expect_error "ill-typed program"
    "(program \"p\"\n\
    \  (inputs (\"u\" bool))\n\
    \  (outputs (\"y\" bool))\n\
    \  (states)\n\
    \  (locals)\n\
    \  (body (set (out \"y\") (+ (in \"u\") (c (i 1))))))\n"
    ~code:"T303" ~line:1 ~col:1

let test_error_duplicate_block_id () =
  expect_error "duplicate block id"
    "(diagram \"d\"\n\
    \  (stores)\n\
    \  (blocks\n\
    \    (block 0 \"a\" (const (i 1)) (wires))\n\
    \    (block 0 \"b\" (const (i 2)) (wires))))\n"
    ~code:"T203" ~line:5 ~col:5

let test_error_duplicate_state_name () =
  expect_error "duplicate chart state name"
    "(chart \"c\"\n\
    \  (inputs)\n\
    \  (outputs)\n\
    \  (data)\n\
    \  (region \"A\"\n\
    \    (state \"A\")\n\
    \    (state \"A\")))\n"
    ~code:"T302" ~line:1 ~col:1

let test_error_invalid_wiring () =
  expect_error "dangling wire source"
    "(diagram \"d\"\n\
    \  (stores)\n\
    \  (blocks\n\
    \    (block 0 \"g\" (gain 2) (wires (7 0)))\n\
    \    (block 1 \"y\" (outport \"y\") (wires (0 0)))))\n"
    ~code:"T301" ~line:1 ~col:1

let test_error_bad_number () =
  expect_error "malformed number"
    "(program \"p\"\n\
    \  (inputs (\"u\" (real 0 xx)))\n\
    \  (outputs)\n\
    \  (states)\n\
    \  (locals)\n\
    \  (body))\n"
    ~code:"T105" ~line:2 ~col:24

let test_error_wire_arity () =
  expect_error "wire arity mismatch"
    "(diagram \"d\"\n\
    \  (stores)\n\
    \  (blocks\n\
    \    (block 0 \"a\" (abs) (wires))))\n"
    ~code:"T202" ~line:4 ~col:5

(* --- parser crash-freedom under mutation --------------------------------- *)

(* Truncations and random byte edits of valid model texts: the parser
   must return [Ok] or [Error] on every one, never raise. *)
let test_parser_fuzz () =
  let alphabet = [| '('; ')'; '"'; '0'; '9'; 'a'; ' '; '\n'; '\\'; '-' |] in
  let tortured = ref 0 in
  for i = 0 to 39 do
    let model, _, _ = Fuzzer.Campaign.case_gen ~seed:0 ~max_steps:8 i in
    let text = Printer.print (Source.of_spec model) in
    let n = String.length text in
    let try_parse s =
      incr tortured;
      match Parser.parse_string s with
      | Ok _ | Error _ -> ()
      | exception exn ->
        Alcotest.failf "case %d: parser raised %s on mutated input" i
          (Printexc.to_string exn)
    in
    (* truncations at the quartiles *)
    List.iter
      (fun k -> try_parse (String.sub text 0 (n * k / 4)))
      [ 1; 2; 3 ];
    (* deterministic random single-byte edits *)
    let rng = Splitmix.create (1000 + i) in
    for _ = 1 to 20 do
      let at = Splitmix.int rng n in
      let c = alphabet.(Splitmix.int rng (Array.length alphabet)) in
      let b = Bytes.of_string text in
      Bytes.set b at c;
      try_parse (Bytes.to_string b)
    done
  done;
  check Alcotest.bool "exercised mutations" true (!tortured > 800)

(* --- campaign resumability ----------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

let fresh_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) name in
  if Sys.file_exists d then rm_rf d;
  Sys.mkdir d 0o755;
  d

(* Six tiny distinct programs, printed as the campaign corpus. *)
let tiny k : Source.t =
  let open Slim.Ir in
  Source.Program
    (renumber_decisions
       {
         name = Fmt.str "m%d" k;
         inputs = [ input "u" Slim.Value.tint ];
         outputs = [ output "y" Slim.Value.tint ];
         states = [ state "acc" Slim.Value.tint (Slim.Value.Int 0) ];
         locals = [];
         body =
           [
             if_ (iv "u" >: ci (3 * k))
               [ assign_state "acc" (sv "acc" +: ci 1) ]
               [ assign_state "acc" (ci 0) ];
             assign_out "y" (sv "acc");
           ];
       })

let populate dir =
  for k = 0 to 5 do
    write_file
      (Filename.concat dir (Fmt.str "m%d.stcg" k))
      (Printer.print (tiny k))
  done

let run_campaign dir =
  Text.Campaign.run ~tool:Harness.Experiment.STCG ~budget:10.0 ~seed:1 ~jobs:1
    dir

let test_campaign_resume () =
  let dir_a = fresh_dir "stcg-text-campaign-a" in
  let dir_b = fresh_dir "stcg-text-campaign-b" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir_a; rm_rf dir_b)
    (fun () ->
      populate dir_a;
      populate dir_b;
      (* uninterrupted reference run *)
      let full = run_campaign dir_a in
      check Alcotest.int "reference: all executed" 6 full.Text.Campaign.executed;
      check Alcotest.int "reference: nothing cached" 0 full.Text.Campaign.cached;
      check Alcotest.int "reference: no failures" 0 full.Text.Campaign.failed;
      (* simulate a campaign killed after three models: copy the first
         three result files, leave a half-written (poison) file for the
         fourth — exactly what an interrupt mid-write leaves behind *)
      let results_b = Filename.concat dir_b "results" in
      Sys.mkdir results_b 0o755;
      for k = 0 to 2 do
        let f = Fmt.str "m%d.json" k in
        write_file
          (Filename.concat results_b f)
          (read_file (Filename.concat dir_a (Filename.concat "results" f)))
      done;
      write_file
        (Filename.concat results_b "m3.json")
        "{\"stcg-campaign-result\":1,\"model\":\"m3\",\"tool\":\"STC";
      (* the resumed run must execute only the three missing models
         (the poison entry does not parse, so m3 re-runs) *)
      let resumed = run_campaign dir_b in
      check Alcotest.int "resume: only remaining executed" 3
        resumed.Text.Campaign.executed;
      check Alcotest.int "resume: three cached" 3 resumed.Text.Campaign.cached;
      List.iter
        (fun (o : Text.Campaign.outcome) ->
          let expect_cached = List.mem o.o_model [ "m0"; "m1"; "m2" ] in
          check Alcotest.bool
            (Fmt.str "resume: %s cached=%b" o.o_model expect_cached)
            expect_cached o.o_cached)
        resumed.Text.Campaign.outcomes;
      check Alcotest.string "resume: summary byte-identical"
        full.Text.Campaign.summary resumed.Text.Campaign.summary;
      (* a third invocation runs nothing and still renders identically *)
      let again = run_campaign dir_b in
      check Alcotest.int "settled: nothing executed" 0
        again.Text.Campaign.executed;
      check Alcotest.int "settled: all cached" 6 again.Text.Campaign.cached;
      check Alcotest.string "settled: summary byte-identical"
        full.Text.Campaign.summary again.Text.Campaign.summary)

(* --- config mismatches invalidate the store ------------------------------ *)

let test_campaign_config_mismatch () =
  let dir = fresh_dir "stcg-text-campaign-c" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      populate dir;
      let r1 = run_campaign dir in
      check Alcotest.int "first run executes" 6 r1.Text.Campaign.executed;
      (* a different seed must not reuse the stored results *)
      let r2 =
        Text.Campaign.run ~tool:Harness.Experiment.STCG ~budget:10.0 ~seed:2
          ~jobs:1 dir
      in
      check Alcotest.int "changed seed re-executes" 6 r2.Text.Campaign.executed)

let () =
  Alcotest.run "text"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "registry models" `Quick test_registry_roundtrip;
          Alcotest.test_case
            (Fmt.str "%d fuzz models (seed 0)" fuzz_corpus_count)
            `Slow test_fuzz_roundtrip;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "unclosed form" `Quick test_error_unclosed;
          Alcotest.test_case "unknown block" `Quick test_error_unknown_block;
          Alcotest.test_case "type mismatch" `Quick test_error_type_mismatch;
          Alcotest.test_case "duplicate block id" `Quick
            test_error_duplicate_block_id;
          Alcotest.test_case "duplicate state name" `Quick
            test_error_duplicate_state_name;
          Alcotest.test_case "invalid wiring" `Quick test_error_invalid_wiring;
          Alcotest.test_case "bad number" `Quick test_error_bad_number;
          Alcotest.test_case "wire arity" `Quick test_error_wire_arity;
          Alcotest.test_case "mutation fuzz" `Quick test_parser_fuzz;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "resume after interrupt" `Quick
            test_campaign_resume;
          Alcotest.test_case "config mismatch re-runs" `Quick
            test_campaign_config_mismatch;
        ] );
    ]
