(* Tests for the temporal-spec falsification subsystem (lib/spec):
   directed robustness cases against hand-computed values, a 500+-trace
   differential between the sliding-window monitor and the naive
   reference (bit-for-bit at every step, plus robustness-sign vs
   boolean-satisfaction agreement), falsification campaign gates (every
   seeded-faulty requirement must falsify at trace 1; campaign
   summaries byte-identical for any worker count), and the textual
   (spec ...) section round-trip with its stable diagnostics. *)

module Stl = Spec.Stl
module Monitor = Spec.Monitor
module Prng = Spec.Prng
module Requirements = Spec.Requirements
module Falsify = Spec.Falsify

let check = Alcotest.check
let exact = Alcotest.float 0.0

let trace cols = Monitor.of_columns cols
let x arr = trace [ ("x", arr) ]
let atom cmp l r = Stl.Atom (cmp, l, r)
let sx = Stl.Sig "x"
let c v = Stl.Const v

let rob ?at t f =
  let fast = Monitor.robustness ?at t f in
  let slow = Monitor.robustness_naive ?at t f in
  check exact "fast = naive" slow fast;
  fast

(* --- directed robustness ------------------------------------------------ *)

let test_atoms () =
  let t = x [| 3.0; 7.0 |] in
  check exact "le at 0" 2.0 (rob t (atom Le sx (c 5.0)));
  check exact "le at 1" (-2.0) (rob ~at:1 t (atom Le sx (c 5.0)));
  check exact "ge at 0" (-2.0) (rob t (atom Ge sx (c 5.0)));
  check exact "eq at 0" (-2.0) (rob t (atom Eq sx (c 5.0)));
  check exact "eq never positive" 0.0 (rob t (atom Eq sx (c 3.0)));
  check exact "arith" 9.0
    (rob t
       (atom Le
          (Stl.Sub (sx, Stl.Abs (Stl.Neg (c 2.0))))
          (Stl.Add (Stl.Mul (sx, c 2.0), Stl.Min (c 8.0, Stl.Max (sx, c 4.0))))));
  check Alcotest.bool "sat le" true (Monitor.sat t (atom Le sx (c 5.0)));
  check Alcotest.bool "sat lt strict" false (Monitor.sat t (atom Lt sx (c 3.0)))

let test_connectives () =
  let t = x [| 2.0 |] in
  let ge1 = atom Ge sx (c 1.0) in
  let le0 = atom Le sx (c 0.0) in
  check exact "not" (-1.0) (rob t (Stl.Not ge1));
  check exact "and" (-2.0) (rob t (Stl.And (ge1, le0)));
  check exact "or" 1.0 (rob t (Stl.Or (ge1, le0)));
  check exact "implies" (-1.0) (rob t (Stl.Implies (ge1, le0)))

let test_always () =
  let t = x [| 1.0; 2.0; 6.0; 3.0 |] in
  let f = Stl.Always (0, 2, atom Le sx (c 5.0)) in
  check exact "t0" (-1.0) (rob t f);
  check exact "t1" (-1.0) (rob ~at:1 t f);
  check exact "t2 clamped" (-1.0) (rob ~at:2 t f);
  check exact "t3 clamped" 2.0 (rob ~at:3 t f)

let test_eventually () =
  let t = x [| 0.0; 1.0; 5.0; 0.0 |] in
  let f = Stl.Eventually (1, 2, atom Ge sx (c 4.0)) in
  check exact "t0" 1.0 (rob t f);
  check exact "t1" 1.0 (rob ~at:1 t f);
  check exact "t2 clamped" (-4.0) (rob ~at:2 t f);
  check exact "t3 clamped" (-4.0) (rob ~at:3 t f)

let test_until () =
  let t =
    trace [ ("x", [| 1.0; 2.0; 20.0; 2.0 |]); ("y", [| 0.0; 5.0; 0.0; 9.0 |]) ]
  in
  let f = Stl.Until (0, 3, atom Le sx (c 10.0), atom Ge (Stl.Sig "y") (c 3.0)) in
  check exact "t0" 2.0 (rob t f);
  check exact "t1" 2.0 (rob ~at:1 t f);
  check exact "t2" (-10.0) (rob ~at:2 t f);
  check exact "t3" 6.0 (rob ~at:3 t f)

let test_structure () =
  let a = atom Le sx (c 0.0) in
  check Alcotest.int "atom horizon" 0 (Stl.horizon a);
  check Alcotest.int "always horizon" 2 (Stl.horizon (Stl.Always (0, 2, a)));
  check Alcotest.int "nested horizon" 6
    (Stl.horizon (Stl.Always (0, 2, Stl.Eventually (1, 4, a))));
  check Alcotest.int "until horizon" 3
    (Stl.horizon (Stl.Until (1, 3, a, a)));
  check
    Alcotest.(list string)
    "signals sorted uniq" [ "x"; "y" ]
    (Stl.signals (Stl.And (atom Le (Stl.Sig "y") sx, atom Ge sx (c 0.0))));
  let outputs = [ ("x", Slim.Value.Treal { lo = 0.0; hi = 1.0 }) ] in
  check Alcotest.bool "validate ok" true
    (Stl.validate ~outputs a = Ok ());
  check Alcotest.bool "validate unknown sig" true
    (Result.is_error (Stl.validate ~outputs (atom Le (Stl.Sig "nope") (c 0.0))));
  check Alcotest.bool "validate bad bounds" true
    (Result.is_error (Stl.validate ~outputs (Stl.Always (2, 1, a))))

(* --- monitor differential ----------------------------------------------- *)

let gen_sig rng names depth =
  let rec go depth =
    if depth = 0 || Prng.int rng 3 = 0 then
      if Prng.int rng 2 = 0 then
        Stl.Sig (List.nth names (Prng.int rng (List.length names)))
      else Stl.Const (float_of_int (Prng.int rng 101 - 50))
    else
      match Prng.int rng 7 with
      | 0 -> Stl.Add (go (depth - 1), go (depth - 1))
      | 1 -> Stl.Sub (go (depth - 1), go (depth - 1))
      | 2 -> Stl.Mul (go (depth - 1), go (depth - 1))
      | 3 -> Stl.Neg (go (depth - 1))
      | 4 -> Stl.Abs (go (depth - 1))
      | 5 -> Stl.Min (go (depth - 1), go (depth - 1))
      | _ -> Stl.Max (go (depth - 1), go (depth - 1))
  in
  go depth

let gen_formula rng names depth =
  let gen_bounds () =
    let a = Prng.int rng 7 in
    (a, a + Prng.int rng 9)
  in
  let gen_atom () =
    let cmp =
      match Prng.int rng 5 with
      | 0 -> Stl.Le
      | 1 -> Stl.Lt
      | 2 -> Stl.Ge
      | 3 -> Stl.Gt
      | _ -> Stl.Eq
    in
    Stl.Atom (cmp, gen_sig rng names 2, gen_sig rng names 2)
  in
  let rec go depth =
    if depth = 0 then gen_atom ()
    else
      match Prng.int rng 8 with
      | 0 -> gen_atom ()
      | 1 -> Stl.Not (go (depth - 1))
      | 2 -> Stl.And (go (depth - 1), go (depth - 1))
      | 3 -> Stl.Or (go (depth - 1), go (depth - 1))
      | 4 -> Stl.Implies (go (depth - 1), go (depth - 1))
      | 5 ->
        let a, b = gen_bounds () in
        Stl.Always (a, b, go (depth - 1))
      | 6 ->
        let a, b = gen_bounds () in
        Stl.Eventually (a, b, go (depth - 1))
      | _ ->
        let a, b = gen_bounds () in
        Stl.Until (a, b, go (depth - 1), go (depth - 1))
  in
  go depth

(* 520 random traces x 3 random formulas: the production monitor and
   the naive reference must agree bit-for-bit at every step, and any
   nonzero finite robustness must decide the independent boolean
   semantics. *)
let test_monitor_differential () =
  let rng = Prng.create 0xD1FF in
  for case = 1 to 520 do
    let n = 1 + Prng.int rng 50 in
    let names =
      List.filteri
        (fun i _ -> i <= Prng.int rng 3)
        [ "a"; "b"; "c" ]
    in
    let cols =
      List.map
        (fun name ->
          ( name,
            Array.init n (fun _ ->
                if Prng.int rng 2 = 0 then
                  float_of_int (Prng.int rng 41 - 20)
                else Prng.float_in rng (-100.0) 100.0) ))
        names
    in
    let t = trace cols in
    for k = 1 to 3 do
      let f = gen_formula rng names 3 in
      let fast = Monitor.robustness_signal t f in
      for at = 0 to n - 1 do
        let slow = Monitor.robustness_naive ~at t f in
        if Int64.bits_of_float fast.(at) <> Int64.bits_of_float slow then
          Alcotest.failf
            "case %d formula %d step %d: deque %h <> naive %h on %s" case k
            at fast.(at) slow (Stl.to_string f);
        if fast.(at) <> 0.0 && Float.is_finite fast.(at) then
          if Monitor.sat ~at t f <> (fast.(at) > 0.0) then
            Alcotest.failf
              "case %d formula %d step %d: sign %h disagrees with sat on %s"
              case k at fast.(at) (Stl.to_string f)
      done
    done
  done

(* --- requirement table and falsification campaigns ---------------------- *)

let outputs_of_model model =
  match Models.Registry.find model with
  | None -> Alcotest.failf "unknown registry model %s" model
  | Some e ->
    let prog = e.Models.Registry.program () in
    List.map (fun (v : Slim.Ir.var) -> (v.Slim.Ir.name, v.Slim.Ir.ty))
      prog.Slim.Ir.outputs

let test_table_validates () =
  check Alcotest.bool "table nonempty" true
    (List.length Requirements.table >= 10);
  check Alcotest.bool "spans models" true
    (List.length (Requirements.models ()) >= 2);
  List.iter
    (fun (r : Requirements.req) ->
      match
        Stl.validate ~outputs:(outputs_of_model r.Requirements.r_model)
          r.Requirements.r_formula
      with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s/%s does not validate: %s" r.Requirements.r_model
          r.Requirements.r_name msg)
    Requirements.table

let small_cfg seed =
  { (Falsify.default_config ~seed) with samples = 8; descent = 8 }

(* Every seeded-faulty requirement demands an output level outside its
   declared range, so the very first trace falsifies it — and the
   acceptance gate needs at least 3 falsifications at a fixed seed. *)
let test_seeded_faults_falsified () =
  let cfg = small_cfg 1 in
  let rows =
    Falsify.campaign ~jobs:2 ~oversubscribe:true cfg Requirements.table
  in
  List.iter
    (fun (r : Falsify.row) ->
      if r.Falsify.f_fault then begin
        check Alcotest.bool
          (Fmt.str "%s/%s falsified" r.Falsify.f_model r.Falsify.f_req)
          true r.Falsify.f_falsified;
        check
          Alcotest.(option int)
          (Fmt.str "%s/%s at trace 1" r.Falsify.f_model r.Falsify.f_req)
          (Some 1) r.Falsify.f_at_trace
      end)
    rows;
  let falsified =
    List.length (List.filter (fun r -> r.Falsify.f_falsified) rows)
  in
  check Alcotest.bool "at least 3 falsified" true (falsified >= 3)

(* Determinism gate: same seed, any worker count -> byte-identical
   campaign summary (the render string the CLI prints). *)
let test_campaign_determinism () =
  let cfg = small_cfg 42 in
  let reqs = Requirements.table in
  let base = Falsify.render cfg (Falsify.campaign ~jobs:1 cfg reqs) in
  List.iter
    (fun jobs ->
      let out =
        Falsify.render cfg
          (Falsify.campaign ~jobs ~oversubscribe:true cfg reqs)
      in
      check Alcotest.string (Fmt.str "jobs 1 vs %d" jobs) base out)
    [ 2; 3; 5 ]

(* A search is a pure function of (plan, formula, seed, budgets):
   re-running a single requirement must reproduce the campaign row. *)
let test_search_replayable () =
  let cfg = small_cfg 7 in
  let rows = Falsify.campaign ~jobs:2 ~oversubscribe:true cfg Requirements.table in
  let row0 = List.hd rows in
  let replay = Falsify.run_req cfg (List.hd Requirements.table) in
  check Alcotest.string "row replays" (Falsify.render cfg [ row0 ])
    (Falsify.render cfg [ replay ])

(* --- textual (spec ...) section ------------------------------------------ *)

let doc_of_model model =
  match Models.Registry.find model with
  | None -> Alcotest.failf "unknown registry model %s" model
  | Some e ->
    {
      Text.Document.source = Text.Source.of_registry e.Models.Registry.source;
      spec =
        List.map
          (fun (r : Requirements.req) ->
            (r.Requirements.r_name, r.Requirements.r_formula))
          (Requirements.for_model model);
    }

let reparse_doc name text =
  match Text.Parser.parse_document_string text with
  | Ok doc -> doc
  | Error e ->
    Alcotest.failf "%s: reparse failed: %s" name
      (Text.Syntax.error_to_string ~file:name e)

let test_spec_roundtrip () =
  let models = Requirements.models () in
  check Alcotest.bool "at least 2 models carry specs" true
    (List.length models >= 2);
  List.iter
    (fun model ->
      let doc = doc_of_model model in
      check Alcotest.bool (Fmt.str "%s has requirements" model) true
        (doc.Text.Document.spec <> []);
      let text = Text.Printer.print_document doc in
      let doc' = reparse_doc model text in
      check Alcotest.bool
        (Fmt.str "%s: parse (print d) equal to d" model)
        true
        (Text.Document.equal doc doc');
      check Alcotest.string
        (Fmt.str "%s: print (parse s) byte-identical" model)
        text
        (Text.Printer.print_document doc'))
    models;
  (* a document without requirements prints exactly like its source,
     and plain sources parse as empty-spec documents *)
  let source = Text.Source.of_registry
      (match Models.Registry.find "AFC" with
       | Some e -> e.Models.Registry.source
       | None -> Alcotest.fail "AFC missing") in
  let doc = Text.Document.of_source source in
  check Alcotest.string "empty spec prints as source"
    (Text.Printer.print source)
    (Text.Printer.print_document doc);
  let doc' = reparse_doc "AFC" (Text.Printer.print source) in
  check Alcotest.bool "plain source parses as empty-spec document" true
    (doc'.Text.Document.spec = [])

let minimal_program =
  "(program \"p\"\n\
  \  (inputs (\"u\" (real 0 1)))\n\
  \  (outputs (\"y\" (real 0 10)))\n\
  \  (states)\n\
  \  (locals)\n\
  \  (body))\n"

let expect_doc_error name text ~code =
  match Text.Parser.parse_document_string text with
  | Ok _ -> Alcotest.failf "%s: expected %s, parse succeeded" name code
  | Error e ->
    check Alcotest.string (Fmt.str "%s: error code" name) code
      e.Text.Syntax.code

let test_spec_diagnostics () =
  (* the minimal source must itself parse before the error cases mean
     anything *)
  (match Text.Parser.parse_document_string minimal_program with
   | Ok _ -> ()
   | Error e ->
     Alcotest.failf "minimal program: %s"
       (Text.Syntax.error_to_string e));
  expect_doc_error "malformed bounds" ~code:"T401"
    (minimal_program
    ^ "(spec (req \"r\" (always 3 1 (<= (sig \"y\") (c 5)))))\n");
  expect_doc_error "negative bound" ~code:"T401"
    (minimal_program
    ^ "(spec (req \"r\" (eventually -1 4 (<= (sig \"y\") (c 5)))))\n");
  expect_doc_error "unknown signal" ~code:"T402"
    (minimal_program
    ^ "(spec (req \"r\" (<= (sig \"nope\") (c 5))))\n");
  expect_doc_error "duplicate requirement" ~code:"T203"
    (minimal_program
    ^ "(spec (req \"r\" (<= (sig \"y\") (c 5)))\n\
      \      (req \"r\" (>= (sig \"y\") (c 0))))\n");
  expect_doc_error "trailing garbage" ~code:"T106"
    (minimal_program ^ "(spec)\n(spec)\n");
  (* the plain-source parser rejects a spec section with the stable
     trailing-input diagnostic rather than silently dropping it *)
  (match
     Text.Parser.parse_string
       (minimal_program
       ^ "(spec (req \"r\" (<= (sig \"y\") (c 5))))\n")
   with
   | Ok _ -> Alcotest.fail "parse_string accepted a spec section"
   | Error e ->
     check Alcotest.string "parse_string spec = T106" "T106"
       e.Text.Syntax.code)

let () =
  Alcotest.run "spec"
    [
      ( "robustness",
        [
          Alcotest.test_case "atoms" `Quick test_atoms;
          Alcotest.test_case "connectives" `Quick test_connectives;
          Alcotest.test_case "always" `Quick test_always;
          Alcotest.test_case "eventually" `Quick test_eventually;
          Alcotest.test_case "until" `Quick test_until;
          Alcotest.test_case "structure" `Quick test_structure;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "deque vs naive differential" `Quick
            test_monitor_differential;
        ] );
      ( "falsify",
        [
          Alcotest.test_case "table validates" `Quick test_table_validates;
          Alcotest.test_case "seeded faults falsified" `Quick
            test_seeded_faults_falsified;
          Alcotest.test_case "campaign determinism" `Quick
            test_campaign_determinism;
          Alcotest.test_case "search replayable" `Quick test_search_replayable;
        ] );
      ( "text",
        [
          Alcotest.test_case "spec round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "diagnostics" `Quick test_spec_diagnostics;
        ] );
    ]
