(* Tests for the interval-propagation constraint solver. *)

module V = Slim.Value
module Ir = Slim.Ir
module T = Solver.Term
module Csp = Solver.Csp
module Dom = Solver.Dom

let check = Alcotest.check

let solve ?budget vars c =
  fst (Csp.solve ?node_budget:budget { Csp.p_vars = vars; p_constraint = c })

let get_sat = function
  | Csp.Sat a -> a
  | Csp.Unsat -> Alcotest.fail "expected sat, got unsat"
  | Csp.Unknown -> Alcotest.fail "expected sat, got unknown"

let ivar x = T.var x
let i_ty lo hi = V.tint_range lo hi
let r_ty lo hi = V.treal_range lo hi

let test_linear_int () =
  (* x + 3 <= 5 over [0,100] *)
  let c = T.cmp Ir.Le (T.binop Ir.Add (ivar "x") (T.cint 3)) (T.cint 5) in
  let a = get_sat (solve [ ("x", i_ty 0 100) ] c) in
  let x = V.to_int (Csp.Smap.find "x" a) in
  check Alcotest.bool "x <= 2" true (x >= 0 && x <= 2)

let test_equality () =
  let c = T.cmp Ir.Eq (ivar "x") (T.cint 42) in
  let a = get_sat (solve [ ("x", i_ty 0 1000) ] c) in
  check Alcotest.int "x = 42" 42 (V.to_int (Csp.Smap.find "x" a))

let test_unsat_conflict () =
  let c =
    T.and_
      (T.cmp Ir.Gt (ivar "x") (T.cint 5))
      (T.cmp Ir.Lt (ivar "x") (T.cint 3))
  in
  (match solve [ ("x", i_ty 0 100) ] c with
   | Csp.Unsat -> ()
   | Csp.Sat _ -> Alcotest.fail "expected unsat"
   | Csp.Unknown -> Alcotest.fail "expected unsat, got unknown")

let test_unsat_out_of_domain () =
  let c = T.cmp Ir.Eq (ivar "x") (T.cint 500) in
  (match solve [ ("x", i_ty 0 100) ] c with
   | Csp.Unsat -> ()
   | _ -> Alcotest.fail "expected unsat")

let test_disjunction () =
  let c =
    T.or_
      (T.cmp Ir.Eq (ivar "x") (T.cint 7))
      (T.cmp Ir.Eq (ivar "x") (T.cint 93))
  in
  let a = get_sat (solve [ ("x", i_ty 0 100) ] c) in
  let x = V.to_int (Csp.Smap.find "x" a) in
  check Alcotest.bool "x in {7,93}" true (x = 7 || x = 93)

let test_bool_vars () =
  let c =
    T.and_ (ivar "p") (T.not_ (ivar "q"))
  in
  let a = get_sat (solve [ ("p", V.Tbool); ("q", V.Tbool) ] c) in
  check Alcotest.bool "p" true (V.to_bool (Csp.Smap.find "p" a));
  check Alcotest.bool "q" false (V.to_bool (Csp.Smap.find "q" a))

let test_two_vars_relation () =
  (* x = y + 10 && x <= 12 -> y <= 2 *)
  let c =
    T.and_
      (T.cmp Ir.Eq (ivar "x") (T.binop Ir.Add (ivar "y") (T.cint 10)))
      (T.cmp Ir.Le (ivar "x") (T.cint 12))
  in
  let a = get_sat (solve [ ("x", i_ty 0 100); ("y", i_ty 0 100) ] c) in
  let x = V.to_int (Csp.Smap.find "x" a) in
  let y = V.to_int (Csp.Smap.find "y" a) in
  check Alcotest.int "x = y + 10" x (y + 10);
  check Alcotest.bool "x <= 12" true (x <= 12)

let test_real_band () =
  let c =
    T.and_
      (T.cmp Ir.Gt (ivar "x") (T.creal 0.5))
      (T.cmp Ir.Lt (ivar "x") (T.creal 0.6))
  in
  let a = get_sat (solve [ ("x", r_ty 0.0 1000.0) ] c) in
  let x = V.to_real (Csp.Smap.find "x" a) in
  check Alcotest.bool "0.5 < x < 0.6" true (x > 0.5 && x < 0.6)

let test_ite_term () =
  (* (x > 0 ? 10 : 20) = 20 forces x <= 0 *)
  let c =
    T.cmp Ir.Eq
      (T.ite (T.cmp Ir.Gt (ivar "x") (T.cint 0)) (T.cint 10) (T.cint 20))
      (T.cint 20)
  in
  let a = get_sat (solve [ ("x", i_ty (-50) 50) ] c) in
  check Alcotest.bool "x <= 0" true (V.to_int (Csp.Smap.find "x" a) <= 0)

let test_abs_min_max () =
  let c =
    T.and_
      (T.cmp Ir.Eq (T.unop Ir.Abs_op (ivar "x")) (T.cint 4))
      (T.cmp Ir.Lt (ivar "x") (T.cint 0))
  in
  let a = get_sat (solve [ ("x", i_ty (-10) 10) ] c) in
  check Alcotest.int "x = -4" (-4) (V.to_int (Csp.Smap.find "x" a));
  let c2 =
    T.cmp Ir.Ge (T.binop Ir.Min (ivar "y") (T.cint 5)) (T.cint 5)
  in
  let a2 = get_sat (solve [ ("y", i_ty 0 100) ] c2) in
  check Alcotest.bool "min(y,5)>=5 -> y>=5" true
    (V.to_int (Csp.Smap.find "y" a2) >= 5)

let test_constant_fold () =
  let c = T.cmp Ir.Lt (T.binop Ir.Add (T.cint 2) (T.cint 3)) (T.cint 10) in
  check Alcotest.bool "folded to true" true (T.is_const c = Some (V.Bool true));
  match solve [] c with
  | Csp.Sat _ -> ()
  | _ -> Alcotest.fail "trivially sat"

let test_mod_via_sampling () =
  let c =
    T.cmp Ir.Eq (T.binop Ir.Mod (ivar "x") (T.cint 2)) (T.cint 0)
  in
  let a = get_sat (solve [ ("x", i_ty 0 100) ] c) in
  check Alcotest.int "even" 0 (V.to_int (Csp.Smap.find "x" a) mod 2)

let test_unknown_on_hard_real () =
  (* x * x = 2 over reals: no float sampled by our heuristics satisfies it
     exactly, and intervals cannot refute it -> Unknown, not Unsat. *)
  let c =
    T.cmp Ir.Eq (T.binop Ir.Mul (ivar "x") (ivar "x")) (T.creal 2.0)
  in
  match solve ~budget:500 [ ("x", r_ty 0.0 2.0) ] c with
  | Csp.Unknown -> ()
  | Csp.Sat a ->
    (* accept a genuinely satisfying float if one is found *)
    let x = V.to_real (Csp.Smap.find "x" a) in
    check (Alcotest.float 1e-9) "exact" 2.0 (x *. x)
  | Csp.Unsat -> Alcotest.fail "must not refute x*x=2 over reals"

let test_budget_exhaustion_returns_unknown () =
  (* An unsatisfiable Diophantine-flavoured constraint that propagation
     cannot refute quickly: tiny budget must yield Unknown. *)
  let xx = T.binop Ir.Mul (ivar "x") (ivar "x") in
  let yy = T.binop Ir.Mul (ivar "y") (ivar "y") in
  let c =
    T.and_
      (T.cmp Ir.Eq (T.binop Ir.Add xx yy) (T.cint 99991))
      (T.cmp Ir.Gt (ivar "x") (ivar "y"))
  in
  match solve ~budget:5 [ ("x", i_ty 0 100000); ("y", i_ty 0 100000) ] c with
  | Csp.Unknown -> ()
  | Csp.Sat a ->
    let x = V.to_int (Csp.Smap.find "x" a) in
    let y = V.to_int (Csp.Smap.find "y" a) in
    check Alcotest.int "verified" 99991 ((x * x) + (y * y))
  | Csp.Unsat -> Alcotest.fail "budget 5 cannot prove unsat here"

let test_array_fold_via_ite_chain () =
  (* The shape produced by symbolic array reads: find i such that
     queue[i] = 7 where queue is the constant [3; 7; 0]. *)
  let read i =
    T.ite
      (T.cmp Ir.Eq i (T.cint 0))
      (T.cint 3)
      (T.ite (T.cmp Ir.Eq i (T.cint 1)) (T.cint 7) (T.cint 0))
  in
  let c = T.cmp Ir.Eq (read (ivar "i")) (T.cint 7) in
  let a = get_sat (solve [ ("i", i_ty 0 2) ] c) in
  check Alcotest.int "index found" 1 (V.to_int (Csp.Smap.find "i" a))

(* --- directed HC4 projection tests: mod/abs on awkward domains, and
   the float->int saturation regression found by the fuzzer. *)

let verify vars c a =
  match
    T.eval
      (fun x ->
        match Csp.Smap.find_opt x a with
        | Some v -> v
        | None -> V.default_of_ty (List.assoc x vars))
      c
  with
  | V.Bool b -> b
  | _ -> false

let test_div_overflow_regression () =
  (* fuzz seed 0, case 180: i0 > i20 / (i0 + i0).  The denominator
     interval crosses zero, so forward division returns a huge top
     interval; backward multiplication then produced bounds beyond
     max_int, and the unsaturated float->int conversion in
     [Dom.meet Dint/Dreal] wrapped them negative — an empty domain and
     an unsound Unsat (witness: i0=1.78, i20=-2). *)
  let vars = [ ("i0", r_ty (-4.) 4.); ("i20", i_ty (-6) 6) ] in
  let c =
    T.cmp Ir.Gt (ivar "i0")
      (T.binop Ir.Div (ivar "i20") (T.binop Ir.Add (ivar "i0") (ivar "i0")))
  in
  match solve vars c with
  | Csp.Sat a -> check Alcotest.bool "verified" true (verify vars c a)
  | Csp.Unsat -> Alcotest.fail "sound witness exists (i0=1.78, i20=-2)"
  | Csp.Unknown -> ()

let test_dom_meet_saturates () =
  (* the raw conversion wraps: 8e18 -> large negative *)
  check Alcotest.bool "int_of_float_down saturates positive" true
    (Dom.int_of_float_down 8e18 > 0);
  check Alcotest.bool "int_of_float_up saturates negative" true
    (Dom.int_of_float_up (-8e18) < 0);
  match Dom.meet (Dom.intn (-6) 6) (Dom.realn (-8e18) 8e18) with
  | Dom.Dint { lo; hi } ->
    check Alcotest.int "lo" (-6) lo;
    check Alcotest.int "hi" 6 hi
  | _ -> Alcotest.fail "expected an int domain"
  | exception Dom.Empty -> Alcotest.fail "huge real bounds emptied the meet"

let test_mod_positive_divisor_range () =
  (* sign follows the divisor: x mod 3 is in [0,2], so < 0 is unsat *)
  let c = T.cmp Ir.Lt (T.binop Ir.Mod (ivar "x") (T.cint 3)) (T.cint 0) in
  (match solve [ ("x", i_ty (-10) 10) ] c with
   | Csp.Unsat -> ()
   | _ -> Alcotest.fail "x mod 3 < 0 must be unsat");
  (* and = 2 is reachable (x = -1: Euclidean remainder 2) *)
  let c2 = T.cmp Ir.Eq (T.binop Ir.Mod (ivar "x") (T.cint 3)) (T.cint 2) in
  let vars = [ ("x", i_ty (-10) 10) ] in
  let a = get_sat (solve vars c2) in
  check Alcotest.bool "verified" true (verify vars c2 a)

let test_mod_negative_divisor_range () =
  (* negative divisor: x mod -3 is in [-2,0], so > 0 is unsat... *)
  let c = T.cmp Ir.Gt (T.binop Ir.Mod (ivar "x") (T.cint (-3))) (T.cint 0) in
  (match solve [ ("x", i_ty (-10) 10) ] c with
   | Csp.Unsat -> ()
   | _ -> Alcotest.fail "x mod -3 > 0 must be unsat");
  (* ...and -2 is reachable (x = 1: 1 mod -3 = -2) *)
  let c2 =
    T.cmp Ir.Lt (T.binop Ir.Mod (ivar "x") (T.cint (-3))) (T.cint (-1))
  in
  let vars = [ ("x", i_ty (-10) 10) ] in
  let a = get_sat (solve vars c2) in
  check Alcotest.bool "verified" true (verify vars c2 a)

let test_mod_zero_crossing_divisor () =
  (* divisor domain crossing zero: only the magnitude bound applies,
     so a result beyond max |divisor| is refuted... *)
  let c =
    T.cmp Ir.Eq (T.binop Ir.Mod (ivar "x") (ivar "y")) (T.cint 7)
  in
  (match solve [ ("x", i_ty (-10) 10); ("y", i_ty (-3) 3) ] c with
   | Csp.Unsat -> ()
   | _ -> Alcotest.fail "|x mod y| < 3 cannot equal 7");
  (* ...while a result inside the band stays reachable *)
  let c2 = T.cmp Ir.Eq (T.binop Ir.Mod (ivar "x") (ivar "y")) (T.cint 1) in
  let vars = [ ("x", i_ty (-10) 10); ("y", i_ty (-3) 3) ] in
  let a = get_sat (solve vars c2) in
  check Alcotest.bool "verified" true (verify vars c2 a)

let test_mod_backward_pins_divisor () =
  (* a strictly positive result forces a positive divisor larger than
     the result: x mod y = 2 and y <= 0 together are unsat *)
  let c =
    T.and_
      (T.cmp Ir.Eq (T.binop Ir.Mod (ivar "x") (ivar "y")) (T.cint 2))
      (T.cmp Ir.Le (ivar "y") (T.cint 0))
  in
  (match solve [ ("x", i_ty (-10) 10); ("y", i_ty (-5) 5) ] c with
   | Csp.Unsat -> ()
   | Csp.Sat a ->
     Alcotest.failf "unsound sat: x=%a y=%a"
       V.pp (Csp.Smap.find "x" a) V.pp (Csp.Smap.find "y" a)
   | Csp.Unknown -> ());
  (* and the satisfiable version still solves *)
  let c2 = T.cmp Ir.Eq (T.binop Ir.Mod (ivar "x") (ivar "y")) (T.cint 2) in
  let vars = [ ("x", i_ty (-10) 10); ("y", i_ty (-5) 5) ] in
  let a = get_sat (solve vars c2) in
  check Alcotest.bool "verified" true (verify vars c2 a)

let test_abs_backward_sign () =
  (* |x| >= 3 with x constrained negative narrows into the negative
     branch instead of the naive symmetric hull *)
  let vars = [ ("x", i_ty (-10) 10) ] in
  let c =
    T.and_
      (T.cmp Ir.Ge (T.unop Ir.Abs_op (ivar "x")) (T.cint 3))
      (T.cmp Ir.Le (ivar "x") (T.cint 0))
  in
  let a = get_sat (solve vars c) in
  check Alcotest.bool "x <= -3" true (V.to_int (Csp.Smap.find "x" a) <= -3);
  (* |x| = 2 with x > 0 has exactly one integer solution *)
  let c2 =
    T.and_
      (T.cmp Ir.Eq (T.unop Ir.Abs_op (ivar "x")) (T.cint 2))
      (T.cmp Ir.Gt (ivar "x") (T.cint 0))
  in
  let a2 = get_sat (solve vars c2) in
  check Alcotest.int "x = 2" 2 (V.to_int (Csp.Smap.find "x" a2));
  (* an absolute value is never negative *)
  let c3 = T.cmp Ir.Le (T.unop Ir.Abs_op (ivar "x")) (T.cint (-1)) in
  match solve vars c3 with
  | Csp.Unsat -> ()
  | _ -> Alcotest.fail "|x| <= -1 must be unsat"

(* Soundness property: on random small constraints over small domains,
   Sat answers satisfy and Unsat answers have no brute-force witness. *)
let random_term rng depth =
  let open QCheck.Gen in
  let leaf =
    oneof
      [ map (fun i -> T.cint i) (int_range (-5) 5);
        return (ivar "x");
        return (ivar "y") ]
  in
  let rec go depth st =
    if depth = 0 then leaf st
    else
      let sub = go (depth - 1) in
      (oneof
         [ map2 (fun a b -> T.binop Ir.Add a b) sub sub;
           map2 (fun a b -> T.binop Ir.Sub a b) sub sub;
           map2 (fun a b -> T.binop Ir.Min a b) sub sub;
           map2 (fun a b -> T.binop Ir.Max a b) sub sub;
           leaf ])
        st
  in
  let atom st =
    let a = go depth st in
    let b = go depth st in
    let op =
      (oneofl [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ]) st
    in
    T.cmp op a b
  in
  let c st =
    (oneof
       [ map2 T.and_ atom atom;
         map2 T.or_ atom atom;
         map T.not_ atom;
         atom ])
      st
  in
  c rng

let prop_solver_sound =
  QCheck.Test.make ~name:"solver sound on small int constraints" ~count:150
    QCheck.(make (fun rng -> random_term rng 2))
    (fun c ->
      let dom = i_ty (-4) 4 in
      let vars = [ ("x", dom); ("y", dom) ] in
      let result = solve ~budget:50_000 vars c in
      let sat_at x y =
        match
          T.eval
            (function
              | "x" -> V.Int x
              | "y" -> V.Int y
              | _ -> raise Not_found)
            c
        with
        | V.Bool b -> b
        | _ -> false
      in
      match result with
      | Csp.Sat a ->
        sat_at (V.to_int (Csp.Smap.find "x" a)) (V.to_int (Csp.Smap.find "y" a))
      | Csp.Unsat ->
        let witness = ref false in
        for x = -4 to 4 do
          for y = -4 to 4 do
            if sat_at x y then witness := true
          done
        done;
        not !witness
      | Csp.Unknown -> true)

(* --- Interval primitives: degenerate (point) operand exactness -------- *)

module I = Solver.Interval

let npoint ?(int = true) v = { I.nlo = v; nhi = v; nint = int }

(* [nmod] on point operands must return the exact singleton matching
   [Value.modulo] (MATLAB sign convention), for every sign combination.
   Before the fix the generic one-sided range was returned, e.g.
   (-7) mod 3 as [0,2] instead of the point 2. *)
let test_interval_mod_points () =
  List.iter
    (fun (x, y) ->
      let n = I.nmod (npoint (float_of_int x)) (npoint (float_of_int y)) in
      let expected =
        match Slim.Value.modulo (Slim.Value.Int x) (Slim.Value.Int y) with
        | Slim.Value.Int r -> float_of_int r
        | _ -> Alcotest.fail "modulo returned non-int"
      in
      check Alcotest.(pair (float 0.0) (float 0.0))
        (Printf.sprintf "%d mod %d singleton" x y)
        (expected, expected) (n.I.nlo, n.I.nhi))
    [ (7, 3); (-7, 3); (7, -3); (-7, -3); (6, 3); (-6, 3); (0, 5); (0, -5) ]

let test_interval_mod_real_points () =
  List.iter
    (fun (x, y) ->
      let n = I.nmod (npoint ~int:false x) (npoint ~int:false y) in
      let expected =
        match Slim.Value.modulo (Slim.Value.Real x) (Slim.Value.Real y) with
        | Slim.Value.Real r -> r
        | _ -> Alcotest.fail "modulo returned non-real"
      in
      check Alcotest.(float 0.0)
        (Printf.sprintf "%g mod %g lo" x y)
        expected n.I.nlo;
      check Alcotest.(float 0.0)
        (Printf.sprintf "%g mod %g hi" x y)
        expected n.I.nhi)
    [ (7.5, 2.5); (-7.5, 2.0); (7.5, -2.0); (-0.5, -0.25) ]

(* [nabs] on a point must be the exact point, including the negative
   side (previously covered by the generic zero-straddle hull only when
   the interval was wide). *)
let test_interval_abs_points () =
  List.iter
    (fun v ->
      let n = I.nabs (npoint ~int:false v) in
      check Alcotest.(float 0.0) (Printf.sprintf "abs %g lo" v)
        (Float.abs v) n.I.nlo;
      check Alcotest.(float 0.0) (Printf.sprintf "abs %g hi" v)
        (Float.abs v) n.I.nhi)
    [ 3.5; -3.5; 0.0; -0.0; 1e-9; -1e300 ]

(* Range soundness sweep: every concrete (a mod b) must land inside
   [nmod] of the operand hulls, for divisor ranges of every sign. *)
let test_interval_mod_range_sound () =
  let hull lo hi = { I.nlo = float_of_int lo; nhi = float_of_int hi; nint = true } in
  List.iter
    (fun (alo, ahi, blo, bhi) ->
      let n = I.nmod (hull alo ahi) (hull blo bhi) in
      for a = alo to ahi do
        for b = blo to bhi do
          if b <> 0 then begin
            let r =
              match Slim.Value.modulo (Slim.Value.Int a) (Slim.Value.Int b) with
              | Slim.Value.Int r -> float_of_int r
              | _ -> Alcotest.fail "modulo returned non-int"
            in
            if not (n.I.nlo <= r && r <= n.I.nhi) then
              Alcotest.failf "%d mod %d = %g outside [%g,%g]" a b r n.I.nlo
                n.I.nhi
          end
        done
      done)
    [ (-9, 9, 1, 4); (-9, 9, -4, -1); (-9, 9, -3, 3); (0, 20, 5, 5) ]

let () =
  Alcotest.run "solver"
    [
      ( "basic",
        [
          Alcotest.test_case "linear int" `Quick test_linear_int;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "unsat conflict" `Quick test_unsat_conflict;
          Alcotest.test_case "unsat domain" `Quick test_unsat_out_of_domain;
          Alcotest.test_case "disjunction" `Quick test_disjunction;
          Alcotest.test_case "bool vars" `Quick test_bool_vars;
          Alcotest.test_case "two-var relation" `Quick test_two_vars_relation;
          Alcotest.test_case "real band" `Quick test_real_band;
          Alcotest.test_case "constant fold" `Quick test_constant_fold;
        ] );
      ( "operators",
        [
          Alcotest.test_case "ite" `Quick test_ite_term;
          Alcotest.test_case "abs/min/max" `Quick test_abs_min_max;
          Alcotest.test_case "mod via sampling" `Quick test_mod_via_sampling;
          Alcotest.test_case "array ite chain" `Quick test_array_fold_via_ite_chain;
        ] );
      ( "budget",
        [
          Alcotest.test_case "hard real unknown" `Quick test_unknown_on_hard_real;
          Alcotest.test_case "budget unknown" `Quick test_budget_exhaustion_returns_unknown;
        ] );
      ( "hc4 projections",
        [
          Alcotest.test_case "div overflow regression" `Quick
            test_div_overflow_regression;
          Alcotest.test_case "Dom.meet saturates huge bounds" `Quick
            test_dom_meet_saturates;
          Alcotest.test_case "mod: positive divisor range" `Quick
            test_mod_positive_divisor_range;
          Alcotest.test_case "mod: negative divisor range" `Quick
            test_mod_negative_divisor_range;
          Alcotest.test_case "mod: zero-crossing divisor" `Quick
            test_mod_zero_crossing_divisor;
          Alcotest.test_case "mod: backward pins divisor" `Quick
            test_mod_backward_pins_divisor;
          Alcotest.test_case "abs: sign-aware backward" `Quick
            test_abs_backward_sign;
        ] );
      ( "interval points",
        [
          Alcotest.test_case "mod: int point exact" `Quick
            test_interval_mod_points;
          Alcotest.test_case "mod: real point exact" `Quick
            test_interval_mod_real_points;
          Alcotest.test_case "abs: point exact" `Quick
            test_interval_abs_points;
          Alcotest.test_case "mod: range soundness sweep" `Quick
            test_interval_mod_range_sound;
        ] );
      ("props", List.map QCheck_alcotest.to_alcotest [ prop_solver_sound ]);
    ]
