(* Tests for the fuzzing subsystem itself: generator determinism,
   shrinker contracts, and a known-seed corpus that must stay clean
   under every oracle.  These are the meta-tests that make the
   fuzzer trustworthy as a regression harness — a nondeterministic
   generator or a growing shrinker would silently invalidate every
   reproducer in TESTING.md. *)

module Gen = Fuzzer.Gen
module Shrink = Fuzzer.Shrink
module Oracle = Fuzzer.Oracle
module Campaign = Fuzzer.Campaign
module Splitmix = Fuzzer.Splitmix

let check = Alcotest.check

(* Mirror one campaign case draw: model spec + input sequence. *)
let draw_case seed =
  let rng = Splitmix.create seed in
  let model_rng = Splitmix.split rng in
  let input_rng = Splitmix.split rng in
  let size = 8 + Splitmix.int rng 16 in
  let steps = 1 + Splitmix.int rng 11 in
  let m = Gen.gen_model model_rng ~size in
  let inputs =
    match Gen.program_of m with
    | prog -> Gen.gen_inputs input_rng prog ~steps
    | exception _ -> []
  in
  (m, inputs)

let safe_size m =
  match Gen.size_of m with exception _ -> max_int | n -> n

(* --- determinism ------------------------------------------------------ *)

let test_same_seed_same_model () =
  for seed = 0 to 24 do
    let m1, ins1 = draw_case seed in
    let m2, ins2 = draw_case seed in
    let r1 = Fmt.str "%a" Gen.pp_repro (m1, ins1) in
    let r2 = Fmt.str "%a" Gen.pp_repro (m2, ins2) in
    check Alcotest.string
      (Fmt.str "seed %d: printed reproducers byte-identical" seed)
      r1 r2;
    (match Gen.program_of m1, Gen.program_of m2 with
    | p1, p2 ->
      check Alcotest.string
        (Fmt.str "seed %d: compiled programs byte-identical" seed)
        (Fmt.str "%a" Slim.Ir.pp_program p1)
        (Fmt.str "%a" Slim.Ir.pp_program p2)
    | exception _ -> ())
  done

let test_case_seed_independent_of_count () =
  (* case i is addressed by (seed, i) alone — the derived per-case
     seeds must not depend on how many cases the campaign runs *)
  List.iter
    (fun seed ->
      List.iter
        (fun i ->
          check Alcotest.int
            (Fmt.str "case_seed(%d,%d) stable" seed i)
            (Campaign.case_seed ~seed i)
            (Campaign.case_seed ~seed i))
        [ 0; 1; 7; 123 ];
      let distinct =
        List.sort_uniq compare
          (List.init 64 (fun i -> Campaign.case_seed ~seed i))
      in
      check Alcotest.int
        (Fmt.str "seed %d: 64 case seeds all distinct" seed)
        64 (List.length distinct))
    [ 0; 1; 42 ]

(* --- shrinker --------------------------------------------------------- *)

let test_shrinker_never_grows () =
  (* accept every candidate: the shrinker walks to its fixpoint, and
     every candidate it proposes along the way must be <= the original
     in both model size and input-sequence length *)
  List.iter
    (fun seed ->
      let m, ins = draw_case seed in
      let orig_size = safe_size m in
      let orig_steps = List.length ins in
      let bad = ref [] in
      let still_fails m' ins' =
        let sz = safe_size m' in
        if sz > orig_size || List.length ins' > orig_steps then
          bad := (sz, List.length ins') :: !bad;
        true
      in
      let r = Shrink.minimize ~still_fails m ins in
      check Alcotest.(list (pair int int))
        (Fmt.str "seed %d: no candidate grew" seed)
        [] !bad;
      check Alcotest.bool
        (Fmt.str "seed %d: result no larger than original" seed)
        true
        (safe_size r.Shrink.r_model <= orig_size
        && List.length r.Shrink.r_inputs <= orig_steps))
    [ 2; 5; 11; 17 ]

let rec kind_has_counter = function
  | Gen.Counter _ -> true
  | Gen.Sub_if { then_; else_; _ } ->
    sub_has_counter then_ || sub_has_counter else_
  | Gen.Sub_enabled { sub; _ } -> sub_has_counter sub
  | _ -> false

and sub_has_counter (sb : Gen.subspec) =
  Array.exists (fun n -> kind_has_counter n.Gen.n_kind) sb.Gen.sb_nodes

let spec_has_counter (s : Gen.spec) =
  Array.exists (fun n -> kind_has_counter n.Gen.n_kind) s.Gen.sp_nodes

(* "the model computes with a Counter": every shrink candidate is
   compacted, so the Counter must be live, not just present *)
let has_live_counter = function
  | Gen.M_chart _ -> false
  | Gen.M_diagram s -> spec_has_counter (Gen.compact s)

let test_injected_failure_shrinks_small () =
  (* take generated diagrams computing with a Counter, declare that to
     be the failure, and demand every minimized case is a handful of
     blocks — the acceptance bar for real failures *)
  let found = ref [] in
  for seed = 0 to 60 do
    match draw_case seed with
    | m, ins when has_live_counter m && safe_size m < max_int ->
      found := (seed, m, ins) :: !found
    | _ -> ()
  done;
  if List.length !found < 3 then
    Alcotest.fail "fewer than 3 live-Counter diagrams in 61 seeds";
  List.iter
    (fun (seed, m, ins) ->
      let still_fails m' _ =
        has_live_counter m'
        && match Gen.program_of m' with exception _ -> false | _ -> true
      in
      let r = Shrink.minimize ~still_fails m ins in
      let final = safe_size r.Shrink.r_model in
      check Alcotest.bool
        (Fmt.str "seed %d: minimized case still has the Counter" seed)
        true
        (still_fails r.Shrink.r_model r.Shrink.r_inputs);
      if final > 8 then
        Alcotest.failf "seed %d: shrank only to %d blocks (want <= 8)" seed
          final)
    !found

(* --- known-seed corpus ------------------------------------------------ *)

let corpus_seeds = [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11 ]

let test_corpus_clean seed () =
  let case, failure = Campaign.run_case ~seed ~max_steps:10 0 in
  (match failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "seed %d: oracle %s failed: %s@.%s" seed f.Campaign.f_oracle
      f.Campaign.f_message f.Campaign.f_repro);
  check Alcotest.int
    (Fmt.str "seed %d: all oracles ran" seed)
    (List.length Oracle.all)
    (List.length case.Campaign.c_verdicts);
  List.iter
    (fun (o, v) ->
      match v with
      | Oracle.Pass -> ()
      | Oracle.Fail m -> Alcotest.failf "seed %d: %s: %s" seed o m)
    case.Campaign.c_verdicts

let test_campaign_summary_deterministic () =
  let run ~jobs ~chunk =
    Campaign.to_json
      (Campaign.run ~jobs ~chunk ~seed:7 ~count:8 ~max_steps:6 ())
  in
  let sequential = run ~jobs:1 ~chunk:1 in
  check Alcotest.string "jobs=2 chunk=3 summary byte-identical" sequential
    (run ~jobs:2 ~chunk:3);
  check Alcotest.string "jobs=3 chunk=1 summary byte-identical" sequential
    (run ~jobs:3 ~chunk:1)

let () =
  Alcotest.run "fuzz"
    [
      ( "determinism",
        [
          Alcotest.test_case "same seed, same printed model" `Quick
            test_same_seed_same_model;
          Alcotest.test_case "case seeds are index-addressed" `Quick
            test_case_seed_independent_of_count;
          Alcotest.test_case "campaign summary independent of jobs/chunk"
            `Quick test_campaign_summary_deterministic;
        ] );
      ( "shrinker",
        [
          Alcotest.test_case "candidates never grow" `Quick
            test_shrinker_never_grows;
          Alcotest.test_case "injected failure shrinks to <= 8 blocks" `Quick
            test_injected_failure_shrinks_small;
        ] );
      ( "known-seed corpus",
        List.map
          (fun seed ->
            Alcotest.test_case
              (Fmt.str "seed %d clean under all oracles" seed)
              `Quick (test_corpus_clean seed))
          corpus_seeds );
    ]
