(* Tests for the STCG engine: the Figure 2 loop, state tree, test-case
   synthesis and the export format. *)

module V = Slim.Value
module Ir = Slim.Ir
module Interp = Slim.Interp
module Branch = Slim.Branch
module Tracker = Coverage.Tracker
module Engine = Stcg.Engine
module Testcase = Stcg.Testcase
module State_tree = Stcg.State_tree

let check = Alcotest.check

let config ?(budget = 3600.0) ?(seed = 7) () =
  { Engine.default_config with Engine.budget; seed }

(* Accumulator model: the deep branch needs acc >= 2, reachable only by
   repeated ticks — classic state-dependent coverage. *)
let multi_prog =
  let open Ir in
  renumber_decisions
    {
      name = "multi";
      inputs = [ input "tick" V.Tbool ];
      outputs = [ output "deep" V.Tbool ];
      states = [ state "acc" (V.tint_range 0 10) (V.Int 0) ];
      locals = [];
      body =
        [
          assign_out "deep" (cb false);
          if_ (sv "acc" >=: ci 2) [ assign_out "deep" (cb true) ] [];
          if_ (iv "tick" &&: (sv "acc" <: ci 10))
            [ assign_state "acc" (sv "acc" +: ci 1) ]
            [];
        ];
    }

(* A miniature CPUTask: opcode dispatch over a 3-slot queue.  op=1 adds
   task [id]; op=2 deletes a matching task.  "add fails" requires a full
   queue (3 prior adds); "delete succeeds" requires a prior matching
   add - the paper's running example in miniature. *)
let mini_cputask =
  let open Ir in
  renumber_decisions
    {
      name = "mini_cputask";
      inputs =
        [ input "op" (V.tint_range 0 3); input "id" (V.tint_range 1 50) ];
      outputs = [ output "status" (V.tint_range 0 3) ];
      states =
        [
          state "queue" (V.Tvec (V.tint_range 0 50, 3))
            (V.Vec (Array.make 3 (V.Int 0)));
          state "count" (V.tint_range 0 3) (V.Int 0);
        ];
      locals = [ local "hit" V.Tbool; local "slot" (V.tint_range 0 2) ];
      body =
        [
          assign "hit" (cb false);
          assign "slot" (ci 0);
          switch (iv "op")
            [
              ( 1,
                [
                  if_ (sv "count" <: ci 3)
                    [
                      assign_state_idx "queue" (sv "count") (iv "id");
                      assign_state "count" (sv "count" +: ci 1);
                      assign_out "status" (ci 1);
                    ]
                    [ assign_out "status" (ci 2) (* add fails: full *) ];
                ] );
              ( 2,
                [
                  if_
                    (index (sv "queue") (ci 0) =: iv "id"
                    ||: (index (sv "queue") (ci 1) =: iv "id")
                    ||: (index (sv "queue") (ci 2) =: iv "id"))
                    [
                      (* delete: naive clear of first match *)
                      if_ (index (sv "queue") (ci 0) =: iv "id")
                        [ assign_state_idx "queue" (ci 0) (ci 0) ]
                        [
                          if_ (index (sv "queue") (ci 1) =: iv "id")
                            [ assign_state_idx "queue" (ci 1) (ci 0) ]
                            [ assign_state_idx "queue" (ci 2) (ci 0) ];
                        ];
                      assign_state "count" (Binop (Max, ci 0, sv "count" -: ci 1));
                      assign_out "status" (ci 1);
                    ]
                    [ assign_out "status" (ci 3) (* delete fails *) ];
                ] );
            ]
            [ assign_out "status" (ci 0) ];
        ];
    }

let test_full_coverage_multi () =
  let run = Engine.run ~config:(config ()) multi_prog in
  check Alcotest.bool "full decision coverage" true
    (Tracker.fully_covered run.Engine.r_tracker);
  check Alcotest.bool "stopped on coverage" true
    (run.Engine.r_stop = Engine.Full_coverage);
  check Alcotest.bool "produced test cases" true
    (List.length run.Engine.r_testcases > 0)

let test_full_coverage_mini_cputask () =
  let run = Engine.run ~config:(config ()) mini_cputask in
  check Alcotest.bool "full decision coverage" true
    (Tracker.fully_covered run.Engine.r_tracker)

let test_testcases_replay_to_same_coverage () =
  let run = Engine.run ~config:(config ()) mini_cputask in
  let replay = Testcase.replay_suite mini_cputask run.Engine.r_testcases in
  let live = (Tracker.decision run.Engine.r_tracker).Tracker.covered in
  let replayed = (Tracker.decision replay).Tracker.covered in
  (* every branch the engine covered was covered by some test case path *)
  check Alcotest.bool "replay covers all engine coverage" true
    (replayed >= live - 0);
  check Alcotest.int "exact match" live replayed

let test_deterministic () =
  let r1 = Engine.run ~config:(config ~seed:42 ()) mini_cputask in
  let r2 = Engine.run ~config:(config ~seed:42 ()) mini_cputask in
  check Alcotest.int "same number of test cases"
    (List.length r1.Engine.r_testcases)
    (List.length r2.Engine.r_testcases);
  check (Alcotest.float 1e-9) "same final virtual time"
    (Stcg.Vclock.now r1.Engine.r_clock)
    (Stcg.Vclock.now r2.Engine.r_clock)

let decision_pct run =
  Tracker.pct (Tracker.decision run.Engine.r_tracker)

let test_state_aware_ablation () =
  (* with the state symbolic instead of constant, the engine should do
     no better (and typically much worse) within the same budget *)
  let aware = Engine.run ~config:(config ~seed:3 ()) mini_cputask in
  let blind =
    Engine.run
      ~config:{ (config ~seed:3 ()) with Engine.state_aware = false }
      mini_cputask
  in
  check Alcotest.bool "state-aware >= state-blind" true
    (decision_pct aware >= decision_pct blind)

let test_hc4_memo_identity () =
  (* HC4 projection memoization is a pure cache: with the memo disabled
     through the solver-config escape hatch, the engine must emit a
     testcase-identical suite. *)
  let memo_off base =
    {
      base with
      Engine.solver = { base.Engine.solver with Symexec.Explore.hc4_memo = false };
    }
  in
  List.iter
    (fun prog ->
      let on = Engine.run ~config:(config ~seed:11 ()) prog in
      let off = Engine.run ~config:(memo_off (config ~seed:11 ())) prog in
      check Alcotest.int "same number of test cases"
        (List.length on.Engine.r_testcases)
        (List.length off.Engine.r_testcases);
      check (Alcotest.float 1e-9) "same final virtual time"
        (Stcg.Vclock.now on.Engine.r_clock)
        (Stcg.Vclock.now off.Engine.r_clock);
      List.iter2
        (fun (a : Testcase.t) (b : Testcase.t) ->
          check Alcotest.int "same length" (Testcase.length a)
            (Testcase.length b);
          check Alcotest.bool "same origin" true
            (a.Testcase.origin = b.Testcase.origin);
          List.iter2
            (fun sa sb ->
              check Alcotest.bool "same step inputs" true
                (Slim.Exec.values_equal sa sb))
            a.Testcase.steps b.Testcase.steps)
        on.Engine.r_testcases off.Engine.r_testcases)
    [ multi_prog; mini_cputask ]

let test_unsorted_branches_still_work () =
  let run =
    Engine.run
      ~config:{ (config ()) with Engine.sort_branches = false }
      multi_prog
  in
  check Alcotest.bool "coverage reached without depth sort" true
    (Tracker.fully_covered run.Engine.r_tracker)

let test_timeline_monotone () =
  let run = Engine.run ~config:(config ()) mini_cputask in
  let timeline = Engine.coverage_timeline run in
  check Alcotest.bool "non-empty timeline" true (List.length timeline > 0);
  let rec monotone = function
    | (t1, c1) :: ((t2, c2) :: _ as rest) ->
      t1 <= t2 && c1 <= c2 && monotone rest
    | _ -> true
  in
  check Alcotest.bool "time and coverage increase" true (monotone timeline)

let test_solved_marker_origins () =
  let run = Engine.run ~config:(config ()) mini_cputask in
  let solved =
    List.filter
      (fun (tc : Testcase.t) -> tc.Testcase.origin = Testcase.Solved)
      run.Engine.r_testcases
  in
  (* the bulk of coverage should come from state-aware solving *)
  check Alcotest.bool "some solved test cases" true (List.length solved > 0)

let test_budget_respected () =
  (* a tiny budget must terminate quickly with partial coverage *)
  let run = Engine.run ~config:(config ~budget:2.0 ()) mini_cputask in
  check Alcotest.bool "stopped on budget or coverage" true
    (run.Engine.r_stop = Engine.Budget_exhausted
    || run.Engine.r_stop = Engine.Full_coverage);
  check Alcotest.bool "clock within budget" true
    (Stcg.Vclock.now run.Engine.r_clock <= 2.0 +. 1e-9)

let test_export_roundtrip () =
  let run = Engine.run ~config:(config ()) mini_cputask in
  let text = Testcase.to_text mini_cputask run.Engine.r_testcases in
  let back = Testcase.of_text mini_cputask text in
  check Alcotest.int "same count" (List.length run.Engine.r_testcases)
    (List.length back);
  List.iter2
    (fun (a : Testcase.t) (b : Testcase.t) ->
      check Alcotest.int "same length" (Testcase.length a) (Testcase.length b);
      List.iter2
        (fun sa sb ->
          check Alcotest.bool "same step inputs" true
            (Slim.Exec.values_equal sa sb))
        a.Testcase.steps b.Testcase.steps)
    run.Engine.r_testcases back;
  (* replaying the re-imported suite gives identical coverage *)
  let t1 = Testcase.replay_suite mini_cputask run.Engine.r_testcases in
  let t2 = Testcase.replay_suite mini_cputask back in
  check Alcotest.int "replay coverage equal"
    (Tracker.decision t1).Tracker.covered
    (Tracker.decision t2).Tracker.covered

(* --- state tree ------------------------------------------------------- *)

let test_state_tree_dedup () =
  let tree = State_tree.create multi_prog in
  let ex = State_tree.exec tree in
  let root = State_tree.root tree in
  let noop = Slim.Exec.inputs_of_list ex [ ("tick", V.Bool false) ] in
  let tick = Slim.Exec.inputs_of_list ex [ ("tick", V.Bool true) ] in
  (* no-op input: state unchanged -> no new node *)
  let _, st_same = Slim.Exec.run_step ex root.State_tree.state noop in
  let n1, fresh1 = State_tree.add_child tree ~parent:root ~input:noop st_same in
  check Alcotest.bool "self transition dedup" false fresh1;
  check Alcotest.int "still root" 0 n1.State_tree.id;
  (* tick changes state -> new node *)
  let _, st2 = Slim.Exec.run_step ex root.State_tree.state tick in
  let n2, fresh2 = State_tree.add_child tree ~parent:root ~input:tick st2 in
  check Alcotest.bool "new state adds node" true fresh2;
  (* adding the same state again under the same parent reuses it *)
  let n3, fresh3 = State_tree.add_child tree ~parent:root ~input:tick st2 in
  check Alcotest.bool "duplicate child reused" false fresh3;
  check Alcotest.int "same node id" n2.State_tree.id n3.State_tree.id;
  check Alcotest.int "tree size" 2 (State_tree.size tree)

let test_state_tree_path () =
  let tree = State_tree.create multi_prog in
  let ex = State_tree.exec tree in
  let root = State_tree.root tree in
  let tick = Slim.Exec.inputs_of_list ex [ ("tick", V.Bool true) ] in
  let _, st1 = Slim.Exec.run_step ex root.State_tree.state tick in
  let n1, _ = State_tree.add_child tree ~parent:root ~input:tick st1 in
  let _, st2 = Slim.Exec.run_step ex st1 tick in
  let n2, _ = State_tree.add_child tree ~parent:n1 ~input:tick st2 in
  let path = State_tree.path_inputs tree n2 in
  check Alcotest.int "path length = depth" 2 (List.length path);
  check Alcotest.int "depth" 2 n2.State_tree.depth

let test_random_first_hybrid () =
  let run =
    Engine.run
      ~config:{ (config ()) with Engine.random_first = true }
      mini_cputask
  in
  check Alcotest.bool "hybrid reaches full coverage" true
    (Tracker.fully_covered run.Engine.r_tracker)

let () =
  Alcotest.run "engine"
    [
      ( "coverage",
        [
          Alcotest.test_case "multi-step model" `Quick test_full_coverage_multi;
          Alcotest.test_case "mini cputask" `Quick test_full_coverage_mini_cputask;
          Alcotest.test_case "replay matches" `Quick test_testcases_replay_to_same_coverage;
          Alcotest.test_case "solved origins" `Quick test_solved_marker_origins;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "ablation: state-aware" `Quick test_state_aware_ablation;
          Alcotest.test_case "ablation: unsorted" `Quick test_unsorted_branches_still_work;
          Alcotest.test_case "hc4 memo identity" `Quick test_hc4_memo_identity;
          Alcotest.test_case "timeline monotone" `Quick test_timeline_monotone;
          Alcotest.test_case "budget respected" `Quick test_budget_respected;
          Alcotest.test_case "hybrid random-first" `Quick test_random_first_hybrid;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "export roundtrip" `Quick test_export_roundtrip;
        ] );
      ( "state tree",
        [
          Alcotest.test_case "dedup" `Quick test_state_tree_dedup;
          Alcotest.test_case "path" `Quick test_state_tree_path;
        ] );
    ]
