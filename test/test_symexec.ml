(* Tests for one-step (state-aware) and multi-step symbolic execution.
   The central property: a Sat answer's inputs, executed concretely from
   the same state, drive the model into the target branch. *)

module V = Slim.Value
module Ir = Slim.Ir
module Interp = Slim.Interp
module Exec = Slim.Exec
module Branch = Slim.Branch
module SV = Symexec.Sym_value
module Ex = Symexec.Explore
module T = Solver.Term

let check = Alcotest.check

(* Execute [inputs] from [state] and report whether [target] was hit. *)
let hits prog state inputs target =
  let ex = Exec.handle prog in
  let hit = ref false in
  let on_event = function
    | Exec.Branch_hit k when Branch.equal_key k target -> hit := true
    | _ -> ()
  in
  let st = ref state in
  List.iter
    (fun ins ->
      let _, st' = Exec.run_step ~on_event ex !st ins in
      st := st')
    inputs;
  !hit

let expect_sat_and_hit ?config prog state target =
  match Ex.solve_branch ?config prog ~state ~target with
  | Ex.Sat inputs, _ ->
    check Alcotest.bool "solved inputs hit the target" true
      (hits prog state inputs target)
  | Ex.Unsat, _ -> Alcotest.fail "expected sat, got unsat"
  | Ex.Unknown, _ -> Alcotest.fail "expected sat, got unknown"

let simple_prog =
  let open Ir in
  renumber_decisions
    {
      name = "simple";
      inputs = [ input "x" (V.tint_range (-100) 100) ];
      outputs = [ output "y" V.tint ];
      states = [];
      locals = [];
      body =
        [
          if_ (iv "x" >: ci 5)
            [ assign_out "y" (ci 1) ]
            [ assign_out "y" (ci 0) ];
        ];
    }

let test_simple_then_else () =
  let st = Exec.initial_state (Exec.handle simple_prog) in
  expect_sat_and_hit simple_prog st (0, Branch.Then);
  expect_sat_and_hit simple_prog st (0, Branch.Else)

let state_dep_prog =
  let open Ir in
  renumber_decisions
    {
      name = "statedep";
      inputs = [ input "x" (V.tint_range 0 1000) ];
      outputs = [ output "hit" V.Tbool ];
      states = [ state "secret" (V.tint_range 0 1000) (V.Int 0) ];
      locals = [];
      body =
        [
          if_ (iv "x" =: sv "secret")
            [ assign_out "hit" (cb true) ]
            [ assign_out "hit" (cb false) ];
        ];
    }

let test_state_as_constant () =
  (* with secret = 437 in the snapshot, the solver must find x = 437 *)
  let ex = Exec.handle state_dep_prog in
  let st = Exec.state_of_list ex [ ("secret", V.Int 437) ] in
  (match Ex.solve_branch state_dep_prog ~state:st ~target:(0, Branch.Then) with
   | Ex.Sat [ ins ], _ ->
     check Alcotest.int "x equals state constant" 437
       (V.to_int (Exec.find_input ex ins "x"))
   | _ -> Alcotest.fail "expected one-step sat")

let nested_prog =
  let open Ir in
  renumber_decisions
    {
      name = "nested";
      inputs =
        [ input "a" (V.tint_range 0 100); input "b" (V.tint_range 0 100) ];
      outputs = [ output "y" V.tint ];
      states = [];
      locals = [];
      body =
        [
          if_ (iv "a" >: ci 10)
            [
              if_ (iv "b" =: iv "a" +: ci 5)
                [ assign_out "y" (ci 2) ]
                [ assign_out "y" (ci 1) ];
            ]
            [ assign_out "y" (ci 0) ];
        ];
    }

let test_nested_target () =
  let ex = Exec.handle nested_prog in
  let st = Exec.initial_state ex in
  (* deep branch: a > 10 && b = a + 5 *)
  expect_sat_and_hit nested_prog st (1, Branch.Then);
  (match Ex.solve_branch nested_prog ~state:st ~target:(1, Branch.Then) with
   | Ex.Sat [ ins ], _ ->
     let a = V.to_int (Exec.find_input ex ins "a") in
     let b = V.to_int (Exec.find_input ex ins "b") in
     check Alcotest.bool "constraints hold" true (a > 10 && b = a + 5)
   | _ -> Alcotest.fail "expected sat")

(* The CPUTask-style pattern: a queue in state, input ID must match a
   stored element. *)
let queue_prog =
  let open Ir in
  renumber_decisions
    {
      name = "queue";
      inputs =
        [ input "id" (V.tint_range 0 255); input "slot" (V.tint_range 0 3) ];
      outputs = [ output "found" V.Tbool ];
      states =
        [ state "queue" (V.Tvec (V.tint_range 0 255, 4))
            (V.Vec (Array.make 4 (V.Int 0))) ];
      locals = [];
      body =
        [
          if_ (index (sv "queue") (iv "slot") =: iv "id" &&: (iv "id" >: ci 0))
            [ assign_out "found" (cb true) ]
            [ assign_out "found" (cb false) ];
        ];
    }

let test_queue_match () =
  (* queue = [0; 77; 0; 13]: solver must pick slot/id matching an entry *)
  let ex = Exec.handle queue_prog in
  let q = V.Vec [| V.Int 0; V.Int 77; V.Int 0; V.Int 13 |] in
  let st = Exec.state_of_list ex [ ("queue", q) ] in
  (match Ex.solve_branch queue_prog ~state:st ~target:(0, Branch.Then) with
   | Ex.Sat [ ins ], _ ->
     let id = V.to_int (Exec.find_input ex ins "id") in
     let slot = V.to_int (Exec.find_input ex ins "slot") in
     check Alcotest.bool "matches a stored task id" true
       ((slot = 1 && id = 77) || (slot = 3 && id = 13));
     check Alcotest.bool "executes into branch" true
       (hits queue_prog st [ ins ] (0, Branch.Then))
   | _ -> Alcotest.fail "expected sat on populated queue")

let test_queue_unsat_when_empty () =
  (* empty queue: id > 0 can never match a zero entry *)
  let st = Exec.initial_state (Exec.handle queue_prog) in
  match Ex.solve_branch queue_prog ~state:st ~target:(0, Branch.Then) with
  | Ex.Unsat, _ -> ()
  | Ex.Sat _, _ -> Alcotest.fail "must be unsat on empty queue"
  | Ex.Unknown, _ -> Alcotest.fail "should be decided unsat"

let test_state_only_guard_unsat () =
  (* guard depends only on state; wrong state -> unsat in one step *)
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "stateguard";
        inputs = [ input "x" (V.tint_range 0 10) ];
        outputs = [];
        states = [ state "mode" (V.tint_range 0 5) (V.Int 0) ];
        locals = [];
        body = [ if_ (sv "mode" =: ci 3) [] [] ];
      }
  in
  let ex = Exec.handle prog in
  let st = Exec.initial_state ex in
  (match Ex.solve_branch prog ~state:st ~target:(0, Branch.Then) with
   | Ex.Unsat, _ -> ()
   | _ -> Alcotest.fail "state-false guard must be unsat");
  let st3 = Exec.state_of_list ex [ ("mode", V.Int 3) ] in
  match Ex.solve_branch prog ~state:st3 ~target:(0, Branch.Then) with
  | Ex.Sat _, _ -> ()
  | _ -> Alcotest.fail "state-true guard must be trivially sat"

(* Accumulator needing multiple steps: acc increments by at most 1 per
   step (input-gated); branch needs acc >= 2 -> unreachable in one step
   from the initial state but reachable in three. *)
let multi_prog =
  let open Ir in
  renumber_decisions
    {
      name = "multi";
      inputs = [ input "tick" V.Tbool ];
      outputs = [ output "deep" V.Tbool ];
      states = [ state "acc" (V.tint_range 0 10) (V.Int 0) ];
      locals = [];
      body =
        [
          assign_out "deep" (cb false);
          if_ (sv "acc" >=: ci 2)
            [ assign_out "deep" (cb true) ]
            [];
          if_ (iv "tick" &&: (sv "acc" <: ci 10))
            [ assign_state "acc" (sv "acc" +: ci 1) ]
            [];
        ];
    }

let test_multi_step_needed () =
  let st = Exec.initial_state (Exec.handle multi_prog) in
  (* one step from the initial state cannot reach acc >= 2 *)
  (match Ex.solve_branch multi_prog ~state:st ~target:(0, Branch.Then) with
   | Ex.Unsat, _ -> ()
   | _ -> Alcotest.fail "one-step must be unsat from initial state");
  (* multi-step with enough horizon finds it *)
  match Ex.solve_branch_multi multi_prog ~horizon:4 ~target:(0, Branch.Then) with
  | Ex.Sat inputs, _ ->
    check Alcotest.bool "at least 3 steps" true (List.length inputs >= 3);
    check Alcotest.bool "sequence hits target" true
      (hits multi_prog st inputs (0, Branch.Then))
  | Ex.Unsat, _ -> Alcotest.fail "multi-step should find it"
  | Ex.Unknown, _ -> Alcotest.fail "multi-step should find it (unknown)"

let test_multi_step_insufficient_horizon () =
  match Ex.solve_branch_multi multi_prog ~horizon:2 ~target:(0, Branch.Then) with
  | Ex.Unsat, _ -> ()
  | Ex.Sat _, _ -> Alcotest.fail "horizon 2 cannot reach acc >= 2"
  | Ex.Unknown, _ -> ()

let test_one_step_after_state_advance () =
  (* the STCG move: execute to advance the state, then one-step solve *)
  let ex = Exec.handle multi_prog in
  let st = Exec.initial_state ex in
  let tick = Exec.inputs_of_list ex [ ("tick", V.Bool true) ] in
  let _, st1 = Exec.run_step ex st tick in
  let _, st2 = Exec.run_step ex st1 tick in
  (* now acc = 2: the deep branch is trivially reachable in one step *)
  match Ex.solve_branch multi_prog ~state:st2 ~target:(0, Branch.Then) with
  | Ex.Sat inputs, _ ->
    check Alcotest.bool "hits from advanced state" true
      (hits multi_prog st2 inputs (0, Branch.Then))
  | _ -> Alcotest.fail "state-aware solve must succeed at acc=2"

let test_free_decision_before_target () =
  (* an earlier non-ancestor decision changes a local feeding the target *)
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "free";
        inputs =
          [ input "sel" V.Tbool; input "x" (V.tint_range 0 100) ];
        outputs = [ output "y" V.tint ];
        states = [];
        locals = [ local "t" V.tint ];
        body =
          [
            if_ (iv "sel")
              [ assign "t" (iv "x" +: ci 100) ]
              [ assign "t" (iv "x") ];
            if_ (lv "t" >: ci 150)
              [ assign_out "y" (ci 1) ]
              [ assign_out "y" (ci 0) ];
          ];
      }
  in
  let ex = Exec.handle prog in
  let st = Exec.initial_state ex in
  (* t > 150 requires sel && x > 50 *)
  match Ex.solve_branch prog ~state:st ~target:(1, Branch.Then) with
  | Ex.Sat [ ins ], _ ->
    check Alcotest.bool "sel chosen true" true
      (V.to_bool (Exec.find_input ex ins "sel"));
    check Alcotest.bool "x > 50" true
      (V.to_int (Exec.find_input ex ins "x") > 50);
    check Alcotest.bool "hits" true (hits prog st [ ins ] (1, Branch.Then))
  | _ -> Alcotest.fail "expected sat through free decision"

let test_switch_targets () =
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "sw";
        inputs = [ input "op" (V.tint_range 0 9) ];
        outputs = [ output "y" V.tint ];
        states = [];
        locals = [];
        body =
          [
            switch (iv "op")
              [ (1, [ assign_out "y" (ci 10) ]); (2, [ assign_out "y" (ci 20) ]) ]
              [ assign_out "y" (ci 0) ];
          ];
      }
  in
  let ex = Exec.handle prog in
  let st = Exec.initial_state ex in
  let solve_case target expect_pred =
    match Ex.solve_branch prog ~state:st ~target with
    | Ex.Sat [ ins ], _ ->
      let op = V.to_int (Exec.find_input ex ins "op") in
      check Alcotest.bool "op selects the case" true (expect_pred op);
      check Alcotest.bool "hits" true (hits prog st [ ins ] target)
    | _ -> Alcotest.fail "expected sat"
  in
  solve_case (0, Branch.Case 1) (fun op -> op = 1);
  solve_case (0, Branch.Case 2) (fun op -> op = 2);
  solve_case (0, Branch.Default) (fun op -> op <> 1 && op <> 2)

let prop_sat_implies_hit =
  (* random secrets: state-aware solving must always produce a hitting
     input for the state-equality program *)
  QCheck.Test.make ~name:"sat answers hit their target" ~count:60
    QCheck.(int_range 0 1000)
    (fun secret ->
      let st =
        Exec.state_of_list (Exec.handle state_dep_prog)
          [ ("secret", V.Int secret) ]
      in
      match
        Ex.solve_branch state_dep_prog ~state:st ~target:(0, Branch.Then)
      with
      | Ex.Sat inputs, _ -> hits state_dep_prog st inputs (0, Branch.Then)
      | _ -> false)

let test_cost_accounting () =
  let st = Exec.initial_state (Exec.handle nested_prog) in
  let _, cost = Ex.solve_branch nested_prog ~state:st ~target:(1, Branch.Then) in
  check Alcotest.bool "solver was consulted" true (cost.Ex.solver_calls >= 1);
  check Alcotest.bool "terms were submitted" true (cost.Ex.term_nodes > 0)

let () =
  Alcotest.run "symexec"
    [
      ( "one-step",
        [
          Alcotest.test_case "simple then/else" `Quick test_simple_then_else;
          Alcotest.test_case "state constant" `Quick test_state_as_constant;
          Alcotest.test_case "nested target" `Quick test_nested_target;
          Alcotest.test_case "queue match" `Quick test_queue_match;
          Alcotest.test_case "queue empty unsat" `Quick test_queue_unsat_when_empty;
          Alcotest.test_case "state-only guard" `Quick test_state_only_guard_unsat;
          Alcotest.test_case "free decision" `Quick test_free_decision_before_target;
          Alcotest.test_case "switch cases" `Quick test_switch_targets;
          Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
        ] );
      ( "multi-step",
        [
          Alcotest.test_case "needs depth" `Quick test_multi_step_needed;
          Alcotest.test_case "horizon too short" `Quick test_multi_step_insufficient_horizon;
          Alcotest.test_case "state-aware shortcut" `Quick test_one_step_after_state_advance;
        ] );
      ( "props",
        List.map QCheck_alcotest.to_alcotest [ prop_sat_implies_hit ] );
    ]
