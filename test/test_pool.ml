(* Tests for the domain-parallel run pool: result ordering, the
   sequential jobs=1 contract, exception propagation, nested-use
   rejection, pool reuse — and the end-to-end determinism guarantee the
   harness builds on (table3 byte-identical for any worker count). *)

module Pool = Harness.Pool

let check = Alcotest.check

(* Uneven busy-work so jobs genuinely finish out of submission order
   and the stealing path is exercised. *)
let busy i =
  let n = 1_000 * (1 + ((i * 7) mod 13)) in
  let acc = ref 0 in
  for k = 1 to n do
    acc := !acc + (k mod 7)
  done;
  !acc |> ignore

let test_map_ordering () =
  let items = List.init 100 Fun.id in
  let f i =
    busy i;
    i * i
  in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Fmt.str "map order, jobs=%d" jobs)
        expected
        (Pool.parallel_map ~jobs ~oversubscribe:true f items))
    [ 1; 2; 4; 7 ]

let test_empty_and_singleton () =
  check Alcotest.(list int) "empty" [] (Pool.parallel_map ~jobs:4 Fun.id []);
  check Alcotest.(list int) "singleton" [ 42 ]
    (Pool.parallel_map ~jobs:4 (fun x -> x) [ 42 ])

let test_jobs1_is_sequential () =
  (* jobs=1 must be the plain List.map path: same domain, same order of
     side effects *)
  let trace = ref [] in
  let out =
    Pool.parallel_map ~jobs:1
      (fun i ->
        trace := i :: !trace;
        i + 1)
      [ 1; 2; 3 ]
  in
  check Alcotest.(list int) "results" [ 2; 3; 4 ] out;
  check Alcotest.(list int) "effect order" [ 3; 2; 1 ] !trace

let test_run_all () =
  let thunks = List.init 10 (fun i () -> 10 * i) in
  check
    Alcotest.(list int)
    "run_all order"
    (List.init 10 (fun i -> 10 * i))
    (Pool.parallel_run_all ~jobs:3 ~oversubscribe:true thunks)

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Fmt.str "failure surfaces, jobs=%d" jobs)
        (Failure "boom")
        (fun () ->
          ignore
            (Pool.parallel_map ~jobs ~oversubscribe:true
               (fun i -> if i = 5 then failwith "boom" else i)
               (List.init 10 Fun.id))))
    [ 1; 4 ];
  (* the pool survives a failed batch: same pool usable afterwards *)
  Pool.with_pool ~jobs:2 ~oversubscribe:true (fun p ->
      (try ignore (Pool.map p (fun () -> failwith "once") [ () ])
       with Failure _ -> ());
      check
        Alcotest.(list int)
        "pool reusable after failure" [ 1; 2 ]
        (Pool.map p Fun.id [ 1; 2 ]))

let test_nested_use_rejected () =
  (* rejected on the (possibly clamped) default path... *)
  Alcotest.check_raises "nested parallel_map is an error" Pool.Nested_pool
    (fun () ->
      ignore
        (Pool.parallel_map ~jobs:2
           (fun _ -> Pool.parallel_map ~jobs:2 Fun.id [ 1; 2 ])
           [ 1; 2; 3; 4 ]));
  (* ...and from a genuine worker domain *)
  Alcotest.check_raises "nested under real domains too" Pool.Nested_pool
    (fun () ->
      ignore
        (Pool.parallel_map ~jobs:2 ~oversubscribe:true
           (fun _ -> Pool.parallel_map ~jobs:2 Fun.id [ 1; 2 ])
           [ 1; 2; 3; 4 ]))

let test_pool_reuse () =
  Pool.with_pool ~jobs:3 ~oversubscribe:true (fun p ->
      check Alcotest.int "size" 3 (Pool.size p);
      let a = Pool.map p (fun i -> i + 1) (List.init 20 Fun.id) in
      let b = Pool.map p (fun i -> i * 2) (List.init 20 Fun.id) in
      check Alcotest.(list int) "first batch" (List.init 20 (fun i -> i + 1)) a;
      check Alcotest.(list int) "second batch" (List.init 20 (fun i -> i * 2)) b)

let test_map_chunked_matches_map () =
  let items = List.init 53 Fun.id in
  let f i =
    busy i;
    (i * 3) - 7
  in
  let expected = List.map f items in
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs ~oversubscribe:true (fun p ->
          List.iter
            (fun chunk ->
              check
                Alcotest.(list int)
                (Fmt.str "chunked = map, jobs=%d chunk=%d" jobs chunk)
                expected
                (Pool.map_chunked p ~chunk f items))
            [ 0; 1; 3; 7; 8; 53; 100 ]))
    [ 1; 2; 4; 7 ]

let test_map_chunked_empty () =
  Pool.with_pool ~jobs:3 (fun p ->
      check Alcotest.(list int) "empty" [] (Pool.map_chunked p ~chunk:4 Fun.id []))

let test_map_chunked_effect_count () =
  (* every item is mapped exactly once, whatever the chunking *)
  Pool.with_pool ~jobs:1 (fun p ->
      List.iter
        (fun chunk ->
          let hits = Array.make 10 0 in
          ignore
            (Pool.map_chunked p ~chunk
               (fun i ->
                 hits.(i) <- hits.(i) + 1;
                 i)
               (List.init 10 Fun.id));
          check
            Alcotest.(list int)
            (Fmt.str "each item once, chunk=%d" chunk)
            (List.init 10 (fun _ -> 1))
            (Array.to_list hits))
        [ 1; 3; 10; 99 ])

let test_map_chunked_exception () =
  List.iter
    (fun jobs ->
      Pool.with_pool ~jobs ~oversubscribe:true (fun p ->
          Alcotest.check_raises
            (Fmt.str "failure surfaces, jobs=%d" jobs)
            (Failure "chunk-boom")
            (fun () ->
              ignore
                (Pool.map_chunked p ~chunk:4
                   (fun i -> if i = 9 then failwith "chunk-boom" else i)
                   (List.init 20 Fun.id)));
          (* the pool survives and stays usable *)
          check
            Alcotest.(list int)
            "pool reusable after chunked failure" [ 5; 6 ]
            (Pool.map_chunked p ~chunk:2 Fun.id [ 5; 6 ])))
    [ 1; 3 ]

let test_default_jobs_positive () =
  check Alcotest.bool "default_jobs >= 1" true (Pool.default_jobs () >= 1)

let test_effective_jobs_clamp () =
  check Alcotest.int "oversubscribe keeps the request" 8
    (Pool.effective_jobs ~oversubscribe:true 8);
  check Alcotest.bool "clamped to the core count" true
    (Pool.effective_jobs 64 <= max 1 (Domain.recommended_domain_count ()));
  check Alcotest.int "requests below 1 clamp to 1" 1 (Pool.effective_jobs 0);
  Pool.with_pool ~jobs:3 (fun p ->
      check Alcotest.int "size reports the request" 3 (Pool.size p);
      check Alcotest.int "workers reports the clamp" (Pool.effective_jobs 3)
        (Pool.workers p));
  Pool.with_pool ~jobs:3 ~oversubscribe:true (fun p ->
      check Alcotest.int "oversubscribed pool keeps 3 workers" 3
        (Pool.workers p))

(* jobs=8 with the clamp bypassed, so real cross-domain scheduling runs
   on any machine; adversarially uneven job durations (a few huge jobs
   scattered through a tail of tiny ones) plus the cost model, repeated
   on one pool — the merged results must be the sequential list every
   round. *)
let test_stress_oversubscribed_uneven () =
  let items = List.init 150 Fun.id in
  let weight i = if i mod 29 = 3 then 150_000 else 200 + (i * 13 mod 977) in
  let f i =
    let acc = ref 0 in
    for k = 1 to weight i do
      acc := !acc + (k land 15)
    done;
    (i, !acc)
  in
  let expected = List.map f items in
  Pool.with_pool ~jobs:8 ~oversubscribe:true (fun p ->
      for round = 1 to 3 do
        check
          Alcotest.(list (pair int int))
          (Fmt.str "stress round %d (cost-ordered)" round)
          expected
          (Pool.map p ~cost:weight f items)
      done;
      check
        Alcotest.(list (pair int int))
        "stress without cost model" expected (Pool.map p f items))

(* The harness-level guarantee the whole refactor exists for: the same
   job matrix merged in job-index order gives byte-identical artifacts
   whatever the worker count. *)
let test_table3_determinism () =
  let run jobs =
    (* oversubscribed pool so jobs=4 runs four real domains even on a
       smaller machine — the clamp must never be what makes this pass *)
    Pool.with_pool ~jobs ~oversubscribe:true (fun pool ->
        Harness.Experiment.table3 ~budget:30.0 ~seeds:[ 1; 2 ]
          ~models:[ "CPUTask"; "AFC" ] ~pool ())
  in
  let rows1, text1 = run 1 in
  let rows4, text4 = run 4 in
  check Alcotest.string "rendered table identical (jobs=4 vs jobs=1)" text1
    text4;
  check Alcotest.int "row count" (List.length rows1) (List.length rows4);
  List.iter2
    (fun (a : Harness.Experiment.averaged) (b : Harness.Experiment.averaged) ->
      check Alcotest.string "row model" a.Harness.Experiment.a_model
        b.Harness.Experiment.a_model;
      check Alcotest.bool
        (Fmt.str "row %s/%s equal" a.Harness.Experiment.a_model
           (Harness.Experiment.tool_name a.Harness.Experiment.a_tool))
        true (a = b))
    rows1 rows4

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map ordering" `Quick test_map_ordering;
          Alcotest.test_case "empty + singleton" `Quick test_empty_and_singleton;
          Alcotest.test_case "jobs=1 sequential" `Quick test_jobs1_is_sequential;
          Alcotest.test_case "run_all" `Quick test_run_all;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagation;
          Alcotest.test_case "nested use rejected" `Quick
            test_nested_use_rejected;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "map_chunked = map (any jobs/chunk)" `Quick
            test_map_chunked_matches_map;
          Alcotest.test_case "map_chunked empty" `Quick test_map_chunked_empty;
          Alcotest.test_case "map_chunked maps each item once" `Quick
            test_map_chunked_effect_count;
          Alcotest.test_case "map_chunked exception propagation" `Quick
            test_map_chunked_exception;
          Alcotest.test_case "default jobs" `Quick test_default_jobs_positive;
          Alcotest.test_case "effective jobs clamp" `Quick
            test_effective_jobs_clamp;
          Alcotest.test_case "oversubscribed uneven stress" `Quick
            test_stress_oversubscribed_uneven;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "table3 jobs=4 = jobs=1" `Quick
            test_table3_determinism;
        ] );
    ]
