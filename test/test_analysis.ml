(* Tests for lib/analysis: verdict goldens on the registry models,
   directed diagnostics on hand-built programs, widening soundness, and
   the engine's dead-objective skip (justified coverage reporting plus
   testcase equivalence against the no-analysis run). *)

module V = Slim.Value
module Ir = Slim.Ir
module Branch = Slim.Branch
module Analyzer = Analysis.Analyzer
module Verdict = Analysis.Verdict
module Diag = Analysis.Diag
module Lint = Analysis.Lint
module Engine = Stcg.Engine
module Tracker = Coverage.Tracker

let check = Alcotest.check

let registry_prog name =
  match Models.Registry.find name with
  | Some e -> e.Models.Registry.program ()
  | None -> Alcotest.failf "registry model %s missing" name

let dead_branches name =
  Verdict.dead_branches (Verdict.of_program (registry_prog name))

let has_branch key l = List.exists (Branch.equal_key key) l

let codes prog =
  List.map (fun (d : Diag.t) -> Diag.code_id d.Diag.d_code) (Lint.run prog)

(* --- registry verdict goldens ------------------------------------------ *)

(* AFC decision 17 has a constant-false guard: its then branch is
   statically dead (also reported as A102 by the linter). *)
let test_afc_dead () =
  let dead = dead_branches "AFC" in
  check Alcotest.bool "AFC (17, Then) dead" true
    (has_branch (17, Branch.Then) dead);
  check Alcotest.int "AFC one dead branch" 1 (List.length dead)

(* NICProtocol's dead transition sits inside a chart dispatch (A402). *)
let test_nic_dead () =
  let dead = dead_branches "NICProtocol" in
  check Alcotest.bool "NIC (16, Then) dead" true
    (has_branch (16, Branch.Then) dead);
  check Alcotest.int "NIC one dead branch" 1 (List.length dead)

(* LEDLC dispatches over enumerations whose defaults can never fire. *)
let test_ledlc_dead () =
  let dead = dead_branches "LEDLC" in
  List.iter
    (fun d ->
      check Alcotest.bool (Fmt.str "LEDLC (%d, Default) dead" d) true
        (has_branch (d, Branch.Default) dead))
    [ 16; 17; 18; 19; 24 ];
  check Alcotest.int "LEDLC five dead branches" 5 (List.length dead)

let test_tcp_clean () =
  let s = Verdict.of_program (registry_prog "TCP") in
  let b, c, m = Verdict.counts s Verdict.Dead in
  check Alcotest.(triple int int int) "TCP no dead objectives" (0, 0, 0)
    (b, c, m);
  check Alcotest.(list string) "TCP lints clean" []
    (codes (registry_prog "TCP"))

(* Every registry model's analysis must terminate within the fixpoint
   hard cap (no fallback-to-top escape needed) and produce verdicts for
   every branch objective. *)
let test_registry_total () =
  List.iter
    (fun (e : Models.Registry.entry) ->
      let prog = e.Models.Registry.program () in
      let r = Analyzer.analyze prog in
      check Alcotest.bool
        (Fmt.str "%s iterations positive" e.Models.Registry.name)
        true (r.Analyzer.r_iterations > 0);
      let summary = Verdict.of_result r in
      check Alcotest.int
        (Fmt.str "%s verdict per branch" e.Models.Registry.name)
        (Branch.count prog)
        (List.length summary.Verdict.v_branches))
    Models.Registry.entries

(* --- directed diagnostics ---------------------------------------------- *)

let simple ?(inputs = []) ?(states = []) ?(locals = []) ?(outputs = [])
    body =
  let prog =
    Ir.renumber_decisions
      { Ir.name = "t"; inputs; outputs; states; locals; body }
  in
  Ir.type_check prog;
  prog

let test_diag_const_guards () =
  let prog =
    simple
      ~inputs:[ Ir.input "x" (V.tint_range 0 10) ]
      ~outputs:[ Ir.output "y" V.Tbool; Ir.output "z" V.Tbool ]
      Ir.
        [
          if_ (iv "x" >=: ci 0)
            [ assign_out "y" (cb true) ]
            [ assign_out "y" (cb false) ];
          if_ (iv "x" >: ci 20)
            [ assign_out "z" (cb true) ]
            [ assign_out "z" (cb false) ];
        ]
  in
  check Alcotest.(list string) "A101 + A102" [ "A101"; "A102" ] (codes prog);
  let s = Verdict.of_program prog in
  check Alcotest.bool "else of always-true guard dead" true
    (has_branch (0, Branch.Else) (Verdict.dead_branches s));
  check Alcotest.bool "then of always-false guard dead" true
    (has_branch (1, Branch.Then) (Verdict.dead_branches s))

let test_diag_switch () =
  let prog =
    simple
      ~inputs:[ Ir.input "op" (V.tint_range 0 2) ]
      ~outputs:[ Ir.output "y" V.tint ]
      Ir.
        [
          switch (iv "op")
            [ (0, [ assign_out "y" (ci 1) ]);
              (1, [ assign_out "y" (ci 2) ]);
              (5, [ assign_out "y" (ci 3) ]) ]
            [ assign_out "y" (ci 4) ];
        ]
  in
  check Alcotest.(list string) "A103 for case 5" [ "A103" ] (codes prog);
  let dead = Verdict.dead_branches (Verdict.of_program prog) in
  check Alcotest.bool "case 5 dead" true (has_branch (0, Branch.Case 5) dead);
  (* Exhaustive cases kill the default. *)
  let prog =
    simple
      ~inputs:[ Ir.input "op" (V.tint_range 0 1) ]
      ~outputs:[ Ir.output "y" V.tint ]
      Ir.
        [
          switch (iv "op")
            [ (0, [ assign_out "y" (ci 1) ]); (1, [ assign_out "y" (ci 2) ]) ]
            [ assign_out "y" (ci 3) ];
        ]
  in
  check Alcotest.(list string) "A104 for default" [ "A104" ] (codes prog);
  let dead = Verdict.dead_branches (Verdict.of_program prog) in
  check Alcotest.bool "default dead" true (has_branch (0, Branch.Default) dead)

let test_diag_locals () =
  let prog =
    simple
      ~inputs:[ Ir.input "x" V.tint ]
      ~outputs:[ Ir.output "y" V.tint ]
      ~locals:[ Ir.local "t" V.tint ]
      Ir.[ assign_out "y" (lv "t" +: iv "x") ]
  in
  check Alcotest.(list string) "A201 uninit read" [ "A201" ] (codes prog);
  let prog =
    simple
      ~inputs:[ Ir.input "x" V.tint ]
      ~outputs:[ Ir.output "y" V.tint ]
      ~locals:[ Ir.local "t" V.tint ]
      Ir.
        [
          assign "t" (iv "x");
          assign "t" (iv "x" +: ci 1);
          assign_out "y" (lv "t");
        ]
  in
  check Alcotest.(list string) "A202 dead store" [ "A202" ] (codes prog)

let test_diag_index () =
  let vec3 = V.Tvec (V.tint, 3) in
  let prog =
    simple
      ~inputs:[ Ir.input "i" (V.tint_range 0 5) ]
      ~outputs:[ Ir.output "y" V.tint ]
      ~states:[ Ir.state "buf" vec3 (V.Vec [| V.Int 0; V.Int 0; V.Int 0 |]) ]
      Ir.[ assign_out "y" (index (sv "buf") (iv "i")) ]
  in
  check Alcotest.(list string) "A301 may-OOB" [ "A301" ] (codes prog);
  let prog =
    simple
      ~outputs:[ Ir.output "y" V.tint ]
      ~states:[ Ir.state "buf" vec3 (V.Vec [| V.Int 0; V.Int 0; V.Int 0 |]) ]
      Ir.[ assign_out "y" (index (sv "buf") (ci 7)) ]
  in
  check Alcotest.bool "A302 always-OOB" true (List.mem "A302" (codes prog))

(* --- widening: unbounded-ish state must terminate soundly -------------- *)

let test_widening_sound () =
  let prog =
    simple
      ~outputs:[ Ir.output "y" V.Tbool ]
      ~states:[ Ir.state "c" V.tint (V.Int 0) ]
      Ir.
        [
          assign_out "y" (cb false);
          assign_state "c" (sv "c" +: ci 1);
          if_ (sv "c" >: ci 500_000) [ assign_out "y" (cb true) ] [];
        ]
  in
  let r = Analyzer.analyze prog in
  check Alcotest.bool "widening applied" true (r.Analyzer.r_widenings > 0);
  (* The counter really can exceed the threshold, so the branch must not
     be proven dead. *)
  check Alcotest.bool "growing counter branch not dead" true
    (Analyzer.branch_reach r (0, Branch.Then) <> Analyzer.Never)

(* --- engine: dead-objective skip --------------------------------------- *)

(* x : int [0,10]; decision 0's then branch needs x > 20 — statically
   dead; decision 1 is coverable both ways. *)
let dead_demo =
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "dead_demo";
        inputs = [ input "x" (V.tint_range 0 10) ];
        outputs = [ output "y" V.Tbool ];
        states = [];
        locals = [];
        body =
          [
            assign_out "y" (cb false);
            if_ (iv "x" >: ci 20) [ assign_out "y" (cb true) ] [];
            if_ (iv "x" >: ci 5) [ assign_out "y" (cb true) ] [];
          ];
      }
  in
  type_check prog;
  prog

let tel_skipped = Telemetry.Counter.make "engine.objectives_skipped_dead"

let tc_essence (r : Engine.run) =
  List.map
    (fun (tc : Stcg.Testcase.t) ->
      (List.map Array.to_list tc.Stcg.Testcase.steps,
       tc.Stcg.Testcase.new_branches))
    r.Engine.r_testcases

let steps_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (sa, ba) (sb, bb) ->
         ba = bb
         && List.length sa = List.length sb
         && List.for_all2
              (fun ra rb ->
                List.length ra = List.length rb
                && List.for_all2 V.equal ra rb)
              sa sb)
       a b

let test_engine_skip () =
  Telemetry.enable ();
  Telemetry.reset ();
  let cfg analyze =
    { Engine.default_config with Engine.budget = 60.0; seed = 11; analyze }
  in
  let plain = Engine.run ~config:(cfg false) dead_demo in
  check Alcotest.int "no skip without analyze" 0
    (Telemetry.Counter.total tel_skipped);
  let analyzed = Engine.run ~config:(cfg true) dead_demo in
  (* 1 dead branch + 1 dead condition value + 1 degenerate MCDC pair. *)
  check Alcotest.int "skipped objective count" 3
    (Telemetry.Counter.total tel_skipped);
  let jb, jc, jm = Tracker.justified_counts analyzed.Engine.r_tracker in
  check Alcotest.(triple int int int) "justified counts" (1, 1, 1)
    (jb, jc, jm);
  (* Justification shrinks the decision denominator: 4 branches -> 3. *)
  let d = Tracker.decision analyzed.Engine.r_tracker in
  check Alcotest.int "justified decision total" 3 d.Tracker.total;
  check Alcotest.int "justified decision covered" 3 d.Tracker.covered;
  (* With the dead objective justified the run provably saturates; the
     plain run can never cover (0, Then) and must burn its budget. *)
  check Alcotest.bool "analyzed run saturates" true
    (analyzed.Engine.r_stop = Engine.Full_coverage);
  check Alcotest.bool "plain run exhausts budget" true
    (plain.Engine.r_stop = Engine.Budget_exhausted);
  let dp = Tracker.decision plain.Engine.r_tracker in
  check Alcotest.int "plain decision total" 4 dp.Tracker.total;
  check Alcotest.int "plain decision covered" 3 dp.Tracker.covered;
  (* Skipping dead objectives only removes Unsat solver calls, so both
     runs synthesize the same test cases for the live objectives. *)
  check Alcotest.bool "identical testcases" true
    (steps_equal (tc_essence plain) (tc_essence analyzed));
  Telemetry.reset ();
  Telemetry.disable ()

(* --- lint rendering ----------------------------------------------------- *)

let test_lint_lines () =
  check Alcotest.(list string) "clean model renders clean"
    [ "t: clean" ]
    (Lint.to_lines ~model:"t"
       (Lint.run
          (simple ~outputs:[ Ir.output "y" V.tint ]
             Ir.[ assign_out "y" (ci 1) ])));
  let lines = Lint.to_lines ~model:"AFC" (Lint.run (registry_prog "AFC")) in
  check Alcotest.bool "AFC lint mentions A102" true
    (List.exists
       (fun l ->
         String.length l >= 4
         && (let has_sub s sub =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length s
                 && (String.sub s i n = sub || go (i + 1))
               in
               go 0
             in
             has_sub l "A102"))
       lines)

let () =
  Alcotest.run "analysis"
    [
      ( "registry goldens",
        [
          Alcotest.test_case "AFC dead branch" `Quick test_afc_dead;
          Alcotest.test_case "NICProtocol dead transition" `Quick test_nic_dead;
          Alcotest.test_case "LEDLC dead defaults" `Quick test_ledlc_dead;
          Alcotest.test_case "TCP clean" `Quick test_tcp_clean;
          Alcotest.test_case "all models total" `Quick test_registry_total;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "constant guards" `Quick test_diag_const_guards;
          Alcotest.test_case "switch reachability" `Quick test_diag_switch;
          Alcotest.test_case "local lifetimes" `Quick test_diag_locals;
          Alcotest.test_case "index ranges" `Quick test_diag_index;
          Alcotest.test_case "lint rendering" `Quick test_lint_lines;
        ] );
      ( "soundness",
        [ Alcotest.test_case "widening terminates soundly" `Quick
            test_widening_sound ] );
      ( "engine skip",
        [ Alcotest.test_case "dead objective justified+skipped" `Quick
            test_engine_skip ] );
    ]
