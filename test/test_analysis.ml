(* Tests for lib/analysis: verdict goldens on the registry models,
   directed diagnostics on hand-built programs, widening soundness, and
   the engine's dead-objective skip (justified coverage reporting plus
   testcase equivalence against the no-analysis run). *)

module V = Slim.Value
module Ir = Slim.Ir
module Branch = Slim.Branch
module Analyzer = Analysis.Analyzer
module Verdict = Analysis.Verdict
module Diag = Analysis.Diag
module Lint = Analysis.Lint
module Engine = Stcg.Engine
module Tracker = Coverage.Tracker

let check = Alcotest.check

let registry_prog name =
  match Models.Registry.find name with
  | Some e -> e.Models.Registry.program ()
  | None -> Alcotest.failf "registry model %s missing" name

let dead_branches name =
  Verdict.dead_branches (Verdict.of_program (registry_prog name))

let has_branch key l = List.exists (Branch.equal_key key) l

let codes prog =
  List.map (fun (d : Diag.t) -> Diag.code_id d.Diag.d_code) (Lint.run prog)

(* --- registry verdict goldens ------------------------------------------ *)

(* AFC decision 17 has a constant-false guard: its then branch is
   statically dead (also reported as A102 by the linter). *)
let test_afc_dead () =
  let dead = dead_branches "AFC" in
  check Alcotest.bool "AFC (17, Then) dead" true
    (has_branch (17, Branch.Then) dead);
  check Alcotest.int "AFC one dead branch" 1 (List.length dead)

(* NICProtocol's dead transition sits inside a chart dispatch (A402). *)
let test_nic_dead () =
  let dead = dead_branches "NICProtocol" in
  check Alcotest.bool "NIC (16, Then) dead" true
    (has_branch (16, Branch.Then) dead);
  check Alcotest.int "NIC one dead branch" 1 (List.length dead)

(* LEDLC dispatches over enumerations whose defaults can never fire. *)
let test_ledlc_dead () =
  let dead = dead_branches "LEDLC" in
  List.iter
    (fun d ->
      check Alcotest.bool (Fmt.str "LEDLC (%d, Default) dead" d) true
        (has_branch (d, Branch.Default) dead))
    [ 16; 17; 18; 19; 24 ];
  check Alcotest.int "LEDLC five dead branches" 5 (List.length dead)

let test_tcp_clean () =
  let s = Verdict.of_program (registry_prog "TCP") in
  let b, c, m = Verdict.counts s Verdict.Dead in
  check Alcotest.(triple int int int) "TCP no dead objectives" (0, 0, 0)
    (b, c, m);
  check Alcotest.(list string) "TCP lints clean" []
    (codes (registry_prog "TCP"))

(* Every registry model's analysis must terminate within the fixpoint
   hard cap (no fallback-to-top escape needed) and produce verdicts for
   every branch objective. *)
let test_registry_total () =
  List.iter
    (fun (e : Models.Registry.entry) ->
      let prog = e.Models.Registry.program () in
      let r = Analyzer.analyze prog in
      check Alcotest.bool
        (Fmt.str "%s iterations positive" e.Models.Registry.name)
        true (r.Analyzer.r_iterations > 0);
      let summary = Verdict.of_result r in
      check Alcotest.int
        (Fmt.str "%s verdict per branch" e.Models.Registry.name)
        (Branch.count prog)
        (List.length summary.Verdict.v_branches))
    Models.Registry.entries

(* --- directed diagnostics ---------------------------------------------- *)

let simple ?(inputs = []) ?(states = []) ?(locals = []) ?(outputs = [])
    body =
  let prog =
    Ir.renumber_decisions
      { Ir.name = "t"; inputs; outputs; states; locals; body }
  in
  Ir.type_check prog;
  prog

let test_diag_const_guards () =
  let prog =
    simple
      ~inputs:[ Ir.input "x" (V.tint_range 0 10) ]
      ~outputs:[ Ir.output "y" V.Tbool; Ir.output "z" V.Tbool ]
      Ir.
        [
          if_ (iv "x" >=: ci 0)
            [ assign_out "y" (cb true) ]
            [ assign_out "y" (cb false) ];
          if_ (iv "x" >: ci 20)
            [ assign_out "z" (cb true) ]
            [ assign_out "z" (cb false) ];
        ]
  in
  check Alcotest.(list string) "A101 + A102" [ "A101"; "A102" ] (codes prog);
  let s = Verdict.of_program prog in
  check Alcotest.bool "else of always-true guard dead" true
    (has_branch (0, Branch.Else) (Verdict.dead_branches s));
  check Alcotest.bool "then of always-false guard dead" true
    (has_branch (1, Branch.Then) (Verdict.dead_branches s))

let test_diag_switch () =
  let prog =
    simple
      ~inputs:[ Ir.input "op" (V.tint_range 0 2) ]
      ~outputs:[ Ir.output "y" V.tint ]
      Ir.
        [
          switch (iv "op")
            [ (0, [ assign_out "y" (ci 1) ]);
              (1, [ assign_out "y" (ci 2) ]);
              (5, [ assign_out "y" (ci 3) ]) ]
            [ assign_out "y" (ci 4) ];
        ]
  in
  check Alcotest.(list string) "A103 for case 5" [ "A103" ] (codes prog);
  let dead = Verdict.dead_branches (Verdict.of_program prog) in
  check Alcotest.bool "case 5 dead" true (has_branch (0, Branch.Case 5) dead);
  (* Exhaustive cases kill the default. *)
  let prog =
    simple
      ~inputs:[ Ir.input "op" (V.tint_range 0 1) ]
      ~outputs:[ Ir.output "y" V.tint ]
      Ir.
        [
          switch (iv "op")
            [ (0, [ assign_out "y" (ci 1) ]); (1, [ assign_out "y" (ci 2) ]) ]
            [ assign_out "y" (ci 3) ];
        ]
  in
  check Alcotest.(list string) "A104 for default" [ "A104" ] (codes prog);
  let dead = Verdict.dead_branches (Verdict.of_program prog) in
  check Alcotest.bool "default dead" true (has_branch (0, Branch.Default) dead)

let test_diag_locals () =
  let prog =
    simple
      ~inputs:[ Ir.input "x" V.tint ]
      ~outputs:[ Ir.output "y" V.tint ]
      ~locals:[ Ir.local "t" V.tint ]
      Ir.[ assign_out "y" (lv "t" +: iv "x") ]
  in
  check Alcotest.(list string) "A201 uninit read" [ "A201" ] (codes prog);
  let prog =
    simple
      ~inputs:[ Ir.input "x" V.tint ]
      ~outputs:[ Ir.output "y" V.tint ]
      ~locals:[ Ir.local "t" V.tint ]
      Ir.
        [
          assign "t" (iv "x");
          assign "t" (iv "x" +: ci 1);
          assign_out "y" (lv "t");
        ]
  in
  check Alcotest.(list string) "A202 dead store" [ "A202" ] (codes prog)

let test_diag_index () =
  let vec3 = V.Tvec (V.tint, 3) in
  let prog =
    simple
      ~inputs:[ Ir.input "i" (V.tint_range 0 5) ]
      ~outputs:[ Ir.output "y" V.tint ]
      ~states:[ Ir.state "buf" vec3 (V.Vec [| V.Int 0; V.Int 0; V.Int 0 |]) ]
      Ir.[ assign_out "y" (index (sv "buf") (iv "i")) ]
  in
  check Alcotest.(list string) "A301 may-OOB" [ "A301" ] (codes prog);
  let prog =
    simple
      ~outputs:[ Ir.output "y" V.tint ]
      ~states:[ Ir.state "buf" vec3 (V.Vec [| V.Int 0; V.Int 0; V.Int 0 |]) ]
      Ir.[ assign_out "y" (index (sv "buf") (ci 7)) ]
  in
  check Alcotest.bool "A302 always-OOB" true (List.mem "A302" (codes prog))

(* --- widening: unbounded-ish state must terminate soundly -------------- *)

let test_widening_sound () =
  let prog =
    simple
      ~outputs:[ Ir.output "y" V.Tbool ]
      ~states:[ Ir.state "c" V.tint (V.Int 0) ]
      Ir.
        [
          assign_out "y" (cb false);
          assign_state "c" (sv "c" +: ci 1);
          if_ (sv "c" >: ci 500_000) [ assign_out "y" (cb true) ] [];
        ]
  in
  let r = Analyzer.analyze prog in
  check Alcotest.bool "widening applied" true (r.Analyzer.r_widenings > 0);
  (* The counter really can exceed the threshold, so the branch must not
     be proven dead. *)
  check Alcotest.bool "growing counter branch not dead" true
    (Analyzer.branch_reach r (0, Branch.Then) <> Analyzer.Never)

(* --- engine: dead-objective skip --------------------------------------- *)

(* x : int [0,10]; decision 0's then branch needs x > 20 — statically
   dead; decision 1 is coverable both ways. *)
let dead_demo =
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "dead_demo";
        inputs = [ input "x" (V.tint_range 0 10) ];
        outputs = [ output "y" V.Tbool ];
        states = [];
        locals = [];
        body =
          [
            assign_out "y" (cb false);
            if_ (iv "x" >: ci 20) [ assign_out "y" (cb true) ] [];
            if_ (iv "x" >: ci 5) [ assign_out "y" (cb true) ] [];
          ];
      }
  in
  type_check prog;
  prog

let tel_skipped = Telemetry.Counter.make "engine.objectives_skipped_dead"

let tc_essence (r : Engine.run) =
  List.map
    (fun (tc : Stcg.Testcase.t) ->
      (List.map Array.to_list tc.Stcg.Testcase.steps,
       tc.Stcg.Testcase.new_branches))
    r.Engine.r_testcases

let steps_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (sa, ba) (sb, bb) ->
         ba = bb
         && List.length sa = List.length sb
         && List.for_all2
              (fun ra rb ->
                List.length ra = List.length rb
                && List.for_all2 V.equal ra rb)
              sa sb)
       a b

let test_engine_skip () =
  Telemetry.enable ();
  Telemetry.reset ();
  let cfg analyze =
    { Engine.default_config with Engine.budget = 60.0; seed = 11; analyze }
  in
  let plain = Engine.run ~config:(cfg false) dead_demo in
  check Alcotest.int "no skip without analyze" 0
    (Telemetry.Counter.total tel_skipped);
  let analyzed = Engine.run ~config:(cfg true) dead_demo in
  (* 1 dead branch + 1 dead condition value + 1 degenerate MCDC pair. *)
  check Alcotest.int "skipped objective count" 3
    (Telemetry.Counter.total tel_skipped);
  let jb, jc, jm = Tracker.justified_counts analyzed.Engine.r_tracker in
  check Alcotest.(triple int int int) "justified counts" (1, 1, 1)
    (jb, jc, jm);
  (* Justification shrinks the decision denominator: 4 branches -> 3. *)
  let d = Tracker.decision analyzed.Engine.r_tracker in
  check Alcotest.int "justified decision total" 3 d.Tracker.total;
  check Alcotest.int "justified decision covered" 3 d.Tracker.covered;
  (* With the dead objective justified the run provably saturates; the
     plain run can never cover (0, Then) and must burn its budget. *)
  check Alcotest.bool "analyzed run saturates" true
    (analyzed.Engine.r_stop = Engine.Full_coverage);
  check Alcotest.bool "plain run exhausts budget" true
    (plain.Engine.r_stop = Engine.Budget_exhausted);
  let dp = Tracker.decision plain.Engine.r_tracker in
  check Alcotest.int "plain decision total" 4 dp.Tracker.total;
  check Alcotest.int "plain decision covered" 3 dp.Tracker.covered;
  (* Skipping dead objectives only removes Unsat solver calls, so both
     runs synthesize the same test cases for the live objectives. *)
  check Alcotest.bool "identical testcases" true
    (steps_equal (tc_essence plain) (tc_essence analyzed));
  Telemetry.reset ();
  Telemetry.disable ()

(* --- lint rendering ----------------------------------------------------- *)

let test_lint_lines () =
  check Alcotest.(list string) "clean model renders clean"
    [ "t: clean" ]
    (Lint.to_lines ~model:"t"
       (Lint.run
          (simple ~outputs:[ Ir.output "y" V.tint ]
             Ir.[ assign_out "y" (ci 1) ])));
  let lines = Lint.to_lines ~model:"AFC" (Lint.run (registry_prog "AFC")) in
  check Alcotest.bool "AFC lint mentions A102" true
    (List.exists
       (fun l ->
         String.length l >= 4
         && (let has_sub s sub =
               let n = String.length sub in
               let rec go i =
                 i + n <= String.length s
                 && (String.sub s i n = sub || go (i + 1))
               in
               go 0
             in
             has_sub l "A102"))
       lines)

(* --- octagon domain ----------------------------------------------------- *)

let oct_cfg = { Analyzer.domain = `Octagon }

(* Octagon fixpoints of the registry models, shared across the tests
   below (the analysis is deterministic, so memoizing is safe). *)
let oct_result =
  let tbl = Hashtbl.create 8 in
  fun (e : Models.Registry.entry) ->
    match Hashtbl.find_opt tbl e.Models.Registry.name with
    | Some r -> r
    | None ->
      let r = Analyzer.analyze ~config:oct_cfg (e.Models.Registry.program ()) in
      Hashtbl.replace tbl e.Models.Registry.name r;
      r

(* Soundness: every concretely sampled execution state lies inside the
   octagon-reduced abstract state. *)
let sample_contained (e : Models.Registry.entry) ~seed ~trials ~steps =
  let prog = e.Models.Registry.program () in
  let r = oct_result e in
  let absvals = Array.of_list (List.map snd r.Analyzer.r_state) in
  let h = Slim.Exec.compile prog in
  let rng = Random.State.make [| seed |] in
  let ok = ref true in
  for _ = 1 to trials do
    let st = ref (Slim.Exec.initial_state h) in
    for _ = 1 to steps do
      let inp = Slim.Exec.random_inputs rng h in
      let _, st' = Slim.Exec.run_step h !st inp in
      st := st';
      Array.iteri
        (fun i v ->
          if not (Analysis.Absval.member absvals.(i) v) then ok := false)
        !st
    done
  done;
  !ok

let test_octagon_containment () =
  List.iter
    (fun (e : Models.Registry.entry) ->
      check Alcotest.bool
        (Fmt.str "%s: sampled states contained" e.Models.Registry.name)
        true
        (sample_contained e ~seed:42 ~trials:5 ~steps:30))
    Models.Registry.entries

let prop_octagon_contains =
  let entries = Array.of_list Models.Registry.entries in
  QCheck.Test.make ~name:"octagon fixpoint contains sampled executions"
    ~count:40 QCheck.small_nat (fun seed ->
      sample_contained entries.(seed mod Array.length entries)
        ~seed:(seed + 1000) ~trials:1 ~steps:25)

(* The two domains are both sound, so wherever both decide they must
   agree — checked over every objective of every registry model. *)
let test_octagon_no_contradiction () =
  List.iter
    (fun (e : Models.Registry.entry) ->
      let name = e.Models.Registry.name in
      let si = Verdict.of_result (Analyzer.analyze (e.Models.Registry.program ())) in
      let so = Verdict.of_result (oct_result e) in
      let agree vi vo =
        vi = Verdict.Unknown || vo = Verdict.Unknown || vi = vo
      in
      List.iter2
        (fun (k, vi) (_, vo) ->
          check Alcotest.bool
            (Fmt.str "%s branch %a verdicts agree" name Branch.pp_key k)
            true (agree vi vo))
        si.Verdict.v_branches so.Verdict.v_branches;
      List.iter2
        (fun ((d, i, v), vi) (_, vo) ->
          check Alcotest.bool
            (Fmt.str "%s condition (%d,%d,%b) verdicts agree" name d i v)
            true (agree vi vo))
        si.Verdict.v_conditions so.Verdict.v_conditions;
      List.iter2
        (fun ((d, i), vi) (_, vo) ->
          check Alcotest.bool
            (Fmt.str "%s mcdc (%d,%d) verdicts agree" name d i)
            true (agree vi vo))
        si.Verdict.v_mcdc so.Verdict.v_mcdc)
    Models.Registry.entries

(* Pinned relational win: UTPC's defensive dual-redundancy trip (the
   rolling code is stored twice from the same bus value, so the
   divergence guard is dead by construction).  The octagon derives
   pending_code - pending_chk = 0 and kills decision 4; the interval
   domain sees two independent [0,4095] stores and must stay Unknown. *)
let test_octagon_utpc_win () =
  let prog = registry_prog "UTPC" in
  let si = Verdict.of_program prog in
  let so = Verdict.of_program ~config:oct_cfg prog in
  let vd = Alcotest.testable Verdict.pp ( = ) in
  check vd "interval branch (4, Then) unknown" Verdict.Unknown
    (Verdict.branch si (4, Branch.Then));
  check vd "octagon branch (4, Then) dead" Verdict.Dead
    (Verdict.branch so (4, Branch.Then));
  check vd "interval condition (4,0,true) unknown" Verdict.Unknown
    (Verdict.condition si 4 0 true);
  check vd "octagon condition (4,0,true) dead" Verdict.Dead
    (Verdict.condition so 4 0 true);
  check vd "interval mcdc (4,0) unknown" Verdict.Unknown (Verdict.mcdc si 4 0);
  check vd "octagon mcdc (4,0) dead" Verdict.Dead (Verdict.mcdc so 4 0)

(* --- snapshot-refined verdicts ------------------------------------------ *)

let unknown_total s =
  let b, c, m = Verdict.counts s Verdict.Unknown in
  b + c + m

let test_snapshot_refinement () =
  let strictly_reduced = ref 0 in
  List.iter
    (fun (e : Models.Registry.entry) ->
      let name = e.Models.Registry.name in
      let prog = e.Models.Registry.program () in
      let s0 = Verdict.of_program prog in
      let h = Slim.Exec.compile prog in
      let rng = Random.State.make [| 7 |] in
      let seeds = ref [] in
      let st = ref (Slim.Exec.initial_state h) in
      for _ = 1 to 40 do
        let inp = Slim.Exec.random_inputs rng h in
        let _, st' = Slim.Exec.run_step h !st inp in
        st := st';
        seeds := Array.copy st' :: !seeds
      done;
      let s1 = Verdict.refine s0 ~seeds:!seeds in
      (* decided verdicts never change *)
      List.iter2
        (fun (_, v0) (_, v1) ->
          if v0 <> Verdict.Unknown then
            check Alcotest.bool (Fmt.str "%s decided branch stable" name)
              true (v0 = v1))
        s0.Verdict.v_branches s1.Verdict.v_branches;
      let u0 = unknown_total s0 and u1 = unknown_total s1 in
      check Alcotest.bool (Fmt.str "%s refinement monotone" name) true
        (u1 <= u0);
      if u1 < u0 then incr strictly_reduced)
    Models.Registry.entries;
  (* the acceptance bar: at least two registry models strictly reduce
     their Unknown count from concretely reached snapshots *)
  check Alcotest.bool "at least two models strictly reduce" true
    (!strictly_reduced >= 2)

(* --- engine: verdict priority ------------------------------------------- *)

(* x drives a saturating counter; the interesting decision needs both
   count >= 5 (multi-step) and the magic key input, so the random-first
   phase covers the easy objectives while the key-dependent ones need
   the solver — and early tree nodes (count small) prove one-step Unsat
   statically, so the prune fires on a run that still saturates. *)
let vp_demo =
  let open Ir in
  let prog =
    renumber_decisions
      {
        name = "vp_demo";
        inputs =
          [ input "x" (V.tint_range 0 3); input "k" (V.tint_range 0 2000) ];
        outputs = [ output "hi" V.Tbool; output "lo" V.Tbool ];
        states = [ state "count" (V.tint_range 0 50) (V.Int 0) ];
        locals = [];
        body =
          [
            assign_out "hi" (cb false);
            assign_out "lo" (cb false);
            assign_state "count" (Binop (Min, ci 50, sv "count" +: iv "x"));
            if_
              (sv "count" >=: ci 5 &&: (iv "k" =: ci 999))
              [ assign_out "hi" (cb true) ]
              [];
            if_ (ci 1 >: ci 0) [ assign_out "lo" (cb true) ] [];
          ];
      }
  in
  type_check prog;
  prog

let tel_pruned = Telemetry.Counter.make "engine.solves_pruned_static"
let tel_attempts = Telemetry.Counter.make "engine.solve_attempts"
let tel_reanalyses = Telemetry.Counter.make "engine.reanalyses"

let test_engine_verdict_priority () =
  Telemetry.enable ();
  Telemetry.reset ();
  let cfg vp =
    {
      Engine.default_config with
      Engine.budget = 120.0;
      seed = 5;
      analyze = true;
      random_first = true;
      verdict_priority = vp;
    }
  in
  let off = Engine.run ~config:(cfg false) vp_demo in
  let attempts_off = Telemetry.Counter.total tel_attempts in
  check Alcotest.int "no prune with the flag off" 0
    (Telemetry.Counter.total tel_pruned);
  Telemetry.reset ();
  let on = Engine.run ~config:(cfg true) vp_demo in
  let attempts_on = Telemetry.Counter.total tel_attempts in
  let pruned = Telemetry.Counter.total tel_pruned in
  check Alcotest.bool "off run saturates" true
    (off.Engine.r_stop = Engine.Full_coverage);
  check Alcotest.bool "on run saturates" true
    (on.Engine.r_stop = Engine.Full_coverage);
  check Alcotest.bool "static prune fired" true (pruned > 0);
  (* every pruned solve was a real Unsat attempt of the off run *)
  check Alcotest.int "attempts conserved" attempts_off (attempts_on + pruned);
  (* the pinned contract: testcase output is identical with the flag on
     or off (found_at excluded — pruned solves charge no virtual time) *)
  check Alcotest.bool "identical testcases" true
    (steps_equal (tc_essence off) (tc_essence on));
  Telemetry.reset ();
  Telemetry.disable ()

let test_engine_reanalyze () =
  Telemetry.enable ();
  Telemetry.reset ();
  let config =
    {
      Engine.default_config with
      Engine.budget = 60.0;
      seed = 5;
      analyze = true;
      random_first = true;
      reanalyze_every = 1;
    }
  in
  let r = Engine.run ~config vp_demo in
  check Alcotest.bool "reanalysis fired" true
    (Telemetry.Counter.total tel_reanalyses > 0);
  check Alcotest.bool "run still saturates" true
    (r.Engine.r_stop = Engine.Full_coverage);
  Telemetry.reset ();
  Telemetry.disable ()

let () =
  Alcotest.run "analysis"
    [
      ( "registry goldens",
        [
          Alcotest.test_case "AFC dead branch" `Quick test_afc_dead;
          Alcotest.test_case "NICProtocol dead transition" `Quick test_nic_dead;
          Alcotest.test_case "LEDLC dead defaults" `Quick test_ledlc_dead;
          Alcotest.test_case "TCP clean" `Quick test_tcp_clean;
          Alcotest.test_case "all models total" `Quick test_registry_total;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "constant guards" `Quick test_diag_const_guards;
          Alcotest.test_case "switch reachability" `Quick test_diag_switch;
          Alcotest.test_case "local lifetimes" `Quick test_diag_locals;
          Alcotest.test_case "index ranges" `Quick test_diag_index;
          Alcotest.test_case "lint rendering" `Quick test_lint_lines;
        ] );
      ( "soundness",
        [ Alcotest.test_case "widening terminates soundly" `Quick
            test_widening_sound ] );
      ( "engine skip",
        [ Alcotest.test_case "dead objective justified+skipped" `Quick
            test_engine_skip ] );
      ( "octagon",
        [
          Alcotest.test_case "sampled states contained" `Quick
            test_octagon_containment;
          Alcotest.test_case "never contradicts interval" `Quick
            test_octagon_no_contradiction;
          Alcotest.test_case "UTPC dual-redundancy win" `Quick
            test_octagon_utpc_win;
          QCheck_alcotest.to_alcotest prop_octagon_contains;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "snapshot refinement reduces Unknown" `Quick
            test_snapshot_refinement;
        ] );
      ( "engine verdicts",
        [
          Alcotest.test_case "verdict priority is output-identical" `Quick
            test_engine_verdict_priority;
          Alcotest.test_case "reanalysis loop fires" `Quick
            test_engine_reanalyze;
        ] );
    ]
