(* Tests for sharded campaign runs: the partial-results JSON round
   trip, and the headline contract that merging shard stripes rebuilds
   the single-process artifact byte-for-byte — plus the merge
   validation (mismatched campaigns, overlaps, gaps, junk input). *)

module Shard = Harness.Shard
module Experiment = Harness.Experiment

let check = Alcotest.check

(* Small Table III matrix: 2 models x 3 tools, SLDV deduplicated to one
   seed — big enough that every 2-way stripe is non-trivial, small
   enough for a quick test. *)
let t3_spec =
  Shard.spec ~budget:30.0 ~seeds:[ 1; 2 ]
    ~models:[ "CPUTask"; "AFC" ] Shard.Table3

let merge_t3 parts =
  match Shard.merge_strings parts with
  | Shard.M_table3 (rows, text) -> (rows, text)
  | _ -> Alcotest.fail "merge returned the wrong artifact kind"

(* The headline guarantee: merge(shard 0/2, shard 1/2) is byte-for-byte
   the jobs=1 output, partial order notwithstanding. *)
let test_table3_shards_byte_identical () =
  let _, seq_text =
    Experiment.table3 ~budget:30.0 ~seeds:[ 1; 2 ]
      ~models:[ "CPUTask"; "AFC" ] ~jobs:1 ()
  in
  let p0 = Shard.run_partial ~jobs:1 ~shard:(0, 2) t3_spec in
  let p1 = Shard.run_partial ~jobs:1 ~shard:(1, 2) t3_spec in
  let _, merged = merge_t3 [ p0; p1 ] in
  check Alcotest.string "merge(0/2, 1/2) = jobs=1 bytes" seq_text merged;
  let _, merged_rev = merge_t3 [ p1; p0 ] in
  check Alcotest.string "partial order irrelevant" seq_text merged_rev

let test_table3_single_shard_roundtrip () =
  (* shard 0/1 is the whole matrix: one partial must merge alone *)
  let _, seq_text =
    Experiment.table3 ~budget:30.0 ~seeds:[ 1; 2 ]
      ~models:[ "CPUTask"; "AFC" ] ~jobs:1 ()
  in
  let whole = Shard.run_partial ~jobs:1 ~shard:(0, 1) t3_spec in
  let rows, merged = merge_t3 [ whole ] in
  check Alcotest.string "merge of 0/1 = jobs=1 bytes" seq_text merged;
  check Alcotest.int "rows present" 6 (List.length rows)

let test_many_stripes () =
  (* more shards than some tools have jobs: empty stripes must still
     merge; njobs for this spec is 2 models * (1 + 2 + 2) = 10 *)
  check Alcotest.int "njobs" 10 (Shard.njobs t3_spec);
  let n = 7 in
  let parts =
    List.init n (fun i -> Shard.run_partial ~jobs:1 ~shard:(i, n) t3_spec)
  in
  let _, seq_text =
    Experiment.table3 ~budget:30.0 ~seeds:[ 1; 2 ]
      ~models:[ "CPUTask"; "AFC" ] ~jobs:1 ()
  in
  let _, merged = merge_t3 parts in
  check Alcotest.string "7-way stripes merge to jobs=1 bytes" seq_text merged

let test_fig4_shards_byte_identical () =
  let spec =
    Shard.spec ~budget:30.0 ~seed:1 ~models:[ "CPUTask" ] Shard.Fig4
  in
  let seq_panels, seq_csvs =
    Experiment.fig4 ~budget:30.0 ~seed:1 ~models:[ "CPUTask" ] ~jobs:1 ()
  in
  let p0 = Shard.run_partial ~jobs:1 ~shard:(0, 2) spec in
  let p1 = Shard.run_partial ~jobs:1 ~shard:(1, 2) spec in
  match Shard.merge_strings [ p1; p0 ] with
  | Shard.M_fig4 (panels, csvs) ->
    check Alcotest.string "panels byte-identical" seq_panels panels;
    check
      Alcotest.(list (pair string string))
      "per-model CSVs byte-identical" seq_csvs csvs
  | _ -> Alcotest.fail "merge returned the wrong artifact kind"

let test_ablations_shards_byte_identical () =
  let spec =
    Shard.spec ~budget:30.0 ~seeds:[ 1 ] ~models:[ "CPUTask" ] Shard.Ablations
  in
  let seq_text =
    Experiment.ablations ~budget:30.0 ~seeds:[ 1 ] ~models:[ "CPUTask" ]
      ~jobs:1 ()
  in
  let p0 = Shard.run_partial ~jobs:1 ~shard:(0, 2) spec in
  let p1 = Shard.run_partial ~jobs:1 ~shard:(1, 2) spec in
  match Shard.merge_strings [ p0; p1 ] with
  | Shard.M_ablations text ->
    check Alcotest.string "ablations byte-identical" seq_text text
  | _ -> Alcotest.fail "merge returned the wrong artifact kind"

(* merge validation: anything that is not a full, disjoint, same-
   campaign cover must be refused *)

let expect_malformed name thunk =
  match thunk () with
  | _ -> Alcotest.fail (name ^ ": expected Shard.Malformed")
  | exception Shard.Malformed _ -> ()

let test_merge_validation () =
  let p0 = Shard.run_partial ~jobs:1 ~shard:(0, 2) t3_spec in
  let p1 = Shard.run_partial ~jobs:1 ~shard:(1, 2) t3_spec in
  expect_malformed "gap (missing stripe)" (fun () ->
      Shard.merge_strings [ p0 ]);
  expect_malformed "overlap (duplicate stripe)" (fun () ->
      Shard.merge_strings [ p0; p1; p1 ]);
  expect_malformed "no partials" (fun () -> Shard.merge_strings []);
  expect_malformed "junk input" (fun () ->
      Shard.merge_strings [ "not json at all" ]);
  expect_malformed "truncated json" (fun () ->
      Shard.merge_strings [ String.sub p0 0 (String.length p0 / 2) ]);
  (* different campaign: same matrix, different budget *)
  let other =
    Shard.spec ~budget:60.0 ~seeds:[ 1; 2 ] ~models:[ "CPUTask"; "AFC" ]
      Shard.Table3
  in
  let q1 = Shard.run_partial ~jobs:1 ~shard:(1, 2) other in
  expect_malformed "mismatched campaigns" (fun () ->
      Shard.merge_strings [ p0; q1 ])

let test_run_partial_validation () =
  Alcotest.check_raises "shard index out of range"
    (Invalid_argument "Shard.run_partial: shard must satisfy 0 <= i < n")
    (fun () -> ignore (Shard.run_partial ~shard:(2, 2) t3_spec))

let test_kind_names () =
  List.iter
    (fun k ->
      check Alcotest.bool
        (Fmt.str "kind %s round-trips" (Shard.kind_name k))
        true
        (Shard.kind_of_name (Shard.kind_name k) = Some k))
    [ Shard.Table3; Shard.Fig4; Shard.Ablations ];
  check Alcotest.bool "unknown kind" true (Shard.kind_of_name "nope" = None)

let () =
  Alcotest.run "shard"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "table3 merge(0/2,1/2) = jobs=1" `Quick
            test_table3_shards_byte_identical;
          Alcotest.test_case "table3 single-shard round trip" `Quick
            test_table3_single_shard_roundtrip;
          Alcotest.test_case "table3 7-way stripes" `Quick test_many_stripes;
          Alcotest.test_case "fig4 merge = jobs=1" `Quick
            test_fig4_shards_byte_identical;
          Alcotest.test_case "ablations merge = jobs=1" `Quick
            test_ablations_shards_byte_identical;
        ] );
      ( "validation",
        [
          Alcotest.test_case "merge refuses bad partial sets" `Quick
            test_merge_validation;
          Alcotest.test_case "run_partial bounds" `Quick
            test_run_partial_validation;
          Alcotest.test_case "kind names" `Quick test_kind_names;
        ] );
    ]
