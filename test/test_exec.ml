(* Differential test for the slot-compiled execution core.

   The seed's map-based interpreter is kept verbatim as
   [Interp.run_step_reference]; this test drives it and the compiled
   [Slim.Exec] path in lockstep over every registry model for hundreds
   of random steps and demands bit-identical outputs, next-state
   snapshots, and coverage event streams.  It is the proof that the
   slot compilation is a pure representation change. *)

module V = Slim.Value
module Interp = Slim.Interp
module Exec = Slim.Exec
module Branch = Slim.Branch

let check = Alcotest.check

let steps_per_model = 220

let event_equal (a : Exec.event) (b : Exec.event) =
  match a, b with
  | Exec.Branch_hit ka, Exec.Branch_hit kb -> Branch.equal_key ka kb
  | ( Exec.Cond_vector { id = ia; vector = va; outcome = oa },
      Exec.Cond_vector { id = ib; vector = vb; outcome = ob } ) ->
    ia = ib && va = vb && oa = ob
  | _ -> false

let pp_event ppf = function
  | Exec.Branch_hit k -> Fmt.pf ppf "Branch_hit %a" Branch.pp_key k
  | Exec.Cond_vector { id; vector; outcome } ->
    Fmt.pf ppf "Cond_vector {id=%d; vector=[%a]; outcome=%b}" id
      Fmt.(array ~sep:(any ";") bool)
      vector outcome

let events_equal name step la lb =
  if
    List.length la <> List.length lb
    || not (List.for_all2 event_equal la lb)
  then
    Alcotest.failf "%s step %d: event streams differ@.reference: %a@.exec: %a"
      name step
      Fmt.(list ~sep:(any "; ") pp_event)
      la
      Fmt.(list ~sep:(any "; ") pp_event)
      lb

let collect f =
  let events = ref [] in
  let out = f (fun e -> events := e :: !events) in
  (out, List.rev !events)

(* One model: run the reference interpreter and the compiled handle in
   lockstep from the initial state. *)
let differential (entry : Models.Registry.entry) () =
  let prog = entry.Models.Registry.program () in
  let name = entry.Models.Registry.name in
  let ex = Exec.handle prog in
  let rng = Random.State.make [| 0xD1FF; String.length name |] in
  let st_ref = ref (Interp.initial_state prog) in
  let st_new = ref (Exec.initial_state ex) in
  check Alcotest.bool (name ^ ": initial snapshots agree") true
    (Interp.snapshot_equal !st_ref (Exec.smap_of_state ex !st_new));
  for step = 1 to steps_per_model do
    let einputs = Exec.random_inputs rng ex in
    let minputs = Exec.smap_of_inputs ex einputs in
    let (out_ref, st_ref'), ev_ref =
      collect (fun on_event ->
          Interp.run_step_reference ~on_event prog !st_ref minputs)
    in
    let (out_new, st_new'), ev_new =
      collect (fun on_event -> Exec.run_step ~on_event ex !st_new einputs)
    in
    events_equal name step ev_ref ev_new;
    if not (Interp.Smap.equal V.equal out_ref (Exec.smap_of_outputs ex out_new))
    then Alcotest.failf "%s step %d: outputs differ" name step;
    if not (Interp.snapshot_equal st_ref' (Exec.smap_of_state ex st_new'))
    then Alcotest.failf "%s step %d: next-state snapshots differ" name step;
    (* interned-state invariant: equal states must hash equal *)
    let round = Exec.state_of_smap ex (Exec.smap_of_state ex st_new') in
    check Alcotest.bool (name ^ ": smap round-trip equal") true
      (Exec.state_equal st_new' round);
    check Alcotest.bool (name ^ ": equal states hash equal") true
      (Exec.state_hash st_new' = Exec.state_hash round);
    st_ref := st_ref';
    st_new := st_new'
  done

(* --- standalone Stateflow charts --------------------------------------

   The registry models embed charts as diagram blocks; these cases
   compile charts directly through [Sf_compile.to_program] so the
   hierarchical-entry / transition-priority IR shape is differentially
   tested on its own.  Charts come from the fuzzer's generator at fixed
   seeds, so the shapes vary (entry/during actions, guarded
   transitions, persistent data) but every run is reproducible. *)

let chart_programs =
  let rec collect seed acc n =
    if n = 0 then List.rev acc
    else
      let rng = Fuzzer.Splitmix.create seed in
      match Fuzzer.Gen.gen_model rng ~size:10 with
      | Fuzzer.Gen.M_chart c ->
        collect (seed + 1)
          ((Fmt.str "chart-seed-%d" seed, Stateflow.Sf_compile.to_program
              (Fuzzer.Gen.chart_of_spec c))
           :: acc)
          (n - 1)
      | Fuzzer.Gen.M_diagram _ -> collect (seed + 1) acc n
  in
  collect 0 [] 6

let chart_differential (name, prog) () =
  let ex = Exec.handle prog in
  let rng = Random.State.make [| 0xC4A7; String.length name |]
  and seed_rng = Fuzzer.Splitmix.create (String.length name) in
  let irng = Fuzzer.Splitmix.split seed_rng in
  let st_ref = ref (Interp.initial_state prog) in
  let st_new = ref (Exec.initial_state ex) in
  for step = 1 to 120 do
    (* alternate harness RNG and fuzzer-biased draws so thresholds trip *)
    let einputs =
      if step mod 2 = 0 then Exec.random_inputs rng ex
      else
        Exec.inputs_of_list ex
          (List.map
             (fun (v : Slim.Ir.var) ->
               (v.Slim.Ir.name, Fuzzer.Gen.gen_value irng v.Slim.Ir.ty))
             (Array.to_list (Exec.input_vars ex)))
    in
    let minputs = Exec.smap_of_inputs ex einputs in
    let (out_ref, st_ref'), ev_ref =
      collect (fun on_event ->
          Interp.run_step_reference ~on_event prog !st_ref minputs)
    in
    let (out_new, st_new'), ev_new =
      collect (fun on_event -> Exec.run_step ~on_event ex !st_new einputs)
    in
    events_equal name step ev_ref ev_new;
    if not (Interp.Smap.equal V.equal out_ref (Exec.smap_of_outputs ex out_new))
    then Alcotest.failf "%s step %d: outputs differ" name step;
    if not (Interp.snapshot_equal st_ref' (Exec.smap_of_state ex st_new'))
    then Alcotest.failf "%s step %d: next-state snapshots differ" name step;
    st_ref := st_ref';
    st_new := st_new'
  done

(* --- snapshot / restore mid-sequence ----------------------------------

   The engine's whole point is replaying from stored state snapshots:
   save a state mid-run, keep executing (diverging), then restore the
   snapshot and demand the continuation is bit-identical to the first
   pass.  Exercised through both the slot array and the smap bridge. *)

let snapshot_restore_roundtrip (entry : Models.Registry.entry) () =
  let prog = entry.Models.Registry.program () in
  let name = entry.Models.Registry.name in
  let ex = Exec.handle prog in
  let rng = Random.State.make [| 0x5A7E; String.length name |] in
  (* run 30 steps to land in a non-trivial state *)
  let st = ref (Exec.initial_state ex) in
  for _ = 1 to 30 do
    let _, st' = Exec.run_step ex !st (Exec.random_inputs rng ex) in
    st := st'
  done;
  let snapshot = Array.map V.copy !st in
  let smap_snapshot = Exec.smap_of_state ex !st in
  (* fixed continuation input sequence *)
  let cont_rng = Random.State.make [| 0xC047 |] in
  let cont = List.init 25 (fun _ -> Exec.random_inputs cont_rng ex) in
  let run_from st0 =
    let st = ref st0 in
    List.map
      (fun ins ->
        let out, st' = Exec.run_step ex !st ins in
        st := st';
        (out, st'))
      cont
  in
  let first = run_from !st in
  (* diverge: 40 more steps with other inputs from the same live state *)
  let div = ref !st in
  for _ = 1 to 40 do
    let _, st' = Exec.run_step ex !div (Exec.random_inputs rng ex) in
    div := st'
  done;
  (* restore from the raw snapshot and from the smap bridge *)
  List.iter
    (fun (restored, how) ->
      check Alcotest.bool
        (Fmt.str "%s: %s restores the saved state" name how)
        true
        (Exec.state_equal restored snapshot);
      let second = run_from restored in
      List.iteri
        (fun i ((out1, st1), (out2, st2)) ->
          if not (Exec.values_equal out1 out2) then
            Alcotest.failf "%s (%s) step %d: outputs diverge after restore"
              name how i;
          if not (Exec.state_equal st1 st2) then
            Alcotest.failf "%s (%s) step %d: states diverge after restore"
              name how i)
        (List.combine first second))
    [
      (Array.map V.copy snapshot, "array snapshot");
      (Exec.state_of_smap ex smap_snapshot, "smap round-trip");
    ]

let test_hash_numeric_coherence () =
  (* Value.equal equates Int n and Real (float n), and 0. and -0.; the
     structural hash must follow or interning would split equal states *)
  let pairs =
    [
      ([| V.Int 42 |], [| V.Real 42.0 |]);
      ([| V.Real 0.0 |], [| V.Real (-0.0) |]);
      ( [| V.Vec [| V.Int 3; V.Bool true |] |],
        [| V.Vec [| V.Real 3.0; V.Bool true |] |] );
    ]
  in
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "values equal" true (Exec.values_equal a b);
      check Alcotest.bool "hashes equal" true
        (Exec.values_hash a = Exec.values_hash b))
    pairs

let test_run_step_does_not_mutate () =
  let prog = (Option.get (Models.Registry.find "CPUTask")).program () in
  let ex = Exec.handle prog in
  let st = Exec.initial_state ex in
  let st_copy = Array.copy st in
  let rng = Random.State.make [| 7 |] in
  let ins = Exec.random_inputs rng ex in
  let ins_copy = Array.copy ins in
  let _ = Exec.run_step ex st ins in
  check Alcotest.bool "state untouched" true (Exec.values_equal st st_copy);
  check Alcotest.bool "inputs untouched" true (Exec.values_equal ins ins_copy)

let () =
  Alcotest.run "exec"
    [
      ( "differential vs reference interpreter",
        List.map
          (fun (e : Models.Registry.entry) ->
            Alcotest.test_case e.Models.Registry.name `Quick (differential e))
          Models.Registry.entries );
      ( "standalone charts vs reference interpreter",
        List.map
          (fun (name, prog) ->
            Alcotest.test_case name `Quick (chart_differential (name, prog)))
          chart_programs );
      ( "snapshot/restore round-trips",
        List.map
          (fun (e : Models.Registry.entry) ->
            Alcotest.test_case e.Models.Registry.name `Quick
              (snapshot_restore_roundtrip e))
          Models.Registry.entries );
      ( "representation",
        [
          Alcotest.test_case "hash/equal numeric coherence" `Quick
            test_hash_numeric_coherence;
          Alcotest.test_case "run_step purity" `Quick
            test_run_step_does_not_mutate;
        ] );
    ]
