(* Differential tests for the hash-consed term core: the DAG smart
   constructors and their memoized queries ([eval], [vars], [size],
   [pp]) must agree with plain reference-tree recursion, and the
   normalization rules (constant folding, commutative operand order,
   double-negation / ite collapse) must behave as documented. *)

module V = Slim.Value
module Ir = Slim.Ir
module T = Solver.Term

let check = Alcotest.check

(* --- reference tree ---------------------------------------------------- *)

(* A plain tree mirror of the term language with naive recursive
   implementations of every query the DAG side memoizes. *)
module R = struct
  type t =
    | Cst of V.t
    | Var of string
    | Unop of Ir.unop * t
    | Binop of Ir.binop * t * t
    | Cmp of Ir.cmpop * t * t
    | And of t * t
    | Or of t * t
    | Not of t
    | Ite of t * t * t

  let eval_unop (op : Ir.unop) v =
    match op with
    | Ir.Neg -> V.neg v
    | Ir.Not -> V.Bool (not (V.to_bool v))
    | Ir.Abs_op -> V.abs_v v
    | Ir.To_real -> V.Real (V.to_real v)
    | Ir.To_int -> V.Int (V.to_int v)
    | Ir.Floor -> V.floor_v v
    | Ir.Ceil -> V.ceil_v v

  let eval_binop (op : Ir.binop) a b =
    match op with
    | Ir.Add -> V.add a b
    | Ir.Sub -> V.sub a b
    | Ir.Mul -> V.mul a b
    | Ir.Div -> V.div a b
    | Ir.Mod -> V.modulo a b
    | Ir.Min -> V.min_v a b
    | Ir.Max -> V.max_v a b

  let eval_cmp (op : Ir.cmpop) a b =
    let c () = V.compare_num a b in
    match op with
    | Ir.Eq -> V.equal a b
    | Ir.Ne -> not (V.equal a b)
    | Ir.Lt -> c () < 0
    | Ir.Le -> c () <= 0
    | Ir.Gt -> c () > 0
    | Ir.Ge -> c () >= 0

  let rec eval env = function
    | Cst v -> v
    | Var x -> env x
    | Unop (op, e) -> eval_unop op (eval env e)
    | Binop (op, a, b) -> eval_binop op (eval env a) (eval env b)
    | Cmp (op, a, b) -> V.Bool (eval_cmp op (eval env a) (eval env b))
    | And (a, b) -> V.Bool (V.to_bool (eval env a) && V.to_bool (eval env b))
    | Or (a, b) -> V.Bool (V.to_bool (eval env a) || V.to_bool (eval env b))
    | Not e -> V.Bool (not (V.to_bool (eval env e)))
    | Ite (c, a, b) ->
      if V.to_bool (eval env c) then eval env a else eval env b

  let rec vars acc = function
    | Cst _ -> acc
    | Var x -> x :: acc
    | Unop (_, e) | Not e -> vars acc e
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      vars (vars acc a) b
    | Ite (c, a, b) -> vars (vars (vars acc c) a) b

  let vars t = List.sort_uniq String.compare (vars [] t)

  let rec size = function
    | Cst _ | Var _ -> 1
    | Unop (_, e) | Not e -> 1 + size e
    | Binop (_, a, b) | Cmp (_, a, b) | And (a, b) | Or (a, b) ->
      1 + size a + size b
    | Ite (c, a, b) -> 1 + size c + size a + size b

  let rec pp ppf = function
    | Cst v -> V.pp ppf v
    | Var x -> Fmt.string ppf x
    | Unop (op, e) -> Fmt.pf ppf "%a(%a)" Ir.pp_unop op pp e
    | Binop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ir.pp_binop op pp b
    | Cmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ir.pp_cmpop op pp b
    | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
    | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
    | Not e -> Fmt.pf ppf "!(%a)" pp e
    | Ite (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp c pp a pp b
end

(* Expand the DAG back into a tree; exponential for heavily shared
   terms, so only used on generator-sized inputs. *)
let rec reify (t : T.t) : R.t =
  match T.view t with
  | T.Cst v -> R.Cst v
  | T.Tvar x -> R.Var x
  | T.Tunop (op, e) -> R.Unop (op, reify e)
  | T.Tbinop (op, a, b) -> R.Binop (op, reify a, reify b)
  | T.Tcmp (op, a, b) -> R.Cmp (op, reify a, reify b)
  | T.Tand (a, b) -> R.And (reify a, reify b)
  | T.Tor (a, b) -> R.Or (reify a, reify b)
  | T.Tnot e -> R.Not (reify e)
  | T.Tite (c, a, b) -> R.Ite (reify c, reify a, reify b)

(* --- generator --------------------------------------------------------- *)

(* Well-typed terms only (int arithmetic under boolean structure), so
   evaluation is total and the commutative operand swap cannot change
   which exceptions surface. *)
let gen_term rng depth =
  let open QCheck.Gen in
  let int_leaf =
    oneof
      [
        map T.cint (int_range (-9) 9);
        oneofl [ T.var "x"; T.var "y"; T.var "z" ];
      ]
  in
  let rec int_expr depth st =
    if depth = 0 then int_leaf st
    else
      let sub = int_expr (depth - 1) in
      (oneof
         [
           map2 (T.binop Ir.Add) sub sub;
           map2 (T.binop Ir.Sub) sub sub;
           map2 (T.binop Ir.Mul) sub sub;
           map2 (T.binop Ir.Min) sub sub;
           map2 (T.binop Ir.Max) sub sub;
           map (T.unop Ir.Neg) sub;
           map (T.unop Ir.Abs_op) sub;
           (fun st ->
             let c = atom (depth - 1) st in
             T.ite c (sub st) (sub st));
           int_leaf;
         ])
        st
  and atom depth st =
    let a = int_expr depth st in
    let b = int_expr depth st in
    let op = oneofl [ Ir.Eq; Ir.Ne; Ir.Lt; Ir.Le; Ir.Gt; Ir.Ge ] st in
    T.cmp op a b
  in
  let rec bool_expr depth st =
    if depth = 0 then atom 1 st
    else
      let sub = bool_expr (depth - 1) in
      (oneof
         [
           map2 T.and_ sub sub;
           map2 T.or_ sub sub;
           map T.not_ sub;
           atom depth;
         ])
        st
  in
  bool_expr depth rng

let env_of (x, y, z) = function
  | "x" -> V.Int x
  | "y" -> V.Int y
  | "z" -> V.Int z
  | _ -> raise Not_found

let envs =
  [ (0, 0, 0); (1, -2, 3); (-4, 4, 0); (7, 7, 7); (-9, 5, -1); (2, -8, 6) ]

(* --- differential property --------------------------------------------- *)

let prop_differential =
  QCheck.Test.make ~name:"hashcons terms agree with reference trees"
    ~count:300
    QCheck.(make (fun rng -> gen_term rng 3))
    (fun t ->
      let r = reify t in
      (* eval: memoized DAG evaluation vs naive recursion *)
      List.iter
        (fun point ->
          let env = env_of point in
          if not (V.equal (T.eval env t) (R.eval env r)) then
            QCheck.Test.fail_reportf "eval mismatch on %a" T.pp t)
        envs;
      (* vars: DAG traversal vs tree collection *)
      if T.vars t <> R.vars r then
        QCheck.Test.fail_reportf "vars mismatch on %a" T.pp t;
      (* size: stored saturating field vs tree count *)
      if T.size t <> R.size r then
        QCheck.Test.fail_reportf "size mismatch on %a" T.pp t;
      if T.size_capped 7 t <> min 7 (R.size r) then
        QCheck.Test.fail_reportf "size_capped mismatch on %a" T.pp t;
      (* pp: identical rendering *)
      if Fmt.str "%a" T.pp t <> Fmt.str "%a" R.pp r then
        QCheck.Test.fail_reportf "pp mismatch on %a" T.pp t;
      true)

(* Construction is deterministic: rebuilding the same structure yields
   the physically-same node, and hash/compare agree. *)
let prop_reconstruction_physical =
  QCheck.Test.make ~name:"identical constructions are physically equal"
    ~count:300
    QCheck.(
      make (fun rng ->
          let st = Random.State.copy rng in
          (gen_term rng 3, gen_term st 3)))
    (fun (a, b) ->
      (* same RNG stream -> same construction -> same node *)
      T.equal a b && T.id a = T.id b && T.hash a = T.hash b
      && T.compare a b = 0
      && T.compare_structural a b = 0)

(* --- regressions ------------------------------------------------------- *)

let test_commutative_equal () =
  let x = T.var "x" and y = T.var "y" in
  let pairs =
    [
      (T.binop Ir.Add x y, T.binop Ir.Add y x);
      (T.binop Ir.Mul x y, T.binop Ir.Mul y x);
      (T.and_ x y, T.and_ y x);
      (T.or_ x y, T.or_ y x);
      (T.cmp Ir.Eq x y, T.cmp Ir.Eq y x);
      (T.cmp Ir.Ne x y, T.cmp Ir.Ne y x);
    ]
  in
  List.iter
    (fun (a, b) ->
      check Alcotest.bool "commuted operands give the same node" true
        (T.equal a b))
    pairs;
  (* non-commutative operators must keep their operand order *)
  check Alcotest.bool "sub does not commute" false
    (T.equal (T.binop Ir.Sub x y) (T.binop Ir.Sub y x));
  check Alcotest.bool "lt does not commute" false
    (T.equal (T.cmp Ir.Lt x y) (T.cmp Ir.Lt y x))

let test_physical_sharing () =
  let mk () = T.and_ (T.cmp Ir.Le (T.var "a") (T.cint 4)) (T.var "p") in
  check Alcotest.bool "same construction, same node" true
    (T.equal (mk ()) (mk ()));
  check Alcotest.bool "physically equal" true (mk () == mk ())

let test_folds () =
  check Alcotest.bool "constant folding" true
    (T.is_const (T.binop Ir.Add (T.cint 2) (T.cint 3)) = Some (V.Int 5));
  let x = T.var "x" in
  check Alcotest.bool "double negation cancels" true
    (T.equal (T.not_ (T.not_ x)) x);
  let c = T.cmp Ir.Lt x (T.cint 0) in
  check Alcotest.bool "ite with equal branches folds" true
    (T.equal (T.ite c x x) x);
  check Alcotest.bool "ite on true picks then" true
    (T.equal (T.ite (T.cbool true) x (T.cint 1)) x);
  check Alcotest.bool "and true is identity" true
    (T.equal (T.and_ (T.cbool true) c) c);
  check Alcotest.bool "or false is identity" true
    (T.equal (T.or_ c (T.cbool false)) c)

let test_size_saturates () =
  (* t_{n+1} = t_n + t_n: tree size ~2^n, DAG size ~n.  The stored
     size must saturate instead of overflowing, and the capped form
     must clamp exactly. *)
  let t = ref (T.binop Ir.Add (T.var "x") (T.cint 1)) in
  for _ = 1 to 60 do
    t := T.binop Ir.Add !t !t
  done;
  check Alcotest.bool "size saturated" true (T.size !t >= 1 lsl 30);
  check Alcotest.int "size_capped clamps" 60_000 (T.size_capped 60_000 !t);
  check (Alcotest.list Alcotest.string) "vars on huge shared term"
    [ "x" ] (T.vars !t)

let test_memoized_eval_on_shared_dag () =
  (* push tree size past the eval-memo threshold (256) while keeping
     the reify-able tree moderate: differential check on the memo path *)
  let t =
    ref
      (T.cmp Ir.Le
         (T.binop Ir.Add (T.var "x") (T.var "y"))
         (T.binop Ir.Mul (T.var "z") (T.cint 3)))
  in
  for _ = 1 to 6 do
    t := T.and_ !t (T.or_ !t (T.not_ !t))
  done;
  check Alcotest.bool "over memo threshold" true (T.size !t > 256);
  let r = reify !t in
  List.iter
    (fun point ->
      let env = env_of point in
      check Alcotest.bool "memoized eval = tree eval" true
        (V.equal (T.eval env !t) (R.eval env r)))
    envs

let test_vars_sorted_dedup () =
  let t =
    T.and_
      (T.cmp Ir.Lt (T.var "b") (T.var "a"))
      (T.cmp Ir.Gt (T.binop Ir.Add (T.var "a") (T.var "c")) (T.var "b"))
  in
  check (Alcotest.list Alcotest.string) "sorted, no duplicates"
    [ "a"; "b"; "c" ] (T.vars t)

let () =
  Alcotest.run "term"
    [
      ( "differential",
        List.map QCheck_alcotest.to_alcotest
          [ prop_differential; prop_reconstruction_physical ] );
      ( "normalization",
        [
          Alcotest.test_case "commutative operands" `Quick
            test_commutative_equal;
          Alcotest.test_case "physical sharing" `Quick test_physical_sharing;
          Alcotest.test_case "folds" `Quick test_folds;
        ] );
      ( "queries",
        [
          Alcotest.test_case "size saturates" `Quick test_size_saturates;
          Alcotest.test_case "memoized eval" `Quick
            test_memoized_eval_on_shared_dag;
          Alcotest.test_case "vars" `Quick test_vars_sorted_dedup;
        ] );
    ]
