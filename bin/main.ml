(* stcg — command-line front-end.

   Subcommands mirror the paper's artifacts:
     list-models          the benchmark suite (Table II data)
     run                  one tool on one model, with test-case export
     table1 table2 table3 the paper's tables
     fig3 fig4            the paper's figures (fig4 can dump CSV)
     ablations            design-choice ablations
     merge                combine --shard partial-result files
     replay               re-measure coverage of an exported test suite

   The campaign commands (table3, fig4, ablations) also run sharded:
   --shard I/N executes one deterministic stripe of the job matrix and
   writes a partial-results JSON; `stcg merge` rebuilds the exact
   artifact from a full set of partials; --shards N orchestrates both
   steps locally by spawning this binary once per shard — separate
   processes share no OCaml heap, so shards scale past the
   stop-the-world minor-GC ceiling that caps worker domains. *)

open Cmdliner

let budget_arg =
  let doc = "Virtual time budget in seconds (the paper uses 3600)." in
  Arg.(value & opt float 3600.0 & info [ "budget" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "PRNG seed for randomized tools." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let seeds_arg =
  let doc = "Number of seeds to average randomized tools over." in
  Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the run matrix (default: \\$(b,STCG_JOBS) or the \
     machine's core count minus one).  Output is byte-identical for any \
     value; 1 disables parallelism."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let model_arg =
  let doc = "Benchmark model name (see list-models)." in
  Arg.(required & opt (some string) None & info [ "model"; "m" ] ~docv:"MODEL" ~doc)

(* --- telemetry --------------------------------------------------------- *)

let stats_arg =
  let doc =
    "Print telemetry after the run: deterministic counters and histograms, \
     then scheduling counters and wall-clock span totals."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file to $(docv) (open in \
     chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let force_arg =
  let doc = "Allow $(b,--trace) to overwrite an existing file." in
  Arg.(value & flag & info [ "force" ] ~doc)

let telemetry_term =
  Term.(
    const (fun stats trace force -> (stats, trace, force))
    $ stats_arg $ trace_arg $ force_arg)

(* Validate the trace destination and enable telemetry *before* the
   workload runs; the returned thunk exports after it. *)
let telemetry_setup (stats, trace, force) =
  (match trace with
   | Some path when Sys.file_exists path && not force ->
     Fmt.epr "stcg: refusing to overwrite existing %s (pass --force)@." path;
     exit 2
   | _ -> ());
  if stats || trace <> None then Telemetry.enable ();
  fun () ->
    (match trace with
     | Some path ->
       Telemetry.Chrome_trace.write ~path;
       Fmt.pr "wrote Chrome trace to %s@." path
     | None -> ());
    if stats then print_string (Telemetry.render_summary ())

(* --- sharding ---------------------------------------------------------- *)

let shard_conv =
  let parse s =
    let bad () =
      Error (`Msg (Fmt.str "expected I/N with 0 <= I < N, got %S" s))
    in
    match String.index_opt s '/' with
    | None -> bad ()
    | Some k -> (
      match
        ( int_of_string_opt (String.sub s 0 k),
          int_of_string_opt (String.sub s (k + 1) (String.length s - k - 1)) )
      with
      | Some i, Some n when n >= 1 && i >= 0 && i < n -> Ok (i, n)
      | _ -> bad ())
  in
  let print ppf (i, n) = Fmt.pf ppf "%d/%d" i n in
  Arg.conv (parse, print)

let shard_arg =
  let doc =
    "Execute only shard $(docv) (0-based) of the campaign's canonical job \
     matrix — job $(i,j) belongs to shard $(i,j) mod N — and write a \
     partial-results JSON (see $(b,--out)) instead of the artifact.  \
     Combine the partials with $(b,stcg merge)."
  in
  Arg.(value & opt (some shard_conv) None & info [ "shard" ] ~docv:"I/N" ~doc)

let shards_arg =
  let doc =
    "Orchestrate a sharded run: spawn $(docv) copies of this binary (one per \
     shard), merge their partials and print the artifact.  Output is \
     byte-identical to the unsharded run; separate processes share no OCaml \
     heap, so this scales past the worker-domain ceiling."
  in
  Arg.(value & opt (some int) None & info [ "shards" ] ~docv:"N" ~doc)

let out_arg =
  let doc = "Destination for the $(b,--shard) partial JSON (- is stdout)." in
  Arg.(value & opt string "-" & info [ "out"; "o" ] ~docv:"FILE" ~doc)

let write_output path text =
  if path = "-" then print_string text
  else begin
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc;
    Fmt.epr "stcg: wrote %s@." path
  end

(* Spawn one child per shard ([argv_of_shard i partial_file] names the
   child command line), wait for all of them, merge their partials. *)
let orchestrate ~shards argv_of_shard =
  if shards < 1 then begin
    Fmt.epr "stcg: --shards must be >= 1@.";
    exit 2
  end;
  let tmps =
    List.init shards (fun i ->
        Filename.temp_file (Fmt.str "stcg-shard%d-" i) ".json")
  in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun t -> try Sys.remove t with Sys_error _ -> ()) tmps)
    (fun () ->
      let pids =
        List.mapi
          (fun i tmp ->
            let argv = Sys.executable_name :: argv_of_shard i tmp in
            Unix.create_process Sys.executable_name (Array.of_list argv)
              Unix.stdin Unix.stdout Unix.stderr)
          tmps
      in
      let failed = ref 0 in
      List.iteri
        (fun i pid ->
          match snd (Unix.waitpid [] pid) with
          | Unix.WEXITED 0 -> ()
          | Unix.WEXITED c ->
            incr failed;
            Fmt.epr "stcg: shard %d/%d exited with %d@." i shards c
          | Unix.WSIGNALED s | Unix.WSTOPPED s ->
            incr failed;
            Fmt.epr "stcg: shard %d/%d killed by signal %d@." i shards s)
        pids;
      if !failed > 0 then exit 1;
      try Harness.Shard.merge_files tmps
      with Harness.Shard.Malformed msg ->
        Fmt.epr "stcg: merge failed: %s@." msg;
        exit 1)

(* Shared driver for the campaign commands: plain, --shard, --shards. *)
let campaign ~spec ~argv_of_shard ~print_merged ~plain ?jobs ~shard ~shards
    ~out () =
  match (shard, shards) with
  | Some _, Some _ ->
    Fmt.epr "stcg: --shard and --shards are mutually exclusive@.";
    exit 2
  | Some s, None ->
    write_output out (Harness.Shard.run_partial ?jobs ~shard:s spec)
  | None, Some n ->
    print_merged (orchestrate ~shards:n (fun i tmp -> argv_of_shard i n tmp))
  | None, None -> plain ()

let float_str f = Fmt.str "%.17g" f

let tool_arg =
  let doc = "Tool: stcg, stcg-hybrid, sldv or simcotest." in
  Arg.(value & opt string "stcg" & info [ "tool"; "t" ] ~docv:"TOOL" ~doc)

let find_model name =
  match Models.Registry.find name with
  | Some e -> e
  | None ->
    Fmt.epr "unknown model %s; available: %s@." name
      (String.concat ", " Models.Registry.names);
    exit 2

let parse_tool = function
  | "stcg" -> Harness.Experiment.STCG
  | "stcg-hybrid" -> Harness.Experiment.STCG_hybrid
  | "sldv" -> Harness.Experiment.SLDV
  | "simcotest" -> Harness.Experiment.SimCoTest
  | t ->
    Fmt.epr "unknown tool %s (stcg | stcg-hybrid | sldv | simcotest)@." t;
    exit 2

let list_models_cmd =
  let run () =
    List.iter
      (fun (e : Models.Registry.entry) ->
        let prog = e.Models.Registry.program () in
        Fmt.pr "%-12s %-40s %4d branches@." e.Models.Registry.name
          e.Models.Registry.description
          (Slim.Branch.count prog))
      Models.Registry.entries
  in
  Cmd.v (Cmd.info "list-models" ~doc:"List the benchmark models (Table II).")
    Term.(const run $ const ())

let run_cmd =
  let run model tool budget seed analyze domain verdict_priority
      reanalyze_every export tel =
    let finish = telemetry_setup tel in
    let entry = find_model model in
    let tool = parse_tool tool in
    let domain =
      match domain with
      | "interval" -> `Interval
      | "octagon" -> `Octagon
      | d -> Fmt.failwith "unknown domain %S (interval|octagon)" d
    in
    let result =
      Harness.Experiment.run_tool ~budget ~analyze ~domain ~verdict_priority
        ~reanalyze_every ~seed tool entry
    in
    Fmt.pr "%a@." Stcg.Run_result.pp_summary result;
    (match export with
     | Some path ->
       let prog = entry.Models.Registry.program () in
       Stcg.Testcase.save prog result.Stcg.Run_result.testcases path;
       Fmt.pr "exported %d test cases to %s@."
         (List.length result.Stcg.Run_result.testcases)
         path
     | None -> ());
    Fmt.pr "timeline:@.";
    List.iter
      (fun (t, p) -> Fmt.pr "  %7.1fs  %5.1f%%@." t p)
      result.Stcg.Run_result.timeline;
    finish ()
  in
  let export_arg =
    Arg.(value & opt (some string) None
         & info [ "export" ] ~docv:"FILE" ~doc:"Export test cases to $(docv).")
  in
  let analyze_arg =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Run the static analyzer first: proven-dead objectives \
                   are justified in coverage reporting and skipped by the \
                   solving loop (STCG variants only).")
  in
  let domain_arg =
    Arg.(value & opt string "interval"
         & info [ "domain" ] ~docv:"DOMAIN"
             ~doc:"Abstract domain for $(b,--analyze): $(b,interval) or \
                   $(b,octagon) (relational, slower, strictly more \
                   precise).")
  in
  let verdict_priority_arg =
    Arg.(value & flag
         & info [ "verdict-priority" ]
             ~doc:"With $(b,--analyze): order solving worklists \
                   Reachable-first and prune statically-Unsat solves at \
                   tree nodes (testcase output is unchanged on saturating \
                   runs).")
  in
  let reanalyze_arg =
    Arg.(value & opt int 0
         & info [ "reanalyze-every" ] ~docv:"N"
             ~doc:"With $(b,--analyze): re-run the analysis seeded from \
                   reached state snapshots every $(docv) solving \
                   iterations, justifying newly-proven-dead objectives \
                   mid-run (0 disables).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one tool on one benchmark model.")
    Term.(const run $ model_arg $ tool_arg $ budget_arg $ seed_arg
          $ analyze_arg $ domain_arg $ verdict_priority_arg $ reanalyze_arg
          $ export_arg $ telemetry_term)

let table1_cmd =
  let run budget seed tel =
    let finish = telemetry_setup tel in
    print_string (Harness.Experiment.table1 ~budget ~seed ());
    finish ()
  in
  Cmd.v (Cmd.info "table1" ~doc:"State-tree construction trace (Table I).")
    Term.(const run $ budget_arg $ seed_arg $ telemetry_term)

let table2_cmd =
  let run () = print_string (Harness.Experiment.table2 ()) in
  Cmd.v (Cmd.info "table2" ~doc:"Benchmark description (Table II).")
    Term.(const run $ const ())

let table3_cmd =
  let run budget nseeds jobs shard shards out tel =
    let finish = telemetry_setup tel in
    let seeds = List.init nseeds (fun i -> i + 1) in
    let spec = Harness.Shard.spec ~budget ~seeds Harness.Shard.Table3 in
    campaign ~spec
      ~argv_of_shard:(fun i n tmp ->
        [
          "table3"; "--budget"; float_str budget; "--seeds";
          string_of_int nseeds; "--shard"; Fmt.str "%d/%d" i n; "--out"; tmp;
        ])
      ~print_merged:(fun m -> print_string (Harness.Shard.render m))
      ~plain:(fun () ->
        let _, text = Harness.Experiment.table3 ~budget ~seeds ?jobs () in
        print_string text)
      ?jobs ~shard ~shards ~out ();
    finish ()
  in
  Cmd.v (Cmd.info "table3" ~doc:"Coverage comparison (Table III).")
    Term.(const run $ budget_arg $ seeds_arg $ jobs_arg $ shard_arg
          $ shards_arg $ out_arg $ telemetry_term)

let fig3_cmd =
  let run () = print_string (Harness.Experiment.fig3 ()) in
  Cmd.v (Cmd.info "fig3" ~doc:"CPUTask branch structure and state tree (Figure 3).")
    Term.(const run $ const ())

let write_csvs dir csvs =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (name, csv) ->
      let path = Filename.concat dir (Fmt.str "fig4_%s.csv" name) in
      let oc = open_out path in
      output_string oc csv;
      close_out oc;
      Fmt.pr "wrote %s@." path)
    csvs

let fig4_cmd =
  let run budget seed models csv_dir jobs shard shards out tel =
    let finish = telemetry_setup tel in
    let models_opt = match models with [] -> None | l -> Some l in
    let spec =
      Harness.Shard.spec ~budget ~seed ?models:models_opt Harness.Shard.Fig4
    in
    let emit (panels, csvs) =
      print_string panels;
      match csv_dir with None -> () | Some dir -> write_csvs dir csvs
    in
    campaign ~spec
      ~argv_of_shard:(fun i n tmp ->
        [ "fig4"; "--budget"; float_str budget; "--seed"; string_of_int seed ]
        @ List.concat_map (fun m -> [ "--only"; m ]) models
        @ [ "--shard"; Fmt.str "%d/%d" i n; "--out"; tmp ])
      ~print_merged:(function
        | Harness.Shard.M_fig4 (panels, csvs) -> emit (panels, csvs)
        | m -> print_string (Harness.Shard.render m))
      ~plain:(fun () ->
        emit (Harness.Experiment.fig4 ~budget ~seed ?models:models_opt ?jobs ()))
      ?jobs ~shard ~shards ~out ();
    finish ()
  in
  let models_arg =
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"MODEL"
         ~doc:"Restrict to the given model(s); repeatable.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also dump per-model CSV series to $(docv).")
  in
  Cmd.v (Cmd.info "fig4" ~doc:"Coverage versus time, all tools (Figure 4).")
    Term.(const run $ budget_arg $ seed_arg $ models_arg $ csv_arg $ jobs_arg
          $ shard_arg $ shards_arg $ out_arg $ telemetry_term)

let ablations_cmd =
  let run budget nseeds jobs shard shards out tel =
    let finish = telemetry_setup tel in
    let seeds = List.init nseeds (fun i -> i + 1) in
    let spec = Harness.Shard.spec ~budget ~seeds Harness.Shard.Ablations in
    campaign ~spec
      ~argv_of_shard:(fun i n tmp ->
        [
          "ablations"; "--budget"; float_str budget; "--seeds";
          string_of_int nseeds; "--shard"; Fmt.str "%d/%d" i n; "--out"; tmp;
        ])
      ~print_merged:(fun m -> print_string (Harness.Shard.render m))
      ~plain:(fun () ->
        print_string (Harness.Experiment.ablations ~budget ~seeds ?jobs ()))
      ?jobs ~shard ~shards ~out ();
    finish ()
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Ablate STCG's design choices (depth sort, state constants, random fallback, hybrid).")
    Term.(const run $ budget_arg
          $ Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to average over.")
          $ jobs_arg $ shard_arg $ shards_arg $ out_arg $ telemetry_term)

let merge_cmd =
  let run output parts csv_dir =
    match Harness.Shard.merge_files parts with
    | merged ->
      let text = Harness.Shard.render merged in
      if output = "-" then print_string text
      else begin
        let oc = open_out_bin output in
        output_string oc text;
        close_out oc;
        Fmt.pr "wrote %s@." output
      end;
      (match (merged, csv_dir) with
       | Harness.Shard.M_fig4 (_, csvs), Some dir -> write_csvs dir csvs
       | _ -> ())
    | exception Harness.Shard.Malformed msg ->
      Fmt.epr "stcg merge: %s@." msg;
      exit 2
    | exception Sys_error msg ->
      Fmt.epr "stcg merge: %s@." msg;
      exit 2
  in
  let output_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"OUT"
         ~doc:"Destination for the merged artifact (- is stdout).")
  in
  let parts_arg =
    Arg.(non_empty & pos_right 0 string [] & info [] ~docv:"PART"
         ~doc:"Partial-results files written by --shard runs.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR"
             ~doc:"For fig4 campaigns, also dump per-model CSV series to \
                   $(docv).")
  in
  Cmd.v
    (Cmd.info "merge"
       ~doc:"Merge --shard partial-results files into the exact artifact a \
             single-process run prints.  The partials carry their campaign \
             parameters; merging refuses mismatched campaigns, overlaps and \
             gaps.")
    Term.(const run $ output_arg $ parts_arg $ csv_arg)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_cmd =
  (* Per-target lint result: the A-diags of the compiled program, the
     S-findings of the spec section (files only), or the parse error
     that stopped everything. *)
  let lint_model (e : Models.Registry.entry) =
    (e.Models.Registry.name, Analysis.Lint.run (e.Models.Registry.program ()),
     [], None)
  in
  let lint_file f =
    match Text.Parser.parse_document_file f with
    | Error e -> (f, [], [], Some e)
    | Ok doc ->
      let prog = Text.Source.program_of doc.Text.Document.source in
      let text = try read_file f with Sys_error _ -> "" in
      (f, Analysis.Lint.run prog, Text.Doclint.run ~text doc, None)
  in
  let json_escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | c when Char.code c < 0x20 ->
          Buffer.add_string b (Fmt.str "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let print_json results issues =
    Fmt.pr "{@.  \"issues\": %d,@.  \"targets\": [@." issues;
    let last_t = List.length results - 1 in
    List.iteri
      (fun ti (target, diags, sfindings, err) ->
        Fmt.pr "    { \"target\": \"%s\", \"findings\": [@."
          (json_escape target);
        let items =
          (match err with
           | Some (e : Text.Syntax.error) ->
             [ Fmt.str
                 "{ \"code\": \"%s\", \"line\": %d, \"col\": %d, \
                  \"msg\": \"%s\" }"
                 (json_escape e.Text.Syntax.code) e.Text.Syntax.pos.line
                 e.Text.Syntax.pos.col (json_escape e.Text.Syntax.msg) ]
           | None -> [])
          @ List.map
              (fun (d : Analysis.Diag.t) ->
                Fmt.str
                  "{ \"code\": \"%s\", \"loc\": \"%s\", \"msg\": \"%s\" }"
                  (Analysis.Diag.code_id d.Analysis.Diag.d_code)
                  (json_escape d.Analysis.Diag.d_loc)
                  (json_escape d.Analysis.Diag.d_msg))
              diags
          @ List.map
              (fun (f : Text.Doclint.finding) ->
                Fmt.str
                  "{ \"code\": \"%s\", \"line\": %d, \"col\": %d, \
                   \"req\": \"%s\", \"msg\": \"%s\" }"
                  (Text.Doclint.code_id f.Text.Doclint.s_code)
                  f.Text.Doclint.s_pos.line f.Text.Doclint.s_pos.col
                  (json_escape f.Text.Doclint.s_req)
                  (json_escape f.Text.Doclint.s_msg))
              sfindings
        in
        let last_i = List.length items - 1 in
        List.iteri
          (fun i item ->
            Fmt.pr "      %s%s@." item (if i = last_i then "" else ","))
          items;
        Fmt.pr "    ] }%s@." (if ti = last_t then "" else ","))
      results;
    Fmt.pr "  ]@.}@."
  in
  let run model all files json tel =
    let finish = telemetry_setup tel in
    let entries =
      if all then Models.Registry.entries
      else match model with Some m -> [ find_model m ] | None -> []
    in
    if entries = [] && files = [] then begin
      Fmt.epr "lint: pass --model NAME, --all or FILE.stcg arguments@.";
      exit 2
    end;
    let results = List.map lint_model entries @ List.map lint_file files in
    let issues =
      List.fold_left
        (fun acc (_, diags, sfindings, err) ->
          acc + List.length diags + List.length sfindings
          + match err with Some _ -> 1 | None -> 0)
        0 results
    in
    if json then print_json results issues
    else
      List.iter
        (fun (target, diags, sfindings, err) ->
          match err with
          | Some e ->
            print_endline (Text.Syntax.error_to_string ~file:target e)
          | None ->
            (* suppress the A-lint "clean" line when S-findings exist:
               the target is not clean *)
            if not (diags = [] && sfindings <> []) then
              List.iter print_endline
                (Analysis.Lint.to_lines ~model:target diags);
            List.iter print_endline
              (Text.Doclint.to_lines ~file:target sfindings))
        results;
    finish ();
    if issues > 0 then exit 1
  in
  let model_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "model"; "m" ] ~docv:"MODEL"
             ~doc:"Benchmark model name (see list-models).")
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Lint every registry model.")
  in
  let files_arg =
    Arg.(value & pos_all file []
         & info [] ~docv:"FILE"
             ~doc:"Textual .stcg file(s): parse and validate, lint the \
                   compiled program (A-codes), and lint the spec section \
                   against the analyzer's output bounds (S-codes, \
                   file:line:col positions).")
  in
  let json_arg =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print findings as a JSON object on stdout (stable field \
                   order) instead of text lines.  Exit status is \
                   unchanged.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically lint models and .stcg files: uninitialized reads, \
             dead stores, constant guards, unreachable states, index range \
             errors (A-codes), and spec-aware requirement checks — \
             statically decided or vacuous requirements, windows past the \
             falsification horizon, constant signals (S-codes).  Exit 1 \
             when any finding fires.")
    Term.(const run $ model_opt_arg $ all_arg $ files_arg $ json_arg
          $ telemetry_term)

let replay_cmd =
  let run model path tel =
    let finish = telemetry_setup tel in
    let entry = find_model model in
    let prog = entry.Models.Registry.program () in
    let testcases = Stcg.Testcase.load prog path in
    let tracker = Stcg.Testcase.replay_suite prog testcases in
    Fmt.pr "replayed %d test cases: %a@." (List.length testcases)
      Coverage.Tracker.pp_summary tracker;
    finish ()
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Test-suite file produced by run --export.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Independently re-measure the coverage of an exported test suite.")
    Term.(const run $ model_arg $ file_arg $ telemetry_term)

(* --- textual model format (.stcg) -------------------------------------- *)

let stcg_files_arg =
  Arg.(non_empty & pos_all file [] & info [] ~docv:"FILE"
       ~doc:"Textual model file(s) in the .stcg format.")

let dump_cmd =
  let run model =
    let entry = find_model model in
    let doc =
      {
        Text.Document.source =
          Text.Source.of_registry entry.Models.Registry.source;
        spec =
          List.map
            (fun (r : Spec.Requirements.req) ->
              (r.Spec.Requirements.r_name, r.Spec.Requirements.r_formula))
            (Spec.Requirements.for_model entry.Models.Registry.name);
      }
    in
    print_string (Text.Printer.print_document doc)
  in
  Cmd.v
    (Cmd.info "dump"
       ~doc:"Print a benchmark model in the textual .stcg format, including \
             its built-in requirement table as a (spec ...) section (the \
             golden files under test/goldens are this command's output).")
    Term.(const run $ model_arg)

let parse_cmd =
  let run files =
    let failed = ref false in
    List.iter
      (fun f ->
        match Text.Parser.parse_document_file f with
        | Ok doc ->
          let src = doc.Text.Document.source in
          let reqs = List.length doc.Text.Document.spec in
          if reqs = 0 then
            Fmt.pr "%s: %s %s@." f (Text.Source.kind_name src)
              (Text.Source.name src)
          else
            Fmt.pr "%s: %s %s (%d requirement%s)@." f
              (Text.Source.kind_name src) (Text.Source.name src) reqs
              (if reqs = 1 then "" else "s")
        | Error e ->
          failed := true;
          Fmt.epr "%s@." (Text.Syntax.error_to_string ~file:f e))
      files;
    if !failed then exit 1
  in
  Cmd.v
    (Cmd.info "parse"
       ~doc:"Parse .stcg files (including any (spec ...) requirement \
             section) and report their kind, or diagnostics with stable \
             error codes and line:column positions.  Exit 1 on any parse \
             failure.")
    Term.(const run $ stcg_files_arg)

let fmt_cmd =
  let run write check files =
    let failed = ref false in
    let dirty = ref false in
    List.iter
      (fun f ->
        match Text.Parser.parse_document_file f with
        | Error e ->
          failed := true;
          Fmt.epr "%s@." (Text.Syntax.error_to_string ~file:f e)
        | Ok doc ->
          let canon = Text.Printer.print_document doc in
          if write || check then begin
            let same = read_file f = canon in
            if not same then begin
              dirty := true;
              if write then begin
                let oc = open_out_bin f in
                output_string oc canon;
                close_out oc;
                Fmt.epr "stcg fmt: rewrote %s@." f
              end
              else Fmt.epr "stcg fmt: %s is not canonical@." f
            end
          end
          else print_string canon)
      files;
    if !failed || (check && !dirty) then exit 1
  in
  let write_arg =
    Arg.(value & flag
         & info [ "write"; "w" ] ~doc:"Rewrite the files in place.")
  in
  let check_arg =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Print nothing; exit 1 if any file is not in canonical \
                   form.")
  in
  Cmd.v
    (Cmd.info "fmt"
       ~doc:"Reprint .stcg files in canonical form (to stdout by default).")
    Term.(const run $ write_arg $ check_arg $ stcg_files_arg)

let falsify_cmd =
  let run model seed jobs steps segments shape samples descent tel =
    let finish = telemetry_setup tel in
    let shape =
      match Spec.Signal.shape_of_name shape with
      | Some s -> s
      | None ->
        Fmt.epr "falsify: unknown shape %S (expected pwc or pwl)@." shape;
        exit 2
    in
    let cfg =
      {
        (Spec.Falsify.default_config ~seed) with
        steps;
        segments;
        shape;
        samples;
        descent;
      }
    in
    let reqs =
      match model with
      | None -> Spec.Requirements.table
      | Some m -> (
        let entry = find_model m in
        match Spec.Requirements.for_model entry.Models.Registry.name with
        | [] ->
          Fmt.epr "falsify: no requirements for model %s@."
            entry.Models.Registry.name;
          exit 2
        | reqs -> reqs)
    in
    let rows = Spec.Falsify.campaign ?jobs cfg reqs in
    print_string (Spec.Falsify.render cfg rows);
    finish ();
    let real_violation =
      List.exists
        (fun (r : Spec.Falsify.row) ->
          r.Spec.Falsify.f_falsified && not r.Spec.Falsify.f_fault)
        rows
    in
    if real_violation then exit 1
  in
  let model_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "model"; "m" ] ~docv:"MODEL"
             ~doc:"Restrict the campaign to one model's requirements \
                   (default: the whole built-in table).")
  in
  let steps_arg =
    Arg.(value & opt int 48
         & info [ "steps" ] ~docv:"N" ~doc:"Trace length per search.")
  in
  let segments_arg =
    Arg.(value & opt int 6
         & info [ "segments" ] ~docv:"N"
             ~doc:"Signal-generator segments per input variable.")
  in
  let shape_arg =
    Arg.(value & opt string "pwc"
         & info [ "shape" ] ~docv:"SHAPE"
             ~doc:"Input signal shape: pwc (piecewise-constant) or pwl \
                   (piecewise-linear).")
  in
  let samples_arg =
    Arg.(value & opt int 32
         & info [ "samples" ] ~docv:"N"
             ~doc:"Random samples per requirement before local descent.")
  in
  let descent_arg =
    Arg.(value & opt int 64
         & info [ "descent" ] ~docv:"N"
             ~doc:"Local-descent proposals per requirement.")
  in
  Cmd.v
    (Cmd.info "falsify"
       ~doc:"Robustness-guided falsification: search input signals that \
             violate the built-in STL requirement table.  Output is \
             byte-identical for any --jobs value at a fixed seed.  Exit 1 \
             when a non-seeded requirement is falsified.")
    Term.(const run $ model_opt_arg $ seed_arg $ jobs_arg $ steps_arg
          $ segments_arg $ shape_arg $ samples_arg $ descent_arg
          $ telemetry_term)

let campaign_cmd =
  let run dir tool budget seed jobs results tel =
    let finish = telemetry_setup tel in
    let tool = parse_tool tool in
    let r =
      Text.Campaign.run ~tool ~budget ~seed ?jobs ?results_dir:results
        ~log:(fun s -> Fmt.epr "%s@." s)
        dir
    in
    Fmt.epr "stcg campaign: %d executed, %d cached@." r.Text.Campaign.executed
      r.Text.Campaign.cached;
    print_string r.Text.Campaign.summary;
    finish ();
    if r.Text.Campaign.failed > 0 then exit 1
  in
  let dir_arg =
    Arg.(required & pos 0 (some dir) None & info [] ~docv:"DIR"
         ~doc:"Directory of .stcg model files.")
  in
  let results_arg =
    Arg.(value & opt (some string) None
         & info [ "results" ] ~docv:"DIR"
             ~doc:"Result-store directory (default: $(i,DIR)/results).  One \
                   self-describing JSON file per model; re-invoking the \
                   campaign skips models whose stored result matches the \
                   configuration, so an interrupted campaign resumes where \
                   it stopped.")
  in
  Cmd.v
    (Cmd.info "campaign"
       ~doc:"Run one tool over every .stcg model in a directory, with a \
             resumable per-model result store.  The summary is \
             byte-identical whether the campaign ran in one go or was \
             interrupted and resumed.  Exit 1 if any model fails to parse \
             or run.")
    Term.(const run $ dir_arg $ tool_arg $ budget_arg $ seed_arg $ jobs_arg
          $ results_arg $ telemetry_term)

let () =
  let doc = "STCG: state-aware test case generation (DAC'23 reproduction)" in
  let info = Cmd.info "stcg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_models_cmd; run_cmd; table1_cmd; table2_cmd; table3_cmd;
            fig3_cmd; fig4_cmd; ablations_cmd; merge_cmd; lint_cmd; replay_cmd;
            dump_cmd; parse_cmd; fmt_cmd; campaign_cmd; falsify_cmd;
          ]))
