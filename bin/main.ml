(* stcg — command-line front-end.

   Subcommands mirror the paper's artifacts:
     list-models          the benchmark suite (Table II data)
     run                  one tool on one model, with test-case export
     table1 table2 table3 the paper's tables
     fig3 fig4            the paper's figures (fig4 can dump CSV)
     ablations            design-choice ablations
     replay               re-measure coverage of an exported test suite *)

open Cmdliner

let budget_arg =
  let doc = "Virtual time budget in seconds (the paper uses 3600)." in
  Arg.(value & opt float 3600.0 & info [ "budget" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "PRNG seed for randomized tools." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let seeds_arg =
  let doc = "Number of seeds to average randomized tools over." in
  Arg.(value & opt int 5 & info [ "seeds" ] ~docv:"N" ~doc)

let jobs_arg =
  let doc =
    "Worker domains for the run matrix (default: \\$(b,STCG_JOBS) or the \
     machine's core count minus one).  Output is byte-identical for any \
     value; 1 disables parallelism."
  in
  Arg.(value & opt (some int) None & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let model_arg =
  let doc = "Benchmark model name (see list-models)." in
  Arg.(required & opt (some string) None & info [ "model"; "m" ] ~docv:"MODEL" ~doc)

(* --- telemetry --------------------------------------------------------- *)

let stats_arg =
  let doc =
    "Print telemetry after the run: deterministic counters and histograms, \
     then scheduling counters and wall-clock span totals."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let trace_arg =
  let doc =
    "Write a Chrome trace_event JSON file to $(docv) (open in \
     chrome://tracing or ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let force_arg =
  let doc = "Allow $(b,--trace) to overwrite an existing file." in
  Arg.(value & flag & info [ "force" ] ~doc)

let telemetry_term =
  Term.(
    const (fun stats trace force -> (stats, trace, force))
    $ stats_arg $ trace_arg $ force_arg)

(* Validate the trace destination and enable telemetry *before* the
   workload runs; the returned thunk exports after it. *)
let telemetry_setup (stats, trace, force) =
  (match trace with
   | Some path when Sys.file_exists path && not force ->
     Fmt.epr "stcg: refusing to overwrite existing %s (pass --force)@." path;
     exit 2
   | _ -> ());
  if stats || trace <> None then Telemetry.enable ();
  fun () ->
    (match trace with
     | Some path ->
       Telemetry.Chrome_trace.write ~path;
       Fmt.pr "wrote Chrome trace to %s@." path
     | None -> ());
    if stats then print_string (Telemetry.render_summary ())

let tool_arg =
  let doc = "Tool: stcg, stcg-hybrid, sldv or simcotest." in
  Arg.(value & opt string "stcg" & info [ "tool"; "t" ] ~docv:"TOOL" ~doc)

let find_model name =
  match Models.Registry.find name with
  | Some e -> e
  | None ->
    Fmt.epr "unknown model %s; available: %s@." name
      (String.concat ", " Models.Registry.names);
    exit 2

let parse_tool = function
  | "stcg" -> Harness.Experiment.STCG
  | "stcg-hybrid" -> Harness.Experiment.STCG_hybrid
  | "sldv" -> Harness.Experiment.SLDV
  | "simcotest" -> Harness.Experiment.SimCoTest
  | t ->
    Fmt.epr "unknown tool %s (stcg | stcg-hybrid | sldv | simcotest)@." t;
    exit 2

let list_models_cmd =
  let run () =
    List.iter
      (fun (e : Models.Registry.entry) ->
        let prog = e.Models.Registry.program () in
        Fmt.pr "%-12s %-40s %4d branches@." e.Models.Registry.name
          e.Models.Registry.description
          (Slim.Branch.count prog))
      Models.Registry.entries
  in
  Cmd.v (Cmd.info "list-models" ~doc:"List the benchmark models (Table II).")
    Term.(const run $ const ())

let run_cmd =
  let run model tool budget seed analyze export tel =
    let finish = telemetry_setup tel in
    let entry = find_model model in
    let tool = parse_tool tool in
    let result = Harness.Experiment.run_tool ~budget ~analyze ~seed tool entry in
    Fmt.pr "%a@." Stcg.Run_result.pp_summary result;
    (match export with
     | Some path ->
       let prog = entry.Models.Registry.program () in
       Stcg.Testcase.save prog result.Stcg.Run_result.testcases path;
       Fmt.pr "exported %d test cases to %s@."
         (List.length result.Stcg.Run_result.testcases)
         path
     | None -> ());
    Fmt.pr "timeline:@.";
    List.iter
      (fun (t, p) -> Fmt.pr "  %7.1fs  %5.1f%%@." t p)
      result.Stcg.Run_result.timeline;
    finish ()
  in
  let export_arg =
    Arg.(value & opt (some string) None
         & info [ "export" ] ~docv:"FILE" ~doc:"Export test cases to $(docv).")
  in
  let analyze_arg =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Run the static analyzer first: proven-dead objectives \
                   are justified in coverage reporting and skipped by the \
                   solving loop (STCG variants only).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one tool on one benchmark model.")
    Term.(const run $ model_arg $ tool_arg $ budget_arg $ seed_arg
          $ analyze_arg $ export_arg $ telemetry_term)

let table1_cmd =
  let run budget seed tel =
    let finish = telemetry_setup tel in
    print_string (Harness.Experiment.table1 ~budget ~seed ());
    finish ()
  in
  Cmd.v (Cmd.info "table1" ~doc:"State-tree construction trace (Table I).")
    Term.(const run $ budget_arg $ seed_arg $ telemetry_term)

let table2_cmd =
  let run () = print_string (Harness.Experiment.table2 ()) in
  Cmd.v (Cmd.info "table2" ~doc:"Benchmark description (Table II).")
    Term.(const run $ const ())

let table3_cmd =
  let run budget seeds jobs tel =
    let finish = telemetry_setup tel in
    let seeds = List.init seeds (fun i -> i + 1) in
    let _, text = Harness.Experiment.table3 ~budget ~seeds ?jobs () in
    print_string text;
    finish ()
  in
  Cmd.v (Cmd.info "table3" ~doc:"Coverage comparison (Table III).")
    Term.(const run $ budget_arg $ seeds_arg $ jobs_arg $ telemetry_term)

let fig3_cmd =
  let run () = print_string (Harness.Experiment.fig3 ()) in
  Cmd.v (Cmd.info "fig3" ~doc:"CPUTask branch structure and state tree (Figure 3).")
    Term.(const run $ const ())

let fig4_cmd =
  let run budget seed models csv_dir jobs tel =
    let finish = telemetry_setup tel in
    let models = match models with [] -> None | l -> Some l in
    let panels, csvs = Harness.Experiment.fig4 ~budget ~seed ?models ?jobs () in
    print_string panels;
    (match csv_dir with
     | None -> ()
     | Some dir ->
       (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
       List.iter
         (fun (name, csv) ->
           let path = Filename.concat dir (Fmt.str "fig4_%s.csv" name) in
           let oc = open_out path in
           output_string oc csv;
           close_out oc;
           Fmt.pr "wrote %s@." path)
         csvs);
    finish ()
  in
  let models_arg =
    Arg.(value & opt_all string [] & info [ "only" ] ~docv:"MODEL"
         ~doc:"Restrict to the given model(s); repeatable.")
  in
  let csv_arg =
    Arg.(value & opt (some string) None
         & info [ "csv" ] ~docv:"DIR" ~doc:"Also dump per-model CSV series to $(docv).")
  in
  Cmd.v (Cmd.info "fig4" ~doc:"Coverage versus time, all tools (Figure 4).")
    Term.(const run $ budget_arg $ seed_arg $ models_arg $ csv_arg $ jobs_arg
          $ telemetry_term)

let ablations_cmd =
  let run budget seeds jobs tel =
    let finish = telemetry_setup tel in
    let seeds = List.init seeds (fun i -> i + 1) in
    print_string (Harness.Experiment.ablations ~budget ~seeds ?jobs ());
    finish ()
  in
  Cmd.v
    (Cmd.info "ablations"
       ~doc:"Ablate STCG's design choices (depth sort, state constants, random fallback, hybrid).")
    Term.(const run $ budget_arg
          $ Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"N" ~doc:"Seeds to average over.")
          $ jobs_arg $ telemetry_term)

let lint_cmd =
  let run model all tel =
    let finish = telemetry_setup tel in
    let entries =
      if all then Models.Registry.entries
      else
        match model with
        | Some m -> [ find_model m ]
        | None ->
          Fmt.epr "lint: pass --model NAME or --all@.";
          exit 2
    in
    let issues = ref 0 in
    List.iter
      (fun (e : Models.Registry.entry) ->
        let prog = e.Models.Registry.program () in
        let diags = Analysis.Lint.run prog in
        issues := !issues + List.length diags;
        List.iter print_endline
          (Analysis.Lint.to_lines ~model:e.Models.Registry.name diags))
      entries;
    finish ();
    if !issues > 0 then exit 1
  in
  let model_opt_arg =
    Arg.(value & opt (some string) None
         & info [ "model"; "m" ] ~docv:"MODEL"
             ~doc:"Benchmark model name (see list-models).")
  in
  let all_arg =
    Arg.(value & flag
         & info [ "all" ] ~doc:"Lint every registry model.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically lint models: uninitialized reads, dead stores, \
             constant guards, unreachable states, index range errors.  \
             Exit 1 when any diagnostic fires.")
    Term.(const run $ model_opt_arg $ all_arg $ telemetry_term)

let replay_cmd =
  let run model path tel =
    let finish = telemetry_setup tel in
    let entry = find_model model in
    let prog = entry.Models.Registry.program () in
    let testcases = Stcg.Testcase.load prog path in
    let tracker = Stcg.Testcase.replay_suite prog testcases in
    Fmt.pr "replayed %d test cases: %a@." (List.length testcases)
      Coverage.Tracker.pp_summary tracker;
    finish ()
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
         ~doc:"Test-suite file produced by run --export.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Independently re-measure the coverage of an exported test suite.")
    Term.(const run $ model_arg $ file_arg $ telemetry_term)

let () =
  let doc = "STCG: state-aware test case generation (DAC'23 reproduction)" in
  let info = Cmd.info "stcg" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_models_cmd; run_cmd; table1_cmd; table2_cmd; table3_cmd;
            fig3_cmd; fig4_cmd; ablations_cmd; lint_cmd; replay_cmd;
          ]))
