(* fuzz — random-model fuzzing with differential oracles.

   Generates random Slim diagrams and Stateflow charts, executes them,
   and cross-checks the whole stack (Exec vs Interp, coverage tracker
   invariants, symexec path-predicate soundness, solver solution
   soundness).  Failing cases are shrunk to a minimal runnable OCaml
   reproducer.  Exit status: 0 clean, 1 oracle violations, 2 usage. *)

open Cmdliner

let seed_arg =
  let doc =
    "Campaign seed.  Case $(i,i) of seed $(i,s) replays identically for \
     any $(b,--count), $(b,--jobs) or $(b,--chunk)."
  in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let count_arg =
  let doc = "Number of random cases to generate." in
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc)

let max_steps_arg =
  let doc = "Maximum input-sequence length per case (drawn in [1, N])." in
  Arg.(value & opt int 12 & info [ "max-steps" ] ~docv:"N" ~doc)

let oracle_arg =
  let doc =
    "Oracles to run: comma-separated subset of exec, coverage, symexec, \
     solver (repeatable).  Default: all four."
  in
  Arg.(
    value
    & opt_all (list string) []
    & info [ "oracle"; "o" ] ~docv:"NAMES" ~doc)

let jobs_arg =
  let doc =
    "Worker domains.  The summary is byte-identical for any value; 1 \
     (the default) disables parallelism."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let chunk_arg =
  let doc = "Cases per pool job when $(b,--jobs) > 1." in
  Arg.(value & opt int 8 & info [ "chunk" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Emit the summary as a JSON object instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let stats_arg =
  let doc =
    "Collect telemetry during the campaign and print it (or, with \
     $(b,--json), include it under the \"telemetry\" key): per-oracle \
     run counts and timing, solver/symexec/exec counters."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let main seed count max_steps oracles jobs chunk json stats =
  let oracles =
    match List.concat oracles with [] -> Fuzzer.Oracle.all | l -> l
  in
  let unknown =
    List.filter (fun o -> not (List.mem o Fuzzer.Oracle.all)) oracles
  in
  if unknown <> [] then begin
    Fmt.epr "unknown oracle(s) %s; available: %s@."
      (String.concat ", " unknown)
      (String.concat ", " Fuzzer.Oracle.all);
    exit 2
  end;
  if stats then Telemetry.enable ();
  let summary =
    Fuzzer.Campaign.run ~oracles ~jobs ~chunk ~seed ~count ~max_steps ()
  in
  if json then begin
    let telemetry = if stats then Some (Telemetry.json_summary ()) else None in
    print_endline (Fuzzer.Campaign.to_json ?telemetry summary)
  end
  else begin
    Fmt.pr "%a@." Fuzzer.Campaign.pp_summary summary;
    if stats then print_string (Telemetry.render_summary ())
  end;
  if Fuzzer.Campaign.failures summary > 0 then exit 1

let cmd =
  let doc = "Random-model fuzzing with differential oracles." in
  Cmd.v
    (Cmd.info "fuzz" ~version:"1.0.0" ~doc)
    Term.(
      const main $ seed_arg $ count_arg $ max_steps_arg $ oracle_arg
      $ jobs_arg $ chunk_arg $ json_arg $ stats_arg)

let () = exit (Cmd.eval cmd)
