(* fuzz — random-model fuzzing with differential oracles.

   Generates random Slim diagrams and Stateflow charts, executes them,
   and cross-checks the whole stack (Exec vs Interp, coverage tracker
   invariants, symexec path-predicate soundness, solver solution
   soundness).  Failing cases are shrunk to a minimal runnable OCaml
   reproducer.  Exit status: 0 clean, 1 oracle violations, 2 usage. *)

open Cmdliner

let seed_arg =
  let doc =
    "Campaign seed.  Case $(i,i) of seed $(i,s) replays identically for \
     any $(b,--count), $(b,--jobs) or $(b,--chunk)."
  in
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc)

let count_arg =
  let doc = "Number of random cases to generate." in
  Arg.(value & opt int 100 & info [ "count"; "n" ] ~docv:"N" ~doc)

let max_steps_arg =
  let doc = "Maximum input-sequence length per case (drawn in [1, N])." in
  Arg.(value & opt int 12 & info [ "max-steps" ] ~docv:"N" ~doc)

let oracle_arg =
  let doc =
    "Oracles to run: comma-separated subset of exec, coverage, symexec, \
     solver, analysis (repeatable).  Default: all five."
  in
  Arg.(
    value
    & opt_all (list string) []
    & info [ "oracle"; "o" ] ~docv:"NAMES" ~doc)

let jobs_arg =
  let doc =
    "Worker domains.  The summary is byte-identical for any value; 1 \
     (the default) disables parallelism."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let chunk_arg =
  let doc = "Cases per pool job when $(b,--jobs) > 1." in
  Arg.(value & opt int 8 & info [ "chunk" ] ~docv:"N" ~doc)

let json_arg =
  let doc = "Emit the summary as a JSON object instead of text." in
  Arg.(value & flag & info [ "json" ] ~doc)

let stats_arg =
  let doc =
    "Collect telemetry during the campaign and print it (or, with \
     $(b,--json), include it under the \"telemetry\" key): per-oracle \
     run counts and timing, solver/symexec/exec counters."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let corpus_arg =
  let doc =
    "Append every campaign failure to $(docv)/corpus.jsonl (created if \
     absent): one JSON object per line addressing the case by (seed, \
     index, max_steps) so it replays exactly."
  in
  Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"DIR" ~doc)

let export_arg =
  let doc =
    "Also dump every generated model to $(docv)/seed$(i,S)-case$(i,NNNNNN).stcg \
     (created if absent) in the textual model format, so a campaign doubles \
     as a corpus builder for $(b,stcg campaign)."
  in
  Arg.(value & opt (some string) None & info [ "export" ] ~docv:"DIR" ~doc)

let export_models dir ~seed ~count ~max_steps =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let exported = ref 0 in
  for i = 0 to count - 1 do
    let model, _steps, _inputs =
      Fuzzer.Campaign.case_gen ~seed ~max_steps i
    in
    match Text.Printer.print (Text.Source.of_spec model) with
    | text ->
      let path =
        Filename.concat dir (Printf.sprintf "seed%d-case%06d.stcg" seed i)
      in
      let oc = open_out_bin path in
      output_string oc text;
      close_out oc;
      incr exported
    | exception exn ->
      (* a model the printer rejects is reported, not fatal: the
         campaign already judges the case itself *)
      Fmt.epr "export: case %d not printable: %s@." i (Printexc.to_string exn)
  done;
  Fmt.pr "export: wrote %d models to %s@." !exported dir

let replay_arg =
  let doc =
    "Replay a corpus file instead of running a campaign: regenerate each \
     entry's case and re-run the oracle that once failed.  Exit 0 when \
     every entry passes (all recorded bugs stayed fixed), 1 otherwise."
  in
  Arg.(
    value & opt (some file) None & info [ "replay-corpus" ] ~docv:"FILE" ~doc)

let replay_corpus path =
  match Fuzzer.Corpus.load path with
  | Error m ->
    Fmt.epr "corpus: %s@." m;
    exit 2
  | Ok entries ->
    let failed = ref 0 in
    List.iter
      (fun (e : Fuzzer.Corpus.entry) ->
        match Fuzzer.Corpus.replay e with
        | Fuzzer.Oracle.Pass ->
          Fmt.pr "replay seed=%d index=%d oracle=%s: PASS@." e.e_seed
            e.e_index e.e_oracle
        | Fuzzer.Oracle.Fail m ->
          incr failed;
          Fmt.pr "replay seed=%d index=%d oracle=%s: FAIL %s@." e.e_seed
            e.e_index e.e_oracle m)
      entries;
    Fmt.pr "corpus: %d entries, %d regressions@." (List.length entries)
      !failed;
    if !failed > 0 then exit 1

let run_campaign seed count max_steps oracles jobs chunk json stats corpus
    export =
  let oracles =
    match List.concat oracles with [] -> Fuzzer.Oracle.all | l -> l
  in
  let unknown =
    List.filter (fun o -> not (List.mem o Fuzzer.Oracle.all)) oracles
  in
  if unknown <> [] then begin
    Fmt.epr "unknown oracle(s) %s; available: %s@."
      (String.concat ", " unknown)
      (String.concat ", " Fuzzer.Oracle.all);
    exit 2
  end;
  if stats then Telemetry.enable ();
  (match export with
   | Some dir -> export_models dir ~seed ~count ~max_steps
   | None -> ());
  let summary =
    Fuzzer.Campaign.run ~oracles ~jobs ~chunk ~seed ~count ~max_steps ()
  in
  if json then begin
    let telemetry = if stats then Some (Telemetry.json_summary ()) else None in
    print_endline (Fuzzer.Campaign.to_json ?telemetry summary)
  end
  else begin
    Fmt.pr "%a@." Fuzzer.Campaign.pp_summary summary;
    if stats then print_string (Telemetry.render_summary ())
  end;
  (match corpus with
   | Some dir ->
     let entries =
       Fuzzer.Corpus.of_failures ~seed ~max_steps summary.Fuzzer.Campaign.s_failures
     in
     if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
     let path = Filename.concat dir "corpus.jsonl" in
     Fuzzer.Corpus.append ~path entries;
     if entries <> [] then
       Fmt.pr "corpus: %d failure(s) appended to %s@." (List.length entries)
         path
   | None -> ());
  if Fuzzer.Campaign.failures summary > 0 then exit 1

let main seed count max_steps oracles jobs chunk json stats corpus export
    replay =
  match replay with
  | Some path -> replay_corpus path
  | None ->
    run_campaign seed count max_steps oracles jobs chunk json stats corpus
      export

let cmd =
  let doc = "Random-model fuzzing with differential oracles." in
  Cmd.v
    (Cmd.info "fuzz" ~version:"1.0.0" ~doc)
    Term.(
      const main $ seed_arg $ count_arg $ max_steps_arg $ oracle_arg
      $ jobs_arg $ chunk_arg $ json_arg $ stats_arg $ corpus_arg
      $ export_arg $ replay_arg)

let () = exit (Cmd.eval cmd)
