(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation, then runs Bechamel micro-benchmarks of the substrate.

     dune exec bench/main.exe

   Environment knobs:
     STCG_BENCH_QUICK=1   smaller budgets / fewer seeds (smoke mode)
     STCG_BENCH_SEEDS=n   number of seeds for randomized tools *)

let quick = Sys.getenv_opt "STCG_BENCH_QUICK" = Some "1"

let n_seeds =
  match Sys.getenv_opt "STCG_BENCH_SEEDS" with
  | Some s -> (try int_of_string s with _ -> if quick then 2 else 5)
  | None -> if quick then 2 else 5

let budget = if quick then 600.0 else 3600.0
let seeds = List.init n_seeds (fun i -> i + 1)

let section title =
  Fmt.pr "@.%s@.%s@.@." title (String.make (String.length title) '=')

(* --- paper artifacts --------------------------------------------------- *)

let paper_artifacts () =
  section "Table II - benchmark models";
  print_string (Harness.Experiment.table2 ());
  Fmt.pr "@.";

  section "Table I - state-tree construction on CPUTask";
  print_string (Harness.Experiment.table1 ~budget ~seed:1 ());

  section "Figure 3 - CPUTask branch structure and state tree";
  print_string (Harness.Experiment.fig3 ());

  section "Table III - coverage comparison";
  let _, table3 = Harness.Experiment.table3 ~budget ~seeds () in
  print_string table3;
  Fmt.pr "@.";

  section "Figure 4 - decision coverage vs time";
  let panels, _csvs = Harness.Experiment.fig4 ~budget ~seed:1 () in
  print_string panels;

  section "Ablations - STCG design choices";
  print_string
    (Harness.Experiment.ablations ~budget
       ~seeds:(List.filteri (fun i _ -> i < 3) seeds)
       ())

(* --- micro-benchmarks --------------------------------------------------- *)

let micro_benchmarks () =
  section "Bechamel micro-benchmarks (substrate primitives)";
  let open Bechamel in
  let open Toolkit in
  let cputask = (Option.get (Models.Registry.find "CPUTask")).program () in
  let st0 = Slim.Interp.initial_state cputask in
  let rng = Random.State.make [| 11 |] in
  let inputs = Slim.Interp.random_inputs rng cputask in
  let branch =
    List.nth (Slim.Branch.sort_by_depth (Slim.Branch.of_program cputask)) 10
  in
  let tracker = Coverage.Tracker.create cputask in
  let test_interp =
    Test.make ~name:"interp: one CPUTask step"
      (Staged.stage (fun () ->
           ignore (Slim.Interp.run_step cputask st0 inputs)))
  in
  let test_tracked =
    Test.make ~name:"interp: step + coverage tracking"
      (Staged.stage (fun () ->
           ignore
             (Slim.Interp.run_step
                ~on_event:(Coverage.Tracker.observe tracker)
                cputask st0 inputs)))
  in
  let test_solve =
    Test.make ~name:"symexec: one-step branch solve"
      (Staged.stage (fun () ->
           ignore
             (Symexec.Explore.solve_branch cputask ~state:st0
                ~target:branch.Slim.Branch.key)))
  in
  let csp_problem =
    let open Solver in
    {
      Csp.p_vars =
        [
          ("x", Slim.Value.tint_range 0 10000);
          ("y", Slim.Value.tint_range 0 10000);
        ];
      p_constraint =
        Term.and_
          (Term.cmp Slim.Ir.Eq (Term.var "x")
             (Term.binop Slim.Ir.Add (Term.var "y") (Term.cint 137)))
          (Term.cmp Slim.Ir.Ge (Term.var "y") (Term.cint 420));
    }
  in
  let test_csp =
    Test.make ~name:"solver: linear int CSP"
      (Staged.stage (fun () -> ignore (Solver.Csp.solve csp_problem)))
  in
  let test_compile =
    Test.make ~name:"compile: AFC diagram -> IR"
      (Staged.stage (fun () ->
           ignore (Slim.Compile.to_program (Models.Afc.model ()))))
  in
  let tests =
    [ test_interp; test_tracked; test_solve; test_csp; test_compile ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) ()
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "%-40s %12.1f ns/run@." name est
          | Some _ | None -> Fmt.pr "%-40s (no estimate)@." name)
        results)
    tests

let () =
  Fmt.pr "STCG reproduction benchmark harness%s@."
    (if quick then " (quick mode)" else "");
  Fmt.pr "budget=%.0f virtual seconds, %d seeds@." budget n_seeds;
  paper_artifacts ();
  micro_benchmarks ();
  Fmt.pr "@.done.@."
