(** SimCoTest-like baseline: random search with simulation feedback.

    SimCoTest generates test suites of input {e signals} (constant,
    step, ramp, pulse, random-walk shapes over a fixed horizon), runs
    them on the model, and keeps candidates that improve coverage.  All
    candidates start from the initial model state — there is no state
    tree — so state-matching conditions ("the ID added earlier") are hit
    only by luck, which is the weakness the paper exploits.

    Random but reproducible: all randomness flows from [seed]. *)

type config = {
  budget : float;  (** virtual seconds *)
  horizon : int;  (** steps per candidate signal *)
  seed : int;
  gen_overhead : float;
      (** virtual cost of generating one candidate and starting its
          simulation (MATLAB-hosted runs pay seconds per test) *)
}

val default_config : config

val run : ?config:config -> model:string -> Slim.Ir.program -> Stcg.Run_result.t
