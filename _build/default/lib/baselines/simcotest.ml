module Exec = Slim.Exec
module Value = Slim.Value
module Ir = Slim.Ir
module Branch = Slim.Branch
module Tracker = Coverage.Tracker
module Vclock = Stcg.Vclock
module Testcase = Stcg.Testcase

type config = {
  budget : float;
  horizon : int;
  seed : int;
  gen_overhead : float;
}

let default_config =
  { budget = 3600.0; horizon = 30; seed = 1; gen_overhead = 1.5 }

(* Signal shapes over a horizon, as SimCoTest samples them. *)
type shape =
  | Constant of Value.t
  | Step of Value.t * Value.t * int  (** before, after, switch step *)
  | Pulse of Value.t * Value.t * int * int  (** base, active, start, len *)
  | Ramp_sig of float * float  (** start, slope; numeric types only *)
  | Random_walk of Value.t list  (** presampled values per step *)
  | Piecewise of (int * Value.t) list  (** segment starts and values *)

let sample_scalar rng ty = Value.random rng ty

let sample_shape rng (ty : Value.ty) horizon =
  match ty with
  | Value.Tvec _ ->
    (* vector ports get fresh random values each step *)
    Random_walk (List.init horizon (fun _ -> Value.random rng ty))
  | Value.Tbool | Value.Tint _ | Value.Treal _ -> (
    match Random.State.int rng 6 with
    | 0 -> Constant (sample_scalar rng ty)
    | 1 ->
      Step
        ( sample_scalar rng ty,
          sample_scalar rng ty,
          1 + Random.State.int rng (max 1 (horizon - 1)) )
    | 2 ->
      Pulse
        ( sample_scalar rng ty,
          sample_scalar rng ty,
          Random.State.int rng horizon,
          1 + Random.State.int rng 5 )
    | 3 -> (
      match ty with
      | Value.Treal { lo; hi } ->
        let start = lo +. Random.State.float rng (Float.max 1e-9 (hi -. lo)) in
        let slope = (hi -. lo) /. float_of_int (4 * horizon) in
        Ramp_sig (start, if Random.State.bool rng then slope else -.slope)
      | _ -> Constant (sample_scalar rng ty))
    | 4 -> Random_walk (List.init horizon (fun _ -> sample_scalar rng ty))
    | _ ->
      let segments = 2 + Random.State.int rng 3 in
      Piecewise
        (List.init segments (fun k ->
             (k * horizon / segments, sample_scalar rng ty))))

let value_at (ty : Value.ty) shape step =
  match shape with
  | Constant v -> v
  | Step (a, b, at) -> if step < at then a else b
  | Pulse (base, active, start, len) ->
    if step >= start && step < start + len then active else base
  | Ramp_sig (start, slope) ->
    let raw = start +. (slope *. float_of_int step) in
    (match ty with
     | Value.Treal { lo; hi } -> Value.Real (Float.min hi (Float.max lo raw))
     | Value.Tint { lo; hi } ->
       Value.Int (min hi (max lo (int_of_float raw)))
     | Value.Tbool -> Value.Bool (raw > 0.0)
     | Value.Tvec _ -> Value.default_of_ty ty)
  | Random_walk vs -> (
    match List.nth_opt vs step with
    | Some v -> v
    | None -> Value.default_of_ty ty)
  | Piecewise segs ->
    let rec pick last = function
      | [] -> last
      | (at, v) :: rest -> if step >= at then pick v rest else last
    in
    pick (Value.default_of_ty ty) segs

let candidate rng ex horizon : Exec.inputs list =
  let vars = Exec.input_vars ex in
  let n = Array.length vars in
  let shapes = Array.make n (Value.Tbool, Constant (Value.Bool false)) in
  (* explicit ascending loop: shape sampling consumes the RNG in input
     declaration order, keeping sequences reproducible per seed *)
  for i = 0 to n - 1 do
    let ty = vars.(i).Ir.ty in
    shapes.(i) <- (ty, sample_shape rng ty horizon)
  done;
  List.init horizon (fun step ->
      Array.map (fun (ty, shape) -> value_at ty shape step) shapes)

let run ?(config = default_config) ~model (prog : Ir.program) =
  let ex = Exec.handle prog in
  let tracker = Tracker.create prog in
  let clock = Vclock.create ~budget:config.budget in
  let rng = Random.State.make [| config.seed; 0x51C0 |] in
  let testcases = ref [] in
  let timeline = ref [] in
  let next_tc = ref 0 in
  let decision_total = (Tracker.decision tracker).Tracker.total in
  let record_timeline () =
    let covered = (Tracker.decision tracker).Tracker.covered in
    let pct =
      if decision_total = 0 then 100.0
      else 100.0 *. float covered /. float decision_total
    in
    timeline := (Vclock.now clock, pct) :: !timeline
  in
  while (not (Vclock.expired clock)) && not (Tracker.fully_covered tracker) do
    Vclock.charge clock config.gen_overhead;
    let inputs = candidate rng ex config.horizon in
    let before = Tracker.covered_branches tracker in
    let _, _ =
      Exec.run_sequence ~on_event:(Tracker.observe tracker) ex
        (Exec.initial_state ex) inputs
    in
    Vclock.charge_steps clock (List.length inputs);
    let after = Tracker.covered_branches tracker in
    let fresh = Branch.Key_set.diff after before in
    if not (Branch.Key_set.is_empty fresh) then begin
      let tc =
        {
          Testcase.tc_id = !next_tc;
          steps = inputs;
          origin = Testcase.Random_exec;
          found_at = Vclock.now clock;
          new_branches = Branch.Key_set.elements fresh;
        }
      in
      incr next_tc;
      testcases := tc :: !testcases;
      record_timeline ()
    end
  done;
  {
    Stcg.Run_result.tool = "SimCoTest";
    model;
    tracker;
    testcases = List.rev !testcases;
    timeline = List.rev !timeline;
    markers =
      List.rev_map
        (fun (tc : Testcase.t) -> (tc.Testcase.found_at, tc.Testcase.origin))
        !testcases;
    final_time = Vclock.now clock;
  }
