(** SLDV-like baseline: whole-trace constraint solving.

    Simulink Design Verifier generates tests by symbolic analysis of the
    unrolled model, without dynamic state feedback.  This baseline
    reproduces that method class: iterative-deepening bounded symbolic
    execution ({!Symexec.Explore.solve_branch_multi}) from the initial
    state, one query per uncovered branch per horizon.  Deep
    state-dependent branches blow up the path count and time out —
    the failure mode STCG addresses.

    Runs are deterministic (no random search), matching the paper's
    single-shot SLDV behaviour in Figure 4. *)

type config = {
  budget : float;  (** virtual seconds *)
  horizons : int list;  (** iterative deepening schedule *)
  solver : Symexec.Explore.config;
}

val default_config : config

val run : ?config:config -> model:string -> Slim.Ir.program -> Stcg.Run_result.t
