lib/baselines/simcotest.mli: Slim Stcg
