lib/baselines/sldv.ml: Coverage Hashtbl List Slim Stcg Symexec
