lib/baselines/sldv.mli: Slim Stcg Symexec
