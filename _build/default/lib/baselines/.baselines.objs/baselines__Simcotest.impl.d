lib/baselines/simcotest.ml: Coverage Float List Random Slim Stcg
