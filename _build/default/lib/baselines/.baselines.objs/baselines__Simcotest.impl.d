lib/baselines/simcotest.ml: Array Coverage Float List Random Slim Stcg
