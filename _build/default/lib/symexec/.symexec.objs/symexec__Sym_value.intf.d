lib/symexec/sym_value.mli: Fmt Slim Solver
