lib/symexec/sym_value.ml: Array Fmt Format List Map Option Slim Solver
