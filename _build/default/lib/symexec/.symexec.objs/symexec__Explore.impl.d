lib/symexec/explore.ml: Array Fmt List Option Random Slim Solver String Sym_value
