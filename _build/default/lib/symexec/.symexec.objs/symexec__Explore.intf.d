lib/symexec/explore.mli: Fmt Slim
