(** Compilation of charts to SLIM IR.

    Each region gets an integer location state variable; chart outputs
    persist across steps through shadow state variables.  Transition
    guards become [If] decisions (in priority order), so every
    transition contributes a branch in the sense of the paper's
    Definition 1; the region dispatch becomes a [Switch] whose last
    state is the default case. *)

val compile : Chart.t -> Slim.Ir.fragment
(** Validates, then compiles.  Raises {!Chart.Invalid_chart}. *)

val to_program : Chart.t -> Slim.Ir.program
(** A standalone program whose I/O is exactly the chart's — convenient
    for chart-only models.  Decisions are densely renumbered and the
    result is type-checked. *)
