module Ir = Slim.Ir
module Value = Slim.Value

(* Compilation context: accumulated state variables (location variables,
   output shadows) discovered while walking the chart. *)
type ctx = { mutable states : (Ir.var * Value.t) list }

let loc_var_name path = if path = "" then "loc" else "loc." ^ path

let rec region_has_exit (r : Chart.region) =
  List.exists
    (fun (s : Chart.state) ->
      s.exit <> []
      || (match s.children with Some c -> region_has_exit c | None -> false))
    r.states

(* Entering a state resets and enters its child region (no history). *)
let rec enter_state ctx path (s : Chart.state) : Ir.stmt list =
  s.entry
  @
  match s.children with
  | None -> []
  | Some child ->
    let child_path = (if path = "" then "" else path ^ ".") ^ s.st_name in
    let loc = loc_var_name child_path in
    let init_idx = Chart.state_index child child.initial in
    let init_state =
      List.find
        (fun (st : Chart.state) -> st.st_name = child.initial)
        child.states
    in
    Ir.assign_state loc (Ir.ci init_idx)
    :: enter_state ctx child_path init_state

(* Exiting a composite state exits whichever child is active first. *)
let rec exit_state path (s : Chart.state) : Ir.stmt list =
  let child_exits =
    match s.children with
    | Some child when region_has_exit child ->
      let child_path = (if path = "" then "" else path ^ ".") ^ s.st_name in
      let loc = loc_var_name child_path in
      let n = List.length child.states in
      let cases =
        List.mapi
          (fun i (st : Chart.state) -> (i, exit_state child_path st))
          child.states
      in
      (* Last state doubles as the default so the dispatch is total. *)
      let cases, default =
        match List.rev cases with
        | (_, last) :: rev_rest -> (List.rev rev_rest, last)
        | [] -> ([], [])
      in
      if n = 1 then default
      else [ Ir.switch (Ir.sv loc) cases default ]
    | _ -> []
  in
  child_exits @ s.exit

let is_const_true = function
  | Ir.Const (Value.Bool true) -> true
  | _ -> false

let rec compile_region ctx path (r : Chart.region) : Ir.stmt list =
  let loc = loc_var_name path in
  let n = List.length r.states in
  let init_idx = Chart.state_index r r.initial in
  ctx.states <-
    (Ir.var Ir.State loc (Value.tint_range 0 (n - 1)), Value.Int init_idx)
    :: ctx.states;
  let state_code (s : Chart.state) =
    let stay =
      s.during
      @
      match s.children with
      | Some child ->
        let child_path = (if path = "" then "" else path ^ ".") ^ s.st_name in
        compile_region ctx child_path child
      | None -> []
    in
    let fire (tr : Chart.transition) =
      let dst_state =
        List.find (fun (st : Chart.state) -> st.st_name = tr.dst) r.states
      in
      exit_state path s
      @ tr.t_action
      @ (Ir.assign_state loc (Ir.ci (Chart.state_index r tr.dst))
         :: enter_state ctx path dst_state)
    in
    let rec chain = function
      | [] -> stay
      | tr :: rest ->
        if is_const_true tr.Chart.guard then fire tr
        else [ Ir.if_ tr.Chart.guard (fire tr) (chain rest) ]
    in
    let outgoing =
      List.filter (fun (tr : Chart.transition) -> tr.src = s.st_name)
        r.transitions
    in
    chain outgoing
  in
  if n = 1 then
    match r.states with
    | [ s ] -> state_code s
    | _ -> assert false
  else begin
    let cases = List.mapi (fun i s -> (i, state_code s)) r.states in
    let cases, default =
      match List.rev cases with
      | (_, last) :: rev_rest -> (List.rev rev_rest, last)
      | [] -> ([], [])
    in
    [ Ir.switch (Ir.sv loc) cases default ]
  end

let compile (c : Chart.t) : Ir.fragment =
  Chart.validate c;
  let ctx = { states = [] } in
  let body = compile_region ctx "" c.top in
  (* Outputs persist across steps via shadow state variables. *)
  let shadows =
    List.map
      (fun (v : Ir.var) ->
        (Ir.var Ir.State ("out." ^ v.name) v.ty, Value.default_of_ty v.ty))
      c.outputs
  in
  let load_outputs =
    List.map
      (fun (v : Ir.var) ->
        Ir.Assign (Ir.Lvar (Ir.Output, v.name), Ir.sv ("out." ^ v.name)))
      c.outputs
  in
  let save_outputs =
    List.map
      (fun (v : Ir.var) ->
        Ir.assign_state ("out." ^ v.name) (Ir.Var (Ir.Output, v.name)))
      c.outputs
  in
  {
    Ir.f_name = c.ch_name;
    f_inputs = c.inputs;
    f_outputs = c.outputs;
    f_states = c.data @ List.rev ctx.states @ shadows;
    f_locals = [];
    f_body = load_outputs @ body @ save_outputs;
  }

let to_program (c : Chart.t) : Ir.program =
  let frag = compile c in
  let prog =
    {
      Ir.name = c.ch_name;
      inputs = frag.Ir.f_inputs;
      outputs = frag.Ir.f_outputs;
      states = frag.Ir.f_states;
      locals = frag.Ir.f_locals;
      body = frag.Ir.f_body;
    }
  in
  let prog = Ir.renumber_decisions prog in
  Ir.type_check prog;
  prog
