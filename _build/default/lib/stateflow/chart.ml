type transition = {
  src : string;
  dst : string;
  guard : Slim.Ir.expr;
  t_action : Slim.Ir.stmt list;
}

type state = {
  st_name : string;
  entry : Slim.Ir.stmt list;
  during : Slim.Ir.stmt list;
  exit : Slim.Ir.stmt list;
  children : region option;
}

and region = {
  states : state list;
  initial : string;
  transitions : transition list;
}

type t = {
  ch_name : string;
  inputs : Slim.Ir.var list;
  outputs : Slim.Ir.var list;
  data : (Slim.Ir.var * Slim.Value.t) list;
  top : region;
}

exception Invalid_chart of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_chart s)) fmt

let state ?(entry = []) ?(during = []) ?(exit = []) ?children st_name =
  { st_name; entry; during; exit; children }

let trans ?(guard = Slim.Ir.cb true) ?(action = []) src dst =
  { src; dst; guard; t_action = action }

let region ~initial ?(transitions = []) states =
  { states; initial; transitions }

let chart ~name ?(inputs = []) ?(outputs = []) ?(data = []) top =
  { ch_name = name; inputs; outputs; data; top }

let state_index r name =
  let rec go i = function
    | [] -> invalid "unknown state %s" name
    | s :: rest -> if s.st_name = name then i else go (i + 1) rest
  in
  go 0 r.states

let validate (c : t) =
  let rec check_region path (r : region) =
    let names = List.map (fun s -> s.st_name) r.states in
    if r.states = [] then invalid "%s: empty region" path;
    let sorted = List.sort_uniq String.compare names in
    if List.length sorted <> List.length names then
      invalid "%s: duplicate state names" path;
    if not (List.mem r.initial names) then
      invalid "%s: initial state %s not found" path r.initial;
    List.iter
      (fun tr ->
        if not (List.mem tr.src names) then
          invalid "%s: transition from unknown state %s" path tr.src;
        if not (List.mem tr.dst names) then
          invalid "%s: transition to unknown state %s" path tr.dst)
      r.transitions;
    List.iter
      (fun s ->
        match s.children with
        | Some child -> check_region (path ^ "/" ^ s.st_name) child
        | None -> ())
      r.states
  in
  check_region c.ch_name c.top
