lib/stateflow/chart.mli: Slim
