lib/stateflow/sf_compile.mli: Chart Slim
