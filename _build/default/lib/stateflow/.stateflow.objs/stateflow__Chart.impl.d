lib/stateflow/chart.ml: Format List Slim String
