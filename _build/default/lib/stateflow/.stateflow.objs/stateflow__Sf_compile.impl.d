lib/stateflow/sf_compile.ml: Chart List Slim
