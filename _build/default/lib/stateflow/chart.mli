(** Stateflow-like hierarchical state machines.

    A chart has typed inputs and outputs, persistent local data, and one
    top region of exclusive (OR) states.  Each state may carry entry /
    during / exit actions and one child region.  Transitions connect
    sibling states; their guards and actions are SLIM IR expressions and
    statements over the chart's scope:

    - inputs are read with [Ir.iv],
    - persistent data with [Ir.sv] / written with [Ir.assign_state],
    - outputs with [Ir.Var (Output, _)] / written with [Ir.assign_out].

    Charts compile ({!Sf_compile.compile}) to an {!Slim.Ir.fragment}
    whose state variables include one location variable per region, so a
    chart's full configuration is part of the model state snapshot —
    exactly the [M]/[ML] component of the paper's Definition 2.

    Semantics per step (a simplification of Stateflow's):
    transitions of the active state are tried in priority (list) order;
    the first enabled one exits the source (children first), runs the
    transition action, moves, and enters the destination (initial child
    states recursively).  If none fires, the during action runs and the
    child region, if any, takes a step.  Outputs hold their previous
    value unless assigned. *)

type transition = {
  src : string;
  dst : string;
  guard : Slim.Ir.expr;
  t_action : Slim.Ir.stmt list;
}

type state = {
  st_name : string;
  entry : Slim.Ir.stmt list;
  during : Slim.Ir.stmt list;
  exit : Slim.Ir.stmt list;
  children : region option;
}

and region = {
  states : state list;
  initial : string;
  transitions : transition list;
}

type t = {
  ch_name : string;
  inputs : Slim.Ir.var list;
  outputs : Slim.Ir.var list;
  data : (Slim.Ir.var * Slim.Value.t) list;
  top : region;
}

exception Invalid_chart of string

(** {1 Builders} *)

val state :
  ?entry:Slim.Ir.stmt list ->
  ?during:Slim.Ir.stmt list ->
  ?exit:Slim.Ir.stmt list ->
  ?children:region ->
  string ->
  state

val trans :
  ?guard:Slim.Ir.expr -> ?action:Slim.Ir.stmt list -> string -> string ->
  transition
(** [trans src dst] — unguarded by default. *)

val region :
  initial:string -> ?transitions:transition list -> state list -> region

val chart :
  name:string ->
  ?inputs:Slim.Ir.var list ->
  ?outputs:Slim.Ir.var list ->
  ?data:(Slim.Ir.var * Slim.Value.t) list ->
  region ->
  t

val validate : t -> unit
(** Checks that transition endpoints exist, initial states exist, state
    names within a region are unique.  Raises {!Invalid_chart}. *)

val state_index : region -> string -> int
(** Index used to encode the state in the region's location variable. *)
