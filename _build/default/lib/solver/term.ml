module Value = Slim.Value
module Ir = Slim.Ir

type t =
  | Cst of Value.t
  | Tvar of string
  | Tunop of Ir.unop * t
  | Tbinop of Ir.binop * t * t
  | Tcmp of Ir.cmpop * t * t
  | Tand of t * t
  | Tor of t * t
  | Tnot of t
  | Tite of t * t * t

let cst v = Cst v
let cbool b = Cst (Value.Bool b)
let cint i = Cst (Value.Int i)
let creal r = Cst (Value.Real r)
let var name = Tvar name

let is_const = function Cst v -> Some v | _ -> None

let eval_unop (op : Ir.unop) v =
  match op with
  | Ir.Neg -> Value.neg v
  | Ir.Not -> Value.Bool (not (Value.to_bool v))
  | Ir.Abs_op -> Value.abs_v v
  | Ir.To_real -> Value.Real (Value.to_real v)
  | Ir.To_int -> Value.Int (Value.to_int v)
  | Ir.Floor -> Value.floor_v v
  | Ir.Ceil -> Value.ceil_v v

let eval_binop (op : Ir.binop) a b =
  match op with
  | Ir.Add -> Value.add a b
  | Ir.Sub -> Value.sub a b
  | Ir.Mul -> Value.mul a b
  | Ir.Div -> Value.div a b
  | Ir.Mod -> Value.modulo a b
  | Ir.Min -> Value.min_v a b
  | Ir.Max -> Value.max_v a b

let eval_cmp (op : Ir.cmpop) a b =
  let c () = Value.compare_num a b in
  match op with
  | Ir.Eq -> Value.equal a b
  | Ir.Ne -> not (Value.equal a b)
  | Ir.Lt -> c () < 0
  | Ir.Le -> c () <= 0
  | Ir.Gt -> c () > 0
  | Ir.Ge -> c () >= 0

let unop op e =
  match e with
  | Cst v -> (try Cst (eval_unop op v) with Value.Type_error _ -> Tunop (op, e))
  | _ -> Tunop (op, e)

let binop op a b =
  match a, b with
  | Cst va, Cst vb ->
    (try Cst (eval_binop op va vb) with Value.Type_error _ -> Tbinop (op, a, b))
  | _ -> Tbinop (op, a, b)

let cmp op a b =
  match a, b with
  | Cst va, Cst vb ->
    (try Cst (Value.Bool (eval_cmp op va vb))
     with Value.Type_error _ -> Tcmp (op, a, b))
  | _ -> Tcmp (op, a, b)

let and_ a b =
  match a, b with
  | Cst (Value.Bool true), x | x, Cst (Value.Bool true) -> x
  | Cst (Value.Bool false), _ | _, Cst (Value.Bool false) -> cbool false
  | _ -> Tand (a, b)

let or_ a b =
  match a, b with
  | Cst (Value.Bool false), x | x, Cst (Value.Bool false) -> x
  | Cst (Value.Bool true), _ | _, Cst (Value.Bool true) -> cbool true
  | _ -> Tor (a, b)

let not_ = function
  | Cst (Value.Bool b) -> cbool (not b)
  | Tnot e -> e
  | e -> Tnot e

let ite c t e =
  match c with
  | Cst (Value.Bool true) -> t
  | Cst (Value.Bool false) -> e
  | _ -> if t = e then t else Tite (c, t, e)

let conj = function
  | [] -> cbool true
  | t :: ts -> List.fold_left and_ t ts

let vars t =
  let module S = Set.Make (String) in
  let rec go acc = function
    | Cst _ -> acc
    | Tvar x -> S.add x acc
    | Tunop (_, e) | Tnot e -> go acc e
    | Tbinop (_, a, b) | Tcmp (_, a, b) | Tand (a, b) | Tor (a, b) ->
      go (go acc a) b
    | Tite (c, a, b) -> go (go (go acc c) a) b
  in
  S.elements (go S.empty t)

let rec size = function
  | Cst _ | Tvar _ -> 1
  | Tunop (_, e) | Tnot e -> 1 + size e
  | Tbinop (_, a, b) | Tcmp (_, a, b) | Tand (a, b) | Tor (a, b) ->
    1 + size a + size b
  | Tite (c, a, b) -> 1 + size c + size a + size b

(* Terms built by multi-step state threading can be exponentially large
   when walked as trees even though they are compact DAGs in memory;
   [size_capped] stops counting at [cap] so callers can reject oversize
   constraints in bounded time. *)
let size_capped cap t =
  let n = ref 0 in
  let rec go t =
    if !n < cap then begin
      incr n;
      match t with
      | Cst _ | Tvar _ -> ()
      | Tunop (_, e) | Tnot e -> go e
      | Tbinop (_, a, b) | Tcmp (_, a, b) | Tand (a, b) | Tor (a, b) ->
        go a;
        go b
      | Tite (c, a, b) ->
        go c;
        go a;
        go b
    end
  in
  go t;
  !n

let rec eval env = function
  | Cst v -> v
  | Tvar x -> env x
  | Tunop (op, e) -> eval_unop op (eval env e)
  | Tbinop (op, a, b) -> eval_binop op (eval env a) (eval env b)
  | Tcmp (op, a, b) -> Value.Bool (eval_cmp op (eval env a) (eval env b))
  | Tand (a, b) ->
    Value.Bool (Value.to_bool (eval env a) && Value.to_bool (eval env b))
  | Tor (a, b) ->
    Value.Bool (Value.to_bool (eval env a) || Value.to_bool (eval env b))
  | Tnot e -> Value.Bool (not (Value.to_bool (eval env e)))
  | Tite (c, a, b) ->
    if Value.to_bool (eval env c) then eval env a else eval env b

let rec pp ppf = function
  | Cst v -> Value.pp ppf v
  | Tvar x -> Fmt.string ppf x
  | Tunop (op, e) -> Fmt.pf ppf "%a(%a)" Ir.pp_unop op pp e
  | Tbinop (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ir.pp_binop op pp b
  | Tcmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp a Ir.pp_cmpop op pp b
  | Tand (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Tor (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Tnot e -> Fmt.pf ppf "!(%a)" pp e
  | Tite (c, a, b) -> Fmt.pf ppf "(%a ? %a : %a)" pp c pp a pp b

let equal = ( = )
