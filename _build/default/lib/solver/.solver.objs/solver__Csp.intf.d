lib/solver/csp.mli: Fmt Map Random Slim Term
