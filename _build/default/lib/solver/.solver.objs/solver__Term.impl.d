lib/solver/term.ml: Fmt List Set Slim String
