lib/solver/term.mli: Fmt Slim
