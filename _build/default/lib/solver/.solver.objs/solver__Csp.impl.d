lib/solver/csp.ml: Dom Fmt Hashtbl Hc4 List Map Random Slim String Term
