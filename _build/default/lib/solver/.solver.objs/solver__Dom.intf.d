lib/solver/dom.mli: Fmt Slim
