lib/solver/hc4.ml: Dom Float Hashtbl List Slim Term
