lib/solver/dom.ml: Float Fmt List Slim
