(** Solver terms: scalar constraints over named decision variables.

    Terms mirror the SLIM IR expression language minus [Index]: the
    symbolic executor eliminates array reads before constraints reach
    the solver (constant arrays fold; symbolic indices over constant
    arrays expand to [Tite] chains).  Smart constructors fold constants
    aggressively — this folding is what makes state-aware solving cheap,
    because state variables arrive as constants. *)

type t =
  | Cst of Slim.Value.t
  | Tvar of string
  | Tunop of Slim.Ir.unop * t
  | Tbinop of Slim.Ir.binop * t * t
  | Tcmp of Slim.Ir.cmpop * t * t
  | Tand of t * t
  | Tor of t * t
  | Tnot of t
  | Tite of t * t * t

val cst : Slim.Value.t -> t
val cbool : bool -> t
val cint : int -> t
val creal : float -> t
val var : string -> t

(** Folding constructors: constant subterms are evaluated away. *)

val unop : Slim.Ir.unop -> t -> t
val binop : Slim.Ir.binop -> t -> t -> t
val cmp : Slim.Ir.cmpop -> t -> t -> t
val and_ : t -> t -> t
val or_ : t -> t -> t
val not_ : t -> t
val ite : t -> t -> t -> t

val is_const : t -> Slim.Value.t option
val conj : t list -> t

val vars : t -> string list
(** Free variables, sorted, without duplicates. *)

val size : t -> int
(** Node count — used for virtual-time cost accounting. *)

val size_capped : int -> t -> int
(** Node count, but stops at the cap: terms threaded through many
    symbolic steps can be exponentially large as trees even when they
    are compact DAGs, and this keeps measuring them cheap. *)

val eval : (string -> Slim.Value.t) -> t -> Slim.Value.t
(** Concrete evaluation under a full assignment.  Raises
    {!Slim.Value.Type_error} on ill-typed terms. *)

val pp : t Fmt.t
val equal : t -> t -> bool
