lib/coverage/criteria.mli: Slim
