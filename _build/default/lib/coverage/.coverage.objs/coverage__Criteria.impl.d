lib/coverage/criteria.ml: Array List Slim
