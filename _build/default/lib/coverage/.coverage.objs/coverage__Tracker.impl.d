lib/coverage/tracker.ml: Array Criteria Fmt Fun Hashtbl List Slim String
