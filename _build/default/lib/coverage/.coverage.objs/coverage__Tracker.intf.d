lib/coverage/tracker.mli: Criteria Fmt Slim
