(** Static structure of the three coverage criteria on a SLIM program.

    - {b Decision coverage}: every branch (then/else of each [If], every
      case and the default of each [Switch]) executes.
    - {b Condition coverage}: every atomic condition of every [If] guard
      evaluates to both true and false.
    - {b MCDC}: every atomic condition is shown to independently affect
      its decision's outcome.  We check unique-cause MCDC extended with
      masking: a pair of observed condition vectors demonstrates
      independence of condition [i] when the outcomes differ, [i]
      differs, and every other differing condition is masked (flipping
      it alone changes neither vector's outcome). *)

type decision_info = {
  d_id : int;
  d_kind : [ `If | `Switch ];
  d_atom_count : int;  (** 0 for [Switch] *)
  d_fn : bool array -> bool;
      (** the guard as a function of its atom vector ([`If] only) *)
}

type t = {
  branches : Slim.Branch.t list;
  decisions : decision_info list;
  decision_total : int;  (** number of branches *)
  condition_total : int;  (** 2 x number of atoms over all [If] guards *)
  mcdc_total : int;  (** number of atoms over all [If] guards *)
}

val of_program : Slim.Ir.program -> t

val guard_fn : Slim.Ir.expr -> bool array -> bool
(** Evaluate a guard over given atom truth values (atoms in
    {!Slim.Ir.atoms_of_condition} order). *)

val mcdc_pair_ok :
  (bool array -> bool) -> int -> bool array * bool -> bool array * bool -> bool
(** [mcdc_pair_ok fn i (v1, o1) (v2, o2)] — does the pair demonstrate
    the independent effect of condition [i] (masking allowed)? *)
