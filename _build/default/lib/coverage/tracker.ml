module Exec = Slim.Exec
module Branch = Slim.Branch

(* Observed condition vectors are interned per decision as strings of
   'T'/'F' so the set stays small and hashable. *)
let key_of_vector (v : bool array) =
  String.init (Array.length v) (fun i -> if v.(i) then 'T' else 'F')

let vector_of_key s =
  Array.init (String.length s) (fun i -> s.[i] = 'T')

type t = {
  criteria : Criteria.t;
  info : (int, Criteria.decision_info) Hashtbl.t;
  mutable branches : Branch.Key_set.t;
  cond_seen : (int * int * bool, unit) Hashtbl.t;
  vectors : (int, (string, bool) Hashtbl.t) Hashtbl.t;
      (* decision id -> vector key -> outcome *)
  mutable progress : int;
      (* bumped whenever genuinely new information arrives *)
}

let create prog =
  let criteria = Criteria.of_program prog in
  let info = Hashtbl.create 64 in
  List.iter
    (fun (d : Criteria.decision_info) -> Hashtbl.replace info d.d_id d)
    criteria.decisions;
  {
    criteria;
    info;
    branches = Branch.Key_set.empty;
    cond_seen = Hashtbl.create 256;
    vectors = Hashtbl.create 64;
    progress = 0;
  }

let criteria t = t.criteria

let observe t = function
  | Exec.Branch_hit key ->
    if not (Branch.Key_set.mem key t.branches) then begin
      t.branches <- Branch.Key_set.add key t.branches;
      t.progress <- t.progress + 1
    end
  | Exec.Cond_vector { id; vector; outcome } ->
    Array.iteri
      (fun i b ->
        if not (Hashtbl.mem t.cond_seen (id, i, b)) then begin
          Hashtbl.replace t.cond_seen (id, i, b) ();
          t.progress <- t.progress + 1
        end)
      vector;
    let tbl =
      match Hashtbl.find_opt t.vectors id with
      | Some tbl -> tbl
      | None ->
        let tbl = Hashtbl.create 8 in
        Hashtbl.replace t.vectors id tbl;
        tbl
    in
    let vk = key_of_vector vector in
    if not (Hashtbl.mem tbl vk) then begin
      Hashtbl.replace tbl vk outcome;
      t.progress <- t.progress + 1
    end

let progress t = t.progress

let covered_branches t = t.branches
let is_branch_covered t key = Branch.Key_set.mem key t.branches

type ratio = { covered : int; total : int }

let pct r = if r.total = 0 then 100.0 else 100.0 *. float r.covered /. float r.total

let decision t =
  { covered = Branch.Key_set.cardinal t.branches;
    total = t.criteria.decision_total }

let condition t =
  { covered = Hashtbl.length t.cond_seen;
    total = t.criteria.condition_total }

let mcdc t =
  let covered = ref 0 in
  List.iter
    (fun (d : Criteria.decision_info) ->
      if d.d_atom_count > 0 then begin
        let observed =
          match Hashtbl.find_opt t.vectors d.d_id with
          | None -> []
          | Some tbl ->
            Hashtbl.fold (fun k o acc -> (vector_of_key k, o) :: acc) tbl []
        in
        for i = 0 to d.d_atom_count - 1 do
          let ok =
            List.exists
              (fun p1 ->
                List.exists
                  (fun p2 -> Criteria.mcdc_pair_ok d.d_fn i p1 p2)
                  observed)
              observed
          in
          if ok then incr covered
        done
      end)
    t.criteria.decisions;
  { covered = !covered; total = t.criteria.mcdc_total }

let is_condition_covered t decision atom value =
  Hashtbl.mem t.cond_seen (decision, atom, value)

let observed_vectors t decision =
  match Hashtbl.find_opt t.vectors decision with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun k o acc -> (vector_of_key k, o) :: acc) tbl []

let find_decision t id = Hashtbl.find_opt t.info id

let uncovered_mcdc t =
  List.concat_map
    (fun (d : Criteria.decision_info) ->
      if d.d_atom_count = 0 then []
      else begin
        let observed = observed_vectors t d.d_id in
        List.filter_map
          (fun i ->
            let ok =
              List.exists
                (fun p1 ->
                  List.exists
                    (fun p2 -> Criteria.mcdc_pair_ok d.d_fn i p1 p2)
                    observed)
                observed
            in
            if ok then None else Some (d.d_id, i))
          (List.init d.d_atom_count Fun.id)
      end)
    t.criteria.decisions

let uncovered_branches t =
  List.filter
    (fun (b : Branch.t) -> not (Branch.Key_set.mem b.key t.branches))
    t.criteria.branches

let fully_covered t =
  Branch.Key_set.cardinal t.branches = t.criteria.decision_total

let copy t =
  {
    criteria = t.criteria;
    info = t.info;
    branches = t.branches;
    cond_seen = Hashtbl.copy t.cond_seen;
    vectors =
      (let v = Hashtbl.create (Hashtbl.length t.vectors) in
       Hashtbl.iter (fun k tbl -> Hashtbl.replace v k (Hashtbl.copy tbl)) t.vectors;
       v);
    progress = t.progress;
  }

let pp_summary ppf t =
  let d = decision t and c = condition t and m = mcdc t in
  Fmt.pf ppf "decision %d/%d (%.1f%%)  condition %d/%d (%.1f%%)  mcdc %d/%d (%.1f%%)"
    d.covered d.total (pct d) c.covered c.total (pct c) m.covered m.total
    (pct m)
