(** Uniform view of one tool run on one model — what the experiment
    harness consumes to build Table III and Figure 4. *)

type t = {
  tool : string;
  model : string;
  tracker : Coverage.Tracker.t;
  testcases : Testcase.t list;
  timeline : (float * float) list;
      (** (virtual time, decision coverage %) — increasing *)
  markers : (float * Testcase.origin) list;
      (** test-case discovery times with their origin (Figure 4's
          triangles and diamonds) *)
  final_time : float;
}

val of_engine_run : model:string -> Engine.run -> t

val decision_pct : t -> float
val condition_pct : t -> float
val mcdc_pct : t -> float

val pp_summary : t Fmt.t
