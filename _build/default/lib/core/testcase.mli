(** Test cases: input sequences from the initial model state.

    A test case is the concatenation of the one-step inputs stored along
    a state-tree path (paper Algorithm 2, lines 21-25).  Test suites
    replay through the concrete interpreter — the equivalent of feeding
    exported files to Simulink's Signal Builder for an independent
    coverage measurement. *)

type origin =
  | Solved  (** produced by state-aware constraint solving (paper: △) *)
  | Random_exec  (** produced by a random input sequence (paper: ◇) *)

type t = {
  tc_id : int;
  steps : Slim.Exec.inputs list;
      (** slot-addressed inputs per iteration, in order
          ({!Slim.Exec} positional contract) *)
  origin : origin;
  found_at : float;  (** virtual timestamp *)
  new_branches : Slim.Branch.key list;
      (** branches first covered by this test case *)
}

val length : t -> int

val replay :
  ?tracker:Coverage.Tracker.t -> Slim.Ir.program -> t ->
  Slim.Exec.state
(** Run the test case from the initial state, feeding events to the
    optional tracker; returns the final state. *)

val replay_suite : Slim.Ir.program -> t list -> Coverage.Tracker.t
(** Independent coverage measurement of a whole suite on a fresh
    tracker. *)

(** {1 Text export/import}

    One line per step; each line is [name=value] pairs separated by
    tabs; test cases are separated by [# testcase <id> <origin>]
    headers — a plain-text stand-in for Signal Builder files.

    The format is deliberately name-based even though in-memory steps
    are slot-addressed: exported suites stay human-auditable and
    survive input reordering across model versions.  The compiled
    handle's slot<->name mapping translates at this boundary. *)

val to_text : Slim.Ir.program -> t list -> string
val of_text : Slim.Ir.program -> string -> t list
val save : Slim.Ir.program -> t list -> string -> unit
val load : Slim.Ir.program -> string -> t list

val pp_origin : origin Fmt.t
val pp : t Fmt.t
