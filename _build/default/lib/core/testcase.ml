module Exec = Slim.Exec
module Value = Slim.Value
module Ir = Slim.Ir

type origin = Solved | Random_exec

type t = {
  tc_id : int;
  steps : Exec.inputs list;
  origin : origin;
  found_at : float;
  new_branches : Slim.Branch.key list;
}

let length tc = List.length tc.steps

let replay ?tracker prog tc =
  let on_event =
    match tracker with
    | Some tr -> Coverage.Tracker.observe tr
    | None -> fun _ -> ()
  in
  let ex = Exec.handle prog in
  let _, final =
    Exec.run_sequence ~on_event ex (Exec.initial_state ex) tc.steps
  in
  final

let replay_suite prog tcs =
  let tracker = Coverage.Tracker.create prog in
  List.iter (fun tc -> ignore (replay ~tracker prog tc)) tcs;
  tracker

let pp_origin ppf = function
  | Solved -> Fmt.string ppf "solved"
  | Random_exec -> Fmt.string ppf "random"

let origin_of_string = function
  | "solved" -> Solved
  | "random" -> Random_exec
  | s -> invalid_arg ("unknown test case origin " ^ s)

(* The on-disk format stays name-based ([name=value] per input, tab
   separated) so exported suites survive input reordering and remain
   human-auditable; the slot<->name mapping of the compiled handle does
   the translation at this boundary only. *)
let step_to_line (prog : Ir.program) (inputs : Exec.inputs) =
  let ex = Exec.handle prog in
  Exec.input_vars ex
  |> Array.mapi (fun i (v : Ir.var) ->
         let value =
           if i < Array.length inputs then inputs.(i)
           else Value.default_of_ty v.ty
         in
         Fmt.str "%s=%s" v.name (Value.to_string value))
  |> Array.to_list
  |> String.concat "\t"

let line_to_step (prog : Ir.program) line : Exec.inputs =
  let ex = Exec.handle prog in
  let vars = Exec.input_vars ex in
  let step = Exec.default_inputs ex in
  let fields =
    String.split_on_char '\t' line
    |> List.filter (fun s -> String.trim s <> "")
  in
  List.iter
    (fun field ->
      match String.index_opt field '=' with
      | None -> ()
      | Some i ->
        let name = String.sub field 0 i in
        let text = String.sub field (i + 1) (String.length field - i - 1) in
        (match Exec.input_slot ex name with
         | Some slot -> step.(slot) <- Value.of_string vars.(slot).Ir.ty text
         | None -> ()))
    fields;
  step

let to_text prog tcs =
  let buf = Buffer.create 1024 in
  List.iter
    (fun tc ->
      Buffer.add_string buf
        (Fmt.str "# testcase %d %a\n" tc.tc_id pp_origin tc.origin);
      List.iter
        (fun step ->
          Buffer.add_string buf (step_to_line prog step);
          Buffer.add_char buf '\n')
        tc.steps)
    tcs;
  Buffer.contents buf

let of_text prog text =
  let lines = String.split_on_char '\n' text in
  let finish acc current =
    match current with
    | None -> acc
    | Some (id, origin, steps) ->
      {
        tc_id = id;
        steps = List.rev steps;
        origin;
        found_at = 0.0;
        new_branches = [];
      }
      :: acc
  in
  let acc, current =
    List.fold_left
      (fun (acc, current) line ->
        let line = String.trim line in
        if line = "" then (acc, current)
        else if String.length line > 0 && line.[0] = '#' then begin
          match String.split_on_char ' ' line with
          | [ "#"; "testcase"; id; origin ] ->
            (finish acc current,
             Some (int_of_string id, origin_of_string origin, []))
          | _ -> (acc, current)
        end
        else
          match current with
          | None -> (acc, current)
          | Some (id, origin, steps) ->
            (acc, Some (id, origin, line_to_step prog line :: steps)))
      ([], None) lines
  in
  List.rev (finish acc current)

let save prog tcs path =
  let oc = open_out path in
  output_string oc (to_text prog tcs);
  close_out oc

let load prog path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_text prog text

let pp ppf tc =
  Fmt.pf ppf "testcase #%d (%a, %d steps, t=%.1fs, +%d branches)" tc.tc_id
    pp_origin tc.origin (length tc) tc.found_at
    (List.length tc.new_branches)
