(** Deterministic virtual clock.

    The paper's experiments run each tool for one wall-clock hour on a
    fixed machine.  We reproduce the *relative* cost structure —
    constraint solving is orders of magnitude more expensive than one
    simulation step, which is more expensive than bookkeeping — with a
    virtual clock charged by the algorithms themselves.  This makes
    every experiment deterministic and laptop-scale while preserving
    the shapes of coverage-versus-time curves (Figure 4).

    All durations are in virtual seconds. *)

type t

val create : budget:float -> t
(** [budget] in virtual seconds (the paper uses 3600). *)

val charge : t -> float -> unit
(** Advance the clock; clamps at the budget. *)

val now : t -> float
val expired : t -> bool
val budget : t -> float

(** {1 Cost model}

    Rough virtual costs of the primitive operations, calibrated to the
    latencies of the toolchain the paper used (MATLAB-hosted simulation,
    an external constraint solver): *)

val cost_sim_step : float
(** One model iteration including harness overhead (20 ms). *)

val cost_state_switch : float
(** Restoring a state snapshot into the model (5 ms). *)

val cost_solver_call : float
(** Fixed overhead of one solver invocation (1 s). *)

val cost_solver_node : float
(** Per search-node cost inside the solver (50 us). *)

val cost_term_node : float
(** Constraint construction / transfer per term node (2 us). *)

val cost_path : float
(** Symbolic exploration of one path prefix (6 ms). *)

val cost_solve_episode : float
(** Fixed preparation cost of one symbolic query (120 ms). *)

val charge_solve : t -> Symexec.Explore.cost -> unit
(** Charge a whole symbolic-solving episode from its cost record. *)

val charge_steps : t -> int -> unit
(** Charge [n] simulation steps plus one state switch. *)
