lib/core/engine.ml: Array Coverage Fmt Fun Hashtbl Int List Option Random Slim State_tree Symexec Testcase Vclock
