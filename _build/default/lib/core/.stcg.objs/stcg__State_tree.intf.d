lib/core/state_tree.mli: Fmt Random Set Slim String
