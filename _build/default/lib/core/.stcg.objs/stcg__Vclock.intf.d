lib/core/vclock.mli: Symexec
