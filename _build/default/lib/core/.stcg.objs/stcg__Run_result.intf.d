lib/core/run_result.mli: Coverage Engine Fmt Testcase
