lib/core/testcase.mli: Coverage Fmt Slim
