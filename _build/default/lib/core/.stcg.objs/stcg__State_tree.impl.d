lib/core/state_tree.ml: Fmt Hashtbl List Random Set Slim String
