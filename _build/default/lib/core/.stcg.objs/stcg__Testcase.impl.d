lib/core/testcase.ml: Array Buffer Coverage Fmt List Slim String
