lib/core/testcase.ml: Buffer Coverage Fmt List Slim String
