lib/core/run_result.ml: Coverage Engine Fmt List Testcase Vclock
