lib/core/vclock.ml: Float Symexec
