lib/core/engine.mli: Coverage Slim State_tree Symexec Testcase Vclock
