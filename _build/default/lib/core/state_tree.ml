module Interp = Slim.Interp
module Sset = Set.Make (String)

type node = {
  id : int;
  parent : int option;
  state : Interp.snapshot;
  input : Interp.inputs option;
  depth : int;
  mutable solved : Sset.t;
}

type t = {
  mutable nodes_rev : node list;
  mutable count : int;
  children : (int, int list ref) Hashtbl.t;
  by_id : (int, node) Hashtbl.t;
}

let create prog =
  let root =
    {
      id = 0;
      parent = None;
      state = Interp.initial_state prog;
      input = None;
      depth = 0;
      solved = Sset.empty;
    }
  in
  let t =
    { nodes_rev = [ root ]; count = 1; children = Hashtbl.create 64;
      by_id = Hashtbl.create 64 }
  in
  Hashtbl.replace t.by_id 0 root;
  t

let root t = Hashtbl.find t.by_id 0
let node t id = Hashtbl.find t.by_id id
let size t = t.count
let nodes t = List.rev t.nodes_rev

let children_of t id =
  match Hashtbl.find_opt t.children id with
  | Some l -> !l
  | None -> []

let add_child t ~parent ~input state =
  if Interp.snapshot_equal state parent.state then (parent, false)
  else
    let existing =
      List.find_opt
        (fun cid -> Interp.snapshot_equal (node t cid).state state)
        (children_of t parent.id)
    in
    match existing with
    | Some cid -> (node t cid, false)
    | None ->
      let n =
        {
          id = t.count;
          parent = Some parent.id;
          state;
          input = Some input;
          depth = parent.depth + 1;
          solved = Sset.empty;
        }
      in
      t.count <- t.count + 1;
      t.nodes_rev <- n :: t.nodes_rev;
      Hashtbl.replace t.by_id n.id n;
      (match Hashtbl.find_opt t.children parent.id with
       | Some l -> l := n.id :: !l
       | None -> Hashtbl.replace t.children parent.id (ref [ n.id ]));
      (n, true)

let path_inputs t n =
  let rec go acc n =
    match n.parent, n.input with
    | None, _ -> acc
    | Some pid, Some input -> go (input :: acc) (node t pid)
    | Some pid, None -> go acc (node t pid)
  in
  go [] n

let random_node t rng =
  let k = Random.State.int rng t.count in
  node t k

let mark_solved n key = n.solved <- Sset.add key n.solved
let is_solved n key = Sset.mem key n.solved

let distinct_states t =
  let states = nodes t |> List.map (fun n -> n.state) in
  let rec count_distinct seen = function
    | [] -> List.length seen
    | s :: rest ->
      if List.exists (Interp.snapshot_equal s) seen then
        count_distinct seen rest
      else count_distinct (s :: seen) rest
  in
  count_distinct [] states

let pp ppf t =
  let rec render indent id =
    let n = node t id in
    Fmt.pf ppf "%sS%d" indent n.id;
    (match n.input with
     | Some input -> Fmt.pf ppf "  <- %a" Interp.pp_inputs input
     | None -> Fmt.pf ppf "  (initial state)");
    Fmt.pf ppf "@,";
    List.iter (render (indent ^ "  ")) (List.rev (children_of t id))
  in
  Fmt.pf ppf "@[<v>";
  render "" 0;
  Fmt.pf ppf "@]"
