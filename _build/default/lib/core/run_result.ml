module Tracker = Coverage.Tracker

type t = {
  tool : string;
  model : string;
  tracker : Tracker.t;
  testcases : Testcase.t list;
  timeline : (float * float) list;
  markers : (float * Testcase.origin) list;
  final_time : float;
}

let of_engine_run ~model (run : Engine.run) =
  {
    tool = "STCG";
    model;
    tracker = run.Engine.r_tracker;
    testcases = run.Engine.r_testcases;
    timeline = Engine.coverage_timeline run;
    markers =
      List.map
        (fun (tc : Testcase.t) -> (tc.Testcase.found_at, tc.Testcase.origin))
        run.Engine.r_testcases;
    final_time = Vclock.now run.Engine.r_clock;
  }

let decision_pct t = Tracker.pct (Tracker.decision t.tracker)
let condition_pct t = Tracker.pct (Tracker.condition t.tracker)
let mcdc_pct t = Tracker.pct (Tracker.mcdc t.tracker)

let pp_summary ppf t =
  Fmt.pf ppf "%-10s %-12s decision %5.1f%%  condition %5.1f%%  mcdc %5.1f%%  (%d tests, %.0fs)"
    t.tool t.model (decision_pct t) (condition_pct t) (mcdc_pct t)
    (List.length t.testcases) t.final_time
