type t = { mutable spent : float; budget : float }

let create ~budget = { spent = 0.0; budget }

let charge t d =
  assert (d >= 0.0);
  t.spent <- Float.min t.budget (t.spent +. d)

let now t = t.spent
let expired t = t.spent >= t.budget
let budget t = t.budget

(* Virtual seconds. *)
let cost_sim_step = 0.020
let cost_state_switch = 0.005
let cost_solver_call = 0.25
let cost_solver_node = 0.000_05
let cost_term_node = 0.000_002
let cost_path = 0.006

(* fixed cost of preparing one symbolic query (model extraction,
   state switching, constraint construction) *)
let cost_solve_episode = 0.12

let charge_solve t (c : Symexec.Explore.cost) =
  charge t
    (cost_solve_episode
    +. (float_of_int c.Symexec.Explore.solver_calls *. cost_solver_call)
    +. (float_of_int c.Symexec.Explore.solver_nodes *. cost_solver_node)
    +. (float_of_int c.Symexec.Explore.term_nodes *. cost_term_node)
    +. (float_of_int c.Symexec.Explore.paths_explored *. cost_path))

let charge_steps t n =
  charge t (cost_state_switch +. (float_of_int n *. cost_sim_step))
