(* Terminal line plots for coverage-versus-time series (Figure 4).

   Series are step functions (coverage only moves at test-case events);
   each series draws with its own glyph, and optional point markers
   (test-case origins) overlay the curves. *)

type series = {
  s_label : string;
  s_glyph : char;
  s_points : (float * float) list;  (* (time, value), increasing time *)
  s_markers : (float * char) list;  (* extra marker glyphs at times *)
}

let value_at points x =
  (* step interpolation: last value at time <= x, 0 before first *)
  let rec go last = function
    | [] -> last
    | (t, v) :: rest -> if t <= x then go v rest else last
  in
  go 0.0 points

let render ?(width = 72) ?(height = 16) ?(x_max = 3600.0) ?(y_max = 100.0)
    (series : series list) =
  let grid = Array.make_matrix height width ' ' in
  let put row col ch =
    if row >= 0 && row < height && col >= 0 && col < width then
      grid.(row).(col) <- ch
  in
  let col_of_x x =
    int_of_float (Float.min (float (width - 1)) (x /. x_max *. float (width - 1)))
  in
  let row_of_y y =
    let y = Float.min y_max (Float.max 0.0 y) in
    height - 1 - int_of_float (y /. y_max *. float (height - 1))
  in
  List.iter
    (fun s ->
      for col = 0 to width - 1 do
        let x = float col /. float (width - 1) *. x_max in
        let y = value_at s.s_points x in
        if y > 0.0 then put (row_of_y y) col s.s_glyph
      done;
      List.iter
        (fun (t, glyph) ->
          let y = value_at s.s_points t in
          put (row_of_y y) (col_of_x t) glyph)
        s.s_markers)
    series;
  let buf = Buffer.create (width * height) in
  Array.iteri
    (fun r row ->
      let y =
        y_max *. float (height - 1 - r) /. float (height - 1)
      in
      Buffer.add_string buf (Printf.sprintf "%5.0f |" y);
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf (String.make 6 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%6s0%*s%.0fs\n" "" (width - 6) "" x_max);
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "      %c %s\n" s.s_glyph s.s_label))
    series;
  Buffer.contents buf
