lib/harness/text_table.ml: Buffer List Option Printf String
