lib/harness/experiment.mli: Models Stcg
