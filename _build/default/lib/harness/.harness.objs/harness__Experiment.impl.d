lib/harness/experiment.ml: Ascii_plot Baselines Buffer Coverage Fmt List Models Option Slim Stcg String Symexec Text_table
