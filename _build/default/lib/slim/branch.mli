(** Model branches (paper Definition 1).

    A branch is one outcome of a decision: the [then] or [else] side of an
    [If], or one case (or the default) of a [Switch].  Each branch knows
    its parent branch (the innermost enclosing branch) and its depth (the
    number of ancestor branches), which STCG uses to sort solving
    targets shallow-first. *)

type outcome = Then | Else | Case of int | Default

type key = int * outcome
(** (decision id, outcome) — globally unique within a program. *)

type t = {
  key : key;
  decision : int;  (** decision id of the owning [If]/[Switch] *)
  outcome : outcome;
  guard : Ir.expr;  (** the [If] guard or [Switch] scrutinee *)
  parent : key option;
  depth : int;
}

val equal_key : key -> key -> bool
val compare_key : key -> key -> int
val pp_outcome : outcome Fmt.t
val pp_key : key Fmt.t
val pp : t Fmt.t

val of_program : Ir.program -> t list
(** All branches in syntactic order. *)

val sort_by_depth : t list -> t list
(** Stable sort, shallow branches first (paper Section III-A). *)

val count : Ir.program -> int

module Key_set : Set.S with type elt = key
module Key_map : Map.S with type key = key
