type wire = { w_block : int; w_port : int }

type t = {
  name : string;
  mutable blocks : Model.block list;  (* reverse order *)
  mutable next : int;
  mutable stores : (string * Value.ty * Value.t) list;
}

let create name = { name; blocks = []; next = 0; stores = [] }

let add b kind (ins : wire list) =
  let id = b.next in
  b.next <- id + 1;
  let srcs =
    Array.of_list
      (List.map (fun w -> Some { Model.s_block = w.w_block; s_port = w.w_port }) ins)
  in
  let block =
    {
      Model.id;
      bname = Fmt.str "%s%d" (Model.kind_name kind) id;
      kind;
      srcs;
    }
  in
  b.blocks <- block :: b.blocks;
  id

let add1 b kind ins = { w_block = add b kind ins; w_port = 0 }

let addn b kind ins n =
  let id = add b kind ins in
  List.init n (fun p -> { w_block = id; w_port = p })

let finish_unvalidated b =
  {
    Model.m_name = b.name;
    blocks = Array.of_list (List.rev b.blocks);
    stores = List.rev b.stores;
  }

let finish b =
  let m = finish_unvalidated b in
  Model.validate m;
  m

let data_store b name ty init = b.stores <- (name, ty, init) :: b.stores

let inport b name ty = add1 b (Model.Inport (name, ty)) []
let outport b name w = ignore (add b (Model.Outport name) [ w ])
let const b v = add1 b (Model.Constant v) []
let const_i b i = const b (Value.Int i)
let const_r b r = const b (Value.Real r)
let const_b b v = const b (Value.Bool v)

let gain b g w = add1 b (Model.Gain g) [ w ]

let sum b ws = add1 b (Model.Sum (List.map (fun _ -> Model.Plus) ws)) ws
let diff b a c = add1 b (Model.Sum [ Model.Plus; Model.Minus ]) [ a; c ]

let sum_signed b signed =
  add1 b (Model.Sum (List.map fst signed)) (List.map snd signed)

let prod b ws = add1 b (Model.Product (List.map (fun _ -> Model.Mul) ws)) ws
let divide b a c = add1 b (Model.Product [ Model.Mul; Model.Div ]) [ a; c ]
let min_ b ws = add1 b (Model.Min_max (`Min, List.length ws)) ws
let max_ b ws = add1 b (Model.Min_max (`Max, List.length ws)) ws
let abs_ b w = add1 b Model.Abs [ w ]

let saturation b ~lower ~upper w =
  add1 b (Model.Saturation { lower; upper }) [ w ]

let integrator b ?(gain = 1.0) ?(lower = neg_infinity) ?(upper = infinity)
    ~initial w =
  let lower = if lower = neg_infinity then -1e9 else lower in
  let upper = if upper = infinity then 1e9 else upper in
  add1 b (Model.Discrete_integrator { initial; gain; lower; upper }) [ w ]

let counter b ?(initial = 0) ~modulo () =
  add1 b (Model.Counter { initial; modulo }) []

let not_ b w = add1 b Model.Not [ w ]
let and_ b ws = add1 b (Model.Logical (Model.L_and, List.length ws)) ws
let or_ b ws = add1 b (Model.Logical (Model.L_or, List.length ws)) ws
let xor_ b ws = add1 b (Model.Logical (Model.L_xor, List.length ws)) ws
let relational b op a c = add1 b (Model.Relational op) [ a; c ]

let compare_const b op c w = add1 b (Model.Compare_to_const (op, c)) [ w ]

let switch b ?(cmp = Ir.Gt) ?(threshold = 0.0) ~data1 ~control ~data2 () =
  add1 b (Model.Switch { cmp; threshold }) [ data1; control; data2 ]

let multiport b ~selector cases ~default =
  let labels = List.map fst cases in
  add1 b
    (Model.Multiport_switch { labels })
    ((selector :: List.map snd cases) @ [ default ])

let selector b ~vec ~index = add1 b Model.Selector [ vec; index ]

let unit_delay b init w = add1 b (Model.Unit_delay init) [ w ]

let delay b ~initial ~length w = add1 b (Model.Delay { initial; length }) [ w ]

let ds_read b name = add1 b (Model.Data_store_read name) []
let ds_write b name w = ignore (add b (Model.Data_store_write name) [ w ])

let ds_write_element b name ~index ~value =
  ignore (add b (Model.Data_store_write_element name) [ index; value ])

let chart b frag ins =
  addn b (Model.Chart frag) ins (List.length frag.Ir.f_outputs)

let enabled b ?(held = false) sub ~enable ins =
  let n_out = List.length (snd (Model.io_signature sub)) in
  addn b (Model.Enabled { sub; held }) (enable :: ins) n_out

let if_else b ~then_sys ~else_sys ~cond ins =
  let n_out = List.length (snd (Model.io_signature then_sys)) in
  addn b (Model.If_else { then_sys; else_sys }) (cond :: ins) n_out

let case_switch b ~cases ?default ~selector ins =
  let sub =
    match cases, default with
    | (_, s) :: _, _ -> s
    | [], Some s -> s
    | [], None -> raise (Model.Invalid_model "case_switch: no subsystems")
  in
  let n_out = List.length (snd (Model.io_signature sub)) in
  addn b (Model.Case_switch { cases; default }) (selector :: ins) n_out
