(** Ergonomic construction of SLIM block diagrams.

    A builder accumulates blocks and wires; every combinator returns the
    wire(s) carrying the new block's output(s).  [finish] produces a
    validated {!Model.t}.

    {[
      let open Slim in
      let b = Builder.create "thermostat" in
      let temp = Builder.inport b "temp" (Value.treal_range (-40.) 120.) in
      let too_cold = Builder.compare_const b Ir.Lt 18.0 temp in
      Builder.outport b "heat_on" too_cold;
      let model = Builder.finish b
    ]} *)

type t

type wire
(** An output port of some block in the diagram under construction. *)

val create : string -> t
val finish : t -> Model.t
(** Validates; raises {!Model.Invalid_model} on malformed diagrams. *)

val finish_unvalidated : t -> Model.t
(** For tests that exercise {!Model.validate} failures. *)

(** {1 Data stores (model-scoped global variables)} *)

val data_store : t -> string -> Value.ty -> Value.t -> unit

(** {1 Sources and sinks} *)

val inport : t -> string -> Value.ty -> wire
val outport : t -> string -> wire -> unit
val const : t -> Value.t -> wire
val const_i : t -> int -> wire
val const_r : t -> float -> wire
val const_b : t -> bool -> wire

(** {1 Math} *)

val gain : t -> float -> wire -> wire
val sum : t -> wire list -> wire
val diff : t -> wire -> wire -> wire  (** first minus second *)

val sum_signed : t -> (Model.sign * wire) list -> wire
val prod : t -> wire list -> wire
val divide : t -> wire -> wire -> wire
val min_ : t -> wire list -> wire
val max_ : t -> wire list -> wire
val abs_ : t -> wire -> wire
val saturation : t -> lower:float -> upper:float -> wire -> wire
val integrator :
  t -> ?gain:float -> ?lower:float -> ?upper:float -> initial:float -> wire -> wire
val counter : t -> ?initial:int -> modulo:int -> unit -> wire

(** {1 Logic} *)

val not_ : t -> wire -> wire
val and_ : t -> wire list -> wire
val or_ : t -> wire list -> wire
val xor_ : t -> wire list -> wire
val relational : t -> Ir.cmpop -> wire -> wire -> wire
val compare_const : t -> Ir.cmpop -> float -> wire -> wire

(** {1 Routing (decisions)} *)

val switch :
  t -> ?cmp:Ir.cmpop -> ?threshold:float -> data1:wire -> control:wire ->
  data2:wire -> unit -> wire
(** Passes [data1] when [control cmp threshold] (default: [> 0]). *)

val multiport : t -> selector:wire -> (int * wire) list -> default:wire -> wire
val selector : t -> vec:wire -> index:wire -> wire

(** {1 Memory} *)

val unit_delay : t -> Value.t -> wire -> wire
val delay : t -> initial:Value.t -> length:int -> wire -> wire
val ds_read : t -> string -> wire
val ds_write : t -> string -> wire -> unit
val ds_write_element : t -> string -> index:wire -> value:wire -> unit

(** {1 Charts and subsystems} *)

val chart : t -> Ir.fragment -> wire list -> wire list
(** Wires must follow the fragment's formal input order; the returned
    wires follow its output order. *)

val enabled : t -> ?held:bool -> Model.t -> enable:wire -> wire list -> wire list
val if_else :
  t -> then_sys:Model.t -> else_sys:Model.t -> cond:wire -> wire list -> wire list
val case_switch :
  t -> cases:(int * Model.t) list -> ?default:Model.t -> selector:wire ->
  wire list -> wire list
