type outcome = Then | Else | Case of int | Default

type key = int * outcome

type t = {
  key : key;
  decision : int;
  outcome : outcome;
  guard : Ir.expr;
  parent : key option;
  depth : int;
}

let outcome_rank = function
  | Then -> (0, 0)
  | Else -> (1, 0)
  | Case k -> (2, k)
  | Default -> (3, 0)

let compare_outcome a b = compare (outcome_rank a) (outcome_rank b)

let compare_key (d1, o1) (d2, o2) =
  match Int.compare d1 d2 with
  | 0 -> compare_outcome o1 o2
  | c -> c

let equal_key a b = compare_key a b = 0

let pp_outcome ppf = function
  | Then -> Fmt.string ppf "then"
  | Else -> Fmt.string ppf "else"
  | Case k -> Fmt.pf ppf "case:%d" k
  | Default -> Fmt.string ppf "default"

let pp_key ppf (id, o) = Fmt.pf ppf "%d/%a" id pp_outcome o

let pp ppf b =
  Fmt.pf ppf "branch %a depth=%d guard=%a" pp_key b.key b.depth Ir.pp_expr
    b.guard

let of_program (prog : Ir.program) =
  let acc = ref [] in
  let add ~parent ~depth ~decision ~outcome ~guard =
    let b = { key = (decision, outcome); decision; outcome; guard; parent; depth } in
    acc := b :: !acc;
    b.key
  in
  let rec stmts parent depth ss = List.iter (stmt parent depth) ss
  and stmt parent depth = function
    | Ir.Assign _ -> ()
    | Ir.If { id; cond; then_; else_ } ->
      let kt = add ~parent ~depth ~decision:id ~outcome:Then ~guard:cond in
      stmts (Some kt) (depth + 1) then_;
      let ke = add ~parent ~depth ~decision:id ~outcome:Else ~guard:cond in
      stmts (Some ke) (depth + 1) else_
    | Ir.Switch { id; scrut; cases; default } ->
      List.iter
        (fun (k, ss) ->
          let key =
            add ~parent ~depth ~decision:id ~outcome:(Case k) ~guard:scrut
          in
          stmts (Some key) (depth + 1) ss)
        cases;
      let kd = add ~parent ~depth ~decision:id ~outcome:Default ~guard:scrut in
      stmts (Some kd) (depth + 1) default
  in
  stmts None 0 prog.body;
  List.rev !acc

let sort_by_depth branches =
  List.stable_sort (fun a b -> Int.compare a.depth b.depth) branches

let count prog = List.length (of_program prog)

module Key_ord = struct
  type t = key

  let compare = compare_key
end

module Key_set = Set.Make (Key_ord)
module Key_map = Map.Make (Key_ord)
