(** Concrete one-step execution of SLIM programs with coverage tracing.

    The interpreter is the paper's "dynamic execution" substrate: it runs
    exactly one iteration of the model at a time, can snapshot and restore
    the full internal state (Definition 2), and reports the decision and
    condition outcomes needed by the coverage trackers. *)

module Smap = Exec.Smap

type snapshot = Value.t Smap.t
(** Immutable map from state-variable name to (deep-copied) value: the
    model state of Definition 2 — data stores, chart locations, delay
    contents all live here. *)

type inputs = Value.t Smap.t
type outputs = Value.t Smap.t

type event = Exec.event =
  | Branch_hit of Branch.key
      (** a decision outcome was executed *)
  | Cond_vector of { id : int; vector : bool array; outcome : bool }
      (** an [If] guard was evaluated: per-atom truth values (in
          {!Ir.atoms_of_condition} order) and the guard's value *)

exception Eval_error of string
(** Alias of {!Exec.Eval_error}: both execution paths raise the same
    exception. *)

val initial_state : Ir.program -> snapshot
(** The default state (root node of the state tree). *)

val run_step :
  ?on_event:(event -> unit) ->
  Ir.program ->
  snapshot ->
  inputs ->
  outputs * snapshot
(** Execute one iteration from [snapshot] with the given inputs.  Missing
    inputs default to their type's default value.  The input snapshot is
    not mutated; a fresh one is returned.

    Executes through the slot-compiled core ({!Exec}), converting the
    name-keyed maps at the boundary; hot loops should hold an {!Exec.t}
    and work with flat arrays directly. *)

val run_step_reference :
  ?on_event:(event -> unit) ->
  Ir.program ->
  snapshot ->
  inputs ->
  outputs * snapshot
(** The original map/Hashtbl interpreter, kept as an independent oracle for
    differential testing of {!Exec}.  Not used on any production path. *)

val run_sequence :
  ?on_event:(event -> unit) ->
  Ir.program ->
  snapshot ->
  inputs list ->
  outputs list * snapshot

val inputs_of_list : (string * Value.t) list -> inputs
val default_inputs : Ir.program -> inputs
val random_inputs : Random.State.t -> Ir.program -> inputs

val snapshot_equal : snapshot -> snapshot -> bool
val pp_snapshot : snapshot Fmt.t
val pp_inputs : inputs Fmt.t
