type scope = Input | Output | State | Local

type var = { name : string; scope : scope; ty : Value.ty }

type unop = Neg | Not | Abs_op | To_real | To_int | Floor | Ceil

type binop = Add | Sub | Mul | Div | Mod | Min | Max

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of Value.t
  | Var of scope * string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Ite of expr * expr * expr
  | Index of expr * expr

type lvalue =
  | Lvar of scope * string
  | Lindex of lvalue * expr

type stmt =
  | Assign of lvalue * expr
  | If of { id : int; cond : expr; then_ : stmt list; else_ : stmt list }
  | Switch of {
      id : int;
      scrut : expr;
      cases : (int * stmt list) list;
      default : stmt list;
    }

type program = {
  name : string;
  inputs : var list;
  outputs : var list;
  states : (var * Value.t) list;
  locals : var list;
  body : stmt list;
}

exception Ill_typed of string

let ill_typed fmt = Format.kasprintf (fun s -> raise (Ill_typed s)) fmt

(* Construction helpers *)

let var scope name ty = { name; scope; ty }
let input name ty = var Input name ty
let output name ty = var Output name ty
let local name ty = var Local name ty
let state name ty init = (var State name ty, init)

let ci i = Const (Value.Int i)
let cr r = Const (Value.Real r)
let cb b = Const (Value.Bool b)
let iv name = Var (Input, name)
let sv name = Var (State, name)
let lv name = Var (Local, name)

let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( =: ) a b = Cmp (Eq, a, b)
let ( <>: ) a b = Cmp (Ne, a, b)
let ( <: ) a b = Cmp (Lt, a, b)
let ( <=: ) a b = Cmp (Le, a, b)
let ( >: ) a b = Cmp (Gt, a, b)
let ( >=: ) a b = Cmp (Ge, a, b)
let ( &&: ) a b = And (a, b)
let ( ||: ) a b = Or (a, b)
let not_ e = Unop (Not, e)
let ite c t e = Ite (c, t, e)
let index v i = Index (v, i)

let conj = function
  | [] -> cb true
  | e :: es -> List.fold_left ( &&: ) e es

let disj = function
  | [] -> cb false
  | e :: es -> List.fold_left ( ||: ) e es

let assign name e = Assign (Lvar (Local, name), e)
let assign_state name e = Assign (Lvar (State, name), e)
let assign_out name e = Assign (Lvar (Output, name), e)
let assign_state_idx name idx e = Assign (Lindex (Lvar (State, name), idx), e)

let decision_counter = ref 0

let fresh_decision_id () =
  let id = !decision_counter in
  incr decision_counter;
  id

let if_ cond then_ else_ = If { id = fresh_decision_id (); cond; then_; else_ }

let switch scrut cases default =
  Switch { id = fresh_decision_id (); scrut; cases; default }

(* Analyses *)

let atoms_of_condition cond =
  let rec go acc = function
    | And (a, b) | Or (a, b) -> go (go acc a) b
    | Unop (Not, e) -> go acc e
    | (Const _ | Var _ | Unop _ | Binop _ | Cmp _ | Ite _ | Index _) as atom ->
      atom :: acc
  in
  List.rev (go [] cond)

let decisions_of_program prog =
  let acc = ref [] in
  let rec stmts ss = List.iter stmt ss
  and stmt = function
    | Assign _ -> ()
    | If { id; cond; then_; else_ } ->
      acc := (id, `If cond) :: !acc;
      stmts then_;
      stmts else_
    | Switch { id; scrut; cases; default } ->
      acc := (id, `Switch (scrut, List.map fst cases)) :: !acc;
      List.iter (fun (_, ss) -> stmts ss) cases;
      stmts default
  in
  stmts prog.body;
  List.rev !acc

let renumber_decisions prog =
  let next = ref 0 in
  let fresh () =
    let id = !next in
    incr next;
    id
  in
  let rec stmts ss = List.map stmt ss
  and stmt = function
    | Assign _ as s -> s
    | If { id = _; cond; then_; else_ } ->
      let id = fresh () in
      let then_ = stmts then_ in
      let else_ = stmts else_ in
      If { id; cond; then_; else_ }
    | Switch { id = _; scrut; cases; default } ->
      let id = fresh () in
      let cases = List.map (fun (k, ss) -> (k, stmts ss)) cases in
      let default = stmts default in
      Switch { id; scrut; cases; default }
  in
  { prog with body = stmts prog.body }

(* Typing *)

let scope_name = function
  | Input -> "input"
  | Output -> "output"
  | State -> "state"
  | Local -> "local"

let rec ty_of_value = function
  | Value.Bool _ -> Value.Tbool
  | Value.Int _ -> Value.tint
  | Value.Real _ -> Value.treal
  | Value.Vec a ->
    let ety =
      if Array.length a = 0 then Value.tint else ty_of_value a.(0)
    in
    Value.Tvec (ety, Array.length a)

let is_num = function
  | Value.Tint _ | Value.Treal _ -> true
  | Value.Tbool | Value.Tvec _ -> false

let join_num a b =
  match a, b with
  | Value.Tint _, Value.Tint _ -> Value.tint
  | (Value.Tint _ | Value.Treal _), (Value.Tint _ | Value.Treal _) ->
    Value.treal
  | (Value.Tbool | Value.Tvec _), _ | _, (Value.Tbool | Value.Tvec _) ->
    ill_typed "numeric operator on non-numeric operand"

let rec expr_ty lookup = function
  | Const v -> ty_of_value v
  | Var (scope, name) -> lookup scope name
  | Unop (op, e) ->
    let ty = expr_ty lookup e in
    (match op with
     | Not ->
       if ty <> Value.Tbool then ill_typed "not: non-boolean operand";
       Value.Tbool
     | Neg | Abs_op ->
       if not (is_num ty) then ill_typed "neg/abs: non-numeric operand";
       ty
     | To_real ->
       (* booleans coerce to 0/1, as Simulink data-type casts do *)
       if not (is_num ty || ty = Value.Tbool) then
         ill_typed "to_real: non-scalar operand";
       Value.treal
     | Floor | Ceil ->
       if not (is_num ty) then ill_typed "floor/ceil: non-numeric";
       ty
     | To_int ->
       if not (is_num ty || ty = Value.Tbool) then
         ill_typed "to_int: non-scalar operand";
       Value.tint)
  | Binop (_, a, b) -> join_num (expr_ty lookup a) (expr_ty lookup b)
  | Cmp (op, a, b) ->
    let ta = expr_ty lookup a and tb = expr_ty lookup b in
    (match op, ta, tb with
     | (Eq | Ne), Value.Tbool, Value.Tbool -> ()
     | _, ta, tb when is_num ta && is_num tb -> ()
     | _ -> ill_typed "comparison on incompatible operands");
    Value.Tbool
  | And (a, b) | Or (a, b) ->
    if expr_ty lookup a <> Value.Tbool || expr_ty lookup b <> Value.Tbool
    then ill_typed "and/or: non-boolean operand";
    Value.Tbool
  | Ite (c, t, e) ->
    if expr_ty lookup c <> Value.Tbool then ill_typed "ite: non-bool guard";
    let tt = expr_ty lookup t and te = expr_ty lookup e in
    if Value.ty_compatible tt te then tt
    else if is_num tt && is_num te then join_num tt te
    else ill_typed "ite: branch types differ"
  | Index (v, i) ->
    if not (is_num (expr_ty lookup i)) then ill_typed "index: non-int index";
    (match expr_ty lookup v with
     | Value.Tvec (ety, _) -> ety
     | Value.Tbool | Value.Tint _ | Value.Treal _ ->
       ill_typed "index: non-vector value")

let type_check prog =
  let table = Hashtbl.create 64 in
  let declare v =
    if Hashtbl.mem table (v.scope, v.name) then
      ill_typed "duplicate %s variable %s" (scope_name v.scope) v.name;
    Hashtbl.replace table (v.scope, v.name) v.ty
  in
  List.iter declare prog.inputs;
  List.iter declare prog.outputs;
  List.iter (fun (v, init) ->
      declare v;
      if not (Value.member v.ty init) then
        ill_typed "state %s: initial value %s outside type %s" v.name
          (Value.to_string init)
          (Fmt.str "%a" Value.pp_ty v.ty))
    prog.states;
  List.iter declare prog.locals;
  let lookup scope name =
    match Hashtbl.find_opt table (scope, name) with
    | Some ty -> ty
    | None -> ill_typed "unbound %s variable %s" (scope_name scope) name
  in
  let rec lvalue_ty = function
    | Lvar (scope, name) ->
      (match scope with
       | Input -> ill_typed "assignment to input %s" name
       | Output | State | Local -> lookup scope name)
    | Lindex (lhs, idx) ->
      if not (is_num (expr_ty lookup idx)) then
        ill_typed "lvalue index: non-int index";
      (match lvalue_ty lhs with
       | Value.Tvec (ety, _) -> ety
       | Value.Tbool | Value.Tint _ | Value.Treal _ ->
         ill_typed "lvalue index on non-vector")
  in
  let check_assign lhs e =
    let lt = lvalue_ty lhs and et = expr_ty lookup e in
    let ok =
      Value.ty_compatible lt et || (is_num lt && is_num et)
    in
    if not ok then ill_typed "assignment type mismatch in %s" prog.name
  in
  let seen_ids = Hashtbl.create 64 in
  let check_id id =
    if Hashtbl.mem seen_ids id then ill_typed "duplicate decision id %d" id;
    Hashtbl.replace seen_ids id ()
  in
  let rec stmts ss = List.iter stmt ss
  and stmt = function
    | Assign (lhs, e) -> check_assign lhs e
    | If { id; cond; then_; else_ } ->
      check_id id;
      if expr_ty lookup cond <> Value.Tbool then
        ill_typed "if guard is not boolean (decision %d)" id;
      stmts then_;
      stmts else_
    | Switch { id; scrut; cases; default } ->
      check_id id;
      if not (is_num (expr_ty lookup scrut)) then
        ill_typed "switch scrutinee is not numeric (decision %d)" id;
      let labels = List.map fst cases in
      let sorted = List.sort_uniq Int.compare labels in
      if List.length sorted <> List.length labels then
        ill_typed "duplicate switch case label (decision %d)" id;
      List.iter (fun (_, ss) -> stmts ss) cases;
      stmts default
  in
  stmts prog.body

let stmt_count prog =
  let rec stmts ss = List.fold_left (fun n s -> n + stmt s) 0 ss
  and stmt = function
    | Assign _ -> 1
    | If { then_; else_; _ } -> 1 + stmts then_ + stmts else_
    | Switch { cases; default; _ } ->
      1 + List.fold_left (fun n (_, ss) -> n + stmts ss) 0 cases
      + stmts default
  in
  stmts prog.body

let decision_count prog = List.length (decisions_of_program prog)

(* Fragments *)

type fragment = {
  f_name : string;
  f_inputs : var list;
  f_outputs : var list;
  f_states : (var * Value.t) list;
  f_locals : var list;
  f_body : stmt list;
}

let instantiate ~prefix ~bind_input ~out_local frag =
  let is_input n = List.exists (fun (v : var) -> v.name = n) frag.f_inputs in
  let is_output n =
    List.exists (fun (v : var) -> v.name = n) frag.f_outputs
  in
  let rename n = prefix ^ "." ^ n in
  let rec expr = function
    | Const _ as e -> e
    | Var (Input, n) when is_input n -> bind_input n
    | Var (Input, n) -> ill_typed "fragment %s: unknown input %s" frag.f_name n
    | Var (Output, n) when is_output n -> Var (Local, out_local n)
    | Var (Output, n) ->
      ill_typed "fragment %s: unknown output %s" frag.f_name n
    | Var (State, n) -> Var (State, rename n)
    | Var (Local, n) -> Var (Local, rename n)
    | Unop (op, e) -> Unop (op, expr e)
    | Binop (op, a, b) -> Binop (op, expr a, expr b)
    | Cmp (op, a, b) -> Cmp (op, expr a, expr b)
    | And (a, b) -> And (expr a, expr b)
    | Or (a, b) -> Or (expr a, expr b)
    | Ite (c, t, e) -> Ite (expr c, expr t, expr e)
    | Index (v, i) -> Index (expr v, expr i)
  in
  let rec lvalue = function
    | Lvar (Input, n) -> ill_typed "fragment %s: assigns input %s" frag.f_name n
    | Lvar (Output, n) when is_output n -> Lvar (Local, out_local n)
    | Lvar (Output, n) ->
      ill_typed "fragment %s: unknown output %s" frag.f_name n
    | Lvar (State, n) -> Lvar (State, rename n)
    | Lvar (Local, n) -> Lvar (Local, rename n)
    | Lindex (lhs, i) -> Lindex (lvalue lhs, expr i)
  in
  let rec stmts ss = List.map stmt ss
  and stmt = function
    | Assign (lhs, e) -> Assign (lvalue lhs, expr e)
    | If { id = _; cond; then_; else_ } ->
      If
        {
          id = fresh_decision_id ();
          cond = expr cond;
          then_ = stmts then_;
          else_ = stmts else_;
        }
    | Switch { id = _; scrut; cases; default } ->
      Switch
        {
          id = fresh_decision_id ();
          scrut = expr scrut;
          cases = List.map (fun (k, ss) -> (k, stmts ss)) cases;
          default = stmts default;
        }
  in
  let states =
    List.map
      (fun ((v : var), init) -> ({ v with name = rename v.name }, init))
      frag.f_states
  in
  let locals =
    List.map (fun (v : var) -> { v with name = rename v.name }) frag.f_locals
    @ List.map
        (fun (v : var) -> { v with name = out_local v.name; scope = Local })
        frag.f_outputs
  in
  (states, locals, stmts frag.f_body)

(* Printing *)

let pp_unop ppf = function
  | Neg -> Fmt.string ppf "-"
  | Not -> Fmt.string ppf "!"
  | Abs_op -> Fmt.string ppf "abs"
  | To_real -> Fmt.string ppf "real"
  | To_int -> Fmt.string ppf "int"
  | Floor -> Fmt.string ppf "floor"
  | Ceil -> Fmt.string ppf "ceil"

let pp_binop ppf = function
  | Add -> Fmt.string ppf "+"
  | Sub -> Fmt.string ppf "-"
  | Mul -> Fmt.string ppf "*"
  | Div -> Fmt.string ppf "/"
  | Mod -> Fmt.string ppf "%"
  | Min -> Fmt.string ppf "min"
  | Max -> Fmt.string ppf "max"

let pp_cmpop ppf = function
  | Eq -> Fmt.string ppf "=="
  | Ne -> Fmt.string ppf "!="
  | Lt -> Fmt.string ppf "<"
  | Le -> Fmt.string ppf "<="
  | Gt -> Fmt.string ppf ">"
  | Ge -> Fmt.string ppf ">="

let scope_prefix = function
  | Input -> "in:"
  | Output -> "out:"
  | State -> "st:"
  | Local -> ""

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Var (scope, name) -> Fmt.pf ppf "%s%s" (scope_prefix scope) name
  | Unop (op, e) -> Fmt.pf ppf "%a(%a)" pp_unop op pp_expr e
  | Binop ((Min | Max) as op, a, b) ->
    Fmt.pf ppf "%a(%a, %a)" pp_binop op pp_expr a pp_expr b
  | Binop (op, a, b) ->
    Fmt.pf ppf "(%a %a %a)" pp_expr a pp_binop op pp_expr b
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %a %a)" pp_expr a pp_cmpop op pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp_expr a pp_expr b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp_expr a pp_expr b
  | Ite (c, t, e) ->
    Fmt.pf ppf "(%a ? %a : %a)" pp_expr c pp_expr t pp_expr e
  | Index (v, i) -> Fmt.pf ppf "%a[%a]" pp_expr v pp_expr i

let rec pp_lvalue ppf = function
  | Lvar (scope, name) -> Fmt.pf ppf "%s%s" (scope_prefix scope) name
  | Lindex (lhs, i) -> Fmt.pf ppf "%a[%a]" pp_lvalue lhs pp_expr i

let rec pp_stmt ppf = function
  | Assign (lhs, e) -> Fmt.pf ppf "@[<hv 2>%a :=@ %a@]" pp_lvalue lhs pp_expr e
  | If { id; cond; then_; else_ } ->
    Fmt.pf ppf "@[<v 2>if#%d %a {@ %a@]@ }" id pp_expr cond pp_body then_;
    if else_ <> [] then Fmt.pf ppf "@[<v 2> else {@ %a@]@ }" pp_body else_
  | Switch { id; scrut; cases; default } ->
    Fmt.pf ppf "@[<v 2>switch#%d %a {" id pp_expr scrut;
    List.iter
      (fun (k, ss) -> Fmt.pf ppf "@ @[<v 2>case %d:@ %a@]" k pp_body ss)
      cases;
    Fmt.pf ppf "@ @[<v 2>default:@ %a@]@]@ }" pp_body default

and pp_body ppf ss = Fmt.(list ~sep:(any "@ ") pp_stmt) ppf ss

let pp_var ppf (v : var) = Fmt.pf ppf "%s : %a" v.name Value.pp_ty v.ty

let pp_program ppf prog =
  Fmt.pf ppf "@[<v>program %s@," prog.name;
  Fmt.pf ppf "inputs: @[<hv>%a@]@," Fmt.(list ~sep:comma pp_var) prog.inputs;
  Fmt.pf ppf "outputs: @[<hv>%a@]@," Fmt.(list ~sep:comma pp_var) prog.outputs;
  Fmt.pf ppf "states: @[<hv>%a@]@,"
    Fmt.(
      list ~sep:comma (fun ppf (v, init) ->
          Fmt.pf ppf "%a = %a" pp_var v Value.pp init))
    prog.states;
  Fmt.pf ppf "@[<v 2>body:@ %a@]@]" pp_body prog.body
