(** The SLIM step-program intermediate representation.

    Every model — whether authored as a block diagram, a Stateflow-like
    chart, or directly — compiles to one {!program}: a guarded imperative
    step function executed once per simulation step.  The interpreter,
    the coverage trackers and the symbolic executor all consume this IR.

    Each [If] and [Switch] statement carries a unique decision id used by
    coverage tracking and by the branch structure of {!Branch}. *)

type scope =
  | Input  (** model input port, free each step *)
  | Output  (** model output port, written each step *)
  | State  (** persistent across steps: delays, data stores, chart state *)
  | Local  (** scratch within one step *)

type var = { name : string; scope : scope; ty : Value.ty }

type unop = Neg | Not | Abs_op | To_real | To_int | Floor | Ceil

type binop = Add | Sub | Mul | Div | Mod | Min | Max

type cmpop = Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Const of Value.t
  | Var of scope * string
  | Unop of unop * expr
  | Binop of binop * expr * expr
  | Cmp of cmpop * expr * expr
  | And of expr * expr  (** full (non-short-circuit) evaluation *)
  | Or of expr * expr
  | Ite of expr * expr * expr
  | Index of expr * expr  (** [Index (vec, idx)], 0-based *)

type lvalue =
  | Lvar of scope * string
  | Lindex of lvalue * expr

type stmt =
  | Assign of lvalue * expr
  | If of { id : int; cond : expr; then_ : stmt list; else_ : stmt list }
  | Switch of {
      id : int;
      scrut : expr;  (** integer scrutinee *)
      cases : (int * stmt list) list;  (** distinct integer labels *)
      default : stmt list;
    }

type program = {
  name : string;
  inputs : var list;
  outputs : var list;
  states : (var * Value.t) list;  (** with initial values *)
  locals : var list;
  body : stmt list;
}

exception Ill_typed of string

val scope_name : scope -> string

(** {1 Construction helpers} *)

val var : scope -> string -> Value.ty -> var
val input : string -> Value.ty -> var
val output : string -> Value.ty -> var
val local : string -> Value.ty -> var
val state : string -> Value.ty -> Value.t -> var * Value.t

val ci : int -> expr
(** Integer constant. *)

val cr : float -> expr
val cb : bool -> expr
val iv : string -> expr  (** input variable reference *)

val sv : string -> expr  (** state variable reference *)

val lv : string -> expr  (** local variable reference *)

val ( +: ) : expr -> expr -> expr
val ( -: ) : expr -> expr -> expr
val ( *: ) : expr -> expr -> expr
val ( /: ) : expr -> expr -> expr
val ( =: ) : expr -> expr -> expr
val ( <>: ) : expr -> expr -> expr
val ( <: ) : expr -> expr -> expr
val ( <=: ) : expr -> expr -> expr
val ( >: ) : expr -> expr -> expr
val ( >=: ) : expr -> expr -> expr
val ( &&: ) : expr -> expr -> expr
val ( ||: ) : expr -> expr -> expr
val not_ : expr -> expr
val ite : expr -> expr -> expr -> expr
val index : expr -> expr -> expr
val conj : expr list -> expr
(** Conjunction of a list; [Const true] when empty. *)

val disj : expr list -> expr

val assign : string -> expr -> stmt
(** Assign to a local variable. *)

val assign_state : string -> expr -> stmt
val assign_out : string -> expr -> stmt
val assign_state_idx : string -> expr -> expr -> stmt
(** [assign_state_idx name idx e] writes one cell of a vector state. *)

val if_ : expr -> stmt list -> stmt list -> stmt
(** Fresh decision id drawn from an internal counter; call
    {!renumber_decisions} on the finished program for dense stable ids. *)

val switch : expr -> (int * stmt list) list -> stmt list -> stmt

(** {1 Analyses} *)

val atoms_of_condition : expr -> expr list
(** The atomic conditions of a decision guard: maximal subterms that are
    not built with [And]/[Or]/[Not].  Order is left-to-right and stable. *)

val decisions_of_program : program -> (int * [ `If of expr | `Switch of expr * int list ]) list
(** All decisions with their guard (or scrutinee and case labels),
    in syntactic order. *)

val renumber_decisions : program -> program
(** Re-assign decision ids densely (0, 1, 2, …) in syntactic order. *)

val type_check : program -> unit
(** Full static check: every variable reference resolves with the right
    scope, operand types agree, guards are boolean, scrutinees are
    integers, assignment targets match.  Raises {!Ill_typed}. *)

val expr_ty : (scope -> string -> Value.ty) -> expr -> Value.ty
(** Type of an expression given a variable typing environment.
    Raises {!Ill_typed}. *)

val ty_of_value : Value.t -> Value.ty
(** The natural type of a value (scalar bounds default to the generous
    {!Value.tint} / {!Value.treal} domains). *)

val stmt_count : program -> int
val decision_count : program -> int

(** {1 Fragments}

    A fragment is a reusable piece of step program with its own private
    state and locals — the compiled form of a Stateflow chart or library
    subsystem.  [instantiate] renames its internals with a prefix so that
    several instances can coexist in one program. *)

type fragment = {
  f_name : string;
  f_inputs : var list;  (** formal inputs, bound by the instantiator *)
  f_outputs : var list;  (** formal outputs, read by the instantiator *)
  f_states : (var * Value.t) list;
  f_locals : var list;
  f_body : stmt list;
}

val instantiate :
  prefix:string ->
  bind_input:(string -> expr) ->
  out_local:(string -> string) ->
  fragment ->
  (var * Value.t) list * var list * stmt list
(** [instantiate ~prefix ~bind_input ~out_local frag] returns
    [(states, locals, body)] where every state/local/output of the
    fragment is renamed with [prefix], every formal input reference is
    replaced by [bind_input name], and each formal output [o] is a local
    named [out_local o]. *)

(** {1 Printing} *)

val pp_expr : expr Fmt.t
val pp_stmt : stmt Fmt.t
val pp_program : program Fmt.t
val pp_unop : unop Fmt.t
val pp_binop : binop Fmt.t
val pp_cmpop : cmpop Fmt.t
