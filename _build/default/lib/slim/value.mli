(** Runtime values and signal types of the SLIM modeling language.

    SLIM signals carry booleans, bounded integers, bounded reals, or
    fixed-size vectors thereof.  Bounds on scalar types double as input
    domains for the constraint solver. *)

type t =
  | Bool of bool
  | Int of int
  | Real of float
  | Vec of t array  (** mutable in place; copy before sharing *)

type ty =
  | Tbool
  | Tint of { lo : int; hi : int }  (** inclusive bounds *)
  | Treal of { lo : float; hi : float }  (** inclusive bounds *)
  | Tvec of ty * int  (** element type and fixed length *)

exception Type_error of string

(** [type_error fmt ...] raises {!Type_error} with a formatted message. *)
val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** {1 Type helpers} *)

(** Unbounded-ish convenience domains. *)
val tint : ty
(** [tint] is a generous default integer domain [-1_000_000, 1_000_000]. *)

val treal : ty
(** [treal] is a generous default real domain [-1e6, 1e6]. *)

val tint_range : int -> int -> ty
val treal_range : float -> float -> ty

val default_of_ty : ty -> t
(** Zero / false / zero-filled vector of the given type. *)

val member : ty -> t -> bool
(** [member ty v] checks that [v] structurally fits [ty], bounds included. *)

val ty_compatible : ty -> ty -> bool
(** Same shape, ignoring scalar bounds. *)

val pp_ty : ty Fmt.t

(** {1 Value accessors} *)

val to_bool : t -> bool
val to_int : t -> int
(** Truncates reals; raises {!Type_error} on vectors. *)

val to_real : t -> float
val to_vec : t -> t array

val copy : t -> t
(** Deep copy ([Vec] payloads are mutable). *)

val equal : t -> t -> bool
val compare_num : t -> t -> int
(** Numeric comparison of scalars (int/real mixed); raises on bool/vec. *)

(** {1 Arithmetic}

    Mixed int/real operands promote to real, as Simulink does for doubles. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Integer division truncates toward zero; division by zero raises
    {!Type_error}. *)

val modulo : t -> t -> t
val min_v : t -> t -> t
val max_v : t -> t -> t
val neg : t -> t
val abs_v : t -> t
val floor_v : t -> t
val ceil_v : t -> t
val clamp : lo:float -> hi:float -> t -> t

(** {1 Printing and parsing} *)

val pp : t Fmt.t
val to_string : t -> string

val of_string : ty -> string -> t
(** Parse the output of {!to_string} back, guided by the expected type.
    Raises {!Type_error} on malformed input. *)

(** {1 Random generation} *)

val random : Random.State.t -> ty -> t
(** Uniform sample inside the type's domain. *)
