type t =
  | Bool of bool
  | Int of int
  | Real of float
  | Vec of t array

type ty =
  | Tbool
  | Tint of { lo : int; hi : int }
  | Treal of { lo : float; hi : float }
  | Tvec of ty * int

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let tint = Tint { lo = -1_000_000; hi = 1_000_000 }
let treal = Treal { lo = -1e6; hi = 1e6 }

let tint_range lo hi =
  if lo > hi then type_error "tint_range: empty domain [%d,%d]" lo hi;
  Tint { lo; hi }

let treal_range lo hi =
  if lo > hi then type_error "treal_range: empty domain [%g,%g]" lo hi;
  Treal { lo; hi }

let rec default_of_ty = function
  | Tbool -> Bool false
  | Tint { lo; hi } -> Int (if lo <= 0 && 0 <= hi then 0 else lo)
  | Treal { lo; hi } -> Real (if lo <= 0.0 && 0.0 <= hi then 0.0 else lo)
  | Tvec (ty, n) -> Vec (Array.init n (fun _ -> default_of_ty ty))

let rec member ty v =
  match ty, v with
  | Tbool, Bool _ -> true
  | Tint { lo; hi }, Int i -> lo <= i && i <= hi
  | Treal { lo; hi }, Real r -> lo <= r && r <= hi
  | Tvec (ety, n), Vec a ->
    Array.length a = n && Array.for_all (member ety) a
  | (Tbool | Tint _ | Treal _ | Tvec _), (Bool _ | Int _ | Real _ | Vec _) ->
    false

let rec ty_compatible a b =
  match a, b with
  | Tbool, Tbool -> true
  | Tint _, Tint _ -> true
  | Treal _, Treal _ -> true
  | Tvec (ea, na), Tvec (eb, nb) -> na = nb && ty_compatible ea eb
  | (Tbool | Tint _ | Treal _ | Tvec _), (Tbool | Tint _ | Treal _ | Tvec _)
    ->
    false

let rec pp_ty ppf = function
  | Tbool -> Fmt.string ppf "bool"
  | Tint { lo; hi } -> Fmt.pf ppf "int[%d,%d]" lo hi
  | Treal { lo; hi } -> Fmt.pf ppf "real[%g,%g]" lo hi
  | Tvec (ty, n) -> Fmt.pf ppf "%a[%d]" pp_ty ty n

let to_bool = function
  | Bool b -> b
  | Int i -> i <> 0
  | Real r -> r <> 0.0
  | Vec _ -> type_error "to_bool: vector"

let to_int = function
  | Bool b -> if b then 1 else 0
  | Int i -> i
  | Real r -> int_of_float (Float.trunc r)
  | Vec _ -> type_error "to_int: vector"

let to_real = function
  | Bool b -> if b then 1.0 else 0.0
  | Int i -> float_of_int i
  | Real r -> r
  | Vec _ -> type_error "to_real: vector"

let to_vec = function
  | Vec a -> a
  | (Bool _ | Int _ | Real _) as v ->
    type_error "to_vec: scalar %s" (match v with
      | Bool _ -> "bool" | Int _ -> "int" | Real _ -> "real" | Vec _ -> ".")

let rec copy = function
  | (Bool _ | Int _ | Real _) as v -> v
  | Vec a -> Vec (Array.map copy a)

let rec equal a b =
  match a, b with
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Real x, Real y -> Float.equal x y
  | Int x, Real y | Real y, Int x -> Float.equal (float_of_int x) y
  | Vec x, Vec y ->
    Array.length x = Array.length y
    && (let ok = ref true in
        Array.iteri (fun i xv -> if not (equal xv y.(i)) then ok := false) x;
        !ok)
  | (Bool _ | Int _ | Real _ | Vec _), (Bool _ | Int _ | Real _ | Vec _) ->
    false

let compare_num a b =
  match a, b with
  | Int x, Int y -> Int.compare x y
  | (Int _ | Real _ | Bool _), (Int _ | Real _ | Bool _) ->
    Float.compare (to_real a) (to_real b)
  | Vec _, _ | _, Vec _ -> type_error "compare_num: vector"

(* Arithmetic follows Simulink double/int promotion: any real operand makes
   the result real; booleans behave as 0/1. *)
let arith name fi fr a b =
  match a, b with
  | Int x, Int y -> Int (fi x y)
  | (Int _ | Real _ | Bool _), (Int _ | Real _ | Bool _) ->
    Real (fr (to_real a) (to_real b))
  | Vec _, _ | _, Vec _ -> type_error "%s: vector operand" name

let add = arith "add" ( + ) ( +. )
let sub = arith "sub" ( - ) ( -. )
let mul = arith "mul" ( * ) ( *. )

let div a b =
  match a, b with
  | Int _, Int 0 -> type_error "div: integer division by zero"
  | Int x, Int y -> Int (x / y)
  | (Int _ | Real _ | Bool _), (Int _ | Real _ | Bool _) ->
    let d = to_real b in
    if d = 0.0 then type_error "div: real division by zero"
    else Real (to_real a /. d)
  | Vec _, _ | _, Vec _ -> type_error "div: vector operand"

let modulo a b =
  match a, b with
  | Int _, Int 0 -> type_error "mod: modulo by zero"
  | Int x, Int y ->
    (* Euclidean-style: result has the sign of the divisor, like MATLAB. *)
    let r = x mod y in
    Int (if (r < 0 && y > 0) || (r > 0 && y < 0) then r + y else r)
  | (Int _ | Real _ | Bool _), (Int _ | Real _ | Bool _) ->
    let x = to_real a and y = to_real b in
    if y = 0.0 then type_error "mod: modulo by zero"
    else
      let r = Float.rem x y in
      Real (if (r < 0.0 && y > 0.0) || (r > 0.0 && y < 0.0) then r +. y else r)
  | Vec _, _ | _, Vec _ -> type_error "mod: vector operand"

let min_v = arith "min" Stdlib.min Float.min
let max_v = arith "max" Stdlib.max Float.max

let neg = function
  | Int x -> Int (-x)
  | Real r -> Real (-.r)
  | Bool _ -> type_error "neg: bool operand"
  | Vec _ -> type_error "neg: vector operand"

let abs_v = function
  | Int x -> Int (abs x)
  | Real r -> Real (Float.abs r)
  | Bool _ -> type_error "abs: bool operand"
  | Vec _ -> type_error "abs: vector operand"

let floor_v = function
  | Int x -> Int x
  | Real r -> Real (Float.floor r)
  | Bool _ -> type_error "floor: bool operand"
  | Vec _ -> type_error "floor: vector operand"

let ceil_v = function
  | Int x -> Int x
  | Real r -> Real (Float.ceil r)
  | Bool _ -> type_error "ceil: bool operand"
  | Vec _ -> type_error "ceil: vector operand"

let clamp ~lo ~hi v =
  match v with
  | Int x ->
    let flo = int_of_float (Float.ceil lo)
    and fhi = int_of_float (Float.floor hi) in
    Int (Stdlib.min fhi (Stdlib.max flo x))
  | Real r -> Real (Float.min hi (Float.max lo r))
  | Bool _ -> type_error "clamp: bool operand"
  | Vec _ -> type_error "clamp: vector operand"

let rec pp ppf = function
  | Bool b -> Fmt.bool ppf b
  | Int i -> Fmt.int ppf i
  | Real r -> Fmt.pf ppf "%g" r
  | Vec a -> Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any "; ") pp) a

let to_string v = Fmt.str "%a" pp v

let of_string ty s =
  let s = String.trim s in
  let rec parse ty s =
    match ty with
    | Tbool ->
      (match s with
       | "true" | "1" -> Bool true
       | "false" | "0" -> Bool false
       | _ -> type_error "of_string: bad bool %S" s)
    | Tint _ ->
      (match int_of_string_opt s with
       | Some i -> Int i
       | None -> type_error "of_string: bad int %S" s)
    | Treal _ ->
      (match float_of_string_opt s with
       | Some r -> Real r
       | None -> type_error "of_string: bad real %S" s)
    | Tvec (ety, n) ->
      let len = String.length s in
      if len < 2 || s.[0] <> '[' || s.[len - 1] <> ']' then
        type_error "of_string: bad vector %S" s;
      let inner = String.sub s 1 (len - 2) in
      (* Split on top-level ';' only: nested vectors carry brackets. *)
      let parts =
        if String.trim inner = "" then []
        else begin
          let parts = ref [] in
          let depth = ref 0 in
          let start = ref 0 in
          String.iteri
            (fun i c ->
              match c with
              | '[' -> incr depth
              | ']' -> decr depth
              | ';' when !depth = 0 ->
                parts := String.sub inner !start (i - !start) :: !parts;
                start := i + 1
              | _ -> ())
            inner;
          parts := String.sub inner !start (String.length inner - !start) :: !parts;
          List.rev !parts
        end
      in
      if List.length parts <> n then
        type_error "of_string: vector %S has %d elements, expected %d" s
          (List.length parts) n;
      Vec (Array.of_list (List.map (fun p -> parse ety (String.trim p)) parts))
  in
  parse ty s

let rec random rng = function
  | Tbool -> Bool (Random.State.bool rng)
  | Tint { lo; hi } -> Int (lo + Random.State.int rng (hi - lo + 1))
  | Treal { lo; hi } -> Real (lo +. Random.State.float rng (hi -. lo))
  | Tvec (ty, n) -> Vec (Array.init n (fun _ -> random rng ty))
