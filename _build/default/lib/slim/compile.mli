(** Compilation of SLIM block diagrams to the step-program IR.

    Blocks are scheduled in topological order of their combinational
    dependencies; stateful blocks (delays, integrators, counters, data
    stores) read their state at their scheduling position and commit
    updates at the end of the step, inside the conditional context of
    any enclosing subsystem — matching Simulink's conditional-execution
    semantics. *)

val to_program : Model.t -> Ir.program
(** Validates the model, compiles it, renumbers decisions densely and
    type-checks the result.  Raises {!Model.Invalid_model} or
    {!Ir.Ill_typed} on bad diagrams. *)
